(* Aggregated test runner: every suite in one alcotest binary. *)

let () =
  Alcotest.run "rustudy"
    [
      ("lexer", T_lexer.suite);
      ("interner", T_interner.suite);
      ("frontend", T_frontend.suite);
      ("parser", T_parser.suite);
      ("sema", T_sema.suite);
      ("mir", T_mir.suite);
      ("analysis", T_analysis.suite);
      ("detectors", T_detectors.suite);
      ("corpus", T_corpus.suite);
      ("study", T_study.suite);
      ("cache", T_cache.suite);
      ("kernels", T_kernels.suite);
      ("suggestions", T_suggestions.suite);
      ("recovery", T_recovery.suite);
      ("fault", T_fault.suite);
      ("supervisor", T_supervisor.suite);
      ("server", T_server.suite);
      ("properties", T_props.suite);
      ("observability", T_observability.suite);
      ("flight", T_flight.suite);
      ("summary", T_summary.suite);
      ("oracle", T_oracle.suite);
    ]
