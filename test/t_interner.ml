(* Properties of the append-only symbol interner the lexer builds on. *)

open QCheck
module I = Support.Interner

(* identifier-ish strings, plus arbitrary printable junk *)
let ident_gen =
  Gen.(
    let ident_char =
      oneof
        [
          char_range 'a' 'z';
          char_range 'A' 'Z';
          char_range '0' '9';
          return '_';
        ]
    in
    map (fun cs -> String.init (List.length cs) (List.nth cs))
      (list_size (int_range 1 24) ident_char))

let strings_gen = Gen.(list_size (int_range 0 200) ident_gen)
let strings_arb = make ~print:Print.(list string) strings_gen

let round_trip =
  Test.make ~count:200 ~name:"intern/to_string round-trips every string"
    strings_arb (fun ss ->
      let t = I.create () in
      List.for_all (fun s -> String.equal (I.to_string t (I.intern t s)) s) ss)

let dedup =
  Test.make ~count:200
    ~name:"equal strings share a symbol; distinct strings never do"
    strings_arb (fun ss ->
      let t = I.create () in
      let syms = List.map (fun s -> (s, I.intern t s)) ss in
      List.for_all
        (fun (s1, y1) ->
          List.for_all
            (fun (s2, y2) -> String.equal s1 s2 = (y1 = y2))
            syms)
        syms
      && I.count t
         = List.length (List.sort_uniq String.compare (List.map fst syms)))

let sub_matches_whole =
  Test.make ~count:200
    ~name:"intern_sub of a slice equals intern of the copied slice"
    (pair strings_arb strings_arb)
    (fun (pre, ss) ->
      let t = I.create () in
      (* pre-populate so probing hits occupied slots and rehashes *)
      List.iter (fun s -> ignore (I.intern t s)) pre;
      let buf = String.concat "!" ss in
      let pos = ref 0 in
      List.for_all
        (fun s ->
          let n = String.length s in
          let sym = I.intern_sub t buf !pos n in
          pos := !pos + n + 1;
          sym = I.intern t s)
        ss)

let find_agrees =
  Test.make ~count:200 ~name:"find returns interned symbols and only those"
    (pair strings_arb strings_arb)
    (fun (ins, probes) ->
      let t = I.create () in
      List.iter (fun s -> ignore (I.intern t s)) ins;
      List.for_all
        (fun p ->
          match I.find t p with
          | Some sym -> String.equal (I.to_string t sym) p
          | None -> not (List.exists (String.equal p) ins))
        probes)

(* The lexer shares one interner per domain across files: parsing the
   same source with a cold and a warm interner must give identical
   ASTs (symbols are an internal encoding, never semantics). *)
let independence_across_parses =
  Alcotest.test_case "parse results are interner-state independent" `Quick
    (fun () ->
      List.iter
        (fun (e : Rustudy.Corpus.entry) ->
          let src = e.Rustudy.Corpus.source in
          let a1 = Rustudy.parse ~file:"a.rs" src in
          let a2 = Rustudy.parse ~file:"a.rs" src in
          if a1 <> a2 then
            Alcotest.failf "parse of %s differs between interner states"
              e.Rustudy.Corpus.id)
        (let rec take n = function
           | x :: tl when n > 0 -> x :: take (n - 1) tl
           | _ -> []
         in
         take 20 Rustudy.Corpus.all_bugs))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ round_trip; dedup; sub_matches_whole; find_agrees ]
  @ [ independence_across_parses ]
