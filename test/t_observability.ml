(* Observability tests: the metrics registry and tracer must be no-ops
   while disabled, merge per-domain shards correctly, export
   byte-deterministic snapshots under an injected clock, never change
   what the detectors report, and produce traces that [tracecat]
   validates. *)

let case name f = Alcotest.test_case name `Quick f

let with_metrics f =
  let was = Support.Metrics.enabled () in
  Support.Metrics.enable ();
  Fun.protect
    ~finally:(fun () -> if not was then Support.Metrics.disable ())
    f

let with_tracing f =
  let was = Support.Trace.enabled () in
  Support.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      if not was then Support.Trace.disable ();
      Support.Trace.set_clock None)
    f

(* ---------------- disabled paths are no-ops ------------------------ *)

let disabled_noop =
  case "disabled recording leaves no samples" (fun () ->
      Support.Metrics.disable ();
      Support.Trace.disable ();
      Support.Metrics.reset ();
      Support.Trace.reset ();
      let c =
        Support.Metrics.counter ~help:"Test." "t_obs_disabled_total"
      in
      Support.Metrics.incr c;
      Support.Metrics.incr c ~by:41.;
      Alcotest.(check (float 0.0))
        "counter untouched" 0.
        (Support.Metrics.counter_value c);
      let r =
        Support.Trace.with_span "t_obs.disabled" (fun () -> 17)
      in
      Alcotest.(check int) "with_span passes the value through" 17 r;
      Alcotest.(check int)
        "no aggregates recorded" 0
        (List.length
           (List.filter
              (fun (a : Support.Trace.agg) ->
                a.Support.Trace.agg_name = "t_obs.disabled")
              (Support.Trace.aggregates ()))))

(* ---------------- shard merge under the domain pool ----------------- *)

let shard_merge =
  case "per-domain shards merge to the true total" (fun () ->
      with_metrics (fun () ->
          Support.Metrics.reset ();
          let c =
            Support.Metrics.counter ~labels:[ "worker" ] ~help:"Test."
              "t_obs_shard_total"
          in
          let items = List.init 100 (fun i -> i) in
          let results =
            Support.Domain_pool.map ~domains:4
              ~f:(fun i ->
                Support.Metrics.incr c ~labels:[ "any" ];
                i * 2)
              items
          in
          Alcotest.(check (list int))
            "pool results in order"
            (List.map (fun i -> i * 2) items)
            results;
          (* Domain.join before this read orders every shard write *)
          Alcotest.(check (float 0.0))
            "merged count" 100.
            (Support.Metrics.counter_value c ~labels:[ "any" ]);
          Alcotest.(check (float 0.0))
            "readable by family name" 100.
            (Support.Metrics.read_counter ~labels:[ "any" ]
               "t_obs_shard_total")))

(* ---------------- golden exporter shapes ---------------------------- *)

let golden_exports =
  case "exporter output matches the documented shape exactly" (fun () ->
      with_metrics (fun () ->
          Support.Metrics.reset ();
          let c =
            Support.Metrics.counter ~labels:[ "op" ] ~help:"Test ops."
              "t_obs_golden_ops_total"
          in
          Support.Metrics.incr c ~labels:[ "read" ];
          Support.Metrics.incr c ~labels:[ "read" ];
          Support.Metrics.incr c ~labels:[ "write" ] ~by:3.;
          let g =
            Support.Metrics.gauge ~help:"Test level." "t_obs_golden_level"
          in
          Support.Metrics.set g 2.5;
          let h =
            Support.Metrics.histogram ~buckets:[ 1.; 5. ] ~help:"Test sizes."
              "t_obs_golden_sizes"
          in
          Support.Metrics.observe h 0.5;
          Support.Metrics.observe h 3.;
          Support.Metrics.observe h 10.;
          let prom_expected =
            String.concat "\n"
              [
                "# HELP t_obs_golden_level Test level.";
                "# TYPE t_obs_golden_level gauge";
                "t_obs_golden_level 2.500000";
                "# HELP t_obs_golden_ops_total Test ops.";
                "# TYPE t_obs_golden_ops_total counter";
                "t_obs_golden_ops_total{op=\"read\"} 2";
                "t_obs_golden_ops_total{op=\"write\"} 3";
                "# HELP t_obs_golden_sizes Test sizes.";
                "# TYPE t_obs_golden_sizes histogram";
                "t_obs_golden_sizes_bucket{le=\"1\"} 1";
                "t_obs_golden_sizes_bucket{le=\"5\"} 2";
                "t_obs_golden_sizes_bucket{le=\"+Inf\"} 3";
                "t_obs_golden_sizes_sum 13.500000";
                "t_obs_golden_sizes_count 3";
                "";
              ]
          in
          Alcotest.(check string)
            "prometheus snapshot" prom_expected
            (Support.Metrics.export_prometheus ());
          let json_expected =
            "{\"metrics\":[\n"
            ^ "{\"name\":\"t_obs_golden_level\",\"type\":\"gauge\",\"help\":\"Test \
               level.\",\"samples\":[{\"labels\":{},\"value\":2.500000}]},\n"
            ^ "{\"name\":\"t_obs_golden_ops_total\",\"type\":\"counter\",\"help\":\"Test \
               ops.\",\"samples\":[{\"labels\":{\"op\":\"read\"},\"value\":2},{\"labels\":{\"op\":\"write\"},\"value\":3}]},\n"
            ^ "{\"name\":\"t_obs_golden_sizes\",\"type\":\"histogram\",\"help\":\"Test \
               sizes.\",\"samples\":[{\"labels\":{},\"count\":3,\"sum\":13.500000,\"buckets\":[{\"le\":1,\"count\":1},{\"le\":5,\"count\":2},{\"le\":\"+Inf\",\"count\":3}]}]}\n"
            ^ "]}\n"
          in
          Alcotest.(check string)
            "json snapshot" json_expected
            (Support.Metrics.export_json ())))

(* ---------------- injected-clock determinism ------------------------ *)

(* The acceptance criterion: two identical sequential runs under the
   same injected clock export byte-identical metrics and trace files. *)
let entries () =
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  take 3 Corpus.all_bugs

let one_run () =
  let t = ref 0L in
  Support.Trace.set_clock
    (Some
       (fun () ->
         t := Int64.add !t 1_000L;
         !t));
  (* purge the program cache first: the purge events it records must
     not land in the snapshot being compared *)
  Analysis.Cache.clear_programs ();
  Study.Classify.clear_provenance ();
  Support.Metrics.reset ();
  Support.Trace.reset ();
  List.iter
    (fun e -> ignore (Study.Classify.analyze_entry_result e))
    (entries ());
  let out =
    ( Support.Metrics.export_prometheus (),
      Support.Metrics.export_json (),
      Support.Trace.export_chrome (),
      Study.Classify.provenance_block () )
  in
  Support.Trace.set_clock None;
  out

let clock_determinism =
  case "two injected-clock runs export byte-identical files" (fun () ->
      with_metrics (fun () ->
          with_tracing (fun () ->
              let p1, j1, t1, b1 = one_run () in
              let p2, j2, t2, b2 = one_run () in
              Alcotest.(check string) "prometheus identical" p1 p2;
              Alcotest.(check string) "json identical" j1 j2;
              Alcotest.(check string) "chrome trace identical" t1 t2;
              Alcotest.(check string) "provenance identical" b1 b2;
              Alcotest.(check bool)
                "trace is non-trivial" true
                (String.length t1 > 200);
              Alcotest.(check bool)
                "provenance names every entry" true
                (List.for_all
                   (fun (e : Corpus.entry) ->
                     List.exists
                       (fun (p : Study.Classify.provenance) ->
                         p.Study.Classify.prov_id = e.Corpus.id)
                       (Study.Classify.provenances ()))
                   (entries ())))))

(* ---------------- findings unchanged by instrumentation ------------- *)

let findings_unchanged =
  case "tracing + metrics never change detector findings" (fun () ->
      Support.Metrics.disable ();
      Support.Trace.disable ();
      Analysis.Cache.clear_programs ();
      let run () =
        List.concat_map
          (fun (e : Corpus.entry) ->
            List.map Rustudy.Finding.to_string
              (Rustudy.check ~file:(e.Corpus.id ^ ".rs") e.Corpus.source))
          (entries ())
      in
      let off = run () in
      Analysis.Cache.clear_programs ();
      let on =
        with_metrics (fun () -> with_tracing (fun () -> run ()))
      in
      Alcotest.(check (list string)) "identical findings" off on)

(* ---------------- tracecat validation ------------------------------- *)

let tracecat_accepts =
  case "tracecat validates a real export" (fun () ->
      with_tracing (fun () ->
          Support.Trace.reset ();
          Support.Trace.with_span ~cat:"t" "outer" (fun () ->
              Support.Trace.with_span ~cat:"t" "inner" (fun () -> ());
              Support.Trace.instant "mark");
          match Tracecat_lib.validate (Support.Trace.export_chrome ()) with
          | Ok events ->
              Alcotest.(check bool)
                "at least outer+inner+mark" true
                (List.length events >= 3)
          | Error msg -> Alcotest.fail ("validate rejected a real trace: " ^ msg)))

let tracecat_rejects =
  case "tracecat rejects malformed and overlapping traces" (fun () ->
      let invalid text =
        match Tracecat_lib.validate text with
        | Ok _ -> false
        | Error _ -> true
      in
      Alcotest.(check bool) "not JSON" true (invalid "wibble");
      Alcotest.(check bool)
        "not an array" true
        (invalid "{\"name\":\"x\"}");
      Alcotest.(check bool)
        "missing fields" true
        (invalid "[\n{\"name\":\"a\",\"ph\":\"X\",\"ts\":1.0}\n]");
      Alcotest.(check bool)
        "negative duration" true
        (invalid
           "[\n\
            {\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1.0,\"dur\":-2.0}\n\
            ]");
      Alcotest.(check bool)
        "partially overlapping spans" true
        (invalid
           "[\n\
            {\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.0,\"dur\":10.0},\n\
            {\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":5.0,\"dur\":10.0}\n\
            ]");
      Alcotest.(check bool)
        "properly nested spans pass" false
        (invalid
           "[\n\
            {\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.0,\"dur\":10.0},\n\
            {\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":2.0,\"dur\":3.0},\n\
            {\"name\":\"c\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":6.0,\"dur\":4.0}\n\
            ]"))

(* ---------------- oracle spans and counters -------------------------- *)

let oracle_smoke =
  case "oracle spans validate under tracecat; counters land" (fun () ->
      with_tracing (fun () ->
          with_metrics (fun () ->
              Support.Metrics.reset ();
              Support.Trace.reset ();
              let prog =
                Rustudy.load ~file:"t_obs_oracle.rs"
                  "fn main() { let b = Box::new(1); drop(b); let x = *b; \
                   println!(\"{}\", x); }"
              in
              ignore (Rustudy.Oracle.run prog);
              let names =
                List.map
                  (fun (a : Support.Trace.agg) -> a.Support.Trace.agg_name)
                  (Support.Trace.aggregates ())
              in
              Alcotest.(check bool) "oracle.exec span" true
                (List.mem "oracle.exec" names);
              Alcotest.(check bool) "oracle.schedule span" true
                (List.mem "oracle.schedule" names);
              (match Tracecat_lib.validate (Support.Trace.export_chrome ()) with
              | Ok _ -> ()
              | Error msg ->
                  Alcotest.fail ("tracecat rejected the oracle trace: " ^ msg));
              let prom = Support.Metrics.export_prometheus () in
              let has needle =
                let re = Str.regexp_string needle in
                match Str.search_forward re prom 0 with
                | _ -> true
                | exception Not_found -> false
              in
              Alcotest.(check bool) "runs counter" true
                (has "rustudy_oracle_runs_total");
              Alcotest.(check bool) "uaf trap counter" true
                (has "rustudy_oracle_traps_total{class=\"uaf\"}"))))

(* ---------------- span aggregates / profile -------------------------- *)

let profile_aggregates =
  case "span aggregates drive the profile table" (fun () ->
      with_tracing (fun () ->
          Support.Trace.reset ();
          let t = ref 0L in
          Support.Trace.set_clock
            (Some
               (fun () ->
                 t := Int64.add !t 2_000_000L;
                 !t));
          for _ = 1 to 3 do
            Support.Trace.with_span "t_obs.work" (fun () -> ())
          done;
          let agg =
            List.find
              (fun (a : Support.Trace.agg) ->
                a.Support.Trace.agg_name = "t_obs.work")
              (Support.Trace.aggregates ())
          in
          Alcotest.(check int) "count" 3 agg.Support.Trace.agg_count;
          (* each span sees exactly one 2ms clock tick between open and
             close *)
          Alcotest.(check bool)
            "total is 3 ticks" true
            (agg.Support.Trace.agg_total_ns = 6_000_000L);
          let table = Support.Trace.profile_table () in
          Alcotest.(check bool)
            "profile table names the span" true
            (let re = Str.regexp_string "t_obs.work" in
             match Str.search_forward re table 0 with
             | _ -> true
             | exception Not_found -> false)))

let ring_drop_accounting =
  case "trace ring overflow is accounted exactly" (fun () ->
      with_tracing (fun () ->
          Support.Trace.reset ();
          (* capacity changes bind at shard creation: record on a fresh
             domain so its ring is born with the small capacity *)
          Support.Trace.set_ring_capacity 32;
          Fun.protect
            ~finally:(fun () -> Support.Trace.set_ring_capacity 32768)
            (fun () ->
              Domain.join
                (Domain.spawn (fun () ->
                     for i = 1 to 50 do
                       Support.Trace.instant
                         ~args:[ ("i", string_of_int i) ]
                         "t_obs.flood"
                     done));
              Alcotest.(check int)
                "50 instants into a 32-slot ring drop exactly 18" 18
                (Support.Trace.dropped_total ()));
          Support.Trace.reset ();
          Alcotest.(check int) "reset zeroes the drop counter" 0
            (Support.Trace.dropped_total ())))

let suite =
  [
    disabled_noop;
    shard_merge;
    golden_exports;
    clock_determinism;
    findings_unchanged;
    tracecat_accepts;
    tracecat_rejects;
    oracle_smoke;
    profile_aggregates;
    ring_drop_accounting;
  ]
