(* The dynamic oracle: trap manifestation per bug class, budget
   degradation to explicit inconclusive verdicts, seed determinism,
   budget hygiene, and the corpus-wide differential harness's
   zero-escaping-exceptions invariant. *)

module Machine = Rustudy.Machine
module Oracle = Rustudy.Oracle

let case name f = Alcotest.test_case name `Quick f

let oracle ?fuel ?deadline_ms ?schedules ?seed src =
  Oracle.run ?fuel ?deadline_ms ?schedules ?seed
    (Rustudy.load ~file:"oracle_test.rs" src)

let verdict_of cls (r : Oracle.t) =
  Oracle.verdict_name (List.assoc cls r.Oracle.verdicts)

let has_code code (r : Oracle.t) =
  List.exists (fun (d : Rustudy.Diag.t) -> d.Rustudy.Diag.code = code) r.Oracle.diags

(* ---------------- per-class traps ----------------------------------- *)

let trap_cases =
  [
    ( "use-after-free traps",
      Machine.Uaf,
      {|
fn main() {
    let b = Box::new(41);
    drop(b);
    let x = *b;
    println!("{}", x);
}
|} );
    ( "double free traps",
      Machine.Double_free,
      {|
fn main() {
    let b = Box::new(1);
    drop(b);
    drop(b);
}
|} );
    ( "uninit read traps",
      Machine.Uninit_read,
      {|
fn main() {
    let mut v: Vec<i32> = Vec::with_capacity(4);
    unsafe { v.set_len(3); }
    let x = v[1];
    println!("{}", x);
}
|} );
    ( "null deref traps",
      Machine.Null_deref,
      {|
fn main() {
    let p: *const i32 = 0 as *const i32;
    unsafe { let x = *p; println!("{}", x); }
}
|} );
    ( "double lock traps",
      Machine.Double_lock,
      {|
use std::sync::Mutex;
fn main() {
    let m = Mutex::new(0);
    let a = m.lock().unwrap();
    let b = m.lock().unwrap();
}
|} );
  ]

let traps =
  List.map
    (fun (name, cls, src) ->
      case name (fun () ->
          let r = oracle src in
          Alcotest.(check string) "verdict" "trap" (verdict_of cls r);
          Alcotest.(check bool)
            "E0601 diag" true
            (has_code Rustudy.Diag.Oracle_trap r)))
    trap_cases
  @ [
      case "a clean program is clean in every class" (fun () ->
          let r =
            oracle
              {|
fn main() {
    let mut v = Vec::new();
    v.push(1);
    v.push(2);
    let s = v[0] + v[1];
    println!("{}", s);
}
|}
          in
          List.iter
            (fun cls ->
              Alcotest.(check string)
                (Machine.class_name cls) "clean" (verdict_of cls r))
            Machine.all_classes;
          Alcotest.(check (list string)) "no diags" []
            (List.map
               (fun (d : Rustudy.Diag.t) -> d.Rustudy.Diag.message)
               r.Oracle.diags));
      case "threaded lock program runs clean across schedules" (fun () ->
          let r =
            oracle
              {|
use std::sync::{Arc, Mutex};
use std::thread;
fn main() {
    let m = Arc::new(Mutex::new(0));
    let m2 = Arc::clone(&m);
    let h = thread::spawn(move || {
        let mut g = m2.lock().unwrap();
        *g += 1;
    });
    h.join().unwrap();
    let g = m.lock().unwrap();
    println!("{}", *g);
}
|}
          in
          Alcotest.(check bool) "multiple schedules" true (r.Oracle.schedules > 1);
          List.iter
            (fun cls ->
              Alcotest.(check string)
                (Machine.class_name cls) "clean" (verdict_of cls r))
            Machine.all_classes);
      case "library snippets without main are still driven" (fun () ->
          (* no main: the oracle synthesizes arguments and drives the
             function directly *)
          let r =
            oracle
              {|
fn double_it(x: i32) -> i32 {
    x + x
}
|}
          in
          Alcotest.(check string) "clean" "clean" (verdict_of Machine.Uaf r));
    ]

(* ---------------- budget degradation -------------------------------- *)

let looping = {|
fn main() {
    let mut i = 0;
    loop {
        i = i + 1;
    }
}
|}

let budgets =
  [
    case "fuel exhaustion degrades to inconclusive with W0602" (fun () ->
        let r = oracle ~fuel:100 looping in
        Alcotest.(check string) "verdict" "inconclusive"
          (verdict_of Machine.Uaf r);
        Alcotest.(check bool) "W0602" true (has_code Rustudy.Diag.Oracle_fuel r));
    case "deadline expiry degrades to inconclusive with W0603" (fun () ->
        let r = oracle ~fuel:max_int ~deadline_ms:30 looping in
        Alcotest.(check string) "verdict" "inconclusive"
          (verdict_of Machine.Uaf r);
        Alcotest.(check bool) "W0603" true
          (has_code Rustudy.Diag.Oracle_deadline r));
    case "unsupported constructs degrade with W0604, never trap" (fun () ->
        let r = oracle {|
fn main() {
    let x = mystery_ffi_call(7);
    println!("{}", x);
}
|} in
        Alcotest.(check string) "verdict" "inconclusive"
          (verdict_of Machine.Uaf r);
        Alcotest.(check bool) "W0604" true
          (has_code Rustudy.Diag.Oracle_unsupported r));
  ]

(* ---------------- determinism --------------------------------------- *)

let threaded = {|
use std::sync::{Arc, Mutex};
use std::thread;
fn main() {
    let c = Arc::new(Mutex::new(0));
    let c2 = Arc::clone(&c);
    let h = thread::spawn(move || {
        let mut g = c2.lock().unwrap();
        *g += 1;
    });
    let mut g = c.lock().unwrap();
    *g += 10;
    drop(g);
    h.join().unwrap();
}
|}

let determinism =
  [
    case "same seed and budgets give byte-identical verdicts" (fun () ->
        let a = oracle ~seed:42 ~schedules:4 threaded in
        let b = oracle ~seed:42 ~schedules:4 threaded in
        Alcotest.(check string) "render" (Oracle.render a) (Oracle.render b);
        Alcotest.(check (list string))
          "diags"
          (List.map (fun (d : Rustudy.Diag.t) -> d.Rustudy.Diag.message) a.Oracle.diags)
          (List.map (fun (d : Rustudy.Diag.t) -> d.Rustudy.Diag.message) b.Oracle.diags));
    case "differential harness is pool-size independent" (fun () ->
        let a = Rustudy.Oracle_eval.run ~domains:1 () in
        let b = Rustudy.Oracle_eval.run ~domains:4 () in
        Alcotest.(check string)
          "render"
          (Rustudy.Oracle_eval.render a)
          (Rustudy.Oracle_eval.render b));
  ]

(* ---------------- budget hygiene ------------------------------------ *)

let hygiene =
  [
    case "a fuel-exhausted oracle run leaves later checks byte-identical"
      (fun () ->
        let entry = List.hd Rustudy.Corpus.all_bugs in
        let file = entry.Rustudy.Corpus.id ^ ".rs" in
        let render r =
          match r with
          | Ok (findings, diags) ->
              String.concat "\n"
                (List.map Rustudy.Finding.to_string findings
                @ List.map Rustudy.Diag.to_string diags)
          | Error e -> "error:" ^ e
        in
        let before =
          render (Rustudy.check_result ~file entry.Rustudy.Corpus.source)
        in
        (* exhaust the oracle's budgets mid-sweep *)
        ignore (oracle ~fuel:10 ~deadline_ms:1 looping);
        Alcotest.(check bool) "no ambient deadline leaks" true
          (Rustudy.Deadline.current () = None);
        let after =
          render (Rustudy.check_result ~file entry.Rustudy.Corpus.source)
        in
        Alcotest.(check string) "byte-identical check" before after);
  ]

(* ---------------- the differential harness -------------------------- *)

let differential =
  [
    case "corpus sweep: zero escaping exceptions, all pairs classified"
      (fun () ->
        let r = Rustudy.Oracle_eval.run () in
        Alcotest.(check int) "escaped" 0 r.Rustudy.Oracle_eval.escaped;
        Alcotest.(check (list string)) "degraded" [] r.Rustudy.Oracle_eval.degraded;
        Alcotest.(check int)
          "programs" (List.length Rustudy.Corpus.all_bugs)
          r.Rustudy.Oracle_eval.programs;
        (* every (program, class) pair lands in exactly one cell *)
        List.iter
          (fun (cls, row) ->
            Alcotest.(check int)
              ("pairs for " ^ cls)
              r.Rustudy.Oracle_eval.programs
              (row.Rustudy.Oracle_eval.agree_pos
              + row.Rustudy.Oracle_eval.agree_neg
              + row.Rustudy.Oracle_eval.static_only
              + row.Rustudy.Oracle_eval.dynamic_only
              + row.Rustudy.Oracle_eval.inconclusive))
          r.Rustudy.Oracle_eval.rows);
    case "mutant sweep covers the full 1020-mutant suite and never throws"
      (fun () ->
        let r = Rustudy.Oracle_eval.run ~mutants:true () in
        Alcotest.(check int) "escaped" 0 r.Rustudy.Oracle_eval.escaped;
        Alcotest.(check bool)
          "at least the 1020 recovery mutants" true
          (r.Rustudy.Oracle_eval.mutants >= 1020);
        (* the trap-aiming mutators manifest bugs the static detectors
           never reported: the dynamic-only column is non-empty *)
        let dyn_only =
          List.fold_left
            (fun acc (_, row) -> acc + row.Rustudy.Oracle_eval.dynamic_only)
            0 r.Rustudy.Oracle_eval.rows
        in
        Alcotest.(check bool) "dynamic-only findings exist" true (dyn_only > 0));
    case "trap mutators produce oracle traps on injected sources" (fun () ->
        (* Inject_free inserts an early drop before a later use: the
           oracle must manifest it as a uaf/double-free trap on at
           least one corpus entry, with no escaping exceptions *)
        let trapped = ref 0 in
        List.iter
          (fun (e : Rustudy.Corpus.entry) ->
            List.iter
              (fun (_, src) ->
                match
                  Analysis.Cache.load_ctx_recovering ~cache:false
                    ~file:(e.Rustudy.Corpus.id ^ "-trap.rs") src
                with
                | Error _ -> ()
                | Ok ctx ->
                    let r =
                      Oracle.run (Analysis.Cache.program ctx)
                    in
                    if
                      List.exists
                        (fun (_, v) ->
                          match v with Oracle.Trap _ -> true | _ -> false)
                        r.Oracle.verdicts
                    then incr trapped)
              (Rustudy.Fault.trap_mutations ~seed:0x5EED
                 e.Rustudy.Corpus.source))
          Rustudy.Corpus.all_bugs;
        Alcotest.(check bool) "some injected trap manifests" true (!trapped > 0));
  ]

let suite = traps @ budgets @ determinism @ hygiene @ differential
