(* The summary-based interprocedural engine (Analysis.Summary):
   QCheck properties of the SCC condensation against a brute-force
   reachability oracle, differential byte-identity of summary-mode vs
   replay-mode detector findings over the full corpus and every fault
   mutant, the content-addressed summary store, the escape client, and
   the parallel wave path. *)

module Summary = Rustudy.Summary
module Scc = Rustudy.Summary.Scc
module Fault = Rustudy.Fault

let case name f = Alcotest.test_case name `Quick f

(* ---------------- random digraphs ---------------------------------- *)

(* (n, succs) with n in [1..24] and a skewed edge count, as an
   adjacency array with ascending deduplicated successor lists — the
   same representation [Summary.dep_succs] produces. *)
let gen_graph =
  QCheck.Gen.(
    int_range 1 24 >>= fun n ->
    int_bound (3 * n) >>= fun m ->
    list_size (return m) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    >>= fun es ->
    let tmp = Array.make n [] in
    List.iter
      (fun (u, v) -> if not (List.mem v tmp.(u)) then tmp.(u) <- v :: tmp.(u))
      es;
    let succs =
      Array.map
        (fun l ->
          let a = Array.of_list l in
          Array.sort compare a;
          a)
        tmp
    in
    return (n, succs))

let print_graph (n, succs) =
  Printf.sprintf "n=%d; %s" n
    (String.concat " "
       (Array.to_list
          (Array.mapi
             (fun u vs ->
               Printf.sprintf "%d->[%s]" u
                 (String.concat ","
                    (Array.to_list (Array.map string_of_int vs))))
             succs)))

let arb_graph = QCheck.make ~print:print_graph gen_graph

(* Boolean transitive closure (Floyd–Warshall), the oracle for "same
   strongly-connected component". *)
let reach n (succs : int array array) =
  let r = Array.make_matrix n n false in
  Array.iteri (fun u vs -> Array.iter (fun v -> r.(u).(v) <- true) vs) succs;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if r.(i).(k) then
        for j = 0 to n - 1 do
          if r.(k).(j) then r.(i).(j) <- true
        done
    done
  done;
  r

let prop name f = QCheck.Test.make ~name ~count:300 arb_graph f

let scc_partition =
  prop "condense: members form a partition matching comp_of" (fun (n, succs) ->
      let scc = Scc.condense ~n ~succs in
      let seen = Array.make n 0 in
      Array.iteri
        (fun c ms ->
          Array.iter
            (fun v ->
              seen.(v) <- seen.(v) + 1;
              assert (scc.Scc.comp_of.(v) = c))
            ms)
        scc.Scc.members;
      Array.for_all (fun k -> k = 1) seen)

let scc_oracle =
  prop "condense: same component iff mutually reachable" (fun (n, succs) ->
      let scc = Scc.condense ~n ~succs in
      let r = reach n succs in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let together = scc.Scc.comp_of.(u) = scc.Scc.comp_of.(v) in
          let mutual = u = v || (r.(u).(v) && r.(v).(u)) in
          if together <> mutual then ok := false
        done
      done;
      !ok)

let scc_acyclic_reverse_topo =
  prop "condense: cross edges point at lower component ids (acyclic, \
        callee-first order)" (fun (n, succs) ->
      let scc = Scc.condense ~n ~succs in
      ignore n;
      let ok = ref true in
      Array.iteri
        (fun u vs ->
          Array.iter
            (fun v ->
              let cu = scc.Scc.comp_of.(u) and cv = scc.Scc.comp_of.(v) in
              (* callees must be emitted before callers, so every edge
                 leaving a component lands in a smaller id; [order] is
                 the identity over ids, making it a valid
                 reverse-topological order *)
              if cu <> cv && cv >= cu then ok := false)
            vs)
        succs;
      !ok
      && Array.length scc.Scc.order = scc.Scc.count
      && Array.for_all
           (fun i -> scc.Scc.order.(i) = i)
           (Array.init scc.Scc.count (fun i -> i)))

let scc_waves =
  prop "condense: waves partition the order and only depend on earlier \
        waves" (fun (n, succs) ->
      let scc = Scc.condense ~n ~succs in
      ignore n;
      let wave_of = Array.make scc.Scc.count (-1) in
      Array.iteri
        (fun w cs -> Array.iter (fun c -> wave_of.(c) <- w) cs)
        scc.Scc.waves;
      Array.for_all (fun w -> w >= 0) wave_of
      && Array.for_all
           (fun u ->
             Array.for_all
               (fun v ->
                 let cu = scc.Scc.comp_of.(u) and cv = scc.Scc.comp_of.(v) in
                 cu = cv || wave_of.(cv) < wave_of.(cu))
               succs.(u))
           (Array.init (Array.length succs) (fun i -> i)))

let scc_has_cycle =
  prop "condense: has_cycle iff multi-member or self-loop" (fun (n, succs) ->
      let scc = Scc.condense ~n ~succs in
      ignore n;
      Array.for_all
        (fun c ->
          let ms = scc.Scc.members.(c) in
          let expect =
            Array.length ms > 1
            || Array.exists (fun w -> w = ms.(0)) succs.(ms.(0))
          in
          scc.Scc.has_cycle.(c) = expect)
        (Array.init scc.Scc.count (fun i -> i)))

let scc_deterministic =
  prop "condense: deterministic for a given graph" (fun (n, succs) ->
      let a = Scc.condense ~n ~succs and b = Scc.condense ~n ~succs in
      a.Scc.count = b.Scc.count
      && a.Scc.comp_of = b.Scc.comp_of
      && a.Scc.members = b.Scc.members
      && a.Scc.order = b.Scc.order
      && a.Scc.waves = b.Scc.waves
      && a.Scc.has_cycle = b.Scc.has_cycle)

let scc_props =
  List.map QCheck_alcotest.to_alcotest
    [
      scc_partition;
      scc_oracle;
      scc_acyclic_reverse_topo;
      scc_waves;
      scc_has_cycle;
      scc_deterministic;
    ]

(* ---------------- differential: summary vs replay ------------------ *)

(* Byte-identical findings: same bugs, same spans, same order, same
   rendered text. *)
let render findings = String.concat "\n" (List.map Rustudy.Finding.to_string findings)

let both_modes label (program : Rustudy.Mir.program) =
  let check name run =
    let s = render (run Summary.Summary) and r = render (run Summary.Replay) in
    Alcotest.(check string) (label ^ ": " ^ name) r s
  in
  check "double_lock" (fun mode -> Detectors.Double_lock.run ~mode program);
  check "uaf extern=true" (fun mode ->
      Detectors.Uaf.run ~assume_extern_derefs:true ~mode program);
  check "uaf extern=false" (fun mode ->
      Detectors.Uaf.run ~assume_extern_derefs:false ~mode program)

let differential =
  [
    case "summary findings byte-identical to replay on the full corpus"
      (fun () ->
        List.iter
          (fun (e : Rustudy.Corpus.entry) ->
            let p =
              Rustudy.load ~file:(e.Rustudy.Corpus.id ^ ".rs")
                e.Rustudy.Corpus.source
            in
            both_modes e.Rustudy.Corpus.id p)
          Rustudy.Corpus.all_bugs);
    case "summary findings byte-identical to replay on every fault mutant"
      (fun () ->
        let compared = ref 0 in
        List.iter
          (fun (e : Rustudy.Corpus.entry) ->
            List.iter
              (fun (mname, mutated) ->
                let label = e.Rustudy.Corpus.id ^ "+" ^ mname in
                (* lower in recovery mode, like the serve pipeline:
                   malformed regions degrade to diagnostics and the
                   rest of the program still reaches MIR *)
                match
                  Rustudy.Cache.load_ctx_recovering ~cache:false
                    ~file:(label ^ ".rs") mutated
                with
                | Ok ctx ->
                    incr compared;
                    both_modes label (Rustudy.Cache.program ctx)
                | Error _ -> ())
              (Fault.mutations ~seed:0x5EED e.Rustudy.Corpus.source))
          Rustudy.Corpus.all_bugs;
        if !compared < 1000 then
          Alcotest.failf
            "only %d mutants lowered — the differential corpus shrank"
            !compared);
    case "summary mode is deterministic run-to-run" (fun () ->
        List.iter
          (fun (e : Rustudy.Corpus.entry) ->
            let p =
              Rustudy.load ~file:(e.Rustudy.Corpus.id ^ ".rs")
                e.Rustudy.Corpus.source
            in
            let once () =
              render (Detectors.Uaf.run ~mode:Summary.Summary p)
              ^ "\x00"
              ^ render (Detectors.Double_lock.run ~mode:Summary.Summary p)
            in
            Alcotest.(check string) e.Rustudy.Corpus.id (once ()) (once ()))
          Rustudy.Corpus.all_bugs);
  ]

(* ---------------- mutual recursion (in-SCC fixpoint) ---------------- *)

let cyclic_src =
  {|
pub unsafe fn ping(m: Arc<Mutex<u64>>, p: *const u8, k: u64) -> u8 {
    let v = pong(m, p, k);
    v
}
pub unsafe fn pong(m: Arc<Mutex<u64>>, p: *const u8, k: u64) -> u8 {
    let v = ping(m, p, k);
    let g = m.lock().unwrap();
    let x = *p;
    x
}
pub fn entry(m: Arc<Mutex<u64>>, p: *const u8) {
    let a = m.lock().unwrap();
    unsafe {
        let v = ping(m, p, 1);
    }
}
|}

let recursion =
  [
    case "mutually recursive SCC converges and matches replay" (fun () ->
        let p = Rustudy.load ~file:"cyclic.rs" cyclic_src in
        let ctx = Rustudy.Cache.create p in
        let scc = Summary.condensation ctx in
        Alcotest.(check bool)
          "one component has a cycle" true
          (Array.exists (fun b -> b) scc.Scc.has_cycle);
        Alcotest.(check bool)
          "ping/pong share a component" true
          (Array.exists (fun ms -> Array.length ms = 2) scc.Scc.members);
        (* A recursive cycle keeps duplicating lock-path entries until
           a round cap fires, and the two modes cap differently (5
           whole-program rounds vs 8 SCC-local rounds) — so on
           divergent synthetic recursion only the *distinct* findings
           are comparable. The corpus/mutant suites above pin the
           byte-level identity where both fixpoints genuinely
           converge. *)
        let distinct run =
          List.sort_uniq compare
            (List.map Rustudy.Finding.to_string (run ()))
        in
        Alcotest.(check (list string))
          "distinct double-lock findings agree"
          (distinct (fun () ->
               Detectors.Double_lock.run ~mode:Summary.Replay p))
          (distinct (fun () ->
               Detectors.Double_lock.run ~mode:Summary.Summary p));
        Alcotest.(check (list string))
          "distinct uaf findings agree"
          (distinct (fun () -> Detectors.Uaf.run ~mode:Summary.Replay p))
          (distinct (fun () -> Detectors.Uaf.run ~mode:Summary.Summary p)));
  ]

(* ---------------- content-addressed store -------------------------- *)

let store_src =
  (* three functions in a chain so a summary actually crosses an edge *)
  {|
pub unsafe fn sink(m: Arc<Mutex<u64>>, p: *const u8) -> u8 {
    let g = m.lock().unwrap();
    let x = *p;
    x
}
pub unsafe fn mid(m: Arc<Mutex<u64>>, p: *const u8) -> u8 {
    let v = sink(m, p);
    v
}
pub unsafe fn top(m: Arc<Mutex<u64>>, p: *const u8) -> u8 {
    let v = mid(m, p);
    v
}
|}

let store =
  [
    case "content store serves byte-identical findings on a warm run"
      (fun () ->
        let saved = Summary.store_min_bodies () in
        Fun.protect
          ~finally:(fun () ->
            Summary.set_store_min_bodies saved;
            Rustudy.Cache.clear_summaries ())
          (fun () ->
            Summary.set_store_min_bodies 0;
            Rustudy.Cache.clear_summaries ();
            let p = Rustudy.load ~file:"store.rs" store_src in
            let replay = render (Detectors.Uaf.run ~mode:Summary.Replay p) in
            let cold = render (Detectors.Uaf.run ~mode:Summary.Summary p) in
            let hits0, misses0 = Rustudy.Cache.summary_cache_counts () in
            (* fresh context, same content digests: every component
               must come out of the store *)
            let warm = render (Detectors.Uaf.run ~mode:Summary.Summary p) in
            let hits1, misses1 = Rustudy.Cache.summary_cache_counts () in
            Alcotest.(check string) "cold = replay" replay cold;
            Alcotest.(check string) "warm = replay" replay warm;
            Alcotest.(check bool) "cold run missed" true (misses0 > 0);
            Alcotest.(check int) "warm run all hits" misses0 misses1;
            Alcotest.(check bool) "warm run hit" true (hits1 > hits0)));
    case "editing one function invalidates only its callers" (fun () ->
        let saved = Summary.store_min_bodies () in
        Fun.protect
          ~finally:(fun () ->
            Summary.set_store_min_bodies saved;
            Rustudy.Cache.clear_summaries ())
          (fun () ->
            Summary.set_store_min_bodies 0;
            Rustudy.Cache.clear_summaries ();
            let p = Rustudy.load ~file:"store.rs" store_src in
            ignore (Detectors.Uaf.run ~mode:Summary.Summary p);
            let _, misses0 = Rustudy.Cache.summary_cache_counts () in
            (* touch [top] only: [sink] and [mid] keep their digests,
               so re-analysis recomputes exactly one component *)
            let edited =
              Str.global_replace
                (Str.regexp_string "let v = mid(m, p);\n    v\n}\n")
                "let v = mid(m, p);\n    let w = v;\n    w\n}\n" store_src
            in
            Alcotest.(check bool) "edit applied" true (edited <> store_src);
            let p' = Rustudy.load ~file:"store.rs" edited in
            ignore (Detectors.Uaf.run ~mode:Summary.Summary p');
            let _, misses1 = Rustudy.Cache.summary_cache_counts () in
            Alcotest.(check int) "one recompute after the edit" (misses0 + 1)
              misses1));
  ]

(* ---------------- metrics ------------------------------------------ *)

let metrics =
  [
    case "summary counters track computations and instantiations" (fun () ->
        let module M = Support.Metrics in
        let was = M.enabled () in
        Fun.protect
          ~finally:(fun () -> if not was then M.disable ())
          (fun () ->
            M.enable ();
            let read name label = M.read_counter ~labels:[ label ] name in
            let c0 = read "rustudy_summary_computed_total" "uaf" in
            let i0 = read "rustudy_summary_instantiated_total" "uaf" in
            let p = Rustudy.load ~file:"store.rs" store_src in
            ignore (Detectors.Uaf.run ~mode:Summary.Summary p);
            let c1 = read "rustudy_summary_computed_total" "uaf" in
            let i1 = read "rustudy_summary_instantiated_total" "uaf" in
            (* three bodies: three summary computations; [mid] and
               [top] each instantiate a callee summary *)
            Alcotest.(check (float 0.01)) "computed" 3.0 (c1 -. c0);
            Alcotest.(check bool) "instantiated" true (i1 -. i0 >= 2.0)));
  ]

(* ---------------- escape client ------------------------------------ *)

let escape_src =
  {|
static mut STASH: u64 = 0;
pub fn ident(x: u64) -> u64 {
    x
}
pub unsafe fn leak(x: u64, y: u64) -> u64 {
    STASH = x;
    y
}
pub unsafe fn via(a: u64, b: u64) -> u64 {
    let v = leak(a, b);
    v
}
|}

let escape =
  [
    case "escape summaries: returned and escaped params, transitively"
      (fun () ->
        let p = Rustudy.load ~file:"escape.rs" escape_src in
        let ctx = Rustudy.Cache.create p in
        let tbl = Summary.escape_summaries ctx in
        let get fn =
          match Hashtbl.find_opt tbl fn with
          | Some e -> e
          | None -> Alcotest.failf "no escape summary for %s" fn
        in
        let mem i s = Analysis.Dataflow.IntSet.mem i s in
        let id = get "ident" in
        Alcotest.(check bool) "ident returns param 0" true
          (mem 0 id.Summary.esc_returned);
        Alcotest.(check bool) "ident escapes nothing" true
          (Analysis.Dataflow.IntSet.is_empty id.Summary.esc_escaped);
        let lk = get "leak" in
        Alcotest.(check bool) "leak escapes param 0" true
          (mem 0 lk.Summary.esc_escaped);
        Alcotest.(check bool) "leak returns param 1" true
          (mem 1 lk.Summary.esc_returned);
        let v = get "via" in
        Alcotest.(check bool) "via escapes param 0 through leak" true
          (mem 0 v.Summary.esc_escaped));
  ]

(* ---------------- parallel wave path ------------------------------- *)

let parallel =
  [
    case "domains:2 computes the same summary table" (fun () ->
        let src = Buffer.create 1024 in
        (* a small diamond: root calls eight leaves *)
        for i = 0 to 7 do
          Buffer.add_string src
            (Printf.sprintf
               "pub unsafe fn leaf%d(p: *const u8) -> u8 {\n    let x = *p;\n\
               \    x\n}\n" i)
        done;
        Buffer.add_string src "pub unsafe fn root(p: *const u8) -> u8 {\n";
        for i = 0 to 7 do
          Buffer.add_string src (Printf.sprintf "    let v%d = leaf%d(p);\n" i i)
        done;
        Buffer.add_string src "    v0\n}\n";
        let p = Rustudy.load ~file:"par.rs" (Buffer.contents src) in
        let seq = render (Detectors.Uaf.run ~mode:Summary.Summary p) in
        let ctx = Rustudy.Cache.create p in
        let tbl =
          Summary.compute ~domains:2 ctx
            {
              Summary.name = "t_par";
              params = "";
              skey = Rustudy.Cache.Ext.create ();
              equal = ( = );
              compute =
                (fun ~lookup (b : Rustudy.Mir.body) ->
                  Array.length b.Rustudy.Mir.blocks
                  + List.length
                      (List.filter_map lookup
                         [ "leaf0"; "leaf1"; "root" ]));
            }
        in
        Alcotest.(check int) "9 summaries" 9 (Hashtbl.length tbl);
        (* findings through the parallel engine stay identical *)
        let par =
          render
            (Detectors.Uaf.run_ctx ~mode:Summary.Summary
               (Rustudy.Cache.create p))
        in
        Alcotest.(check string) "sequential = fresh context" seq par);
  ]

let suite =
  scc_props @ differential @ recursion @ store @ metrics @ escape @ parallel
