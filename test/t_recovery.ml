(* Frontend error recovery and analysis-fuel degradation: malformed
   input must produce diagnostics plus a partial AST — never an
   exception — and a fuel-starved fixpoint must degrade to an
   "incomplete" result instead of diverging. *)

module Ast = Rustudy.Ast
module Diag = Rustudy.Diag

let parse_rec src = Rustudy.parse_recovering ~file:"rec.rs" src

let item_names (crate : Ast.crate) = List.map Ast.item_name crate.Ast.items

let case name f = Alcotest.test_case name `Quick f

(* ---------------- lexer recovery ----------------------------------- *)

let recovers name src ~code =
  case name (fun () ->
      let _, diags = parse_rec src in
      Alcotest.(check bool) "has diagnostics" true (diags <> []);
      Alcotest.(check bool)
        ("some diagnostic has code " ^ Diag.code_name code)
        true
        (List.exists (fun d -> d.Diag.code = code) diags))

let lexer_recovery =
  [
    recovers "unterminated string" "fn f() { let s = \"abc" ~code:Diag.Lex_unterminated_string;
    recovers "unterminated block comment" "fn f() { } /* never closed" ~code:Diag.Lex_unterminated_comment;
    recovers "bad escape" {|fn f() { let s = "a\qb"; }|} ~code:Diag.Lex_bad_escape;
    recovers "invalid hex literal" "fn f() { let x = 0x; }" ~code:Diag.Lex_bad_literal;
    recovers "invalid character" "fn f() { let x = 1; } $ fn g() { }" ~code:Diag.Lex_invalid_char;
    recovers "unterminated char literal" "fn f() { let c = '+; }" ~code:Diag.Lex_unterminated_char;
    recovers "unterminated attribute" "#[derive(Debug fn f() { }" ~code:Diag.Lex_unterminated_attribute;
    case "bad byte between items keeps both items" (fun () ->
        let crate, diags = parse_rec "fn f() { } \001 fn g() { }" in
        Alcotest.(check (list string)) "items" [ "f"; "g" ] (item_names crate);
        Alcotest.(check int) "one diagnostic" 1 (List.length diags));
  ]

(* ---------------- parser recovery ---------------------------------- *)

let parser_recovery =
  [
    case "bad item is isolated, neighbours survive" (fun () ->
        let crate, diags =
          parse_rec "fn good() -> i32 { 1 }\nfn bad( { }\nfn also() { }"
        in
        Alcotest.(check (list string))
          "items" [ "good"; "<error>"; "also" ] (item_names crate);
        Alcotest.(check bool) "has diagnostics" true (diags <> []));
    case "bad statement becomes E_error, rest of block survives" (fun () ->
        let crate, diags =
          parse_rec "fn f() { let x = 1; x + ; let y = 2; y }"
        in
        Alcotest.(check (list string)) "items" [ "f" ] (item_names crate);
        Alcotest.(check bool) "has diagnostics" true (diags <> []);
        let has_error_node =
          Ast.fold_crate
            (fun acc (e : Ast.expr) -> acc || e.Ast.e = Ast.E_error)
            false crate
        in
        Alcotest.(check bool) "E_error present" true has_error_node);
    case "truncated item at EOF" (fun () ->
        let crate, diags = parse_rec "fn f() { let x = 1" in
        Alcotest.(check (list string)) "items" [ "f" ] (item_names crate);
        Alcotest.(check bool) "has diagnostics" true (diags <> []));
    case "unbalanced delimiters" (fun () ->
        let crate, diags = parse_rec "fn f() { ((( }\nfn g() { }" in
        Alcotest.(check bool) "g survives" true
          (List.mem "g" (item_names crate));
        Alcotest.(check bool) "has diagnostics" true (diags <> []));
    case "garbage-only input yields error items, no exception" (fun () ->
        let crate, diags = parse_rec ") ) } ] , ; -> => :: junk" in
        Alcotest.(check bool) "has diagnostics" true (diags <> []);
        Alcotest.(check bool) "only error items" true
          (List.for_all
             (fun i -> match i with Ast.I_error _ -> true | _ -> false)
             crate.Ast.items));
    case "empty input is clean" (fun () ->
        let crate, diags = parse_rec "" in
        Alcotest.(check int) "no items" 0 (List.length crate.Ast.items);
        Alcotest.(check int) "no diagnostics" 0 (List.length diags));
    case "clean source has zero diagnostics and the same AST size" (fun () ->
        let src = "fn f() -> i32 { let x = 1; x + 1 }\nstruct S { a: i32 }" in
        let crate, diags = parse_rec src in
        let strict = Rustudy.parse ~file:"rec.rs" src in
        Alcotest.(check int) "no diagnostics" 0 (List.length diags);
        Alcotest.(check (list string))
          "same items" (item_names strict) (item_names crate));
    case "recovering diags non-empty iff strict parse raises" (fun () ->
        List.iter
          (fun src ->
            let _, diags = parse_rec src in
            let raised =
              match Rustudy.parse ~file:"rec.rs" src with
              | _ -> false
              | exception Rustudy.Parse_error _ -> true
            in
            Alcotest.(check bool)
              ("agree on: " ^ src) raised (diags <> []))
          [
            "fn f() { 1 }";
            "fn f() { 1";
            "fn f( { }";
            "struct S { a: i32 }";
            "fn f() { let s = \"abc";
          ]);
  ]

(* ---------------- recovered programs still analyze ------------------ *)

let pipeline_on_partial =
  [
    case "detectors run on the healthy half of a broken file" (fun () ->
        (* the healthy function contains a real double-lock *)
        let src =
          "fn broken( { }\n\
           fn bug(m: Arc<Mutex<u32>>) { let a = m.lock().unwrap(); let b = \
           m.lock().unwrap(); }"
        in
        match Rustudy.check_result ~file:"partial.rs" src with
        | Error msg -> Alcotest.fail ("pipeline failed: " ^ msg)
        | Ok (findings, diags) ->
            Alcotest.(check bool) "degraded" true (diags <> []);
            Alcotest.(check bool)
              "double-lock still found in healthy part" true
              (List.exists
                 (fun (f : Rustudy.Finding.finding) ->
                   f.Rustudy.Finding.kind = Rustudy.Finding.Double_lock)
                 findings));
    case "raising load_ctx refuses an entry cached as degraded" (fun () ->
        let src = "fn f() { let x = 1" in
        (match Rustudy.Cache.load_ctx_recovering ~file:"degraded-cache.rs" src with
        | Error e -> Alcotest.fail (Printexc.to_string e)
        | Ok ctx ->
            Alcotest.(check bool)
              "context carries diags" true
              (Rustudy.Cache.diags ctx <> []));
        match Rustudy.load_ctx ~file:"degraded-cache.rs" src with
        | _ -> Alcotest.fail "expected Parse_error from strict load"
        | exception Rustudy.Parse_error _ -> ());
  ]

(* ---------------- analysis fuel ------------------------------------ *)

let body_of src =
  match Rustudy.Mir.body_list (Rustudy.load ~file:"fuel.rs" src) with
  | b :: _ -> b
  | [] -> Alcotest.fail "no body"

let fuel =
  let src = "fn f() { let x = 1; let p = &x; let q = p; let r = q; r; }" in
  [
    case "points-to completes under the default budget" (fun () ->
        let r = Analysis.Pointsto.analyze (body_of src) in
        Alcotest.(check bool) "complete" true (Analysis.Pointsto.complete r));
    case "points-to degrades to incomplete when starved" (fun () ->
        Rustudy.Fuel.with_budget 1 (fun () ->
            let r = Analysis.Pointsto.analyze (body_of src) in
            Alcotest.(check bool) "incomplete" false
              (Analysis.Pointsto.complete r)));
    case "storage dataflow degrades to unconverged when starved" (fun () ->
        (* needs several basic blocks so one unit of fuel cannot drain
           the worklist *)
        let body =
          body_of "fn f(c: bool) { let mut x = 1; while c { x = x + 1; } x; }"
        in
        let full = Analysis.Storage.analyze body in
        Alcotest.(check bool) "converged normally" true
          full.Analysis.Dataflow.IntSetFlow.converged;
        Rustudy.Fuel.with_budget 1 (fun () ->
            let starved = Analysis.Storage.analyze body in
            Alcotest.(check bool) "unconverged" false
              starved.Analysis.Dataflow.IntSetFlow.converged));
    case "starved context reports Analysis_incomplete warnings" (fun () ->
        Rustudy.Fuel.with_budget 1 (fun () ->
            match
              Rustudy.Cache.load_ctx_recovering ~file:"fuel-starved.rs"
                "fn f() { let x = 1; let p = &x; *p; }"
            with
            | Error e -> Alcotest.fail (Printexc.to_string e)
            | Ok ctx ->
                let _ = Rustudy.detect_ctx ctx in
                Alcotest.(check bool)
                  "has W0401" true
                  (List.exists
                     (fun d -> d.Diag.code = Diag.Analysis_incomplete)
                     (Rustudy.Cache.diags ctx))));
    case "with_budget restores the previous budget" (fun () ->
        let before = Rustudy.Fuel.get () in
        Rustudy.Fuel.with_budget 7 (fun () ->
            Alcotest.(check int) "inside" 7 (Rustudy.Fuel.get ()));
        Alcotest.(check int) "restored" before (Rustudy.Fuel.get ()));
  ]

let suite = lexer_recovery @ parser_recovery @ pipeline_on_partial @ fuel
