(* Fault injection: every corpus program is corrupted by each
   deterministic mutator and fed to the full pipeline (parse,
   typecheck, lower, detect, report), which must return a result — a
   degraded or failed outcome is fine, an escaping exception is not.
   Also covers the per-task isolation of the domain pool and the
   one-corrupt-entry isolation property of the corpus sweep. *)

module Fault = Rustudy.Fault

let seed = 0x5EED

let case name f = Alcotest.test_case name `Quick f

(* ---------------- mutator determinism ------------------------------- *)

let determinism =
  [
    case "mutators are deterministic in (seed, mutator, source)" (fun () ->
        List.iter
          (fun (e : Rustudy.Corpus.entry) ->
            let a = Fault.mutations ~seed e.Rustudy.Corpus.source in
            let b = Fault.mutations ~seed e.Rustudy.Corpus.source in
            Alcotest.(check (list (pair string string)))
              e.Rustudy.Corpus.id a b)
          Rustudy.Corpus.all_bugs);
    case "all six mutators are exercised" (fun () ->
        Alcotest.(check int) "mutator count" 6
          (List.length Fault.all_mutators));
    case "both trap-aiming mutators are exercised" (fun () ->
        Alcotest.(check int) "trap mutator count" 2
          (List.length Fault.trap_mutators));
    case "trap mutators are deterministic in (seed, source)" (fun () ->
        List.iter
          (fun (e : Rustudy.Corpus.entry) ->
            let a = Fault.trap_mutations ~seed e.Rustudy.Corpus.source in
            let b = Fault.trap_mutations ~seed e.Rustudy.Corpus.source in
            Alcotest.(check (list (pair string string)))
              e.Rustudy.Corpus.id a b)
          Rustudy.Corpus.all_bugs);
    case "inapplicable trap mutants are filtered, applicable ones differ"
      (fun () ->
        (* trap_mutations only returns sources the mutator actually
           changed; an unchanged clone would dilute the differential
           sweep with duplicate programs *)
        let total = ref 0 in
        List.iter
          (fun (e : Rustudy.Corpus.entry) ->
            List.iter
              (fun (name, src) ->
                incr total;
                if src = e.Rustudy.Corpus.source then
                  Alcotest.failf "%s/%s returned the source unchanged"
                    e.Rustudy.Corpus.id name)
              (Fault.trap_mutations ~seed e.Rustudy.Corpus.source))
          Rustudy.Corpus.all_bugs;
        Alcotest.(check bool) "some corpus entries admit injection" true
          (!total > 0));
  ]

(* ---------------- the harness property ------------------------------ *)

(* Run the full pipeline on one mutated source. Returns a short
   outcome string; raises only if the pipeline itself leaked an
   exception, which is exactly what this suite exists to catch. *)
let pipeline ~file src =
  match Rustudy.check_result ~file src with
  | Ok (findings, []) ->
      (* a mutation may still be syntactically valid *)
      Printf.sprintf "clean:%d" (List.length findings)
  | Ok (findings, diags) ->
      (* render the report pieces, as the CLI would *)
      let _report =
        String.concat "\n"
          (List.map Rustudy.Finding.to_string findings
          @ List.map Rustudy.Diag.to_string diags)
      in
      Printf.sprintf "degraded:%d:%d" (List.length findings)
        (List.length diags)
  | Error msg -> "failed:" ^ msg

let never_raises =
  [
    case "pipeline survives every corpus entry x every mutator" (fun () ->
        let failures = ref [] in
        List.iter
          (fun (e : Rustudy.Corpus.entry) ->
            List.iter
              (fun (mname, mutated) ->
                let file =
                  Printf.sprintf "fault-%s-%s.rs" e.Rustudy.Corpus.id mname
                in
                match pipeline ~file mutated with
                | (_ : string) -> ()
                | exception exn ->
                    failures :=
                      Printf.sprintf "%s/%s: %s" e.Rustudy.Corpus.id mname
                        (Printexc.to_string exn)
                      :: !failures)
              (Fault.mutations ~seed e.Rustudy.Corpus.source))
          Rustudy.Corpus.all_bugs;
        Alcotest.(check (list string))
          "no pipeline exceptions" [] (List.rev !failures));
    case "amplified mutants terminate under a deadline, no exceptions" (fun () ->
        (* the divergence-oriented mutators blow up loop nesting and
           body size; the pipeline must neither raise nor hang once a
           wall-clock budget is installed *)
        let entries =
          match Rustudy.Corpus.all_bugs with
          | a :: b :: c :: _ -> [ a; b; c ]
          | _ -> Alcotest.fail "corpus too small"
        in
        List.iter
          (fun (e : Rustudy.Corpus.entry) ->
            List.iter
              (fun m ->
                let mutated = Fault.mutate ~seed m e.Rustudy.Corpus.source in
                let file =
                  Printf.sprintf "amplify-%s-%s.rs" e.Rustudy.Corpus.id
                    (Fault.mutator_name m)
                in
                match
                  Rustudy.Deadline.with_deadline_ms 2000 (fun () ->
                      pipeline ~file mutated)
                with
                | (_ : string) -> ()
                | exception exn ->
                    Alcotest.failf "%s leaked %s" file (Printexc.to_string exn))
              [ Fault.Amplify_loops; Fault.Amplify_body ])
          entries);
    case "detector targets survive mutation too" (fun () ->
        List.iter
          (fun (t : Rustudy.Corpus.Detector_targets.target) ->
            List.iter
              (fun (mname, mutated) ->
                let file =
                  Printf.sprintf "fault-%s-%s.rs"
                    t.Rustudy.Corpus.Detector_targets.t_id mname
                in
                ignore (pipeline ~file mutated))
              (Fault.mutations ~seed
                 t.Rustudy.Corpus.Detector_targets.t_source))
          Rustudy.Corpus.Detector_targets.all);
  ]

(* ---------------- per-entry isolation ------------------------------- *)

let findings_fingerprint (o : Rustudy.Classify.outcome) : string =
  match Rustudy.Classify.outcome_analysis o with
  | None -> "<failed>"
  | Some a ->
      String.concat ";"
        (List.map Rustudy.Finding.to_string a.Rustudy.Classify.findings)

let isolation =
  [
    case "one corrupted entry does not change the others' results" (fun () ->
        (* a healthy slice of the corpus, plus a deliberately corrupted
           clone of the middle entry injected between them *)
        let healthy =
          match Rustudy.Corpus.all_bugs with
          | a :: b :: c :: _ -> [ a; b; c ]
          | _ -> Alcotest.fail "corpus too small"
        in
        let baseline =
          List.map
            (fun (_, o) -> findings_fingerprint o)
            (Rustudy.Classify.analyze_entries ~domains:1 healthy)
        in
        let corrupt =
          let e = List.nth healthy 1 in
          {
            e with
            Rustudy.Corpus.id = e.Rustudy.Corpus.id ^ "-corrupt";
            source = Fault.mutate ~seed Fault.Truncate e.Rustudy.Corpus.source;
          }
        in
        let mixed =
          match healthy with
          | [ a; b; c ] -> [ a; corrupt; b; c ]
          | _ -> assert false
        in
        let mixed_results = Rustudy.Classify.analyze_entries ~domains:1 mixed in
        let healthy_again =
          List.filter_map
            (fun ((e : Rustudy.Corpus.entry), o) ->
              if e.Rustudy.Corpus.id = corrupt.Rustudy.Corpus.id then None
              else Some (findings_fingerprint o))
            mixed_results
        in
        Alcotest.(check (list string))
          "healthy entries unchanged" baseline healthy_again);
    case "a corrupted entry is confined to Degraded/Failed" (fun () ->
        let e = List.hd Rustudy.Corpus.all_bugs in
        let corrupt =
          {
            e with
            Rustudy.Corpus.id = e.Rustudy.Corpus.id ^ "-confined";
            source =
              Fault.mutate ~seed Fault.Delete_span e.Rustudy.Corpus.source;
          }
        in
        match Rustudy.Classify.analyze_entries ~domains:1 [ corrupt ] with
        | [ (_, Rustudy.Classify.Analyzed _) ] | [ (_, Rustudy.Classify.Degraded _) ]
        | [ (_, Rustudy.Classify.Failed _) ] ->
            ()
        | _ -> Alcotest.fail "expected exactly one outcome");
  ]

(* ---------------- domain pool isolation ----------------------------- *)

exception Boom of int

let pool =
  [
    case "try_map captures worker exceptions in input order" (fun () ->
        let f x = if x mod 3 = 0 then raise (Boom x) else x * 10 in
        List.iter
          (fun domains ->
            let results =
              Rustudy.Domain_pool.try_map ~domains ~f [ 1; 2; 3; 4; 5; 6; 7 ]
            in
            let render = function
              | Ok v -> string_of_int v
              | Error (Boom x) -> Printf.sprintf "boom%d" x
              | Error e -> Printexc.to_string e
            in
            Alcotest.(check (list string))
              (Printf.sprintf "domains=%d" domains)
              [ "10"; "20"; "boom3"; "40"; "50"; "boom6"; "70" ]
              (List.map render results))
          [ 1; 4 ]);
    case "map re-raises the first failure after the pool drains" (fun () ->
        let hits = Atomic.make 0 in
        let f x =
          Atomic.incr hits;
          if x = 2 then raise (Boom x) else x
        in
        (match Rustudy.Domain_pool.map ~domains:2 ~f [ 1; 2; 3; 4 ] with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom 2 -> ());
        Alcotest.(check int) "every item still ran" 4 (Atomic.get hits));
    case "map re-raises with the worker's original backtrace" (fun () ->
        Printexc.record_backtrace true;
        let rec deep_raise n =
          if n = 0 then raise (Boom 99) else 1 + deep_raise (n - 1)
        in
        let f x = if x = 3 then deep_raise 5 else x in
        match Rustudy.Domain_pool.map ~domains:2 ~f [ 1; 2; 3; 4 ] with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom 99 ->
            let bt =
              Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
            in
            (* the trace must reach back into this test file (the raise
               site inside the worker), not just the pool's re-raise *)
            let mentions_this_file =
              let needle = "t_fault" in
              let n = String.length needle and m = String.length bt in
              let rec go i =
                i + n <= m && (String.sub bt i n = needle || go (i + 1))
              in
              go 0
            in
            if not mentions_this_file then
              Alcotest.failf "backtrace lost the worker frames:\n%s" bt);
  ]

let suite = determinism @ never_raises @ isolation @ pool
