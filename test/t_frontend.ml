(* Frontend offset-span fidelity and bounded-recovery cost.

   The flat-buffer lexer records byte offsets only and derives
   line/column on demand from a per-file line-start table; these tests
   pin that derivation against an independent eager computation, and
   pin the cost model of panic-mode recovery on the seeded mutant
   suite. *)

module L = Rustudy.Lexer
module Diag = Support.Diag

(* Independent line/col computation, straight from the source text: a
   position at a newline byte belongs to the line that newline
   terminates (the legacy eager-tracking convention). *)
let naive_pos src off =
  let line = ref 1 and start = ref 0 in
  for i = 0 to off - 1 do
    if String.get src i = '\n' then begin
      incr line;
      start := i + 1
    end
  done;
  (!line, off - !start + 1)

let check_span_at src file (sp : Support.Span.t) =
  let check_pos (p : Support.Span.pos) =
    let line, col = naive_pos src p.Support.Span.offset in
    if p.Support.Span.line <> line || p.Support.Span.col <> col then
      Alcotest.failf "%s: offset %d derived %d:%d, expected %d:%d" file
        p.Support.Span.offset p.Support.Span.line p.Support.Span.col line col
  in
  check_pos sp.Support.Span.start_pos;
  check_pos sp.Support.Span.end_pos

(* Every token span of every corpus file, offset-derived vs eager. *)
let differential_token_spans =
  Alcotest.test_case "token spans: offset-derived = eager line/col" `Quick
    (fun () ->
      List.iter
        (fun (e : Rustudy.Corpus.entry) ->
          let src = e.Rustudy.Corpus.source in
          List.iter
            (fun (s : L.spanned) -> check_span_at src e.Rustudy.Corpus.id s.L.span)
            (L.tokenize ~file:e.Rustudy.Corpus.id src))
        Rustudy.Corpus.all_bugs)

(* Non-monotone offset queries exercise the binary-search path, not
   just the line-hint fast path the parser's access pattern hits. *)
let random_access_offsets =
  Alcotest.test_case "pos_of_offset: random access = eager line/col" `Quick
    (fun () ->
      let rand = Random.State.make [| 0x5EED |] in
      List.iter
        (fun (e : Rustudy.Corpus.entry) ->
          let src = e.Rustudy.Corpus.source in
          let buf = L.lex ~file:e.Rustudy.Corpus.id src in
          let n = String.length src in
          for _ = 1 to 50 do
            let off = Random.State.int rand (n + 1) in
            let p = L.pos_of_offset buf off in
            let line, col = naive_pos src off in
            if p.Support.Span.line <> line || p.Support.Span.col <> col then
              Alcotest.failf "%s: offset %d -> %d:%d, expected %d:%d"
                e.Rustudy.Corpus.id off p.Support.Span.line p.Support.Span.col
                line col
          done)
        Rustudy.Corpus.all_bugs)

let line_starts_table =
  Alcotest.test_case "line_starts_of agrees with a char scan" `Quick
    (fun () ->
      List.iter
        (fun src ->
          let expected =
            0
            :: List.filter_map
                 (fun i -> if String.get src i = '\n' then Some (i + 1) else None)
                 (List.init (String.length src) Fun.id)
          in
          Alcotest.(check (list int))
            "line starts" expected
            (Array.to_list (L.line_starts_of src)))
        [ ""; "a"; "\n"; "a\nb"; "a\nb\n"; "\n\n\n"; "one line no newline" ])

(* ------------------------------------------------------------------ *)
(* Bounded recovery                                                    *)
(* ------------------------------------------------------------------ *)

let mutant_suite () =
  List.concat_map
    (fun (e : Rustudy.Corpus.entry) ->
      List.map
        (fun (m, src) -> (e.Rustudy.Corpus.id ^ "-" ^ m, src))
        (Rustudy.Fault.mutations ~seed:0x5EED e.Rustudy.Corpus.source))
    Rustudy.Corpus.all_bugs

let wall f =
  let once () =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  ignore (once ());
  min (once ()) (min (once ()) (once ()))

(* Recovery cost bound: parsing the seeded 1020-mutant suite costs at
   most a small constant per byte over strict parsing of the pristine
   corpus. The threshold is deliberately generous (the measured ratio
   is ~1x; the pre-flat-buffer frontend sat around 2x) so the test
   only fires on a genuine cost-model regression — e.g. recovery
   re-lexing the file per error — not on scheduler noise. *)
let recovery_cost_bound =
  Alcotest.test_case "mutant recovery costs O(clean) per byte" `Quick
    (fun () ->
      let clean =
        List.map
          (fun (e : Rustudy.Corpus.entry) ->
            (e.Rustudy.Corpus.id, e.Rustudy.Corpus.source))
          Rustudy.Corpus.all_bugs
      in
      let mutants = mutant_suite () in
      let bytes l =
        float_of_int
          (List.fold_left (fun a (_, s) -> a + String.length s) 0 l)
      in
      let clean_s =
        wall (fun () ->
            List.iter
              (fun (id, src) -> ignore (Rustudy.parse ~file:id src))
              clean)
      in
      let mutated_s =
        wall (fun () ->
            List.iter
              (fun (id, src) -> ignore (Rustudy.parse_recovering ~file:id src))
              mutants)
      in
      let per_byte_ratio =
        mutated_s /. bytes mutants /. (clean_s /. bytes clean)
      in
      if per_byte_ratio > 10.0 then
        Alcotest.failf
          "recovering a mutant byte costs %.1fx a clean byte (bound: 10x)"
          per_byte_ratio)

(* Seeded determinism: the mutant suite parses to the same diagnostics
   on every run, so the cost bound above is measured on a fixed
   workload. *)
let mutant_determinism =
  Alcotest.test_case "mutant suite diagnostics are deterministic" `Quick
    (fun () ->
      let digest l =
        List.map
          (fun (id, src) ->
            let _, diags = Rustudy.parse_recovering ~file:id src in
            (id, List.length diags, List.map Diag.to_string diags))
          l
      in
      let m = mutant_suite () in
      Alcotest.(check bool) "two passes agree" true (digest m = digest m))

(* The error budget caps recovery on pathological input: one terminal
   "giving up" diagnostic, then a straight jump to EOF instead of
   resynchronizing thousands of times. *)
let error_budget_cap =
  Alcotest.test_case "error budget caps pathological recovery" `Quick
    (fun () ->
      let adversarial =
        String.concat "" (List.init 5_000 (fun _ -> "fn ;\n"))
      in
      let _, diags = Rustudy.parse_recovering ~file:"adv.rs" adversarial in
      let parse_errors =
        List.filter (fun d -> d.Diag.code = Diag.Parse_error_code) diags
      in
      let give_ups =
        List.filter
          (fun d ->
            let m = Diag.to_string d in
            (* the terminal diagnostic, emitted exactly once *)
            String.length m >= 22
            && Str.string_match (Str.regexp ".*too many syntax errors") m 0)
          diags
      in
      Alcotest.(check int) "one giving-up diagnostic" 1 (List.length give_ups);
      if List.length parse_errors > 130 then
        Alcotest.failf "budget did not cap diagnostics: %d parse errors"
          (List.length parse_errors))

let suite =
  [
    differential_token_spans;
    random_access_offsets;
    line_starts_table;
    recovery_cost_bound;
    mutant_determinism;
    error_budget_cap;
  ]
