(* The analysis daemon (`rustudy serve`): wire codec hardening, the
   full request/response taxonomy (ok / shed / draining / bad frame /
   worker lost / retries exhausted), cross-request budget hygiene,
   graceful drain, and crash-safe journal replay — all against live
   in-process servers on temp sockets. *)

module Sjson = Server.Sjson
module Frame = Server.Frame
module Proto = Server.Proto
module Handlers = Server.Handlers
module Daemon = Server.Daemon
module Client = Server.Client

let case name f = Alcotest.test_case name `Quick f

(* ---------------- harness ------------------------------------------- *)

let tmp_sock () = Filename.temp_file "rustudy_srv" ".sock"

let with_server ?(tune = fun c -> c) (f : Daemon.t -> unit) : unit =
  let sock = tmp_sock () in
  (* Daemon.start probes and replaces the stale temp file *)
  let d = Daemon.start (tune (Daemon.default_config ~socket_path:sock)) in
  Fun.protect
    (fun () -> f d)
    ~finally:(fun () ->
      Daemon.stop d;
      try Sys.remove sock with _ -> ())

let rpc_once d req =
  let c = Client.connect (Daemon.socket_path d) in
  Fun.protect (fun () -> Client.rpc c req) ~finally:(fun () -> Client.close c)

let sfield resp key = Option.value ~default:"" (Sjson.str_member key resp)
let status resp = sfield resp "status"
let code resp = sfield resp "code"

(* Wait (bounded) for an asynchronous stat to reach a threshold —
   monitor threads update worker_deaths after the join, not
   synchronously with the response. *)
let await_stat ?(ms = 2000) d pick threshold =
  let rec go n =
    if pick (Daemon.stats d) >= threshold then true
    else if n <= 0 then false
    else begin
      Thread.delay 0.01;
      go (n - 1)
    end
  in
  go (ms / 10)

let buggy_src =
  "fn f(m: Arc<Mutex<u32>>) { let a = m.lock().unwrap(); let b = \
   m.lock().unwrap(); }"

let clean_src = "fn f() { let x = 1; }"

(* Healthy under default budgets, but its reference-typed local pulls
   in the points-to and storage-liveness fixpoints, whose worklists
   need more than one pop — so [fuel:1] starves it deterministically. *)
let fuel_hungry_src =
  "fn f() { let mut i = 0; while i < 10 { i = i + 1; } let r = &i; let y = \
   *r; }"

(* ---------------- wire codec ---------------------------------------- *)

let sjson_cases =
  [
    case "sjson round-trips a nested value" (fun () ->
        let v =
          Sjson.Obj
            [
              ("id", Sjson.Num 7.);
              ("s", Sjson.Str "a\"b\\c\nd\te\001f");
              ("l", Sjson.List [ Sjson.Null; Sjson.Bool true; Sjson.Num (-2.5) ]);
              ("o", Sjson.Obj [ ("k", Sjson.Str "v") ]);
            ]
        in
        Alcotest.(check bool)
          "parse (to_string v) = v" true
          (Sjson.parse (Sjson.to_string v) = v));
    case "sjson rejects trailing garbage" (fun () ->
        Alcotest.(check bool)
          "trailing" true
          (Result.is_error (Sjson.parse_result "{} x")));
    case "sjson rejects invalid UTF-8" (fun () ->
        Alcotest.(check bool)
          "lone continuation" true
          (Result.is_error (Sjson.parse_result "\"\x80\""));
        Alcotest.(check bool)
          "overlong" true
          (Result.is_error (Sjson.parse_result "\"\xC0\xAF\""));
        Alcotest.(check bool)
          "surrogate" true
          (Result.is_error (Sjson.parse_result "\"\xED\xA0\x80\""));
        Alcotest.(check bool)
          "valid multibyte accepted" true
          (Sjson.parse_result "\"\xE2\x9C\x93\"" = Ok (Sjson.Str "\xE2\x9C\x93")));
    case "sjson bounds nesting depth" (fun () ->
        let deep = String.make 500 '[' in
        Alcotest.(check bool)
          "no stack overflow, just an error" true
          (Result.is_error (Sjson.parse_result deep)));
    case "frame round-trips, stream stays framed" (fun () ->
        let stream = Frame.encode "first" ^ Frame.encode "second" in
        let src = Frame.of_string stream in
        Alcotest.(check bool) "first" true (Frame.read src = Ok "first");
        Alcotest.(check bool) "second" true (Frame.read src = Ok "second");
        Alcotest.(check bool) "clean close" true (Frame.read src = Error Frame.Closed));
    case "frame: torn payload and torn header detected" (fun () ->
        let frame = Frame.encode "payload" in
        let torn = String.sub frame 0 (String.length frame - 2) in
        (match Frame.read (Frame.of_string torn) with
        | Error (Frame.Torn _) -> ()
        | _ -> Alcotest.fail "expected torn payload");
        match Frame.read (Frame.of_string "\000\000") with
        | Error (Frame.Torn _) -> ()
        | _ -> Alcotest.fail "expected torn header");
    case "frame: oversized is skimmable, stream recovers" (fun () ->
        let stream = Frame.encode (String.make 100 'x') ^ Frame.encode "next" in
        let src = Frame.of_string stream in
        (match Frame.read ~max_len:10 src with
        | Error (Frame.Oversized 100) ->
            Alcotest.(check bool) "skim" true (Frame.skim src 100)
        | _ -> Alcotest.fail "expected Oversized 100");
        Alcotest.(check bool)
          "next frame intact after skim" true
          (Frame.read ~max_len:10 src = Ok "next"));
    case "frame fuzz: seeded mutations never raise" (fun () ->
        let payload =
          Sjson.to_string
            (Client.check ~id:1 ~source:buggy_src ~file:"t.rs" ())
        in
        let frame = Frame.encode payload in
        for seed = 1 to 25 do
          List.iter
            (fun (_name, bytes) ->
              let src = Frame.of_string bytes in
              (* drain the whole mutated stream through the reader: the
                 only acceptable outcomes are values and read_errors *)
              let rec drain n =
                if n > 0 then
                  match Frame.read ~max_len:4096 src with
                  | Ok _ -> drain (n - 1)
                  | Error (Frame.Oversized len) ->
                      if Frame.skim src len then drain (n - 1)
                  | Error _ -> ()
              in
              drain 8)
            (Support.Fault.frame_mutations ~seed frame)
        done);
  ]

(* ---------------- request round trips -------------------------------- *)

let roundtrip_cases =
  [
    case "ping answers ok and echoes the id" (fun () ->
        with_server @@ fun d ->
        let resp = rpc_once d (Client.ping ~id:42) in
        Alcotest.(check string) "status" "ok" (status resp);
        Alcotest.(check bool)
          "id echoed" true
          (Sjson.int_member "id" resp = Some 42));
    case "check response is byte-identical to the offline handler" (fun () ->
        with_server @@ fun d ->
        let offline = Handlers.check ~file:"t.rs" ~source:buggy_src () in
        let resp =
          rpc_once d (Client.check ~id:1 ~source:buggy_src ~file:"t.rs" ())
        in
        Alcotest.(check string) "status" "findings" (status resp);
        Alcotest.(check string) "out" offline.Proto.out (sfield resp "out");
        Alcotest.(check string) "err" offline.Proto.err (sfield resp "err");
        Alcotest.(check bool)
          "exit" true
          (Sjson.int_member "exit" resp = Some offline.Proto.exit_code);
        Alcotest.(check bool)
          "the buggy source actually has findings" true
          (offline.Proto.out <> "" && offline.Proto.exit_code = 1));
    case "clean source answers 'no issues found'" (fun () ->
        with_server @@ fun d ->
        let resp =
          rpc_once d (Client.check ~id:2 ~source:clean_src ~file:"t.rs" ())
        in
        Alcotest.(check string) "status" "ok" (status resp);
        Alcotest.(check string) "out" "no issues found\n" (sfield resp "out"));
    case "keep-going check degrades on malformed source" (fun () ->
        with_server @@ fun d ->
        let resp =
          rpc_once d
            (Client.check ~id:3 ~source:"fn f( {{{ $$$" ~keep_going:true
               ~file:"t.rs" ())
        in
        Alcotest.(check string) "status" "degraded" (status resp);
        Alcotest.(check bool) "recovery diags on err" true (sfield resp "err" <> ""));
    case "concurrent clients all get their own answers" (fun () ->
        with_server ~tune:(fun c -> { c with Daemon.workers = 4 })
        @@ fun d ->
        let n_threads = 8 and per_thread = 4 in
        let results = Array.make (n_threads * per_thread) None in
        let worker ti =
          let c = Client.connect (Daemon.socket_path d) in
          Fun.protect
            (fun () ->
              for i = 0 to per_thread - 1 do
                let idx = (ti * per_thread) + i in
                let buggy = idx mod 2 = 0 in
                let resp =
                  Client.rpc c
                    (Client.check ~id:idx
                       ~source:(if buggy then buggy_src else clean_src)
                       ~file:"t.rs" ())
                in
                results.(idx) <- Some (buggy, resp)
              done)
            ~finally:(fun () -> Client.close c)
        in
        let ts = List.init n_threads (fun ti -> Thread.create worker ti) in
        List.iter Thread.join ts;
        Array.iteri
          (fun idx r ->
            match r with
            | None -> Alcotest.fail "a request got no response"
            | Some (buggy, resp) ->
                Alcotest.(check bool)
                  "id echoed" true
                  (Sjson.int_member "id" resp = Some idx);
                Alcotest.(check string) "status"
                  (if buggy then "findings" else "ok")
                  (status resp))
          results;
        let s = Daemon.stats d in
        Alcotest.(check int) "all requests counted" (n_threads * per_thread)
          s.Daemon.requests);
  ]

(* ---------------- budgets & hygiene ----------------------------------- *)

let hook_sleep_on file seconds (req : Proto.request) ~attempt:_ =
  match req.Proto.cmd with
  | Proto.Check { file = f; _ } when f = file -> Thread.delay seconds
  | _ -> ()

let budget_cases =
  [
    case "deadline-exhausted request degrades with W0402" (fun () ->
        with_server @@ fun d ->
        let resp =
          rpc_once d
            (Client.check ~id:1 ~deadline_ms:0 ~source:buggy_src
               ~keep_going:true ~file:"t.rs" ())
        in
        Alcotest.(check string) "status" "degraded" (status resp);
        let err = sfield resp "err" in
        Alcotest.(check bool)
          (Printf.sprintf "W0402 on err (got %S)" err)
          true
          (try
             ignore (Str.search_forward (Str.regexp_string "W0402") err 0);
             true
           with Not_found -> false);
        Alcotest.(check bool)
          "timeout counted" true
          ((Daemon.stats d).Daemon.timeouts >= 1));
    case "fuel-exhausted request degrades with W0401" (fun () ->
        with_server @@ fun d ->
        let resp =
          rpc_once d
            (Client.check ~id:1 ~fuel:1 ~source:fuel_hungry_src
               ~keep_going:true ~file:"h.rs" ())
        in
        Alcotest.(check string) "status" "degraded" (status resp);
        let err = sfield resp "err" in
        Alcotest.(check bool)
          (Printf.sprintf "W0401 on err (got %S)" err)
          true
          (try
             ignore (Str.search_forward (Str.regexp_string "W0401") err 0);
             true
           with Not_found -> false));
    case "budgets do not bleed across requests on the same worker" (fun () ->
        (* one worker: both requests run on the same domain, so a
           leaked deadline or fuel override would poison the second *)
        with_server ~tune:(fun c -> { c with Daemon.workers = 1 })
        @@ fun d ->
        let starved =
          rpc_once d
            (Client.check ~id:1 ~deadline_ms:0 ~fuel:1 ~source:buggy_src
               ~keep_going:true ~file:"t.rs" ())
        in
        Alcotest.(check string) "first request degraded" "degraded"
          (status starved);
        let healthy =
          rpc_once d
            (Client.check ~id:2 ~source:buggy_src ~keep_going:true
               ~file:"t.rs" ())
        in
        Alcotest.(check string)
          "second request sees full budgets" "findings" (status healthy);
        Alcotest.(check string) "and no degradation on err" ""
          (sfield healthy "err"));
  ]

(* ---------------- shedding, retries, worker loss ---------------------- *)

let fault_cases =
  [
    case "overload sheds with W0501, then recovers" (fun () ->
        with_server ~tune:(fun c ->
            {
              c with
              Daemon.workers = 1;
              queue_cap = 1;
              before_handle = Some (hook_sleep_on "slow.rs" 0.15);
            })
        @@ fun d ->
        let n = 8 in
        let results = Array.make n None in
        let fire i =
          results.(i) <-
            Some
              (rpc_once d
                 (Client.check ~id:i ~source:clean_src ~file:"slow.rs" ()))
        in
        let ts = List.init n (fun i -> Thread.create fire i) in
        List.iter Thread.join ts;
        let shed = ref 0 and okc = ref 0 in
        Array.iter
          (function
            | None -> Alcotest.fail "a request got no response"
            | Some resp -> (
                match status resp with
                | "rejected" ->
                    Alcotest.(check string) "shed code" "W0501" (code resp);
                    incr shed
                | "ok" -> incr okc
                | other -> Alcotest.fail ("unexpected status " ^ other)))
          results;
        Alcotest.(check bool) "some requests shed" true (!shed >= 1);
        Alcotest.(check bool) "some requests served" true (!okc >= 1);
        let s = Daemon.stats d in
        Alcotest.(check int) "stats.shed matches" !shed s.Daemon.shed;
        (* the queue drains: a later request is served, not shed *)
        let later =
          rpc_once d (Client.check ~id:99 ~source:clean_src ~file:"t.rs" ())
        in
        Alcotest.(check string) "recovered" "ok" (status later));
    case "flaky handler is retried to success" (fun () ->
        let hook (req : Proto.request) ~attempt =
          match req.Proto.cmd with
          | Proto.Check { file = "flaky.rs"; _ } when attempt < 3 ->
              failwith "injected flake"
          | _ -> ()
        in
        with_server ~tune:(fun c ->
            { c with Daemon.retries = 3; retry_base_ms = 1.; before_handle = Some hook })
        @@ fun d ->
        let resp =
          rpc_once d (Client.check ~id:1 ~source:clean_src ~file:"flaky.rs" ())
        in
        Alcotest.(check string) "eventually ok" "ok" (status resp);
        Alcotest.(check int) "two retries counted" 2
          (Daemon.stats d).Daemon.retried);
    case "retry exhaustion answers E0501" (fun () ->
        let hook (req : Proto.request) ~attempt:_ =
          match req.Proto.cmd with
          | Proto.Check { file = "dead.rs"; _ } -> failwith "always fails"
          | _ -> ()
        in
        with_server ~tune:(fun c ->
            { c with Daemon.retries = 2; retry_base_ms = 1.; before_handle = Some hook })
        @@ fun d ->
        let resp =
          rpc_once d (Client.check ~id:1 ~source:clean_src ~file:"dead.rs" ())
        in
        Alcotest.(check string) "status" "error" (status resp);
        Alcotest.(check string) "code" "E0501" (code resp);
        Alcotest.(check int) "errors counted" 1 (Daemon.stats d).Daemon.errors);
    case "killed worker answers W0503 and is respawned" (fun () ->
        let hook (req : Proto.request) ~attempt:_ =
          match req.Proto.cmd with
          | Proto.Check { file = "kill.rs"; _ } -> raise Daemon.Kill_worker
          | _ -> ()
        in
        with_server ~tune:(fun c ->
            { c with Daemon.workers = 1; before_handle = Some hook })
        @@ fun d ->
        let resp =
          rpc_once d (Client.check ~id:1 ~source:clean_src ~file:"kill.rs" ())
        in
        Alcotest.(check string) "status" "error" (status resp);
        Alcotest.(check string) "code" "W0503" (code resp);
        Alcotest.(check bool)
          "worker death observed by the monitor" true
          (await_stat d (fun s -> s.Daemon.worker_deaths) 1);
        (* the single worker died; only a respawn can answer this *)
        let resp2 =
          rpc_once d (Client.check ~id:2 ~source:clean_src ~file:"t.rs" ())
        in
        Alcotest.(check string) "respawned worker serves" "ok" (status resp2));
  ]

(* ---------------- adversarial frames against a live server ----------- *)

let raw_connect d =
  Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  |> fun fd ->
  Unix.connect fd (Unix.ADDR_UNIX (Daemon.socket_path d));
  fd

let adversarial_cases =
  [
    case "garbage frame gets E0502, connection stays usable" (fun () ->
        with_server @@ fun d ->
        let c = Client.connect (Daemon.socket_path d) in
        Fun.protect
          (fun () ->
            (match Client.roundtrip_raw c (Frame.encode "definitely not json") with
            | Ok payload ->
                let resp = Sjson.parse payload in
                Alcotest.(check string) "status" "error" (status resp);
                Alcotest.(check string) "code" "E0502" (code resp)
            | Error e -> Alcotest.fail (Frame.read_error_to_string e));
            (* same connection still frames and serves *)
            let resp =
              Client.rpc c (Client.check ~id:5 ~source:clean_src ~file:"t.rs" ())
            in
            Alcotest.(check string) "healthy after garbage" "ok" (status resp))
          ~finally:(fun () -> Client.close c));
    case "oversized frame gets E0502, connection stays usable" (fun () ->
        with_server ~tune:(fun c -> { c with Daemon.max_frame = 1024 })
        @@ fun d ->
        let c = Client.connect (Daemon.socket_path d) in
        Fun.protect
          (fun () ->
            (match Client.roundtrip_raw c (Frame.encode (String.make 4000 'a')) with
            | Ok payload ->
                Alcotest.(check string) "code" "E0502" (code (Sjson.parse payload))
            | Error e -> Alcotest.fail (Frame.read_error_to_string e));
            let resp =
              Client.rpc c (Client.check ~id:6 ~source:clean_src ~file:"t.rs" ())
            in
            Alcotest.(check string) "healthy after oversized" "ok" (status resp))
          ~finally:(fun () -> Client.close c));
    case "non-UTF-8 payload gets E0502" (fun () ->
        with_server @@ fun d ->
        let c = Client.connect (Daemon.socket_path d) in
        Fun.protect
          (fun () ->
            match Client.roundtrip_raw c (Frame.encode "{\"cmd\":\"\xC0\xAF\"}") with
            | Ok payload ->
                Alcotest.(check string) "code" "E0502" (code (Sjson.parse payload))
            | Error e -> Alcotest.fail (Frame.read_error_to_string e))
          ~finally:(fun () -> Client.close c));
    case "unknown cmd gets E0502 with the id echoed" (fun () ->
        with_server @@ fun d ->
        let c = Client.connect (Daemon.socket_path d) in
        Fun.protect
          (fun () ->
            match
              Client.roundtrip_raw c
                (Frame.encode "{\"id\":11,\"cmd\":\"frobnicate\"}")
            with
            | Ok payload ->
                let resp = Sjson.parse payload in
                Alcotest.(check string) "code" "E0502" (code resp);
                Alcotest.(check bool)
                  "id echoed" true
                  (Sjson.int_member "id" resp = Some 11)
            | Error e -> Alcotest.fail (Frame.read_error_to_string e))
          ~finally:(fun () -> Client.close c));
    case "partial write then hangup does not hurt the server" (fun () ->
        with_server @@ fun d ->
        let fd = raw_connect d in
        (* header promises 100 bytes, deliver 10, vanish *)
        let hdr = Bytes.create 4 in
        Bytes.set_int32_be hdr 0 100l;
        ignore (Unix.write fd hdr 0 4);
        ignore (Unix.write_substring fd "0123456789" 0 10);
        Unix.close fd;
        Alcotest.(check string)
          "server alive" "ok"
          (status (rpc_once d (Client.ping ~id:1))));
    case "seeded frame-mutation fuzz against a live server" (fun () ->
        with_server ~tune:(fun c -> { c with Daemon.max_frame = 4096 })
        @@ fun d ->
        let payload =
          Sjson.to_string (Client.check ~id:1 ~source:clean_src ~file:"t.rs" ())
        in
        let frame = Frame.encode payload in
        for seed = 1 to 10 do
          List.iter
            (fun (name, bytes) ->
              let c = Client.connect_retry (Daemon.socket_path d) in
              Fun.protect
                (fun () ->
                  (* every mutated frame must yield a parseable response
                     frame or a clean close/tear — never a hang or an
                     escaped exception (a dead server would fail the
                     final ping below) *)
                  match Client.roundtrip_raw ~half_close:true c bytes with
                  | Ok payload -> (
                      match Sjson.parse_result payload with
                      | Ok _ -> ()
                      | Error m ->
                          Alcotest.fail
                            (Printf.sprintf "%s/seed %d: unparseable response: %s"
                               name seed m))
                  | Error _ -> ())
                ~finally:(fun () -> Client.close c))
            (Support.Fault.frame_mutations ~seed frame)
        done;
        Alcotest.(check string)
          "server survived the barrage" "ok"
          (status (rpc_once d (Client.ping ~id:999)));
        Alcotest.(check bool)
          "bad frames were counted" true
          ((Daemon.stats d).Daemon.bad_frames >= 1));
  ]

(* ---------------- drain & journal ------------------------------------- *)

let lifecycle_cases =
  [
    case "graceful drain finishes in-flight work, then refuses" (fun () ->
        let sock = tmp_sock () in
        let d =
          Daemon.start
            {
              (Daemon.default_config ~socket_path:sock) with
              Daemon.workers = 1;
              drain_ms = 3000;
              before_handle = Some (hook_sleep_on "slow.rs" 0.2);
            }
        in
        let slow_resp = ref None in
        let th =
          Thread.create
            (fun () ->
              slow_resp :=
                Some
                  (rpc_once d
                     (Client.check ~id:1 ~source:clean_src ~file:"slow.rs" ())))
            ()
        in
        Thread.delay 0.05;
        (* in-flight now; drain must let it finish *)
        Daemon.stop d;
        Thread.join th;
        (match !slow_resp with
        | Some resp ->
            Alcotest.(check string) "in-flight finished normally" "ok"
              (status resp)
        | None -> Alcotest.fail "in-flight request lost");
        Alcotest.(check bool) "stopped" true (Daemon.stopped d);
        (match Client.connect sock with
        | exception Unix.Unix_error _ -> ()
        | c ->
            Client.close c;
            Alcotest.fail "socket should be gone after drain");
        try Sys.remove sock with _ -> ());
    case "drain answers what never started with W0504" (fun () ->
        let sock = tmp_sock () in
        let d =
          Daemon.start
            {
              (Daemon.default_config ~socket_path:sock) with
              Daemon.workers = 1;
              drain_ms = 1;
              before_handle = Some (hook_sleep_on "slow.rs" 0.4);
            }
        in
        let n = 3 in
        let results = Array.make n None in
        let ts =
          List.init n (fun i ->
              Thread.create
                (fun () ->
                  results.(i) <-
                    Some
                      (rpc_once d
                         (Client.check ~id:i ~source:clean_src ~file:"slow.rs" ())))
                ())
        in
        Thread.delay 0.1;
        (* 1 in flight, 2 queued; the 1 ms grace expires instantly *)
        Daemon.stop d;
        List.iter Thread.join ts;
        let drained = ref 0 and lost = ref 0 and okc = ref 0 in
        Array.iter
          (function
            | None -> Alcotest.fail "a request got no response"
            | Some resp -> (
                match code resp with
                | "W0504" -> incr drained
                | "W0503" -> incr lost
                | _ -> incr okc))
          results;
        Alcotest.(check int) "every request answered" n (!drained + !lost + !okc);
        Alcotest.(check bool) "queued work rejected W0504" true (!drained >= 1);
        try Sys.remove sock with _ -> ());
    case "shutdown request drains the server" (fun () ->
        let sock = tmp_sock () in
        let d = Daemon.start (Daemon.default_config ~socket_path:sock) in
        let resp = rpc_once d (Client.shutdown ~id:1) in
        Alcotest.(check string) "shutdown acknowledged" "ok" (status resp);
        Alcotest.(check bool)
          "drain requested" true
          (Daemon.shutdown_requested d);
        (* the CLI's serve loop would call stop; do it ourselves *)
        Daemon.stop d;
        Alcotest.(check bool) "stopped" true (Daemon.stopped d);
        try Sys.remove sock with _ -> ());
    case "requests during drain are rejected W0504" (fun () ->
        let sock = tmp_sock () in
        let d =
          Daemon.start
            {
              (Daemon.default_config ~socket_path:sock) with
              Daemon.workers = 1;
              drain_ms = 1500;
              before_handle = Some (hook_sleep_on "slow.rs" 0.3);
            }
        in
        (* keep a connection from before the drain; the accept loop
           refuses new ones once draining *)
        let c = Client.connect sock in
        let slow =
          Thread.create
            (fun () ->
              ignore
                (rpc_once d
                   (Client.check ~id:1 ~source:clean_src ~file:"slow.rs" ())))
            ()
        in
        Thread.delay 0.05;
        let stopper = Thread.create (fun () -> Daemon.stop d) () in
        Thread.delay 0.05;
        (* state is Draining now (stop waits for the slow request) *)
        let resp =
          Client.rpc c (Client.check ~id:2 ~source:clean_src ~file:"t.rs" ())
        in
        Alcotest.(check string) "status" "rejected" (status resp);
        Alcotest.(check string) "code" "W0504" (code resp);
        Client.close c;
        Thread.join slow;
        Thread.join stopper;
        try Sys.remove sock with _ -> ());
    case "journal replays completed responses byte-identically" (fun () ->
        let sock = tmp_sock () in
        let journal = Filename.temp_file "rustudy_srv" ".journal" in
        Sys.remove journal;
        let tune c = { c with Daemon.journal = Some journal } in
        let req_bytes id =
          Frame.encode
            (Sjson.to_string
               (Client.check ~id ~source:buggy_src ~file:"t.rs" ()))
        in
        let ask d id =
          let c = Client.connect (Daemon.socket_path d) in
          Fun.protect
            (fun () ->
              match Client.roundtrip_raw c (req_bytes id) with
              | Ok payload -> payload
              | Error e -> Alcotest.fail (Frame.read_error_to_string e))
            ~finally:(fun () -> Client.close c)
        in
        let d1 = Daemon.start (tune (Daemon.default_config ~socket_path:sock)) in
        let first = ask d1 7 in
        Daemon.stop d1;
        (* restart on the same journal: the response must replay
           byte-for-byte without recomputation *)
        let d2 = Daemon.start (tune (Daemon.default_config ~socket_path:sock)) in
        let second = ask d2 7 in
        Alcotest.(check string) "byte-identical replay" first second;
        Alcotest.(check int) "served from the journal" 1
          (Daemon.stats d2).Daemon.replayed;
        (* a different id patches cleanly into the journalled bytes *)
        let third = Sjson.parse (ask d2 9) in
        Alcotest.(check bool)
          "id patched" true
          (Sjson.int_member "id" third = Some 9);
        Alcotest.(check string) "same body" (sfield (Sjson.parse first) "out")
          (sfield third "out");
        Daemon.stop d2;
        (try Sys.remove journal with _ -> ());
        try Sys.remove sock with _ -> ());
  ]

(* ---------------- admin introspection ops ----------------------------- *)

let ifield resp key = Option.value ~default:(-1) (Sjson.int_member key resp)

let admin_cases =
  [
    case "stats answers inline with live counters and gauges" (fun () ->
        with_server @@ fun d ->
        let _ =
          rpc_once d (Client.check ~id:1 ~source:buggy_src ~file:"t.rs" ())
        in
        let resp = rpc_once d (Client.stats ~id:2) in
        Alcotest.(check string) "status" "ok" (status resp);
        Alcotest.(check bool) "id echoed" true (ifield resp "id" = 2);
        let s =
          Option.value ~default:(Sjson.Obj []) (Sjson.member "stats" resp)
        in
        Alcotest.(check string) "state" "running" (sfield s "state");
        Alcotest.(check bool) "requests counted" true (ifield s "requests" >= 2);
        Alcotest.(check int) "queue_cap" 64 (ifield s "queue_cap");
        Alcotest.(check int) "workers" 2 (ifield s "workers");
        Alcotest.(check int) "workers_live" 2 (ifield s "workers_live");
        Alcotest.(check bool) "uptime" true (ifield s "uptime_ms" >= 0);
        Alcotest.(check bool)
          "flight events flowing" true
          (ifield s "flight_events" >= 1));
    case "health reports pid, protocol version, worker liveness" (fun () ->
        with_server @@ fun d ->
        let resp = rpc_once d (Client.health ~id:3) in
        Alcotest.(check string) "status" "ok" (status resp);
        let h =
          Option.value ~default:(Sjson.Obj []) (Sjson.member "health" resp)
        in
        Alcotest.(check int) "pid (in-process daemon)" (Unix.getpid ())
          (ifield h "pid");
        Alcotest.(check int) "proto" Proto.version (ifield h "proto");
        Alcotest.(check string) "state" "running" (sfield h "state");
        Alcotest.(check int) "workers_live" 2 (ifield h "workers_live"));
    case "enriched ping: uptime, pid, proto, workers" (fun () ->
        with_server @@ fun d ->
        let resp = rpc_once d (Client.ping ~id:4) in
        Alcotest.(check string) "status" "ok" (status resp);
        Alcotest.(check int) "pid" (Unix.getpid ()) (ifield resp "pid");
        Alcotest.(check int) "proto" Proto.version (ifield resp "proto");
        Alcotest.(check int) "workers" 2 (ifield resp "workers");
        Alcotest.(check bool) "uptime" true (ifield resp "uptime_ms" >= 0));
    case "metrics op: json and prometheus formats, bad format E0502"
      (fun () ->
        let was = Support.Metrics.enabled () in
        Support.Metrics.enable ();
        Fun.protect
          ~finally:(fun () -> if not was then Support.Metrics.disable ())
        @@ fun () ->
        with_server @@ fun d ->
        let _ =
          rpc_once d (Client.check ~id:1 ~source:clean_src ~file:"t.rs" ())
        in
        let j = rpc_once d (Client.metrics ~id:2 ()) in
        Alcotest.(check string) "json status" "ok" (status j);
        Alcotest.(check bool)
          "metrics_enabled" true
          (Sjson.bool_member "metrics_enabled" j = Some true);
        (match Sjson.member "metrics" j with
        | Some (Sjson.List fams) ->
            Alcotest.(check bool)
              "server families exported" true
              (List.exists
                 (fun f ->
                   match Sjson.str_member "name" f with
                   | Some n ->
                       String.length n >= 15
                       && String.sub n 0 15 = "rustudy_server_"
                   | None -> false)
                 fams)
        | _ -> Alcotest.fail "metrics member missing or not a list");
        let p = rpc_once d (Client.metrics ~id:3 ~format:"prometheus" ()) in
        let text = sfield p "text" in
        Alcotest.(check bool)
          "prometheus text exposition" true
          (try
             ignore (Str.search_forward (Str.regexp_string "rustudy_") text 0);
             true
           with Not_found -> false);
        let bad = rpc_once d (Client.metrics ~id:4 ~format:"xml" ()) in
        Alcotest.(check string) "bad format rejected" "E0502" (code bad));
    case "admin ops bypass a saturated worker pool" (fun () ->
        with_server ~tune:(fun c ->
            {
              c with
              Daemon.workers = 1;
              before_handle = Some (hook_sleep_on "slow.rs" 0.5);
            })
        @@ fun d ->
        let slow =
          Thread.create
            (fun () ->
              ignore
                (rpc_once d
                   (Client.check ~id:1 ~source:clean_src ~file:"slow.rs" ())))
            ()
        in
        Thread.delay 0.1;
        (* the sole worker is asleep; stats must still answer fast *)
        let t0 = Unix.gettimeofday () in
        let resp = rpc_once d (Client.stats ~id:2) in
        let dt = Unix.gettimeofday () -. t0 in
        Alcotest.(check string) "answered" "ok" (status resp);
        Alcotest.(check bool)
          (Printf.sprintf "inline, not queued (%.3fs)" dt)
          true (dt < 0.35);
        let s =
          Option.value ~default:(Sjson.Obj []) (Sjson.member "stats" resp)
        in
        Alcotest.(check int) "the slow request shows inflight" 1
          (ifield s "inflight");
        Thread.join slow);
  ]

(* ---------------- request ids, access log, flight op ------------------ *)

let reqid_cases =
  [
    case "request id is echoed and traceable through the access log"
      (fun () ->
        with_server @@ fun d ->
        let resp =
          rpc_once d (Client.check ~id:41 ~source:buggy_src ~file:"t.rs" ())
        in
        let req = ifield resp "req" in
        Alcotest.(check bool) "response carries req id" true (req >= 1);
        let line =
          List.find_opt
            (fun l -> Sjson.int_member "req" l = Some req)
            (Daemon.access_log d)
        in
        match line with
        | None -> Alcotest.fail "no access-log line for the request id"
        | Some l ->
            Alcotest.(check string) "op" "check" (sfield l "op");
            Alcotest.(check bool) "client id" true (ifield l "id" = 41);
            Alcotest.(check string) "outcome" "findings" (sfield l "status");
            Alcotest.(check int) "attempts" 1 (ifield l "attempts");
            Alcotest.(check bool) "wall clocked" true (ifield l "wall_ns" >= 0);
            Alcotest.(check bool)
              "queue wait clocked" true
              (ifield l "queue_ns" >= 0);
            Alcotest.(check bool) "bytes counted" true (ifield l "bytes" > 0));
    case "request ids are distinct and monotone across a connection"
      (fun () ->
        with_server @@ fun d ->
        let c = Client.connect (Daemon.socket_path d) in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let r1 = ifield (Client.rpc c (Client.ping ~id:1)) "req" in
        let r2 = ifield (Client.rpc c (Client.ping ~id:2)) "req" in
        Alcotest.(check bool) "minted" true (r1 >= 1);
        Alcotest.(check bool) "monotone" true (r2 > r1));
    case "flight op returns the black box and the access log" (fun () ->
        with_server @@ fun d ->
        let _ = rpc_once d (Client.ping ~id:1) in
        let resp = rpc_once d (Client.flight ~id:2) in
        Alcotest.(check string) "status" "ok" (status resp);
        let dump = sfield resp "flight" in
        Alcotest.(check bool)
          "dump has the meta header" true
          (try
             ignore
               (Str.search_forward
                  (Str.regexp_string "\"kind\":\"flight.meta\"")
                  dump 0);
             true
           with Not_found -> false);
        match Sjson.member "access_log" resp with
        | Some (Sjson.List (_ :: _)) -> ()
        | _ -> Alcotest.fail "access_log missing or empty");
    case "access log is bounded with exact drop accounting" (fun () ->
        (* 16 is the smallest ring the daemon will build *)
        with_server ~tune:(fun c -> { c with Daemon.access_log_cap = 16 })
        @@ fun d ->
        let c = Client.connect (Daemon.socket_path d) in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        for i = 1 to 36 do
          ignore (Client.rpc c (Client.ping ~id:i))
        done;
        Alcotest.(check int) "ring holds the cap" 16
          (List.length (Daemon.access_log d));
        Alcotest.(check int) "drops counted exactly" 20 (Daemon.access_dropped d);
        (* the survivors are the newest lines *)
        Alcotest.(check (list int))
          "newest window, oldest first"
          (List.init 16 (fun k -> 21 + k))
          (List.filter_map
             (fun l -> Sjson.int_member "id" l)
             (Daemon.access_log d)));
    case "10k-request hammer keeps both rings bounded" (fun () ->
        with_server @@ fun d ->
        let c = Client.connect (Daemon.socket_path d) in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let n = 10_000 in
        for i = 1 to n do
          ignore (Client.rpc c (Client.ping ~id:i))
        done;
        Alcotest.(check int) "all requests served" n
          ((Daemon.stats d).Daemon.requests);
        Alcotest.(check int) "access log capped at the default" 1024
          (List.length (Daemon.access_log d));
        Alcotest.(check int) "access drops exact" (n - 1024)
          (Daemon.access_dropped d);
        (* flight rings overwrite instead of growing: far fewer events
           buffered than were recorded (admit + finish per request) *)
        Alcotest.(check bool)
          "flight ring bounded" true
          (Support.Flight.events_total () <= 8192 * 4);
        Alcotest.(check bool)
          "flight drops accounted" true
          (Support.Flight.dropped_total () > 0));
  ]

(* ---------------- top's percentile estimator -------------------------- *)

let top_cases =
  let hist count buckets =
    {
      Server.Top.h_count = count;
      h_sum = 0.0;
      h_buckets = buckets;
    }
  in
  [
    case "percentile interpolates inside the owning bucket" (fun () ->
        let h = hist 100 [ (1.0, 10); (10.0, 90); (infinity, 100) ] in
        (match Server.Top.percentile h 0.50 with
        | Some p ->
            Alcotest.(check (float 1e-9)) "p50" 5.5 p
        | None -> Alcotest.fail "p50 missing");
        (* q landing in the first bucket interpolates from zero *)
        match Server.Top.percentile h 0.05 with
        | Some p -> Alcotest.(check (float 1e-9)) "p5" 0.5 p
        | None -> Alcotest.fail "p5 missing");
    case "percentile in the +Inf bucket degrades to the last bound"
      (fun () ->
        let h = hist 100 [ (1.0, 10); (10.0, 90); (infinity, 100) ] in
        match Server.Top.percentile h 0.99 with
        | Some p -> Alcotest.(check (float 1e-9)) "p99" 10.0 p
        | None -> Alcotest.fail "p99 missing");
    case "percentile of an empty histogram is None" (fun () ->
        Alcotest.(check bool)
          "None" true
          (Server.Top.percentile (hist 0 []) 0.5 = None));
  ]

let suite =
  sjson_cases @ roundtrip_cases @ budget_cases @ fault_cases
  @ adversarial_cases @ lifecycle_cases @ admin_cases @ reqid_cases
  @ top_cases
