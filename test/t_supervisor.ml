(* Supervision layer: wall-clock deadlines, seeded retry backoff, the
   checkpoint journal, checkpoint/resume byte-identity, and the
   deadline -> retry -> quarantine ladder. Wall-clock is kept tight:
   backoff sleeps are injected away, the watchdog is off, and
   deadlines are either 0 (instant, deterministic) or generous enough
   to never be waited out. *)

module Deadline = Rustudy.Deadline
module Retry = Rustudy.Retry
module Journal = Rustudy.Journal
module Supervisor = Rustudy.Supervisor
module Classify = Rustudy.Classify

let case name f = Alcotest.test_case name `Quick f

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

(* No real sleeps, no watchdog: every test below is deterministic and
   fast regardless of machine load. *)
let quiet =
  {
    Supervisor.default_config with
    Supervisor.watchdog_interval_ms = 0;
    sleep = (fun (_ : float) -> ());
  }

(* ---------------- deadlines ----------------------------------------- *)

let deadline =
  [
    case "no ambient deadline never expires" (fun () ->
        let t = Deadline.token () in
        Alcotest.(check bool) "active" false (Deadline.active t);
        Alcotest.(check bool) "expired" false (Deadline.expired t);
        Alcotest.(check bool) "hit" false (Deadline.hit t));
    case "a 0 ms budget expires on the first poll" (fun () ->
        Deadline.with_deadline_ms 0 (fun () ->
            let t = Deadline.token () in
            Alcotest.(check bool) "active" true (Deadline.active t);
            Alcotest.(check bool) "expired" true (Deadline.expired t);
            Alcotest.(check bool) "hit is sticky" true (Deadline.hit t)));
    case "a generous budget does not expire" (fun () ->
        Deadline.with_deadline_ms 60_000 (fun () ->
            let t = Deadline.token () in
            Alcotest.(check bool) "expired" false (Deadline.expired t)));
    case "nesting keeps the tighter deadline" (fun () ->
        Deadline.with_deadline_ms 0 (fun () ->
            Deadline.with_deadline_ms 60_000 (fun () ->
                let t = Deadline.token () in
                Alcotest.(check bool) "inner cannot extend" true
                  (Deadline.expired t))));
    case "the ambient deadline is restored on exit" (fun () ->
        Deadline.with_deadline_ms 60_000 (fun () ->
            let outer = Deadline.current () in
            Deadline.with_deadline_ms 30_000 (fun () -> ());
            Alcotest.(check bool) "restored" true
              (Deadline.current () = outer)));
    case "default budget set/get round-trips, <= 0 disables" (fun () ->
        let saved = Deadline.get_default_ms () in
        Deadline.set_default_ms 1234;
        Alcotest.(check int) "set" 1234 (Deadline.get_default_ms ());
        Deadline.set_default_ms (-5);
        Alcotest.(check int) "disabled" 0 (Deadline.get_default_ms ());
        Deadline.set_default_ms saved);
    case "reset clears a leaked ambient deadline" (fun () ->
        (* simulate a worker killed mid-scope: the Fun.protect restore
           of with_deadline_ms never ran, so the deadline leaks into
           whatever runs next on this domain. The server's per-request
           reset is the cure; regression-pin it here. *)
        Deadline.with_deadline_ms 0 (fun () ->
            Alcotest.(check bool)
              "leak visible before reset" true
              (Deadline.current () <> None);
            Deadline.reset ();
            Alcotest.(check bool) "cleared" true (Deadline.current () = None);
            let t = Deadline.token () in
            Alcotest.(check bool)
              "fresh tokens no longer expire" false (Deadline.expired t));
        (* the scoped restore after reset is harmless: still clear *)
        Alcotest.(check bool)
          "no deadline after the scope" true
          (Deadline.current () = None));
  ]

(* ---------------- fuel CAS restore ---------------------------------- *)

let fuel =
  [
    case "with_budget restore is compare-and-set, not a blind write"
      (fun () ->
        let saved = Rustudy.Fuel.get () in
        Rustudy.Fuel.set 1111;
        (* a concurrent [set] during the scope must survive the exit *)
        Rustudy.Fuel.with_budget 2222 (fun () -> Rustudy.Fuel.set 3333);
        Alcotest.(check int) "concurrent set wins" 3333 (Rustudy.Fuel.get ());
        (* the undisturbed case still restores *)
        Rustudy.Fuel.with_budget 2222 (fun () ->
            Alcotest.(check int) "applied inside" 2222 (Rustudy.Fuel.get ()));
        Alcotest.(check int) "restored after" 3333 (Rustudy.Fuel.get ());
        Rustudy.Fuel.set saved);
    case "domain-scoped budget shadows the global one locally" (fun () ->
        let saved = Rustudy.Fuel.get () in
        Rustudy.Fuel.set 5000;
        Rustudy.Fuel.with_domain_budget 3 (fun () ->
            Alcotest.(check int) "override wins here" 3
              (Rustudy.Fuel.effective ());
            Alcotest.(check int)
              "the global budget is untouched" 5000 (Rustudy.Fuel.get ());
            (* counters start from the effective budget *)
            let c = Rustudy.Fuel.counter () in
            Alcotest.(check bool) "burn 1" true (Rustudy.Fuel.burn c);
            Alcotest.(check bool) "burn 2" true (Rustudy.Fuel.burn c);
            Alcotest.(check bool) "burn 3" true (Rustudy.Fuel.burn c);
            Alcotest.(check bool) "exhausted at 3" false (Rustudy.Fuel.burn c);
            (* other domains never see the override *)
            let remote =
              Domain.spawn (fun () -> Rustudy.Fuel.effective ())
            in
            Alcotest.(check int) "other domain unaffected" 5000
              (Domain.join remote));
        Alcotest.(check int)
          "override gone after the scope" 5000 (Rustudy.Fuel.effective ());
        Rustudy.Fuel.set saved);
    case "reset_domain clears a leaked override" (fun () ->
        Rustudy.Fuel.with_domain_budget 7 (fun () ->
            Rustudy.Fuel.reset_domain ();
            Alcotest.(check bool)
              "cleared mid-scope" true
              (Rustudy.Fuel.domain_budget () = None));
        Alcotest.(check bool)
          "still clear after the scope" true
          (Rustudy.Fuel.domain_budget () = None));
  ]

(* ---------------- retry policy -------------------------------------- *)

let retry =
  [
    case "backoff is deterministic, zero before attempt 2, and bounded"
      (fun () ->
        let p = Retry.default in
        Alcotest.(check (float 0.0))
          "attempt 1" 0.0
          (Retry.delay_ms p ~key:"k" ~attempt:1);
        List.iter
          (fun attempt ->
            let d = Retry.delay_ms p ~key:"k" ~attempt in
            Alcotest.(check (float 0.0))
              (Printf.sprintf "attempt %d deterministic" attempt)
              d
              (Retry.delay_ms p ~key:"k" ~attempt);
            let nominal =
              p.Retry.base_delay_ms
              *. (p.Retry.multiplier ** float_of_int (attempt - 2))
            in
            let lo = nominal *. (1.0 -. p.Retry.jitter)
            and hi = nominal *. (1.0 +. p.Retry.jitter) in
            if d < lo -. 1e-9 || d > hi +. 1e-9 then
              Alcotest.failf "attempt %d delay %.3f outside [%.3f, %.3f]"
                attempt d lo hi)
          [ 2; 3; 4 ]);
    case "run retries to success and counts sleeps" (fun () ->
        let calls = ref 0 and sleeps = ref 0 in
        let r =
          Retry.run
            ~sleep:(fun (_ : float) -> incr sleeps)
            Retry.default ~key:"x"
            (fun ~attempt ->
              incr calls;
              if attempt < 3 then Error attempt else Ok "done")
        in
        Alcotest.(check bool) "succeeded" true (r = Ok "done");
        Alcotest.(check int) "three attempts" 3 !calls;
        Alcotest.(check int) "two backoff sleeps" 2 !sleeps);
    case "run reports all errors oldest-first on exhaustion" (fun () ->
        match
          Retry.run
            ~sleep:(fun (_ : float) -> ())
            Retry.default ~key:"x"
            (fun ~attempt -> Error attempt)
        with
        | Ok _ -> Alcotest.fail "expected exhaustion"
        | Error errs -> Alcotest.(check (list int)) "oldest-first" [ 1; 2; 3 ] errs);
  ]

(* ---------------- journal ------------------------------------------- *)

let temp_journal () = Filename.temp_file "rustudy-journal" ".j"

let journal =
  [
    case "round-trip, escapes, last-wins" (fun () ->
        let path = temp_journal () in
        let j = Journal.open_append path in
        Journal.append j ~key:"a" "one\ttwo\nthree\\four\r";
        Journal.append j ~key:"b" "plain";
        Journal.append j ~key:"a" "superseded by me";
        Journal.close j;
        Alcotest.(check (list (pair string string)))
          "surviving records, chronological"
          [ ("b", "plain"); ("a", "superseded by me") ]
          (Journal.load path);
        Sys.remove path);
    case "escape/unescape inverse, bad escapes rejected" (fun () ->
        let samples = [ ""; "plain"; "\t\n\r\\"; "a\\nb"; "x\ty\nz" ] in
        List.iter
          (fun s ->
            Alcotest.(check string) "inverse" s (Journal.unescape (Journal.escape s)))
          samples;
        List.iter
          (fun bad ->
            match Journal.unescape bad with
            | (_ : string) -> Alcotest.failf "accepted %S" bad
            | exception Journal.Bad_escape -> ())
          [ "\\"; "\\q"; "trailing\\" ]);
    case "torn tail and corrupt lines are skipped, reopen heals" (fun () ->
        let path = temp_journal () in
        let j = Journal.open_append path in
        Journal.append j ~key:"a" "1";
        Journal.append j ~key:"b" "2";
        Journal.close j;
        (* a wrong-checksum line and a torn (kill -9 mid-write) tail *)
        let oc =
          open_out_gen [ Open_append; Open_binary ] 0o644 path
        in
        output_string oc "J1\tdeadbeef\tx\ty\n";
        output_string oc "J1\tab";
        close_out oc;
        Alcotest.(check (list (pair string string)))
          "valid records survive"
          [ ("a", "1"); ("b", "2") ]
          (Journal.load path);
        (* re-opening after the crash must not glue the next record
           onto the torn line *)
        let j = Journal.open_append path in
        Journal.append j ~key:"c" "3";
        Journal.close j;
        Alcotest.(check (list (pair string string)))
          "post-crash append survives"
          [ ("a", "1"); ("b", "2"); ("c", "3") ]
          (Journal.load path);
        Sys.remove path);
    case "missing file is an empty journal" (fun () ->
        Alcotest.(check (list (pair string string)))
          "empty" []
          (Journal.load "/nonexistent/rustudy-journal"));
  ]

(* ---------------- golden diagnostic codes --------------------------- *)

let golden_codes =
  [
    case "the stable code set is pinned" (fun () ->
        Alcotest.(check (list string))
          "all_codes"
          [
            "E0101"; "E0102"; "E0103"; "E0104"; "E0105"; "E0106"; "E0107";
            "E0201"; "E0202"; "E0301"; "W0401"; "W0402"; "W0403"; "W0404";
            "W0405"; "E0501"; "W0501"; "E0502"; "W0503"; "W0504"; "E0601";
            "W0602"; "W0603"; "W0604"; "E0000";
          ]
          (List.map Rustudy.Diag.code_name Rustudy.Diag.all_codes));
    case "code_of_name inverts code_name" (fun () ->
        List.iter
          (fun c ->
            Alcotest.(check bool)
              (Rustudy.Diag.code_name c) true
              (Rustudy.Diag.code_of_name (Rustudy.Diag.code_name c) = Some c))
          Rustudy.Diag.all_codes;
        Alcotest.(check bool)
          "unknown name" true
          (Rustudy.Diag.code_of_name "E9999" = None));
  ]

(* ---------------- supervisor core ----------------------------------- *)

let supervisor =
  [
    case "all-success run is positional and clean" (fun () ->
        let verdicts, stats =
          Supervisor.run ~config:quiet
            ~f:(fun ~attempt:_ ~key:_ x -> Ok (x * 2))
            [ ("a", 1); ("b", 2); ("c", 3) ]
        in
        Alcotest.(check (list (pair string int)))
          "positional results"
          [ ("a", 2); ("b", 4); ("c", 6) ]
          (List.map
             (fun (k, v) ->
               match v with
               | Supervisor.Done (x, 1) -> (k, x)
               | _ -> Alcotest.failf "unexpected verdict for %s" k)
             verdicts);
        Alcotest.(check int) "completed" 3 stats.Supervisor.completed;
        Alcotest.(check int) "retried" 0 stats.Supervisor.retried;
        Alcotest.(check int) "quarantined" 0 stats.Supervisor.quarantined);
    case "failures retry then quarantine deterministically" (fun () ->
        let f ~attempt ~key (_ : unit) =
          match key with
          | "flaky" when attempt >= 2 -> Ok attempt
          | "good" -> Ok attempt
          | _ ->
              Error
                {
                  Supervisor.f_msg = Printf.sprintf "%s/%d" key attempt;
                  f_timeout = key = "stuck";
                }
        in
        let verdicts, stats =
          Supervisor.run ~config:quiet ~f
            [ ("good", ()); ("flaky", ()); ("stuck", ()) ]
        in
        (match List.assoc "good" verdicts with
        | Supervisor.Done (1, 1) -> ()
        | _ -> Alcotest.fail "good should succeed first try");
        (match List.assoc "flaky" verdicts with
        | Supervisor.Done (2, 2) -> ()
        | _ -> Alcotest.fail "flaky should succeed on attempt 2");
        (match List.assoc "stuck" verdicts with
        | Supervisor.Quarantined { attempts = 3; errors } ->
            Alcotest.(check (list string))
              "errors oldest-first"
              [ "stuck/1"; "stuck/2"; "stuck/3" ]
              errors
        | _ -> Alcotest.fail "stuck should quarantine");
        Alcotest.(check int) "completed" 2 stats.Supervisor.completed;
        (* flaky attempt 2; stuck attempts 2 and 3 *)
        Alcotest.(check int) "retried" 3 stats.Supervisor.retried;
        Alcotest.(check int) "timeouts" 3 stats.Supervisor.timeouts;
        Alcotest.(check int) "quarantined" 1 stats.Supervisor.quarantined);
    case "an expired run deadline skips everything, never drops" (fun () ->
        let config = { quiet with Supervisor.run_deadline_ms = Some 0 } in
        let verdicts, stats =
          Supervisor.run ~config
            ~f:(fun ~attempt:_ ~key:_ x -> Ok x)
            [ ("a", 1); ("b", 2) ]
        in
        Alcotest.(check int) "skipped" 2 stats.Supervisor.skipped;
        List.iter
          (fun (k, v) ->
            match v with
            | Supervisor.Skipped _ -> ()
            | _ -> Alcotest.failf "%s not skipped" k)
          verdicts);
    case "on_done fires exactly once per item" (fun () ->
        let seen = ref [] in
        let _ =
          Supervisor.run ~config:quiet
            ~on_done:(fun ~key _ -> seen := key :: !seen)
            ~f:(fun ~attempt:_ ~key:_ x -> Ok x)
            [ ("a", 1); ("b", 2); ("c", 3) ]
        in
        Alcotest.(check (list string))
          "each key once"
          [ "a"; "b"; "c" ]
          (List.sort compare !seen));
  ]

(* ---------------- the full ladder over real corpus entries ---------- *)

let ladder =
  [
    case "instant deadline: degrade -> retry -> quarantine, exit via W0404"
      (fun () ->
        let entries = take 2 Rustudy.Corpus.all_bugs in
        let config =
          {
            quiet with
            Supervisor.per_entry_deadline_ms = Some 0;
            retry = { Retry.default with Retry.max_attempts = 2 };
          }
        in
        let results, stats, replayed =
          Classify.analyze_entries_supervised ~config entries
        in
        Alcotest.(check int) "nothing replayed" 0 replayed;
        Alcotest.(check int) "all quarantined" 2 stats.Supervisor.quarantined;
        Alcotest.(check int) "one retry each" 2 stats.Supervisor.retried;
        Alcotest.(check int) "every attempt timed out" 4
          stats.Supervisor.timeouts;
        List.iter
          (fun ((e : Rustudy.Corpus.entry), o) ->
            match o with
            | Classify.Quarantined { attempts = 2; errors } ->
                List.iter
                  (fun m ->
                    Alcotest.(check string)
                      "deterministic timeout message"
                      "per-entry wall-clock deadline exceeded (W0402)" m)
                  errors
            | _ -> Alcotest.failf "%s not quarantined" e.Rustudy.Corpus.id)
          results;
        let summary = Classify.degraded_summary results in
        Alcotest.(check bool)
          "summary names W0404" true
          (let needle = "[W0404]" in
           let n = String.length needle and m = String.length summary in
           let rec go i =
             i + n <= m && (String.sub summary i n = needle || go (i + 1))
           in
           go 0));
  ]

(* ---------------- checkpoint / resume ------------------------------- *)

let fingerprints results = List.map (fun (_, o) -> Classify.payload_of_outcome o) results

let resume =
  [
    case "kill-and-resume replays byte-identically, analyzes only the rest"
      (fun () ->
        let entries = take 6 Rustudy.Corpus.all_bugs in
        let baseline, _, _ =
          Classify.analyze_entries_supervised ~config:quiet entries
        in
        (* simulate a run killed after 3 entries: only they reach the
           checkpoint journal *)
        let j1 = temp_journal () in
        let _ =
          Classify.analyze_entries_supervised ~config:quiet ~checkpoint:j1
            (take 3 entries)
        in
        (* resume over the full list into a fresh journal *)
        let j2 = temp_journal () in
        let results, stats, replayed =
          Classify.analyze_entries_supervised ~config:quiet ~checkpoint:j2
            ~resume:j1 entries
        in
        Alcotest.(check int) "first half replayed" 3 replayed;
        Alcotest.(check int) "only the rest analyzed" 3 stats.Supervisor.total;
        Alcotest.(check (list string))
          "outcomes byte-identical to an unbroken run" (fingerprints baseline)
          (fingerprints results);
        Alcotest.(check string)
          "summaries identical too"
          (Classify.degraded_summary baseline)
          (Classify.degraded_summary results);
        (* the fresh journal is self-contained: resuming from it alone
           replays everything *)
        let results2, stats2, replayed2 =
          Classify.analyze_entries_supervised ~config:quiet ~resume:j2 entries
        in
        Alcotest.(check int) "everything replayed" 6 replayed2;
        Alcotest.(check int) "nothing analyzed" 0 stats2.Supervisor.total;
        Alcotest.(check (list string))
          "still byte-identical" (fingerprints baseline)
          (fingerprints results2);
        Sys.remove j1;
        Sys.remove j2);
    case "a stale journal entry (changed source) is re-analyzed" (fun () ->
        let e = List.hd Rustudy.Corpus.all_bugs in
        let j = temp_journal () in
        let _ =
          Classify.analyze_entries_supervised ~config:quiet ~checkpoint:j [ e ]
        in
        let changed =
          { e with Rustudy.Corpus.source = e.Rustudy.Corpus.source ^ "\n" }
        in
        let _, stats, replayed =
          Classify.analyze_entries_supervised ~config:quiet ~resume:j
            [ changed ]
        in
        Alcotest.(check int) "not replayed" 0 replayed;
        Alcotest.(check int) "re-analyzed" 1 stats.Supervisor.total;
        Sys.remove j);
    case "payload codec round-trips every corpus outcome" (fun () ->
        let entries = take 8 Rustudy.Corpus.all_bugs in
        let results, _, _ =
          Classify.analyze_entries_supervised ~config:quiet entries
        in
        List.iter
          (fun ((e : Rustudy.Corpus.entry), o) ->
            let p = Classify.payload_of_outcome o in
            match Classify.outcome_of_payload e p with
            | None -> Alcotest.failf "%s payload rejected" e.Rustudy.Corpus.id
            | Some o2 ->
                Alcotest.(check string)
                  e.Rustudy.Corpus.id p
                  (Classify.payload_of_outcome o2))
          results);
  ]

let suite =
  deadline @ fuel @ retry @ journal @ golden_codes @ supervisor @ ladder
  @ resume
