(* Analysis-cache and parallel-pipeline tests: the shared context must
   never change what the detectors report, only how often the underlying
   analyses run; the domain pool must return the sequential results in
   the sequential order. *)

let case name f = Alcotest.test_case name `Quick f

let finding_strings fs = List.map Rustudy.Finding.to_string fs

let load_entry (e : Corpus.entry) =
  Rustudy.load ~file:(e.Corpus.id ^ ".rs") e.Corpus.source

(* The pre-cache behaviour, reconstructed: every detector run on its
   own, each recomputing its own analyses, concatenated in exactly the
   order [Detectors.All.bugs] uses. *)
let uncached_bugs program =
  Detectors.Uaf.run program
  @ Detectors.Double_free.run program
  @ Detectors.Invalid_free.run program
  @ Detectors.Uninit.run program
  @ Detectors.Null_deref.run program
  @ Detectors.Buffer.run program
  @ Detectors.Double_lock.run program
  @ Detectors.Lock_order.run program
  @ Detectors.Condvar.run program
  @ Detectors.Channel.run program
  @ Detectors.Once.run program
  @ Detectors.Sync_misuse.run program
  @ Detectors.Atomicity.run program
  @ Detectors.Atomicity.run_with_sessions program
  @ Detectors.Refcell.run program

let cached_equals_uncached =
  case "cached findings = per-detector findings on every corpus entry"
    (fun () ->
      List.iter
        (fun (e : Corpus.entry) ->
          let program = load_entry e in
          Alcotest.(check (list string))
            e.Corpus.id
            (finding_strings (uncached_bugs program))
            (finding_strings (Detectors.All.bugs program)))
        Corpus.all_bugs)

let compiler_checks_agree =
  case "cached compiler checks = direct borrowck run" (fun () ->
      List.iter
        (fun (e : Corpus.entry) ->
          let program = load_entry e in
          Alcotest.(check (list string))
            e.Corpus.id
            (finding_strings
               (List.concat_map Detectors.Borrowck.run_body
                  (Ir.Mir.body_list program)))
            (finding_strings (Detectors.All.compiler_checks program)))
        Corpus.all_bugs)

(* The acceptance criterion: one [All.bugs] call computes points-to,
   liveness and alias resolution at most once per body, and the call
   graph at most once per program. *)
let analysis_counts =
  case "one bugs run: each analysis at most once per body" (fun () ->
      (* pointsto now counts runs in the metrics registry *)
      let was_enabled = Support.Metrics.enabled () in
      Support.Metrics.enable ();
      Fun.protect
        ~finally:(fun () ->
          if not was_enabled then Support.Metrics.disable ())
        (fun () ->
          List.iter
            (fun (e : Corpus.entry) ->
              let program = load_entry e in
              let n_bodies = List.length (Ir.Mir.body_list program) in
              let pts0 =
                Support.Metrics.read_counter "rustudy_pointsto_runs_total"
              in
              let sto0 = Analysis.Storage.runs () in
              let ali0 = Analysis.Alias.runs () in
              let cg0 = Analysis.Callgraph.runs () in
              ignore (Detectors.All.bugs program);
              let le what count bound =
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s ran %d times for %d bodies"
                     e.Corpus.id what count bound)
                  true (count <= bound)
              in
              le "points-to"
                (int_of_float
                   (Support.Metrics.read_counter "rustudy_pointsto_runs_total"
                   -. pts0))
                n_bodies;
              le "liveness" (Analysis.Storage.runs () - sto0) n_bodies;
              le "alias" (Analysis.Alias.runs () - ali0) n_bodies;
              le "callgraph" (Analysis.Callgraph.runs () - cg0) 1)
            Corpus.all_bugs))

let cache_stats_hits =
  case "shared context records cache hits" (fun () ->
      let e = List.hd Corpus.all_bugs in
      let ctx = Analysis.Cache.create (load_entry e) in
      ignore (Detectors.All.bugs_ctx ctx);
      let s = Analysis.Cache.stats ctx in
      Alcotest.(check bool)
        "at least one memoised analysis" true
        (s.Analysis.Cache.pointsto_memos > 0);
      Alcotest.(check bool)
        "later detectors hit the memo tables" true
        (s.Analysis.Cache.hits > 0))

let program_cache_shares =
  case "program cache: same (file, source) lowers once" (fun () ->
      Analysis.Cache.clear_programs ();
      let e = List.hd Corpus.all_bugs in
      let file = e.Corpus.id ^ ".rs" in
      let ctx1 = Analysis.Cache.load_ctx ~file e.Corpus.source in
      let ctx2 = Analysis.Cache.load_ctx ~file e.Corpus.source in
      Alcotest.(check bool)
        "second load returns the shared context" true
        (Analysis.Cache.program ctx1 == Analysis.Cache.program ctx2))

let parallel_matches_sequential =
  case "parallel analyze_all = sequential analyze_all, same order"
    (fun () ->
      Analysis.Cache.clear_programs ();
      let seq = Study.Classify.analyze_all ~domains:1 () in
      Analysis.Cache.clear_programs ();
      let par = Study.Classify.analyze_all ~domains:4 () in
      Alcotest.(check int)
        "same length" (List.length seq) (List.length par);
      List.iter2
        (fun (a : Study.Classify.analysis) (b : Study.Classify.analysis) ->
          Alcotest.(check string)
            "entry order" a.Study.Classify.entry.Corpus.id
            b.Study.Classify.entry.Corpus.id;
          Alcotest.(check (list string))
            a.Study.Classify.entry.Corpus.id
            (finding_strings a.Study.Classify.findings)
            (finding_strings b.Study.Classify.findings))
        seq par)

let parallel_eval_matches =
  case "parallel detector_eval = sequential detector_eval" (fun () ->
      Analysis.Cache.clear_programs ();
      let seq = Study.Detector_eval.run ~domains:1 () in
      Analysis.Cache.clear_programs ();
      let par = Study.Detector_eval.run ~domains:4 () in
      Alcotest.(check bool) "identical result" true (seq = par))

let domain_pool_order =
  case "domain pool preserves input order under contention" (fun () ->
      let items = List.init 100 (fun i -> i) in
      let expected = List.map (fun i -> i * i) items in
      Alcotest.(check (list int))
        "squares in order" expected
        (Support.Domain_pool.map ~domains:4 ~f:(fun i -> i * i) items))

let domain_pool_exn =
  case "domain pool re-raises the first failing item's exception"
    (fun () ->
      let f i = if i >= 7 then failwith (string_of_int i) else i in
      match Support.Domain_pool.map ~domains:4 ~f (List.init 20 Fun.id) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg -> Alcotest.(check string) "first" "7" msg)

let suite =
  [
    cached_equals_uncached;
    compiler_checks_agree;
    analysis_counts;
    cache_stats_hits;
    program_cache_shares;
    parallel_matches_sequential;
    parallel_eval_matches;
    domain_pool_order;
    domain_pool_exn;
  ]
