(* Differential tests for the perf kernels: the bitset set type against
   Set.Make(Int), the word-level dataflow engine and storage transfers
   against their generic counterparts, the RPO worklist against the
   legacy seed-all FIFO, the rewritten points-to solver's interned ids,
   and — end to end — every detector's findings on the full bug corpus
   against the committed golden snapshot. *)

open QCheck
module B = Support.Bitset
module IS = Set.Make (Int)
module Mir = Ir.Mir
module Flow = Analysis.Dataflow.IntSetFlow

let case name f = Alcotest.test_case name `Quick f

let corpus_progs =
  lazy
    (List.map
       (fun (e : Corpus.entry) ->
         (e.Corpus.id, Rustudy.load ~file:(e.Corpus.id ^ ".rs") e.Corpus.source))
       Corpus.all_bugs)

let corpus_bodies =
  lazy
    (List.concat_map (fun (_, p) -> Mir.body_list p) (Lazy.force corpus_progs))

(* ---------------- bitset vs Set.Make(Int) -------------------------- *)

type op = OAdd of int | ORemove of int | OUnion of int list | OInter of int list | ODiff of int list

let gen_elt = Gen.int_bound 200

let gen_op =
  Gen.oneof
    [
      Gen.map (fun i -> OAdd i) gen_elt;
      Gen.map (fun i -> ORemove i) gen_elt;
      Gen.map (fun l -> OUnion l) (Gen.list_size (Gen.int_bound 8) gen_elt);
      Gen.map (fun l -> OInter l) (Gen.list_size (Gen.int_bound 8) gen_elt);
      Gen.map (fun l -> ODiff l) (Gen.list_size (Gen.int_bound 8) gen_elt);
    ]

let arb_ops = make (Gen.list_size (Gen.int_bound 40) gen_op)

let apply_b t = function
  | OAdd i -> B.add i t
  | ORemove i -> B.remove i t
  | OUnion l -> B.union t (B.of_list l)
  | OInter l -> B.inter t (B.of_list l)
  | ODiff l -> B.diff t (B.of_list l)

let apply_s t = function
  | OAdd i -> IS.add i t
  | ORemove i -> IS.remove i t
  | OUnion l -> IS.union t (IS.of_list l)
  | OInter l -> IS.inter t (IS.of_list l)
  | ODiff l -> IS.diff t (IS.of_list l)

let ops_agree =
  Test.make ~name:"bitset op sequences agree with Set.Make(Int)" ~count:500
    arb_ops (fun ops ->
      let b = List.fold_left apply_b B.empty ops in
      let s = List.fold_left apply_s IS.empty ops in
      B.elements b = IS.elements s
      && B.cardinal b = IS.cardinal s
      && B.is_empty b = IS.is_empty s
      && B.max_elt_opt b = IS.max_elt_opt s
      && B.choose_opt b = IS.min_elt_opt s
      && B.fold (fun i acc -> i :: acc) b []
         = IS.fold (fun i acc -> i :: acc) s []
      && List.for_all (fun i -> B.mem i b = IS.mem i s) [ 0; 1; 63; 64; 200 ])

let relations_agree =
  Test.make ~name:"bitset equal/subset agree with Set.Make(Int)" ~count:500
    (pair (list_of_size (Gen.int_bound 30) (make gen_elt))
       (list_of_size (Gen.int_bound 30) (make gen_elt)))
    (fun (xs, ys) ->
      let a = B.of_list xs and b = B.of_list ys in
      let sa = IS.of_list xs and sb = IS.of_list ys in
      B.equal a b = IS.equal sa sb
      && B.subset a b = IS.subset sa sb
      && B.subset b a = IS.subset sb sa)

let word_bridge =
  Test.make ~name:"word bridge round-trips; msb/ntz match extrema" ~count:500
    (list_of_size (Gen.int_bound 20) (make (Gen.int_bound (B.word_bits - 1))))
    (fun bits ->
      let t = B.of_list bits in
      let w = B.word0 t in
      B.equal (B.of_word w) t
      && (w = 0
         || B.msb w = Option.get (B.max_elt_opt t)
            && B.ntz w = Option.get (B.choose_opt t)))

(* ---------------- word kernels vs generic transfers ---------------- *)

(* Every statement and terminator of every corpus body, replayed from
   the analysis' own entry states: the word transfer must be the exact
   image of the set transfer. *)
let storage_word_mirrors () =
  List.iter
    (fun (b : Mir.body) ->
      if Array.length b.Mir.locals <= B.word_bits then begin
        let r = Analysis.Storage.analyze b in
        Array.iteri
          (fun i (blk : Mir.block) ->
            let state = ref r.Flow.entry.(i) in
            List.iter
              (fun s ->
                let next = Analysis.Storage.transfer_stmt !state s in
                Alcotest.(check int)
                  "word_stmt image" (B.word0 next)
                  (Analysis.Storage.word_stmt (B.word0 !state) s);
                state := next)
              blk.Mir.stmts;
            Alcotest.(check int)
              "word_term image"
              (B.word0 (Analysis.Storage.transfer_term !state blk.Mir.term))
              (Analysis.Storage.word_term (B.word0 !state) blk.Mir.term))
          b.Mir.blocks
      end)
    (Lazy.force corpus_bodies)

let word_engine_agrees () =
  List.iter
    (fun (b : Mir.body) ->
      if Array.length b.Mir.locals <= B.word_bits then begin
        let g =
          Flow.run b ~init:B.empty
            ~transfer_stmt:Analysis.Storage.transfer_stmt
            ~transfer_term:Analysis.Storage.transfer_term
        in
        let w =
          Analysis.Dataflow.Word.run b ~init:0
            ~transfer_stmt:Analysis.Storage.word_stmt
            ~transfer_term:Analysis.Storage.word_term
        in
        Array.iteri
          (fun i e ->
            Alcotest.(check int)
              "entry word" (B.word0 e)
              w.Analysis.Dataflow.Word.entry.(i);
            Alcotest.(check int)
              "exit word"
              (B.word0 g.Flow.exit_.(i))
              w.Analysis.Dataflow.Word.exit_.(i))
          g.Flow.entry
      end)
    (Lazy.force corpus_bodies)

(* ---------------- RPO worklist vs legacy FIFO ---------------------- *)

let rpo_vs_fifo () =
  let rpo_total = ref 0 and fifo_total = ref 0 in
  List.iter
    (fun (b : Mir.body) ->
      let r =
        Flow.run b ~init:B.empty
          ~transfer_stmt:Analysis.Storage.transfer_stmt
          ~transfer_term:Analysis.Storage.transfer_term
      in
      let f =
        Flow.run ~order:`Fifo b ~init:B.empty
          ~transfer_stmt:Analysis.Storage.transfer_stmt
          ~transfer_term:Analysis.Storage.transfer_term
      in
      rpo_total := !rpo_total + r.Flow.passes;
      fifo_total := !fifo_total + f.Flow.passes;
      (* the disciplines agree everywhere once unreachable blocks (which
         only the legacy FIFO seeds) are out of the picture *)
      if Array.for_all Fun.id r.Flow.reachable then
        Array.iteri
          (fun i e ->
            Alcotest.(check bool)
              "same entry fixpoint" true
              (B.equal e f.Flow.entry.(i));
            Alcotest.(check bool)
              "same exit fixpoint" true
              (B.equal r.Flow.exit_.(i) f.Flow.exit_.(i)))
          r.Flow.entry)
    (Lazy.force corpus_bodies);
  (* iteration counts are what changes: RPO never does more work than
     seed-everything FIFO over the corpus *)
  Alcotest.(check bool)
    "rpo total passes <= fifo" true
    (!rpo_total <= !fifo_total)

(* ---------------- unreachable blocks ------------------------------- *)

let mk_span =
  let p o = { Support.Span.line = 1; col = o + 1; offset = o } in
  Support.Span.make ~file:"k.rs" ~start_pos:(p 0) ~end_pos:(p 1)

let mk_stmt kind = { Mir.kind; s_span = mk_span; s_unsafe = false }

let mk_body blocks n_locals =
  {
    Mir.fn_id = "k";
    arg_count = 0;
    locals =
      Array.init n_locals (fun _ ->
          {
            Mir.l_name = None;
            l_ty = Sema.Ty.unit_;
            l_mut = false;
            l_user = false;
            l_span = mk_span;
          });
    blocks;
    fn_unsafe = false;
    body_span = mk_span;
    captures = [];
    body_cfg = None;
    body_ix = -1;
  }

let unreachable_bottom () =
  (* block 1 is unreachable but has an edge into the reachable join:
     its StorageDead must never leak into the fixpoint *)
  let blocks =
    [|
      { Mir.stmts = []; term = Mir.Goto 2; t_span = mk_span };
      {
        Mir.stmts = [ mk_stmt (Mir.StorageDead 1) ];
        term = Mir.Goto 2;
        t_span = mk_span;
      };
      { Mir.stmts = []; term = Mir.Return None; t_span = mk_span };
    |]
  in
  let b = mk_body blocks 2 in
  let r =
    Flow.run b ~init:B.empty
      ~transfer_stmt:Analysis.Storage.transfer_stmt
      ~transfer_term:Analysis.Storage.transfer_term
  in
  Alcotest.(check bool) "block 1 unreachable" false r.Flow.reachable.(1);
  Alcotest.(check bool) "unreachable entry bottom" true
    (B.is_empty r.Flow.entry.(1));
  Alcotest.(check bool) "unreachable exit bottom" true
    (B.is_empty r.Flow.exit_.(1));
  Alcotest.(check bool) "join not polluted" true (B.is_empty r.Flow.entry.(2));
  (* only the two reachable blocks are ever transferred *)
  Alcotest.(check int) "passes = reachable blocks" 2 r.Flow.passes;
  (* the word engine has the same discipline *)
  let w =
    Analysis.Dataflow.Word.run b ~init:0
      ~transfer_stmt:Analysis.Storage.word_stmt
      ~transfer_term:Analysis.Storage.word_term
  in
  Alcotest.(check int) "word unreachable exit" 0
    w.Analysis.Dataflow.Word.exit_.(1);
  Alcotest.(check int) "word join not polluted" 0
    w.Analysis.Dataflow.Word.entry.(2);
  Alcotest.(check int) "word passes" 2 w.Analysis.Dataflow.Word.passes

(* ---------------- points-to ---------------------------------------- *)

let pointsto_interning_agrees () =
  List.iter
    (fun (b : Mir.body) ->
      let t = Analysis.Pointsto.analyze b in
      Alcotest.(check bool) "corpus solve converges" true
        (Analysis.Pointsto.complete t);
      let n = Array.length b.Mir.locals in
      for l = 0 to n - 1 do
        let from_set =
          Analysis.Pointsto.LocSet.fold
            (fun loc acc ->
              match loc with
              | Analysis.Pointsto.Loc.LLocal x -> x :: acc
              | _ -> acc)
            (Analysis.Pointsto.of_local t l)
            []
          |> List.sort compare
        in
        let from_bits =
          B.fold
            (fun i acc -> if i < n then i :: acc else acc)
            (Analysis.Pointsto.pointee_bits t l)
            []
          |> List.rev
        in
        Alcotest.(check (list int)) "local pointees" from_set from_bits
      done)
    (Lazy.force corpus_bodies)

let loc_compare_total_order () =
  let module L = Analysis.Pointsto.Loc in
  let samples =
    [
      L.LLocal 0; L.LLocal 1; L.LLocal 63; L.LStatic "a"; L.LStatic "b";
      L.LHeap 0; L.LHeap 7; L.LUnknown;
    ]
  in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          Alcotest.(check bool)
            "equal iff compare = 0" (L.equal x y)
            (L.compare x y = 0);
          Alcotest.(check int)
            "antisymmetric" (compare (L.compare x y) 0)
            (compare 0 (L.compare y x));
          List.iter
            (fun z ->
              if L.compare x y <= 0 && L.compare y z <= 0 then
                Alcotest.(check bool) "transitive" true (L.compare x z <= 0))
            samples)
        samples)
    samples

(* pointsto reports through the metrics registry; dataflow still keeps
   its atomic [transfers] alongside the registry *)
let counters_advance () =
  let bodies = Lazy.force corpus_bodies in
  let was_enabled = Support.Metrics.enabled () in
  Support.Metrics.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Support.Metrics.disable ())
    (fun () ->
      let read = Support.Metrics.read_counter in
      let r0 = read "rustudy_pointsto_runs_total" in
      let p0 = read "rustudy_pointsto_passes_total" in
      let t0 = Analysis.Dataflow.transfers () in
      List.iter (fun b -> ignore (Analysis.Pointsto.analyze b)) bodies;
      Alcotest.(check (float 0.0))
        "one pointsto run per body"
        (r0 +. float_of_int (List.length bodies))
        (read "rustudy_pointsto_runs_total");
      Alcotest.(check bool)
        "solver pops counted" true
        (read "rustudy_pointsto_passes_total" > p0);
      List.iter (fun b -> ignore (Analysis.Storage.analyze b)) bodies;
      Alcotest.(check bool)
        "block transfers counted" true
        (Analysis.Dataflow.transfers () > t0))

(* ---------------- detectors: golden corpus snapshot ---------------- *)

let golden_snapshot () =
  let expected =
    let ic = open_in "golden_findings.txt" in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  let actual =
    List.concat_map
      (fun (id, p) ->
        List.sort compare
          (List.map Detectors.Report.to_string (Detectors.All.all p))
        |> List.map (fun f -> id ^ "|" ^ f))
      (Lazy.force corpus_progs)
  in
  Alcotest.(check int) "finding count" (List.length expected)
    (List.length actual);
  List.iter2 (fun e a -> Alcotest.(check string) "finding" e a) expected actual

(* ---------------- uaf: wide bodies take the generic path ----------- *)

let uaf_generic_path () =
  let b = Buffer.create 2048 in
  Buffer.add_string b "pub unsafe fn big() -> u8 {\n";
  for i = 0 to 69 do
    Buffer.add_string b (Printf.sprintf "    let x%d = %du8;\n" i (i mod 250))
  done;
  Buffer.add_string b
    "    let hay = vec![97u8, 44u8];\n\
    \    let save = hay.as_ptr();\n\
    \    drop(hay);\n\
    \    *save\n\
     }\n";
  let p = Rustudy.load ~file:"wide.rs" (Buffer.contents b) in
  let body =
    match Mir.find_body p "big" with
    | Some body -> body
    | None -> Alcotest.fail "no body big"
  in
  (* wide enough that the detector must use its generic bitset path *)
  Alcotest.(check bool) "body exceeds one word" true
    (Array.length body.Mir.locals > B.word_bits);
  Alcotest.(check bool) "generic path still reports the UAF" true
    (List.exists
       (fun (f : Detectors.Report.finding) ->
         f.Detectors.Report.kind = Detectors.Report.Use_after_free)
       (Detectors.Uaf.run p))

let suite =
  [
    QCheck_alcotest.to_alcotest ops_agree;
    QCheck_alcotest.to_alcotest relations_agree;
    QCheck_alcotest.to_alcotest word_bridge;
    case "storage word transfers mirror the set transfers" storage_word_mirrors;
    case "word engine agrees with the set engine on the corpus"
      word_engine_agrees;
    case "rpo and fifo reach the same fixpoint; rpo does no more work"
      rpo_vs_fifo;
    case "unreachable blocks stay bottom and are never transferred"
      unreachable_bottom;
    case "points-to interned bits agree with the Loc sets"
      pointsto_interning_agrees;
    case "Loc.compare is a structural total order" loc_compare_total_order;
    case "analysis counters advance" counters_advance;
    case "all detectors match the golden corpus snapshot" golden_snapshot;
    case "uaf reports through the generic wide-body path" uaf_generic_path;
  ]
