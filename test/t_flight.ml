(* Flight-recorder tests: the always-on ring buffers must account
   drops exactly, dump parseable JSONL with a meta header, survive
   unwritable black-box paths, and — driven against the real binary —
   leave a dump on disk when a serving process is killed mid-flight. *)

module Flight = Support.Flight
module Sjson = Server.Sjson
module Client = Server.Client

let case name f = Alcotest.test_case name `Quick f

(* Restore global recorder state around each test: the recorder is a
   process-wide singleton shared with every other suite. *)
let with_flight f =
  Flight.enable ();
  Flight.reset ();
  Fun.protect
    ~finally:(fun () ->
      Flight.set_blackbox None;
      Flight.set_ring_capacity 8192;
      Flight.reset ();
      Flight.enable ();
      Support.Trace.set_clock None)
    f

let lines_of s = String.split_on_char '\n' s |> List.filter (( <> ) "")

let parse_line l =
  match Sjson.parse_result l with
  | Ok v -> v
  | Error m -> Alcotest.fail (Printf.sprintf "bad dump line %S: %s" l m)

let kind_of v = Option.value ~default:"" (Sjson.str_member "kind" v)

(* ---------------- recording & dump ----------------------------------- *)

let dump_cases =
  [
    case "dump: meta header then flat events in clock order" (fun () ->
        with_flight @@ fun () ->
        (* injected clock makes timestamps deterministic *)
        let t = ref 0L in
        Support.Trace.set_clock
          (Some (fun () -> t := Int64.add !t 10L; !t));
        Flight.record "first" ~fields:[ ("k", "v1") ];
        Flight.record "second" ~fields:[ ("k", "v\"2"); ("extra", "x") ];
        let dump = Flight.dump_jsonl () in
        match lines_of dump with
        | meta :: rest ->
            let m = parse_line meta in
            Alcotest.(check string) "meta kind" "flight.meta" (kind_of m);
            Alcotest.(check bool)
              "meta pid" true
              (Sjson.int_member "pid" m = Some (Unix.getpid ()));
            Alcotest.(check bool)
              "meta event count" true
              (Sjson.int_member "events" m = Some 2);
            let evs = List.map parse_line rest in
            Alcotest.(check (list string))
              "kinds in clock order" [ "first"; "second" ]
              (List.map kind_of evs);
            List.iter
              (fun e ->
                Alcotest.(check bool)
                  "ts monotone positive" true
                  (match Sjson.int_member "ts" e with
                  | Some ts -> ts > 0
                  | None -> false))
              evs;
            Alcotest.(check bool)
              "fields flattened (escaped value intact)" true
              (Sjson.str_member "k" (List.nth evs 1) = Some "v\"2")
        | [] -> Alcotest.fail "empty dump");
    case "disabled recording is a no-op" (fun () ->
        with_flight @@ fun () ->
        Flight.disable ();
        Flight.record "ghost";
        Alcotest.(check int) "nothing buffered" 0 (Flight.events_total ());
        Flight.enable ();
        Flight.record "real";
        Alcotest.(check int) "re-enabled records" 1 (Flight.events_total ()));
  ]

(* ---------------- exact drop accounting ------------------------------- *)

let overflow_cases =
  [
    case "ring overflow keeps the newest window, counts drops exactly"
      (fun () ->
        with_flight @@ fun () ->
        Flight.set_ring_capacity 16;
        for i = 1 to 50 do
          Flight.record "tick" ~fields:[ ("i", string_of_int i) ]
        done;
        Alcotest.(check int) "buffered = capacity" 16 (Flight.events_total ());
        Alcotest.(check int) "dropped = overflow" 34 (Flight.dropped_total ());
        (* the survivors are the *last* 16 ticks, oldest first *)
        let evs =
          match lines_of (Flight.dump_jsonl ()) with
          | _meta :: rest -> List.map parse_line rest
          | [] -> Alcotest.fail "empty dump"
        in
        let is =
          List.filter_map
            (fun e ->
              Option.map int_of_string (Sjson.str_member "i" e))
            evs
        in
        Alcotest.(check (list int))
          "newest window survives" (List.init 16 (fun k -> 35 + k))
          is;
        Flight.reset ();
        Alcotest.(check int) "reset zeroes events" 0 (Flight.events_total ());
        Alcotest.(check int) "reset zeroes drops" 0 (Flight.dropped_total ()));
  ]

(* ---------------- black box ------------------------------------------ *)

let blackbox_cases =
  [
    case "crash hook writes the black box with the reason" (fun () ->
        with_flight @@ fun () ->
        let path = Filename.temp_file "rustudy_flight" ".jsonl" in
        Flight.set_blackbox (Some path);
        Flight.record "work" ~fields:[ ("step", "1") ];
        Flight.crash ~reason:"injected boom" ();
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let dump = really_input_string ic n in
        close_in ic;
        (match lines_of dump with
        | meta :: rest ->
            Alcotest.(check string)
              "meta first" "flight.meta"
              (kind_of (parse_line meta));
            let evs = List.map parse_line rest in
            Alcotest.(check bool)
              "work event present" true
              (List.exists (fun e -> kind_of e = "work") evs);
            let crash =
              List.find_opt (fun e -> kind_of e = "crash") evs
            in
            Alcotest.(check bool)
              "crash event carries the reason" true
              (match crash with
              | Some e -> Sjson.str_member "reason" e = Some "injected boom"
              | None -> false)
        | [] -> Alcotest.fail "empty black box");
        Sys.remove path);
    case "unwritable black-box path never raises" (fun () ->
        with_flight @@ fun () ->
        Flight.set_blackbox (Some "/nonexistent-dir-rustudy/bb.jsonl");
        Flight.record "doomed";
        Alcotest.(check bool)
          "write reports failure as None" true
          (Flight.write_blackbox () = None);
        (* the crash path must also swallow it *)
        Flight.crash ~reason:"still fine" ());
    case "no installed path: write_blackbox is None" (fun () ->
        with_flight @@ fun () ->
        Flight.set_blackbox None;
        Alcotest.(check bool) "None" true (Flight.write_blackbox () = None));
  ]

(* ---------------- killing a real run mid-flight ----------------------- *)

(* Boot the actual CLI binary as a serving subprocess with a black-box
   path, SIGQUIT it (dump-on-demand), then SIGKILL it mid-flight: the
   dump must be on disk even though the process never exited cleanly. *)

let cli_binary = "../bin/rustudy_cli.exe"

let wait_for ?(ms = 5000) pred =
  let rec go n =
    if pred () then true
    else if n <= 0 then false
    else begin
      Thread.delay 0.01;
      go (n - 1)
    end
  in
  go (ms / 10)

let kill_cases =
  [
    case "SIGKILLed serve leaves its black box on disk" (fun () ->
        with_flight @@ fun () ->
        Alcotest.(check bool)
          (Printf.sprintf "CLI binary present at %s" cli_binary)
          true (Sys.file_exists cli_binary);
        let sock = Filename.temp_file "rustudy_flight" ".sock" in
        let bb = Filename.temp_file "rustudy_flight" ".jsonl" in
        Sys.remove bb;
        let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        let pid =
          Unix.create_process cli_binary
            [|
              cli_binary; "serve"; "--socket"; sock; "--workers"; "1";
              "--flight-out"; bb;
            |]
            Unix.stdin devnull devnull
        in
        Unix.close devnull;
        Fun.protect
          ~finally:(fun () ->
            (* the happy path already killed and reaped the child *)
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
            (try Sys.remove sock with _ -> ());
            try Sys.remove bb with _ -> ())
          (fun () ->
            let c = Client.connect_retry sock in
            let resp = Client.rpc c (Client.ping ~id:1) in
            Client.close c;
            Alcotest.(check bool)
              "subprocess serves" true
              (Sjson.str_member "status" resp = Some "ok");
            (* dump-on-demand from the live process *)
            Unix.kill pid Sys.sigquit;
            Alcotest.(check bool)
              "black box appears after SIGQUIT" true
              (wait_for (fun () -> Sys.file_exists bb));
            (* now kill it for real: the dump survives the murder *)
            Unix.kill pid Sys.sigkill;
            ignore (Unix.waitpid [] pid);
            let ic = open_in_bin bb in
            let dump = really_input_string ic (in_channel_length ic) in
            close_in ic;
            match lines_of dump with
            | meta :: rest ->
                Alcotest.(check string)
                  "meta header" "flight.meta"
                  (kind_of (parse_line meta));
                let kinds = List.map (fun l -> kind_of (parse_line l)) rest in
                Alcotest.(check bool)
                  "server.start recorded" true
                  (List.mem "server.start" kinds);
                Alcotest.(check bool)
                  "the ping was admitted" true
                  (List.mem "req.admit" kinds);
                Alcotest.(check bool)
                  "the SIGQUIT itself is on the record" true
                  (List.mem "sigquit" kinds)
            | [] -> Alcotest.fail "empty black box"));
  ]

let suite = dump_cases @ overflow_cases @ blackbox_cases @ kill_cases
