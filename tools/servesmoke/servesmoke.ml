(* servesmoke: end-to-end smoke test of the analysis daemon, wired
   into `dune runtest` so the serve path cannot bit-rot.

   Drives the real CLI binary twice:

   1. spawn `rustudy serve` with tracing, metrics and flight-recorder
      exporters, then over its socket: an enriched ping, the
      stats/health/metrics/flight admin ops, a check request whose
      response must be byte-identical to the offline `rustudy check`
      subprocess, `rustudy top --once --json` as a subprocess, a
      garbage frame (structured E0502, connection stays usable), a
      SIGQUIT (black box dumped, process keeps serving), and a
      shutdown request — the process must drain and exit 0 with all
      exporter files written;
   2. spawn it again and deliver SIGTERM — the drain must also end in
      exit 0.

   Usage: servesmoke RUSTUDY_CLI TRACE_OUT METRICS_OUT FLIGHT_OUT *)

let cli, trace_out, metrics_out, flight_out =
  if Array.length Sys.argv <> 5 then begin
    prerr_endline "usage: servesmoke RUSTUDY_CLI TRACE_OUT METRICS_OUT FLIGHT_OUT";
    exit 2
  end
  else (Sys.argv.(1), Sys.argv.(2), Sys.argv.(3), Sys.argv.(4))

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("servesmoke: FAIL: " ^ msg);
      exit 1)
    fmt

let fresh_socket () =
  let p = Filename.temp_file "servesmoke" ".sock" in
  (* leave the placeholder file: the daemon's stale-socket probe
     replaces anything that doesn't answer a connect *)
  p

let buggy_source =
  "fn f(m: Arc<Mutex<u32>>) { let a = m.lock().unwrap(); let b = \
   m.lock().unwrap(); }"

(* ---------------- subprocess plumbing ------------------------------- *)

let spawn args ~out ~err =
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process args.(0) args dev_null out err
  in
  Unix.close dev_null;
  pid

(* waitpid with a wall-clock bound: a daemon that ignores its shutdown
   is killed hard and reported, instead of hanging the build *)
let wait_exit ?(timeout_s = 30.0) pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          fail "server pid %d did not exit within %.0fs" pid timeout_s
        end
        else begin
          Unix.sleepf 0.02;
          poll ()
        end
    | _, Unix.WEXITED c -> c
    | _, Unix.WSIGNALED s -> fail "server pid %d killed by signal %d" pid s
    | _, Unix.WSTOPPED _ ->
        Unix.sleepf 0.02;
        poll ()
  in
  poll ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in_noerr ic)

(* run a CLI subcommand to completion, capturing stdout/stderr/exit *)
let run_offline args =
  let out_f = Filename.temp_file "servesmoke" ".out" in
  let err_f = Filename.temp_file "servesmoke" ".err" in
  let out_fd = Unix.openfile out_f [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let err_fd = Unix.openfile err_f [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid = spawn args ~out:out_fd ~err:err_fd in
  Unix.close out_fd;
  Unix.close err_fd;
  let code = wait_exit pid in
  let r = (read_file out_f, read_file err_f, code) in
  Sys.remove out_f;
  Sys.remove err_f;
  r

let start_server ?(obs = false) sock =
  let base = [ cli; "serve"; "--socket"; sock; "--workers"; "2" ] in
  let args =
    if obs then
      base
      @ [
          "--trace-out"; trace_out; "--metrics-out"; metrics_out;
          "--flight-out"; flight_out;
        ]
    else base
  in
  let err_fd = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = spawn (Array.of_list args) ~out:err_fd ~err:err_fd in
  Unix.close err_fd;
  pid

(* ---------------- the smoke ----------------------------------------- *)

module Client = Server.Client
module Sjson = Server.Sjson
module Frame = Server.Frame

let sfield resp name =
  match Sjson.str_member name resp with
  | Some s -> s
  | None -> fail "response lacks %S: %s" name (Sjson.to_string resp)

let ifield resp name =
  match Sjson.int_member name resp with
  | Some v -> v
  | None -> fail "response lacks int %S: %s" name (Sjson.to_string resp)

let () =
  (* 1. serve with all exporters, exercised over the socket *)
  let sock = fresh_socket () in
  (try Sys.remove flight_out with Sys_error _ -> ());
  let pid = start_server ~obs:true sock in
  let c = Client.connect_retry sock in
  let ping = Client.rpc c (Client.ping ~id:1) in
  if sfield ping "status" <> "ok" then
    fail "ping answered %s" (Sjson.to_string ping);

  (* the enriched ping identifies the process and the protocol *)
  if ifield ping "pid" <> pid then
    fail "ping pid %d, server pid %d" (ifield ping "pid") pid;
  if ifield ping "proto" < 2 then fail "ping proto < 2";
  if ifield ping "workers" <> 2 then fail "ping workers <> 2";
  if ifield ping "uptime_ms" < 0 then fail "ping uptime negative";

  (* admin ops answer inline with a coherent view of the daemon *)
  let stats = Client.rpc c (Client.stats ~id:2) in
  let sobj =
    match Sjson.member "stats" stats with
    | Some o -> o
    | None -> fail "stats response lacks a stats object"
  in
  if sfield sobj "state" <> "running" then fail "stats state not running";
  if ifield sobj "workers_live" <> 2 then fail "stats workers_live <> 2";
  if ifield sobj "requests" < 2 then fail "stats lost requests";
  let health = Client.rpc c (Client.health ~id:3) in
  let hobj =
    match Sjson.member "health" health with
    | Some o -> o
    | None -> fail "health response lacks a health object"
  in
  if ifield hobj "pid" <> pid then fail "health pid mismatch";
  let m = Client.rpc c (Client.metrics ~id:4 ()) in
  (match Sjson.member "metrics" m with
  | Some (Sjson.List _) -> ()
  | _ -> fail "metrics op returned no families: %s" (Sjson.to_string m));
  let fl = Client.rpc c (Client.flight ~id:5) in
  let dump = sfield fl "flight" in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  if not (contains dump "flight.meta") then
    fail "flight dump lacks its meta header";
  if not (contains dump "server.start") then
    fail "flight dump lacks the server.start event";

  (* every response carries the server-minted request id *)
  if ifield ping "req" < 1 then fail "ping lacks a request id";
  if ifield fl "req" <= ifield ping "req" then
    fail "request ids not monotone across requests";

  (* byte-identity: served response vs the offline CLI subprocess *)
  let rs = Filename.temp_file "servesmoke" ".rs" in
  let oc = open_out_bin rs in
  output_string oc buggy_source;
  close_out oc;
  let off_out, off_err, off_code =
    run_offline [| cli; "check"; rs; "--keep-going" |]
  in
  let served =
    Client.rpc c (Client.check ~id:2 ~keep_going:true ~file:rs ())
  in
  if sfield served "out" <> off_out then
    fail "served stdout diverges from offline: %S vs %S"
      (sfield served "out") off_out;
  if sfield served "err" <> off_err then
    fail "served stderr diverges from offline: %S vs %S"
      (sfield served "err") off_err;
  (match Sjson.int_member "exit" served with
  | Some e when e = off_code -> ()
  | e ->
      fail "served exit %s vs offline %d"
        (match e with Some e -> string_of_int e | None -> "<none>")
        off_code);

  (* a garbage frame gets a structured E0502 and the connection
     stays usable *)
  (match Client.roundtrip_raw c (Frame.encode "definitely not json") with
  | Ok payload ->
      let resp = Sjson.parse payload in
      if Sjson.str_member "code" resp <> Some "E0502" then
        fail "garbage frame answered %s" (Sjson.to_string resp)
  | Error e -> fail "garbage frame: %s" (Frame.read_error_to_string e));
  let ping2 = Client.rpc c (Client.ping ~id:3) in
  if sfield ping2 "status" <> "ok" then
    fail "connection unusable after garbage frame";

  (* `rustudy top --once --json` against the live daemon *)
  let top_out, top_err, top_code =
    run_offline [| cli; "top"; "--socket"; sock; "--once"; "--json" |]
  in
  if top_code <> 0 then fail "top --once exited %d: %s" top_code top_err;
  let top_json =
    match Sjson.parse_result (String.trim top_out) with
    | Ok v -> v
    | Error m -> fail "top --json emitted unparseable output (%s): %S" m top_out
  in
  if sfield top_json "state" <> "running" then
    fail "top reports state %s" (sfield top_json "state");
  (match Sjson.member "stats" top_json with
  | Some _ -> ()
  | None -> fail "top json lacks the stats object");

  (* SIGQUIT: black box on disk, process keeps serving *)
  Unix.kill pid Sys.sigquit;
  let rec await_bb n =
    if Sys.file_exists flight_out then ()
    else if n <= 0 then fail "no black box at %s after SIGQUIT" flight_out
    else begin
      Unix.sleepf 0.02;
      await_bb (n - 1)
    end
  in
  await_bb 250;
  let ping3 = Client.rpc c (Client.ping ~id:6) in
  if sfield ping3 "status" <> "ok" then fail "server died on SIGQUIT";

  (* shutdown request: drain, flush exporters, exit 0 *)
  let bye = Client.rpc c (Client.shutdown ~id:4) in
  if sfield bye "status" <> "ok" then
    fail "shutdown answered %s" (Sjson.to_string bye);
  Client.close c;
  let code = wait_exit pid in
  if code <> 0 then fail "shutdown drain exited %d, want 0" code;
  if not (Sys.file_exists trace_out) then
    fail "no trace written to %s" trace_out;
  if not (Sys.file_exists metrics_out) then
    fail "no metrics written to %s" metrics_out;
  if not (Sys.file_exists flight_out) then
    fail "no flight black box written to %s" flight_out;
  Sys.remove rs;
  (try Sys.remove sock with Sys_error _ -> ());

  (* 2. SIGTERM must drain to exit 0 as well *)
  let sock2 = fresh_socket () in
  let pid2 = start_server sock2 in
  let c2 = Client.connect_retry sock2 in
  let p = Client.rpc c2 (Client.ping ~id:1) in
  if sfield p "status" <> "ok" then fail "second server ping failed";
  Client.close c2;
  Unix.kill pid2 Sys.sigterm;
  let code2 = wait_exit pid2 in
  if code2 <> 0 then fail "SIGTERM drain exited %d, want 0" code2;
  (try Sys.remove sock2 with Sys_error _ -> ());
  print_endline "servesmoke: OK"
