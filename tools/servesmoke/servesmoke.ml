(* servesmoke: end-to-end smoke test of the analysis daemon, wired
   into `dune runtest` so the serve path cannot bit-rot.

   Drives the real CLI binary twice:

   1. spawn `rustudy serve` with tracing and metrics exporters, then
      over its socket: ping, a check request whose response must be
      byte-identical to the offline `rustudy check` subprocess, a
      garbage frame (structured E0502, connection stays usable), and
      a shutdown request — the process must drain and exit 0 with
      both exporter files written;
   2. spawn it again and deliver SIGTERM — the drain must also end in
      exit 0.

   Usage: servesmoke RUSTUDY_CLI TRACE_OUT METRICS_OUT *)

let cli, trace_out, metrics_out =
  if Array.length Sys.argv <> 4 then begin
    prerr_endline "usage: servesmoke RUSTUDY_CLI TRACE_OUT METRICS_OUT";
    exit 2
  end
  else (Sys.argv.(1), Sys.argv.(2), Sys.argv.(3))

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("servesmoke: FAIL: " ^ msg);
      exit 1)
    fmt

let fresh_socket () =
  let p = Filename.temp_file "servesmoke" ".sock" in
  (* leave the placeholder file: the daemon's stale-socket probe
     replaces anything that doesn't answer a connect *)
  p

let buggy_source =
  "fn f(m: Arc<Mutex<u32>>) { let a = m.lock().unwrap(); let b = \
   m.lock().unwrap(); }"

(* ---------------- subprocess plumbing ------------------------------- *)

let spawn args ~out ~err =
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process args.(0) args dev_null out err
  in
  Unix.close dev_null;
  pid

(* waitpid with a wall-clock bound: a daemon that ignores its shutdown
   is killed hard and reported, instead of hanging the build *)
let wait_exit ?(timeout_s = 30.0) pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          fail "server pid %d did not exit within %.0fs" pid timeout_s
        end
        else begin
          Unix.sleepf 0.02;
          poll ()
        end
    | _, Unix.WEXITED c -> c
    | _, Unix.WSIGNALED s -> fail "server pid %d killed by signal %d" pid s
    | _, Unix.WSTOPPED _ ->
        Unix.sleepf 0.02;
        poll ()
  in
  poll ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in_noerr ic)

(* run a CLI subcommand to completion, capturing stdout/stderr/exit *)
let run_offline args =
  let out_f = Filename.temp_file "servesmoke" ".out" in
  let err_f = Filename.temp_file "servesmoke" ".err" in
  let out_fd = Unix.openfile out_f [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let err_fd = Unix.openfile err_f [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid = spawn args ~out:out_fd ~err:err_fd in
  Unix.close out_fd;
  Unix.close err_fd;
  let code = wait_exit pid in
  let r = (read_file out_f, read_file err_f, code) in
  Sys.remove out_f;
  Sys.remove err_f;
  r

let start_server ?(obs = false) sock =
  let base = [ cli; "serve"; "--socket"; sock; "--workers"; "2" ] in
  let args =
    if obs then
      base @ [ "--trace-out"; trace_out; "--metrics-out"; metrics_out ]
    else base
  in
  let err_fd = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = spawn (Array.of_list args) ~out:err_fd ~err:err_fd in
  Unix.close err_fd;
  pid

(* ---------------- the smoke ----------------------------------------- *)

module Client = Server.Client
module Sjson = Server.Sjson
module Frame = Server.Frame

let sfield resp name =
  match Sjson.str_member name resp with
  | Some s -> s
  | None -> fail "response lacks %S: %s" name (Sjson.to_string resp)

let () =
  (* 1. serve with both exporters, exercised over the socket *)
  let sock = fresh_socket () in
  let pid = start_server ~obs:true sock in
  let c = Client.connect_retry sock in
  let ping = Client.rpc c (Client.ping ~id:1) in
  if sfield ping "status" <> "ok" then
    fail "ping answered %s" (Sjson.to_string ping);

  (* byte-identity: served response vs the offline CLI subprocess *)
  let rs = Filename.temp_file "servesmoke" ".rs" in
  let oc = open_out_bin rs in
  output_string oc buggy_source;
  close_out oc;
  let off_out, off_err, off_code =
    run_offline [| cli; "check"; rs; "--keep-going" |]
  in
  let served =
    Client.rpc c (Client.check ~id:2 ~keep_going:true ~file:rs ())
  in
  if sfield served "out" <> off_out then
    fail "served stdout diverges from offline: %S vs %S"
      (sfield served "out") off_out;
  if sfield served "err" <> off_err then
    fail "served stderr diverges from offline: %S vs %S"
      (sfield served "err") off_err;
  (match Sjson.int_member "exit" served with
  | Some e when e = off_code -> ()
  | e ->
      fail "served exit %s vs offline %d"
        (match e with Some e -> string_of_int e | None -> "<none>")
        off_code);

  (* a garbage frame gets a structured E0502 and the connection
     stays usable *)
  (match Client.roundtrip_raw c (Frame.encode "definitely not json") with
  | Ok payload ->
      let resp = Sjson.parse payload in
      if Sjson.str_member "code" resp <> Some "E0502" then
        fail "garbage frame answered %s" (Sjson.to_string resp)
  | Error e -> fail "garbage frame: %s" (Frame.read_error_to_string e));
  let ping2 = Client.rpc c (Client.ping ~id:3) in
  if sfield ping2 "status" <> "ok" then
    fail "connection unusable after garbage frame";

  (* shutdown request: drain, flush exporters, exit 0 *)
  let bye = Client.rpc c (Client.shutdown ~id:4) in
  if sfield bye "status" <> "ok" then
    fail "shutdown answered %s" (Sjson.to_string bye);
  Client.close c;
  let code = wait_exit pid in
  if code <> 0 then fail "shutdown drain exited %d, want 0" code;
  if not (Sys.file_exists trace_out) then
    fail "no trace written to %s" trace_out;
  if not (Sys.file_exists metrics_out) then
    fail "no metrics written to %s" metrics_out;
  Sys.remove rs;
  (try Sys.remove sock with Sys_error _ -> ());

  (* 2. SIGTERM must drain to exit 0 as well *)
  let sock2 = fresh_socket () in
  let pid2 = start_server sock2 in
  let c2 = Client.connect_retry sock2 in
  let p = Client.rpc c2 (Client.ping ~id:1) in
  if sfield p "status" <> "ok" then fail "second server ping failed";
  Client.close c2;
  Unix.kill pid2 Sys.sigterm;
  let code2 = wait_exit pid2 in
  if code2 <> 0 then fail "SIGTERM drain exited %d, want 0" code2;
  (try Sys.remove sock2 with Sys_error _ -> ());
  print_endline "servesmoke: OK"
