(* One line per (entry, finding): "<id>|<finding>". Findings sorted per
   entry so the snapshot is insensitive to emission order. *)
let () =
  List.iter
    (fun (e : Corpus.entry) ->
      let p = Rustudy.load ~file:(e.Corpus.id ^ ".rs") e.Corpus.source in
      let fs =
        List.sort compare
          (List.map Detectors.Report.to_string (Detectors.All.all p))
      in
      List.iter (fun f -> Printf.printf "%s|%s\n" e.Corpus.id f) fs)
    Corpus.all_bugs
