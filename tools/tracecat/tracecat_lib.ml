(** Chrome trace-event file checker: parse, validate, summarize.

    [rustudy --trace-out] writes trace-event JSON; this library (used
    by the [tracecat] executable and the observability tests) re-reads
    such files with a small hand-rolled JSON parser — the toolchain has
    no JSON library — and checks the structural invariants the
    exporter promises: every event is well-formed, durations are
    non-negative, and the complete ('X') spans of each thread nest
    properly (no partial overlap). *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON                                                        *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* encode the code point as UTF-8 (surrogates kept as-is:
                 the exporter never emits them) *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail (Printf.sprintf "bad escape \\%C" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type event = {
  name : string;
  ph : string;
  pid : int;
  tid : int;
  ts : float;  (** microseconds *)
  dur : float;  (** microseconds; 0 for instants *)
}

(** Decode and structurally check one trace file. [Error msg] names the
    first violated invariant. *)
let parse_trace (text : string) : (event list, string) result =
  match parse_json text with
  | exception Parse_error msg -> Error ("not valid JSON: " ^ msg)
  | List items ->
      let decode i item =
        let str k =
          match member k item with
          | Some (Str s) -> Ok s
          | _ -> Error (Printf.sprintf "event %d: missing string %S" i k)
        in
        let num k =
          match member k item with
          | Some (Num f) -> Ok (Some f)
          | None -> Ok None
          | Some _ -> Error (Printf.sprintf "event %d: %S not a number" i k)
        in
        let ( let* ) = Result.bind in
        let* name = str "name" in
        let* ph = str "ph" in
        let* pid = num "pid" in
        let* tid = num "tid" in
        let* ts = num "ts" in
        let* dur = num "dur" in
        let req k = function
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "event %d: missing %S" i k)
        in
        let* pid = req "pid" pid in
        let* tid = req "tid" tid in
        let* ts = req "ts" ts in
        let* dur =
          match ph with
          | "X" -> req "dur" dur
          | "i" -> Ok 0.
          | _ -> Error (Printf.sprintf "event %d: unknown phase %S" i ph)
        in
        if ts < 0. then Error (Printf.sprintf "event %d: negative ts" i)
        else if dur < 0. then Error (Printf.sprintf "event %d: negative dur" i)
        else
          Ok
            {
              name;
              ph;
              pid = int_of_float pid;
              tid = int_of_float tid;
              ts;
              dur;
            }
      in
      let rec all i acc = function
        | [] -> Ok (List.rev acc)
        | item :: tl -> (
            match decode i item with
            | Ok e -> all (i + 1) (e :: acc) tl
            | Error _ as e -> e)
      in
      all 0 [] items
  | _ -> Error "top-level value is not an array"

(* Exported timestamps carry microseconds with nanosecond decimals, so
   comparisons tolerate one representable ulp of slack. *)
let epsilon = 0.002

(** Check that the complete ('X') spans of each (pid, tid) nest
    properly: sorted by start time, every pair of spans is either
    disjoint or one contains the other. Partial overlap means the file
    cannot have come from balanced [with_span] nesting. *)
let check_nesting (events : event list) : (unit, string) result =
  let spans = List.filter (fun e -> e.ph = "X") events in
  let by_thread = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let k = (e.pid, e.tid) in
      Hashtbl.replace by_thread k
        (e :: Option.value (Hashtbl.find_opt by_thread k) ~default:[]))
    spans;
  let check_thread (pid, tid) es =
    let es =
      List.sort
        (fun a b ->
          match compare a.ts b.ts with
          | 0 -> compare (b.ts +. b.dur) (a.ts +. a.dur) (* outermost first *)
          | c -> c)
        es
    in
    (* stack of enclosing span end-times *)
    let rec go stack = function
      | [] -> Ok ()
      | e :: tl -> (
          let e_end = e.ts +. e.dur in
          match stack with
          | top_end :: rest when e.ts >= top_end -. epsilon ->
              (* the top span ended before this one starts: pop *)
              go rest (e :: tl)
          | top_end :: _ when e_end > top_end +. epsilon ->
              Error
                (Printf.sprintf
                   "thread %d.%d: span %S [%.3f, %.3f] partially overlaps an \
                    enclosing span ending at %.3f"
                   pid tid e.name e.ts e_end top_end)
          | _ -> go (e_end :: stack) tl)
    in
    go [] es
  in
  Hashtbl.fold
    (fun k es acc ->
      match acc with Ok () -> check_thread k es | Error _ -> acc)
    by_thread (Ok ())

(** Full validation: parse + per-event checks + nesting. *)
let validate (text : string) : (event list, string) result =
  match parse_trace text with
  | Error _ as e -> e
  | Ok events -> (
      match check_nesting events with
      | Ok () -> Ok events
      | Error msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

(** Top-[n] span names by total duration, rendered as a table (same
    shape as [Support.Trace.profile_table], but computed from the
    file). *)
let summary ?(n = 15) (events : event list) : string =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      if e.ph = "X" then
        let count, total =
          Option.value (Hashtbl.find_opt tbl e.name) ~default:(0, 0.)
        in
        Hashtbl.replace tbl e.name (count + 1, total +. e.dur))
    events;
  let rows = Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) tbl [] in
  let rows =
    List.sort
      (fun (n1, _, t1) (n2, _, t2) ->
        match compare t2 t1 with 0 -> String.compare n1 n2 | c -> c)
      rows
  in
  let rows = List.filteri (fun i _ -> i < n) rows in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "  %-36s %8s %12s %12s\n" "span" "count" "total ms"
       "mean ms");
  List.iter
    (fun (name, count, total_us) ->
      Buffer.add_string b
        (Printf.sprintf "  %-36s %8d %12.3f %12.3f\n" name count
           (total_us /. 1e3)
           (total_us /. 1e3 /. float_of_int count)))
    rows;
  Buffer.contents b
