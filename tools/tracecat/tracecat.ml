(** tracecat: validate and summarize Chrome trace-event files written
    by [rustudy --trace-out].

    - [tracecat validate FILE]      exit 0 iff the file is well-formed
      trace-event JSON with properly nested spans
    - [tracecat summary [-n N] FILE] top-N spans by total wall time

    Exit codes: 0 = OK, 1 = invalid trace, 2 = usage/IO error. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let usage () =
  prerr_endline "usage: tracecat validate FILE | tracecat summary [-n N] FILE";
  exit 2

let with_file path f =
  match read_file path with
  | text -> f text
  | exception Sys_error msg ->
      prerr_endline ("tracecat: " ^ msg);
      exit 2

let () =
  match Array.to_list Sys.argv with
  | _ :: "validate" :: [ path ] ->
      with_file path (fun text ->
          match Tracecat_lib.validate text with
          | Ok events ->
              let spans =
                List.length (List.filter (fun e -> e.Tracecat_lib.ph = "X") events)
              in
              let instants = List.length events - spans in
              Printf.printf "%s: OK (%d spans, %d instants)\n" path spans
                instants;
              exit 0
          | Error msg ->
              Printf.eprintf "%s: INVALID: %s\n" path msg;
              exit 1)
  | _ :: "summary" :: rest ->
      let n, path =
        match rest with
        | [ "-n"; n; path ] -> (
            match int_of_string_opt n with
            | Some n when n > 0 -> (n, path)
            | _ -> usage ())
        | [ path ] -> (15, path)
        | _ -> usage ()
      in
      with_file path (fun text ->
          match Tracecat_lib.validate text with
          | Ok events ->
              print_string (Tracecat_lib.summary ~n events);
              exit 0
          | Error msg ->
              Printf.eprintf "%s: INVALID: %s\n" path msg;
              exit 1)
  | _ -> usage ()
