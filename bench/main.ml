(* Benchmark harness: one Bechamel test per paper table/figure, the two
   headline detectors, the §4.1 safe-vs-unsafe microbenchmarks, the
   three design-choice ablations from DESIGN.md, and the analysis-cache
   corpus timings (cached vs uncached, sequential vs parallel).

   Run with: dune exec bench/main.exe [-- --json]
   --json additionally writes BENCH_results.json next to the cwd. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Shared fixtures (built once, outside the timed regions)             *)
(* ------------------------------------------------------------------ *)

let analyses = lazy (Rustudy.analyze_corpus ())

(* One evaluation shared by the recall summary and anything else that
   needs the *result* (the timed bench below necessarily re-runs it). *)
let eval_result = lazy (Rustudy.Detector_eval.run ())

let corpus_programs =
  lazy
    (List.map
       (fun (e : Corpus.entry) ->
         Rustudy.load ~file:(e.Corpus.id ^ ".rs") e.Corpus.source)
       Corpus.all_bugs)

let double_lock_sources =
  lazy
    (List.filter_map
       (fun (e : Corpus.entry) ->
         if List.mem Rustudy.Finding.Double_lock e.Corpus.expected then
           Some e.Corpus.source
         else None)
       Corpus.Blocking_bugs.all)

let representative_entry = lazy (List.hd Corpus.Mem_bugs.all)

(* Every corpus entry corrupted by every deterministic mutator: the
   fault-injection workload (same seed as the test suite). *)
let fault_seed = 0x5EED

let mutated_corpus =
  lazy
    (List.concat_map
       (fun (e : Corpus.entry) ->
         List.map
           (fun (mname, src) -> (e.Corpus.id ^ "-" ^ mname, src))
           (Rustudy.Fault.mutations ~seed:fault_seed e.Corpus.source))
       Corpus.all_bugs)

let clean_corpus =
  lazy
    (List.map
       (fun (e : Corpus.entry) -> (e.Corpus.id, e.Corpus.source))
       Corpus.all_bugs)

(* ------------------------------------------------------------------ *)
(* Table and figure regeneration benches                               *)
(* ------------------------------------------------------------------ *)

let table_tests =
  [
    Test.make ~name:"table1" (Staged.stage (fun () ->
        Rustudy.Tables.table1 (Lazy.force analyses)));
    Test.make ~name:"table2" (Staged.stage (fun () ->
        Rustudy.Tables.table2 (Lazy.force analyses)));
    Test.make ~name:"table3" (Staged.stage (fun () ->
        Rustudy.Tables.table3 (Lazy.force analyses)));
    Test.make ~name:"table4" (Staged.stage (fun () ->
        Rustudy.Tables.table4 (Lazy.force analyses)));
    Test.make ~name:"fixes" (Staged.stage (fun () ->
        Rustudy.Tables.fix_strategies (Lazy.force analyses)));
    Test.make ~name:"unsafe_scan" (Staged.stage (fun () ->
        Rustudy.Tables.unsafe_stats ()));
    Test.make ~name:"figure1" (Staged.stage (fun () -> Rustudy.Figures.figure1 ()));
    Test.make ~name:"figure2" (Staged.stage (fun () -> Rustudy.Figures.figure2 ()));
  ]

(* The full classification pipeline on one studied bug: parse, lower,
   detect, classify. *)
let pipeline_tests =
  [
    Test.make ~name:"classify_one_entry" (Staged.stage (fun () ->
        Rustudy.Classify.analyze_entry (Lazy.force representative_entry)));
  ]

(* ------------------------------------------------------------------ *)
(* Detector benches (§7)                                               *)
(* ------------------------------------------------------------------ *)

let detector_tests =
  [
    Test.make ~name:"detector_uaf" (Staged.stage (fun () ->
        List.concat_map Rustudy.detect_use_after_free (Lazy.force corpus_programs)));
    Test.make ~name:"detector_dlock" (Staged.stage (fun () ->
        List.concat_map Rustudy.detect_double_lock (Lazy.force corpus_programs)));
    Test.make ~name:"detector_eval" (Staged.stage (fun () ->
        Rustudy.Detector_eval.run ~domains:1 ()));
  ]

(* ------------------------------------------------------------------ *)
(* §4.1 microbenchmarks: safe vs unsafe access                         *)
(* ------------------------------------------------------------------ *)

(* opaque length so the bounds check cannot be hoisted or elided *)
let n = Sys.opaque_identity 65536
let arr = Array.init n (fun i -> i land 0xff)
let src_bytes = Bytes.make n 'x'
let dst_bytes = Bytes.make n '\000'

(* Bounds-checked access (Array.get): the analogue of safe indexing. *)
let safe_index_sum () =
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + arr.(i)
  done;
  !s

(* Unchecked access (Array.unsafe_get): the analogue of get_unchecked. *)
let unsafe_index_sum () =
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + Array.unsafe_get arr i
  done;
  !s

(* Per-element copy with bounds checks: safe slice copying. *)
let checked_copy () =
  for i = 0 to n - 1 do
    Bytes.set dst_bytes i (Bytes.get src_bytes i)
  done

(* Block copy: the analogue of ptr::copy_nonoverlapping. *)
let memcpy_copy () = Bytes.blit src_bytes 0 dst_bytes 0 n

let micro_tests =
  [
    Test.make ~name:"safe_vs_unsafe_checked_index" (Staged.stage safe_index_sum);
    Test.make ~name:"safe_vs_unsafe_unchecked_index" (Staged.stage unsafe_index_sum);
    Test.make ~name:"safe_vs_unsafe_checked_copy" (Staged.stage checked_copy);
    Test.make ~name:"safe_vs_unsafe_memcpy" (Staged.stage memcpy_copy);
  ]

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)
(* ------------------------------------------------------------------ *)

let lower_and_detect config src =
  Rustudy.detect_double_lock (Rustudy.load ~config ~file:"a.rs" src)

let ablation_tests =
  [
    Test.make ~name:"ablation_tmp_extended" (Staged.stage (fun () ->
        List.concat_map
          (lower_and_detect Ir.Lower.default_config)
          (Lazy.force double_lock_sources)));
    Test.make ~name:"ablation_tmp_statement" (Staged.stage (fun () ->
        List.concat_map
          (lower_and_detect { Ir.Lower.tmp_lifetime = Ir.Lower.Statement_local })
          (Lazy.force double_lock_sources)));
    Test.make ~name:"ablation_interproc_on" (Staged.stage (fun () ->
        List.concat_map
          (Detectors.Double_lock.run ~interprocedural:true)
          (Lazy.force corpus_programs)));
    Test.make ~name:"ablation_interproc_off" (Staged.stage (fun () ->
        List.concat_map
          (Detectors.Double_lock.run ~interprocedural:false)
          (Lazy.force corpus_programs)));
    Test.make ~name:"ablation_extern_assume_on" (Staged.stage (fun () ->
        List.concat_map
          (Detectors.Uaf.run ~assume_extern_derefs:true)
          (Lazy.force corpus_programs)));
    Test.make ~name:"ablation_extern_assume_off" (Staged.stage (fun () ->
        List.concat_map
          (Detectors.Uaf.run ~assume_extern_derefs:false)
          (Lazy.force corpus_programs)));
  ]

(* ------------------------------------------------------------------ *)
(* Degraded-corpus benches: recovery overhead on malformed input       *)
(* ------------------------------------------------------------------ *)

(* Frontend-only timings: the recovering parser on pristine sources
   (its overhead vs the strict parser) and on the fault-injected
   corpus (the cost of panic-mode recovery itself). *)
let degraded_tests =
  [
    Test.make ~name:"parse_strict_clean" (Staged.stage (fun () ->
        List.iter
          (fun (id, src) -> ignore (Rustudy.parse ~file:(id ^ ".rs") src))
          (Lazy.force clean_corpus)));
    Test.make ~name:"parse_recovering_clean" (Staged.stage (fun () ->
        List.iter
          (fun (id, src) ->
            ignore (Rustudy.parse_recovering ~file:(id ^ ".rs") src))
          (Lazy.force clean_corpus)));
    Test.make ~name:"parse_recovering_mutated" (Staged.stage (fun () ->
        List.iter
          (fun (id, src) ->
            ignore (Rustudy.parse_recovering ~file:(id ^ ".rs") src))
          (Lazy.force mutated_corpus)));
  ]

(* ------------------------------------------------------------------ *)
(* Ablation recall summary (printed alongside the timings)             *)
(* ------------------------------------------------------------------ *)

let recall_summary () =
  let dl_sources = Lazy.force double_lock_sources in
  let count config =
    List.length
      (List.filter (fun src -> lower_and_detect config src <> []) dl_sources)
  in
  let extended = count Ir.Lower.default_config in
  let statement =
    count { Ir.Lower.tmp_lifetime = Ir.Lower.Statement_local }
  in
  let interproc_on =
    List.length
      (List.filter
         (fun p -> Detectors.Double_lock.run ~interprocedural:true p <> [])
         (Lazy.force corpus_programs))
  in
  let interproc_off =
    List.length
      (List.filter
         (fun p -> Detectors.Double_lock.run ~interprocedural:false p <> [])
         (Lazy.force corpus_programs))
  in
  let eval_on = Lazy.force eval_result in
  Printf.printf
    "ablation recall: temporary-lifetime extended=%d/%d statement-local=%d/%d\n"
    extended (List.length dl_sources) statement (List.length dl_sources);
  Printf.printf
    "ablation recall: double-lock interprocedural=%d programs, intraprocedural-only=%d programs\n"
    interproc_on interproc_off;
  Printf.printf
    "detector eval (with extern-deref assumption): UAF %d bugs / %d FPs; double-lock %d bugs / %d FPs\n"
    eval_on.Study.Detector_eval.uaf_bugs
    eval_on.Study.Detector_eval.uaf_false_positives
    eval_on.Study.Detector_eval.dl_bugs
    eval_on.Study.Detector_eval.dl_false_positives

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

(* Runs a bechamel group, prints the estimates, and returns them as
   (name, ns/run) rows so --json can serialise every group. *)
let run_group name tests : (string * float) list =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "== %s ==\n" name;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.filter_map
    (fun (test_name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] ->
          if ns > 1_000_000.0 then
            Printf.printf "  %-36s %10.3f ms/run\n" test_name (ns /. 1e6)
          else if ns > 1_000.0 then
            Printf.printf "  %-36s %10.3f us/run\n" test_name (ns /. 1e3)
          else Printf.printf "  %-36s %10.1f ns/run\n" test_name ns;
          Some (test_name, ns)
      | _ ->
          Printf.printf "  %-36s (no estimate)\n" test_name;
          None)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Corpus timings: cached vs uncached, sequential vs parallel          *)
(* ------------------------------------------------------------------ *)

(* Wall time of one call, best of [reps]. *)
let wall ?(reps = 3) f =
  let once () =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    Unix.gettimeofday () -. t0
  in
  List.fold_left min (once ()) (List.init (reps - 1) (fun _ -> once ()))

(* The pre-cache corpus pass: re-lower every entry from source and let
   every detector recompute its own analyses (each legacy [run] builds
   a private context, so nothing is shared across detectors). *)
let uncached_corpus_pass () =
  List.iter
    (fun (e : Corpus.entry) ->
      let p = Rustudy.load ~file:(e.Corpus.id ^ ".rs") e.Corpus.source in
      ignore (Detectors.Uaf.run p);
      ignore (Detectors.Double_free.run p);
      ignore (Detectors.Invalid_free.run p);
      ignore (Detectors.Uninit.run p);
      ignore (Detectors.Null_deref.run p);
      ignore (Detectors.Buffer.run p);
      ignore (Detectors.Double_lock.run p);
      ignore (Detectors.Lock_order.run p);
      ignore (Detectors.Condvar.run p);
      ignore (Detectors.Channel.run p);
      ignore (Detectors.Once.run p);
      ignore (Detectors.Sync_misuse.run p);
      ignore (Detectors.Atomicity.run p);
      ignore (Detectors.Atomicity.run_with_sessions p);
      ignore (Detectors.Refcell.run p))
    Corpus.all_bugs

(* The cached corpus pass: every entry goes through the program cache
   and one shared analysis context per entry. *)
let cached_corpus_pass () =
  List.iter
    (fun (e : Corpus.entry) ->
      let ctx = Rustudy.load_ctx ~file:(e.Corpus.id ^ ".rs") e.Corpus.source in
      ignore (Rustudy.detect_ctx ctx))
    Corpus.all_bugs

type corpus_timings = {
  uncached_s : float;
  cached_cold_s : float;  (** empty program cache: lower + analyze once *)
  cached_warm_s : float;  (** program cache hit: shared contexts reused *)
  sequential_s : float;
  parallel_s : float;
  parallel_domains : int;
  parallel_identical : bool;
  recovery_clean_s : float;
      (** fault-tolerant pipeline over the pristine corpus, cold cache *)
  recovery_mutated_s : float;
      (** fault-tolerant pipeline over every fault-injected mutant *)
  mutant_count : int;
  mutant_clean : int;  (** mutants that still parse and analyze cleanly *)
  mutant_degraded : int;  (** mutants recovered with diagnostics *)
  mutant_failed : int;  (** mutants captured as a per-entry failure *)
}

(* Full fault-tolerant pipeline (recover, lower, detect) over a list
   of named sources; the program cache is cleared first so every run
   pays the same cold-path cost. *)
let recovering_pass sources () =
  Rustudy.Cache.clear_programs ();
  List.iter
    (fun (id, src) ->
      ignore (Rustudy.check_result ~file:(id ^ ".rs") src))
    sources

let corpus_bench () : corpus_timings =
  let uncached_s = wall uncached_corpus_pass in
  let cached_cold_s =
    wall (fun () ->
        Rustudy.Cache.clear_programs ();
        cached_corpus_pass ())
  in
  let cached_warm_s = wall cached_corpus_pass in
  let domains = Rustudy.Domain_pool.default_domains () in
  Rustudy.Cache.clear_programs ();
  let seq = ref [] in
  let sequential_s =
    wall ~reps:1 (fun () -> seq := Rustudy.analyze_corpus ~domains:1 ())
  in
  Rustudy.Cache.clear_programs ();
  let par = ref [] in
  let parallel_s =
    wall ~reps:1 (fun () -> par := Rustudy.analyze_corpus ~domains ())
  in
  let parallel_identical =
    List.length !seq = List.length !par
    && List.for_all2
         (fun (a : Rustudy.Classify.analysis) (b : Rustudy.Classify.analysis) ->
           a.Rustudy.Classify.entry.Corpus.id
           = b.Rustudy.Classify.entry.Corpus.id
           && List.map Rustudy.Finding.to_string a.Rustudy.Classify.findings
              = List.map Rustudy.Finding.to_string b.Rustudy.Classify.findings)
         !seq !par
  in
  let clean = Lazy.force clean_corpus in
  let mutants = Lazy.force mutated_corpus in
  let recovery_clean_s = wall (recovering_pass clean) in
  let recovery_mutated_s = wall (recovering_pass mutants) in
  let mutant_clean = ref 0 and mutant_degraded = ref 0 and mutant_failed = ref 0 in
  List.iter
    (fun (id, src) ->
      match Rustudy.check_result ~file:(id ^ ".rs") src with
      | Ok (_, []) -> incr mutant_clean
      | Ok (_, _ :: _) -> incr mutant_degraded
      | Error _ -> incr mutant_failed)
    mutants;
  {
    uncached_s;
    cached_cold_s;
    cached_warm_s;
    sequential_s;
    parallel_s;
    parallel_domains = domains;
    parallel_identical;
    recovery_clean_s;
    recovery_mutated_s;
    mutant_count = List.length mutants;
    mutant_clean = !mutant_clean;
    mutant_degraded = !mutant_degraded;
    mutant_failed = !mutant_failed;
  }

let print_corpus_timings (c : corpus_timings) =
  Printf.printf "== corpus (analysis cache + domain pool) ==\n";
  Printf.printf "  %-36s %10.3f ms\n" "uncached (per-detector analyses)"
    (c.uncached_s *. 1e3);
  Printf.printf "  %-36s %10.3f ms  (%.2fx vs uncached)\n"
    "cached, cold program cache" (c.cached_cold_s *. 1e3)
    (c.uncached_s /. c.cached_cold_s);
  Printf.printf "  %-36s %10.3f ms  (%.2fx vs uncached)\n"
    "cached, warm program cache" (c.cached_warm_s *. 1e3)
    (c.uncached_s /. c.cached_warm_s);
  Printf.printf "  %-36s %10.3f ms\n" "analyze_corpus sequential"
    (c.sequential_s *. 1e3);
  Printf.printf "  %-36s %10.3f ms  (%.2fx, %d domains, identical=%b)\n"
    "analyze_corpus parallel" (c.parallel_s *. 1e3)
    (c.sequential_s /. c.parallel_s)
    c.parallel_domains c.parallel_identical;
  Printf.printf "== degraded corpus (fault injection) ==\n";
  Printf.printf "  %-36s %10.3f ms\n" "recovering pipeline, clean corpus"
    (c.recovery_clean_s *. 1e3);
  Printf.printf "  %-36s %10.3f ms  (%.2fx vs clean)\n"
    (Printf.sprintf "recovering pipeline, %d mutants" c.mutant_count)
    (c.recovery_mutated_s *. 1e3)
    (c.recovery_mutated_s /. c.recovery_clean_s);
  Printf.printf "  %-36s clean=%d degraded=%d failed=%d (raised=0 by construction)\n"
    "mutant outcomes" c.mutant_clean c.mutant_degraded c.mutant_failed

(* ------------------------------------------------------------------ *)
(* JSON output (hand-rolled: no JSON library in the dependency set)    *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path (rows : (string * float) list) (c : corpus_timings)
    ~ratio_index ~ratio_copy =
  let oc = open_out path in
  let field k v = Printf.fprintf oc "    \"%s\": %s" (json_escape k) v in
  output_string oc "{\n  \"ns_per_run\": {\n";
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then output_string oc ",\n";
      field name (Printf.sprintf "%.1f" ns))
    rows;
  output_string oc "\n  },\n  \"corpus_seconds\": {\n";
  let cf =
    [
      ("uncached", c.uncached_s);
      ("cached_cold", c.cached_cold_s);
      ("cached_warm", c.cached_warm_s);
      ("sequential", c.sequential_s);
      ("parallel", c.parallel_s);
    ]
  in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then output_string oc ",\n";
      field name (Printf.sprintf "%.6f" v))
    cf;
  output_string oc ",\n";
  field "parallel_domains" (string_of_int c.parallel_domains);
  output_string oc ",\n";
  field "parallel_identical" (string_of_bool c.parallel_identical);
  output_string oc ",\n";
  field "cached_speedup" (Printf.sprintf "%.3f" (c.uncached_s /. c.cached_warm_s));
  output_string oc ",\n";
  field "parallel_speedup"
    (Printf.sprintf "%.3f" (c.sequential_s /. c.parallel_s));
  output_string oc "\n  },\n  \"degraded_corpus\": {\n";
  let df =
    [
      ("recovery_clean_s", Printf.sprintf "%.6f" c.recovery_clean_s);
      ("recovery_mutated_s", Printf.sprintf "%.6f" c.recovery_mutated_s);
      ( "mutated_over_clean",
        Printf.sprintf "%.3f" (c.recovery_mutated_s /. c.recovery_clean_s) );
      ("mutant_count", string_of_int c.mutant_count);
      ("mutant_clean", string_of_int c.mutant_clean);
      ("mutant_degraded", string_of_int c.mutant_degraded);
      ("mutant_failed", string_of_int c.mutant_failed);
    ]
  in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then output_string oc ",\n";
      field name v)
    df;
  output_string oc "\n  },\n  \"section_4_1\": {\n";
  field "checked_over_unchecked_index" (Printf.sprintf "%.3f" ratio_index);
  output_string oc ",\n";
  field "per_element_over_memcpy_copy" (Printf.sprintf "%.3f" ratio_copy);
  output_string oc "\n  }\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let json = Array.exists (( = ) "--json") Sys.argv in
  (* correctness context for the ablations, then the timings *)
  recall_summary ();
  print_newline ();
  let rows =
    run_group "tables-and-figures" (table_tests @ pipeline_tests)
    @ run_group "detectors" detector_tests
    @ run_group "safe-vs-unsafe (4.1)" micro_tests
    @ run_group "ablations" ablation_tests
    @ run_group "degraded-corpus" degraded_tests
  in
  let corpus = corpus_bench () in
  print_corpus_timings corpus;
  (* the paper's §4.1 claim: report the measured ratios directly *)
  (* best-of-5 to damp scheduler noise on a shared single core *)
  let time_it f =
    let once () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to 500 do
        ignore (Sys.opaque_identity (f ()))
      done;
      Unix.gettimeofday () -. t0
    in
    List.fold_left min (once ()) (List.init 4 (fun _ -> once ()))
  in
  let checked = time_it safe_index_sum in
  let unchecked = time_it unsafe_index_sum in
  let copy_loop = time_it (fun () -> checked_copy ()) in
  let copy_blit = time_it (fun () -> memcpy_copy ()) in
  let ratio_index = checked /. unchecked in
  let ratio_copy = copy_loop /. copy_blit in
  Printf.printf
    "\nsection 4.1 analogues: bounds-checked/unchecked index ratio = %.2fx; \
     per-element/memcpy copy ratio = %.2fx\n"
    ratio_index ratio_copy;
  if json then begin
    write_json "BENCH_results.json" rows corpus ~ratio_index ~ratio_copy;
    print_endline "wrote BENCH_results.json"
  end
