(* Benchmark harness: one Bechamel test per paper table/figure, the two
   headline detectors, the §4.1 safe-vs-unsafe microbenchmarks, the
   three design-choice ablations from DESIGN.md, and the analysis-cache
   corpus timings (cached vs uncached, sequential vs parallel).

   Run with: dune exec bench/main.exe [-- FLAGS]
   --json            additionally writes BENCH_results.json in the cwd
   --replicate N     also time sequential vs parallel over N corpus
                     copies (distinct file keys; >= 2 domains, chunked)
   --compare FILE    print a per-benchmark speedup table against the
                     ns_per_run section of a previous --json output and
                     exit non-zero on a >25%% regression in a gated row
                     (the detectors/, frontend/ and server/ prefixes)
   --quick           smoke mode for dune runtest: tiny quota, detector
                     group + one cached corpus pass only *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Shared fixtures (built once, outside the timed regions)             *)
(* ------------------------------------------------------------------ *)

let analyses = lazy (Rustudy.analyze_corpus ())

(* One evaluation shared by the recall summary and anything else that
   needs the *result* (the timed bench below necessarily re-runs it). *)
let eval_result = lazy (Rustudy.Detector_eval.run ())

let corpus_programs =
  lazy
    (List.map
       (fun (e : Corpus.entry) ->
         Rustudy.load ~file:(e.Corpus.id ^ ".rs") e.Corpus.source)
       Corpus.all_bugs)

let double_lock_sources =
  lazy
    (List.filter_map
       (fun (e : Corpus.entry) ->
         if List.mem Rustudy.Finding.Double_lock e.Corpus.expected then
           Some e.Corpus.source
         else None)
       Corpus.Blocking_bugs.all)

let representative_entry = lazy (List.hd Corpus.Mem_bugs.all)

(* Every corpus entry corrupted by every deterministic mutator: the
   fault-injection workload (same seed as the test suite). *)
let fault_seed = 0x5EED

let mutated_corpus =
  lazy
    (List.concat_map
       (fun (e : Corpus.entry) ->
         List.map
           (fun (mname, src) -> (e.Corpus.id ^ "-" ^ mname, src))
           (Rustudy.Fault.mutations ~seed:fault_seed e.Corpus.source))
       Corpus.all_bugs)

let clean_corpus =
  lazy
    (List.map
       (fun (e : Corpus.entry) -> (e.Corpus.id, e.Corpus.source))
       Corpus.all_bugs)

(* ------------------------------------------------------------------ *)
(* Table and figure regeneration benches                               *)
(* ------------------------------------------------------------------ *)

let table_tests =
  [
    Test.make ~name:"table1" (Staged.stage (fun () ->
        Rustudy.Tables.table1 (Lazy.force analyses)));
    Test.make ~name:"table2" (Staged.stage (fun () ->
        Rustudy.Tables.table2 (Lazy.force analyses)));
    Test.make ~name:"table3" (Staged.stage (fun () ->
        Rustudy.Tables.table3 (Lazy.force analyses)));
    Test.make ~name:"table4" (Staged.stage (fun () ->
        Rustudy.Tables.table4 (Lazy.force analyses)));
    Test.make ~name:"fixes" (Staged.stage (fun () ->
        Rustudy.Tables.fix_strategies (Lazy.force analyses)));
    Test.make ~name:"unsafe_scan" (Staged.stage (fun () ->
        Rustudy.Tables.unsafe_stats ()));
    Test.make ~name:"figure1" (Staged.stage (fun () -> Rustudy.Figures.figure1 ()));
    Test.make ~name:"figure2" (Staged.stage (fun () -> Rustudy.Figures.figure2 ()));
  ]

(* The full classification pipeline on one studied bug: parse, lower,
   detect, classify. *)
let pipeline_tests =
  [
    Test.make ~name:"classify_one_entry" (Staged.stage (fun () ->
        Rustudy.Classify.analyze_entry (Lazy.force representative_entry)));
  ]

(* ------------------------------------------------------------------ *)
(* Detector benches (§7)                                               *)
(* ------------------------------------------------------------------ *)

let detector_tests =
  [
    Test.make ~name:"detector_uaf" (Staged.stage (fun () ->
        List.concat_map Rustudy.detect_use_after_free (Lazy.force corpus_programs)));
    Test.make ~name:"detector_dlock" (Staged.stage (fun () ->
        List.concat_map Rustudy.detect_double_lock (Lazy.force corpus_programs)));
    Test.make ~name:"detector_eval" (Staged.stage (fun () ->
        Rustudy.Detector_eval.run ~domains:1 ()));
  ]

(* ------------------------------------------------------------------ *)
(* §4.1 microbenchmarks: safe vs unsafe access                         *)
(* ------------------------------------------------------------------ *)

(* opaque length so the bounds check cannot be hoisted or elided *)
let n = Sys.opaque_identity 65536
let arr = Array.init n (fun i -> i land 0xff)
let src_bytes = Bytes.make n 'x'
let dst_bytes = Bytes.make n '\000'

(* Bounds-checked access (Array.get): the analogue of safe indexing. *)
let safe_index_sum () =
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + arr.(i)
  done;
  !s

(* Unchecked access (Array.unsafe_get): the analogue of get_unchecked. *)
let unsafe_index_sum () =
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + Array.unsafe_get arr i
  done;
  !s

(* Per-element copy with bounds checks: safe slice copying. *)
let checked_copy () =
  for i = 0 to n - 1 do
    Bytes.set dst_bytes i (Bytes.get src_bytes i)
  done

(* Block copy: the analogue of ptr::copy_nonoverlapping. *)
let memcpy_copy () = Bytes.blit src_bytes 0 dst_bytes 0 n

let micro_tests =
  [
    Test.make ~name:"safe_vs_unsafe_checked_index" (Staged.stage safe_index_sum);
    Test.make ~name:"safe_vs_unsafe_unchecked_index" (Staged.stage unsafe_index_sum);
    Test.make ~name:"safe_vs_unsafe_checked_copy" (Staged.stage checked_copy);
    Test.make ~name:"safe_vs_unsafe_memcpy" (Staged.stage memcpy_copy);
  ]

(* ------------------------------------------------------------------ *)
(* Interprocedural scaling corpus (seeded synthetic programs)          *)
(* ------------------------------------------------------------------ *)

let scale_seed = 0x5CA1E

(* lowered programs memoised per (shape, size): generation and lowering
   stay outside every timed region *)
let scale_tbl : (string * int, Rustudy.Mir.program) Hashtbl.t =
  Hashtbl.create 8

let scale_program shape n : Rustudy.Mir.program =
  let key = (Scale_gen.shape_name shape, n) in
  match Hashtbl.find_opt scale_tbl key with
  | Some p -> p
  | None ->
      let src = Scale_gen.program ~seed:scale_seed ~shape ~n in
      let p =
        Rustudy.load ~file:(Printf.sprintf "scale_%s_%d.rs" (fst key) n) src
      in
      Hashtbl.add scale_tbl key p;
      p

(* One interprocedural pass: both summary-carrying detectors over a
   fresh analysis context (the per-ctx summary-table memo must not
   carry over between timed runs). *)
let interproc_pass ~mode program =
  let ctx = Rustudy.Cache.create program in
  ignore (Detectors.Double_lock.run_ctx ~mode ctx);
  ignore (Detectors.Uaf.run_ctx ~mode ctx)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)
(* ------------------------------------------------------------------ *)

let lower_and_detect config src =
  Rustudy.detect_double_lock (Rustudy.load ~config ~file:"a.rs" src)

let ablation_tests =
  [
    Test.make ~name:"ablation_tmp_extended" (Staged.stage (fun () ->
        List.concat_map
          (lower_and_detect Ir.Lower.default_config)
          (Lazy.force double_lock_sources)));
    Test.make ~name:"ablation_tmp_statement" (Staged.stage (fun () ->
        List.concat_map
          (lower_and_detect { Ir.Lower.tmp_lifetime = Ir.Lower.Statement_local })
          (Lazy.force double_lock_sources)));
    (* measured on the 1k-function synthetic chain, not the tiny corpus
       programs: there the summary computation was a rounding error and
       on/off sat within measurement noise, which made the row claim
       the interprocedural layer was free *)
    Test.make ~name:"ablation_interproc_on" (Staged.stage (fun () ->
        Detectors.Double_lock.run_ctx ~interprocedural:true
          (Rustudy.Cache.create (scale_program Scale_gen.Chain 1000))));
    Test.make ~name:"ablation_interproc_off" (Staged.stage (fun () ->
        Detectors.Double_lock.run_ctx ~interprocedural:false
          (Rustudy.Cache.create (scale_program Scale_gen.Chain 1000))));
    Test.make ~name:"ablation_extern_assume_on" (Staged.stage (fun () ->
        List.concat_map
          (Detectors.Uaf.run ~assume_extern_derefs:true)
          (Lazy.force corpus_programs)));
    Test.make ~name:"ablation_extern_assume_off" (Staged.stage (fun () ->
        List.concat_map
          (Detectors.Uaf.run ~assume_extern_derefs:false)
          (Lazy.force corpus_programs)));
  ]

(* ------------------------------------------------------------------ *)
(* Observability overhead: detector passes with tracing + metrics on    *)
(* ------------------------------------------------------------------ *)

let uaf_pass () =
  List.concat_map Rustudy.detect_use_after_free (Lazy.force corpus_programs)

let observability_tests =
  [
    Test.make ~name:"uaf_obs_off" (Staged.stage uaf_pass);
    Test.make ~name:"uaf_obs_on"
      (Staged.stage (fun () ->
           Rustudy.Metrics.enable ();
           Rustudy.Trace.enable ();
           Fun.protect
             ~finally:(fun () ->
               Rustudy.Trace.disable ();
               Rustudy.Metrics.disable ())
             uaf_pass));
  ]

(* ------------------------------------------------------------------ *)
(* Degraded-corpus benches: recovery overhead on malformed input       *)
(* ------------------------------------------------------------------ *)

(* Frontend-only timings: raw lexing throughput, the recovering parser
   on pristine sources (its overhead vs the strict parser) and on the
   fault-injected corpus (the cost of panic-mode recovery itself). *)
let lex_clean_pass () =
  List.iter
    (fun (id, src) -> ignore (Rustudy.Lexer.lex ~file:(id ^ ".rs") src))
    (Lazy.force clean_corpus)

let parse_strict_clean_pass () =
  List.iter
    (fun (id, src) -> ignore (Rustudy.parse ~file:(id ^ ".rs") src))
    (Lazy.force clean_corpus)

let parse_recovering_clean_pass () =
  List.iter
    (fun (id, src) -> ignore (Rustudy.parse_recovering ~file:(id ^ ".rs") src))
    (Lazy.force clean_corpus)

let parse_recovering_mutated_pass () =
  List.iter
    (fun (id, src) -> ignore (Rustudy.parse_recovering ~file:(id ^ ".rs") src))
    (Lazy.force mutated_corpus)

let frontend_tests =
  [
    Test.make ~name:"lex_clean" (Staged.stage lex_clean_pass);
    Test.make ~name:"parse_strict_clean" (Staged.stage parse_strict_clean_pass);
    Test.make ~name:"parse_recovering_clean"
      (Staged.stage parse_recovering_clean_pass);
    Test.make ~name:"parse_recovering_mutated"
      (Staged.stage parse_recovering_mutated_pass);
  ]

(* ------------------------------------------------------------------ *)
(* Ablation recall summary (printed alongside the timings)             *)
(* ------------------------------------------------------------------ *)

let recall_summary () =
  let dl_sources = Lazy.force double_lock_sources in
  let count config =
    List.length
      (List.filter (fun src -> lower_and_detect config src <> []) dl_sources)
  in
  let extended = count Ir.Lower.default_config in
  let statement =
    count { Ir.Lower.tmp_lifetime = Ir.Lower.Statement_local }
  in
  let interproc_on =
    List.length
      (List.filter
         (fun p -> Detectors.Double_lock.run ~interprocedural:true p <> [])
         (Lazy.force corpus_programs))
  in
  let interproc_off =
    List.length
      (List.filter
         (fun p -> Detectors.Double_lock.run ~interprocedural:false p <> [])
         (Lazy.force corpus_programs))
  in
  let eval_on = Lazy.force eval_result in
  Printf.printf
    "ablation recall: temporary-lifetime extended=%d/%d statement-local=%d/%d\n"
    extended (List.length dl_sources) statement (List.length dl_sources);
  Printf.printf
    "ablation recall: double-lock interprocedural=%d programs, intraprocedural-only=%d programs\n"
    interproc_on interproc_off;
  Printf.printf
    "detector eval (with extern-deref assumption): UAF %d bugs / %d FPs; double-lock %d bugs / %d FPs\n"
    eval_on.Study.Detector_eval.uaf_bugs
    eval_on.Study.Detector_eval.uaf_false_positives
    eval_on.Study.Detector_eval.dl_bugs
    eval_on.Study.Detector_eval.dl_false_positives

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

(* Runs a bechamel group, prints the estimates, and returns them as
   (name, ns/run) rows so --json can serialise every group. *)
let run_group ?(quota = 0.5) name tests : (string * float) list =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "== %s ==\n" name;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.filter_map
    (fun (test_name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] ->
          if ns > 1_000_000.0 then
            Printf.printf "  %-36s %10.3f ms/run\n" test_name (ns /. 1e6)
          else if ns > 1_000.0 then
            Printf.printf "  %-36s %10.3f us/run\n" test_name (ns /. 1e3)
          else Printf.printf "  %-36s %10.1f ns/run\n" test_name ns;
          Some (test_name, ns)
      | _ ->
          Printf.printf "  %-36s (no estimate)\n" test_name;
          None)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Corpus timings: cached vs uncached, sequential vs parallel          *)
(* ------------------------------------------------------------------ *)

(* Wall time of one call, best of [reps]. *)
let wall ?(reps = 3) f =
  let once () =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    Unix.gettimeofday () -. t0
  in
  List.fold_left min (once ()) (List.init (reps - 1) (fun _ -> once ()))

(* Quick-mode rows for the frontend group. Gating the smoke run on a
   50 ms bechamel quota proved flaky — one scheduler hiccup threw an
   OLS estimate off by 6x — so the quick run gates on best-of-5 wall
   passes instead, which hold within a few percent run to run. Must be
   called before the other quick phases so the heap is still quiet. *)
let quick_frontend_rows () =
  let rows =
    List.map
      (fun (name, pass) -> ("frontend/" ^ name, wall ~reps:5 pass *. 1e9))
      [
        ("lex_clean", lex_clean_pass);
        ("parse_strict_clean", parse_strict_clean_pass);
        ("parse_recovering_clean", parse_recovering_clean_pass);
        ("parse_recovering_mutated", parse_recovering_mutated_pass);
      ]
  in
  Printf.printf "== frontend (quick, best-of-5 wall) ==\n";
  List.iter
    (fun (name, ns) -> Printf.printf "  %-36s %10.3f ms/pass\n" name (ns /. 1e6))
    rows;
  rows

(* ------------------------------------------------------------------ *)
(* Dynamic oracle: interpreter throughput + differential sweep         *)
(* ------------------------------------------------------------------ *)

(* A fuel-bounded tight loop: every run executes exactly [fuel] MIR
   steps, so wall/steps is raw interpreter throughput with no
   program-dependent early exit. *)
let oracle_loop_program =
  lazy
    (Rustudy.load ~file:"oracle_loop.rs"
       "fn main() { let mut i = 0; loop { i = i + 1; } }")

let oracle_interp_fuel = 100_000

let oracle_interp_pass () =
  Rustudy.Oracle.run ~fuel:oracle_interp_fuel ~deadline_ms:60_000 ~schedules:1
    (Lazy.force oracle_loop_program)

(* The differential confusion counters (detectors vs oracle over the
   corpus and every seeded fault mutant) that land in the JSON. *)
let oracle_counters = lazy (Rustudy.Oracle_eval.run ~mutants:true ())

let oracle_total f (r : Rustudy.Oracle_eval.result) =
  List.fold_left (fun acc (_, row) -> acc + f row) 0 r.Rustudy.Oracle_eval.rows

(* Wall-based rows like the quick frontend ones: the sweep is one
   deterministic pass, a bechamel quota would mostly re-measure it. *)
let oracle_rows () =
  let interp_ns = wall ~reps:5 (fun () -> oracle_interp_pass ()) *. 1e9 in
  let steps = (oracle_interp_pass ()).Rustudy.Oracle.steps in
  let sweep_ns =
    wall ~reps:3 (fun () -> Rustudy.Oracle_eval.run ~domains:1 ()) *. 1e9
  in
  Printf.printf "== oracle (budgeted interpreter, best-of-N wall) ==\n";
  Printf.printf "  %-36s %10.3f ms/run  (%.2f Msteps/s)\n" "oracle/interp_loop"
    (interp_ns /. 1e6)
    (float_of_int steps /. interp_ns *. 1e3);
  Printf.printf "  %-36s %10.3f ms/pass\n" "oracle/corpus_sweep"
    (sweep_ns /. 1e6);
  [ ("oracle/interp_loop", interp_ns); ("oracle/corpus_sweep", sweep_ns) ]

let print_oracle_counters () =
  let r = Lazy.force oracle_counters in
  Printf.printf
    "oracle differential: %d programs + %d mutants (%d degraded, %d escaped); \
     agree+=%d agree-=%d static-only=%d dynamic-only=%d inconclusive=%d\n"
    r.Rustudy.Oracle_eval.programs r.Rustudy.Oracle_eval.mutants
    (List.length r.Rustudy.Oracle_eval.degraded)
    r.Rustudy.Oracle_eval.escaped
    (oracle_total (fun w -> w.Rustudy.Oracle_eval.agree_pos) r)
    (oracle_total (fun w -> w.Rustudy.Oracle_eval.agree_neg) r)
    (oracle_total (fun w -> w.Rustudy.Oracle_eval.static_only) r)
    (oracle_total (fun w -> w.Rustudy.Oracle_eval.dynamic_only) r)
    (oracle_total (fun w -> w.Rustudy.Oracle_eval.inconclusive) r)

(* Interprocedural scaling rows (summary engine vs legacy replay), wall
   best-of-N like the quick frontend rows: the big programs make a
   bechamel quota per row needlessly slow, and the wall passes hold
   within a few percent. Row names: interproc/<shape>_<n>_<mode>, in
   ns per pass. [summary_cold] drops the process-wide content-addressed
   store first; [summary_warm] reuses it (fresh context either way). *)
let interproc_rows ~shapes ~sizes () =
  let rows =
    List.concat_map
      (fun shape ->
        List.concat_map
          (fun n ->
            let p = scale_program shape n in
            (* one rep for the big programs: replay on the 10k chain is
               the slow case these rows exist to demonstrate *)
            let reps =
              (* tiny rows are a few ms and wobble on a loaded host;
                 more samples keep them clear of the 25% gate *)
              if n >= 10_000 then 1 else if n <= 100 then 7 else 3
            in
            let row mode_label f =
              ( Printf.sprintf "interproc/%s_%d_%s" (Scale_gen.shape_name shape)
                  n mode_label,
                wall ~reps f *. 1e9 )
            in
            [
              row "replay" (fun () ->
                  interproc_pass ~mode:Rustudy.Summary.Replay p);
              row "summary_cold" (fun () ->
                  Rustudy.Cache.clear_summaries ();
                  interproc_pass ~mode:Rustudy.Summary.Summary p);
              row "summary_warm" (fun () ->
                  interproc_pass ~mode:Rustudy.Summary.Summary p);
            ])
          sizes)
      shapes
  in
  Printf.printf "== interproc (scaling, best-of-N wall) ==\n";
  List.iter
    (fun (name, ns) ->
      Printf.printf "  %-36s %10.3f ms/pass\n" name (ns /. 1e6))
    rows;
  rows

(* The acceptance gates of the summary layer, checked on the full run:
   the engine must beat replay >= 3x on the 10k chain, and its
   per-function cost must stay within 2x from 1k to 10k (i.e. the
   bottom-up schedule scales near-linearly). Returns false (and prints
   why) on a violation. *)
let interproc_asserts (rows : (string * float) list) : bool =
  let get name = List.assoc_opt ("interproc/" ^ name) rows in
  let ok = ref true in
  (match (get "chain_10000_replay", get "chain_10000_summary_cold") with
  | Some replay, Some summary ->
      let speedup = replay /. summary in
      Printf.printf "  interproc gate: summary %.2fx faster than replay @10k\n"
        speedup;
      if speedup < 3.0 then begin
        Printf.printf
          "  FAILED: summary engine < 3x faster than replay on the 10k chain\n";
        ok := false
      end
  | _ -> ());
  (match (get "chain_1000_summary_cold", get "chain_10000_summary_cold") with
  | Some t1k, Some t10k ->
      let ratio = t10k /. 10_000.0 /. (t1k /. 1_000.0) in
      Printf.printf "  interproc gate: per-function cost 1k->10k = %.2fx\n"
        ratio;
      if ratio > 2.0 then begin
        Printf.printf
          "  FAILED: per-function summary cost grew > 2x from 1k to 10k\n";
        ok := false
      end
  | _ -> ());
  !ok

(* Satellite gate on the repointed ablation rows: on the scaling corpus
   the interprocedural layer has a real, measurable cost, so on/off
   within noise means the row is measuring the wrong thing again. *)
let ablation_divergence_assert (rows : (string * float) list) : bool =
  match
    ( List.assoc_opt "ablations/ablation_interproc_on" rows,
      List.assoc_opt "ablations/ablation_interproc_off" rows )
  with
  | Some on, Some off ->
      let ratio = on /. off in
      Printf.printf
        "  ablation gate: interproc on/off = %.2fx on the 1k chain\n" ratio;
      if ratio < 1.15 then
        Printf.printf
          "  FAILED: ablation_interproc_{on,off} within noise (%.2fx) on the \
           scaling corpus\n"
          ratio;
      ratio >= 1.15
  | _ -> true

(* The pre-cache corpus pass: re-lower every entry from source and let
   every detector recompute its own analyses (each legacy [run] builds
   a private context, so nothing is shared across detectors). *)
let uncached_corpus_pass () =
  List.iter
    (fun (e : Corpus.entry) ->
      let p = Rustudy.load ~file:(e.Corpus.id ^ ".rs") e.Corpus.source in
      ignore (Detectors.Uaf.run p);
      ignore (Detectors.Double_free.run p);
      ignore (Detectors.Invalid_free.run p);
      ignore (Detectors.Uninit.run p);
      ignore (Detectors.Null_deref.run p);
      ignore (Detectors.Buffer.run p);
      ignore (Detectors.Double_lock.run p);
      ignore (Detectors.Lock_order.run p);
      ignore (Detectors.Condvar.run p);
      ignore (Detectors.Channel.run p);
      ignore (Detectors.Once.run p);
      ignore (Detectors.Sync_misuse.run p);
      ignore (Detectors.Atomicity.run p);
      ignore (Detectors.Atomicity.run_with_sessions p);
      ignore (Detectors.Refcell.run p))
    Corpus.all_bugs

(* The cached corpus pass: every entry goes through the program cache
   and one shared analysis context per entry. *)
let cached_corpus_pass () =
  List.iter
    (fun (e : Corpus.entry) ->
      let ctx = Rustudy.load_ctx ~file:(e.Corpus.id ^ ".rs") e.Corpus.source in
      ignore (Rustudy.detect_ctx ctx))
    Corpus.all_bugs

type corpus_timings = {
  uncached_s : float;
  cached_cold_s : float;  (** empty program cache: lower + analyze once *)
  cached_warm_s : float;  (** program cache hit: shared contexts reused *)
  sequential_s : float;
  parallel_s : float;
  parallel_domains : int;
  parallel_identical : bool;
  parallel_skipped : bool;
      (** single-core host: a "parallel" sweep would just measure pool
          overhead, so the pass is skipped and the JSON rows say
          "skipped_single_core" instead of a meaningless speedup *)
  recovery_clean_s : float;
      (** fault-tolerant pipeline over the pristine corpus, cold cache *)
  recovery_mutated_s : float;
      (** fault-tolerant pipeline over every fault-injected mutant *)
  mutant_count : int;
  mutant_clean : int;  (** mutants that still parse and analyze cleanly *)
  mutant_degraded : int;  (** mutants recovered with diagnostics *)
  mutant_failed : int;  (** mutants captured as a per-entry failure *)
}

(* Full fault-tolerant pipeline (recover, lower, detect) over a list
   of named sources; the program cache is cleared first so every run
   pays the same cold-path cost. *)
let recovering_pass sources () =
  Rustudy.Cache.clear_programs ();
  List.iter
    (fun (id, src) ->
      ignore (Rustudy.check_result ~file:(id ^ ".rs") src))
    sources

let corpus_bench () : corpus_timings =
  let uncached_s = wall uncached_corpus_pass in
  let cached_cold_s =
    wall (fun () ->
        Rustudy.Cache.clear_programs ();
        cached_corpus_pass ())
  in
  let cached_warm_s = wall cached_corpus_pass in
  let domains = Rustudy.Domain_pool.default_domains () in
  Rustudy.Cache.clear_programs ();
  let seq = ref [] in
  let sequential_s =
    wall ~reps:1 (fun () -> seq := Rustudy.analyze_corpus ~domains:1 ())
  in
  let parallel_skipped = Domain.recommended_domain_count () = 1 in
  let parallel_s, parallel_identical =
    if parallel_skipped then (sequential_s, true)
    else begin
      Rustudy.Cache.clear_programs ();
      let par = ref [] in
      let parallel_s =
        wall ~reps:1 (fun () -> par := Rustudy.analyze_corpus ~domains ())
      in
      let parallel_identical =
        List.length !seq = List.length !par
        && List.for_all2
             (fun (a : Rustudy.Classify.analysis)
                  (b : Rustudy.Classify.analysis) ->
               a.Rustudy.Classify.entry.Corpus.id
               = b.Rustudy.Classify.entry.Corpus.id
               && List.map Rustudy.Finding.to_string a.Rustudy.Classify.findings
                  = List.map Rustudy.Finding.to_string b.Rustudy.Classify.findings)
             !seq !par
      in
      (parallel_s, parallel_identical)
    end
  in
  let clean = Lazy.force clean_corpus in
  let mutants = Lazy.force mutated_corpus in
  let recovery_clean_s = wall (recovering_pass clean) in
  let recovery_mutated_s = wall (recovering_pass mutants) in
  let mutant_clean = ref 0 and mutant_degraded = ref 0 and mutant_failed = ref 0 in
  List.iter
    (fun (id, src) ->
      match Rustudy.check_result ~file:(id ^ ".rs") src with
      | Ok (_, []) -> incr mutant_clean
      | Ok (_, _ :: _) -> incr mutant_degraded
      | Error _ -> incr mutant_failed)
    mutants;
  {
    uncached_s;
    cached_cold_s;
    cached_warm_s;
    sequential_s;
    parallel_s;
    parallel_domains = domains;
    parallel_identical;
    parallel_skipped;
    recovery_clean_s;
    recovery_mutated_s;
    mutant_count = List.length mutants;
    mutant_clean = !mutant_clean;
    mutant_degraded = !mutant_degraded;
    mutant_failed = !mutant_failed;
  }

let print_corpus_timings (c : corpus_timings) =
  Printf.printf "== corpus (analysis cache + domain pool) ==\n";
  Printf.printf "  %-36s %10.3f ms\n" "uncached (per-detector analyses)"
    (c.uncached_s *. 1e3);
  Printf.printf "  %-36s %10.3f ms  (%.2fx vs uncached)\n"
    "cached, cold program cache" (c.cached_cold_s *. 1e3)
    (c.uncached_s /. c.cached_cold_s);
  Printf.printf "  %-36s %10.3f ms  (%.2fx vs uncached)\n"
    "cached, warm program cache" (c.cached_warm_s *. 1e3)
    (c.uncached_s /. c.cached_warm_s);
  Printf.printf "  %-36s %10.3f ms\n" "analyze_corpus sequential"
    (c.sequential_s *. 1e3);
  if c.parallel_skipped then
    Printf.printf "  %-36s %10s\n" "analyze_corpus parallel"
      "skipped (single core)"
  else
    Printf.printf "  %-36s %10.3f ms  (%.2fx, %d domains, identical=%b)\n"
      "analyze_corpus parallel" (c.parallel_s *. 1e3)
      (c.sequential_s /. c.parallel_s)
      c.parallel_domains c.parallel_identical;
  Printf.printf "== degraded corpus (fault injection) ==\n";
  Printf.printf "  %-36s %10.3f ms\n" "recovering pipeline, clean corpus"
    (c.recovery_clean_s *. 1e3);
  Printf.printf "  %-36s %10.3f ms  (%.2fx vs clean)\n"
    (Printf.sprintf "recovering pipeline, %d mutants" c.mutant_count)
    (c.recovery_mutated_s *. 1e3)
    (c.recovery_mutated_s /. c.recovery_clean_s);
  Printf.printf "  %-36s clean=%d degraded=%d failed=%d (raised=0 by construction)\n"
    "mutant outcomes" c.mutant_clean c.mutant_degraded c.mutant_failed

(* ------------------------------------------------------------------ *)
(* Frontend throughput (tokens/sec, MB/sec)                            *)
(* ------------------------------------------------------------------ *)

type frontend_stats = {
  fe_clean_files : int;
  fe_clean_bytes : int;
  fe_clean_tokens : int;
  fe_mutated_files : int;
  fe_mutated_bytes : int;
  fe_mutated_tokens : int;
  fe_lex_clean_s : float;
  fe_lex_mutated_s : float;
  fe_parse_strict_clean_s : float;
  fe_parse_recovering_mutated_s : float;
}

(* Parse-only wall timings plus corpus size/token totals, so the
   recovery overhead can be reported both raw and normalized: the
   mutant corpus is ~15x the clean corpus by construction (6 mutants
   per entry, near-full-size each), so the raw mutated/clean ratio is
   dominated by input size, not by recovery cost. The per-byte and
   per-token ratios below factor that out. *)
let frontend_bench () : frontend_stats =
  let clean = Lazy.force clean_corpus in
  let mutants = Lazy.force mutated_corpus in
  let totals corpus =
    List.fold_left
      (fun (b, t) (id, src) ->
        let c = Rustudy.Diag.collector () in
        let buf = Rustudy.Lexer.lex ~recover:c ~file:(id ^ ".rs") src in
        (b + String.length src, t + buf.Rustudy.Lexer.n_toks))
      (0, 0) corpus
  in
  let clean_bytes, clean_tokens = totals clean in
  let mutated_bytes, mutated_tokens = totals mutants in
  let lex_pass corpus () =
    List.iter
      (fun (id, src) ->
        let c = Rustudy.Diag.collector () in
        ignore (Rustudy.Lexer.lex ~recover:c ~file:(id ^ ".rs") src))
      corpus
  in
  let fe_lex_clean_s = wall (lex_pass clean) in
  let fe_lex_mutated_s = wall (lex_pass mutants) in
  let fe_parse_strict_clean_s =
    wall (fun () ->
        List.iter
          (fun (id, src) -> ignore (Rustudy.parse ~file:(id ^ ".rs") src))
          clean)
  in
  let fe_parse_recovering_mutated_s =
    wall (fun () ->
        List.iter
          (fun (id, src) ->
            ignore (Rustudy.parse_recovering ~file:(id ^ ".rs") src))
          mutants)
  in
  {
    fe_clean_files = List.length clean;
    fe_clean_bytes = clean_bytes;
    fe_clean_tokens = clean_tokens;
    fe_mutated_files = List.length mutants;
    fe_mutated_bytes = mutated_bytes;
    fe_mutated_tokens = mutated_tokens;
    fe_lex_clean_s;
    fe_lex_mutated_s;
    fe_parse_strict_clean_s;
    fe_parse_recovering_mutated_s;
  }

let fe_ratio_per_byte (fe : frontend_stats) =
  fe.fe_parse_recovering_mutated_s
  /. float_of_int fe.fe_mutated_bytes
  /. (fe.fe_parse_strict_clean_s /. float_of_int fe.fe_clean_bytes)

let fe_ratio_per_token (fe : frontend_stats) =
  fe.fe_parse_recovering_mutated_s
  /. float_of_int fe.fe_mutated_tokens
  /. (fe.fe_parse_strict_clean_s /. float_of_int fe.fe_clean_tokens)

let print_frontend (fe : frontend_stats) =
  Printf.printf "== frontend throughput ==\n";
  Printf.printf "  %-36s %d files, %d bytes, %d tokens\n" "clean corpus"
    fe.fe_clean_files fe.fe_clean_bytes fe.fe_clean_tokens;
  Printf.printf "  %-36s %d files, %d bytes, %d tokens\n" "mutated corpus"
    fe.fe_mutated_files fe.fe_mutated_bytes fe.fe_mutated_tokens;
  Printf.printf "  %-36s %10.3f ms  (%.1f MB/s, %.2f Mtok/s)\n" "lex clean"
    (fe.fe_lex_clean_s *. 1e3)
    (float_of_int fe.fe_clean_bytes /. 1e6 /. fe.fe_lex_clean_s)
    (float_of_int fe.fe_clean_tokens /. 1e6 /. fe.fe_lex_clean_s);
  Printf.printf "  %-36s %10.3f ms  (%.1f MB/s, %.2f Mtok/s)\n" "lex mutated"
    (fe.fe_lex_mutated_s *. 1e3)
    (float_of_int fe.fe_mutated_bytes /. 1e6 /. fe.fe_lex_mutated_s)
    (float_of_int fe.fe_mutated_tokens /. 1e6 /. fe.fe_lex_mutated_s);
  Printf.printf "  %-36s %10.3f ms\n" "parse strict, clean"
    (fe.fe_parse_strict_clean_s *. 1e3);
  Printf.printf "  %-36s %10.3f ms  (%.1fx raw)\n"
    (Printf.sprintf "parse recovering, %d mutants" fe.fe_mutated_files)
    (fe.fe_parse_recovering_mutated_s *. 1e3)
    (fe.fe_parse_recovering_mutated_s /. fe.fe_parse_strict_clean_s);
  Printf.printf
    "  %-36s %.2fx per byte, %.2fx per token (mutant corpus is %.1fx the \
     clean corpus)\n"
    "recovery overhead, normalized" (fe_ratio_per_byte fe)
    (fe_ratio_per_token fe)
    (float_of_int fe.fe_mutated_bytes /. float_of_int fe.fe_clean_bytes)

(* ------------------------------------------------------------------ *)
(* Supervisor timings and counters                                     *)
(* ------------------------------------------------------------------ *)

type supervisor_timings = {
  sup_clean_s : float;  (** supervised sweep over the pristine corpus *)
  sup_stats : Rustudy.Supervisor.stats;
  sup_replayed : int;
  sup_adversarial_s : float;
      (** instant-deadline slice: every entry times out, is retried and
          quarantined (backoff sleeps injected away) *)
  sup_adversarial_stats : Rustudy.Supervisor.stats;
}

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

(* The adversarial run: an already-expired per-entry deadline over a
   small corpus slice, so every attempt times out deterministically and
   the retry/quarantine machinery is what gets timed. *)
let adversarial_sweep () =
  let slice = take 8 Corpus.all_bugs in
  let config =
    {
      Rustudy.Supervisor.default_config with
      Rustudy.Supervisor.per_entry_deadline_ms = Some 0;
      retry = { Rustudy.Retry.default with Rustudy.Retry.max_attempts = 2 };
      sleep = (fun _ -> ());
      watchdog_interval_ms = 0;
    }
  in
  Study.Classify.analyze_entries_supervised ~config slice

let supervisor_bench () : supervisor_timings =
  Rustudy.Cache.clear_programs ();
  let t0 = Unix.gettimeofday () in
  let _, sup_stats, sup_replayed = Rustudy.analyze_corpus_supervised () in
  let sup_clean_s = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let _, sup_adversarial_stats, _ = adversarial_sweep () in
  let sup_adversarial_s = Unix.gettimeofday () -. t1 in
  {
    sup_clean_s;
    sup_stats;
    sup_replayed;
    sup_adversarial_s;
    sup_adversarial_stats;
  }

let print_supervisor (s : supervisor_timings) =
  let line name (st : Rustudy.Supervisor.stats) secs =
    Printf.printf
      "  %-36s %10.3f ms  (%d/%d completed, %d retries, %d timeouts, %d \
       quarantined, %d skipped)\n"
      name (secs *. 1e3) st.Rustudy.Supervisor.completed
      st.Rustudy.Supervisor.total st.Rustudy.Supervisor.retried
      st.Rustudy.Supervisor.timeouts st.Rustudy.Supervisor.quarantined
      st.Rustudy.Supervisor.skipped
  in
  Printf.printf "== supervisor (deadline/retry/quarantine) ==\n";
  line "supervised sweep, clean corpus" s.sup_stats s.sup_clean_s;
  line "instant-deadline slice" s.sup_adversarial_stats s.sup_adversarial_s

(* ------------------------------------------------------------------ *)
(* Analysis server: round-trip latency and load-shedding counters      *)
(* ------------------------------------------------------------------ *)

type server_timings = {
  srv_clients : int;
  srv_requests : int;  (** healthy phase: total round trips measured *)
  srv_p50_ns : float;  (** flight recorder on (the production default) *)
  srv_p99_ns : float;
  srv_flight_off_p50_ns : float;
      (** same phase with the recorder off: the delta is the always-on
          cost the recorder must keep negligible *)
  srv_stats_rtt_ns : float;  (** p50 of inline [stats] admin round trips *)
  srv_adv_requests : int;  (** adversarial phase: requests fired *)
  srv_shed : int;
  srv_retried : int;
  srv_timeouts : int;
}

let bench_source =
  "fn f(m: Arc<Mutex<u32>>) { let a = m.lock().unwrap(); let b = \
   m.lock().unwrap(); }"

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Phase A: an in-process daemon at its default tuning, hammered by
   concurrent clients issuing healthy check requests — the numbers are
   full round trips (frame encode, dispatch, analysis, frame decode),
   reported as p50/p99 so tail behaviour is gated, not just the
   median. *)
let server_latency_phase ?(flight = true) () =
  let clients = 4 and per_client = 64 in
  if flight then Support.Flight.enable () else Support.Flight.disable ();
  let sock = Filename.temp_file "rustudy_bench_lat" ".sock" in
  let d =
    Server.Daemon.start (Server.Daemon.default_config ~socket_path:sock)
  in
  let lat = Array.make (clients * per_client) 0.0 in
  let client k =
    let c = Server.Client.connect_retry sock in
    Fun.protect
      ~finally:(fun () -> Server.Client.close c)
      (fun () ->
        for i = 0 to per_client - 1 do
          let t0 = Unix.gettimeofday () in
          ignore
            (Server.Client.rpc c
               (Server.Client.check ~id:i ~keep_going:true
                  ~source:bench_source ~file:"bench.rs" ()));
          lat.((k * per_client) + i) <- Unix.gettimeofday () -. t0
        done)
  in
  let ts = List.init clients (fun k -> Thread.create client k) in
  List.iter Thread.join ts;
  Server.Daemon.stop d;
  (try Sys.remove sock with Sys_error _ -> ());
  Support.Flight.enable ();
  Array.sort compare lat;
  let n = Array.length lat in
  let pct p = lat.(min (n - 1) (int_of_float (float_of_int n *. p))) *. 1e9 in
  (clients, n, pct 0.50, pct 0.99)

(* Phase A': the inline admin path — [stats] round trips never touch
   the worker pool, so their latency is pure accept-path dispatch. *)
let server_stats_phase () =
  let rounds = 256 in
  let sock = Filename.temp_file "rustudy_bench_adm" ".sock" in
  let d =
    Server.Daemon.start (Server.Daemon.default_config ~socket_path:sock)
  in
  let lat = Array.make rounds 0.0 in
  let c = Server.Client.connect_retry sock in
  Fun.protect
    ~finally:(fun () -> Server.Client.close c)
    (fun () ->
      for i = 0 to rounds - 1 do
        let t0 = Unix.gettimeofday () in
        ignore (Server.Client.rpc c (Server.Client.stats ~id:i));
        lat.(i) <- Unix.gettimeofday () -. t0
      done);
  Server.Daemon.stop d;
  (try Sys.remove sock with Sys_error _ -> ());
  Array.sort compare lat;
  lat.(rounds / 2) *. 1e9

(* Phase B: a deliberately starved daemon (one worker, a two-slot
   queue, two attempts) under injected faults — first attempts of
   flaky requests raise, slow requests hold the only worker so the
   burst overflows the queue, instant deadlines time out. What is
   measured is that the shedding/retry/timeout machinery engages, and
   the counters land in the JSON next to the latency rows. *)
let server_adversarial_phase () =
  let sock = Filename.temp_file "rustudy_bench_adv" ".sock" in
  let hook (req : Server.Proto.request) ~attempt =
    match req.Server.Proto.cmd with
    | Server.Proto.Check { file; _ } when starts_with "flaky-" file ->
        if attempt = 1 then failwith "injected first-attempt failure"
    | Server.Proto.Check { file; _ } when starts_with "slow-" file ->
        Thread.delay 0.05
    | _ -> ()
  in
  let d =
    Server.Daemon.start
      {
        (Server.Daemon.default_config ~socket_path:sock) with
        Server.Daemon.workers = 1;
        queue_cap = 2;
        retries = 2;
        before_handle = Some hook;
      }
  in
  let fire file deadline_ms =
    let c = Server.Client.connect_retry sock in
    Fun.protect
      ~finally:(fun () -> Server.Client.close c)
      (fun () ->
        ignore
          (Server.Client.rpc c
             (Server.Client.check ~id:1 ?deadline_ms ~keep_going:true
                ~source:bench_source ~file ())))
  in
  (* 8 concurrent slow requests vs 1 worker and 2 queue slots: the
     overflow is shed with W0501 *)
  let burst =
    List.init 8 (fun i ->
        Thread.create (fun () -> fire (Printf.sprintf "slow-%d.rs" i) None) ())
  in
  List.iter Thread.join burst;
  for i = 1 to 4 do
    fire (Printf.sprintf "flaky-%d.rs" i) None
  done;
  for i = 1 to 4 do
    fire (Printf.sprintf "late-%d.rs" i) (Some 0)
  done;
  let s = Server.Daemon.stats d in
  Server.Daemon.stop d;
  (try Sys.remove sock with Sys_error _ -> ());
  (16, s.Server.Daemon.shed, s.Server.Daemon.retried,
   s.Server.Daemon.timeouts)

let server_bench () : server_timings =
  let srv_clients, srv_requests, srv_p50_ns, srv_p99_ns =
    server_latency_phase ()
  in
  let _, _, srv_flight_off_p50_ns, _ = server_latency_phase ~flight:false () in
  let srv_stats_rtt_ns = server_stats_phase () in
  let srv_adv_requests, srv_shed, srv_retried, srv_timeouts =
    server_adversarial_phase ()
  in
  {
    srv_clients;
    srv_requests;
    srv_p50_ns;
    srv_p99_ns;
    srv_flight_off_p50_ns;
    srv_stats_rtt_ns;
    srv_adv_requests;
    srv_shed;
    srv_retried;
    srv_timeouts;
  }

let server_rows (s : server_timings) =
  [
    ("server/check_p50", s.srv_p50_ns);
    ("server/check_p99", s.srv_p99_ns);
    ("server/check_p50_flight_off", s.srv_flight_off_p50_ns);
    ("server/stats_rtt", s.srv_stats_rtt_ns);
  ]

let print_server (s : server_timings) =
  Printf.printf "== server (in-process daemon round trips) ==\n";
  Printf.printf "  %-36s %10.1f us\n"
    (Printf.sprintf "check p50 (%d clients, %d reqs)" s.srv_clients
       s.srv_requests)
    (s.srv_p50_ns /. 1e3);
  Printf.printf "  %-36s %10.1f us\n" "check p99" (s.srv_p99_ns /. 1e3);
  Printf.printf "  %-36s %10.1f us (%+.1f%% vs flight off)\n"
    "check p50, flight recorder off"
    (s.srv_flight_off_p50_ns /. 1e3)
    ((s.srv_p50_ns -. s.srv_flight_off_p50_ns)
    /. Float.max 1.0 s.srv_flight_off_p50_ns
    *. 100.0);
  Printf.printf "  %-36s %10.1f us\n" "stats admin rtt p50"
    (s.srv_stats_rtt_ns /. 1e3);
  Printf.printf
    "  adversarial: %d requests -> %d shed, %d retried, %d timeouts\n"
    s.srv_adv_requests s.srv_shed s.srv_retried s.srv_timeouts

(* ------------------------------------------------------------------ *)
(* Replicated corpus: parallel speedup on an input big enough to       *)
(* amortize domain spawn (--replicate N)                               *)
(* ------------------------------------------------------------------ *)

type replicate_timings = {
  rep_n : int;
  rep_items : int;
  rep_sequential_s : float;
  rep_parallel_s : float;
  rep_domains : int;
  rep_identical : bool;
}

(* N copies of every corpus entry, each under a distinct file key so
   nothing is shared between replicas; every item goes through the
   full uncached pipeline (parse, lower, all detectors). The parallel
   pass uses chunked scheduling with at least two domains; findings
   must be byte-identical to the sequential pass. *)
let replicate_bench n : replicate_timings =
  let items =
    List.concat_map
      (fun k ->
        List.map
          (fun (e : Corpus.entry) ->
            (Printf.sprintf "%s~r%d" e.Corpus.id k, e.Corpus.source))
          Corpus.all_bugs)
      (List.init n (fun k -> k))
  in
  let pass ~domains () =
    Rustudy.Domain_pool.map ~domains
      ~f:(fun (id, src) ->
        List.map Rustudy.Finding.to_string
          (Rustudy.check ~file:(id ^ ".rs") src))
      items
  in
  let domains = max 2 (Rustudy.Domain_pool.default_domains ()) in
  let seq = ref [] and par = ref [] in
  let rep_sequential_s = wall ~reps:1 (fun () -> seq := pass ~domains:1 ()) in
  let rep_parallel_s = wall ~reps:1 (fun () -> par := pass ~domains ()) in
  {
    rep_n = n;
    rep_items = List.length items;
    rep_sequential_s;
    rep_parallel_s;
    rep_domains = domains;
    rep_identical = !seq = !par;
  }

let print_replicate (r : replicate_timings) =
  Printf.printf "== replicated corpus (--replicate %d: %d items) ==\n" r.rep_n
    r.rep_items;
  Printf.printf "  %-36s %10.3f ms\n" "sequential (1 domain)"
    (r.rep_sequential_s *. 1e3);
  Printf.printf "  %-36s %10.3f ms  (%.2fx, %d domains, identical=%b)\n"
    "parallel (chunked)" (r.rep_parallel_s *. 1e3)
    (r.rep_sequential_s /. r.rep_parallel_s)
    r.rep_domains r.rep_identical

(* ------------------------------------------------------------------ *)
(* Baseline comparison (--compare BASELINE.json)                       *)
(* ------------------------------------------------------------------ *)

(* Minimal parser for one flat object this binary writes: one
   `"name": value` pair per line between the opening and closing
   braces of the section named [section]. Values come back as raw
   strings. *)
let read_json_section path section : (string * string) list =
  let marker = "\"" ^ section ^ "\":" in
  let ml = String.length marker in
  let ic = open_in path in
  let rows = ref [] and in_ns = ref false in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line >= ml && String.sub line 0 ml = marker then
         in_ns := true
       else if !in_ns then
         if line = "}," || line = "}" then raise Exit
         else
           match String.rindex_opt line ':' with
           | Some ci ->
               let name = String.trim (String.sub line 0 ci) in
               let name =
                 if String.length name >= 2 && name.[0] = '"' then
                   String.sub name 1 (String.length name - 2)
                 else name
               in
               let v =
                 String.trim
                   (String.sub line (ci + 1) (String.length line - ci - 1))
               in
               let v =
                 if v <> "" && v.[String.length v - 1] = ',' then
                   String.sub v 0 (String.length v - 1)
                 else v
               in
               if name <> "" then rows := (name, v) :: !rows
           | None -> ()
     done
   with End_of_file | Exit -> ());
  close_in ic;
  List.rev !rows

let read_baseline path : (string * float) list =
  List.filter_map
    (fun (name, v) ->
      Option.map (fun f -> (name, f)) (float_of_string_opt v))
    (read_json_section path "ns_per_run")

(* The run parameters a baseline was produced under. Comparing against
   a baseline recorded with different parameters is apples-to-oranges;
   [compare_against] warns (it does not fail) on any mismatch. *)
let bench_version = 2

let current_meta ~replicate () : (string * string) list =
  [
    ("bench_version", string_of_int bench_version);
    ("cores", string_of_int (Domain.recommended_domain_count ()));
    ("domains", string_of_int (Rustudy.Domain_pool.default_domains ()));
    ("replicate", string_of_int replicate);
    ("fuel_default", string_of_int (Rustudy.Fuel.get ()));
    ( "deadline_default_ms",
      string_of_int (Rustudy.Deadline.get_default_ms ()) );
  ]

let warn_meta_mismatch path ~replicate =
  match read_json_section path "meta" with
  | [] ->
      Printf.printf
        "  note: baseline has no \"meta\" block (pre-v%d bench output); \
         run parameters not checked\n"
        bench_version
  | base ->
      List.iter
        (fun (k, cur) ->
          match List.assoc_opt k base with
          | None ->
              Printf.printf "  WARNING: baseline meta is missing %S\n" k
          | Some bv when bv <> cur ->
              Printf.printf
                "  WARNING: meta mismatch on %s: baseline=%s current=%s \
                 (timings are not directly comparable)\n"
                k bv cur
          | Some _ -> ())
        (current_meta ~replicate ())

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Gated groups: a >25% slowdown in any of these fails the comparison.
   Other groups are informational only. *)
let gated_prefixes =
  [ "detectors/"; "frontend/"; "server/"; "interproc/"; "oracle/" ]

(* Prints the per-benchmark speedup table vs [path] and returns false
   when any gated entry regressed by more than 25%. Rows with no
   baseline entry (e.g. a group added after the baseline was recorded)
   are reported as new and never gate. *)
let compare_against ~replicate path (rows : (string * float) list) : bool =
  let baseline = read_baseline path in
  Printf.printf "\n== compare vs %s ==\n" path;
  warn_meta_mismatch path ~replicate;
  Printf.printf "  %-36s %14s %14s %9s\n" "benchmark" "baseline ns/run"
    "current ns/run" "speedup";
  let regressed = ref [] in
  let unbaselined = ref [] in
  List.iter
    (fun (name, cur) ->
      match List.assoc_opt name baseline with
      | None -> unbaselined := name :: !unbaselined
      | Some base ->
          let gated = List.exists (fun p -> has_prefix p name) gated_prefixes in
          let bad = gated && cur > base *. 1.25 in
          if bad then regressed := name :: !regressed;
          Printf.printf "  %-36s %14.1f %14.1f %8.2fx%s\n" name base cur
            (base /. cur)
            (if bad then "  << REGRESSION" else ""))
    rows;
  (match List.rev !unbaselined with
  | [] -> ()
  | l ->
      Printf.printf
        "  new since baseline (not gated until the baseline is \
         regenerated): %s\n"
        (String.concat ", " l));
  (match List.rev !regressed with
  | [] ->
      Printf.printf "  no %s regression > 25%%\n"
        (String.concat " or " (List.map (fun p -> p ^ "*") gated_prefixes))
  | l ->
      Printf.printf "  REGRESSED by > 25%%: %s\n" (String.concat ", " l));
  !regressed = []

(* ------------------------------------------------------------------ *)
(* JSON output (hand-rolled: no JSON library in the dependency set)    *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path (rows : (string * float) list) (c : corpus_timings)
    ?replicate ~frontend ~supervisor ~server ~oracle ~ratio_index ~ratio_copy
    () =
  let oc = open_out path in
  let field k v = Printf.fprintf oc "    \"%s\": %s" (json_escape k) v in
  output_string oc "{\n  \"meta\": {\n";
  let meta =
    current_meta
      ~replicate:(match replicate with Some r -> r.rep_n | None -> 0)
      ()
  in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then output_string oc ",\n";
      field name v)
    meta;
  output_string oc "\n  },\n  \"ns_per_run\": {\n";
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then output_string oc ",\n";
      field name (Printf.sprintf "%.1f" ns))
    rows;
  output_string oc "\n  },\n  \"corpus_seconds\": {\n";
  (* on a single-core host the parallel rows carry the marker string
     "skipped_single_core" rather than a meaningless ~1x speedup; the
     baseline reader only keeps rows that parse as floats, so marker
     rows are exempt from --compare gating by construction *)
  let skipped = "\"skipped_single_core\"" in
  let cf =
    [
      ("uncached", Printf.sprintf "%.6f" c.uncached_s);
      ("cached_cold", Printf.sprintf "%.6f" c.cached_cold_s);
      ("cached_warm", Printf.sprintf "%.6f" c.cached_warm_s);
      ("sequential", Printf.sprintf "%.6f" c.sequential_s);
      ( "parallel",
        if c.parallel_skipped then skipped
        else Printf.sprintf "%.6f" c.parallel_s );
    ]
  in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then output_string oc ",\n";
      field name v)
    cf;
  output_string oc ",\n";
  field "parallel_domains" (string_of_int c.parallel_domains);
  output_string oc ",\n";
  field "parallel_identical"
    (if c.parallel_skipped then skipped
     else string_of_bool c.parallel_identical);
  output_string oc ",\n";
  field "cached_speedup" (Printf.sprintf "%.3f" (c.uncached_s /. c.cached_warm_s));
  output_string oc ",\n";
  field "parallel_speedup"
    (if c.parallel_skipped then skipped
     else Printf.sprintf "%.3f" (c.sequential_s /. c.parallel_s));
  output_string oc "\n  },\n  \"degraded_corpus\": {\n";
  let df =
    [
      ("recovery_clean_s", Printf.sprintf "%.6f" c.recovery_clean_s);
      ("recovery_mutated_s", Printf.sprintf "%.6f" c.recovery_mutated_s);
      ( "mutated_over_clean",
        Printf.sprintf "%.3f" (c.recovery_mutated_s /. c.recovery_clean_s) );
      ("mutant_count", string_of_int c.mutant_count);
      ("mutant_clean", string_of_int c.mutant_clean);
      ("mutant_degraded", string_of_int c.mutant_degraded);
      ("mutant_failed", string_of_int c.mutant_failed);
    ]
  in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then output_string oc ",\n";
      field name v)
    df;
  output_string oc "\n  },\n";
  (let fe = frontend in
   output_string oc "  \"frontend\": {\n";
   let ff =
     [
       ("clean_files", string_of_int fe.fe_clean_files);
       ("clean_bytes", string_of_int fe.fe_clean_bytes);
       ("clean_tokens", string_of_int fe.fe_clean_tokens);
       ("mutated_files", string_of_int fe.fe_mutated_files);
       ("mutated_bytes", string_of_int fe.fe_mutated_bytes);
       ("mutated_tokens", string_of_int fe.fe_mutated_tokens);
       ("lex_clean_s", Printf.sprintf "%.6f" fe.fe_lex_clean_s);
       ("lex_mutated_s", Printf.sprintf "%.6f" fe.fe_lex_mutated_s);
       ( "lex_clean_tokens_per_sec",
         Printf.sprintf "%.0f"
           (float_of_int fe.fe_clean_tokens /. fe.fe_lex_clean_s) );
       ( "lex_clean_mb_per_sec",
         Printf.sprintf "%.3f"
           (float_of_int fe.fe_clean_bytes /. 1e6 /. fe.fe_lex_clean_s) );
       ( "lex_mutated_tokens_per_sec",
         Printf.sprintf "%.0f"
           (float_of_int fe.fe_mutated_tokens /. fe.fe_lex_mutated_s) );
       ( "lex_mutated_mb_per_sec",
         Printf.sprintf "%.3f"
           (float_of_int fe.fe_mutated_bytes /. 1e6 /. fe.fe_lex_mutated_s) );
       ( "parse_strict_clean_s",
         Printf.sprintf "%.6f" fe.fe_parse_strict_clean_s );
       ( "parse_recovering_mutated_s",
         Printf.sprintf "%.6f" fe.fe_parse_recovering_mutated_s );
       ( "parse_mutated_over_clean",
         Printf.sprintf "%.3f"
           (fe.fe_parse_recovering_mutated_s /. fe.fe_parse_strict_clean_s) );
       ( "parse_mutated_over_clean_per_byte",
         Printf.sprintf "%.3f" (fe_ratio_per_byte fe) );
       ( "parse_mutated_over_clean_per_token",
         Printf.sprintf "%.3f" (fe_ratio_per_token fe) );
     ]
   in
   List.iteri
     (fun i (name, v) ->
       if i > 0 then output_string oc ",\n";
       field name v)
     ff;
   output_string oc "\n  },\n");
  (match replicate with
  | None -> ()
  | Some r ->
      output_string oc "  \"replicate\": {\n";
      let rf =
        [
          ("n", string_of_int r.rep_n);
          ("items", string_of_int r.rep_items);
          ("sequential_s", Printf.sprintf "%.6f" r.rep_sequential_s);
          ("parallel_s", Printf.sprintf "%.6f" r.rep_parallel_s);
          ("domains", string_of_int r.rep_domains);
          ("identical", string_of_bool r.rep_identical);
          ( "speedup",
            Printf.sprintf "%.3f" (r.rep_sequential_s /. r.rep_parallel_s) );
        ]
      in
      List.iteri
        (fun i (name, v) ->
          if i > 0 then output_string oc ",\n";
          field name v)
        rf;
      output_string oc "\n  },\n");
  (let s = supervisor in
   output_string oc "  \"supervisor\": {\n";
   let stat_fields prefix (st : Rustudy.Supervisor.stats) =
     [
       (prefix ^ "total", string_of_int st.Rustudy.Supervisor.total);
       (prefix ^ "completed", string_of_int st.Rustudy.Supervisor.completed);
       (prefix ^ "retried", string_of_int st.Rustudy.Supervisor.retried);
       (prefix ^ "timeouts", string_of_int st.Rustudy.Supervisor.timeouts);
       ( prefix ^ "quarantined",
         string_of_int st.Rustudy.Supervisor.quarantined );
       (prefix ^ "skipped", string_of_int st.Rustudy.Supervisor.skipped);
     ]
   in
   let sf =
     [ ("clean_s", Printf.sprintf "%.6f" s.sup_clean_s) ]
     @ stat_fields "clean_" s.sup_stats
     @ [
         ("clean_replayed", string_of_int s.sup_replayed);
         ("adversarial_s", Printf.sprintf "%.6f" s.sup_adversarial_s);
       ]
     @ stat_fields "adversarial_" s.sup_adversarial_stats
   in
   List.iteri
     (fun i (name, v) ->
       if i > 0 then output_string oc ",\n";
       field name v)
     sf;
   output_string oc "\n  },\n");
  (let s = server in
   output_string oc "  \"server\": {\n";
   let vf =
     [
       ("clients", string_of_int s.srv_clients);
       ("requests", string_of_int s.srv_requests);
       ("check_p50_ns", Printf.sprintf "%.1f" s.srv_p50_ns);
       ("check_p99_ns", Printf.sprintf "%.1f" s.srv_p99_ns);
       ("check_p50_flight_off_ns", Printf.sprintf "%.1f" s.srv_flight_off_p50_ns);
       ("stats_rtt_ns", Printf.sprintf "%.1f" s.srv_stats_rtt_ns);
       ("adversarial_requests", string_of_int s.srv_adv_requests);
       ("shed", string_of_int s.srv_shed);
       ("retried", string_of_int s.srv_retried);
       ("timeouts", string_of_int s.srv_timeouts);
     ]
   in
   List.iteri
     (fun i (name, v) ->
       if i > 0 then output_string oc ",\n";
       field name v)
     vf;
   output_string oc "\n  },\n");
  (let o : Rustudy.Oracle_eval.result = oracle in
   output_string oc "  \"oracle\": {\n";
   let of_ =
     [
       ("programs", string_of_int o.Rustudy.Oracle_eval.programs);
       ("mutants", string_of_int o.Rustudy.Oracle_eval.mutants);
       ("degraded", string_of_int (List.length o.Rustudy.Oracle_eval.degraded));
       ("escaped", string_of_int o.Rustudy.Oracle_eval.escaped);
       ( "agree_pos",
         string_of_int
           (oracle_total (fun w -> w.Rustudy.Oracle_eval.agree_pos) o) );
       ( "agree_neg",
         string_of_int
           (oracle_total (fun w -> w.Rustudy.Oracle_eval.agree_neg) o) );
       ( "static_only",
         string_of_int
           (oracle_total (fun w -> w.Rustudy.Oracle_eval.static_only) o) );
       ( "dynamic_only",
         string_of_int
           (oracle_total (fun w -> w.Rustudy.Oracle_eval.dynamic_only) o) );
       ( "inconclusive",
         string_of_int
           (oracle_total (fun w -> w.Rustudy.Oracle_eval.inconclusive) o) );
     ]
     @ List.concat_map
         (fun (cls, w) ->
           [
             ( cls ^ "_agree_pos",
               string_of_int w.Rustudy.Oracle_eval.agree_pos );
             ( cls ^ "_dynamic_only",
               string_of_int w.Rustudy.Oracle_eval.dynamic_only );
           ])
         o.Rustudy.Oracle_eval.rows
   in
   List.iteri
     (fun i (name, v) ->
       if i > 0 then output_string oc ",\n";
       field name v)
     of_;
   output_string oc "\n  },\n");
  output_string oc "  \"section_4_1\": {\n";
  field "checked_over_unchecked_index" (Printf.sprintf "%.3f" ratio_index);
  output_string oc ",\n";
  field "per_element_over_memcpy_copy" (Printf.sprintf "%.3f" ratio_copy);
  output_string oc "\n  }\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let arg_value flag =
  let rec go = function
    | a :: b :: _ when String.equal a flag -> Some b
    | _ :: tl -> go tl
    | [] -> None
  in
  go (Array.to_list Sys.argv)

let () =
  let json = Array.exists (( = ) "--json") Sys.argv in
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let replicate =
    match arg_value "--replicate" with
    | Some s -> int_of_string s
    | None -> 0
  in
  let compare_file = arg_value "--compare" in
  if quick then begin
    (* smoke mode (wired into dune runtest): exercise the bechamel
       harness on the detector group with a tiny quota plus one cached
       corpus pass, so the bench binary can't bit-rot *)
    let quick_interproc () =
      interproc_rows
        ~shapes:[ Scale_gen.Chain; Scale_gen.Scc ]
        ~sizes:[ 100; 1000 ] ()
    in
    let rows =
      let frontend_rows = quick_frontend_rows () in
      frontend_rows
      @ run_group ~quota:0.05 "detectors" detector_tests
      @ quick_interproc ()
      @ oracle_rows ()
    in
    print_oracle_counters ();
    Rustudy.Cache.clear_programs ();
    cached_corpus_pass ();
    (* the supervisor machinery must not bit-rot either: the
       instant-deadline slice runs in milliseconds (no real sleeps) *)
    let _, qstats, _ = adversarial_sweep () in
    Printf.printf
      "supervisor smoke: %d quarantined, %d retries, %d timeouts\n"
      qstats.Rustudy.Supervisor.quarantined qstats.Rustudy.Supervisor.retried
      qstats.Rustudy.Supervisor.timeouts;
    let ok =
      match compare_file with
      | Some f ->
          (* A loaded host shifts every row 20-30% at once, so a failed
             gate is re-measured before it fails the build: sustained
             real regressions survive the retries, transient load
             almost never does. *)
          let rec attempt retries rows =
            compare_against ~replicate f rows
            || retries > 0
               && begin
                    Printf.printf
                      "gate failed; re-measuring (%d retries left)\n" retries;
                    attempt (retries - 1)
                      (quick_frontend_rows ()
                      @ run_group ~quota:0.05 "detectors" detector_tests
                      @ quick_interproc ()
                      @ oracle_rows ())
                  end
          in
          attempt 2 rows
      | None -> true
    in
    print_endline "quick smoke OK";
    if not ok then exit 1
  end
  else begin
    (* correctness context for the ablations, then the timings *)
    (* Frontend throughput is measured first, on a quiet heap: the later
       corpus/bechamel phases leave a large major heap behind, which
       inflates wall timings of allocation-heavy passes by 2-3x and
       would misreport recovery cost. *)
    let frontend = frontend_bench () in
    print_frontend frontend;
    print_newline ();
    recall_summary ();
    print_newline ();
    let rows =
      run_group "tables-and-figures" (table_tests @ pipeline_tests)
      @ run_group "detectors" detector_tests
      @ run_group "observability" observability_tests
      @ run_group "safe-vs-unsafe (4.1)" micro_tests
      @ run_group "ablations" ablation_tests
      @ run_group "frontend" frontend_tests
      @ interproc_rows
          ~shapes:[ Scale_gen.Chain; Scale_gen.Diamond; Scale_gen.Scc ]
          ~sizes:[ 100; 1000; 10_000 ] ()
      @ oracle_rows ()
    in
    print_oracle_counters ();
    Printf.printf "== interproc gates ==\n";
    let interproc_ok =
      let a = interproc_asserts rows in
      let b = ablation_divergence_assert rows in
      a && b
    in
    let corpus = corpus_bench () in
    print_corpus_timings corpus;
    let supervisor = supervisor_bench () in
    print_supervisor supervisor;
    let server = server_bench () in
    print_server server;
    let rows = rows @ server_rows server in
    let rep = if replicate > 0 then Some (replicate_bench replicate) else None in
    Option.iter print_replicate rep;
    (* the paper's §4.1 claim: report the measured ratios directly *)
    (* best-of-5 to damp scheduler noise on a shared single core *)
    let time_it f =
      let once () =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to 500 do
          ignore (Sys.opaque_identity (f ()))
        done;
        Unix.gettimeofday () -. t0
      in
      List.fold_left min (once ()) (List.init 4 (fun _ -> once ()))
    in
    let checked = time_it safe_index_sum in
    let unchecked = time_it unsafe_index_sum in
    let copy_loop = time_it (fun () -> checked_copy ()) in
    let copy_blit = time_it (fun () -> memcpy_copy ()) in
    let ratio_index = checked /. unchecked in
    let ratio_copy = copy_loop /. copy_blit in
    Printf.printf
      "\nsection 4.1 analogues: bounds-checked/unchecked index ratio = %.2fx; \
       per-element/memcpy copy ratio = %.2fx\n"
      ratio_index ratio_copy;
    if json then begin
      write_json "BENCH_results.json" rows corpus ?replicate:rep ~frontend
        ~supervisor ~server
        ~oracle:(Lazy.force oracle_counters)
        ~ratio_index ~ratio_copy ();
      print_endline "wrote BENCH_results.json"
    end;
    let ok =
      match compare_file with
      | Some f -> compare_against ~replicate f rows
      | None -> true
    in
    if not (ok && interproc_ok) then exit 1
  end
