(** Seeded synthetic-program generator for the interprocedural
    scaling benches.

    Emits RustLite crates of [n] free functions wired into one of
    three call-graph shapes — a deep [Chain], a branching [Diamond]
    (heap-layout tree) and an [Scc]-heavy chain of mutually recursive
    groups. Every function takes a lock and a raw pointer
    ([m: Arc<Mutex<u64>>, p: *const u8]) and forwards both to its
    callees; sinks acquire the lock and dereference the pointer, so
    both the double-lock and the use-after-free deref summaries
    propagate over the whole graph.

    Function names carry a seeded random hex prefix: [Mir.body_list]
    iterates bodies in [fn_id] order, so the prefix decorrelates the
    legacy replay fixpoint's iteration order from the call direction —
    the worst case its whole-program rounds were built for, and
    exactly what the SCC-condensed bottom-up schedule is immune to.
    All randomness flows from the explicit seed (splitmix64), so every
    program is reproducible from [(shape, n, seed)]. *)

type shape = Chain | Diamond | Scc

let shape_name = function
  | Chain -> "chain"
  | Diamond -> "diamond"
  | Scc -> "scc"

(* members per mutually-recursive group of the [Scc] shape: small
   enough that a 10k-function program still has thousands of
   components, large enough that the in-SCC fixpoint is exercised *)
let scc_group = 5

let hex8 r =
  Printf.sprintf "%08Lx"
    (Int64.logand (Rustudy.Fault.next_int64 r) 0xFFFFFFFFL)

(* node -> callee indices *)
let edges shape n i =
  match shape with
  | Chain -> if i + 1 < n then [ i + 1 ] else []
  | Diamond ->
      List.filter (fun c -> c < n) [ (2 * i) + 1; (2 * i) + 2 ]
  | Scc ->
      let g = i / scc_group in
      let first = g * scc_group in
      let last = min n (first + scc_group) - 1 in
      let cycle =
        (* next member, wrapping: every group is one big cycle *)
        if last = first then [] else [ (if i = last then first else i + 1) ]
      in
      (* the group's first member bridges to the next group *)
      if i = first && last + 1 < n then (last + 1) :: cycle else cycle

let program ~seed ~shape ~n : string =
  let r = Rustudy.Fault.rng seed in
  let names = Array.init n (fun i -> Printf.sprintf "f%s_%d" (hex8 r) i) in
  let buf = Buffer.create (n * 160) in
  for i = 0 to n - 1 do
    let callees = edges shape n i in
    (* Only the sinks (plus the last node, so the all-cycles [Scc]
       shape has one too) acquire the lock and dereference the
       pointer: every other function learns both facts purely through
       its callees' summaries, which is what makes propagation depth —
       the thing the bottom-up schedule collapses and the replay
       rounds pay for — proportional to program size. Facts are kept
       off the interior on purpose; direct sources sprinkled along the
       way would let replay converge in a handful of rounds and
       measure nothing. *)
    let source = callees = [] || i = n - 1 in
    Buffer.add_string buf
      (Printf.sprintf "pub unsafe fn %s(m: Arc<Mutex<u64>>, p: *const u8) -> u8 {\n"
         names.(i));
    List.iteri
      (fun k c ->
        Buffer.add_string buf
          (Printf.sprintf "    let v%d = %s(m, p);\n" k names.(c)))
      callees;
    if source then begin
      Buffer.add_string buf "    let g = m.lock().unwrap();\n";
      Buffer.add_string buf "    let x = *p;\n    x\n"
    end
    else Buffer.add_string buf "    v0\n";
    Buffer.add_string buf "}\n"
  done;
  Buffer.contents buf
