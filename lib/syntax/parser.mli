(** Recursive-descent parser for RustLite.

    Faithful to the Rust grammar quirks the studied bug patterns depend
    on: block-like expressions end statements at their closing brace,
    struct literals are forbidden in condition/scrutinee position, and
    expression-position generic arguments need the turbofish. *)


val parse_crate : file:string -> string -> Ast.crate
(** Parse a whole source file.
    @raise Support.Diag.Parse_error on syntax errors. *)

val parse_crate_recovering :
  file:string -> string -> Ast.crate * Support.Diag.t list
(** Parse a whole source file with error recovery: lexical errors are
    skipped with a best-effort token, and syntax errors synchronize at
    the next statement boundary (inside a block, producing an
    [Ast.E_error] statement) or item boundary (at top level, producing
    an [Ast.I_error] item). Never raises on malformed input; returns
    the partial AST together with every diagnostic in source order.
    An empty diagnostic list means the parse was clean. *)

val parse_expr_string : file:string -> string -> Ast.expr
(** Parse a single expression (used by tests).
    @raise Support.Diag.Parse_error on syntax errors or trailing
    tokens. *)
