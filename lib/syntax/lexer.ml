(** Hand-written lexer for RustLite.

    Produces a token stream with spans. Handles line comments, nested
    block comments, string/char escapes, integer suffixes ([0u8],
    [100usize]), lifetimes (['a]) and attributes ([#[...]], skipped as
    trivia since RustLite gives them no semantics). *)

open Support

type spanned = { tok : Token.t; span : Span.t }

type state = {
  src : string;
  file : string;
  mutable pos : int;  (** byte offset *)
  mutable line : int;
  mutable col : int;
  recover : Diag.collector option;
      (** when set, lexical errors are emitted here and lexing
          continues with a best-effort token instead of raising *)
}

let make ?recover ~file src =
  { src; file; pos = 0; line = 1; col = 1; recover }

(* In recovery mode emit the diagnostic and produce a fallback value;
   otherwise raise, preserving the legacy contract. *)
let soft st d (fallback : unit -> 'a) : 'a =
  match st.recover with
  | Some c ->
      Diag.emit c d;
      fallback ()
  | None -> raise (Diag.Parse_error d)

let position st : Span.pos = { line = st.line; col = st.col; offset = st.pos }

let span_from st (start : Span.pos) =
  Span.make ~file:st.file ~start_pos:start ~end_pos:(position st)

let at_end st = st.pos >= String.length st.src
let peek st = if at_end st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (at_end st) then begin
    (if st.src.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_cont c = is_ident_start c || is_digit c

let rec skip_block_comment st depth start =
  if at_end st then
    soft st
      (Diag.error ~code:Diag.Lex_unterminated_comment
         ~span:(span_from st start) "unterminated block comment")
      (fun () -> ())
  else if peek st = '*' && peek2 st = '/' then begin
    advance st;
    advance st;
    if depth > 1 then skip_block_comment st (depth - 1) start
  end
  else if peek st = '/' && peek2 st = '*' then begin
    advance st;
    advance st;
    skip_block_comment st (depth + 1) start
  end
  else begin
    advance st;
    skip_block_comment st depth start
  end

(* Attributes #[...] and #![...] are skipped as trivia: the corpus
   programs use them for realism (e.g. #[derive(Debug)]) but RustLite
   assigns them no meaning. *)
let skip_attribute st start =
  advance st;
  (* '#' *)
  if peek st = '!' then advance st;
  if peek st <> '[' then
    soft st
      (Diag.error ~code:Diag.Lex_unterminated_attribute
         ~span:(span_from st start) "expected '[' after '#'")
      (fun () -> ())
  else begin
    advance st;
    let depth = ref 1 in
    while !depth > 0 && not (at_end st) do
      (match peek st with
      | '[' -> incr depth
      | ']' -> decr depth
      | _ -> ());
      advance st
    done;
    if !depth > 0 then
      soft st
        (Diag.error ~code:Diag.Lex_unterminated_attribute
           ~span:(span_from st start) "unterminated attribute")
        (fun () -> ())
  end

let rec skip_trivia st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      skip_trivia st
  | '/' when peek2 st = '/' ->
      while (not (at_end st)) && peek st <> '\n' do
        advance st
      done;
      skip_trivia st
  | '/' when peek2 st = '*' ->
      let start = position st in
      advance st;
      advance st;
      skip_block_comment st 1 start;
      skip_trivia st
  | '#' ->
      let start = position st in
      skip_attribute st start;
      skip_trivia st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while is_ident_cont (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let lex_number st start =
  let begin_pos = st.pos in
  if peek st = '0' && (peek2 st = 'x' || peek2 st = 'X') then begin
    advance st;
    advance st;
    while is_hex_digit (peek st) || peek st = '_' do
      advance st
    done;
    let digits = String.sub st.src begin_pos (st.pos - begin_pos) in
    let suffix = if is_ident_start (peek st) then lex_ident st else "" in
    let digits = String.concat "" (String.split_on_char '_' digits) in
    match int_of_string_opt digits with
    | Some v -> Token.INT (v, suffix)
    | None ->
        soft st
          (Diag.error ~code:Diag.Lex_bad_literal ~span:(span_from st start)
             "invalid hex literal %s" digits)
          (fun () -> Token.INT (0, suffix))
  end
  else begin
  while is_digit (peek st) || peek st = '_' do
    advance st
  done;
  if peek st = '.' && is_digit (peek2 st) then begin
    advance st;
    while is_digit (peek st) do
      advance st
    done;
    let text = String.sub st.src begin_pos (st.pos - begin_pos) in
    Token.FLOAT (float_of_string text)
  end
  else begin
    let digits = String.sub st.src begin_pos (st.pos - begin_pos) in
    let suffix = if is_ident_start (peek st) then lex_ident st else "" in
    let digits = String.concat "" (String.split_on_char '_' digits) in
    match int_of_string_opt digits with
    | Some v -> Token.INT (v, suffix)
    | None ->
        soft st
          (Diag.error ~code:Diag.Lex_bad_literal ~span:(span_from st start)
             "invalid integer literal %s" digits)
          (fun () -> Token.INT (0, suffix))
  end
  end

let lex_escape st start =
  advance st;
  (* backslash *)
  let c = peek st in
  advance st;
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c ->
      soft st
        (Diag.error ~code:Diag.Lex_bad_escape ~span:(span_from st start)
           "unknown escape '\\%c'" c)
        (fun () -> c)

let lex_string st start =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end st then
      soft st
        (Diag.error ~code:Diag.Lex_unterminated_string
           ~span:(span_from st start) "unterminated string literal")
        (fun () -> ())
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
          Buffer.add_char buf (lex_escape st start);
          go ()
      | c ->
          advance st;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

(* A single quote starts either a lifetime ('a) or a char literal ('x').
   Distinguish by looking for the closing quote. *)
let lex_quote st start =
  advance st;
  (* ' *)
  if is_ident_start (peek st) && peek2 st <> '\'' then
    Token.LIFETIME (lex_ident st)
  else begin
    let c = if peek st = '\\' then lex_escape st start else (
      let c = peek st in
      advance st;
      c)
    in
    if peek st <> '\'' then
      soft st
        (Diag.error ~code:Diag.Lex_unterminated_char
           ~span:(span_from st start) "unterminated char literal")
        (fun () -> Token.CHAR c)
    else begin
      advance st;
      Token.CHAR c
    end
  end

let rec next_token st : spanned =
  skip_trivia st;
  let start = position st in
  let emit tok = { tok; span = span_from st start } in
  let two tok =
    advance st;
    advance st;
    emit tok
  in
  let three tok =
    advance st;
    advance st;
    advance st;
    emit tok
  in
  let one tok =
    advance st;
    emit tok
  in
  if at_end st then emit Token.EOF
  else
    match peek st with
    | c when is_digit c -> emit (lex_number st start)
    | c when is_ident_start c -> (
        let word = lex_ident st in
        match Token.keyword_of_string word with
        | Some kw -> emit kw
        | None -> if word = "_" then emit Token.UNDERSCORE else emit (Token.IDENT word))
    | '"' -> emit (lex_string st start)
    | '\'' -> emit (lex_quote st start)
    | '(' -> one Token.LPAREN
    | ')' -> one Token.RPAREN
    | '{' -> one Token.LBRACE
    | '}' -> one Token.RBRACE
    | '[' -> one Token.LBRACKET
    | ']' -> one Token.RBRACKET
    | ',' -> one Token.COMMA
    | ';' -> one Token.SEMI
    | '@' -> one Token.AT
    | '?' -> one Token.QUESTION
    | '^' -> one Token.CARET
    | ':' -> if peek2 st = ':' then two Token.COLONCOLON else one Token.COLON
    | '-' ->
        if peek2 st = '>' then two Token.ARROW
        else if peek2 st = '=' then two Token.MINUSEQ
        else one Token.MINUS
    | '=' ->
        if peek2 st = '>' then two Token.FATARROW
        else if peek2 st = '=' then two Token.EQEQ
        else one Token.EQ
    | '.' ->
        if peek2 st = '.' then begin
          advance st;
          advance st;
          if peek st = '=' then begin
            advance st;
            emit Token.DOTDOTEQ
          end
          else emit Token.DOTDOT
        end
        else one Token.DOT
    | '&' -> if peek2 st = '&' then two Token.AMPAMP else one Token.AMP
    | '|' -> if peek2 st = '|' then two Token.PIPEPIPE else one Token.PIPE
    | '+' -> if peek2 st = '=' then two Token.PLUSEQ else one Token.PLUS
    | '*' -> if peek2 st = '=' then two Token.STAREQ else one Token.STAR
    | '/' -> if peek2 st = '=' then two Token.SLASHEQ else one Token.SLASH
    | '%' -> if peek2 st = '=' then two Token.PERCENTEQ else one Token.PERCENT
    | '!' -> if peek2 st = '=' then two Token.NE else one Token.BANG
    | '<' ->
        if peek2 st = '=' then two Token.LE
        else if peek2 st = '<' then two Token.SHL
        else one Token.LT
    | '>' ->
        (* Never lex '>>': the parser splits closing generic brackets
           itself, and RustLite has no shift-right operator. *)
        if peek2 st = '=' then two Token.GE else one Token.GT
    | c ->
        ignore three;
        advance st;
        soft st
          (Diag.error ~code:Diag.Lex_invalid_char ~span:(span_from st start)
             "unexpected character '%c'" c)
          (fun () -> next_token st (* skip the bad byte, keep lexing *))

(** Lex an entire source string into a token list ending with [EOF].
    With [?recover], lexical errors go to the collector and lexing
    continues; without it, the first error raises [Diag.Parse_error]. *)
let tokenize ?recover ~file src =
  let st = make ?recover ~file src in
  let rec go acc =
    let t = next_token st in
    if Token.equal t.tok Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
