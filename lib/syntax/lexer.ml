(** Hand-written lexer for RustLite, flat-buffer edition.

    One pass over the raw source buffer fills a structure-of-arrays
    token buffer ([buf]): token payloads, start offsets and end
    offsets in parallel growable arrays. Only byte offsets are
    tracked while lexing; line/column positions are derived on demand
    from a per-file line-start table ([pos_of_offset]), so the hot
    loop does no per-character bookkeeping and no per-token [spanned]
    record allocation.

    Identifiers, lifetimes and string literals are interned into a
    per-buffer {!Support.Interner} at lex time. The keyword vocabulary
    is pre-interned in a fixed order, so keyword recognition is a
    bounds check on the interned symbol, and each distinct identifier
    allocates its [IDENT] token once per file no matter how often it
    occurs.

    Handles line comments, nested block comments, string/char escapes,
    integer suffixes ([0u8], [100usize]), lifetimes (['a]) and
    attributes ([#[...]], skipped as trivia since RustLite gives them
    no semantics). *)

open Support

type spanned = { tok : Token.t; span : Span.t }

type buf = {
  file : string;
  src : string;
  interner : Interner.t;
  mutable toks : Token.t array;
  mutable tok_starts : int array;  (** byte offset of each token *)
  mutable tok_ends : int array;  (** byte offset one past each token *)
  mutable tok_syms : int array;  (** interned symbol, or [-1] *)
  mutable n_toks : int;
  line_starts : int array;  (** byte offset of each line start *)
  mutable line_hint : int;  (** last line found, accelerates lookups *)
}

(* ------------------------------------------------------------------ *)
(* Keyword vocabulary                                                  *)
(* ------------------------------------------------------------------ *)

let n_keywords = Array.length Token.keywords
let underscore_sym = n_keywords

(* symbol -> token for the pre-interned vocabulary ([_] rides along) *)
let kw_toks =
  Array.append (Array.map snd Token.keywords) [| Token.UNDERSCORE |]

let new_interner () =
  let it = Interner.create ~capacity:1024 () in
  Array.iter (fun (s, _) -> ignore (Interner.intern it s)) Token.keywords;
  ignore (Interner.intern it "_");
  it

(* Per-domain lexer scratch, reused across files: the interner (with
   the keyword vocabulary pre-interned), the IDENT token memo and the
   escape-decoding buffer. Sharing them amortizes table setup and
   keyword seeding over a whole corpus sweep and dedups identifier
   storage across files, while staying synchronization-free (each
   domain owns its table; the interner is append-only so previously
   returned strings stay valid forever). *)
type scratch = {
  interner : Interner.t;
  mutable ident_toks : Token.t array;
      (** symbol -> memoized [IDENT] token ([EOF] = absent), so each
          distinct identifier is boxed once per domain *)
  buffer : Buffer.t;  (** reused across string/char literals *)
}

let dls_scratch : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        interner = new_interner ();
        ident_toks = Array.make 1024 Token.EOF;
        buffer = Buffer.create 64;
      })

(* ------------------------------------------------------------------ *)
(* Offset -> line/col                                                  *)
(* ------------------------------------------------------------------ *)

let line_starts_of src =
  let n = String.length src in
  let a = ref (Array.make 64 0) in
  let k = ref 1 in
  for i = 0 to n - 1 do
    if String.unsafe_get src i = '\n' then begin
      if !k = Array.length !a then begin
        let a' = Array.make (2 * !k) 0 in
        Array.blit !a 0 a' 0 !k;
        a := a'
      end;
      Array.unsafe_set !a !k (i + 1);
      incr k
    end
  done;
  Array.sub !a 0 !k

(** Derive the 1-based line/col for a byte offset. A position "at" a
    newline byte belongs to the line the newline terminates, matching
    the legacy eager line/col tracking. Amortized O(1) for the
    monotone access pattern of lexing and parsing (the last line found
    is cached as a hint); O(log lines) otherwise. *)
let pos_of_offset b off : Span.pos =
  let ls = b.line_starts in
  let n = Array.length ls in
  let lo = ref 0 and hi = ref (n - 1) in
  let h = b.line_hint in
  if h >= 0 && h < n && Array.unsafe_get ls h <= off then
    if h + 1 >= n || Array.unsafe_get ls (h + 1) > off then begin
      lo := h;
      hi := h
    end
    else if h + 2 >= n || Array.unsafe_get ls (h + 2) > off then begin
      lo := h + 1;
      hi := h + 1
    end
    else lo := h + 2;
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if Array.unsafe_get ls mid <= off then lo := mid else hi := mid - 1
  done;
  b.line_hint <- !lo;
  { Span.line = !lo + 1; col = off - Array.unsafe_get ls !lo + 1; offset = off }

let span_of_offsets b s e =
  Span.make ~file:b.file ~start_pos:(pos_of_offset b s)
    ~end_pos:(pos_of_offset b e)

let token_span b i =
  span_of_offsets b (Array.unsafe_get b.tok_starts i)
    (Array.unsafe_get b.tok_ends i)

(* ------------------------------------------------------------------ *)
(* Lexer state                                                         *)
(* ------------------------------------------------------------------ *)

type state = {
  src : string;
  len : int;
  b : buf;
  recover : Diag.collector option;
  sc : scratch;
  mutable pos : int;
}

(* In recovery mode emit the diagnostic and produce a fallback value;
   otherwise raise, preserving the legacy contract. *)
let soft st d (fallback : unit -> 'a) : 'a =
  match st.recover with
  | Some c ->
      Diag.emit c d;
      fallback ()
  | None -> raise (Diag.Parse_error d)

let span_from st start = span_of_offsets st.b start st.pos

let at_end st = st.pos >= st.len
let peek st = if at_end st then '\000' else String.unsafe_get st.src st.pos

let peek2 st =
  if st.pos + 1 >= st.len then '\000' else String.unsafe_get st.src (st.pos + 1)

let advance st = if not (at_end st) then st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'


(* ------------------------------------------------------------------ *)
(* Trivia                                                              *)
(* ------------------------------------------------------------------ *)

let rec skip_block_comment st depth start =
  if at_end st then
    soft st
      (Diag.error ~code:Diag.Lex_unterminated_comment
         ~span:(span_from st start) "unterminated block comment")
      (fun () -> ())
  else if peek st = '*' && peek2 st = '/' then begin
    advance st;
    advance st;
    if depth > 1 then skip_block_comment st (depth - 1) start
  end
  else if peek st = '/' && peek2 st = '*' then begin
    advance st;
    advance st;
    skip_block_comment st (depth + 1) start
  end
  else begin
    advance st;
    skip_block_comment st depth start
  end

(* Attributes #[...] and #![...] are skipped as trivia: the corpus
   programs use them for realism (e.g. #[derive(Debug)]) but RustLite
   assigns them no meaning. *)
let skip_attribute st start =
  advance st;
  (* '#' *)
  if peek st = '!' then advance st;
  if peek st <> '[' then
    soft st
      (Diag.error ~code:Diag.Lex_unterminated_attribute
         ~span:(span_from st start) "expected '[' after '#'")
      (fun () -> ())
  else begin
    advance st;
    let depth = ref 1 in
    while !depth > 0 && not (at_end st) do
      (match peek st with
      | '[' -> incr depth
      | ']' -> decr depth
      | _ -> ());
      advance st
    done;
    if !depth > 0 then
      soft st
        (Diag.error ~code:Diag.Lex_unterminated_attribute
           ~span:(span_from st start) "unterminated attribute")
        (fun () -> ())
  end

(* Iterative with a local cursor: without flambda the per-character
   [peek]/[advance] calls of the naive version dominate lexing time. *)
let skip_trivia st =
  let src = st.src and len = st.len in
  let i = ref st.pos in
  let continue_ = ref true in
  while !continue_ do
    if !i >= len then continue_ := false
    else
      match String.unsafe_get src !i with
      | ' ' | '\t' | '\r' | '\n' -> incr i
      | '/' when !i + 1 < len && String.unsafe_get src (!i + 1) = '/' ->
          i := !i + 2;
          while !i < len && String.unsafe_get src !i <> '\n' do
            incr i
          done
      | '/' when !i + 1 < len && String.unsafe_get src (!i + 1) = '*' ->
          let start = !i in
          st.pos <- !i + 2;
          skip_block_comment st 1 start;
          i := st.pos
      | '#' ->
          let start = !i in
          st.pos <- !i;
          skip_attribute st start;
          i := st.pos
      | _ -> continue_ := false
  done;
  st.pos <- !i

(* ------------------------------------------------------------------ *)
(* Words                                                               *)
(* ------------------------------------------------------------------ *)

let lex_ident_sym st =
  let src = st.src and len = st.len in
  let start = st.pos in
  let i = ref st.pos in
  while
    !i < len
    &&
    let c = String.unsafe_get src !i in
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  do
    incr i
  done;
  st.pos <- !i;
  Interner.intern_sub st.b.interner src start (!i - start)

let ident_tok st sym =
  let sc = st.sc in
  if sym >= Array.length sc.ident_toks then begin
    let cap = max (sym + 1) (2 * Array.length sc.ident_toks) in
    let a = Array.make cap Token.EOF in
    Array.blit sc.ident_toks 0 a 0 (Array.length sc.ident_toks);
    sc.ident_toks <- a
  end;
  match Array.unsafe_get sc.ident_toks sym with
  | Token.EOF ->
      let t = Token.IDENT (Interner.to_string st.b.interner sym) in
      sc.ident_toks.(sym) <- t;
      t
  | t -> t


(* ------------------------------------------------------------------ *)
(* Numbers                                                             *)
(* ------------------------------------------------------------------ *)

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let hex_val c =
  if c <= '9' then Char.code c - Char.code '0'
  else if c >= 'a' then Char.code c - Char.code 'a' + 10
  else Char.code c - Char.code 'A' + 10

(* Underscore-stripped literal text, for the slow path and error
   messages — matches the legacy lexer's rendering byte for byte. *)
let cleaned_digits st begin_pos digits_end =
  let digits = String.sub st.src begin_pos (digits_end - begin_pos) in
  String.concat "" (String.split_on_char '_' digits)

let lex_suffix st = if is_ident_start (peek st) then
    Interner.to_string st.b.interner (lex_ident_sym st)
  else ""

let bad_literal st start ~what digits suffix =
  soft st
    (Diag.error ~code:Diag.Lex_bad_literal ~span:(span_from st start)
       "invalid %s literal %s" what digits)
    (fun () -> Token.INT (0, suffix))

let lex_number st start =
  let begin_pos = st.pos in
  if peek st = '0' && (peek2 st = 'x' || peek2 st = 'X') then begin
    advance st;
    advance st;
    let src = st.src and len = st.len in
    let v = ref 0 and ndigits = ref 0 in
    let i = ref st.pos in
    let continue_ = ref true in
    while !continue_ && !i < len do
      let c = String.unsafe_get src !i in
      if is_hex_digit c then begin
        incr ndigits;
        v := (!v * 16) + hex_val c;
        incr i
      end
      else if c = '_' then incr i
      else continue_ := false
    done;
    st.pos <- !i;
    let digits_end = st.pos in
    let suffix = lex_suffix st in
    if !ndigits >= 1 && !ndigits <= 15 then Token.INT (!v, suffix)
    else begin
      (* gone past 60 bits (or no digits at all): defer to
         [int_of_string] for its exact wraparound/failure behaviour *)
      let digits = cleaned_digits st begin_pos digits_end in
      match int_of_string_opt digits with
      | Some v -> Token.INT (v, suffix)
      | None -> bad_literal st start ~what:"hex" digits suffix
    end
  end
  else begin
    let src = st.src and len = st.len in
    let v = ref 0 and ndigits = ref 0 in
    let i = ref st.pos in
    let continue_ = ref true in
    while !continue_ && !i < len do
      let c = String.unsafe_get src !i in
      if c >= '0' && c <= '9' then begin
        incr ndigits;
        v := (!v * 10) + (Char.code c - 48);
        incr i
      end
      else if c = '_' then incr i
      else continue_ := false
    done;
    st.pos <- !i;
    if peek st = '.' && is_digit (peek2 st) then begin
      advance st;
      let j = ref st.pos in
      while !j < len && is_digit (String.unsafe_get src !j) do
        incr j
      done;
      st.pos <- !j;
      let text = String.sub st.src begin_pos (st.pos - begin_pos) in
      Token.FLOAT (float_of_string text)
    end
    else begin
      let digits_end = st.pos in
      let suffix = lex_suffix st in
      if !ndigits <= 15 then Token.INT (!v, suffix)
      else begin
        let digits = cleaned_digits st begin_pos digits_end in
        match int_of_string_opt digits with
        | Some v -> Token.INT (v, suffix)
        | None -> bad_literal st start ~what:"integer" digits suffix
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Strings and chars                                                   *)
(* ------------------------------------------------------------------ *)

let lex_escape st start =
  advance st;
  (* backslash *)
  let c = peek st in
  advance st;
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c ->
      soft st
        (Diag.error ~code:Diag.Lex_bad_escape ~span:(span_from st start)
           "unknown escape '\\%c'" c)
        (fun () -> c)

let lex_string st start =
  advance st;
  (* opening quote *)
  let content_start = st.pos in
  (* fast path: no escapes before the closing quote — intern straight
     out of the source buffer, no copying *)
  let rec scan i =
    if i >= st.len then -1
    else
      match String.unsafe_get st.src i with
      | '"' -> i
      | '\\' -> -1
      | _ -> scan (i + 1)
  in
  let close = scan content_start in
  if close >= 0 then begin
    st.pos <- close + 1;
    let sym =
      Interner.intern_sub st.b.interner st.src content_start
        (close - content_start)
    in
    Token.STRING (Interner.to_string st.b.interner sym)
  end
  else begin
    let buf = st.sc.buffer in
    Buffer.clear buf;
    let rec go () =
      if at_end st then
        soft st
          (Diag.error ~code:Diag.Lex_unterminated_string
             ~span:(span_from st start) "unterminated string literal")
          (fun () -> ())
      else
        match peek st with
        | '"' -> advance st
        | '\\' ->
            Buffer.add_char buf (lex_escape st start);
            go ()
        | c ->
            advance st;
            Buffer.add_char buf c;
            go ()
    in
    go ();
    let sym = Interner.intern_buf st.b.interner buf in
    Token.STRING (Interner.to_string st.b.interner sym)
  end

(* A single quote starts either a lifetime ('a) or a char literal ('x).
   Distinguish by looking for the closing quote. *)
let lex_quote st start =
  advance st;
  (* ' *)
  if is_ident_start (peek st) && peek2 st <> '\'' then
    Token.LIFETIME (Interner.to_string st.b.interner (lex_ident_sym st))
  else begin
    let c =
      if peek st = '\\' then lex_escape st start
      else begin
        let c = peek st in
        advance st;
        c
      end
    in
    if peek st <> '\'' then
      soft st
        (Diag.error ~code:Diag.Lex_unterminated_char
           ~span:(span_from st start) "unterminated char literal")
        (fun () -> Token.CHAR c)
    else begin
      advance st;
      Token.CHAR c
    end
  end

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let push st tok ~start ~sym =
  let b = st.b in
  let n = b.n_toks in
  if n = Array.length b.toks then begin
    let cap = 2 * n in
    let toks = Array.make cap Token.EOF in
    Array.blit b.toks 0 toks 0 n;
    b.toks <- toks;
    let grow a =
      let a' = Array.make cap 0 in
      Array.blit a 0 a' 0 n;
      a'
    in
    b.tok_starts <- grow b.tok_starts;
    b.tok_ends <- grow b.tok_ends;
    b.tok_syms <- grow b.tok_syms
  end;
  Array.unsafe_set b.toks n tok;
  Array.unsafe_set b.tok_starts n start;
  Array.unsafe_set b.tok_ends n st.pos;
  Array.unsafe_set b.tok_syms n sym;
  b.n_toks <- n + 1

(* Top-level, not per-iteration closures in [run]: the Closure backend
   would otherwise allocate the helper every token. *)
let one st tok ~start =
  advance st;
  push st tok ~start ~sym:(-1)

let two st tok ~start =
  advance st;
  advance st;
  push st tok ~start ~sym:(-1)

let m_bytes =
  Metrics.counter ~help:"Source bytes lexed by the frontend"
    "rustudy_frontend_bytes_total"

let m_tokens =
  Metrics.counter ~help:"Tokens produced by the frontend lexer"
    "rustudy_frontend_tokens_total"

let run st =
  let continue_ = ref true in
  while !continue_ do
    skip_trivia st;
    let start = st.pos in
    if at_end st then begin
      push st Token.EOF ~start ~sym:(-1);
      continue_ := false
    end
    else
      (* constant arms first so they compile to a switch; the guarded
         digit/ident classifications only run for non-punctuation *)
      match peek st with
      | '"' -> push st (lex_string st start) ~start ~sym:(-1)
      | '\'' -> push st (lex_quote st start) ~start ~sym:(-1)
      | '(' -> one st Token.LPAREN ~start
      | ')' -> one st Token.RPAREN ~start
      | '{' -> one st Token.LBRACE ~start
      | '}' -> one st Token.RBRACE ~start
      | '[' -> one st Token.LBRACKET ~start
      | ']' -> one st Token.RBRACKET ~start
      | ',' -> one st Token.COMMA ~start
      | ';' -> one st Token.SEMI ~start
      | '@' -> one st Token.AT ~start
      | '?' -> one st Token.QUESTION ~start
      | '^' -> one st Token.CARET ~start
      | ':' -> if peek2 st = ':' then two st Token.COLONCOLON ~start else one st Token.COLON ~start
      | '-' ->
          if peek2 st = '>' then two st Token.ARROW ~start
          else if peek2 st = '=' then two st Token.MINUSEQ ~start
          else one st Token.MINUS ~start
      | '=' ->
          if peek2 st = '>' then two st Token.FATARROW ~start
          else if peek2 st = '=' then two st Token.EQEQ ~start
          else one st Token.EQ ~start
      | '.' ->
          if peek2 st = '.' then begin
            advance st;
            advance st;
            if peek st = '=' then begin
              advance st;
              push st Token.DOTDOTEQ ~start ~sym:(-1)
            end
            else push st Token.DOTDOT ~start ~sym:(-1)
          end
          else one st Token.DOT ~start
      | '&' -> if peek2 st = '&' then two st Token.AMPAMP ~start else one st Token.AMP ~start
      | '|' -> if peek2 st = '|' then two st Token.PIPEPIPE ~start else one st Token.PIPE ~start
      | '+' -> if peek2 st = '=' then two st Token.PLUSEQ ~start else one st Token.PLUS ~start
      | '*' -> if peek2 st = '=' then two st Token.STAREQ ~start else one st Token.STAR ~start
      | '/' -> if peek2 st = '=' then two st Token.SLASHEQ ~start else one st Token.SLASH ~start
      | '%' ->
          if peek2 st = '=' then two st Token.PERCENTEQ ~start else one st Token.PERCENT ~start
      | '!' -> if peek2 st = '=' then two st Token.NE ~start else one st Token.BANG ~start
      | '<' ->
          if peek2 st = '=' then two st Token.LE ~start
          else if peek2 st = '<' then two st Token.SHL ~start
          else one st Token.LT ~start
      | '>' ->
          (* Never lex '>>': the parser splits closing generic brackets
             itself, and RustLite has no shift-right operator. *)
          if peek2 st = '=' then two st Token.GE ~start else one st Token.GT ~start
      | c when is_digit c -> push st (lex_number st start) ~start ~sym:(-1)
      | c when is_ident_start c ->
          (* pre-interned keyword symbols map straight to keyword
             tokens; everything else memoizes its IDENT box *)
          let sym = lex_ident_sym st in
          let tok =
            if sym <= underscore_sym then Array.unsafe_get kw_toks sym
            else ident_tok st sym
          in
          push st tok ~start ~sym
      | c ->
          advance st;
          soft st
            (Diag.error ~code:Diag.Lex_invalid_char ~span:(span_from st start)
               "unexpected character '%c'" c)
            (fun () -> () (* skip the bad byte, keep lexing *))
  done

let lex ?recover ~file src : buf =
  let len = String.length src in
  let cap = max 16 (len / 3) in
  let sc = Domain.DLS.get dls_scratch in
  let b =
    {
      file;
      src;
      interner = sc.interner;
      toks = Array.make cap Token.EOF;
      tok_starts = Array.make cap 0;
      tok_ends = Array.make cap 0;
      tok_syms = Array.make cap 0;
      n_toks = 0;
      line_starts = line_starts_of src;
      line_hint = 0;
    }
  in
  let st = { src; len; b; recover; sc; pos = 0 } in
  run st;
  Metrics.incr ~by:(float_of_int len) m_bytes;
  Metrics.incr ~by:(float_of_int b.n_toks) m_tokens;
  b

(** Lex an entire source string into a token list ending with [EOF].
    With [?recover], lexical errors go to the collector and lexing
    continues; without it, the first error raises [Diag.Parse_error].
    Compatibility wrapper over {!lex}: materializes the [spanned] list
    the legacy API produced. *)
let tokenize ?recover ~file src =
  let b = lex ?recover ~file src in
  List.init b.n_toks (fun i -> { tok = b.toks.(i); span = token_span b i })
