(** Recursive-descent parser for RustLite.

    Expression parsing uses precedence climbing. Rust's grammar quirks
    that matter for the studied bug patterns are kept faithful:
    block-like expressions need no trailing semicolon as statements,
    struct literals are forbidden in condition/scrutinee position, and
    generic arguments in expressions need the turbofish ([::<T>]). *)

open Support
module T = Token

type state = {
  buf : Lexer.buf;  (** the whole file, lexed up front *)
  mutable idx : int;
  recover : Diag.collector option;
      (** when set, syntax errors synchronize at item/statement
          boundaries and become explicit [E_error]/[I_error] AST nodes
          instead of aborting the parse *)
  mutable errors_left : int;
      (** panic-recovery budget: when it runs out, recovery stops
          resynchronizing and skips to [EOF], bounding the cost of a
          pathologically corrupted file *)
}

(* Generous: an order of magnitude above the worst diagnostic count
   the seeded 1020-mutant suite produces on any single file, so only
   adversarial inputs ever hit it. *)
let error_budget = 128

let make ?recover (buf : Lexer.buf) =
  { buf; idx = 0; recover; errors_left = error_budget }

(* [idx] is always within [0, n_toks); [advance] saturates at the
   final [EOF] token. *)
let peek st = Array.unsafe_get st.buf.Lexer.toks st.idx

let peek_span st = Lexer.token_span st.buf st.idx

let peek_at st n =
  let i = min (st.idx + n) (st.buf.Lexer.n_toks - 1) in
  Array.unsafe_get st.buf.Lexer.toks i

let advance st =
  if st.idx < st.buf.Lexer.n_toks - 1 then st.idx <- st.idx + 1

let prev_span st = Lexer.token_span st.buf (max 0 (st.idx - 1))

let err st fmt =
  Diag.fail ~span:(peek_span st) fmt

let expect st tok =
  if T.equal (peek st) tok then advance st
  else
    err st "expected '%s' but found '%s'" (T.to_string tok)
      (T.to_string (peek st))

let accept st tok =
  if T.equal (peek st) tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match peek st with
  | T.IDENT s ->
      advance st;
      s
  | t -> err st "expected identifier, found '%s'" (T.to_string t)

(* Node spans are derived from token marks (indices into the token
   buffer) only when a node is actually built: the span of the mark's
   token unioned with the span of the last consumed token — the same
   extent the legacy eager computation produced, without allocating a
   span per speculative node start. The union is computed directly on
   byte offsets (token spans are never dummy). *)
let span_from st (mark : int) =
  let b = st.buf in
  let p = if st.idx > 0 then st.idx - 1 else 0 in
  let s0 = Array.unsafe_get b.Lexer.tok_starts mark in
  let e0 = Array.unsafe_get b.Lexer.tok_ends mark in
  let s1 = Array.unsafe_get b.Lexer.tok_starts p in
  let e1 = Array.unsafe_get b.Lexer.tok_ends p in
  let s = if s1 < s0 then s1 else s0 in
  let e = if e1 > e0 then e1 else e0 in
  Span.make ~file:b.Lexer.file ~start_pos:(Lexer.pos_of_offset b s)
    ~end_pos:(Lexer.pos_of_offset b e)

(* ------------------------------------------------------------------ *)
(* Panic-mode synchronization (recovery only)                          *)
(* ------------------------------------------------------------------ *)

let is_item_start = function
  | T.KW_FN | T.KW_STRUCT | T.KW_ENUM | T.KW_IMPL | T.KW_TRAIT
  | T.KW_STATIC | T.KW_CONST | T.KW_USE | T.KW_MOD | T.KW_PUB
  | T.KW_UNSAFE ->
      true
  | _ -> false

(** Skip forward to the start of the next plausible item: an
    item-introducing keyword at brace depth zero, or [EOF]. Never skips
    past [EOF]; unmatched closing braces are swallowed. *)
let sync_item st =
  let depth = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | T.EOF -> continue_ := false
    | t when !depth = 0 && is_item_start t -> continue_ := false
    | T.LBRACE ->
        incr depth;
        advance st
    | T.RBRACE ->
        if !depth > 0 then decr depth;
        advance st
    | _ -> advance st
  done

(** Skip to the end of the current statement: just past the next [;] at
    brace depth zero, or stopped at the enclosing [}] / [EOF]. *)
let sync_stmt st =
  let depth = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | T.EOF -> continue_ := false
    | T.SEMI when !depth = 0 ->
        advance st;
        continue_ := false
    | T.RBRACE when !depth = 0 -> continue_ := false
    | T.LBRACE ->
        incr depth;
        advance st
    | T.RBRACE ->
        decr depth;
        advance st
    | _ -> advance st
  done

(** Bounded panic recovery: once the error budget is exhausted, stop
    resynchronizing and jump the cursor to [EOF], so a pathologically
    corrupted file costs O(budget), not O(file size x error count).
    The give-up diagnostic is emitted exactly once, when the budget
    first reaches zero. *)
let give_up st c =
  if st.errors_left = 0 then
    Diag.emit c
      (Diag.error ~code:Diag.Parse_error_code ~span:(peek_span st)
         "too many syntax errors; giving up on the rest of the file");
  st.idx <- st.buf.Lexer.n_toks - 1

(* ------------------------------------------------------------------ *)
(* Paths and generics                                                  *)
(* ------------------------------------------------------------------ *)

let path_segment st =
  match peek st with
  | T.IDENT s ->
      advance st;
      s
  | T.KW_SELF ->
      advance st;
      "self"
  | T.KW_SELF_TYPE ->
      advance st;
      "Self"
  | T.KW_CRATE ->
      advance st;
      "crate"
  | t -> err st "expected path segment, found '%s'" (T.to_string t)

(** Parse [a::b::c] with no generic arguments. *)
let parse_simple_path st : Ast.path =
  let start = st.idx in
  let rec go acc =
    let seg = path_segment st in
    if T.equal (peek st) T.COLONCOLON
       && (match peek_at st 1 with
          | T.IDENT _ | T.KW_SELF | T.KW_SELF_TYPE | T.KW_CRATE -> true
          | _ -> false)
    then begin
      advance st;
      go (seg :: acc)
    end
    else List.rev (seg :: acc)
  in
  let segments = go [] in
  { Ast.segments; pspan = span_from st start }

(* Generic parameter list on items: <T, U: Bound, 'a>. Bounds are
   parsed and discarded: RustLite does not check trait bounds. *)
let parse_generic_params st : string list =
  if not (accept st T.LT) then []
  else begin
    let params = ref [] in
    let rec skip_bound () =
      (* consume tokens of one bound: path, possibly with nested <> *)
      let depth = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        (match peek st with
        | T.LT ->
            incr depth;
            advance st
        | T.GT when !depth > 0 ->
            decr depth;
            advance st
        | T.GT | T.COMMA when !depth = 0 -> continue_ := false
        | T.EOF -> continue_ := false
        | _ -> advance st)
      done
    and parse_one () =
      match peek st with
      | T.LIFETIME _ ->
          advance st;
          if accept st T.COLON then skip_bound ()
      | T.IDENT name ->
          advance st;
          params := name :: !params;
          if accept st T.COLON then skip_bound ()
      | t -> err st "expected generic parameter, found '%s'" (T.to_string t)
    in
    parse_one ();
    while accept st T.COMMA do
      if not (T.equal (peek st) T.GT) then parse_one ()
    done;
    expect st T.GT;
    List.rev !params
  end

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_ty st : Ast.ty =
  let start = st.idx in
  let mk t = { Ast.t; tspan = span_from st start } in
  match peek st with
  | T.AMP ->
      advance st;
      (match peek st with T.LIFETIME _ -> advance st | _ -> ());
      let m = if accept st T.KW_MUT then Ast.Mut else Ast.Imm in
      let inner = parse_ty st in
      mk (Ast.Ty_ref (m, inner))
  | T.AMPAMP ->
      (* && T is & (& T) *)
      advance st;
      let m = if accept st T.KW_MUT then Ast.Mut else Ast.Imm in
      let inner = parse_ty st in
      mk (Ast.Ty_ref (Ast.Imm, { Ast.t = Ast.Ty_ref (m, inner); tspan = inner.Ast.tspan }))
  | T.STAR ->
      advance st;
      let m =
        match peek st with
        | T.KW_CONST ->
            advance st;
            Ast.Imm
        | T.KW_MUT ->
            advance st;
            Ast.Mut
        | t -> err st "expected 'const' or 'mut' after '*', found '%s'" (T.to_string t)
      in
      let inner = parse_ty st in
      mk (Ast.Ty_ptr (m, inner))
  | T.LPAREN ->
      advance st;
      if accept st T.RPAREN then mk (Ast.Ty_tuple [])
      else begin
        let first = parse_ty st in
        if accept st T.RPAREN then first
        else begin
          let tys = ref [ first ] in
          while accept st T.COMMA do
            if not (T.equal (peek st) T.RPAREN) then tys := parse_ty st :: !tys
          done;
          expect st T.RPAREN;
          mk (Ast.Ty_tuple (List.rev !tys))
        end
      end
  | T.UNDERSCORE ->
      advance st;
      mk Ast.Ty_infer
  | T.KW_FN ->
      advance st;
      expect st T.LPAREN;
      let args = ref [] in
      if not (T.equal (peek st) T.RPAREN) then begin
        args := [ parse_ty st ];
        while accept st T.COMMA do
          if not (T.equal (peek st) T.RPAREN) then args := parse_ty st :: !args
        done
      end;
      expect st T.RPAREN;
      let ret =
        if accept st T.ARROW then parse_ty st else Ast.unit_ty
      in
      mk (Ast.Ty_fn (List.rev !args, ret))
  | T.KW_DYN ->
      advance st;
      let p = parse_simple_path st in
      let args = parse_generic_args st in
      mk (Ast.Ty_path (p, args))
  | T.KW_SELF_TYPE ->
      advance st;
      mk (Ast.Ty_path ({ Ast.segments = [ "Self" ]; pspan = span_from st start }, []))
  | T.IDENT _ | T.KW_CRATE ->
      let p = parse_simple_path st in
      let args = parse_generic_args st in
      mk (Ast.Ty_path (p, args))
  | t -> err st "expected type, found '%s'" (T.to_string t)

and parse_generic_args st : Ast.ty list =
  if not (T.equal (peek st) T.LT) then []
  else begin
    advance st;
    let args = ref [] in
    let parse_one () =
      match peek st with
      | T.LIFETIME _ -> advance st
      | _ -> args := parse_ty st :: !args
    in
    if not (T.equal (peek st) T.GT) then begin
      parse_one ();
      while accept st T.COMMA do
        if not (T.equal (peek st) T.GT) then parse_one ()
      done
    end;
    expect st T.GT;
    List.rev !args
  end

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

let rec parse_pat st : Ast.pat =
  let start = st.idx in
  let mk p = { Ast.p; pspan = span_from st start } in
  match peek st with
  | T.UNDERSCORE ->
      advance st;
      mk Ast.P_wild
  | T.INT (v, suf) ->
      advance st;
      mk (Ast.P_lit (Ast.Lit_int (v, suf)))
  | T.KW_TRUE ->
      advance st;
      mk (Ast.P_lit (Ast.Lit_bool true))
  | T.KW_FALSE ->
      advance st;
      mk (Ast.P_lit (Ast.Lit_bool false))
  | T.STRING s ->
      advance st;
      mk (Ast.P_lit (Ast.Lit_str s))
  | T.AMP ->
      advance st;
      let m = if accept st T.KW_MUT then Ast.Mut else Ast.Imm in
      mk (Ast.P_ref (m, parse_pat st))
  | T.KW_REF ->
      advance st;
      let m = if accept st T.KW_MUT then Ast.Mut else Ast.Imm in
      let name = expect_ident st in
      mk (Ast.P_ref (m, { Ast.p = Ast.P_ident (Ast.Imm, name, None); pspan = span_from st start }))
  | T.KW_MUT ->
      advance st;
      let name = expect_ident st in
      mk (Ast.P_ident (Ast.Mut, name, None))
  | T.LPAREN ->
      advance st;
      if accept st T.RPAREN then mk (Ast.P_tuple [])
      else begin
        let first = parse_pat st in
        if accept st T.RPAREN then first
        else begin
          let pats = ref [ first ] in
          while accept st T.COMMA do
            if not (T.equal (peek st) T.RPAREN) then pats := parse_pat st :: !pats
          done;
          expect st T.RPAREN;
          mk (Ast.P_tuple (List.rev !pats))
        end
      end
  | T.IDENT _ | T.KW_SELF_TYPE | T.KW_CRATE -> parse_path_pat st start mk
  | t -> err st "expected pattern, found '%s'" (T.to_string t)

and parse_path_pat st start mk =
  (* Single lowercase segment with no () or {} or :: is a binding. *)
  let p = parse_simple_path st in
  match peek st with
  | T.LPAREN ->
      advance st;
      let args = ref [] in
      if not (T.equal (peek st) T.RPAREN) then begin
        args := [ parse_pat st ];
        while accept st T.COMMA do
          if not (T.equal (peek st) T.RPAREN) then args := parse_pat st :: !args
        done
      end;
      expect st T.RPAREN;
      mk (Ast.P_ctor (p, List.rev !args))
  | T.LBRACE ->
      advance st;
      let fields = ref [] in
      let parse_field () =
        if accept st T.DOTDOT then ()
        else begin
          let name = expect_ident st in
          let pat =
            if accept st T.COLON then parse_pat st
            else { Ast.p = Ast.P_ident (Ast.Imm, name, None); pspan = span_from st start }
          in
          fields := (name, pat) :: !fields
        end
      in
      if not (T.equal (peek st) T.RBRACE) then begin
        parse_field ();
        while accept st T.COMMA do
          if not (T.equal (peek st) T.RBRACE) then parse_field ()
        done
      end;
      expect st T.RBRACE;
      mk (Ast.P_struct (p, List.rev !fields))
  | T.AT ->
      advance st;
      let sub = parse_pat st in
      (match p.Ast.segments with
      | [ name ] -> mk (Ast.P_ident (Ast.Imm, name, Some sub))
      | _ -> err st "'@' pattern requires a simple binding name")
  | _ -> (
      match p.Ast.segments with
      | [ name ]
        when String.length name > 0
             && (Char.lowercase_ascii name.[0] = name.[0]) ->
          mk (Ast.P_ident (Ast.Imm, name, None))
      | _ -> mk (Ast.P_ctor (p, [])))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* [no_struct]: struct literals are not allowed directly (condition or
   scrutinee position), mirroring Rust. *)

let binop_of_token = function
  | T.PLUS -> Some (Ast.Add, 10)
  | T.MINUS -> Some (Ast.Sub, 10)
  | T.STAR -> Some (Ast.Mul, 11)
  | T.SLASH -> Some (Ast.Div, 11)
  | T.PERCENT -> Some (Ast.Rem, 11)
  | T.SHL -> Some (Ast.Shl, 9)
  | T.AMP -> Some (Ast.BitAnd, 8)
  | T.CARET -> Some (Ast.BitXor, 7)
  | T.PIPE -> Some (Ast.BitOr, 6)
  | T.EQEQ -> Some (Ast.Eq, 5)
  | T.NE -> Some (Ast.Ne, 5)
  | T.LT -> Some (Ast.Lt, 5)
  | T.GT -> Some (Ast.Gt, 5)
  | T.LE -> Some (Ast.Le, 5)
  | T.GE -> Some (Ast.Ge, 5)
  | T.AMPAMP -> Some (Ast.And, 4)
  | T.PIPEPIPE -> Some (Ast.Or, 3)
  | _ -> None

let assign_op_of_token = function
  | T.PLUSEQ -> Some Ast.Add
  | T.MINUSEQ -> Some Ast.Sub
  | T.STAREQ -> Some Ast.Mul
  | T.SLASHEQ -> Some Ast.Div
  | T.PERCENTEQ -> Some Ast.Rem
  | _ -> None

let is_block_expr (e : Ast.expr) =
  match e.Ast.e with
  | Ast.E_if _ | Ast.E_if_let _ | Ast.E_match _ | Ast.E_while _
  | Ast.E_while_let _ | Ast.E_loop _ | Ast.E_for _ | Ast.E_block _
  | Ast.E_unsafe _ ->
      true
  | _ -> false

let rec parse_expr ?(no_struct = false) st : Ast.expr =
  parse_assign ~no_struct st

and parse_assign ~no_struct st =
  let lhs = parse_range ~no_struct st in
  match peek st with
  | T.EQ ->
      advance st;
      let rhs = parse_assign ~no_struct st in
      {
        Ast.e = Ast.E_assign (lhs, rhs);
        espan = Span.union lhs.Ast.espan rhs.Ast.espan;
      }
  | t -> (
      match assign_op_of_token t with
      | Some op ->
          advance st;
          let rhs = parse_assign ~no_struct st in
          {
            Ast.e = Ast.E_assign_op (op, lhs, rhs);
            espan = Span.union lhs.Ast.espan rhs.Ast.espan;
          }
      | None -> lhs)

and parse_range ~no_struct st =
  let start = st.idx in
  match peek st with
  | T.DOTDOT | T.DOTDOTEQ ->
      let inclusive = T.equal (peek st) T.DOTDOTEQ in
      advance st;
      let hi =
        match peek st with
        | T.LBRACE | T.RPAREN | T.RBRACKET | T.COMMA | T.SEMI -> None
        | _ -> Some (parse_binary ~no_struct st 0)
      in
      { Ast.e = Ast.E_range (None, hi, inclusive); espan = span_from st start }
  | _ ->
      let lo = parse_binary ~no_struct st 0 in
      (match peek st with
      | T.DOTDOT | T.DOTDOTEQ ->
          let inclusive = T.equal (peek st) T.DOTDOTEQ in
          advance st;
          let hi =
            match peek st with
            | T.LBRACE | T.RPAREN | T.RBRACKET | T.COMMA | T.SEMI -> None
            | _ -> Some (parse_binary ~no_struct st 0)
          in
          {
            Ast.e = Ast.E_range (Some lo, hi, inclusive);
            espan = span_from st start;
          }
      | _ -> lo)

and parse_binary ~no_struct st min_prec =
  let lhs = ref (parse_cast ~no_struct st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary ~no_struct st (prec + 1) in
        lhs :=
          {
            Ast.e = Ast.E_binary (op, !lhs, rhs);
            espan = Span.union !lhs.Ast.espan rhs.Ast.espan;
          }
    | _ -> continue_ := false
  done;
  !lhs

and parse_cast ~no_struct st =
  let e = ref (parse_unary ~no_struct st) in
  while accept st T.KW_AS do
    let ty = parse_ty st in
    e :=
      {
        Ast.e = Ast.E_cast (!e, ty);
        espan = Span.union !e.Ast.espan ty.Ast.tspan;
      }
  done;
  !e

and parse_unary ~no_struct st =
  let start = st.idx in
  let mk e = { Ast.e; espan = span_from st start } in
  match peek st with
  | T.MINUS ->
      advance st;
      mk (Ast.E_unary (Ast.Neg, parse_unary ~no_struct st))
  | T.BANG ->
      advance st;
      mk (Ast.E_unary (Ast.Not, parse_unary ~no_struct st))
  | T.STAR ->
      advance st;
      mk (Ast.E_unary (Ast.Deref, parse_unary ~no_struct st))
  | T.AMP ->
      advance st;
      let m = if accept st T.KW_MUT then Ast.Mut else Ast.Imm in
      mk (Ast.E_ref (m, parse_unary ~no_struct st))
  | T.AMPAMP ->
      advance st;
      let m = if accept st T.KW_MUT then Ast.Mut else Ast.Imm in
      let inner = parse_unary ~no_struct st in
      let inner_ref =
        { Ast.e = Ast.E_ref (m, inner); espan = inner.Ast.espan }
      in
      mk (Ast.E_ref (Ast.Imm, inner_ref))
  | _ -> parse_postfix ~no_struct st

and parse_postfix ~no_struct st =
  let e = ref (parse_primary ~no_struct st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | T.DOT -> (
        advance st;
        match peek st with
        | T.INT (i, _) ->
            advance st;
            e :=
              {
                Ast.e = Ast.E_tuple_field (!e, i);
                espan = Span.union !e.Ast.espan (prev_span st);
              }
        | T.IDENT name ->
            advance st;
            (* method call needs ( possibly after turbofish *)
            let targs =
              if T.equal (peek st) T.COLONCOLON && T.equal (peek_at st 1) T.LT
              then begin
                advance st;
                parse_generic_args st
              end
              else []
            in
            if T.equal (peek st) T.LPAREN then begin
              advance st;
              let args = parse_call_args st in
              e :=
                {
                  Ast.e = Ast.E_method (!e, name, targs, args);
                  espan = Span.union !e.Ast.espan (prev_span st);
                }
            end
            else
              e :=
                {
                  Ast.e = Ast.E_field (!e, name);
                  espan = Span.union !e.Ast.espan (prev_span st);
                }
        | T.KW_AS ->
            (* `.as` does not occur; treat as error *)
            err st "unexpected 'as' after '.'"
        | t -> err st "expected field or method name, found '%s'" (T.to_string t))
    | T.LPAREN ->
        advance st;
        let args = parse_call_args st in
        e :=
          {
            Ast.e = Ast.E_call (!e, args);
            espan = Span.union !e.Ast.espan (prev_span st);
          }
    | T.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st T.RBRACKET;
        e :=
          {
            Ast.e = Ast.E_index (!e, idx);
            espan = Span.union !e.Ast.espan (prev_span st);
          }
    | T.QUESTION ->
        (* `e?` — treated as a method-like propagation marker *)
        advance st;
        e :=
          {
            Ast.e = Ast.E_method (!e, "unwrap_or_propagate", [], []);
            espan = Span.union !e.Ast.espan (prev_span st);
          }
    | _ -> continue_ := false
  done;
  !e

and parse_call_args st =
  let args = ref [] in
  if not (T.equal (peek st) T.RPAREN) then begin
    args := [ parse_expr st ];
    while accept st T.COMMA do
      if not (T.equal (peek st) T.RPAREN) then args := parse_expr st :: !args
    done
  end;
  expect st T.RPAREN;
  List.rev !args

and parse_primary ~no_struct st : Ast.expr =
  let start = st.idx in
  let mk e = { Ast.e; espan = span_from st start } in
  match peek st with
  | T.INT (v, suf) ->
      advance st;
      mk (Ast.E_lit (Ast.Lit_int (v, suf)))
  | T.FLOAT f ->
      advance st;
      mk (Ast.E_lit (Ast.Lit_float f))
  | T.STRING s ->
      advance st;
      mk (Ast.E_lit (Ast.Lit_str s))
  | T.CHAR c ->
      advance st;
      mk (Ast.E_lit (Ast.Lit_char c))
  | T.KW_TRUE ->
      advance st;
      mk (Ast.E_lit (Ast.Lit_bool true))
  | T.KW_FALSE ->
      advance st;
      mk (Ast.E_lit (Ast.Lit_bool false))
  | T.LPAREN ->
      advance st;
      if accept st T.RPAREN then mk (Ast.E_lit Ast.Lit_unit)
      else begin
        let first = parse_expr st in
        if accept st T.COMMA then begin
          let es = ref [ first ] in
          if not (T.equal (peek st) T.RPAREN) then begin
            es := parse_expr st :: !es;
            while accept st T.COMMA do
              if not (T.equal (peek st) T.RPAREN) then
                es := parse_expr st :: !es
            done
          end;
          expect st T.RPAREN;
          mk (Ast.E_tuple (List.rev !es))
        end
        else begin
          expect st T.RPAREN;
          first
        end
      end
  | T.KW_IF -> parse_if st
  | T.KW_MATCH -> parse_match st
  | T.KW_WHILE -> parse_while st
  | T.KW_LOOP ->
      advance st;
      mk (Ast.E_loop (parse_block st))
  | T.KW_FOR ->
      advance st;
      let pat = parse_pat st in
      expect st T.KW_IN;
      let iter = parse_expr ~no_struct:true st in
      let body = parse_block st in
      mk (Ast.E_for (pat, iter, body))
  | T.LIFETIME _ ->
      (* loop label: 'a: loop {...} *)
      advance st;
      expect st T.COLON;
      parse_primary ~no_struct st
  | T.LBRACE -> mk (Ast.E_block (parse_block st))
  | T.KW_UNSAFE ->
      advance st;
      mk (Ast.E_unsafe (parse_block st))
  | T.KW_RETURN ->
      advance st;
      let arg =
        match peek st with
        | T.SEMI | T.RBRACE | T.RPAREN | T.COMMA -> None
        | _ -> Some (parse_expr st)
      in
      mk (Ast.E_return arg)
  | T.KW_BREAK ->
      advance st;
      (match peek st with T.LIFETIME _ -> advance st | _ -> ());
      mk Ast.E_break
  | T.KW_CONTINUE ->
      advance st;
      (match peek st with T.LIFETIME _ -> advance st | _ -> ());
      mk Ast.E_continue
  | T.KW_MOVE ->
      advance st;
      parse_closure ~moved:true st start
  | T.PIPE | T.PIPEPIPE -> parse_closure ~moved:false st start
  | T.IDENT _ | T.KW_SELF | T.KW_SELF_TYPE | T.KW_CRATE ->
      parse_path_expr ~no_struct st start
  | t -> err st "expected expression, found '%s'" (T.to_string t)

and parse_closure ~moved st start =
  let params = ref [] in
  if accept st T.PIPEPIPE then ()
  else begin
    expect st T.PIPE;
    if not (T.equal (peek st) T.PIPE) then begin
      let parse_param () =
        let pat = parse_pat st in
        let ty = if accept st T.COLON then Some (parse_ty st) else None in
        params := (pat, ty) :: !params
      in
      parse_param ();
      while accept st T.COMMA do
        if not (T.equal (peek st) T.PIPE) then parse_param ()
      done
    end;
    expect st T.PIPE
  end;
  let body =
    if accept st T.ARROW then begin
      let _ret = parse_ty st in
      { Ast.e = Ast.E_block (parse_block st); espan = prev_span st }
    end
    else parse_expr st
  in
  {
    Ast.e =
      Ast.E_closure
        { Ast.cl_move = moved; cl_params = List.rev !params; cl_body = body };
    espan = span_from st start;
  }

and parse_if st =
  let start = st.idx in
  expect st T.KW_IF;
  if accept st T.KW_LET then begin
    let pat = parse_pat st in
    expect st T.EQ;
    let scrut = parse_expr ~no_struct:true st in
    let then_ = parse_block st in
    let else_ = parse_else st in
    {
      Ast.e = Ast.E_if_let (pat, scrut, then_, else_);
      espan = span_from st start;
    }
  end
  else begin
    let cond = parse_expr ~no_struct:true st in
    let then_ = parse_block st in
    let else_ = parse_else st in
    {
      Ast.e = Ast.E_if (cond, then_, else_);
      espan = span_from st start;
    }
  end

and parse_else st =
  if accept st T.KW_ELSE then
    if T.equal (peek st) T.KW_IF then Some (parse_if st)
    else
      let b = parse_block st in
      Some { Ast.e = Ast.E_block b; espan = b.Ast.bspan }
  else None

and parse_while st =
  let start = st.idx in
  expect st T.KW_WHILE;
  if accept st T.KW_LET then begin
    let pat = parse_pat st in
    expect st T.EQ;
    let scrut = parse_expr ~no_struct:true st in
    let body = parse_block st in
    {
      Ast.e = Ast.E_while_let (pat, scrut, body);
      espan = span_from st start;
    }
  end
  else begin
    let cond = parse_expr ~no_struct:true st in
    let body = parse_block st in
    {
      Ast.e = Ast.E_while (cond, body);
      espan = span_from st start;
    }
  end

and parse_match st =
  let start = st.idx in
  expect st T.KW_MATCH;
  let scrut = parse_expr ~no_struct:true st in
  expect st T.LBRACE;
  let arms = ref [] in
  while not (T.equal (peek st) T.RBRACE) do
    let arm_pat = parse_pat st in
    let arm_pat =
      (* or-patterns p1 | p2: keep the first alternative, which is
         enough for lowering since RustLite match lowering is
         pattern-shape driven. Alternatives must bind the same names. *)
      if T.equal (peek st) T.PIPE then begin
        while accept st T.PIPE do
          ignore (parse_pat st)
        done;
        arm_pat
      end
      else arm_pat
    in
    let arm_guard =
      if accept st T.KW_IF then Some (parse_expr ~no_struct:true st) else None
    in
    expect st T.FATARROW;
    let arm_body = parse_expr st in
    ignore (accept st T.COMMA);
    arms := { Ast.arm_pat; arm_guard; arm_body } :: !arms
  done;
  expect st T.RBRACE;
  {
    Ast.e = Ast.E_match (scrut, List.rev !arms);
    espan = span_from st start;
  }

and parse_path_expr ~no_struct st start =
  let mk e = { Ast.e; espan = span_from st start } in
  (* macro? ident ! ( ... ) or ident ! [ ... ] *)
  match (peek st, peek_at st 1) with
  | T.IDENT name, T.BANG ->
      advance st;
      advance st;
      let close, open_ =
        match peek st with
        | T.LPAREN -> (T.RPAREN, T.LPAREN)
        | T.LBRACKET -> (T.RBRACKET, T.LBRACKET)
        | t ->
            err st "expected '(' or '[' after macro '%s!', found '%s'" name
              (T.to_string t)
      in
      expect st open_;
      let args = ref [] in
      if not (T.equal (peek st) close) then begin
        args := [ parse_expr st ];
        (* vec![expr; n] repetition *)
        if accept st T.SEMI then args := parse_expr st :: !args
        else
          while accept st T.COMMA do
            if not (T.equal (peek st) close) then args := parse_expr st :: !args
          done
      end;
      expect st close;
      let args = List.rev !args in
      if name = "vec" then mk (Ast.E_vec args)
      else mk (Ast.E_macro (name, args))
  | _ -> parse_plain_path_expr ~no_struct st start

and parse_plain_path_expr ~no_struct st start =
  let mk e = { Ast.e; espan = span_from st start } in
  let p = parse_simple_path st in
  (* turbofish on path: Vec::<u8>::new — ::< after path *)
  let targs =
    if T.equal (peek st) T.COLONCOLON && T.equal (peek_at st 1) T.LT then begin
      advance st;
      let args = parse_generic_args st in
      (* possibly more path segments after turbofish *)
      args
    end
    else []
  in
  (* struct literal *)
  if (not no_struct) && T.equal (peek st) T.LBRACE && looks_like_struct_lit st
  then begin
    advance st;
    let fields = ref [] in
    let base = ref None in
    let rec parse_fields () =
      if T.equal (peek st) T.RBRACE then ()
      else if accept st T.DOTDOT then base := Some (parse_expr st)
      else begin
        let name = expect_ident st in
        let value =
          if accept st T.COLON then parse_expr st
          else
            {
              Ast.e = Ast.E_path ({ Ast.segments = [ name ]; pspan = prev_span st }, []);
              espan = prev_span st;
            }
        in
        fields := (name, value) :: !fields;
        if accept st T.COMMA then parse_fields ()
      end
    in
    parse_fields ();
    expect st T.RBRACE;
    mk (Ast.E_struct_lit (p, List.rev !fields, !base))
  end
  else mk (Ast.E_path (p, targs))

(* Heuristic: after `Path {`, it is a struct literal if the brace block
   starts with `ident:`, `ident,`, `ident }`, `..` or is empty. This
   resolves `match x { ... }` vs `Foo { ... }` at arm/stmt boundaries. *)
and looks_like_struct_lit st =
  match peek_at st 1 with
  | T.RBRACE | T.DOTDOT -> true
  | T.IDENT _ -> (
      match peek_at st 2 with
      | T.COLON | T.COMMA | T.RBRACE -> true
      | _ -> false)
  | _ -> false

and parse_block st : Ast.block =
  let start = st.idx in
  expect st T.LBRACE;
  let stmts = ref [] in
  let tail = ref None in
  let rec go () =
    match peek st with
    | T.RBRACE -> ()
    | T.EOF when st.recover <> None -> ()  (* truncated input *)
    | T.SEMI ->
        advance st;
        go ()
    | T.KW_LET ->
        let lstart = st.idx in
        advance st;
        let let_pat = parse_pat st in
        let let_ty = if accept st T.COLON then Some (parse_ty st) else None in
        let let_init = if accept st T.EQ then Some (parse_expr st) else None in
        expect st T.SEMI;
        stmts :=
          Ast.S_let
            { Ast.let_pat; let_ty; let_init; let_span = span_from st lstart }
          :: !stmts;
        go ()
    | T.KW_FN | T.KW_STRUCT | T.KW_ENUM | T.KW_IMPL | T.KW_TRAIT | T.KW_USE
    | T.KW_MOD | T.KW_STATIC ->
        stmts := Ast.S_item (parse_item st) :: !stmts;
        go ()
    | T.KW_UNSAFE
      when T.equal (peek_at st 1) T.KW_FN
           || T.equal (peek_at st 1) T.KW_IMPL
           || T.equal (peek_at st 1) T.KW_TRAIT ->
        stmts := Ast.S_item (parse_item st) :: !stmts;
        go ()
    | T.KW_PUB ->
        stmts := Ast.S_item (parse_item st) :: !stmts;
        go ()
    | T.KW_IF | T.KW_MATCH | T.KW_WHILE | T.KW_LOOP | T.KW_FOR | T.KW_UNSAFE
    | T.LBRACE ->
        (* Rust's statement rule: a block-like expression in statement
           position ends at its closing brace and never continues into
           a binary/postfix expression. If the closing brace is the last
           thing in the enclosing block, it is the tail expression. *)
        let e = parse_primary ~no_struct:false st in
        if T.equal (peek st) T.RBRACE then tail := Some e
        else begin
          ignore (accept st T.SEMI);
          stmts := Ast.S_expr e :: !stmts;
          go ()
        end
    | _ ->
        let e = try_parse_expr_stmt st in
        if T.equal (peek st) T.RBRACE then tail := Some e
        else begin
          (if is_block_expr e then ignore (accept st T.SEMI)
           else expect st T.SEMI);
          stmts := Ast.S_expr e :: !stmts;
          go ()
        end
  in
  (match st.recover with
  | None -> go ()
  | Some c ->
      (* Statement-level panic mode: on a syntax error inside this
         block, record the diagnostic, skip to the next statement
         boundary, stand in an [E_error] statement for the skipped
         region and resume. [sync_stmt] always consumes at least one
         token unless already at ['}']/[EOF], so this terminates. *)
      let rec go_recover () =
        match go () with
        | () -> ()
        | exception Diag.Parse_error d ->
            Diag.emit c d;
            let err_mark = st.idx in
            st.errors_left <- st.errors_left - 1;
            if st.errors_left <= 0 then give_up st c else sync_stmt st;
            stmts :=
              Ast.S_expr
                { Ast.e = Ast.E_error; espan = span_from st err_mark }
              :: !stmts;
            if
              not (T.equal (peek st) T.RBRACE || T.equal (peek st) T.EOF)
            then go_recover ()
      in
      go_recover ());
  (if T.equal (peek st) T.RBRACE then advance st
   else
     match st.recover with
     | Some c when T.equal (peek st) T.EOF ->
         Diag.emit c
           (Diag.error ~code:Diag.Parse_error_code ~span:(peek_span st)
              "unclosed block: expected '}' before end of file")
     | _ -> expect st T.RBRACE);
  { Ast.stmts = List.rev !stmts; tail = !tail; bspan = span_from st start }

and try_parse_expr_stmt st = parse_expr st

(* ------------------------------------------------------------------ *)
(* Items                                                               *)
(* ------------------------------------------------------------------ *)

and parse_fn_params st =
  expect st T.LPAREN;
  let params = ref [] in
  let parse_param () =
    match peek st with
    | T.KW_SELF ->
        advance st;
        params := Ast.Param_self None :: !params
    | T.AMP -> (
        advance st;
        (match peek st with T.LIFETIME _ -> advance st | _ -> ());
        let m = if accept st T.KW_MUT then Ast.Mut else Ast.Imm in
        match peek st with
        | T.KW_SELF ->
            advance st;
            params := Ast.Param_self (Some m) :: !params
        | t -> err st "expected 'self' in receiver, found '%s'" (T.to_string t))
    | T.KW_MUT ->
        advance st;
        let name = expect_ident st in
        expect st T.COLON;
        let ty = parse_ty st in
        params := Ast.Param (Ast.Mut, name, ty) :: !params
    | T.UNDERSCORE ->
        advance st;
        expect st T.COLON;
        let ty = parse_ty st in
        params := Ast.Param (Ast.Imm, "_", ty) :: !params
    | T.IDENT name ->
        advance st;
        expect st T.COLON;
        let ty = parse_ty st in
        params := Ast.Param (Ast.Imm, name, ty) :: !params
    | t -> err st "expected parameter, found '%s'" (T.to_string t)
  in
  if not (T.equal (peek st) T.RPAREN) then begin
    parse_param ();
    while accept st T.COMMA do
      if not (T.equal (peek st) T.RPAREN) then parse_param ()
    done
  end;
  expect st T.RPAREN;
  List.rev !params

and skip_where_clause st =
  if accept st T.KW_WHERE then begin
    (* consume until '{' or ';' at depth 0 *)
    let depth = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      match peek st with
      | T.LT ->
          incr depth;
          advance st
      | T.GT when !depth > 0 ->
          decr depth;
          advance st
      | T.LBRACE | T.SEMI when !depth = 0 -> continue_ := false
      | T.EOF -> continue_ := false
      | _ -> advance st
    done
  end

and parse_fn ~public ~unsafe_ st : Ast.fn_def =
  let start = st.idx in
  expect st T.KW_FN;
  let fn_name = expect_ident st in
  let fn_generics = parse_generic_params st in
  let fn_params = parse_fn_params st in
  let fn_ret = if accept st T.ARROW then Some (parse_ty st) else None in
  skip_where_clause st;
  let fn_body =
    if T.equal (peek st) T.LBRACE then Some (parse_block st)
    else begin
      expect st T.SEMI;
      None
    end
  in
  {
    Ast.fn_name;
    fn_unsafe = unsafe_;
    fn_public = public;
    fn_generics;
    fn_params;
    fn_ret;
    fn_body;
    fn_span = span_from st start;
  }

and parse_struct ~public:_ st : Ast.struct_def =
  let start = st.idx in
  expect st T.KW_STRUCT;
  let s_name = expect_ident st in
  let s_generics = parse_generic_params st in
  skip_where_clause st;
  let s_fields = ref [] in
  if accept st T.SEMI then ()  (* unit struct *)
  else begin
    expect st T.LBRACE;
    let parse_field () =
      let field_public = accept st T.KW_PUB in
      let field_name = expect_ident st in
      expect st T.COLON;
      let field_ty = parse_ty st in
      s_fields := { Ast.field_name; field_ty; field_public } :: !s_fields
    in
    if not (T.equal (peek st) T.RBRACE) then begin
      parse_field ();
      while accept st T.COMMA do
        if not (T.equal (peek st) T.RBRACE) then parse_field ()
      done
    end;
    expect st T.RBRACE
  end;
  {
    Ast.s_name;
    s_generics;
    s_fields = List.rev !s_fields;
    s_span = span_from st start;
  }

and parse_enum st : Ast.enum_def =
  let start = st.idx in
  expect st T.KW_ENUM;
  let e_name = expect_ident st in
  let e_generics = parse_generic_params st in
  skip_where_clause st;
  expect st T.LBRACE;
  let variants = ref [] in
  let parse_variant () =
    let v_name = expect_ident st in
    let v_args =
      if accept st T.LPAREN then begin
        let tys = ref [] in
        if not (T.equal (peek st) T.RPAREN) then begin
          tys := [ parse_ty st ];
          while accept st T.COMMA do
            if not (T.equal (peek st) T.RPAREN) then tys := parse_ty st :: !tys
          done
        end;
        expect st T.RPAREN;
        List.rev !tys
      end
      else []
    in
    variants := { Ast.v_name; v_args } :: !variants
  in
  if not (T.equal (peek st) T.RBRACE) then begin
    parse_variant ();
    while accept st T.COMMA do
      if not (T.equal (peek st) T.RBRACE) then parse_variant ()
    done
  end;
  expect st T.RBRACE;
  {
    Ast.e_name;
    e_generics;
    e_variants = List.rev !variants;
    e_span = span_from st start;
  }

and parse_impl ~unsafe_ st : Ast.impl_block =
  let start = st.idx in
  expect st T.KW_IMPL;
  let _generics = parse_generic_params st in
  (* Either `impl Ty { ... }` or `impl Trait for Ty { ... }` *)
  let first_ty = parse_ty st in
  let impl_trait, impl_self_ty =
    if accept st T.KW_FOR then begin
      let self_ty = parse_ty st in
      let trait_path =
        match first_ty.Ast.t with
        | Ast.Ty_path (p, _) -> p
        | _ -> Diag.fail ~span:first_ty.Ast.tspan "trait name expected before 'for'"
      in
      (Some trait_path, self_ty)
    end
    else (None, first_ty)
  in
  skip_where_clause st;
  expect st T.LBRACE;
  let items = ref [] in
  while not (T.equal (peek st) T.RBRACE) do
    let public = accept st T.KW_PUB in
    let unsafe_fn = accept st T.KW_UNSAFE in
    items := parse_fn ~public ~unsafe_:unsafe_fn st :: !items
  done;
  expect st T.RBRACE;
  {
    Ast.impl_unsafe = unsafe_;
    impl_trait;
    impl_self_ty;
    impl_items = List.rev !items;
    impl_span = span_from st start;
  }

and parse_trait ~unsafe_ st : Ast.trait_def =
  let start = st.idx in
  expect st T.KW_TRAIT;
  let tr_name = expect_ident st in
  let _generics = parse_generic_params st in
  (* supertraits `: Send + Sync` *)
  if accept st T.COLON then begin
    let continue_ = ref true in
    while !continue_ do
      ignore (parse_simple_path st);
      ignore (parse_generic_args st);
      if not (accept st T.PLUS) then continue_ := false
    done
  end;
  skip_where_clause st;
  expect st T.LBRACE;
  let items = ref [] in
  while not (T.equal (peek st) T.RBRACE) do
    let public = accept st T.KW_PUB in
    let unsafe_fn = accept st T.KW_UNSAFE in
    items := parse_fn ~public ~unsafe_:unsafe_fn st :: !items
  done;
  expect st T.RBRACE;
  {
    Ast.tr_name;
    tr_unsafe = unsafe_;
    tr_items = List.rev !items;
    tr_span = span_from st start;
  }

and parse_static st : Ast.static_def =
  let start = st.idx in
  (match peek st with
  | T.KW_STATIC | T.KW_CONST -> advance st
  | t -> err st "expected 'static' or 'const', found '%s'" (T.to_string t));
  let st_mut = accept st T.KW_MUT in
  let st_name = expect_ident st in
  expect st T.COLON;
  let st_ty = parse_ty st in
  expect st T.EQ;
  let st_init = try_parse_expr_stmt st in
  expect st T.SEMI;
  { Ast.st_name; st_mut; st_ty; st_init; st_span = span_from st start }

and parse_item st : Ast.item =
  let public = accept st T.KW_PUB in
  let unsafe_ = accept st T.KW_UNSAFE in
  match peek st with
  | T.KW_FN -> Ast.I_fn (parse_fn ~public ~unsafe_ st)
  | T.KW_STRUCT -> Ast.I_struct (parse_struct ~public st)
  | T.KW_ENUM -> Ast.I_enum (parse_enum st)
  | T.KW_IMPL -> Ast.I_impl (parse_impl ~unsafe_ st)
  | T.KW_TRAIT -> Ast.I_trait (parse_trait ~unsafe_ st)
  | T.KW_STATIC | T.KW_CONST -> Ast.I_static (parse_static st)
  | T.KW_USE ->
      advance st;
      let p = parse_simple_path st in
      (* `use a::b::{c, d}` or `use a::*` — consume the remainder *)
      if accept st T.COLONCOLON then begin
        match peek st with
        | T.LBRACE ->
            advance st;
            let depth = ref 1 in
            while !depth > 0 do
              (match peek st with
              | T.LBRACE -> incr depth
              | T.RBRACE -> decr depth
              | T.EOF -> depth := 0
              | _ -> ());
              advance st
            done
        | T.STAR -> advance st
        | _ -> ignore (parse_simple_path st)
      end;
      (match peek st with
      | T.KW_AS ->
          advance st;
          ignore (expect_ident st)
      | _ -> ());
      expect st T.SEMI;
      Ast.I_use p
  | T.KW_MOD ->
      advance st;
      let name = expect_ident st in
      expect st T.LBRACE;
      let items = ref [] in
      while not (T.equal (peek st) T.RBRACE) do
        items := parse_item st :: !items
      done;
      expect st T.RBRACE;
      Ast.I_mod (name, List.rev !items)
  | t -> err st "expected item, found '%s'" (T.to_string t)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let parse_crate ~file src : Ast.crate =
  Support.Trace.with_span ~cat:"frontend" ~args:[ ("file", file) ]
    "frontend.parse" (fun () ->
      let buf =
        Support.Trace.with_span ~cat:"frontend" ~args:[ ("file", file) ]
          "frontend.lex" (fun () -> Lexer.lex ~file src)
      in
      let st = make buf in
      let items = ref [] in
      while not (T.equal (peek st) T.EOF) do
        items := parse_item st :: !items
      done;
      { Ast.items = List.rev !items; crate_file = file })

let parse_crate_recovering ~file src : Ast.crate * Diag.t list =
  Support.Trace.with_span ~cat:"frontend" ~args:[ ("file", file) ]
    "frontend.parse" (fun () ->
  let c = Diag.collector () in
  let buf =
    Support.Trace.with_span ~cat:"frontend" ~args:[ ("file", file) ]
      "frontend.lex" (fun () -> Lexer.lex ~recover:c ~file src)
  in
  let st = make ~recover:c buf in
  let items = ref [] in
  while not (T.equal (peek st) T.EOF) do
    let idx0 = st.idx in
    match parse_item st with
    | it -> items := it :: !items
    | exception Diag.Parse_error d ->
        Diag.emit c d;
        let err_mark = st.idx in
        st.errors_left <- st.errors_left - 1;
        if st.errors_left <= 0 then give_up st c
        else begin
          (* guarantee progress even when the item failed on its very
             first token, then resynchronize at the next item boundary *)
          if st.idx = idx0 then advance st;
          sync_item st
        end;
        items := Ast.I_error (span_from st err_mark) :: !items
  done;
  ({ Ast.items = List.rev !items; crate_file = file }, Diag.diags c))

let parse_expr_string ~file src : Ast.expr =
  let buf = Lexer.lex ~file src in
  let st = make buf in
  let e = try_parse_expr_stmt st in
  if not (T.equal (peek st) T.EOF) then
    err st "trailing tokens after expression";
  e
