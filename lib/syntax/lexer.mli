(** Hand-written lexer for RustLite: token stream with spans.

    Handles line comments, nested block comments, string/char escapes,
    decimal and hexadecimal integer literals with type suffixes
    ([0u8], [0xC0]), lifetimes (['a]), and attributes ([#[...]],
    skipped as trivia). *)

open Support

type spanned = { tok : Token.t; span : Span.t }

type state

val make : ?recover:Diag.collector -> file:string -> string -> state
(** [?recover] switches the lexer into recovery mode: lexical errors
    are emitted to the collector and lexing continues with a
    best-effort token (skip the bad byte, close the string at EOF,
    substitute literal [0], ...). Without it, errors raise. *)

val next_token : state -> spanned
(** @raise Support.Diag.Parse_error on lexical errors, unless the state
    was created with [?recover]. *)

val tokenize : ?recover:Diag.collector -> file:string -> string -> spanned list
(** Whole input to a token list ending with [EOF].
    @raise Support.Diag.Parse_error on lexical errors, unless
    [?recover] is given. *)
