(** Hand-written lexer for RustLite: a flat, structure-of-arrays token
    buffer over the raw source.

    Handles line comments, nested block comments, string/char escapes,
    decimal and hexadecimal integer literals with type suffixes
    ([0u8], [0xC0]), lifetimes (['a]), and attributes ([#[...]],
    skipped as trivia).

    The lexer tracks byte offsets only; line/column positions are
    derived on demand from a per-file line-start table. Identifiers,
    lifetimes and string literal contents are interned into a
    per-domain {!Support.Interner} (reused across files, append-only,
    never shared between domains) whose first symbols are the keyword
    vocabulary in {!Token.keywords} order (then ["_"]). Symbols in
    [tok_syms] are therefore only meaningful relative to the buffer's
    own [interner] field. *)

open Support

type spanned = { tok : Token.t; span : Span.t }

type buf = {
  file : string;
  src : string;
  interner : Interner.t;
  mutable toks : Token.t array;
  mutable tok_starts : int array;  (** byte offset of each token *)
  mutable tok_ends : int array;  (** byte offset one past each token *)
  mutable tok_syms : int array;
      (** interned symbol for word/string tokens, [-1] otherwise *)
  mutable n_toks : int;  (** tokens in the buffer, last one is [EOF] *)
  line_starts : int array;
  mutable line_hint : int;
}

val lex : ?recover:Diag.collector -> file:string -> string -> buf
(** Lex the whole source into a token buffer (always ends with [EOF]).
    [?recover] switches the lexer into recovery mode: lexical errors
    are emitted to the collector and lexing continues with a
    best-effort token (skip the bad byte, close the string at EOF,
    substitute literal [0], ...). Without it, errors raise
    [Support.Diag.Parse_error]. *)

val pos_of_offset : buf -> int -> Span.pos
(** Line/col for a byte offset, from the line-start table. Amortized
    O(1) on (mostly) monotone offset sequences. *)

val token_span : buf -> int -> Span.t
(** Span of token [i], derived from its recorded offsets. *)

val line_starts_of : string -> int array
(** Byte offset of every line start in a source string (index 0 is
    always 0). Exposed for differential span tests. *)

val tokenize : ?recover:Diag.collector -> file:string -> string -> spanned list
(** Whole input to a token list ending with [EOF]. Compatibility
    wrapper over {!lex}.
    @raise Support.Diag.Parse_error on lexical errors, unless
    [?recover] is given. *)
