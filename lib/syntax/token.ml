(** Tokens of the RustLite surface language. *)

type t =
  | IDENT of string
  | LIFETIME of string  (** ['a] — parsed, carried, mostly ignored *)
  | INT of int * string  (** value, suffix (["u8"], ["usize"], [""] ...) *)
  | FLOAT of float
  | STRING of string
  | CHAR of char
  (* Keywords *)
  | KW_AS
  | KW_BREAK
  | KW_CONST
  | KW_CONTINUE
  | KW_CRATE
  | KW_DYN
  | KW_ELSE
  | KW_ENUM
  | KW_FALSE
  | KW_FN
  | KW_FOR
  | KW_IF
  | KW_IMPL
  | KW_IN
  | KW_LET
  | KW_LOOP
  | KW_MATCH
  | KW_MOD
  | KW_MOVE
  | KW_MUT
  | KW_PUB
  | KW_REF
  | KW_RETURN
  | KW_SELF
  | KW_SELF_TYPE  (** [Self] *)
  | KW_STATIC
  | KW_STRUCT
  | KW_TRAIT
  | KW_TRUE
  | KW_UNSAFE
  | KW_USE
  | KW_WHERE
  | KW_WHILE
  (* Punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | COLONCOLON
  | ARROW  (** [->] *)
  | FATARROW  (** [=>] *)
  | DOT
  | DOTDOT
  | DOTDOTEQ
  | AMP
  | AMPAMP
  | PIPE
  | PIPEPIPE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | CARET
  | BANG
  | EQ
  | EQEQ
  | NE
  | LT
  | GT
  | LE
  | GE
  | SHL  (** [<<] *)
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PERCENTEQ
  | QUESTION
  | POUND  (** [#] *)
  | AT
  | UNDERSCORE
  | EOF

(* Keyword vocabulary in a fixed order. The lexer pre-interns these
   strings into a fresh symbol table, so keyword recognition becomes a
   bounds check plus an array load on the interned symbol instead of a
   string match. [keyword_of_string] below must agree with this list. *)
let keywords =
  [|
    ("as", KW_AS); ("break", KW_BREAK); ("const", KW_CONST);
    ("continue", KW_CONTINUE); ("crate", KW_CRATE); ("dyn", KW_DYN);
    ("else", KW_ELSE); ("enum", KW_ENUM); ("false", KW_FALSE);
    ("fn", KW_FN); ("for", KW_FOR); ("if", KW_IF); ("impl", KW_IMPL);
    ("in", KW_IN); ("let", KW_LET); ("loop", KW_LOOP);
    ("match", KW_MATCH); ("mod", KW_MOD); ("move", KW_MOVE);
    ("mut", KW_MUT); ("pub", KW_PUB); ("ref", KW_REF);
    ("return", KW_RETURN); ("self", KW_SELF); ("Self", KW_SELF_TYPE);
    ("static", KW_STATIC); ("struct", KW_STRUCT); ("trait", KW_TRAIT);
    ("true", KW_TRUE); ("unsafe", KW_UNSAFE); ("use", KW_USE);
    ("where", KW_WHERE); ("while", KW_WHILE);
  |]

let keyword_of_string = function
  | "as" -> Some KW_AS
  | "break" -> Some KW_BREAK
  | "const" -> Some KW_CONST
  | "continue" -> Some KW_CONTINUE
  | "crate" -> Some KW_CRATE
  | "dyn" -> Some KW_DYN
  | "else" -> Some KW_ELSE
  | "enum" -> Some KW_ENUM
  | "false" -> Some KW_FALSE
  | "fn" -> Some KW_FN
  | "for" -> Some KW_FOR
  | "if" -> Some KW_IF
  | "impl" -> Some KW_IMPL
  | "in" -> Some KW_IN
  | "let" -> Some KW_LET
  | "loop" -> Some KW_LOOP
  | "match" -> Some KW_MATCH
  | "mod" -> Some KW_MOD
  | "move" -> Some KW_MOVE
  | "mut" -> Some KW_MUT
  | "pub" -> Some KW_PUB
  | "ref" -> Some KW_REF
  | "return" -> Some KW_RETURN
  | "self" -> Some KW_SELF
  | "Self" -> Some KW_SELF_TYPE
  | "static" -> Some KW_STATIC
  | "struct" -> Some KW_STRUCT
  | "trait" -> Some KW_TRAIT
  | "true" -> Some KW_TRUE
  | "unsafe" -> Some KW_UNSAFE
  | "use" -> Some KW_USE
  | "where" -> Some KW_WHERE
  | "while" -> Some KW_WHILE
  | _ -> None

let to_string = function
  | IDENT s -> s
  | LIFETIME s -> "'" ^ s
  | INT (v, suf) -> string_of_int v ^ suf
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | CHAR c -> Printf.sprintf "%C" c
  | KW_AS -> "as"
  | KW_BREAK -> "break"
  | KW_CONST -> "const"
  | KW_CONTINUE -> "continue"
  | KW_CRATE -> "crate"
  | KW_DYN -> "dyn"
  | KW_ELSE -> "else"
  | KW_ENUM -> "enum"
  | KW_FALSE -> "false"
  | KW_FN -> "fn"
  | KW_FOR -> "for"
  | KW_IF -> "if"
  | KW_IMPL -> "impl"
  | KW_IN -> "in"
  | KW_LET -> "let"
  | KW_LOOP -> "loop"
  | KW_MATCH -> "match"
  | KW_MOD -> "mod"
  | KW_MOVE -> "move"
  | KW_MUT -> "mut"
  | KW_PUB -> "pub"
  | KW_REF -> "ref"
  | KW_RETURN -> "return"
  | KW_SELF -> "self"
  | KW_SELF_TYPE -> "Self"
  | KW_STATIC -> "static"
  | KW_STRUCT -> "struct"
  | KW_TRAIT -> "trait"
  | KW_TRUE -> "true"
  | KW_UNSAFE -> "unsafe"
  | KW_USE -> "use"
  | KW_WHERE -> "where"
  | KW_WHILE -> "while"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | COLONCOLON -> "::"
  | ARROW -> "->"
  | FATARROW -> "=>"
  | DOT -> "."
  | DOTDOT -> ".."
  | DOTDOTEQ -> "..="
  | AMP -> "&"
  | AMPAMP -> "&&"
  | PIPE -> "|"
  | PIPEPIPE -> "||"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | CARET -> "^"
  | BANG -> "!"
  | EQ -> "="
  | EQEQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | SHL -> "<<"
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | SLASHEQ -> "/="
  | PERCENTEQ -> "%="
  | QUESTION -> "?"
  | POUND -> "#"
  | AT -> "@"
  | UNDERSCORE -> "_"
  | EOF -> "<eof>"

(* Physical equality first: keyword/punctuation tokens are immediates
   (and IDENT boxes are memoized per file by the lexer), so the hot
   parser comparisons never reach polymorphic compare. *)
let equal (a : t) (b : t) =
  a == b
  ||
  match (a, b) with
  | IDENT x, IDENT y | LIFETIME x, LIFETIME y | STRING x, STRING y ->
      String.equal x y
  | INT (v, sx), INT (w, sy) -> v = w && String.equal sx sy
  | FLOAT x, FLOAT y -> Float.equal x y
  | CHAR x, CHAR y -> Char.equal x y
  | _ -> false
