(** Abstract syntax of RustLite.

    RustLite is the Rust fragment needed to express every bug pattern in
    the PLDI'20 study: ownership moves, borrows, raw pointers, unsafe
    regions, interior mutability, locks/condvars/channels/atomics, and
    closures spawned onto threads. *)

open Support

type mutability = Imm | Mut [@@deriving eq, ord, show { with_path = false }]

type path = { segments : string list; pspan : Span.t }

let path_name p = String.concat "::" p.segments

type ty = { t : ty_kind; tspan : Span.t }

and ty_kind =
  | Ty_path of path * ty list  (** [Vec<u8>], [i32], [Foo] *)
  | Ty_ref of mutability * ty  (** [&T], [&mut T] *)
  | Ty_ptr of mutability * ty  (** [*const T], [*mut T] *)
  | Ty_tuple of ty list  (** [()] is [Ty_tuple []] *)
  | Ty_fn of ty list * ty  (** closure/function type in signatures *)
  | Ty_infer  (** [_] *)

type unop =
  | Neg
  | Not
  | Deref
[@@deriving eq, ord, show { with_path = false }]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | BitXor
  | BitAnd
  | BitOr
  | Shl
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
[@@deriving eq, ord, show { with_path = false }]

type lit =
  | Lit_int of int * string  (** value, suffix *)
  | Lit_bool of bool
  | Lit_str of string
  | Lit_char of char
  | Lit_float of float
  | Lit_unit
[@@deriving eq, ord, show { with_path = false }]

type pat = { p : pat_kind; pspan : Span.t }

and pat_kind =
  | P_wild
  | P_lit of lit
  | P_ident of mutability * string * pat option  (** [mut x], [x @ pat] *)
  | P_ref of mutability * pat  (** [&p], [&mut p], [ref p] *)
  | P_tuple of pat list
  | P_ctor of path * pat list  (** [Some(x)], [Ok(v)], [None] *)
  | P_struct of path * (string * pat) list  (** [Foo { a, b: p }] *)

type expr = { e : expr_kind; espan : Span.t }

and expr_kind =
  | E_lit of lit
  | E_path of path * ty list  (** variable or item ref, turbofish args *)
  | E_call of expr * expr list
  | E_method of expr * string * ty list * expr list
      (** receiver, method name, turbofish args, arguments *)
  | E_field of expr * string
  | E_tuple_field of expr * int  (** [e.0] *)
  | E_index of expr * expr
  | E_unary of unop * expr
  | E_binary of binop * expr * expr
  | E_ref of mutability * expr  (** [&e], [&mut e] *)
  | E_assign of expr * expr
  | E_assign_op of binop * expr * expr  (** [e += e] ... *)
  | E_cast of expr * ty  (** [e as T] *)
  | E_if of expr * block * expr option  (** else branch: block or if *)
  | E_if_let of pat * expr * block * expr option
  | E_match of expr * arm list
  | E_while of expr * block
  | E_while_let of pat * expr * block
  | E_loop of block
  | E_for of pat * expr * block
  | E_block of block
  | E_unsafe of block
  | E_return of expr option
  | E_break
  | E_continue
  | E_struct_lit of path * (string * expr) list * expr option
      (** [Foo { a: 1, ..base }] *)
  | E_tuple of expr list
  | E_closure of closure
  | E_range of expr option * expr option * bool  (** lo, hi, inclusive *)
  | E_vec of expr list  (** [vec![...]] *)
  | E_macro of string * expr list  (** [println!(...)] etc.; opaque *)
  | E_error
      (** recovery placeholder for an unparseable region; types as
          [Ty.Unknown] and lowers to a no-op *)

and arm = { arm_pat : pat; arm_guard : expr option; arm_body : expr }

and closure = {
  cl_move : bool;
  cl_params : (pat * ty option) list;
  cl_body : expr;
}

and block = { stmts : stmt list; tail : expr option; bspan : Span.t }

and stmt =
  | S_let of let_binding
  | S_expr of expr  (** expression statement terminated by [;] *)
  | S_item of item  (** nested item (fn in fn) *)

and let_binding = {
  let_pat : pat;
  let_ty : ty option;
  let_init : expr option;
  let_span : Span.t;
}

and fn_param =
  | Param_self of mutability option
      (** [self] = [Param_self None]; [&self] = [Some Imm];
          [&mut self] = [Some Mut] *)
  | Param of mutability * string * ty

and fn_def = {
  fn_name : string;
  fn_unsafe : bool;
  fn_public : bool;
  fn_generics : string list;  (** type parameter names *)
  fn_params : fn_param list;
  fn_ret : ty option;  (** [None] = unit *)
  fn_body : block option;  (** [None] for trait method signatures *)
  fn_span : Span.t;
}

and field_def = { field_name : string; field_ty : ty; field_public : bool }

and struct_def = {
  s_name : string;
  s_generics : string list;
  s_fields : field_def list;
  s_span : Span.t;
}

and variant_def = { v_name : string; v_args : ty list }

and enum_def = {
  e_name : string;
  e_generics : string list;
  e_variants : variant_def list;
  e_span : Span.t;
}

and impl_block = {
  impl_unsafe : bool;  (** [unsafe impl Sync for T] *)
  impl_trait : path option;  (** trait being implemented, if any *)
  impl_self_ty : ty;
  impl_items : fn_def list;
  impl_span : Span.t;
}

and trait_def = {
  tr_name : string;
  tr_unsafe : bool;
  tr_items : fn_def list;
  tr_span : Span.t;
}

and static_def = {
  st_name : string;
  st_mut : bool;
  st_ty : ty;
  st_init : expr;
  st_span : Span.t;
}

and item =
  | I_fn of fn_def
  | I_struct of struct_def
  | I_enum of enum_def
  | I_impl of impl_block
  | I_trait of trait_def
  | I_static of static_def
  | I_use of path  (** recorded but semantically inert *)
  | I_mod of string * item list
  | I_error of Span.t
      (** recovery placeholder for an unparseable item; carries the
          span of the skipped region *)

type crate = { items : item list; crate_file : string }

(* ------------------------------------------------------------------ *)
(* Convenience constructors and accessors                              *)
(* ------------------------------------------------------------------ *)

let unit_ty = { t = Ty_tuple []; tspan = Span.dummy }

let item_name = function
  | I_fn f -> f.fn_name
  | I_struct s -> s.s_name
  | I_enum e -> e.e_name
  | I_impl _ -> "<impl>"
  | I_trait t -> t.tr_name
  | I_static s -> s.st_name
  | I_use p -> path_name p
  | I_mod (n, _) -> n
  | I_error _ -> "<error>"

let rec item_span = function
  | I_fn f -> f.fn_span
  | I_struct s -> s.s_span
  | I_enum e -> e.e_span
  | I_impl i -> i.impl_span
  | I_trait t -> t.tr_span
  | I_static s -> s.st_span
  | I_use p -> p.pspan
  | I_mod (_, items) -> (
      match items with [] -> Span.dummy | i :: _ -> item_span i)
  | I_error sp -> sp

(** Fold over every expression in a crate, visiting nested items,
    closures and blocks. Used by the unsafe-usage scanner and the
    span-classification logic in the study layer. *)
let rec fold_expr f acc (e : expr) =
  let acc = f acc e in
  match e.e with
  | E_lit _ | E_path _ | E_break | E_continue | E_error -> acc
  | E_call (callee, args) -> List.fold_left (fold_expr f) (fold_expr f acc callee) args
  | E_method (recv, _, _, args) ->
      List.fold_left (fold_expr f) (fold_expr f acc recv) args
  | E_field (e1, _) | E_tuple_field (e1, _) | E_unary (_, e1) | E_ref (_, e1)
  | E_cast (e1, _) ->
      fold_expr f acc e1
  | E_index (e1, e2) | E_binary (_, e1, e2) | E_assign (e1, e2)
  | E_assign_op (_, e1, e2) ->
      fold_expr f (fold_expr f acc e1) e2
  | E_if (c, b, els) ->
      let acc = fold_expr f acc c in
      let acc = fold_block f acc b in
      (match els with Some e -> fold_expr f acc e | None -> acc)
  | E_if_let (_, scrut, b, els) ->
      let acc = fold_expr f acc scrut in
      let acc = fold_block f acc b in
      (match els with Some e -> fold_expr f acc e | None -> acc)
  | E_match (scrut, arms) ->
      let acc = fold_expr f acc scrut in
      List.fold_left
        (fun acc arm ->
          let acc =
            match arm.arm_guard with
            | Some g -> fold_expr f acc g
            | None -> acc
          in
          fold_expr f acc arm.arm_body)
        acc arms
  | E_while (c, b) -> fold_block f (fold_expr f acc c) b
  | E_while_let (_, scrut, b) -> fold_block f (fold_expr f acc scrut) b
  | E_loop b -> fold_block f acc b
  | E_for (_, iter, b) -> fold_block f (fold_expr f acc iter) b
  | E_block b | E_unsafe b -> fold_block f acc b
  | E_return (Some e1) -> fold_expr f acc e1
  | E_return None -> acc
  | E_struct_lit (_, fields, base) ->
      let acc =
        List.fold_left (fun acc (_, e1) -> fold_expr f acc e1) acc fields
      in
      (match base with Some b -> fold_expr f acc b | None -> acc)
  | E_tuple es | E_vec es | E_macro (_, es) ->
      List.fold_left (fold_expr f) acc es
  | E_closure cl -> fold_expr f acc cl.cl_body
  | E_range (lo, hi, _) ->
      let acc = match lo with Some e1 -> fold_expr f acc e1 | None -> acc in
      (match hi with Some e1 -> fold_expr f acc e1 | None -> acc)

and fold_block f acc (b : block) =
  let acc =
    List.fold_left
      (fun acc s ->
        match s with
        | S_let lb -> (
            match lb.let_init with
            | Some e -> fold_expr f acc e
            | None -> acc)
        | S_expr e -> fold_expr f acc e
        | S_item it -> fold_item f acc it)
      acc b.stmts
  in
  match b.tail with Some e -> fold_expr f acc e | None -> acc

and fold_item f acc = function
  | I_fn fd -> ( match fd.fn_body with Some b -> fold_block f acc b | None -> acc)
  | I_impl ib ->
      List.fold_left
        (fun acc fd ->
          match fd.fn_body with Some b -> fold_block f acc b | None -> acc)
        acc ib.impl_items
  | I_trait td ->
      List.fold_left
        (fun acc fd ->
          match fd.fn_body with Some b -> fold_block f acc b | None -> acc)
        acc td.tr_items
  | I_static sd -> fold_expr f acc sd.st_init
  | I_mod (_, items) -> List.fold_left (fold_item f) acc items
  | I_struct _ | I_enum _ | I_use _ | I_error _ -> acc

let fold_crate f acc (c : crate) = List.fold_left (fold_item f) acc c.items
