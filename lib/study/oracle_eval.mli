(** Differential validation of the static detectors against the
    dynamic oracle: every (program, bug-class) pair classified as
    agreement, static-only, dynamic-only, or inconclusive. *)

type row = {
  agree_pos : int;  (** detector fired and the oracle trapped *)
  agree_neg : int;  (** neither fired, on a fully-observed clean run *)
  static_only : int;  (** detector fired, oracle ran clean *)
  dynamic_only : int;  (** oracle trapped, no detector finding *)
  inconclusive : int;  (** oracle degraded: no dynamic ground truth *)
}

type result = {
  rows : (string * row) list;
      (** one confusion row per bug class, in
          {!Interp.Machine.all_classes} order *)
  programs : int;  (** corpus entries swept *)
  mutants : int;  (** mutant programs swept *)
  degraded : string list;  (** ids whose static analysis failed to load *)
  escaped : int;  (** exceptions that escaped per-target isolation;
                      the invariant tests pin this to zero *)
}

val kind_of_class : Interp.Machine.trap_class -> Detectors.Report.kind
(** The detector kind a dynamic trap class validates against. *)

val run :
  ?domains:int ->
  ?mutants:bool ->
  ?fuel:int ->
  ?deadline_ms:int ->
  ?schedules:int ->
  ?seed:int ->
  unit ->
  result
(** Sweep the corpus — plus, with [~mutants:true], every seeded fault
    mutant (the 1020 recovery mutants and the trap-aiming mutants) —
    through the detector suite and the oracle. Deterministic for fixed
    inputs, budgets and seed regardless of [domains]; never raises:
    per-target failures degrade, and the ambient fuel/deadline budgets
    are restored after every target. *)

val render : result -> string
(** Deterministic fixed-width confusion table. *)
