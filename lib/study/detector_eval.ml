(** §7 detector evaluation: run the two paper detectors over the
    latest-version target corpus and count true bugs vs false
    positives. The paper reports UAF 4 bugs / 3 FPs and double-lock 6
    bugs / 0 FPs. *)

type result = {
  uaf_bugs : int;
  uaf_false_positives : int;
  dl_bugs : int;
  dl_false_positives : int;
  missed : string list;
  degraded : string list;
      (** targets whose analysis degraded (frontend recovery, fuel
          exhaustion) or failed outright; their verdicts count as
          "no finding" *)
}

(* Per-target detector verdicts: the parallelisable part. One shared
   analysis context per target, so both detectors reuse the same alias
   and points-to results. [Error msg] means the target could not be
   loaded at all; [Ok (uaf, dl, degraded)] carries the verdicts plus
   whether the analysis was degraded. *)
let verdict (t : Corpus.Detector_targets.target) :
    (bool * bool * bool, string) Stdlib.result =
  (* the process default wall-clock budget applies here too: a
     timed-out target degrades (and counts as "no finding") instead of
     holding the evaluation hostage *)
  Support.Deadline.with_default_budget (fun () ->
      match
        Analysis.Cache.load_ctx_recovering
          ~file:(t.Corpus.Detector_targets.t_id ^ ".rs")
          t.Corpus.Detector_targets.t_source
      with
      | Error e -> Error (Printexc.to_string e)
      | Ok ctx -> (
          match
            ( Detectors.Uaf.run_ctx ctx <> [],
              Detectors.Double_lock.run_ctx ctx <> [] )
          with
          | exception e -> Error (Printexc.to_string e)
          | uaf, dl -> Ok (uaf, dl, Analysis.Cache.diags ctx <> [])))

let run ?domains () : result =
  let verdicts =
    Support.Domain_pool.try_map ?domains ~f:verdict
      Corpus.Detector_targets.all
  in
  let uaf_tp = ref 0
  and uaf_fp = ref 0
  and dl_tp = ref 0
  and dl_fp = ref 0
  and missed = ref []
  and degraded = ref [] in
  (* fold sequentially in corpus order so counts, [missed] and
     [degraded] are deterministic regardless of pool size *)
  List.iter2
    (fun (t : Corpus.Detector_targets.target) v ->
      let id = t.Corpus.Detector_targets.t_id in
      let uaf, dl =
        match v with
        | Ok (Ok (uaf, dl, deg)) ->
            if deg then degraded := id :: !degraded;
            (uaf, dl)
        | Ok (Error _) | Error _ ->
            (* isolated per-target failure: no verdict, keep going *)
            degraded := id :: !degraded;
            (false, false)
      in
      match t.Corpus.Detector_targets.t_expect with
      | `True_bug Detectors.Report.Use_after_free ->
          if uaf then incr uaf_tp else missed := id :: !missed
      | `True_bug Detectors.Report.Double_lock ->
          if dl then incr dl_tp else missed := id :: !missed
      | `True_bug _ -> ()
      | `False_positive -> if uaf then incr uaf_fp
      | `Clean -> if dl then incr dl_fp)
    Corpus.Detector_targets.all verdicts;
  {
    uaf_bugs = !uaf_tp;
    uaf_false_positives = !uaf_fp;
    dl_bugs = !dl_tp;
    dl_false_positives = !dl_fp;
    missed = List.rev !missed;
    degraded = List.rev !degraded;
  }

let render (r : result) : string =
  "Detector evaluation (7): previously-unknown bugs in the \
   latest-version corpus.\n"
  ^ Render.table
      ~header:[ "Detector"; "Bugs found"; "False positives" ]
      [
        [ "use-after-free"; string_of_int r.uaf_bugs; string_of_int r.uaf_false_positives ];
        [ "double-lock"; string_of_int r.dl_bugs; string_of_int r.dl_false_positives ];
      ]
  ^ (if r.missed = [] then ""
     else "missed: " ^ String.concat ", " r.missed ^ "\n")
  ^ (if r.degraded = [] then ""
     else "degraded: " ^ String.concat ", " r.degraded ^ "\n")
