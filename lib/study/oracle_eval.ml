(** Differential validation of the static detectors against the
    dynamic oracle ({!Interp.Oracle}).

    Every corpus program — and, with [~mutants:true], every seeded
    fault mutant — is analysed twice: statically (the detector suite
    over the recovery-lowered program) and dynamically (the budgeted
    interpreter). Each (program, bug-class) pair then lands in exactly
    one cell:

    - [agree_pos] — detector fired and the oracle trapped that class;
    - [agree_neg] — neither saw anything, on a fully-observed run;
    - [static_only] — detector fired but a clean complete execution
      never manifested the bug (FP candidate, or input-dependent);
    - [dynamic_only] — the oracle trapped a class no detector
      reported (static FN candidate);
    - [inconclusive] — the oracle degraded (budget, unsupported,
      deadlock, aborted by another trap): no dynamic ground truth.

    Per-target isolation is absolute: a target may degrade but never
    throw past its cell, and oracle runs restore the ambient fuel and
    deadline budgets so a sweep cannot poison a later [check]. *)

type row = {
  agree_pos : int;
  agree_neg : int;
  static_only : int;
  dynamic_only : int;
  inconclusive : int;
}

type result = {
  rows : (string * row) list;
      (** one confusion row per bug class, {!Interp.Machine.all_classes}
          order *)
  programs : int;  (** corpus entries swept *)
  mutants : int;  (** mutant programs swept *)
  degraded : string list;  (** ids whose static analysis failed to load *)
  escaped : int;  (** exceptions that escaped per-target isolation *)
}

(* The detector kind a dynamic trap class validates against. *)
let kind_of_class (c : Interp.Machine.trap_class) : Detectors.Report.kind =
  match c with
  | Interp.Machine.Uaf -> Detectors.Report.Use_after_free
  | Interp.Machine.Double_free -> Detectors.Report.Double_free
  | Interp.Machine.Invalid_free -> Detectors.Report.Invalid_free
  | Interp.Machine.Uninit_read -> Detectors.Report.Uninit_read
  | Interp.Machine.Null_deref -> Detectors.Report.Null_deref
  | Interp.Machine.Double_lock -> Detectors.Report.Double_lock

(* Verdicts for one target: for each class, (static fired, dynamic
   verdict). [Error id] = the program would not even load. *)
type target_verdict =
  (string * (bool * Interp.Oracle.verdict) list, string) Stdlib.result

let sweep_one ~fuel ~deadline_ms ~schedules ~seed (id, source) : target_verdict
    =
  (* budget hygiene: the oracle gets its own fuel/deadline scope and
     both are reset afterwards, so a budget this target exhausts can
     never leak into the next target or a later [check] run *)
  let finally () =
    Support.Deadline.reset ();
    Support.Fuel.reset_domain ()
  in
  Fun.protect ~finally (fun () ->
      Support.Fuel.with_domain_budget Support.Fuel.default_budget (fun () ->
          match
            Analysis.Cache.load_ctx_recovering ~cache:false
              ~file:(id ^ ".rs") source
          with
          | Error e -> Error (id ^ ": " ^ Printexc.to_string e)
          | exception e -> Error (id ^ ": " ^ Printexc.to_string e)
          | Ok ctx -> (
              try
                let findings = Detectors.All.bugs_ctx ctx in
                let prog = Analysis.Cache.program ctx in
                let oracle =
                  Interp.Oracle.run ~fuel ~deadline_ms ~schedules ~seed prog
                in
                Ok
                  ( id,
                    List.map
                      (fun (c, v) ->
                        let fired =
                          List.exists
                            (fun (f : Detectors.Report.finding) ->
                              f.Detectors.Report.kind = kind_of_class c)
                            findings
                        in
                        (fired, v))
                      oracle.Interp.Oracle.verdicts )
              with e -> Error (id ^ ": " ^ Printexc.to_string e))))

let mutant_targets (e : Corpus.entry) =
  List.map
    (fun (name, src) -> (e.Corpus.id ^ "+" ^ name, src))
    (Support.Fault.mutations ~seed:0x5EED e.Corpus.source)
  @ List.map
      (fun (name, src) -> (e.Corpus.id ^ "+" ^ name, src))
      (Support.Fault.trap_mutations ~seed:0x5EED e.Corpus.source)

(** Sweep the corpus (and with [~mutants:true] all seeded fault
    mutants) through detectors and oracle. Deterministic for fixed
    inputs and seed, regardless of pool size; never raises. *)
let run ?domains ?(mutants = false) ?(fuel = Interp.Oracle.default_fuel)
    ?(deadline_ms = Interp.Oracle.default_deadline_ms)
    ?(schedules = Interp.Oracle.default_schedules)
    ?(seed = Interp.Oracle.default_seed) () : result =
  Support.Trace.with_span ~cat:"oracle" "oracle.sweep" @@ fun () ->
  let corpus =
    List.map (fun (e : Corpus.entry) -> (e.Corpus.id, e.Corpus.source)) Corpus.all_bugs
  in
  let mutant_list =
    if mutants then List.concat_map mutant_targets Corpus.all_bugs else []
  in
  let targets = corpus @ mutant_list in
  let verdicts =
    Support.Domain_pool.try_map ?domains
      ~f:(sweep_one ~fuel ~deadline_ms ~schedules ~seed)
      targets
  in
  let acc = Hashtbl.create 8 in
  List.iter
    (fun c ->
      Hashtbl.replace acc (Interp.Machine.class_name c)
        {
          agree_pos = 0;
          agree_neg = 0;
          static_only = 0;
          dynamic_only = 0;
          inconclusive = 0;
        })
    Interp.Machine.all_classes;
  let bump cls f =
    let r = Hashtbl.find acc cls in
    Hashtbl.replace acc cls (f r)
  in
  let degraded = ref [] and escaped = ref 0 in
  (* fold sequentially in target order: deterministic counts *)
  List.iter2
    (fun (id, _) v ->
      match v with
      | Error _ ->
          (* an exception escaped [sweep_one]'s own isolation — the
             invariant the tests pin to zero *)
          incr escaped;
          degraded := id :: !degraded
      | Ok (Error msg) ->
          ignore msg;
          degraded := id :: !degraded
      | Ok (Ok (_, per_class)) ->
          List.iter2
            (fun c (fired, verdict) ->
              let cls = Interp.Machine.class_name c in
              match (verdict : Interp.Oracle.verdict) with
              | Interp.Oracle.Trap _ ->
                  if fired then bump cls (fun r -> { r with agree_pos = r.agree_pos + 1 })
                  else bump cls (fun r -> { r with dynamic_only = r.dynamic_only + 1 })
              | Interp.Oracle.Clean ->
                  if fired then bump cls (fun r -> { r with static_only = r.static_only + 1 })
                  else bump cls (fun r -> { r with agree_neg = r.agree_neg + 1 })
              | Interp.Oracle.Inconclusive _ ->
                  bump cls (fun r -> { r with inconclusive = r.inconclusive + 1 }))
            Interp.Machine.all_classes per_class)
    targets verdicts;
  {
    rows =
      List.map
        (fun c ->
          let n = Interp.Machine.class_name c in
          (n, Hashtbl.find acc n))
        Interp.Machine.all_classes;
    programs = List.length corpus;
    mutants = List.length mutant_list;
    degraded = List.rev !degraded;
    escaped = !escaped;
  }

(* ---------------- rendering ----------------------------------------- *)

let render (r : result) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "Oracle vs detectors (differential validation)\n";
  Buffer.add_string b
    (Printf.sprintf
       "  %d corpus program(s), %d mutant(s), %d degraded, %d escaped\n"
       r.programs r.mutants
       (List.length r.degraded)
       r.escaped);
  Buffer.add_string b
    (Printf.sprintf "  %-12s %9s %9s %11s %12s %12s\n" "class" "agree+"
       "agree-" "static-only" "dynamic-only" "inconclusive");
  List.iter
    (fun (cls, row) ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %9d %9d %11d %12d %12d\n" cls row.agree_pos
           row.agree_neg row.static_only row.dynamic_only row.inconclusive))
    r.rows;
  Buffer.contents b
