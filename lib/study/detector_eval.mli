(** §7 detector evaluation: the two paper detectors over the
    latest-version target corpus. The paper reports UAF 4 bugs / 3
    false positives and double-lock 6 bugs / 0 false positives. *)

type result = {
  uaf_bugs : int;
  uaf_false_positives : int;
  dl_bugs : int;
  dl_false_positives : int;
  missed : string list;
  degraded : string list;
      (** targets whose analysis degraded or failed; their verdicts
          count as "no finding" (corpus order) *)
}

val run : ?domains:int -> unit -> result
(** [domains] sizes the worker pool (default
    {!Support.Domain_pool.default_domains}; [1] forces the sequential
    path). The result is deterministic regardless of pool size. Each
    target is isolated: a target that fails to analyze lands in
    [degraded] instead of aborting the evaluation. Never raises. *)

val render : result -> string
