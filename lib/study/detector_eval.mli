(** §7 detector evaluation: the two paper detectors over the
    latest-version target corpus. The paper reports UAF 4 bugs / 3
    false positives and double-lock 6 bugs / 0 false positives. *)

type result = {
  uaf_bugs : int;
  uaf_false_positives : int;
  dl_bugs : int;
  dl_false_positives : int;
  missed : string list;
}

val run : ?domains:int -> unit -> result
(** [domains] sizes the worker pool (default
    {!Support.Domain_pool.default_domains}; [1] forces the sequential
    path). The result is deterministic regardless of pool size. *)

val render : result -> string
