(** Classification of corpus entries: re-derives from each program what
    the paper derived from code inspection — the bug's effect category,
    whether the effect lies in unsafe code, whether that unsafe code is
    interior (inside a safe function), the synchronization primitive of
    a blocking bug, and the data-sharing mechanism of a non-blocking
    bug. Only the cause-side safety (where the patch was applied) and
    the fix strategy come from entry metadata, as survey data. *)

open Ir

type analysis = {
  entry : Corpus.entry;
  program : Mir.program;
  findings : Detectors.Report.finding list;
  effect_unsafe : bool;
  effect_interior : bool;
      (** effect inside an unsafe region of a non-unsafe fn *)
  primitive : Corpus.blocking_primitive;
  sharing : Corpus.sharing;
}

let expected_finding (entry : Corpus.entry) findings =
  List.find_opt
    (fun (f : Detectors.Report.finding) ->
      List.mem f.Detectors.Report.kind entry.Corpus.expected)
    findings

(* ---------------- effect location ---------------------------------- *)

let effect_location (program : Mir.program) entry findings =
  match expected_finding entry findings with
  | Some f ->
      let in_unsafe = Mir.in_unsafe_region program f.Detectors.Report.span in
      let fn_unsafe =
        match Mir.find_body program f.Detectors.Report.fn_id with
        | Some b -> b.Mir.fn_unsafe
        | None -> false
      in
      (in_unsafe, in_unsafe && not fn_unsafe)
  | None -> (false, false)

(* ---------------- blocking primitive ------------------------------- *)

let detect_primitive (program : Mir.program) : Corpus.blocking_primitive =
  let has = Hashtbl.create 8 in
  List.iter
    (fun (body : Mir.body) ->
      Array.iter
        (fun (blk : Mir.block) ->
          match blk.Mir.term with
          | Mir.Call (c, _) -> (
              match c.Mir.callee with
              | Mir.Builtin
                  (Mir.CondvarWait | Mir.CondvarNotifyOne | Mir.CondvarNotifyAll)
                ->
                  Hashtbl.replace has `Condvar ()
              | Mir.Builtin Mir.OnceCallOnce -> Hashtbl.replace has `Once ()
              | Mir.Builtin
                  (Mir.ChannelRecv | Mir.ChannelSend | Mir.ChannelTryRecv) ->
                  Hashtbl.replace has `Channel ()
              | Mir.Builtin b when Mir.is_lock_acquire b || Mir.is_try_lock b ->
                  Hashtbl.replace has `Mutex ()
              | _ -> ())
          | _ -> ())
        body.Mir.blocks)
    (Mir.body_list program);
  if Hashtbl.mem has `Condvar then Corpus.Condvar
  else if Hashtbl.mem has `Once then Corpus.Once
  else if Hashtbl.mem has `Channel then Corpus.Channel
  else if Hashtbl.mem has `Mutex then Corpus.Mutex_rwlock
  else Corpus.Other_blk

(* ---------------- sharing mechanism -------------------------------- *)

let detect_sharing (program : Mir.program) : Corpus.sharing =
  let env = program.Mir.prog_env in
  let has_sync_impl = env.Sema.Env.sync_impls <> [] in
  let bodies = Mir.body_list program in
  let mut_static_access =
    List.exists
      (fun (body : Mir.body) ->
        Array.exists
          (fun (info : Mir.local_info) ->
            match info.Mir.l_name with
            | Some n when String.length n > 7 && String.sub n 0 7 = "static:"
              -> (
                match
                  Sema.Env.find_static env
                    (String.sub n 7 (String.length n - 7))
                with
                | Some sd -> sd.Syntax.Ast.st_mut
                | None -> false)
            | _ -> false)
          body.Mir.locals)
      bodies
  in
  let closure_captures_ptr =
    List.exists
      (fun (body : Mir.body) ->
        body.Mir.captures <> []
        && Array.exists
             (fun (info : Mir.local_info) -> Sema.Ty.is_raw_ptr info.Mir.l_ty)
             (Array.sub body.Mir.locals 0 body.Mir.arg_count))
      bodies
  in
  let scan pred =
    List.exists
      (fun (body : Mir.body) ->
        Array.exists
          (fun (blk : Mir.block) ->
            match blk.Mir.term with
            | Mir.Call (c, _) -> pred c.Mir.callee
            | _ -> false)
          body.Mir.blocks)
      bodies
  in
  let has_channel =
    scan (function
      | Mir.Builtin (Mir.ChannelSend | Mir.ChannelRecv | Mir.ChannelNew) -> true
      | _ -> false)
  in
  let has_atomic =
    scan (function
      | Mir.Builtin
          (Mir.AtomicLoad | Mir.AtomicStore | Mir.AtomicCas | Mir.AtomicFetch
          | Mir.AtomicSwap) ->
          true
      | _ -> false)
  in
  let has_lock = scan (fun c -> match c with Mir.Builtin b -> Mir.is_lock_acquire b | _ -> false) in
  let has_os_call =
    scan (function
      | Mir.Builtin (Mir.Extern name) ->
          String.length name > 0 && name.[String.length name - 1] <> '!'
      | _ -> false)
  in
  if has_sync_impl then Corpus.Sh_sync
  else if mut_static_access then Corpus.Sh_global
  else if closure_captures_ptr then Corpus.Sh_pointer
  else if has_channel then Corpus.Sh_msg
  else if has_atomic then Corpus.Sh_atomic
  else if has_lock then Corpus.Sh_mutex
  else if has_os_call then Corpus.Sh_os
  else Corpus.Sh_os

(* ---------------- entry analysis ----------------------------------- *)

let analysis_of_ctx (entry : Corpus.entry) ctx : analysis =
  let program = Analysis.Cache.program ctx in
  let findings = Detectors.All.bugs_ctx ctx in
  let effect_unsafe, effect_interior =
    effect_location program entry findings
  in
  {
    entry;
    program;
    findings;
    effect_unsafe;
    effect_interior;
    primitive = detect_primitive program;
    sharing = detect_sharing program;
  }

let analyze_entry (entry : Corpus.entry) : analysis =
  analysis_of_ctx entry
    (Analysis.Cache.load_ctx ~file:(entry.Corpus.id ^ ".rs")
       entry.Corpus.source)

(* ---------------- fault-tolerant driver ----------------------------- *)

(** Per-entry outcome of the fault-tolerant pipeline. *)
type outcome =
  | Analyzed of analysis  (** clean: no diagnostics *)
  | Degraded of analysis * Support.Diag.t list
      (** the entry was analyzed, but the frontend recovered from
          malformed regions and/or an analysis ran out of fuel or
          wall-clock; the findings cover only the healthy parts *)
  | Failed of string  (** nothing usable; printable cause *)
  | Quarantined of { attempts : int; errors : string list }
      (** the supervisor exhausted the retry budget on this entry
          (W0404); errors oldest-first, one per attempt *)
  | Skipped of string
      (** the whole-run deadline expired before this entry was
          analyzed (W0405) *)

(** Analyze one entry without ever raising: frontend errors degrade,
    anything escaping the rest of the pipeline fails the entry. Runs
    under the process default wall-clock budget, so [--deadline-ms]
    bounds even the unsupervised sweep. *)
let analyze_entry_result_plain (entry : Corpus.entry) : outcome =
  Support.Deadline.with_default_budget (fun () ->
      match
        Analysis.Cache.load_ctx_recovering ~file:(entry.Corpus.id ^ ".rs")
          entry.Corpus.source
      with
      | Error e -> Failed (Printexc.to_string e)
      | Ok ctx -> (
          match analysis_of_ctx entry ctx with
          | exception e -> Failed (Printexc.to_string e)
          | a -> (
              (* read the context diagnostics only now: fuel exhaustion
                 during the detector runs lands there too *)
              match Analysis.Cache.diags ctx with
              | [] -> Analyzed a
              | ds -> Degraded (a, ds))))

(* ---------------- per-entry provenance ------------------------------ *)

(** How one entry's outcome came to be: cache provenance, wall time,
    degradation count and the analysis work it triggered (per-domain
    metric deltas — entries run wholly on one domain, so concurrent
    entries do not bleed into each other's attribution). Captured only
    while tracing or metrics are enabled; free otherwise. *)
type provenance = {
  prov_id : string;
  prov_cache : string;  (** ["hit" | "miss" | "replayed"] *)
  prov_outcome : string;
      (** ["analyzed" | "degraded" | "failed" | "quarantined" | "skipped"] *)
  prov_wall_ns : int64;
      (** wall time of the whole entry (same clock as [Support.Trace]) *)
  prov_diags : int;  (** degradation diagnostics attached *)
  prov_counters : (string * float) list;
      (** nonzero per-analysis work deltas, e.g. [("pointsto_passes", 17.)] *)
}

let prov_tbl : (string, provenance) Hashtbl.t = Hashtbl.create 64
let prov_lock = Mutex.create ()

let record_prov p =
  Mutex.lock prov_lock;
  Hashtbl.replace prov_tbl p.prov_id p;
  Mutex.unlock prov_lock

let clear_provenance () =
  Mutex.lock prov_lock;
  Hashtbl.reset prov_tbl;
  Mutex.unlock prov_lock

(** Captured provenance records, sorted by entry id. *)
let provenances () : provenance list =
  Mutex.lock prov_lock;
  let ps = Hashtbl.fold (fun _ p acc -> p :: acc) prov_tbl [] in
  Mutex.unlock prov_lock;
  List.sort (fun a b -> String.compare a.prov_id b.prov_id) ps

(* Counter families whose per-domain deltas attribute analysis work to
   an entry. [Support.Metrics.counter] dedups by name, so these are the
   same families the analysis modules record into. *)
let tracked_counters =
  let c ?labels name =
    Support.Metrics.counter ?labels ~help:"(see registering module)" name
  in
  let a = c ~labels:[ "analysis" ] "rustudy_analysis_runs_total" in
  let sc = c ~labels:[ "analysis" ] "rustudy_summary_computed_total" in
  let sh = c ~labels:[ "analysis" ] "rustudy_summary_cache_hits_total" in
  [
    ("pointsto_runs", c "rustudy_pointsto_runs_total", None);
    ("pointsto_passes", c "rustudy_pointsto_passes_total", None);
    ("dataflow_runs", c "rustudy_dataflow_runs_total", None);
    ("dataflow_transfers", c "rustudy_dataflow_transfers_total", None);
    ("alias_runs", a, Some [ "alias" ]);
    ("liveness_runs", a, Some [ "liveness" ]);
    ("callgraph_runs", a, Some [ "callgraph" ]);
    ("summary_dlock", sc, Some [ "double_lock" ]);
    ("summary_uaf", sc, Some [ "uaf" ]);
    ("summary_hits_dlock", sh, Some [ "double_lock" ]);
    ("summary_hits_uaf", sh, Some [ "uaf" ]);
  ]

let sample_domain_counters () =
  List.map
    (fun (name, c, labels) ->
      (name, Support.Metrics.domain_counter_value ?labels c))
    tracked_counters

let outcome_tag = function
  | Analyzed _ -> "analyzed"
  | Degraded _ -> "degraded"
  | Failed _ -> "failed"
  | Quarantined _ -> "quarantined"
  | Skipped _ -> "skipped"

let outcome_diag_count = function
  | Degraded (_, ds) -> List.length ds
  | Analyzed _ | Failed _ | Quarantined _ | Skipped _ -> 0

let observability_on () =
  Support.Trace.enabled () || Support.Metrics.enabled ()

(** [analyze_entry_result_plain] plus observability: wraps the entry in
    an [entry.analyze] span and captures a {!provenance} record. The
    plain path runs unchanged when both tracing and metrics are off. *)
let analyze_entry_result (entry : Corpus.entry) : outcome =
  if not (observability_on ()) then analyze_entry_result_plain entry
  else begin
    let cache =
      if
        Analysis.Cache.mem_program ~file:(entry.Corpus.id ^ ".rs")
          entry.Corpus.source
      then "hit"
      else "miss"
    in
    let before = sample_domain_counters () in
    let t0 = Support.Trace.now_ns () in
    let o =
      Support.Trace.with_span ~cat:"entry"
        ~args:[ ("id", entry.Corpus.id) ]
        "entry.analyze"
        (fun () -> analyze_entry_result_plain entry)
    in
    let wall = Int64.sub (Support.Trace.now_ns ()) t0 in
    let counters =
      List.map2
        (fun (name, b0) (_, b1) -> (name, b1 -. b0))
        before
        (sample_domain_counters ())
      |> List.filter (fun (_, d) -> d <> 0.)
    in
    record_prov
      {
        prov_id = entry.Corpus.id;
        prov_cache = cache;
        prov_outcome = outcome_tag o;
        prov_wall_ns = wall;
        prov_diags = outcome_diag_count o;
        prov_counters = counters;
      };
    o
  end

(** Deterministic text block of every captured provenance record (the
    study report appends it when observability is on); empty string
    when nothing was captured. *)
let provenance_block () : string =
  match provenances () with
  | [] -> ""
  | ps ->
      let b = Buffer.create 1024 in
      Buffer.add_string b "== provenance (per entry) ==\n";
      List.iter
        (fun p ->
          Buffer.add_string b
            (Printf.sprintf "%s: outcome=%s cache=%s wall_ms=%.3f diags=%d%s\n"
               p.prov_id p.prov_outcome p.prov_cache
               (Int64.to_float p.prov_wall_ns /. 1e6)
               p.prov_diags
               (match p.prov_counters with
               | [] -> ""
               | cs ->
                   " "
                   ^ String.concat " "
                       (List.map
                          (fun (n, v) -> Printf.sprintf "%s=%.0f" n v)
                          cs))))
        ps;
      Buffer.contents b

let outcome_analysis = function
  | Analyzed a | Degraded (a, _) -> Some a
  | Failed _ | Quarantined _ | Skipped _ -> None

(** Fault-tolerant corpus sweep: one outcome per entry, in input order.
    A crashing worker is confined to its own slot ([Failed]); every
    other entry is still analyzed. Never raises. *)
let analyze_entries ?domains (entries : Corpus.entry list) :
    (Corpus.entry * outcome) list =
  Support.Domain_pool.try_map ?domains ~f:analyze_entry_result entries
  |> List.map2
       (fun e r ->
         ( e,
           match r with
           | Ok o -> o
           | Error exn -> Failed (Printexc.to_string exn) ))
       entries

let analyze_all_results ?domains () : (Corpus.entry * outcome) list =
  analyze_entries ?domains Corpus.all_bugs

let n_degraded results =
  List.length
    (List.filter
       (fun (_, o) ->
         match o with
         | Degraded _ | Failed _ | Quarantined _ | Skipped _ -> true
         | Analyzed _ -> false)
       results)

(** Deterministic one-line-per-entry summary of the degraded, failed,
    quarantined and skipped entries; empty string when every entry was
    clean. *)
let degraded_summary (results : (Corpus.entry * outcome) list) : string =
  let lines =
    List.filter_map
      (fun ((e : Corpus.entry), o) ->
        match o with
        | Analyzed _ -> None
        | Degraded (_, ds) ->
            Some
              (Printf.sprintf "degraded %s: %d diagnostic(s)%s"
                 e.Corpus.id (List.length ds)
                 (match ds with
                 | d :: _ -> "; first: " ^ Support.Diag.to_string d
                 | [] -> ""))
        | Failed msg -> Some (Printf.sprintf "failed %s: %s" e.Corpus.id msg)
        | Quarantined { attempts; errors } ->
            Some
              (Printf.sprintf "quarantined %s [W0404]: %d failed attempt(s)%s"
                 e.Corpus.id attempts
                 (match errors with
                 | m :: _ -> "; first: " ^ m
                 | [] -> ""))
        | Skipped reason ->
            Some (Printf.sprintf "skipped %s [W0405]: %s" e.Corpus.id reason))
      results
  in
  if lines = [] then "" else String.concat "\n" lines ^ "\n"

(** Memory-bug effect category: derived from which detector confirmed
    the entry (falling back to the metadata category only if no
    detector fired). *)
let mem_effect (a : analysis) : Corpus.mem_effect option =
  match a.entry.Corpus.class_ with
  | Corpus.Mem { effect; _ } -> (
      match expected_finding a.entry a.findings with
      | Some f -> (
          match f.Detectors.Report.kind with
          | Detectors.Report.Buffer_overflow -> Some Corpus.Buffer
          | Detectors.Report.Null_deref -> Some Corpus.Null
          | Detectors.Report.Uninit_read -> Some Corpus.Uninitialized
          | Detectors.Report.Invalid_free -> Some Corpus.Invalid
          | Detectors.Report.Use_after_free -> Some Corpus.UAF
          | Detectors.Report.Double_free -> Some Corpus.DoubleFree
          | _ -> Some effect)
      | None -> Some effect)
  | _ -> None

(** The paper's error-propagation row for a memory bug. *)
type propagation = Safe_safe | Unsafe_unsafe | Safe_unsafe | Unsafe_safe

let propagation_name = function
  | Safe_safe -> "safe"
  | Unsafe_unsafe -> "unsafe"
  | Safe_unsafe -> "safe -> unsafe"
  | Unsafe_safe -> "unsafe -> safe"

let propagation_of (a : analysis) : propagation option =
  match a.entry.Corpus.class_ with
  | Corpus.Mem { cause_unsafe; _ } -> (
      match (cause_unsafe, a.effect_unsafe) with
      | false, false -> Some Safe_safe
      | true, true -> Some Unsafe_unsafe
      | false, true -> Some Safe_unsafe
      | true, false -> Some Unsafe_safe)
  | _ -> None

(** Analyze the whole corpus once (memoised by the caller as needed).
    [domains] sizes the worker pool; [1] forces the sequential path.
    Results come back in corpus order either way. *)
let analyze_all ?domains () : analysis list =
  Support.Domain_pool.map ?domains ~f:analyze_entry Corpus.all_bugs

(* ---------------- checkpoint payload codec -------------------------- *)

(** Journal key of an entry: id plus source digest, mirroring the
    program cache's [(file, config)] keying — a resumed run only
    replays a record if the entry's source is byte-identical to what
    produced it. *)
let entry_key (entry : Corpus.entry) : string =
  entry.Corpus.id ^ "@" ^ Digest.to_hex (Digest.string entry.Corpus.source)

let all_kinds : Detectors.Report.kind list =
  [
    Detectors.Report.Use_after_free;
    Detectors.Report.Double_free;
    Detectors.Report.Invalid_free;
    Detectors.Report.Uninit_read;
    Detectors.Report.Null_deref;
    Detectors.Report.Buffer_overflow;
    Detectors.Report.Double_lock;
    Detectors.Report.Conflicting_lock_order;
    Detectors.Report.Condvar_lost_wakeup;
    Detectors.Report.Channel_deadlock;
    Detectors.Report.Sync_unsync_write;
    Detectors.Report.Atomicity_violation;
    Detectors.Report.Use_after_move;
    Detectors.Report.Borrow_conflict;
  ]

let kind_of_tag s =
  List.find_opt
    (fun k -> String.equal (Detectors.Report.kind_to_string k) s)
    all_kinds

let primitive_tag = function
  | Corpus.Mutex_rwlock -> "M"
  | Corpus.Condvar -> "C"
  | Corpus.Channel -> "N"
  | Corpus.Once -> "O"
  | Corpus.Other_blk -> "X"

let primitive_of_tag = function
  | "M" -> Some Corpus.Mutex_rwlock
  | "C" -> Some Corpus.Condvar
  | "N" -> Some Corpus.Channel
  | "O" -> Some Corpus.Once
  | "X" -> Some Corpus.Other_blk
  | _ -> None

let sharing_tag = function
  | Corpus.Sh_global -> "G"
  | Corpus.Sh_pointer -> "P"
  | Corpus.Sh_sync -> "Y"
  | Corpus.Sh_os -> "O"
  | Corpus.Sh_atomic -> "A"
  | Corpus.Sh_mutex -> "M"
  | Corpus.Sh_msg -> "S"

let sharing_of_tag = function
  | "G" -> Some Corpus.Sh_global
  | "P" -> Some Corpus.Sh_pointer
  | "Y" -> Some Corpus.Sh_sync
  | "O" -> Some Corpus.Sh_os
  | "A" -> Some Corpus.Sh_atomic
  | "M" -> Some Corpus.Sh_mutex
  | "S" -> Some Corpus.Sh_msg
  | _ -> None

let span_fields (s : Support.Span.t) =
  let pos (p : Support.Span.pos) =
    [
      string_of_int p.Support.Span.line;
      string_of_int p.Support.Span.col;
      string_of_int p.Support.Span.offset;
    ]
  in
  (s.Support.Span.file :: pos s.Support.Span.start_pos)
  @ pos s.Support.Span.end_pos

let take_span = function
  | file :: sl :: sc :: so :: el :: ec :: eo :: rest ->
      Some
        ( {
            Support.Span.file;
            start_pos =
              {
                Support.Span.line = int_of_string sl;
                col = int_of_string sc;
                offset = int_of_string so;
              };
            end_pos =
              {
                Support.Span.line = int_of_string el;
                col = int_of_string ec;
                offset = int_of_string eo;
              };
          },
          rest )
  | _ -> None

(** One-record serialization of an outcome: lines separated by ['\n'],
    tab-separated fields each escaped with {!Support.Journal.escape}.
    The first line's tag names the constructor (A/D/F/Q/S); [f] lines
    carry findings, [d] lines diagnostics, [e] lines quarantine
    errors. The [analysis] record's program is not serialized — resume
    re-lowers the (cached) source instead. *)
let payload_of_outcome (o : outcome) : string =
  let esc = Support.Journal.escape in
  let line fields = String.concat "\t" (List.map esc fields) in
  let bool_tag b = if b then "1" else "0" in
  let finding_line (f : Detectors.Report.finding) =
    line
      ([ "f"; Detectors.Report.kind_to_string f.Detectors.Report.kind;
         f.Detectors.Report.fn_id ]
      @ span_fields f.Detectors.Report.span
      @ span_fields f.Detectors.Report.related_span
      @ [
          (match f.Detectors.Report.confidence with
          | Detectors.Report.High -> "H"
          | Detectors.Report.Medium -> "M");
          f.Detectors.Report.message;
        ])
  in
  let diag_line (d : Support.Diag.t) =
    line
      ([ "d"; Support.Diag.code_name d.Support.Diag.code;
         (match d.Support.Diag.severity with
         | Support.Diag.Error -> "E"
         | Support.Diag.Warning -> "W"
         | Support.Diag.Note -> "N") ]
      @ span_fields d.Support.Diag.span
      @ [ d.Support.Diag.message ])
  in
  let header tag (a : analysis) =
    line
      [
        tag;
        bool_tag a.effect_unsafe;
        bool_tag a.effect_interior;
        primitive_tag a.primitive;
        sharing_tag a.sharing;
      ]
  in
  match o with
  | Analyzed a ->
      String.concat "\n" (header "A" a :: List.map finding_line a.findings)
  | Degraded (a, ds) ->
      String.concat "\n"
        ((header "D" a :: List.map finding_line a.findings)
        @ List.map diag_line ds)
  | Failed msg -> line [ "F"; msg ]
  | Quarantined { attempts; errors } ->
      String.concat "\n"
        (line [ "Q"; string_of_int attempts ]
        :: List.map (fun e -> line [ "e"; e ]) errors)
  | Skipped reason -> line [ "S"; reason ]

(** Inverse of {!payload_of_outcome}. [None] on any malformed payload
    (the caller then just re-analyzes the entry). Reconstructing an
    [Analyzed]/[Degraded] outcome re-lowers the entry's source through
    the program cache — parsing only; the journalled findings and
    diagnostics are used verbatim, nothing is re-analyzed. *)
let outcome_of_payload (entry : Corpus.entry) (payload : string) :
    outcome option =
  let ( let* ) = Option.bind in
  try
    let fields l =
      List.map Support.Journal.unescape (String.split_on_char '\t' l)
    in
    let lines = List.map fields (String.split_on_char '\n' payload) in
    let parse_finding rest =
      match rest with
      | kind :: fn_id :: rest ->
          let* kind = kind_of_tag kind in
          let* span, rest = take_span rest in
          let* related_span, rest = take_span rest in
          let* confidence =
            match rest with
            | [ "H"; _ ] -> Some Detectors.Report.High
            | [ "M"; _ ] -> Some Detectors.Report.Medium
            | _ -> None
          in
          let* message =
            match rest with [ _; m ] -> Some m | _ -> None
          in
          Some
            {
              Detectors.Report.kind;
              fn_id;
              span;
              related_span;
              message;
              confidence;
            }
      | _ -> None
    in
    let parse_diag rest =
      match rest with
      | code :: sev :: rest ->
          let* code = Support.Diag.code_of_name code in
          let* severity =
            match sev with
            | "E" -> Some Support.Diag.Error
            | "W" -> Some Support.Diag.Warning
            | "N" -> Some Support.Diag.Note
            | _ -> None
          in
          let* span, rest = take_span rest in
          let* message =
            match rest with [ m ] -> Some m | _ -> None
          in
          Some { Support.Diag.code; severity; span; message }
      | _ -> None
    in
    let rec parse_body findings diags = function
      | [] -> Some (List.rev findings, List.rev diags)
      | ("f" :: rest) :: tl ->
          let* f = parse_finding rest in
          parse_body (f :: findings) diags tl
      | ("d" :: rest) :: tl ->
          let* d = parse_diag rest in
          parse_body findings (d :: diags) tl
      | _ -> None
    in
    let rebuilt_analysis ~effect_unsafe ~effect_interior ~primitive ~sharing
        ~findings =
      match
        Analysis.Cache.load_ctx_recovering ~file:(entry.Corpus.id ^ ".rs")
          entry.Corpus.source
      with
      | Error _ -> None
      | Ok ctx ->
          Some
            {
              entry;
              program = Analysis.Cache.program ctx;
              findings;
              effect_unsafe;
              effect_interior;
              primitive;
              sharing;
            }
    in
    let parse_bool = function
      | "1" -> Some true
      | "0" -> Some false
      | _ -> None
    in
    match lines with
    | ([ tag; eu; ei; prim; shar ] :: body) when tag = "A" || tag = "D" ->
        let* effect_unsafe = parse_bool eu in
        let* effect_interior = parse_bool ei in
        let* primitive = primitive_of_tag prim in
        let* sharing = sharing_of_tag shar in
        let* findings, diags = parse_body [] [] body in
        let* a =
          rebuilt_analysis ~effect_unsafe ~effect_interior ~primitive ~sharing
            ~findings
        in
        if tag = "A" then if diags = [] then Some (Analyzed a) else None
        else Some (Degraded (a, diags))
    | [ [ "F"; msg ] ] -> Some (Failed msg)
    | [ "Q"; attempts ] :: body ->
        let attempts = int_of_string attempts in
        let* errors =
          List.fold_left
            (fun acc l ->
              match (acc, l) with
              | Some acc, [ "e"; m ] -> Some (m :: acc)
              | _ -> None)
            (Some []) body
        in
        Some (Quarantined { attempts; errors = List.rev errors })
    | [ [ "S"; reason ] ] -> Some (Skipped reason)
    | _ -> None
  with _ -> None

(* ---------------- supervised sweep ---------------------------------- *)

(** Final outcome of a supervisor verdict. A success on a retry gains
    a W0403 diagnostic (the entry is then [Degraded] — the report and
    exit ladder must show it was not analyzed cleanly). *)
let outcome_of_verdict (entry : Corpus.entry)
    (v : outcome Support.Supervisor.verdict) : outcome =
  match v with
  | Support.Supervisor.Done (o, attempt) ->
      if attempt <= 1 then o
      else begin
        let d =
          Support.Diag.warning ~code:Support.Diag.Entry_retried
            "entry %s succeeded on attempt %d after %d failed attempt(s)"
            entry.Corpus.id attempt (attempt - 1)
        in
        match o with
        | Analyzed a -> Degraded (a, [ d ])
        | Degraded (a, ds) -> Degraded (a, ds @ [ d ])
        | (Failed _ | Quarantined _ | Skipped _) as o -> o
      end
  | Support.Supervisor.Quarantined { attempts; errors } ->
      Quarantined { attempts; errors }
  | Support.Supervisor.Skipped reason -> Skipped reason

(* A deadline-degraded outcome is reported to the supervisor as a
   timed-out failure so it is retried (with the stale partial context
   purged first) and eventually quarantined; fuel exhaustion and parse
   recovery are deterministic, so those degradations are final. *)
let attempt_entry ~attempt:_ ~key:_ (entry : Corpus.entry) :
    (outcome, Support.Supervisor.failure) result =
  (* a failed attempt purges its (possibly partial or deadline-cut)
     cached context, so neither the retry nor any later deadline-free
     run can be served a poisoned cache hit *)
  let fail f =
    Analysis.Cache.remove_program ~file:(entry.Corpus.id ^ ".rs") ();
    Error f
  in
  match analyze_entry_result entry with
  | Failed msg -> fail { Support.Supervisor.f_msg = msg; f_timeout = false }
  | Degraded (_, ds) as o ->
      if
        List.exists
          (fun (d : Support.Diag.t) ->
            d.Support.Diag.code = Support.Diag.Analysis_deadline)
          ds
      then
        fail
          {
            Support.Supervisor.f_msg =
              "per-entry wall-clock deadline exceeded (W0402)";
            f_timeout = true;
          }
      else Ok o
  | o -> Ok o

(** Deadline-governed, self-healing, checkpointed corpus sweep.

    [resume] replays every journalled record whose key still matches
    an entry (same id and source) instead of re-analyzing it;
    [checkpoint] appends one fsync'd record per completed entry, so a
    killed run resumes where it stopped. When the two paths differ the
    replayed records are re-appended to the new checkpoint, keeping it
    self-contained. Returns the per-entry outcomes in input order, the
    supervisor's counters, and how many entries were replayed. *)
let analyze_entries_supervised ?(config = Support.Supervisor.default_config)
    ?checkpoint ?resume (entries : Corpus.entry list) :
    (Corpus.entry * outcome) list * Support.Supervisor.stats * int =
  let replayed : (string, outcome) Hashtbl.t = Hashtbl.create 16 in
  let replayed_raw = ref [] in
  (match resume with
  | None -> ()
  | Some path ->
      let keyed = Hashtbl.create 64 in
      List.iter
        (fun (k, p) -> Hashtbl.replace keyed k p)
        (Support.Journal.load path);
      List.iter
        (fun (e : Corpus.entry) ->
          let k = entry_key e in
          if not (Hashtbl.mem replayed k) then
            match Hashtbl.find_opt keyed k with
            | Some p -> (
                match outcome_of_payload e p with
                | Some o ->
                    Hashtbl.replace replayed k o;
                    replayed_raw := (k, p) :: !replayed_raw
                | None -> ())
            | None -> ())
        entries);
  (* the journal opens after the resume load: when both point at the
     same file, appending must not race the read *)
  let journal = Option.map Support.Journal.open_append checkpoint in
  (match (journal, checkpoint, resume) with
  | Some j, Some cp, Some rp when cp <> rp ->
      List.iter
        (fun (k, p) -> Support.Journal.append j ~key:k p)
        (List.rev !replayed_raw)
  | _ -> ());
  let pending =
    List.filter (fun e -> not (Hashtbl.mem replayed (entry_key e))) entries
  in
  let items = List.map (fun e -> (entry_key e, e)) pending in
  let entry_of_key = Hashtbl.create 64 in
  List.iter (fun (k, e) -> Hashtbl.replace entry_of_key k e) items;
  let on_done ~key v =
    match (journal, Hashtbl.find_opt entry_of_key key) with
    | Some j, Some e ->
        Support.Journal.append j ~key
          (payload_of_outcome (outcome_of_verdict e v))
    | _ -> ()
  in
  let verdicts, stats =
    Support.Supervisor.run ~config ~on_done ~f:attempt_entry items
  in
  (match journal with Some j -> Support.Journal.close j | None -> ());
  let vtbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace vtbl k v) verdicts;
  let results =
    List.map
      (fun e ->
        let k = entry_key e in
        match Hashtbl.find_opt replayed k with
        | Some o ->
            (* a replayed entry never ran this process: its provenance
               is the checkpoint itself, with no analysis work *)
            if observability_on () then
              record_prov
                {
                  prov_id = e.Corpus.id;
                  prov_cache = "replayed";
                  prov_outcome = outcome_tag o;
                  prov_wall_ns = 0L;
                  prov_diags = outcome_diag_count o;
                  prov_counters = [];
                };
            (e, o)
        | None -> (
            match Hashtbl.find_opt vtbl k with
            | Some v -> (e, outcome_of_verdict e v)
            | None -> (e, Failed "no verdict (supervisor internal error)")))
      entries
  in
  (results, stats, Hashtbl.length replayed)
