(** Classification of corpus entries: re-derives from each program what
    the paper derived from code inspection — the bug's effect category,
    whether the effect lies in unsafe code, whether that unsafe code is
    interior (inside a safe function), the synchronization primitive of
    a blocking bug, and the data-sharing mechanism of a non-blocking
    bug. Only the cause-side safety (where the patch was applied) and
    the fix strategy come from entry metadata, as survey data. *)

open Ir

type analysis = {
  entry : Corpus.entry;
  program : Mir.program;
  findings : Detectors.Report.finding list;
  effect_unsafe : bool;
  effect_interior : bool;
      (** effect inside an unsafe region of a non-unsafe fn *)
  primitive : Corpus.blocking_primitive;
  sharing : Corpus.sharing;
}

let expected_finding (entry : Corpus.entry) findings =
  List.find_opt
    (fun (f : Detectors.Report.finding) ->
      List.mem f.Detectors.Report.kind entry.Corpus.expected)
    findings

(* ---------------- effect location ---------------------------------- *)

let effect_location (program : Mir.program) entry findings =
  match expected_finding entry findings with
  | Some f ->
      let in_unsafe = Mir.in_unsafe_region program f.Detectors.Report.span in
      let fn_unsafe =
        match Mir.find_body program f.Detectors.Report.fn_id with
        | Some b -> b.Mir.fn_unsafe
        | None -> false
      in
      (in_unsafe, in_unsafe && not fn_unsafe)
  | None -> (false, false)

(* ---------------- blocking primitive ------------------------------- *)

let detect_primitive (program : Mir.program) : Corpus.blocking_primitive =
  let has = Hashtbl.create 8 in
  List.iter
    (fun (body : Mir.body) ->
      Array.iter
        (fun (blk : Mir.block) ->
          match blk.Mir.term with
          | Mir.Call (c, _) -> (
              match c.Mir.callee with
              | Mir.Builtin
                  (Mir.CondvarWait | Mir.CondvarNotifyOne | Mir.CondvarNotifyAll)
                ->
                  Hashtbl.replace has `Condvar ()
              | Mir.Builtin Mir.OnceCallOnce -> Hashtbl.replace has `Once ()
              | Mir.Builtin
                  (Mir.ChannelRecv | Mir.ChannelSend | Mir.ChannelTryRecv) ->
                  Hashtbl.replace has `Channel ()
              | Mir.Builtin b when Mir.is_lock_acquire b || Mir.is_try_lock b ->
                  Hashtbl.replace has `Mutex ()
              | _ -> ())
          | _ -> ())
        body.Mir.blocks)
    (Mir.body_list program);
  if Hashtbl.mem has `Condvar then Corpus.Condvar
  else if Hashtbl.mem has `Once then Corpus.Once
  else if Hashtbl.mem has `Channel then Corpus.Channel
  else if Hashtbl.mem has `Mutex then Corpus.Mutex_rwlock
  else Corpus.Other_blk

(* ---------------- sharing mechanism -------------------------------- *)

let detect_sharing (program : Mir.program) : Corpus.sharing =
  let env = program.Mir.prog_env in
  let has_sync_impl = env.Sema.Env.sync_impls <> [] in
  let bodies = Mir.body_list program in
  let mut_static_access =
    List.exists
      (fun (body : Mir.body) ->
        Array.exists
          (fun (info : Mir.local_info) ->
            match info.Mir.l_name with
            | Some n when String.length n > 7 && String.sub n 0 7 = "static:"
              -> (
                match
                  Sema.Env.find_static env
                    (String.sub n 7 (String.length n - 7))
                with
                | Some sd -> sd.Syntax.Ast.st_mut
                | None -> false)
            | _ -> false)
          body.Mir.locals)
      bodies
  in
  let closure_captures_ptr =
    List.exists
      (fun (body : Mir.body) ->
        body.Mir.captures <> []
        && Array.exists
             (fun (info : Mir.local_info) -> Sema.Ty.is_raw_ptr info.Mir.l_ty)
             (Array.sub body.Mir.locals 0 body.Mir.arg_count))
      bodies
  in
  let scan pred =
    List.exists
      (fun (body : Mir.body) ->
        Array.exists
          (fun (blk : Mir.block) ->
            match blk.Mir.term with
            | Mir.Call (c, _) -> pred c.Mir.callee
            | _ -> false)
          body.Mir.blocks)
      bodies
  in
  let has_channel =
    scan (function
      | Mir.Builtin (Mir.ChannelSend | Mir.ChannelRecv | Mir.ChannelNew) -> true
      | _ -> false)
  in
  let has_atomic =
    scan (function
      | Mir.Builtin
          (Mir.AtomicLoad | Mir.AtomicStore | Mir.AtomicCas | Mir.AtomicFetch
          | Mir.AtomicSwap) ->
          true
      | _ -> false)
  in
  let has_lock = scan (fun c -> match c with Mir.Builtin b -> Mir.is_lock_acquire b | _ -> false) in
  let has_os_call =
    scan (function
      | Mir.Builtin (Mir.Extern name) ->
          String.length name > 0 && name.[String.length name - 1] <> '!'
      | _ -> false)
  in
  if has_sync_impl then Corpus.Sh_sync
  else if mut_static_access then Corpus.Sh_global
  else if closure_captures_ptr then Corpus.Sh_pointer
  else if has_channel then Corpus.Sh_msg
  else if has_atomic then Corpus.Sh_atomic
  else if has_lock then Corpus.Sh_mutex
  else if has_os_call then Corpus.Sh_os
  else Corpus.Sh_os

(* ---------------- entry analysis ----------------------------------- *)

let analysis_of_ctx (entry : Corpus.entry) ctx : analysis =
  let program = Analysis.Cache.program ctx in
  let findings = Detectors.All.bugs_ctx ctx in
  let effect_unsafe, effect_interior =
    effect_location program entry findings
  in
  {
    entry;
    program;
    findings;
    effect_unsafe;
    effect_interior;
    primitive = detect_primitive program;
    sharing = detect_sharing program;
  }

let analyze_entry (entry : Corpus.entry) : analysis =
  analysis_of_ctx entry
    (Analysis.Cache.load_ctx ~file:(entry.Corpus.id ^ ".rs")
       entry.Corpus.source)

(* ---------------- fault-tolerant driver ----------------------------- *)

(** Per-entry outcome of the fault-tolerant pipeline. *)
type outcome =
  | Analyzed of analysis  (** clean: no diagnostics *)
  | Degraded of analysis * Support.Diag.t list
      (** the entry was analyzed, but the frontend recovered from
          malformed regions and/or an analysis ran out of fuel; the
          findings cover only the healthy parts *)
  | Failed of string  (** nothing usable; printable cause *)

(** Analyze one entry without ever raising: frontend errors degrade,
    anything escaping the rest of the pipeline fails the entry. *)
let analyze_entry_result (entry : Corpus.entry) : outcome =
  match
    Analysis.Cache.load_ctx_recovering ~file:(entry.Corpus.id ^ ".rs")
      entry.Corpus.source
  with
  | Error e -> Failed (Printexc.to_string e)
  | Ok ctx -> (
      match analysis_of_ctx entry ctx with
      | exception e -> Failed (Printexc.to_string e)
      | a -> (
          (* read the context diagnostics only now: fuel exhaustion
             during the detector runs lands there too *)
          match Analysis.Cache.diags ctx with
          | [] -> Analyzed a
          | ds -> Degraded (a, ds)))

let outcome_analysis = function
  | Analyzed a | Degraded (a, _) -> Some a
  | Failed _ -> None

(** Fault-tolerant corpus sweep: one outcome per entry, in input order.
    A crashing worker is confined to its own slot ([Failed]); every
    other entry is still analyzed. Never raises. *)
let analyze_entries ?domains (entries : Corpus.entry list) :
    (Corpus.entry * outcome) list =
  Support.Domain_pool.try_map ?domains ~f:analyze_entry_result entries
  |> List.map2
       (fun e r ->
         ( e,
           match r with
           | Ok o -> o
           | Error exn -> Failed (Printexc.to_string exn) ))
       entries

let analyze_all_results ?domains () : (Corpus.entry * outcome) list =
  analyze_entries ?domains Corpus.all_bugs

let n_degraded results =
  List.length
    (List.filter
       (fun (_, o) -> match o with Degraded _ | Failed _ -> true | _ -> false)
       results)

(** Deterministic one-line-per-entry summary of the degraded and failed
    entries; empty string when every entry was clean. *)
let degraded_summary (results : (Corpus.entry * outcome) list) : string =
  let lines =
    List.filter_map
      (fun ((e : Corpus.entry), o) ->
        match o with
        | Analyzed _ -> None
        | Degraded (_, ds) ->
            Some
              (Printf.sprintf "degraded %s: %d diagnostic(s)%s"
                 e.Corpus.id (List.length ds)
                 (match ds with
                 | d :: _ -> "; first: " ^ Support.Diag.to_string d
                 | [] -> ""))
        | Failed msg -> Some (Printf.sprintf "failed %s: %s" e.Corpus.id msg))
      results
  in
  if lines = [] then "" else String.concat "\n" lines ^ "\n"

(** Memory-bug effect category: derived from which detector confirmed
    the entry (falling back to the metadata category only if no
    detector fired). *)
let mem_effect (a : analysis) : Corpus.mem_effect option =
  match a.entry.Corpus.class_ with
  | Corpus.Mem { effect; _ } -> (
      match expected_finding a.entry a.findings with
      | Some f -> (
          match f.Detectors.Report.kind with
          | Detectors.Report.Buffer_overflow -> Some Corpus.Buffer
          | Detectors.Report.Null_deref -> Some Corpus.Null
          | Detectors.Report.Uninit_read -> Some Corpus.Uninitialized
          | Detectors.Report.Invalid_free -> Some Corpus.Invalid
          | Detectors.Report.Use_after_free -> Some Corpus.UAF
          | Detectors.Report.Double_free -> Some Corpus.DoubleFree
          | _ -> Some effect)
      | None -> Some effect)
  | _ -> None

(** The paper's error-propagation row for a memory bug. *)
type propagation = Safe_safe | Unsafe_unsafe | Safe_unsafe | Unsafe_safe

let propagation_name = function
  | Safe_safe -> "safe"
  | Unsafe_unsafe -> "unsafe"
  | Safe_unsafe -> "safe -> unsafe"
  | Unsafe_safe -> "unsafe -> safe"

let propagation_of (a : analysis) : propagation option =
  match a.entry.Corpus.class_ with
  | Corpus.Mem { cause_unsafe; _ } -> (
      match (cause_unsafe, a.effect_unsafe) with
      | false, false -> Some Safe_safe
      | true, true -> Some Unsafe_unsafe
      | false, true -> Some Safe_unsafe
      | true, false -> Some Unsafe_safe)
  | _ -> None

(** Analyze the whole corpus once (memoised by the caller as needed).
    [domains] sizes the worker pool; [1] forces the sequential path.
    Results come back in corpus order either way. *)
let analyze_all ?domains () : analysis list =
  Support.Domain_pool.map ?domains ~f:analyze_entry Corpus.all_bugs
