(** Simplified borrow checker over MIR — the substrate standing in for
    "what the Rust compiler statically rejects" in the study's
    safe-code discussions (Fig. 3): use-after-move and simultaneous
    shared/mutable borrows. Findings from this module model compiler
    errors, not runtime bugs. *)

open Ir
module IntSet = Analysis.Dataflow.IntSet
module Flow = Analysis.Dataflow.IntSetFlow

(* ---------------- use-after-move ---------------------------------- *)

let moved_transfer_stmt state (s : Mir.stmt) =
  match s.Mir.kind with
  | Mir.Assign (dest, rv) ->
      let state =
        match rv with
        | Mir.Use (Mir.Move p) | Mir.Cast (Mir.Move p, _)
          when Mir.place_is_local p ->
            IntSet.add p.Mir.base state
        | Mir.Aggregate (_, ops) ->
            List.fold_left
              (fun st op ->
                match op with
                | Mir.Move p when Mir.place_is_local p ->
                    IntSet.add p.Mir.base st
                | _ -> st)
              state ops
        | _ -> state
      in
      if Mir.place_is_local dest then IntSet.remove dest.Mir.base state
      else state
  | Mir.StorageLive l -> IntSet.remove l state
  | _ -> state

let moved_transfer_term state = function
  | Mir.Call (c, _) ->
      let state =
        List.fold_left
          (fun st op ->
            match op with
            | Mir.Move p when Mir.place_is_local p -> IntSet.add p.Mir.base st
            | _ -> st)
          state c.Mir.args
      in
      if Mir.place_is_local c.Mir.dest then
        IntSet.remove c.Mir.dest.Mir.base state
      else state
  | _ -> state

let use_after_move (body : Mir.body) : Report.finding list =
  let result =
    Flow.run body ~init:IntSet.empty ~transfer_stmt:moved_transfer_stmt
      ~transfer_term:moved_transfer_term
  in
  let findings = ref [] in
  let user_local l = body.Mir.locals.(l).Mir.l_user in
  let name l =
    match body.Mir.locals.(l).Mir.l_name with
    | Some n -> n
    | None -> Printf.sprintf "_%d" l
  in
  Flow.iter_with_state body result ~transfer_stmt:moved_transfer_stmt
    ~f:(fun ~block:_ state ev ->
      let check span (p : Mir.place) =
        if IntSet.mem p.Mir.base state && user_local p.Mir.base then
          findings :=
            Report.make ~kind:Report.Use_after_move ~fn_id:body.Mir.fn_id ~span
              "`%s` is used here after its value was moved (the compiler rejects this)"
              (name p.Mir.base)
            :: !findings
      in
      let check_op span = function
        | Mir.Copy p | Mir.Move p -> check span p
        | Mir.Const _ -> ()
      in
      match ev with
      | `Stmt { Mir.kind = Mir.Assign (_, rv); s_span; _ } -> (
          match rv with
          | Mir.Use op | Mir.Cast (op, _) | Mir.UnaryOp (_, op) ->
              check_op s_span op
          | Mir.BinaryOp (_, a, b) ->
              check_op s_span a;
              check_op s_span b
          | Mir.Aggregate (_, ops) -> List.iter (check_op s_span) ops
          | Mir.Ref (_, p) | Mir.AddrOf (_, p) | Mir.Discriminant p ->
              check s_span p
          | Mir.Alloc _ -> ())
      | `Stmt _ -> ()
      | `Term (Mir.Call (c, _)) -> List.iter (check_op c.Mir.call_span) c.Mir.args
      | `Term _ -> ());
  !findings

(* ---------------- conflicting borrows ----------------------------- *)

(* A mutable borrow of x while another borrow of x is outstanding (its
   holder's storage still live). Approximate NLL by requiring the first
   borrow's holder to be a user variable (temporaries die at statement
   end anyway). *)
let borrow_conflicts_with (invalid : Analysis.Dataflow.IntSetFlow.result)
    (body : Mir.body) : Report.finding list =
  let borrows = Hashtbl.create 8 in
  (* holder local -> (mutability, borrowed base) *)
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Assign (dest, Mir.Ref (m, p)) when Mir.place_is_local dest ->
              Hashtbl.replace borrows dest.Mir.base (m, p.Mir.base)
          | _ -> ())
        blk.Mir.stmts)
    body.Mir.blocks;
  let findings = ref [] in
  Analysis.Storage.iter body invalid ~f:(fun ~block:_ state ev ->
      match ev with
      | `Stmt { Mir.kind = Mir.Assign (dest, Mir.Ref (Sema.Ty.Mut, p)); s_span; _ }
        when Mir.place_is_local dest ->
          (* another outstanding borrow of the same base? *)
          Hashtbl.iter
            (fun holder (_, base) ->
              if
                holder <> dest.Mir.base && base = p.Mir.base
                && body.Mir.locals.(holder).Mir.l_user
                && (not (Analysis.Dataflow.IntSet.mem holder state))
                && holder < dest.Mir.base
              then
                findings :=
                  Report.make ~kind:Report.Borrow_conflict ~fn_id:body.Mir.fn_id
                    ~span:s_span
                    "mutable borrow of `_%d` while `%s` still borrows it (the compiler rejects this)"
                    p.Mir.base
                    (match body.Mir.locals.(holder).Mir.l_name with
                    | Some n -> n
                    | None -> Printf.sprintf "_%d" holder)
                  :: !findings)
            borrows
      | _ -> ());
  !findings

let borrow_conflicts (body : Mir.body) : Report.finding list =
  borrow_conflicts_with (Analysis.Storage.analyze body) body

let run_body (body : Mir.body) : Report.finding list =
  use_after_move body @ borrow_conflicts body

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  List.concat_map
    (fun b ->
      use_after_move b @ borrow_conflicts_with (Analysis.Cache.storage ctx b) b)
    (Mir.body_list (Analysis.Cache.program ctx))

let run (program : Mir.program) : Report.finding list =
  run_ctx (Analysis.Cache.create program)
