(** Condvar misuse detector: a [Condvar::wait] with no reachable
    [notify_one]/[notify_all] on the same condition variable (8 of the
    paper's 10 Condvar blocking bugs). *)

open Ir

val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
