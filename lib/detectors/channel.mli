(** Channel blocking detector: a blocking [recv] in a program whose
    sending half can never produce a message. *)

open Ir

val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
