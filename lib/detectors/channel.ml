(** Channel blocking detector: a blocking [recv] on a channel whose
    sending half can never produce a message (no send site reachable in
    any thread), the pattern behind 5 of the paper's 6 channel bugs. *)

open Ir

type site = { root : string; fn : string; span : Support.Span.t }

let channel_sites_with (aliases_of : Mir.body -> Analysis.Alias.resolution)
    (program : Mir.program) : site list * site list =
  let recvs = ref [] and sends = ref [] in
  List.iter
    (fun (body : Mir.body) ->
      let aliases = aliases_of body in
      Array.iter
        (fun (blk : Mir.block) ->
          match blk.Mir.term with
          | Mir.Call (c, _) -> (
              let root_of_arg0 () =
                match c.Mir.args with
                | (Mir.Copy p | Mir.Move p) :: _ ->
                    Analysis.Alias.to_string
                      (Analysis.Alias.path_of_place aliases p)
                | _ -> "?"
              in
              match c.Mir.callee with
              | Mir.Builtin Mir.ChannelRecv ->
                  recvs :=
                    { root = root_of_arg0 (); fn = body.Mir.fn_id; span = c.Mir.call_span }
                    :: !recvs
              | Mir.Builtin Mir.ChannelSend ->
                  sends :=
                    { root = root_of_arg0 (); fn = body.Mir.fn_id; span = c.Mir.call_span }
                    :: !sends
              | _ -> ())
          | _ -> ())
        body.Mir.blocks)
    (Mir.body_list program);
  (!recvs, !sends)

let channel_sites (program : Mir.program) : site list * site list =
  channel_sites_with Analysis.Alias.resolve program

let check (recvs, sends) : Report.finding list =
  List.filter_map
    (fun r ->
      (* any send anywhere in the program may feed this receiver; only
         a program with zero sends is certainly blocked *)
      if sends <> [] then None
      else
        Some
          (Report.make ~kind:Report.Channel_deadlock ~fn_id:r.fn ~span:r.span
             "blocking recv on channel `%s` but no thread ever sends on any channel"
             r.root))
    recvs

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  check
    (channel_sites_with (Analysis.Cache.aliases ctx)
       (Analysis.Cache.program ctx))

let run (program : Mir.program) : Report.finding list =
  check (channel_sites program)
