(** Double-lock detector (the paper's §7.2 static checker).

    Per the paper: "It first identifies all call sites of lock() and
    extracts two pieces of information: the lock being acquired and the
    variable being used to save the return value. As Rust implicitly
    releases the lock when the lifetime of this variable ends, our tool
    will record this release time. We then check whether or not the
    same lock is acquired before this time [...] including the case
    where two lock acquisitions are in different functions by
    performing inter-procedural analysis."

    Lock identity is the access path of the lock place (parameter
    field, static, or local creation site); the guard's live range is
    delimited by its [Drop]. RwLock read/read pairs do not conflict;
    everything else on the same lock does. [try_lock] acquisitions
    never block, so they are tracked but never reported. *)

open Ir
module IntSet = Analysis.Dataflow.IntSet
module Flow = Analysis.Dataflow.IntSetFlow

type lock_kind = KMutex | KRead | KWrite

let kind_name = function
  | KMutex -> "Mutex::lock"
  | KRead -> "RwLock::read"
  | KWrite -> "RwLock::write"

let conflict a b =
  match (a, b) with KRead, KRead -> false | _ -> true

type acquisition = {
  acq_id : int;
  acq_root : Analysis.Alias.t;
  acq_kind : lock_kind;
  acq_try : bool;
  acq_span : Support.Span.t;
}

type body_locks = {
  acquisitions : (int, acquisition) Hashtbl.t;
      (** keyed by a per-body id; gen'd at the lock call *)
  holders : (Mir.local, int) Hashtbl.t;  (** local -> acquisition id *)
  acq_at_term : (int, int) Hashtbl.t;  (** block id -> acquisition id *)
}

let lock_kind_of_builtin = function
  | Mir.MutexLock -> Some (KMutex, false)
  | Mir.MutexTryLock -> Some (KMutex, true)
  | Mir.RwRead -> Some (KRead, false)
  | Mir.RwTryRead -> Some (KRead, true)
  | Mir.RwWrite -> Some (KWrite, false)
  | Mir.RwTryWrite -> Some (KWrite, true)
  | _ -> None

let operand_local = function
  | (Mir.Copy p | Mir.Move p) when Mir.place_is_local p -> Some p.Mir.base
  | _ -> None

let operand_place = function
  | Mir.Copy p | Mir.Move p -> Some p
  | Mir.Const _ -> None

(** Identify lock acquisitions and track which locals hold each guard
    (through unwrap, moves and Condvar::wait round-trips). *)
let collect_locks_lazy (aliases : Analysis.Alias.resolution Lazy.t)
    (body : Mir.body) : body_locks =
  let t =
    {
      acquisitions = Hashtbl.create 8;
      holders = Hashtbl.create 8;
      acq_at_term = Hashtbl.create 8;
    }
  in
  let next_id = ref 0 in
  (* iterated so holder chains crossing block boundaries in any order
     are found *)
  let scan () =
    Array.iteri
      (fun bi (blk : Mir.block) ->
        List.iter
          (fun (s : Mir.stmt) ->
            match s.Mir.kind with
            | Mir.Assign (dest, Mir.Use op) when Mir.place_is_local dest -> (
                match operand_local op with
                | Some src -> (
                    match Hashtbl.find_opt t.holders src with
                    | Some a -> Hashtbl.replace t.holders dest.Mir.base a
                    | None -> ())
                | None -> ())
            | _ -> ())
          blk.Mir.stmts;
        match blk.Mir.term with
        | Mir.Call (c, _) -> (
            match c.Mir.callee with
            | Mir.Builtin b -> (
                match lock_kind_of_builtin b with
                | Some (kind, try_) ->
                    if not (Hashtbl.mem t.acq_at_term bi) then begin
                      let id = !next_id in
                      incr next_id;
                      let root =
                        match c.Mir.args with
                        | op :: _ -> (
                            match operand_place op with
                            | Some p ->
                                Analysis.Alias.path_of_place
                                  (Lazy.force aliases) p
                            | None -> Analysis.Alias.unknown)
                        | [] -> Analysis.Alias.unknown
                      in
                      Hashtbl.replace t.acquisitions id
                        {
                          acq_id = id;
                          acq_root = root;
                          acq_kind = kind;
                          acq_try = try_;
                          acq_span = c.Mir.call_span;
                        };
                      Hashtbl.replace t.acq_at_term bi id
                    end;
                    (match
                       ( Hashtbl.find_opt t.acq_at_term bi,
                         Mir.place_is_local c.Mir.dest )
                     with
                    | Some id, true ->
                        Hashtbl.replace t.holders c.Mir.dest.Mir.base id
                    | _ -> ())
                | None -> (
                    match b with
                    | Mir.ResultUnwrap | Mir.OptionUnwrap | Mir.CondvarWait -> (
                        (* the guard flows through *)
                        let arg_acq =
                          List.fold_left
                            (fun acc op ->
                              match acc with
                              | Some _ -> acc
                              | None -> (
                                  match operand_local op with
                                  | Some l -> Hashtbl.find_opt t.holders l
                                  | None -> None))
                            None c.Mir.args
                        in
                        match (arg_acq, Mir.place_is_local c.Mir.dest) with
                        | Some a, true ->
                            Hashtbl.replace t.holders c.Mir.dest.Mir.base a
                        | _ -> ())
                    | _ -> ()))
            | _ -> ())
        | _ -> ())
      body.Mir.blocks
  in
  (* Terminator-only prescan: most bodies acquire no lock at all, and
     then the statement-level holder chase has nothing to find (holders
     are only ever seeded from an acquisition's destination). *)
  let has_lock_call =
    Array.exists
      (fun (blk : Mir.block) ->
        match blk.Mir.term with
        | Mir.Call (c, _) -> (
            match c.Mir.callee with
            | Mir.Builtin b -> lock_kind_of_builtin b <> None
            | _ -> false)
        | _ -> false)
      body.Mir.blocks
  in
  if has_lock_call then begin
    scan ();
    (* the second pass resolves holder chains crossing block
       boundaries in any order *)
    scan ()
  end;
  t

let collect_locks (aliases : Analysis.Alias.resolution) (body : Mir.body) :
    body_locks =
  collect_locks_lazy (lazy aliases) body

(* Dataflow over held acquisition ids. *)
let held_analysis (body : Mir.body) (locks : body_locks) : Flow.result =
  if Hashtbl.length locks.acquisitions = 0 then begin
    (* no acquisitions: the fixpoint is identically empty; skip the
       kernel and return it directly *)
    let cfg = Analysis.Dataflow.cfg_of body in
    let n = Array.length body.Mir.blocks in
    {
      Flow.entry = Array.make n IntSet.empty;
      exit_ = Array.make n IntSet.empty;
      converged = true;
      deadline_hit = false;
      passes = 0;
      reachable = cfg.Mir.cfg_reachable;
    }
  end
  else begin
  (* gen at lock-call terminators: the transfer function doesn't see
     block ids, so recognize the acquiring call by physical identity
     (acquisitions per body are few, so a small assoc list beats
     hashing the call span) *)
  let acq_calls =
    let acc = ref [] in
    Array.iteri
      (fun bi (blk : Mir.block) ->
        match (blk.Mir.term, Hashtbl.find_opt locks.acq_at_term bi) with
        | Mir.Call (c, _), Some a -> acc := (c, a) :: !acc
        | _ -> ())
      body.Mir.blocks;
    !acc
  in
  let acq_of_call (c : Mir.call) =
    let rec go = function
      | [] -> -1
      | (c2, a) :: tl -> if c2 == c then a else go tl
    in
    go acq_calls
  in
  if Hashtbl.length locks.acquisitions <= Support.Bitset.word_bits then begin
    (* acquisition ids fit one machine word: zero-allocation kernel *)
    let word_stmt state (s : Mir.stmt) =
      match s.Mir.kind with
      | Mir.Drop p when Mir.place_is_local p -> (
          match Hashtbl.find_opt locks.holders p.Mir.base with
          | Some a -> state land lnot (1 lsl a)
          | None -> state)
      | _ -> state
    in
    let word_term state (term : Mir.terminator) =
      match term with
      | Mir.Call (c, _) ->
          let a = acq_of_call c in
          if a >= 0 then state lor (1 lsl a) else state
      | _ -> state
    in
    let w =
      Analysis.Dataflow.Word.run body ~init:0 ~transfer_stmt:word_stmt
        ~transfer_term:word_term
    in
    {
      Flow.entry =
        Array.map Support.Bitset.of_word w.Analysis.Dataflow.Word.entry;
      exit_ = Array.map Support.Bitset.of_word w.Analysis.Dataflow.Word.exit_;
      converged = w.Analysis.Dataflow.Word.converged;
      deadline_hit = w.Analysis.Dataflow.Word.deadline_hit;
      passes = w.Analysis.Dataflow.Word.passes;
      reachable = w.Analysis.Dataflow.Word.reachable;
    }
  end
  else begin
    let transfer_stmt state (s : Mir.stmt) =
      match s.Mir.kind with
      | Mir.Drop p when Mir.place_is_local p -> (
          match Hashtbl.find_opt locks.holders p.Mir.base with
          | Some a -> IntSet.remove a state
          | None -> state)
      | _ -> state
    in
    Flow.run body ~init:IntSet.empty ~transfer_stmt
      ~transfer_term:(fun state term ->
        match term with
        | Mir.Call (c, _) ->
            let a = acq_of_call c in
            if a >= 0 then IntSet.add a state else state
        | _ -> state)
  end
  end

(* ------------------------------------------------------------------ *)
(* Per-body memo (shared with atomicity, lock-order, lock-scope)       *)
(* ------------------------------------------------------------------ *)

(* The lock-acquisition map and held-guard dataflow are rebuilt by the
   interprocedural summaries, the detection pass, the lock-order
   pairing and the two-session atomicity check; one extension slot in
   the analysis context makes them all share a single computation. *)
let locks_key : (body_locks * Flow.result) Analysis.Cache.Ext.key =
  Analysis.Cache.Ext.create ()

let locks_of (ctx : Analysis.Cache.t) (body : Mir.body) :
    body_locks * Flow.result =
  Analysis.Cache.ext ctx locks_key body ~compute:(fun b ->
      (* aliases forced only when the prescan finds a lock call, so
         lockless bodies never pay for alias resolution here *)
      let locks = collect_locks_lazy (lazy (Analysis.Cache.aliases ctx b)) b in
      (locks, held_analysis b locks))

(* ------------------------------------------------------------------ *)
(* Interprocedural summaries                                           *)
(* ------------------------------------------------------------------ *)

type summary_entry = {
  se_root : Analysis.Alias.t;  (** in terms of the callee's params/statics *)
  se_kind : lock_kind;
  se_span : Support.Span.t;
}

type summaries = (string, summary_entry list) Hashtbl.t

let callee_id = function
  | Mir.Fn f -> Some f
  | Mir.Method (h, m) -> Some (h ^ "::" ^ m)
  | Mir.ClosureCall id -> Some id
  | Mir.Builtin _ -> None

let substitute_entry (aliases : Analysis.Alias.resolution) (c : Mir.call)
    (e : summary_entry) : summary_entry =
  match e.se_root.Analysis.Alias.root with
  | Analysis.Alias.Param i -> (
      match List.nth_opt c.Mir.args i with
      | Some op -> (
          match operand_place op with
          | Some p ->
              let base = Analysis.Alias.path_of_place aliases p in
              if base.Analysis.Alias.root = Analysis.Alias.Unknown_base then
                { e with se_root = Analysis.Alias.unknown }
              else
                {
                  e with
                  se_root =
                    {
                      Analysis.Alias.root = base.Analysis.Alias.root;
                      fields =
                        base.Analysis.Alias.fields
                        @ e.se_root.Analysis.Alias.fields;
                    };
                }
          | None -> { e with se_root = Analysis.Alias.unknown })
      | None -> { e with se_root = Analysis.Alias.unknown })
  | _ -> e

let exportable (e : summary_entry) =
  match e.se_root.Analysis.Alias.root with
  | Analysis.Alias.Param _ | Analysis.Alias.Static _ -> true
  | _ -> false

(* The call sites whose callee summaries flow into a body's own
   summary, in ascending block order (so every recompute rebuilds the
   entry list in the same order); memoised — the fixpoint rounds
   revisit the list but never change it (the method-name concatenation
   in [callee_id] in particular should not be redone per round). *)
let calls_key : (string * Mir.call) list Analysis.Cache.Ext.key =
  Analysis.Cache.Ext.create ()

let calls_of (ctx : Analysis.Cache.t) (body : Mir.body) :
    (string * Mir.call) list =
  Analysis.Cache.ext ctx calls_key body ~compute:(fun (b : Mir.body) ->
      List.rev
        (Array.fold_left
           (fun acc (blk : Mir.block) ->
             match blk.Mir.term with
             | Mir.Call (c, _) -> (
                 match callee_id c.Mir.callee with
                 | Some f -> (f, c) :: acc
                 | None -> acc)
             | _ -> acc)
           [] b.Mir.blocks))

(* Bound on one function's summary: entry lists concatenate up the call
   graph without dedup (distinct spans keep even same-lock entries
   distinct), so on wide or cyclic graphs the converged lists — not the
   engine walking them — can grow combinatorially. Every function keeps
   its first [summary_cap] exportable entries; real programs sit far
   below it (the whole corpus stays under a handful per function), so
   the cap only bites on adversarial call graphs. Shared by both
   interprocedural modes, keeping their findings aligned. *)
let summary_cap = 32

let rec take k = function
  | x :: tl when k > 0 -> x :: take (k - 1) tl
  | _ -> []

(* Recompute one function's summary from its own acquisitions plus its
   callees' current summaries. Both interprocedural modes — the legacy
   whole-program fixpoint and the SCC-scheduled engine — share this, so
   at a converged fixpoint they produce entry lists in the same order
   and the detection pass reports byte-identical findings. [lookup]
   returning [None] or [Some []] both mean "callee adds nothing". *)
let summary_of_body ~(lookup : string -> summary_entry list option)
    (ctx : Analysis.Cache.t) (body : Mir.body) : summary_entry list =
  let locks = fst (locks_of ctx body) in
  let aliases = lazy (Analysis.Cache.aliases ctx body) in
  let direct =
    Hashtbl.fold
      (fun _ a acc ->
        if a.acq_try then acc
        else
          { se_root = a.acq_root; se_kind = a.acq_kind; se_span = a.acq_span }
          :: acc)
      locks.acquisitions []
  in
  let from_calls =
    List.fold_left
      (fun acc (f, c) ->
        match lookup f with
        | Some entries when entries <> [] ->
            List.map (substitute_entry (Lazy.force aliases) c) entries @ acc
        | _ -> acc)
      [] (calls_of ctx body)
  in
  take summary_cap (List.filter exportable (direct @ from_calls))

(* No acquisition anywhere: every summary is empty, and an absent entry
   reads the same as an empty one — both modes skip the call-site
   resolution and the fixpoint entirely. *)
let lock_free (ctx : Analysis.Cache.t) (bodies : Mir.body list) : bool =
  List.for_all
    (fun (b : Mir.body) ->
      Hashtbl.length (fst (locks_of ctx b)).acquisitions = 0)
    bodies

(* Replay mode: the legacy whole-program chaotic fixpoint, kept behind
   [--interproc=replay] for differential testing. Iterates every body
   per round in [fn_id] order with a global round cap — propagation
   depth depends on how the iteration order aligns with call direction,
   which is what the summary engine's bottom-up schedule fixes. *)
let compute_summaries (ctx : Analysis.Cache.t) : summaries =
  let tbl : summaries = Hashtbl.create 16 in
  let bodies = Mir.body_list (Analysis.Cache.program ctx) in
  if lock_free ctx bodies then tbl
  else begin
    List.iter
      (fun (b : Mir.body) -> Hashtbl.replace tbl b.Mir.fn_id [])
      bodies;
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds < 5 do
      incr rounds;
      changed := false;
      List.iter
        (fun (b : Mir.body) ->
          let all = summary_of_body ~lookup:(Hashtbl.find_opt tbl) ctx b in
          let cur = Hashtbl.find tbl b.Mir.fn_id in
          if List.length all <> List.length cur then begin
            Hashtbl.replace tbl b.Mir.fn_id all;
            changed := true
          end)
        bodies
    done;
    tbl
  end

(* Summary mode: the SCC-scheduled bottom-up engine. *)
let summary_skey : summary_entry list array Analysis.Cache.Ext.key =
  Analysis.Cache.Ext.create ()

let summary_tbl_key : summaries Analysis.Cache.Ext.key =
  Analysis.Cache.Ext.create ()

let summary_client ctx : summary_entry list Analysis.Summary.client =
  {
    Analysis.Summary.name = "double_lock";
    params = "";
    skey = summary_skey;
    (* the replay fixpoint detects change by length; a converged list
       can only differ in length, so the engine matches it *)
    equal = (fun a b -> List.length a = List.length b);
    compute = (fun ~lookup body -> summary_of_body ~lookup ctx body);
  }

let engine_summaries ?domains (ctx : Analysis.Cache.t) : summaries =
  Analysis.Cache.ext_program ctx summary_tbl_key ~compute:(fun () ->
      let bodies = Mir.body_list (Analysis.Cache.program ctx) in
      if lock_free ctx bodies then Hashtbl.create 1
      else Analysis.Summary.compute ?domains ctx (summary_client ctx))

(* ------------------------------------------------------------------ *)
(* Detection                                                           *)
(* ------------------------------------------------------------------ *)

let root_known (r : Analysis.Alias.t) =
  r.Analysis.Alias.root <> Analysis.Alias.Unknown_base

let check_body (ctx : Analysis.Cache.t) (summaries : summaries)
    (body : Mir.body) : Report.finding list =
  (* forced only on the inter-procedural path below, which most bodies
     (no guard held at any call) never reach *)
  let aliases = lazy (Analysis.Cache.aliases ctx body) in
  let locks, held = locks_of ctx body in
  let findings = ref [] in
  (* per-block deadline poll, matching the fixpoints' budget: stop the
     replay (findings then cover a prefix of the body) and report W0402
     once it expires *)
  let dl = Support.Deadline.token () in
  let stopped = ref false in
  let held_accs state =
    IntSet.fold
      (fun a acc ->
        match Hashtbl.find_opt locks.acquisitions a with
        | Some acq -> acq :: acc
        | None -> acc)
      state []
  in
  Array.iteri
    (fun bi (blk : Mir.block) ->
      if (not !stopped) && Support.Deadline.expired dl then stopped := true;
      match blk.Mir.term with
      (* a conflict needs a guard already held on entry: the statement
         replay only removes ids, so an empty entry set means nothing
         can be held at the terminator — skip the block *)
      | Mir.Call (c, _)
        when (not !stopped) && not (IntSet.is_empty held.Flow.entry.(bi)) -> (
          (* state before the terminator *)
          let state =
            List.fold_left
              (fun st s ->
                match s.Mir.kind with
                | Mir.Drop p when Mir.place_is_local p -> (
                    match Hashtbl.find_opt locks.holders p.Mir.base with
                    | Some a -> IntSet.remove a st
                    | None -> st)
                | _ -> st)
              held.Flow.entry.(bi) blk.Mir.stmts
          in
          let held_now = held_accs state in
          (* intra-procedural: this terminator acquires a lock *)
          (match Hashtbl.find_opt locks.acq_at_term bi with
          | Some id ->
              let acq = Hashtbl.find locks.acquisitions id in
              if (not acq.acq_try) && root_known acq.acq_root then
                List.iter
                  (fun h ->
                    if
                      h.acq_id <> acq.acq_id
                      && root_known h.acq_root
                      && Analysis.Alias.equal h.acq_root acq.acq_root
                      && conflict h.acq_kind acq.acq_kind
                    then
                      findings :=
                        Report.make ~kind:Report.Double_lock
                          ~fn_id:body.Mir.fn_id ~span:acq.acq_span
                          ~related_span:h.acq_span
                          "%s on `%s` while the guard from %s on the same lock is still alive (implicit unlock has not happened yet)"
                          (kind_name acq.acq_kind)
                          (Analysis.Alias.to_string acq.acq_root)
                          (kind_name h.acq_kind)
                        :: !findings)
                  held_now
          | None -> ());
          (* inter-procedural: the callee acquires locks we hold *)
          match callee_id c.Mir.callee with
          | Some f -> (
              match Hashtbl.find_opt summaries f with
              | Some entries ->
                  if entries <> [] then
                    Analysis.Summary.note_instantiated "double_lock";
                  List.iter
                    (fun e ->
                      let e = substitute_entry (Lazy.force aliases) c e in
                      if root_known e.se_root then
                        List.iter
                          (fun h ->
                            if
                              root_known h.acq_root
                              && Analysis.Alias.equal h.acq_root e.se_root
                              && conflict h.acq_kind e.se_kind
                            then
                              findings :=
                                Report.make ~kind:Report.Double_lock
                                  ~fn_id:body.Mir.fn_id ~span:c.Mir.call_span
                                  ~related_span:h.acq_span
                                  "call to `%s` acquires %s on `%s` while a guard for the same lock is held here"
                                  f (kind_name e.se_kind)
                                  (Analysis.Alias.to_string e.se_root)
                                :: !findings)
                          held_now)
                    entries
              | None -> ())
          | None -> ())
      | _ -> ())
    body.Mir.blocks;
  if !stopped then
    Analysis.Cache.deadline_warning ctx body.Mir.fn_id "double-lock replay";
  !findings

(** Run the double-lock detector with a shared analysis context.
    [interprocedural:false] ablates the cross-function summaries
    (intraprocedural double locks are still found); [?mode] picks the
    summary engine vs the legacy replay fixpoint (defaults to
    [Analysis.Summary.default_mode ()]). *)
let run_ctx ?(interprocedural = true) ?mode (ctx : Analysis.Cache.t) :
    Report.finding list =
  let summaries =
    if not interprocedural then Hashtbl.create 1
    else
      match Analysis.Summary.resolve_mode mode with
      | Analysis.Summary.Summary -> engine_summaries ctx
      | Analysis.Summary.Replay -> compute_summaries ctx
  in
  List.concat_map (check_body ctx summaries)
    (Mir.body_list (Analysis.Cache.program ctx))

(** Run the double-lock detector over a whole program. *)
let run ?interprocedural ?mode (program : Mir.program) : Report.finding list =
  run_ctx ?interprocedural ?mode (Analysis.Cache.create program)

(** Exposed for the lock-order detector: per-body acquisition-order
    pairs (held root, newly acquired root) with spans. *)
let order_pairs_with ((locks, held) : body_locks * Flow.result)
    (body : Mir.body) :
    (Analysis.Alias.t * Analysis.Alias.t * Support.Span.t) list =
  let pairs = ref [] in
  Array.iteri
    (fun bi (blk : Mir.block) ->
      match Hashtbl.find_opt locks.acq_at_term bi with
      | Some id ->
          let acq = Hashtbl.find locks.acquisitions id in
          if root_known acq.acq_root then
            IntSet.iter
              (fun a ->
                match Hashtbl.find_opt locks.acquisitions a with
                | Some h
                  when root_known h.acq_root
                       && not (Analysis.Alias.equal h.acq_root acq.acq_root) ->
                    pairs := (h.acq_root, acq.acq_root, acq.acq_span) :: !pairs
                | _ -> ())
              held.Flow.entry.(bi)
      | None -> ignore blk)
    body.Mir.blocks;
  !pairs

let order_pairs_ctx (ctx : Analysis.Cache.t) (body : Mir.body) =
  order_pairs_with (locks_of ctx body) body

let order_pairs (body : Mir.body) =
  let aliases = Analysis.Alias.resolve body in
  let locks = collect_locks aliases body in
  order_pairs_with (locks, held_analysis body locks) body
