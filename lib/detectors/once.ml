(** [Once::call_once] recursion detector: the closure passed to
    [call_once] (transitively) calls [call_once] on the same [Once]
    object, which self-deadlocks (one of the paper's blocking bugs). *)

open Ir

let call_once_roots_with (aliases : Analysis.Alias.resolution)
    (body : Mir.body) : string list =
  Array.to_list body.Mir.blocks
  |> List.filter_map (fun (blk : Mir.block) ->
         match blk.Mir.term with
         | Mir.Call ({ Mir.callee = Mir.Builtin Mir.OnceCallOnce; args; _ }, _)
           -> (
             match args with
             | (Mir.Copy p | Mir.Move p) :: _ ->
                 Some
                   (Analysis.Alias.to_string
                      (Analysis.Alias.path_of_place aliases p))
             | _ -> None)
         | _ -> None)

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  let program = Analysis.Cache.program ctx in
  let cg = Analysis.Cache.callgraph ctx in
  let findings = ref [] in
  List.iter
    (fun (e : Analysis.Callgraph.edge) ->
      if e.Analysis.Callgraph.kind = Analysis.Callgraph.Once_closure then begin
        (* functions reachable from the closure *)
        let reach = Analysis.Callgraph.reachable cg e.Analysis.Callgraph.target in
        let nested_call_once =
          List.exists
            (fun f ->
              match Mir.find_body program f with
              | Some b -> call_once_roots_with (Analysis.Cache.aliases ctx b) b <> []
              | None -> false)
            reach
        in
        if nested_call_once then
          findings :=
            Report.make ~kind:Report.Double_lock
              ~fn_id:e.Analysis.Callgraph.caller ~span:e.Analysis.Callgraph.site
              "the closure passed to Once::call_once reaches another call_once; recursive initialization self-deadlocks"
            :: !findings
      end)
    cg.Analysis.Callgraph.edges;
  !findings

let run (program : Mir.program) : Report.finding list =
  run_ctx (Analysis.Cache.create program)
