(** Condvar misuse detector: a thread blocks in [Condvar::wait] while no
    other code path can ever call [notify_one]/[notify_all] on the same
    condition variable (the dominant Condvar pattern in the paper's
    blocking-bug study: 8 of 10 Condvar bugs). *)

open Ir

type site = { root : string; fn : string; span : Support.Span.t }

let condvar_sites_with (aliases_of : Mir.body -> Analysis.Alias.resolution)
    (program : Mir.program) : site list * site list =
  let waits = ref [] and notifies = ref [] in
  List.iter
    (fun (body : Mir.body) ->
      let aliases = aliases_of body in
      (* thread-crossing identity: substitute capture paths when this
         body is a spawned closure *)
      Array.iter
        (fun (blk : Mir.block) ->
          match blk.Mir.term with
          | Mir.Call (c, _) -> (
              let root_of_arg0 () =
                match c.Mir.args with
                | (Mir.Copy p | Mir.Move p) :: _ ->
                    Analysis.Alias.to_string
                      (Analysis.Alias.path_of_place aliases p)
                | _ -> "?"
              in
              match c.Mir.callee with
              | Mir.Builtin Mir.CondvarWait ->
                  waits :=
                    { root = root_of_arg0 (); fn = body.Mir.fn_id; span = c.Mir.call_span }
                    :: !waits
              | Mir.Builtin (Mir.CondvarNotifyOne | Mir.CondvarNotifyAll) ->
                  notifies :=
                    { root = root_of_arg0 (); fn = body.Mir.fn_id; span = c.Mir.call_span }
                    :: !notifies
              | _ -> ())
          | _ -> ())
        body.Mir.blocks)
    (Mir.body_list program);
  (!waits, !notifies)

let condvar_sites (program : Mir.program) : site list * site list =
  condvar_sites_with Analysis.Alias.resolve program

let check (waits, notifies) : Report.finding list =
  (* Identity across threads is approximated by the field path suffix:
     the same condvar reached from different frames shares the trailing
     field name (e.g. ".cvar"). No-field roots compare by presence of
     any notify site at all. *)
  let suffix root =
    match String.rindex_opt root '.' with
    | Some i -> String.sub root i (String.length root - i)
    | None -> root
  in
  List.filter_map
    (fun w ->
      let notified =
        notifies <> []
        && (List.exists
              (fun n ->
                String.equal (suffix n.root) (suffix w.root)
                || String.equal n.root w.root)
              notifies
           || List.for_all (fun n -> String.equal n.root "?") notifies)
      in
      if notified then None
      else
        Some
          (Report.make ~kind:Report.Condvar_lost_wakeup ~fn_id:w.fn
             ~span:w.span
             "Condvar::wait on `%s` but no thread ever calls notify_one/notify_all on this condition variable"
             w.root))
    waits

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  check
    (condvar_sites_with (Analysis.Cache.aliases ctx)
       (Analysis.Cache.program ctx))

let run (program : Mir.program) : Report.finding list =
  check (condvar_sites program)
