(** Unsafe-usage scanner (the measurement instrument behind the paper's
    §4): counts unsafe regions, unsafe functions, unsafe traits/impls,
    and classifies the operations performed inside unsafe regions into
    the paper's categories — memory operations (raw pointers, casts),
    calls to unsafe functions, global (static mut) accesses, and
    other. *)

open Syntax

type stats = {
  unsafe_blocks : int;
  unsafe_fns : int;
  unsafe_traits : int;
  unsafe_impls : int;
  interior_unsafe_fns : int;
      (** safe functions containing unsafe blocks: the paper's
          "interior unsafe" pattern *)
  op_memory : int;  (** raw pointer deref/manipulation, casts *)
  op_unsafe_call : int;
  op_static : int;
  op_other : int;
}

let zero =
  {
    unsafe_blocks = 0;
    unsafe_fns = 0;
    unsafe_traits = 0;
    unsafe_impls = 0;
    interior_unsafe_fns = 0;
    op_memory = 0;
    op_unsafe_call = 0;
    op_static = 0;
    op_other = 0;
  }

let add a b =
  {
    unsafe_blocks = a.unsafe_blocks + b.unsafe_blocks;
    unsafe_fns = a.unsafe_fns + b.unsafe_fns;
    unsafe_traits = a.unsafe_traits + b.unsafe_traits;
    unsafe_impls = a.unsafe_impls + b.unsafe_impls;
    interior_unsafe_fns = a.interior_unsafe_fns + b.interior_unsafe_fns;
    op_memory = a.op_memory + b.op_memory;
    op_unsafe_call = a.op_unsafe_call + b.op_unsafe_call;
    op_static = a.op_static + b.op_static;
    op_other = a.op_other + b.op_other;
  }

let total_unsafe_usages s = s.unsafe_blocks + s.unsafe_fns + s.unsafe_traits

let unsafe_builtin_call = function
  | "read" | "write" | "copy_nonoverlapping" | "copy" | "offset" | "add"
  | "transmute" | "uninitialized" | "zeroed" | "alloc" | "dealloc"
  | "from_utf8_unchecked" | "get_unchecked" | "get_unchecked_mut" | "set_len"
  | "from_raw" | "from_raw_parts" | "into_raw" | "read_volatile"
  | "write_volatile" | "drop_in_place" ->
      true
  | _ -> false

(* Count operations inside one unsafe region. *)
let classify_region (env : Sema.Env.t) (blk : Ast.block) : stats =
  Ast.fold_block
    (fun acc (e : Ast.expr) ->
      match e.Ast.e with
      | Ast.E_unary (Ast.Deref, _) -> { acc with op_memory = acc.op_memory + 1 }
      | Ast.E_cast (_, { Ast.t = Ast.Ty_ptr _; _ }) ->
          { acc with op_memory = acc.op_memory + 1 }
      | Ast.E_call ({ Ast.e = Ast.E_path (p, _); _ }, _) -> (
          let last =
            match List.rev p.Ast.segments with s :: _ -> s | [] -> ""
          in
          match p.Ast.segments with
          | [ name ] -> (
              match Sema.Env.find_fn env name with
              | Some fd when fd.Ast.fn_unsafe ->
                  { acc with op_unsafe_call = acc.op_unsafe_call + 1 }
              | Some _ -> acc
              | None ->
                  (* unknown single-segment callee inside an unsafe
                     region: an unsafe or foreign function — the reason
                     the region is unsafe at all *)
                  { acc with op_unsafe_call = acc.op_unsafe_call + 1 })
          | _ ->
              if unsafe_builtin_call last then
                { acc with op_unsafe_call = acc.op_unsafe_call + 1 }
              else { acc with op_other = acc.op_other + 1 })
      | Ast.E_method (_, ("as_ptr" | "as_mut_ptr"), _, _) ->
          (* taking a raw pointer is pointer manipulation *)
          { acc with op_memory = acc.op_memory + 1 }
      | Ast.E_method (_, name, _, _) when unsafe_builtin_call name ->
          { acc with op_unsafe_call = acc.op_unsafe_call + 1 }
      | Ast.E_path ({ Ast.segments = [ name ]; _ }, _) -> (
          match Sema.Env.find_static env name with
          | Some sd when sd.Ast.st_mut ->
              { acc with op_static = acc.op_static + 1 }
          | _ -> acc)
      | _ -> acc)
    zero blk

let scan_fn (env : Sema.Env.t) (fd : Ast.fn_def) : stats =
  let unsafe_regions = ref [] in
  (match fd.Ast.fn_body with
  | Some body ->
      ignore
        (Ast.fold_block
           (fun () (e : Ast.expr) ->
             match e.Ast.e with
             | Ast.E_unsafe blk -> unsafe_regions := blk :: !unsafe_regions
             | _ -> ())
           () body)
  | None -> ());
  let region_stats =
    List.fold_left (fun acc blk -> add acc (classify_region env blk)) zero
      !unsafe_regions
  in
  let whole_fn =
    match (fd.Ast.fn_unsafe, fd.Ast.fn_body) with
    | true, Some body -> classify_region env body
    | _ -> zero
  in
  let s = add region_stats whole_fn in
  {
    s with
    unsafe_blocks = List.length !unsafe_regions;
    unsafe_fns = (if fd.Ast.fn_unsafe then 1 else 0);
    interior_unsafe_fns =
      (if (not fd.Ast.fn_unsafe) && !unsafe_regions <> [] then 1 else 0);
  }

let rec scan_items env items =
  List.fold_left
    (fun acc item ->
      match item with
      | Ast.I_fn fd -> add acc (scan_fn env fd)
      | Ast.I_impl ib ->
          let acc =
            if ib.Ast.impl_unsafe then
              { acc with unsafe_impls = acc.unsafe_impls + 1 }
            else acc
          in
          List.fold_left (fun acc fd -> add acc (scan_fn env fd)) acc
            ib.Ast.impl_items
      | Ast.I_trait td ->
          let acc =
            if td.Ast.tr_unsafe then
              { acc with unsafe_traits = acc.unsafe_traits + 1 }
            else acc
          in
          List.fold_left (fun acc fd -> add acc (scan_fn env fd)) acc
            td.Ast.tr_items
      | Ast.I_mod (_, sub) -> add acc (scan_items env sub)
      | Ast.I_struct _ | Ast.I_enum _ | Ast.I_static _ | Ast.I_use _
      | Ast.I_error _ ->
          acc)
    zero items

(** Scan a whole crate. *)
let scan (crate : Ast.crate) : stats =
  let env = Sema.Env.of_crate crate in
  scan_items env crate.Ast.items
