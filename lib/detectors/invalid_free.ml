(** Invalid-free detector (the paper's Fig. 6 Redox bug).

    Assigning a struct through a raw pointer into freshly allocated,
    uninitialized memory first drops the "previous value" at that
    address — but that memory holds garbage, so the drop frees invalid
    pointers. The detector flags [Drop] of a deref-place whose pointer
    targets a heap allocation that no program path has initialized. *)

open Ir
module Loc = Analysis.Pointsto.Loc
module LocSet = Analysis.Pointsto.LocSet

let check_body (pts : Analysis.Pointsto.t) (body : Mir.body) :
    Report.finding list =
  (* collect heap sites initialized by a write through any pointer *)
  let initialized = Hashtbl.create 8 in
  let findings = ref [] in
  let heap_sites_of (p : Mir.place) =
    if List.mem Mir.Deref p.Mir.proj then
      LocSet.fold
        (fun loc acc ->
          match loc with Loc.LHeap h -> h :: acc | _ -> acc)
        (Analysis.Pointsto.of_local pts p.Mir.base)
        []
    else []
  in
  (* Pass 1 happens in program order: a Drop before any initializing
     write to the same site is invalid. ptr::write initializes WITHOUT
     dropping, which is the correct idiom (the bug's fix). *)
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Drop p -> (
              match
                List.filter
                  (fun h -> not (Hashtbl.mem initialized h))
                  (heap_sites_of p)
              with
              | _ :: _ ->
                  findings :=
                    Report.make ~kind:Report.Invalid_free ~fn_id:body.Mir.fn_id
                      ~span:s.Mir.s_span
                      "assignment through raw pointer drops the previous value, but the pointed-to allocation is uninitialized: freeing garbage field pointers"
                    :: !findings
              | [] -> ())
          | Mir.Assign (p, _) ->
              List.iter
                (fun h -> Hashtbl.replace initialized h ())
                (heap_sites_of p)
          | _ -> ())
        blk.Mir.stmts;
      match blk.Mir.term with
      | Mir.Call ({ Mir.callee = Mir.Builtin (Mir.PtrWrite | Mir.PtrCopy); args; _ }, _)
        -> (
          match args with
          | (Mir.Copy p | Mir.Move p) :: _ ->
              LocSet.iter
                (function
                  | Loc.LHeap h -> Hashtbl.replace initialized h ()
                  | _ -> ())
                (Analysis.Pointsto.of_local pts p.Mir.base)
          | _ -> ())
      | _ -> ())
    body.Mir.blocks;
  !findings

let run_body (body : Mir.body) : Report.finding list =
  check_body (Analysis.Pointsto.analyze body) body

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  List.concat_map
    (fun b -> check_body (Analysis.Cache.pointsto ctx b) b @ Uninit.uninit_drop b)
    (Mir.body_list (Analysis.Cache.program ctx))

let run (program : Mir.program) : Report.finding list =
  run_ctx (Analysis.Cache.create program)
