(** Interior-mutability/Sync misuse detector (paper §7.2, Suggestion 8):
    a type with an (unsafe) [Sync] impl whose [&self] methods write
    through raw-pointer casts of [self] or mutate [Cell] fields without
    synchronization — the Fig. 4 [TestCell] pattern. *)

open Ir

val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
