(** Uninitialized-read detector: reads through pointers into
    never-written allocations, reads of [mem::uninitialized] values,
    and the paper's dominant shape — [Vec::with_capacity] + [set_len]
    with no element writes, read later from safe code. *)

open Ir

val run_body : Mir.body -> Report.finding list

val set_len_reads : Mir.body -> Report.finding list
(** The set_len-without-writes pattern alone. *)

val uninit_drop : Mir.body -> Report.finding list
(** Drops of never-initialized [mem::uninitialized] values — an
    invalid-free shape, re-exported through {!Invalid_free.run}. *)

val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
