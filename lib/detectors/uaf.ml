(** Use-after-free detector (the paper's §7.1 static checker).

    Per the paper: "Our detector maintains the state of each variable
    (alive or dead) by monitoring when MIR calls StorageLive or
    StorageDead on the variable. For each pointer/reference, we conduct
    a points-to analysis [...]. When a pointer/reference is
    dereferenced, our tool checks if the object it points to is dead
    and reports a bug if so." Interprocedural coverage comes from
    deref-parameter summaries; external (FFI) callees are assumed to
    dereference their pointer arguments, which is what the CVE bug of
    Fig. 7 does. *)

open Ir
module IntSet = Analysis.Dataflow.IntSet
module Flow = Analysis.Dataflow.IntSetFlow
module Loc = Analysis.Pointsto.Loc
module LocSet = Analysis.Pointsto.LocSet

(* ------------------------------------------------------------------ *)
(* Deref-parameter summaries                                           *)
(* ------------------------------------------------------------------ *)

(* summary f = set of parameter indices that f (transitively)
   dereferences. *)
type summaries = (string, IntSet.t) Hashtbl.t

let place_derefs_base (p : Mir.place) =
  match p.Mir.proj with Mir.Deref :: _ -> true | _ -> false

let param_of_place (body : Mir.body) (p : Mir.place) =
  if p.Mir.base < body.Mir.arg_count then Some p.Mir.base else None

let operand_place = function
  | Mir.Copy p | Mir.Move p -> Some p
  | Mir.Const _ -> None

(* One pass over a body: parameter indices dereferenced directly, plus
   (callee, arg index -> param index) obligations.
   [assume_extern_derefs] is the paper's interprocedural assumption that
   FFI callees dereference their pointer arguments; turning it off
   removes the evaluation's three false positives but also misses the
   Fig. 7 CVE (the ablation bench measures both sides). *)
let direct_derefs ?(assume_extern_derefs = true)
    (aliases : Analysis.Alias.resolution Lazy.t) (body : Mir.body) :
    IntSet.t * (string * int * int) list =
  let direct = ref IntSet.empty in
  let oblig = ref [] in
  let note_place (p : Mir.place) =
    if place_derefs_base p then begin
      match
        (Analysis.Alias.path_of (Lazy.force aliases) p.Mir.base)
          .Analysis.Alias.root
      with
      | Analysis.Alias.Param i -> direct := IntSet.add i !direct
      | _ -> ()
    end
  in
  let note_operand op = Option.iter note_place (operand_place op) in
  let note_rvalue = function
    | Mir.Use op | Mir.Cast (op, _) | Mir.UnaryOp (_, op) -> note_operand op
    | Mir.BinaryOp (_, a, b) ->
        note_operand a;
        note_operand b
    | Mir.Aggregate (_, ops) -> List.iter note_operand ops
    | Mir.Ref (_, p) | Mir.AddrOf (_, p) ->
        (* borrowing a field through a deref of a param still reads it *)
        note_place p
    | Mir.Discriminant p -> note_place p
    | Mir.Alloc _ -> ()
  in
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Assign (dest, rv) ->
              note_place dest;
              note_rvalue rv
          | Mir.Drop p -> note_place p
          | _ -> ())
        blk.Mir.stmts;
      match blk.Mir.term with
      | Mir.Call (c, _) -> (
          List.iter note_operand c.Mir.args;
          let callee_id =
            match c.Mir.callee with
            | Mir.Fn f -> Some f
            | Mir.Method (h, m) -> Some (h ^ "::" ^ m)
            | Mir.ClosureCall id -> Some id
            | Mir.Builtin (Mir.PtrRead | Mir.PtrWrite | Mir.PtrCopy) ->
                (* these deref their first pointer arg *)
                (match c.Mir.args with
                | op :: _ -> (
                    match operand_place op with
                    | Some p -> (
                        match
                          (Analysis.Alias.path_of (Lazy.force aliases)
                             p.Mir.base)
                            .Analysis.Alias.root
                        with
                        | Analysis.Alias.Param i ->
                            direct := IntSet.add i !direct
                        | _ -> ())
                    | None -> ())
                | [] -> ());
                None
            | Mir.Builtin (Mir.Extern _) when assume_extern_derefs ->
                (* assume FFI dereferences pointer args *)
                List.iteri
                  (fun _ op ->
                    match operand_place op with
                    | Some p
                      when Sema.Ty.is_raw_ptr (Mir.local_ty body p.Mir.base) -> (
                        match
                          (Analysis.Alias.path_of (Lazy.force aliases)
                             p.Mir.base)
                            .Analysis.Alias.root
                        with
                        | Analysis.Alias.Param i ->
                            direct := IntSet.add i !direct
                        | _ -> ())
                    | _ -> ())
                  c.Mir.args;
                None
            | Mir.Builtin _ -> None
          in
          match callee_id with
          | Some f ->
              List.iteri
                (fun ai op ->
                  match operand_place op with
                  | Some p when Mir.place_is_local p -> (
                      match param_of_place body p with
                      | Some pi -> oblig := (f, ai, pi) :: !oblig
                      | None -> ())
                  | _ -> ())
                c.Mir.args
          | None -> ())
      | _ -> ())
    body.Mir.blocks;
  (!direct, !oblig)

(* Memoised [direct_derefs], one slot per extern-assumption flag (the
   ablation bench runs both settings over one context). Aliases are
   forced only when the body actually dereferences something (or passes
   raw pointers to FFI) — most bodies never pay for alias resolution
   here. *)
let derefs_key_extern : (IntSet.t * (string * int * int) list) Analysis.Cache.Ext.key =
  Analysis.Cache.Ext.create ()

let derefs_key_no_extern :
    (IntSet.t * (string * int * int) list) Analysis.Cache.Ext.key =
  Analysis.Cache.Ext.create ()

let derefs_of ~assume_extern_derefs (ctx : Analysis.Cache.t) (body : Mir.body)
    : IntSet.t * (string * int * int) list =
  let key = if assume_extern_derefs then derefs_key_extern else derefs_key_no_extern in
  Analysis.Cache.ext ctx key body ~compute:(fun (b : Mir.body) ->
      direct_derefs ~assume_extern_derefs (lazy (Analysis.Cache.aliases ctx b)) b)

(* Recompute one function's deref-parameter set from its direct derefs
   plus its callees' current summaries. Shared by the legacy replay
   fixpoint and the SCC-scheduled engine: the transfer is monotone with
   a unique least fixpoint, so both modes converge to the same sets.
   [lookup] returning [None] means "no parameter dereferenced" (bottom),
   matching the replay table's membership test. *)
let summary_of_body ~assume_extern_derefs
    ~(lookup : string -> IntSet.t option) (ctx : Analysis.Cache.t)
    (body : Mir.body) : IntSet.t =
  let direct, oblig = derefs_of ~assume_extern_derefs ctx body in
  List.fold_left
    (fun acc (callee, ai, pi) ->
      match lookup callee with
      | Some cs when IntSet.mem ai cs -> IntSet.add pi acc
      | _ -> acc)
    direct oblig

(* Replay mode: the legacy whole-program fixpoint, kept behind
   [--interproc=replay] for differential testing. *)
let compute_summaries ?(assume_extern_derefs = true) (ctx : Analysis.Cache.t)
    : summaries =
  let tbl : summaries = Hashtbl.create 16 in
  let bodies = Mir.body_list (Analysis.Cache.program ctx) in
  List.iter
    (fun (b : Mir.body) ->
      Hashtbl.replace tbl b.Mir.fn_id
        (fst (derefs_of ~assume_extern_derefs ctx b)))
    bodies;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Mir.body) ->
        let cur = Hashtbl.find tbl b.Mir.fn_id in
        let next =
          summary_of_body ~assume_extern_derefs
            ~lookup:(Hashtbl.find_opt tbl) ctx b
        in
        if not (IntSet.equal cur next) then begin
          Hashtbl.replace tbl b.Mir.fn_id next;
          changed := true
        end)
      bodies
  done;
  tbl

(* Summary mode: the SCC-scheduled bottom-up engine, one store slot per
   extern-assumption flag (the flag changes the summaries, so it is
   both a distinct typed key and part of the content address). *)
let summary_skey_extern : IntSet.t array Analysis.Cache.Ext.key =
  Analysis.Cache.Ext.create ()

let summary_skey_no_extern : IntSet.t array Analysis.Cache.Ext.key =
  Analysis.Cache.Ext.create ()

let summary_tbl_key_extern : summaries Analysis.Cache.Ext.key =
  Analysis.Cache.Ext.create ()

let summary_tbl_key_no_extern : summaries Analysis.Cache.Ext.key =
  Analysis.Cache.Ext.create ()

let summary_client ~assume_extern_derefs ctx : IntSet.t Analysis.Summary.client
    =
  {
    Analysis.Summary.name = "uaf";
    params = Printf.sprintf "extern_derefs=%b" assume_extern_derefs;
    skey =
      (if assume_extern_derefs then summary_skey_extern
       else summary_skey_no_extern);
    equal = IntSet.equal;
    compute =
      (fun ~lookup body ->
        summary_of_body ~assume_extern_derefs ~lookup ctx body);
  }

let engine_summaries ?domains ~assume_extern_derefs (ctx : Analysis.Cache.t) :
    summaries =
  let tbl_key =
    if assume_extern_derefs then summary_tbl_key_extern
    else summary_tbl_key_no_extern
  in
  Analysis.Cache.ext_program ctx tbl_key ~compute:(fun () ->
      Analysis.Summary.compute ?domains ctx
        (summary_client ~assume_extern_derefs ctx))

(* ------------------------------------------------------------------ *)
(* The detector                                                        *)
(* ------------------------------------------------------------------ *)

let callee_derefs_arg ?(assume_extern_derefs = true) (summaries : summaries)
    (callee : Mir.callee) ai arg_ty =
  match callee with
  | Mir.Builtin (Mir.PtrRead | Mir.PtrWrite | Mir.PtrCopy) -> ai = 0 || ai = 1
  | Mir.Builtin (Mir.Extern _) ->
      assume_extern_derefs && Sema.Ty.is_raw_ptr arg_ty
  | Mir.Fn f | Mir.ClosureCall f -> (
      match Hashtbl.find_opt summaries f with
      | Some s when IntSet.mem ai s ->
          Analysis.Summary.note_instantiated "uaf";
          true
      | _ -> false)
  | Mir.Method (h, m) -> (
      match Hashtbl.find_opt summaries (h ^ "::" ^ m) with
      | Some s when IntSet.mem ai s ->
          Analysis.Summary.note_instantiated "uaf";
          true
      | _ -> false)
  | Mir.Builtin _ -> false

let check_body ?(assume_extern_derefs = true) (ctx : Analysis.Cache.t)
    (summaries : summaries) (body : Mir.body) : Report.finding list =
  (* Every check below fires only on a dereference of a raw-pointer- or
     reference-typed base, so a body without a single pointer-typed
     local cannot report — skip it before paying for its points-to and
     storage analyses. *)
  if
    not
      (Array.exists
         (fun (li : Mir.local_info) ->
           Sema.Ty.is_raw_ptr li.Mir.l_ty || Sema.Ty.is_ref li.Mir.l_ty)
         body.Mir.locals)
  then []
  else begin
  let pts = Analysis.Cache.pointsto ctx body in
  let invalid = Analysis.Cache.storage ctx body in
  let findings = ref [] in
  (* the replay honours the same wall-clock budget as the fixpoints:
     one deadline poll per block, stop scanning (and report W0402 —
     findings then cover a prefix of the body) once it expires *)
  let dl = Support.Deadline.token () in
  let stopped = ref false in
  let block_budget_ok () =
    if !stopped then false
    else if Support.Deadline.expired dl then begin
      stopped := true;
      false
    end
    else true
  in
  let report ~span ~target l =
    let name =
      match body.Mir.locals.(target).Mir.l_name with
      | Some n -> n
      | None -> Printf.sprintf "_%d" target
    in
    findings :=
      Report.make ~kind:Report.Use_after_free ~fn_id:body.Mir.fn_id ~span
        ~related_span:body.Mir.locals.(target).Mir.l_span
        "pointer `_%d` dereferenced after the object `%s` it points to was dropped or went out of scope"
        l name
      :: !findings
  in
  if Array.length body.Mir.locals <= Support.Bitset.word_bits then begin
    (* ---- word kernel path (every realistic body): the invalid-set is
       replayed as one unboxed machine word, and the dead-pointee test
       is a single [land] against the first word of the points-to set —
       interned pointee ids below the local count are exactly the
       [LLocal] ids, so the intersection keeps only dead locals. The
       reported pointee is the max id, matching the element the
       original LocSet-fold formulation surfaced first. *)
    let dead_pointee (state : int) (l : Mir.local) : Mir.local option =
      let d =
        state land Support.Bitset.word0 (Analysis.Pointsto.pointee_bits pts l)
      in
      if d = 0 then None else Some (Support.Bitset.msb d)
    in
    (* test the projection first: almost no places project through a
       Deref, and the type lookups are the expensive half of the test *)
    let check_place state span (p : Mir.place) =
      match p.Mir.proj with
      | Mir.Deref :: _ -> (
          let base_ty = Mir.local_ty body p.Mir.base in
          if Sema.Ty.is_raw_ptr base_ty || Sema.Ty.is_ref base_ty then
            match dead_pointee state p.Mir.base with
            | Some tgt -> report ~span ~target:tgt p.Mir.base
            | None -> ())
      | _ -> ()
    in
    let check_operand state span op =
      match op with
      | Mir.Copy p | Mir.Move p -> check_place state span p
      | Mir.Const _ -> ()
    in
    let check_stmt state (s : Mir.stmt) =
      match s.Mir.kind with
      | Mir.Assign (dest, rv) -> (
          let s_span = s.Mir.s_span in
          check_place state s_span dest;
          match rv with
          | Mir.Use op | Mir.Cast (op, _) | Mir.UnaryOp (_, op) ->
              check_operand state s_span op
          | Mir.BinaryOp (_, a, b) ->
              check_operand state s_span a;
              check_operand state s_span b
          | Mir.Aggregate (_, ops) ->
              List.iter (check_operand state s_span) ops
          | Mir.Ref (_, p) | Mir.AddrOf (_, p) ->
              if List.mem Mir.Deref p.Mir.proj then check_place state s_span p
          | Mir.Discriminant _ | Mir.Alloc _ -> ())
      | _ -> ()
    in
    let check_term state (t : Mir.terminator) =
      match t with
      | Mir.Call (c, _) ->
          List.iteri
            (fun ai op ->
              match op with
              | Mir.Copy p | Mir.Move p ->
                  check_place state c.Mir.call_span p;
                  (* passing a pointer to dead memory into a callee
                     that dereferences it *)
                  if
                    Mir.place_is_local p
                    && Sema.Ty.is_raw_ptr (Mir.local_ty body p.Mir.base)
                    && callee_derefs_arg ~assume_extern_derefs summaries
                         c.Mir.callee ai
                         (Mir.local_ty body p.Mir.base)
                  then begin
                    match dead_pointee state p.Mir.base with
                    | Some tgt ->
                        report ~span:c.Mir.call_span ~target:tgt p.Mir.base
                    | None -> ()
                  end
              | Mir.Const _ -> ())
            c.Mir.args
      | _ -> ()
    in
    (* skip blocks that cannot report: the transfers only *add* locals
       (at StorageDead and Drop), so a block with an empty entry word
       and neither statement kind keeps an empty state throughout *)
    Array.iteri
      (fun i (blk : Mir.block) ->
        let entry = Support.Bitset.word0 invalid.Flow.entry.(i) in
        if
          block_budget_ok ()
          && (entry <> 0
             || List.exists
                  (fun (s : Mir.stmt) ->
                    match s.Mir.kind with
                    | Mir.StorageDead _ | Mir.Drop _ -> true
                    | _ -> false)
                  blk.Mir.stmts)
        then begin
          let state = ref entry in
          List.iter
            (fun s ->
              check_stmt !state s;
              state := Analysis.Storage.word_stmt !state s)
            blk.Mir.stmts;
          check_term !state blk.Mir.term
        end)
      body.Mir.blocks
  end
  else begin
  (* ---- generic bitset path (bodies with more locals than fit one
     word); must mirror the word path above — the kernel differential
     tests hold the two to the same findings *)
  let dead_pointee (state : IntSet.t) (l : Mir.local) : Mir.local option =
    Support.Bitset.max_elt_opt
      (Support.Bitset.inter state (Analysis.Pointsto.pointee_bits pts l))
  in
  let check_place state span (p : Mir.place) =
    match p.Mir.proj with
    | Mir.Deref :: _ -> (
        let base_ty = Mir.local_ty body p.Mir.base in
        if Sema.Ty.is_raw_ptr base_ty || Sema.Ty.is_ref base_ty then
          match dead_pointee state p.Mir.base with
          | Some tgt -> report ~span ~target:tgt p.Mir.base
          | None -> ())
    | _ -> ()
  in
  let check_operand state span op =
    match op with
    | Mir.Copy p | Mir.Move p -> check_place state span p
    | Mir.Const _ -> ()
  in
  let check_stmt state (s : Mir.stmt) =
    match s.Mir.kind with
    | Mir.Assign (dest, rv) -> (
        let s_span = s.Mir.s_span in
        check_place state s_span dest;
        match rv with
        | Mir.Use op | Mir.Cast (op, _) | Mir.UnaryOp (_, op) ->
            check_operand state s_span op
        | Mir.BinaryOp (_, a, b) ->
            check_operand state s_span a;
            check_operand state s_span b
        | Mir.Aggregate (_, ops) -> List.iter (check_operand state s_span) ops
        | Mir.Ref (_, p) | Mir.AddrOf (_, p) ->
            if List.mem Mir.Deref p.Mir.proj then check_place state s_span p
        | Mir.Discriminant _ | Mir.Alloc _ -> ())
    | _ -> ()
  in
  let check_term state (t : Mir.terminator) =
    match t with
    | Mir.Call (c, _) ->
        List.iteri
          (fun ai op ->
            match op with
            | Mir.Copy p | Mir.Move p ->
                check_place state c.Mir.call_span p;
                (* passing a pointer to dead memory into a callee that
                   dereferences it *)
                if
                  Mir.place_is_local p
                  && Sema.Ty.is_raw_ptr (Mir.local_ty body p.Mir.base)
                  && callee_derefs_arg ~assume_extern_derefs summaries
                       c.Mir.callee ai
                       (Mir.local_ty body p.Mir.base)
                then begin
                  match dead_pointee state p.Mir.base with
                  | Some tgt ->
                      report ~span:c.Mir.call_span ~target:tgt p.Mir.base
                  | None -> ()
                end
            | Mir.Const _ -> ())
          c.Mir.args
    | _ -> ()
  in
  (* Replay the invalid-set through each block — but skip blocks that
     cannot report: the transfers only *add* locals (at StorageDead and
     Drop), so a block with an empty entry set and neither statement
     kind keeps an empty state throughout, and no dereference in it can
     see a dead pointee. *)
  Array.iteri
    (fun i (blk : Mir.block) ->
      let entry = invalid.Flow.entry.(i) in
      if
        block_budget_ok ()
        && ((not (IntSet.is_empty entry))
           || List.exists
                (fun (s : Mir.stmt) ->
                  match s.Mir.kind with
                  | Mir.StorageDead _ | Mir.Drop _ -> true
                  | _ -> false)
                blk.Mir.stmts)
      then begin
        let state = ref entry in
        List.iter
          (fun s ->
            check_stmt !state s;
            state := Analysis.Storage.transfer_stmt !state s)
          blk.Mir.stmts;
        check_term !state blk.Mir.term
      end)
    body.Mir.blocks
  end;
  if !stopped then
    Analysis.Cache.deadline_warning ctx body.Mir.fn_id "use-after-free replay";
  !findings
  end

(** Run the use-after-free detector with a shared analysis context.
    [?mode] picks the SCC-scheduled summary engine vs the legacy replay
    fixpoint (defaults to [Analysis.Summary.default_mode ()]); both
    converge to the same least fixpoint, so the findings agree. *)
let run_ctx ?(assume_extern_derefs = true) ?mode (ctx : Analysis.Cache.t) :
    Report.finding list =
  let summaries =
    match Analysis.Summary.resolve_mode mode with
    | Analysis.Summary.Summary -> engine_summaries ~assume_extern_derefs ctx
    | Analysis.Summary.Replay -> compute_summaries ~assume_extern_derefs ctx
  in
  List.concat_map
    (check_body ~assume_extern_derefs ctx summaries)
    (Mir.body_list (Analysis.Cache.program ctx))

(** Run the use-after-free detector over a whole program. *)
let run ?assume_extern_derefs ?mode (program : Mir.program) :
    Report.finding list =
  run_ctx ?assume_extern_derefs ?mode (Analysis.Cache.create program)
