(** Entry points running detector groups, matching the paper's taxonomy.

    The [_ctx] variants take a shared {!Analysis.Cache.t} so the
    per-body analyses (alias, points-to, liveness) and the call graph
    are computed at most once across every detector in the group. The
    [program]-taking entry points are compatibility wrappers that build
    one cache internally per call. *)

open Ir

val memory_ctx : Analysis.Cache.t -> Report.finding list
val blocking_ctx : Analysis.Cache.t -> Report.finding list
val non_blocking_ctx : Analysis.Cache.t -> Report.finding list
val compiler_checks_ctx : Analysis.Cache.t -> Report.finding list
val bugs_ctx : Analysis.Cache.t -> Report.finding list
val all_ctx : Analysis.Cache.t -> Report.finding list

val memory : Mir.program -> Report.finding list
(** §5: use-after-free, double-free, invalid-free, uninitialized read,
    null dereference, buffer overflow. *)

val blocking : Mir.program -> Report.finding list
(** §6.1: double lock, conflicting lock order, Condvar lost wakeup,
    channel deadlock, Once recursion. *)

val non_blocking : Mir.program -> Report.finding list
(** §6.2: Sync misuse, atomic and lock-session atomicity violations,
    RefCell double borrows. *)

val compiler_checks : Mir.program -> Report.finding list
(** The borrow-checker model: what rustc rejects at compile time. *)

val bugs : Mir.program -> Report.finding list
(** All runtime-bug detectors (memory + blocking + non-blocking). *)

val all : Mir.program -> Report.finding list
(** Everything, including the compiler-model checks. *)
