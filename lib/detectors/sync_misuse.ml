(** Interior-mutability / Sync misuse detector (paper §7.2, Suggestion 8):
    "When a struct is sharable (e.g., implementing the Sync trait) and
    has a method immutably borrowing self, we can analyze whether self
    is modified in the method and whether the modification is
    unsynchronized."

    Unsynchronized means: writes through a raw-pointer cast of [&self]
    (the Fig. 4 [TestCell] pattern), [Cell::set] on a field (Cell is not
    thread-safe), or [UnsafeCell] access — as opposed to writes through
    a [MutexGuard]/atomic, which are fine. *)

open Ir

let is_guard_base (body : Mir.body) (p : Mir.place) =
  Sema.Ty.is_lock_guard (Mir.local_ty body p.Mir.base)
  || Sema.Ty.is_refcell_guard (Mir.local_ty body p.Mir.base)

let run_with (aliases_of : Mir.body -> Analysis.Alias.resolution)
    (program : Mir.program) : Report.finding list =
  let env = program.Mir.prog_env in
  let sync_types = List.map fst env.Sema.Env.sync_impls in
  let findings = ref [] in
  List.iter
    (fun (body : Mir.body) ->
      (* methods Type::name on a Sync type, taking &self *)
      match String.index_opt body.Mir.fn_id ':' with
      | Some i when i + 1 < String.length body.Mir.fn_id ->
          let type_head = String.sub body.Mir.fn_id 0 i in
          if List.mem type_head sync_types && Array.length body.Mir.locals > 0
          then begin
            let self_ty = body.Mir.locals.(0).Mir.l_ty in
            let self_is_shared_ref =
              match self_ty with
              | Sema.Ty.Ref (Sema.Ty.Imm, _) -> true
              | _ -> false
            in
            if self_is_shared_ref then begin
              let aliases = aliases_of body in
              let rooted_at_self (p : Mir.place) =
                (Analysis.Alias.path_of_place aliases p).Analysis.Alias.root
                = Analysis.Alias.Param 0
              in
              Array.iter
                (fun (blk : Mir.block) ->
                  List.iter
                    (fun (s : Mir.stmt) ->
                      match s.Mir.kind with
                      | Mir.Assign (dest, _)
                        when List.mem Mir.Deref dest.Mir.proj
                             && rooted_at_self dest
                             && Sema.Ty.is_raw_ptr
                                  (Mir.local_ty body dest.Mir.base)
                             && not (is_guard_base body dest) ->
                          findings :=
                            Report.make ~kind:Report.Sync_unsync_write
                              ~fn_id:body.Mir.fn_id ~span:s.Mir.s_span
                              "`%s` is Sync, but this &self method writes through a raw pointer into self without synchronization"
                              type_head
                            :: !findings
                      | _ -> ())
                    blk.Mir.stmts;
                  match blk.Mir.term with
                  | Mir.Call ({ Mir.callee = Mir.Builtin Mir.CellSet; args; call_span; _ }, _)
                    -> (
                      match args with
                      | (Mir.Copy p | Mir.Move p) :: _ when rooted_at_self p ->
                          findings :=
                            Report.make ~kind:Report.Sync_unsync_write
                              ~fn_id:body.Mir.fn_id ~span:call_span
                              "`%s` is Sync but mutates a Cell field; Cell is not thread-safe"
                              type_head
                            :: !findings
                      | _ -> ())
                  | Mir.Call ({ Mir.callee = Mir.Builtin Mir.PtrWrite; args; call_span; _ }, _)
                    -> (
                      match args with
                      | (Mir.Copy p | Mir.Move p) :: _ when rooted_at_self p ->
                          findings :=
                            Report.make ~kind:Report.Sync_unsync_write
                              ~fn_id:body.Mir.fn_id ~span:call_span
                              "`%s` is Sync, but this &self method ptr::writes into self without synchronization"
                              type_head
                            :: !findings
                      | _ -> ())
                  | _ -> ())
                body.Mir.blocks
            end
          end
      | _ -> ())
    (Mir.body_list program);
  !findings

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  run_with (Analysis.Cache.aliases ctx) (Analysis.Cache.program ctx)

let run (program : Mir.program) : Report.finding list =
  run_with Analysis.Alias.resolve program
