(** Conflicting-lock-order (ABBA deadlock) detector: builds a lock-order
    graph from "A held while acquiring B" pairs, with closure-capture
    substitution so two threads locking the same two objects in opposite
    orders are recognized, and reports any cycle. *)

open Ir

type edge = {
  from_root : string;
  to_root : string;
  in_fn : string;
  site : Support.Span.t;
}

val substituted_pairs : Mir.program -> edge list
val substituted_pairs_ctx : Analysis.Cache.t -> edge list
val find_cycle : edge list -> edge list
val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
