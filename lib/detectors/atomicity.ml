(** Atomicity-violation detector for atomics (the paper's Fig. 9
    Ethereum bug): a check-then-act sequence — load an atomic, branch on
    it, store to the same atomic — in code reachable by multiple
    threads is not atomic; the fix is a compare_and_swap. The detector
    flags bodies that both load and store the same atomic without any
    CAS/fetch-op on it. *)

open Ir

type site = { span : Support.Span.t }

let check_body (aliases : Analysis.Alias.resolution) (body : Mir.body) :
    Report.finding list =
  let loads = Hashtbl.create 4 in
  let stores = Hashtbl.create 4 in
  let rmws = Hashtbl.create 4 in
  Array.iter
    (fun (blk : Mir.block) ->
      match blk.Mir.term with
      | Mir.Call (c, _) -> (
          let root () =
            match c.Mir.args with
            | (Mir.Copy p | Mir.Move p) :: _ ->
                Analysis.Alias.to_string (Analysis.Alias.path_of_place aliases p)
            | _ -> "?"
          in
          match c.Mir.callee with
          | Mir.Builtin Mir.AtomicLoad ->
              Hashtbl.replace loads (root ()) { span = c.Mir.call_span }
          | Mir.Builtin Mir.AtomicStore ->
              Hashtbl.replace stores (root ()) { span = c.Mir.call_span }
          | Mir.Builtin (Mir.AtomicCas | Mir.AtomicFetch | Mir.AtomicSwap) ->
              Hashtbl.replace rmws (root ()) ()
          | _ -> ())
      | _ -> ())
    body.Mir.blocks;
  (* a branch between the load and the store is what makes the gap
     observable; require at least one SwitchInt in the body *)
  let has_branch =
    Array.exists
      (fun (blk : Mir.block) ->
        match blk.Mir.term with Mir.SwitchInt _ -> true | _ -> false)
      body.Mir.blocks
  in
  if not has_branch then []
  else
    Hashtbl.fold
      (fun root (load : site) acc ->
        match Hashtbl.find_opt stores root with
        | Some store when not (Hashtbl.mem rmws root) ->
            Report.make ~kind:Report.Atomicity_violation
              ~confidence:Report.Medium ~fn_id:body.Mir.fn_id ~span:store.span
              ~related_span:load.span
              "atomic `%s` is loaded, branched on, then stored: the check-then-act is not atomic (use compare_and_swap)"
              root
            :: acc
        | _ -> acc)
      loads []

let run_body (body : Mir.body) : Report.finding list =
  check_body (Analysis.Alias.resolve body) body

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  List.concat_map
    (fun b -> check_body (Analysis.Cache.aliases ctx b) b)
    (Mir.body_list (Analysis.Cache.program ctx))

let run (program : Mir.program) : Report.finding list =
  run_ctx (Analysis.Cache.create program)

(* ------------------------------------------------------------------ *)
(* Check-then-act across two critical sections of the same lock        *)
(* ------------------------------------------------------------------ *)

(** The dominant shape of the paper's Mutex-protected non-blocking
    bugs: a value is read under one critical section, the lock is
    released, and a second critical section acts on the stale value.
    Reported when the same lock is acquired twice in a body and the
    first guard is already dead at the second acquisition (overlapping
    guards are the double-lock detector's case, not ours). *)
let two_session_with
    ((locks, held) :
      Double_lock.body_locks * Analysis.Dataflow.IntSetFlow.result)
    (body : Mir.body) : Report.finding list =
  let module IntSet = Analysis.Dataflow.IntSet in
  let findings = ref [] in
  let seen_roots = Hashtbl.create 4 in
  Array.iteri
    (fun bi (blk : Mir.block) ->
      match Hashtbl.find_opt locks.Double_lock.acq_at_term bi with
      | Some id ->
          let acq = Hashtbl.find locks.Double_lock.acquisitions id in
          let root = acq.Double_lock.acq_root in
          if root.Analysis.Alias.root <> Analysis.Alias.Unknown_base then begin
            let key = Analysis.Alias.to_string root in
            (* state right before the terminator: apply the block's
               guard drops to the block-entry state *)
            let held_now =
              List.fold_left
                (fun st (s : Mir.stmt) ->
                  match s.Mir.kind with
                  | Mir.Drop p when Mir.place_is_local p -> (
                      match
                        Hashtbl.find_opt locks.Double_lock.holders p.Mir.base
                      with
                      | Some a -> IntSet.remove a st
                      | None -> st)
                  | _ -> st)
                held.Analysis.Dataflow.IntSetFlow.entry.(bi)
                blk.Mir.stmts
            in
            (match Hashtbl.find_opt seen_roots key with
            | Some (first_id, first_span)
              when first_id <> id && not (IntSet.mem first_id held_now) ->
                findings :=
                  Report.make ~kind:Report.Atomicity_violation
                    ~confidence:Report.Medium ~fn_id:body.Mir.fn_id
                    ~span:acq.Double_lock.acq_span ~related_span:first_span
                    "lock `%s` is released and re-acquired in the same operation: the check under the first critical section is stale by the second (atomicity violation)"
                    key
                  :: !findings
            | _ -> ());
            if not (Hashtbl.mem seen_roots key) then
              Hashtbl.replace seen_roots key (id, acq.Double_lock.acq_span)
          end
      | None -> ())
    body.Mir.blocks;
  !findings

let two_session (body : Mir.body) : Report.finding list =
  let aliases = Analysis.Alias.resolve body in
  let locks = Double_lock.collect_locks aliases body in
  two_session_with (locks, Double_lock.held_analysis body locks) body

let run_with_sessions_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  List.concat_map
    (fun b -> two_session_with (Double_lock.locks_of ctx b) b)
    (Mir.body_list (Analysis.Cache.program ctx))

let run_with_sessions (program : Mir.program) : Report.finding list =
  run_with_sessions_ctx (Analysis.Cache.create program)
