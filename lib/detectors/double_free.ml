(** Double-free detector.

    Two patterns from the paper's study:

    - [ptr::read] duplicates ownership: [t2 = ptr::read(&t1)] leaves
      both [t1] and [t2] owning the same heap data; unless one side is
      neutralized ([mem::forget], move, or overwrite via [ptr::write]),
      both drops free it twice.
    - [Box::from_raw]/[Arc::from_raw] called twice on the same raw
      pointer mints two owners of one allocation. *)

open Ir
module Loc = Analysis.Pointsto.Loc
module LocSet = Analysis.Pointsto.LocSet

let check_body (pts : Analysis.Pointsto.t) (body : Mir.body) :
    Report.finding list =
  let findings = ref [] in
  let forgotten = Hashtbl.create 4 in
  (* locals passed to mem::forget or overwritten by ptr::write *)
  Array.iter
    (fun (blk : Mir.block) ->
      match blk.Mir.term with
      | Mir.Call ({ Mir.callee = Mir.Builtin Mir.MemForget; args; _ }, _) ->
          List.iter
            (function
              | Mir.Copy p | Mir.Move p when Mir.place_is_local p ->
                  Hashtbl.replace forgotten p.Mir.base ()
              | _ -> ())
            args
      | Mir.Call ({ Mir.callee = Mir.Builtin Mir.PtrWrite; args; _ }, _) -> (
          (* writing through a pointer to a local overwrites (re-inits)
             it without dropping: treated as neutralizing the source *)
          match args with
          | (Mir.Copy p | Mir.Move p) :: _ ->
              LocSet.iter
                (function
                  | Loc.LLocal l -> Hashtbl.replace forgotten l ()
                  | _ -> ())
                (Analysis.Pointsto.of_local pts p.Mir.base)
          | _ -> ())
      | _ -> ())
    body.Mir.blocks;
  (* dropped locals *)
  let dropped = Hashtbl.create 8 in
  (* forward copy edges so a value moved out of a call temp into a user
     local still counts as "this result gets dropped" *)
  let copy_edges = Hashtbl.create 8 in
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Drop p when Mir.place_is_local p ->
              Hashtbl.replace dropped p.Mir.base s.Mir.s_span
          | Mir.Assign (dest, Mir.Use (Mir.Copy p | Mir.Move p))
            when Mir.place_is_local dest && Mir.place_is_local p ->
              Hashtbl.add copy_edges p.Mir.base dest.Mir.base
          | _ -> ())
        blk.Mir.stmts)
    body.Mir.blocks;
  (* is l (or any local its value flows to) dropped? returns the span *)
  let rec flows_to_drop seen l =
    if List.mem l seen then None
    else
      match Hashtbl.find_opt dropped l with
      | Some span -> Some span
      | None ->
          List.fold_left
            (fun acc l2 ->
              match acc with
              | Some _ -> acc
              | None -> flows_to_drop (l :: seen) l2)
            None
            (Hashtbl.find_all copy_edges l)
  in
  (* pattern 1: ptr::read duplicating a still-owned local *)
  Array.iter
    (fun (blk : Mir.block) ->
      match blk.Mir.term with
      | Mir.Call
          ({ Mir.callee = Mir.Builtin Mir.PtrRead; args; dest; dest_ty; call_span; _ }, _)
        when Sema.Ty.needs_drop dest_ty -> (
          match args with
          | (Mir.Copy p | Mir.Move p) :: _ ->
              LocSet.iter
                (function
                  | Loc.LLocal src
                    when Hashtbl.mem dropped src
                         && (not (Hashtbl.mem forgotten src))
                         && Mir.place_is_local dest
                         && flows_to_drop [] dest.Mir.base <> None
                         && not (Hashtbl.mem forgotten dest.Mir.base) ->
                      (* the effect is the second implicit drop, which
                         happens in safe code at scope end *)
                      let drop_span =
                        Option.get (flows_to_drop [] dest.Mir.base)
                      in
                      findings :=
                        Report.make ~kind:Report.Double_free
                          ~fn_id:body.Mir.fn_id ~span:drop_span
                          ~related_span:call_span
                          "ptr::read duplicates ownership of `_%d`; both copies are dropped, freeing the same memory twice"
                          src
                        :: !findings
                  | _ -> ())
                (Analysis.Pointsto.of_local pts p.Mir.base)
          | _ -> ())
      | _ -> ())
    body.Mir.blocks;
  (* pattern 2: two from_raw on the same allocation *)
  let from_raw_sites = Hashtbl.create 4 in
  Array.iter
    (fun (blk : Mir.block) ->
      match blk.Mir.term with
      | Mir.Call ({ Mir.callee = Mir.Builtin Mir.FromRaw; args; call_span; _ }, _)
        -> (
          match args with
          | (Mir.Copy p | Mir.Move p) :: _ ->
              LocSet.iter
                (fun loc ->
                  match loc with
                  | Loc.LHeap _ | Loc.LLocal _ ->
                      let prev =
                        Option.value
                          (Hashtbl.find_opt from_raw_sites loc)
                          ~default:[]
                      in
                      Hashtbl.replace from_raw_sites loc (call_span :: prev)
                  | _ -> ())
                (Analysis.Pointsto.of_local pts p.Mir.base)
          | _ -> ())
      | _ -> ())
    body.Mir.blocks;
  Hashtbl.iter
    (fun _loc spans ->
      match spans with
      | s1 :: _ :: _ ->
          findings :=
            Report.make ~kind:Report.Double_free ~fn_id:body.Mir.fn_id ~span:s1
              "from_raw called more than once on the same raw pointer: two owners will both free the allocation"
            :: !findings
      | _ -> ())
    from_raw_sites;
  !findings

let run_body (body : Mir.body) : Report.finding list =
  check_body (Analysis.Pointsto.analyze body) body

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  List.concat_map
    (fun b -> check_body (Analysis.Cache.pointsto ctx b) b)
    (Mir.body_list (Analysis.Cache.program ctx))

let run (program : Mir.program) : Report.finding list =
  run_ctx (Analysis.Cache.create program)
