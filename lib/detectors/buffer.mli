(** Buffer-overflow detector (heuristic, Medium confidence): unchecked
    accesses ([get_unchecked], pointer-offset dereference,
    [copy_nonoverlapping]) in bodies that never compare anything
    against the container's length — the shape of 17 of the paper's 21
    buffer bugs, whose fixes add exactly such a check. *)

open Ir

val run_body : Mir.body -> Report.finding list
val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
