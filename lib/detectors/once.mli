(** [Once::call_once] recursion detector: the initialization closure
    (transitively) re-enters [call_once], which self-deadlocks. *)

open Ir

val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
