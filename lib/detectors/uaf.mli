(** Use-after-free detector — the paper's §7.1 static checker.

    Maintains the alive/dead state of every local by tracking
    [StorageLive]/[StorageDead]/[Drop] (via {!Analysis.Storage}), runs a
    may-points-to analysis per body, and reports any dereference of a
    pointer/reference whose pointee may be dead. Interprocedural
    coverage comes from deref-parameter summaries computed to fixpoint
    over the call graph. *)

open Ir

type summaries
(** Per-function sets of parameter indices that the function
    (transitively) dereferences. *)

val compute_summaries :
  ?assume_extern_derefs:bool -> Analysis.Cache.t -> summaries
(** Fixpoint deref-parameter summaries for a whole program.
    [assume_extern_derefs] (default [true]) is the paper's
    approximation that FFI callees dereference their raw-pointer
    arguments; it is the source of the evaluation's three false
    positives and also what catches the Fig. 7 CVE. *)

val check_body :
  ?assume_extern_derefs:bool ->
  Analysis.Cache.t ->
  summaries ->
  Mir.body ->
  Report.finding list
(** Run the detector on one body with precomputed summaries. *)

val run_ctx :
  ?assume_extern_derefs:bool ->
  ?mode:Analysis.Summary.mode ->
  Analysis.Cache.t ->
  Report.finding list
(** Run the detector through a shared analysis context. [?mode]
    (default [Analysis.Summary.default_mode ()]) picks the
    SCC-scheduled summary engine vs the legacy whole-program replay
    fixpoint; both converge to the same least fixpoint. *)

val run :
  ?assume_extern_derefs:bool ->
  ?mode:Analysis.Summary.mode ->
  Mir.program ->
  Report.finding list
(** Run the detector over every body of a program (private context). *)
