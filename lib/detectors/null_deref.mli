(** Null-pointer-dereference detector: forward may-null dataflow from
    [ptr::null]/[null_mut] through copies to dereference sites, with
    [is_null]-guarded pointers suppressed (the studied fixes add
    exactly that check). *)

open Ir

val run_body : Mir.body -> Report.finding list
val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
