(** Buffer-overflow detector (heuristic).

    The paper's dominant pattern (17/21 bugs): an index or size is
    computed in safe code and then used by an unchecked access in
    unsafe code. Precise range analysis is out of scope; the detector
    flags unchecked accesses ([get_unchecked], pointer-offset
    dereference, [copy_nonoverlapping]) in bodies that never compare
    anything against the container's [len()]/[capacity()] — the shape
    of every studied buggy site, whose fixes add exactly such a
    check. *)

open Ir

let has_len_guard (body : Mir.body) : bool =
  (* a VecLen result flowing into a comparison *)
  let len_dests = Hashtbl.create 4 in
  Array.iter
    (fun (blk : Mir.block) ->
      match blk.Mir.term with
      | Mir.Call ({ Mir.callee = Mir.Builtin Mir.VecLen; dest; _ }, _)
        when Mir.place_is_local dest ->
          Hashtbl.replace len_dests dest.Mir.base ()
      | _ -> ())
    body.Mir.blocks;
  let uses_len = function
    | (Mir.Copy p | Mir.Move p) when Mir.place_is_local p ->
        Hashtbl.mem len_dests p.Mir.base
    | _ -> false
  in
  (* propagate one level through copies *)
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Assign (dest, Mir.Use op)
            when Mir.place_is_local dest && uses_len op ->
              Hashtbl.replace len_dests dest.Mir.base ()
          | _ -> ())
        blk.Mir.stmts)
    body.Mir.blocks;
  Array.exists
    (fun (blk : Mir.block) ->
      List.exists
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Assign
              (_, Mir.BinaryOp ((Syntax.Ast.Lt | Syntax.Ast.Le | Syntax.Ast.Gt | Syntax.Ast.Ge | Syntax.Ast.Eq | Syntax.Ast.Ne), a, b)) ->
              uses_len a || uses_len b
          | _ -> false)
        blk.Mir.stmts)
    body.Mir.blocks

let run_body (body : Mir.body) : Report.finding list =
  let guarded = has_len_guard body in
  if guarded then []
  else begin
    let findings = ref [] in
    (* pointers derived from offset arithmetic *)
    let offset_ptrs = Hashtbl.create 4 in
    Array.iter
      (fun (blk : Mir.block) ->
        match blk.Mir.term with
        | Mir.Call ({ Mir.callee = Mir.Builtin Mir.PtrOffset; dest; _ }, _)
          when Mir.place_is_local dest ->
            Hashtbl.replace offset_ptrs dest.Mir.base ()
        | _ -> ())
      body.Mir.blocks;
    (* propagate through copies (fixpoint; chains are short) *)
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun (blk : Mir.block) ->
          List.iter
            (fun (s : Mir.stmt) ->
              match s.Mir.kind with
              | Mir.Assign (dest, Mir.Use (Mir.Copy p | Mir.Move p))
                when Mir.place_is_local dest && Mir.place_is_local p
                     && Hashtbl.mem offset_ptrs p.Mir.base
                     && not (Hashtbl.mem offset_ptrs dest.Mir.base) ->
                  Hashtbl.replace offset_ptrs dest.Mir.base ();
                  changed := true
              | _ -> ())
            blk.Mir.stmts)
        body.Mir.blocks
    done;
    Array.iter
      (fun (blk : Mir.block) ->
        (match blk.Mir.term with
        | Mir.Call ({ Mir.callee = Mir.Builtin Mir.VecGetUnchecked; call_span; _ }, _)
          ->
            findings :=
              Report.make ~kind:Report.Buffer_overflow ~confidence:Report.Medium
                ~fn_id:body.Mir.fn_id ~span:call_span
                "get_unchecked with an index that is never compared against the container length"
              :: !findings
        | Mir.Call ({ Mir.callee = Mir.Builtin Mir.PtrCopy; call_span; _ }, _)
          ->
            findings :=
              Report.make ~kind:Report.Buffer_overflow ~confidence:Report.Medium
                ~fn_id:body.Mir.fn_id ~span:call_span
                "copy_nonoverlapping with a size that is never compared against the destination capacity"
              :: !findings
        | _ -> ());
        List.iter
          (fun (s : Mir.stmt) ->
            let deref_of_offset (p : Mir.place) =
              (match p.Mir.proj with Mir.Deref :: _ -> true | _ -> false)
              && Hashtbl.mem offset_ptrs p.Mir.base
            in
            match s.Mir.kind with
            | Mir.Assign (dest, rv) ->
                let check_place p =
                  if deref_of_offset p then
                    findings :=
                      Report.make ~kind:Report.Buffer_overflow
                        ~confidence:Report.Medium ~fn_id:body.Mir.fn_id
                        ~span:s.Mir.s_span
                        "dereference of pointer arithmetic with an unchecked offset"
                      :: !findings
                in
                check_place dest;
                (match rv with
                | Mir.Use (Mir.Copy p | Mir.Move p) -> check_place p
                | _ -> ())
            | _ -> ())
          blk.Mir.stmts)
      body.Mir.blocks;
    !findings
  end

let run (program : Mir.program) : Report.finding list =
  List.concat_map run_body (Mir.body_list program)

(* buffer-overflow uses no cached analyses; ctx entry point for
   uniformity *)
let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  run (Analysis.Cache.program ctx)
