(** Simplified borrow checker over MIR — the model of what the Rust
    compiler statically rejects (Fig. 3): use-after-move and
    simultaneous shared/mutable borrows. Findings represent compiler
    errors, not runtime bugs. *)

open Ir

val use_after_move : Mir.body -> Report.finding list
val borrow_conflicts : Mir.body -> Report.finding list
val run_body : Mir.body -> Report.finding list
val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
