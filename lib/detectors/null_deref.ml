(** Null-pointer-dereference detector: locals that may hold
    [ptr::null()]/[ptr::null_mut()] and are dereferenced (or passed to a
    dereferencing callee) without an intervening reassignment. All null
    dereferences in the paper's study occur in unsafe code. *)

open Ir
module IntSet = Analysis.Dataflow.IntSet
module Flow = Analysis.Dataflow.IntSetFlow

let run_body (body : Mir.body) : Report.finding list =
  (* forward may-null analysis over locals *)
  let null_call_dests = Hashtbl.create 4 in
  Array.iter
    (fun (blk : Mir.block) ->
      match blk.Mir.term with
      | Mir.Call ({ Mir.callee = Mir.Builtin Mir.PtrNull; dest; _ }, _)
        when Mir.place_is_local dest ->
          Hashtbl.replace null_call_dests dest.Mir.base ()
      | _ -> ())
    body.Mir.blocks;
  let transfer_stmt state (s : Mir.stmt) =
    match s.Mir.kind with
    | Mir.Assign (dest, rv) when Mir.place_is_local dest -> (
        let l = dest.Mir.base in
        match rv with
        | Mir.Use (Mir.Copy p | Mir.Move p)
        | Mir.Cast ((Mir.Copy p | Mir.Move p), _)
          when Mir.place_is_local p && IntSet.mem p.Mir.base state ->
            IntSet.add l state
        | Mir.Cast (Mir.Const (Mir.Cint 0), _) -> IntSet.add l state
        | _ -> IntSet.remove l state)
    | _ -> state
  in
  let transfer_term state = function
    | Mir.Call (c, _) when Mir.place_is_local c.Mir.dest ->
        if Hashtbl.mem null_call_dests c.Mir.dest.Mir.base then
          IntSet.add c.Mir.dest.Mir.base state
        else IntSet.remove c.Mir.dest.Mir.base state
    | _ -> state
  in
  let result = Flow.run body ~init:IntSet.empty ~transfer_stmt ~transfer_term in
  (* conditionally-skipped code: a body that checks is_null on a pointer
     is treated as guarded for that pointer (the studied fixes add
     exactly this check) *)
  let copies = Hashtbl.create 8 in
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Assign (dest, Mir.Use (Mir.Copy p | Mir.Move p))
            when Mir.place_is_local dest && Mir.place_is_local p ->
              Hashtbl.add copies dest.Mir.base p.Mir.base
          | _ -> ())
        blk.Mir.stmts)
    body.Mir.blocks;
  let rec canon seen l =
    if List.mem l seen then l
    else
      match Hashtbl.find_opt copies l with
      | Some src -> canon (l :: seen) src
      | None -> l
  in
  let null_checked = Hashtbl.create 4 in
  Array.iter
    (fun (blk : Mir.block) ->
      match blk.Mir.term with
      | Mir.Call ({ Mir.callee = Mir.Builtin (Mir.Pure "is_null"); args; _ }, _)
        -> (
          match args with
          | (Mir.Copy p | Mir.Move p) :: _ when Mir.place_is_local p ->
              Hashtbl.replace null_checked (canon [] p.Mir.base) ()
          | _ -> ())
      | _ -> ())
    body.Mir.blocks;
  let guarded l = Hashtbl.mem null_checked (canon [] l) in
  let findings = ref [] in
  let module F = Analysis.Dataflow.IntSetFlow in
  F.iter_with_state body result ~transfer_stmt ~f:(fun ~block:_ state ev ->
      let check span (p : Mir.place) =
        if
          (match p.Mir.proj with Mir.Deref :: _ -> true | _ -> false)
          && IntSet.mem p.Mir.base state
          && Sema.Ty.is_raw_ptr (Mir.local_ty body p.Mir.base)
          && not (guarded p.Mir.base)
        then
          findings :=
            Report.make ~kind:Report.Null_deref ~fn_id:body.Mir.fn_id ~span
              "pointer `_%d` may be null here and is dereferenced without a check"
              p.Mir.base
            :: !findings
      in
      let check_op span = function
        | Mir.Copy p | Mir.Move p -> check span p
        | Mir.Const _ -> ()
      in
      match ev with
      | `Stmt { Mir.kind = Mir.Assign (dest, rv); s_span; _ } -> (
          check s_span dest;
          match rv with
          | Mir.Use op | Mir.Cast (op, _) | Mir.UnaryOp (_, op) ->
              check_op s_span op
          | Mir.BinaryOp (_, a, b) ->
              check_op s_span a;
              check_op s_span b
          | Mir.Aggregate (_, ops) -> List.iter (check_op s_span) ops
          | Mir.Ref (_, p) | Mir.AddrOf (_, p) | Mir.Discriminant p ->
              check s_span p
          | Mir.Alloc _ -> ())
      | `Stmt _ -> ()
      | `Term (Mir.Call (c, _)) -> (
          match c.Mir.callee with
          | Mir.Builtin (Mir.PtrRead | Mir.PtrWrite | Mir.PtrCopy) -> (
              match c.Mir.args with
              | (Mir.Copy p | Mir.Move p) :: _
                when Mir.place_is_local p && IntSet.mem p.Mir.base state
                     && not (guarded p.Mir.base) ->
                  findings :=
                    Report.make ~kind:Report.Null_deref ~fn_id:body.Mir.fn_id
                      ~span:c.Mir.call_span
                      "possibly-null pointer passed to a raw memory operation"
                    :: !findings
              | _ -> ())
          | Mir.Builtin (Mir.Extern _) ->
              List.iter (check_op c.Mir.call_span) c.Mir.args
          | _ -> ())
      | `Term _ -> ());
  !findings

let run (program : Mir.program) : Report.finding list =
  List.concat_map run_body (Mir.body_list program)

(* null-deref uses no cached analyses; ctx entry point for uniformity *)
let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  run (Analysis.Cache.program ctx)
