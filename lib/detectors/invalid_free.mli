(** Invalid-free detector (the paper's Fig. 6 Redox bug): a [Drop]
    implied by assignment through a raw pointer into memory no program
    path has initialized, and drops of never-initialized
    [mem::uninitialized] values. *)

open Ir

val run_body : Mir.body -> Report.finding list
val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
