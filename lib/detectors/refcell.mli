(** RefCell double-borrow detector: [borrow_mut] while another
    borrow guard of the same cell is alive panics at runtime — the
    root cause of four of the paper's non-blocking bugs. *)

open Ir

val run_body : Mir.body -> Report.finding list
val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
