(** Conflicting-lock-order (ABBA deadlock) detector.

    Collects, per function, the ordered pairs "lock A held while
    acquiring lock B". For closure bodies reached through
    [thread::spawn], lock roots are substituted through the capture
    mapping so that two threads locking the same two Arc<Mutex<_>>
    objects in opposite orders are recognized. A cycle in the resulting
    lock-order graph is reported as a potential deadlock. *)

open Ir

type edge = {
  from_root : string;
  to_root : string;
  in_fn : string;
  site : Support.Span.t;
}

let substituted_pairs_ctx (ctx : Analysis.Cache.t) : edge list =
  let program = Analysis.Cache.program ctx in
  let cg = Analysis.Cache.callgraph ctx in
  let edges = ref [] in
  List.iter
    (fun (body : Mir.body) ->
      let pairs = Double_lock.order_pairs_ctx ctx body in
      if pairs <> [] then begin
        (* In how many frames does this body run? Its own, plus any
           spawn site with captures substituted. *)
        let spawn_sites =
          List.filter
            (fun (e : Analysis.Callgraph.edge) ->
              String.equal e.Analysis.Callgraph.target body.Mir.fn_id)
            (Analysis.Callgraph.spawn_edges cg)
        in
        let contexts =
          match spawn_sites with
          | [] -> [ (body.Mir.fn_id, None) ]
          | sites ->
              List.map
                (fun (e : Analysis.Callgraph.edge) ->
                  (e.Analysis.Callgraph.caller, Some e.Analysis.Callgraph.capture_paths))
                sites
        in
        List.iter
          (fun (frame, subst) ->
            List.iter
              (fun (a, b, span) ->
                let sub r =
                  match subst with
                  | Some actuals -> Analysis.Alias.substitute r actuals
                  | None -> r
                in
                let a = sub a and b = sub b in
                edges :=
                  {
                    from_root = frame ^ "/" ^ Analysis.Alias.to_string a;
                    to_root = frame ^ "/" ^ Analysis.Alias.to_string b;
                    in_fn = body.Mir.fn_id;
                    site = span;
                  }
                  :: !edges)
              pairs)
          contexts
      end)
    (Mir.body_list program);
  !edges

let substituted_pairs (program : Mir.program) : edge list =
  substituted_pairs_ctx (Analysis.Cache.create program)

(** Find a cycle in the lock-order graph; returns the edges involved. *)
let find_cycle (edges : edge list) : edge list =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = Option.value (Hashtbl.find_opt adj e.from_root) ~default:[] in
      Hashtbl.replace adj e.from_root (e :: cur))
    edges;
  let visiting = Hashtbl.create 16 in
  let done_ = Hashtbl.create 16 in
  let cycle = ref [] in
  let rec dfs node path =
    if !cycle = [] then
      if Hashtbl.mem visiting node then begin
        (* unwind the path back to node *)
        let rec take acc = function
          | [] -> acc
          | e :: rest ->
              if String.equal e.from_root node then e :: acc
              else take (e :: acc) rest
        in
        cycle := take [] path
      end
      else if not (Hashtbl.mem done_ node) then begin
        Hashtbl.replace visiting node ();
        List.iter
          (fun e -> dfs e.to_root (e :: path))
          (Option.value (Hashtbl.find_opt adj node) ~default:[]);
        Hashtbl.remove visiting node;
        Hashtbl.replace done_ node ()
      end
  in
  List.iter (fun e -> if !cycle = [] then dfs e.from_root []) edges;
  !cycle

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  let edges = substituted_pairs_ctx ctx in
  match find_cycle edges with
  | [] -> []
  | cycle ->
      List.map
        (fun e ->
          Report.make ~kind:Report.Conflicting_lock_order ~fn_id:e.in_fn
            ~span:e.site
            "lock `%s` is acquired while holding `%s`; another thread acquires them in the opposite order (deadlock cycle)"
            e.to_root e.from_root)
        cycle

let run (program : Mir.program) : Report.finding list =
  run_ctx (Analysis.Cache.create program)
