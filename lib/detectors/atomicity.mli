(** Atomicity-violation detectors.

    [run]: the Fig. 9 pattern — an atomic loaded, branched on, then
    stored with no CAS/fetch-op (the fix is [compare_and_swap]).

    [run_with_sessions]: the Mutex analogue — a value read under one
    critical section and acted on under a later one (stale check). *)

open Ir

val run_body : Mir.body -> Report.finding list
val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list

val two_session : Mir.body -> Report.finding list
val run_with_sessions_ctx : Analysis.Cache.t -> Report.finding list
val run_with_sessions : Mir.program -> Report.finding list
