(** Double-lock detector — the paper's §7.2 static checker.

    Identifies every lock acquisition, tracks which locals hold each
    guard (through [unwrap], moves, and [Condvar::wait] round-trips),
    delimits the guard's live range by its [Drop] (Rust's implicit
    unlock), and reports a second conflicting acquisition of the same
    lock — identified by its access path — while a guard is alive.
    Cross-function double locks are found through lock-acquisition
    summaries substituted at call sites. *)

open Ir

type lock_kind = KMutex | KRead | KWrite

val kind_name : lock_kind -> string

val conflict : lock_kind -> lock_kind -> bool
(** Two acquisitions of the same lock block each other — except
    RwLock read/read. *)

type acquisition = {
  acq_id : int;
  acq_root : Analysis.Alias.t;  (** identity of the lock *)
  acq_kind : lock_kind;
  acq_try : bool;  (** try_lock never blocks and is never reported *)
  acq_span : Support.Span.t;
}

type body_locks = {
  acquisitions : (int, acquisition) Hashtbl.t;
  holders : (Mir.local, int) Hashtbl.t;  (** local -> acquisition held *)
  acq_at_term : (int, int) Hashtbl.t;  (** block -> acquisition made there *)
}

val collect_locks : Analysis.Alias.resolution -> Mir.body -> body_locks
(** Lock acquisitions of one body plus the guard-holder map. *)

val held_analysis :
  Mir.body -> body_locks -> Analysis.Dataflow.IntSetFlow.result
(** Forward dataflow: the set of acquisition ids held at each block. *)

val locks_of :
  Analysis.Cache.t ->
  Mir.body ->
  body_locks * Analysis.Dataflow.IntSetFlow.result
(** Memoised [collect_locks] + [held_analysis] for one body, shared
    through the analysis context with the lock-order and atomicity
    detectors. *)

val run_ctx :
  ?interprocedural:bool ->
  ?mode:Analysis.Summary.mode ->
  Analysis.Cache.t ->
  Report.finding list
(** Run the detector with a shared analysis context.
    [interprocedural:false] (default [true]) ablates the cross-function
    summaries; [?mode] (default [Analysis.Summary.default_mode ()])
    picks the SCC-scheduled summary engine vs the legacy whole-program
    replay fixpoint — their findings agree at convergence, and the
    differential suite holds them byte-identical over the corpus. *)

val run :
  ?interprocedural:bool ->
  ?mode:Analysis.Summary.mode ->
  Mir.program ->
  Report.finding list
(** Run the detector (private context). *)

val order_pairs :
  Mir.body -> (Analysis.Alias.t * Analysis.Alias.t * Support.Span.t) list
(** (held lock, newly acquired lock) pairs, consumed by the
    conflicting-lock-order detector. *)

val order_pairs_ctx :
  Analysis.Cache.t ->
  Mir.body ->
  (Analysis.Alias.t * Analysis.Alias.t * Support.Span.t) list
(** [order_pairs] through the shared context's memoised lock maps. *)
