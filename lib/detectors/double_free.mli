(** Double-free detector: [ptr::read] ownership duplication (both the
    source and the copy get dropped) and repeated
    [Box::from_raw]/[Arc::from_raw] on one allocation. *)

open Ir

val run_body : Mir.body -> Report.finding list
val run_ctx : Analysis.Cache.t -> Report.finding list
val run : Mir.program -> Report.finding list
