(** Uninitialized-read detector.

    The paper's uninitialized-memory bugs create a buffer with unsafe
    code ([alloc], [Vec::with_capacity] + [set_len], or
    [mem::uninitialized]) and later read it from safe code. The
    detector flags reads through pointers to heap allocations that no
    prior program point has written, and any read of a
    [mem::uninitialized] result. *)

open Ir
module Loc = Analysis.Pointsto.Loc
module LocSet = Analysis.Pointsto.LocSet

let check_body (pts : Analysis.Pointsto.t) (body : Mir.body) :
    Report.finding list =
  let findings = ref [] in
  let initialized = Hashtbl.create 8 in
  let uninit_locals = Hashtbl.create 4 in
  let heap_sites_of_ptr (l : Mir.local) =
    LocSet.fold
      (fun loc acc -> match loc with Loc.LHeap h -> h :: acc | _ -> acc)
      (Analysis.Pointsto.of_local pts l) []
  in
  let mark_init_place (p : Mir.place) =
    if List.mem Mir.Deref p.Mir.proj then
      List.iter (fun h -> Hashtbl.replace initialized h ()) (heap_sites_of_ptr p.Mir.base)
  in
  let check_read_place span (p : Mir.place) =
    if List.mem Mir.Deref p.Mir.proj then begin
      match
        List.filter (fun h -> not (Hashtbl.mem initialized h))
          (heap_sites_of_ptr p.Mir.base)
      with
      | _ :: _ ->
          findings :=
            Report.make ~kind:Report.Uninit_read ~fn_id:body.Mir.fn_id ~span
              "read through pointer into an allocation that was never initialized"
            :: !findings
      | [] -> ()
    end;
    if
      Hashtbl.mem uninit_locals p.Mir.base
      && not (List.mem Mir.Deref p.Mir.proj)
    then
      findings :=
        Report.make ~kind:Report.Uninit_read ~fn_id:body.Mir.fn_id ~span
          "value produced by mem::uninitialized/zeroed is read before being written"
        :: !findings
  in
  let check_operand span = function
    | Mir.Copy p | Mir.Move p -> check_read_place span p
    | Mir.Const _ -> ()
  in
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Assign (dest, rv) ->
              (match rv with
              | Mir.Use op | Mir.Cast (op, _) | Mir.UnaryOp (_, op) ->
                  check_operand s.Mir.s_span op
              | Mir.BinaryOp (_, a, b) ->
                  check_operand s.Mir.s_span a;
                  check_operand s.Mir.s_span b
              | Mir.Aggregate (_, ops) ->
                  List.iter (check_operand s.Mir.s_span) ops
              | Mir.Ref _ | Mir.AddrOf _ | Mir.Discriminant _ | Mir.Alloc _ ->
                  ());
              mark_init_place dest;
              if Mir.place_is_local dest then begin
                let rhs_uninit =
                  match rv with
                  | Mir.Use (Mir.Copy p | Mir.Move p)
                    when Mir.place_is_local p ->
                      Hashtbl.mem uninit_locals p.Mir.base
                  | _ -> false
                in
                if rhs_uninit then
                  Hashtbl.replace uninit_locals dest.Mir.base ()
                else Hashtbl.remove uninit_locals dest.Mir.base
              end
          | _ -> ())
        blk.Mir.stmts;
      match blk.Mir.term with
      | Mir.Call (c, _) -> (
          (match c.Mir.callee with
          | Mir.Builtin Mir.MemUninit when Mir.place_is_local c.Mir.dest ->
              Hashtbl.replace uninit_locals c.Mir.dest.Mir.base ()
          | Mir.Builtin (Mir.PtrWrite | Mir.PtrCopy) -> (
              match c.Mir.args with
              | (Mir.Copy p | Mir.Move p) :: _ ->
                  List.iter
                    (fun h -> Hashtbl.replace initialized h ())
                    (heap_sites_of_ptr p.Mir.base)
              | _ -> ())
          | Mir.Builtin Mir.PtrRead -> (
              match c.Mir.args with
              | (Mir.Copy p | Mir.Move p) :: _ -> (
                  match
                    List.filter (fun h -> not (Hashtbl.mem initialized h))
                      (heap_sites_of_ptr p.Mir.base)
                  with
                  | _ :: _ ->
                      findings :=
                        Report.make ~kind:Report.Uninit_read
                          ~fn_id:body.Mir.fn_id ~span:c.Mir.call_span
                          "ptr::read from an allocation that was never initialized"
                        :: !findings
                  | [] -> ())
              | _ -> ())
          | _ -> ());
          (* reads of uninit locals passed to calls *)
          List.iter
            (function
              | Mir.Copy p | Mir.Move p
                when Mir.place_is_local p
                     && Hashtbl.mem uninit_locals p.Mir.base ->
                  findings :=
                    Report.make ~kind:Report.Uninit_read ~fn_id:body.Mir.fn_id
                      ~span:c.Mir.call_span
                      "value produced by mem::uninitialized/zeroed is used before being written"
                    :: !findings
              | _ -> ())
            c.Mir.args)
      | _ -> ())
    body.Mir.blocks;
  !findings

(* ------------------------------------------------------------------ *)
(* Vec::with_capacity + set_len without writes, then read              *)
(* ------------------------------------------------------------------ *)

(** The paper's dominant uninitialized-read shape: unsafe code sizes a
    Vec with [set_len] but never writes the elements, and safe code
    later reads them by index. *)
let set_len_reads_with (aliases : Analysis.Alias.resolution)
    (body : Mir.body) : Report.finding list =
  let root_str p = Analysis.Alias.to_string (Analysis.Alias.path_of_place aliases p) in
  let set_len_roots = Hashtbl.create 4 in
  let written_roots = Hashtbl.create 4 in
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Assign (dest, _) when List.mem Mir.Index dest.Mir.proj ->
              (* v[i] = x *)
              Hashtbl.replace written_roots
                (root_str { dest with Mir.proj = [] })
                ()
          | _ -> ())
        blk.Mir.stmts;
      match blk.Mir.term with
      | Mir.Call (c, _) -> (
          let recv_root () =
            match c.Mir.args with
            | (Mir.Copy p | Mir.Move p) :: _ -> Some (root_str p)
            | _ -> None
          in
          match c.Mir.callee with
          | Mir.Builtin Mir.VecSetLen -> (
              match recv_root () with
              | Some r -> Hashtbl.replace set_len_roots r c.Mir.call_span
              | None -> ())
          | Mir.Builtin (Mir.VecPush | Mir.PtrWrite | Mir.PtrCopy) -> (
              match recv_root () with
              | Some r -> Hashtbl.replace written_roots r ()
              | None -> ())
          | _ -> ())
      | _ -> ())
    body.Mir.blocks;
  (* reads of set_len'd-but-unwritten vecs *)
  let findings = ref [] in
  let check span (p : Mir.place) =
    if List.mem Mir.Index p.Mir.proj then begin
      let r = root_str { p with Mir.proj = [] } in
      match Hashtbl.find_opt set_len_roots r with
      | Some _ when not (Hashtbl.mem written_roots r) ->
          findings :=
            Report.make ~kind:Report.Uninit_read ~fn_id:body.Mir.fn_id ~span
              "element read from a Vec whose length was set with set_len but whose contents were never written"
            :: !findings
      | _ -> ()
    end
  in
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Assign (_, rv) -> (
              let check_op = function
                | Mir.Copy p | Mir.Move p -> check s.Mir.s_span p
                | Mir.Const _ -> ()
              in
              match rv with
              | Mir.Use op | Mir.Cast (op, _) | Mir.UnaryOp (_, op) ->
                  check_op op
              | Mir.BinaryOp (_, a, b) ->
                  check_op a;
                  check_op b
              | Mir.Aggregate (_, ops) -> List.iter check_op ops
              | Mir.Ref (_, p) -> check s.Mir.s_span p
              | _ -> ())
          | _ -> ())
        blk.Mir.stmts;
      match blk.Mir.term with
      | Mir.Call (c, _) -> (
          (match c.Mir.callee with
          | Mir.Builtin (Mir.VecGet | Mir.VecGetUnchecked) -> (
              match c.Mir.args with
              | (Mir.Copy p | Mir.Move p) :: _ ->
                  let r = root_str p in
                  if
                    Hashtbl.mem set_len_roots r
                    && not (Hashtbl.mem written_roots r)
                  then
                    findings :=
                      Report.make ~kind:Report.Uninit_read ~fn_id:body.Mir.fn_id
                        ~span:c.Mir.call_span
                        "element read from a Vec whose length was set with set_len but whose contents were never written"
                      :: !findings
              | _ -> ())
          | _ -> ());
          List.iter
            (function
              | Mir.Copy p | Mir.Move p -> check c.Mir.call_span p
              | Mir.Const _ -> ())
            c.Mir.args)
      | _ -> ())
    body.Mir.blocks;
  !findings

(** Drop of a value that came from [mem::uninitialized] and was never
    overwritten: freeing garbage (an invalid-free shape the paper files
    under unsafe->safe). *)
let uninit_drop (body : Mir.body) : Report.finding list =
  let uninit_locals = Hashtbl.create 4 in
  Array.iter
    (fun (blk : Mir.block) ->
      match blk.Mir.term with
      | Mir.Call ({ Mir.callee = Mir.Builtin Mir.MemUninit; dest; _ }, _)
        when Mir.place_is_local dest ->
          Hashtbl.replace uninit_locals dest.Mir.base ()
      | _ -> ())
    body.Mir.blocks;
  (* propagate one level through moves, drop overwrites *)
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Assign (dest, Mir.Use (Mir.Move p | Mir.Copy p))
            when Mir.place_is_local dest && Mir.place_is_local p
                 && Hashtbl.mem uninit_locals p.Mir.base ->
              Hashtbl.replace uninit_locals dest.Mir.base ()
          | _ -> ())
        blk.Mir.stmts)
    body.Mir.blocks;
  let findings = ref [] in
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.Drop p
            when Mir.place_is_local p && Hashtbl.mem uninit_locals p.Mir.base
                 && Sema.Ty.needs_drop (Mir.local_ty body p.Mir.base) ->
              findings :=
                Report.make ~kind:Report.Invalid_free ~fn_id:body.Mir.fn_id
                  ~span:s.Mir.s_span
                  "dropping a value obtained from mem::uninitialized that was never initialized"
                :: !findings
          | _ -> ())
        blk.Mir.stmts)
    body.Mir.blocks;
  !findings

let set_len_reads (body : Mir.body) : Report.finding list =
  set_len_reads_with (Analysis.Alias.resolve body) body

let run_body (body : Mir.body) : Report.finding list =
  check_body (Analysis.Pointsto.analyze body) body

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  List.concat_map
    (fun b ->
      check_body (Analysis.Cache.pointsto ctx b) b
      @ set_len_reads_with (Analysis.Cache.aliases ctx b) b)
    (Mir.body_list (Analysis.Cache.program ctx))

let run (program : Mir.program) : Report.finding list =
  run_ctx (Analysis.Cache.create program)
