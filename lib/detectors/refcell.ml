(** RefCell double-borrow detector.

    Four of the paper's non-blocking bugs are runtime panics from
    requesting a second mutable borrow of a [RefCell] while another
    borrow is outstanding ("When multiple threads request mutable
    references to a RefCell at the same time, a runtime panic will be
    triggered"). Within one body the same discipline applies
    sequentially: [borrow_mut] while a [borrow]/[borrow_mut] guard of
    the same cell is still alive panics deterministically. The detector
    mirrors the double-lock analysis with cell guards ([CellRef]/
    [CellRefMut]) in place of lock guards. *)

open Ir
module IntSet = Analysis.Dataflow.IntSet
module Flow = Analysis.Dataflow.IntSetFlow

type borrow_kind = BShared | BMut

let conflict a b = match (a, b) with BShared, BShared -> false | _ -> true

type cell_borrows = {
  borrows : (int, Analysis.Alias.t * borrow_kind * Support.Span.t) Hashtbl.t;
  holders : (Mir.local, int) Hashtbl.t;
  borrow_at_term : (int, int) Hashtbl.t;
}

let collect (aliases : Analysis.Alias.resolution) (body : Mir.body) :
    cell_borrows =
  let t =
    {
      borrows = Hashtbl.create 4;
      holders = Hashtbl.create 4;
      borrow_at_term = Hashtbl.create 4;
    }
  in
  let next = ref 0 in
  for _pass = 0 to 1 do
    Array.iteri
      (fun bi (blk : Mir.block) ->
        List.iter
          (fun (s : Mir.stmt) ->
            match s.Mir.kind with
            | Mir.Assign (dest, Mir.Use (Mir.Copy p | Mir.Move p))
              when Mir.place_is_local dest && Mir.place_is_local p -> (
                match Hashtbl.find_opt t.holders p.Mir.base with
                | Some a -> Hashtbl.replace t.holders dest.Mir.base a
                | None -> ())
            | _ -> ())
          blk.Mir.stmts;
        match blk.Mir.term with
        | Mir.Call (c, _) -> (
            let kind =
              match c.Mir.callee with
              | Mir.Builtin Mir.RefCellBorrow -> Some BShared
              | Mir.Builtin Mir.RefCellBorrowMut -> Some BMut
              | _ -> None
            in
            match kind with
            | Some k ->
                if not (Hashtbl.mem t.borrow_at_term bi) then begin
                  let id = !next in
                  incr next;
                  let root =
                    match c.Mir.args with
                    | (Mir.Copy p | Mir.Move p) :: _ ->
                        Analysis.Alias.path_of_place aliases p
                    | _ -> Analysis.Alias.unknown
                  in
                  Hashtbl.replace t.borrows id (root, k, c.Mir.call_span);
                  Hashtbl.replace t.borrow_at_term bi id
                end;
                if Mir.place_is_local c.Mir.dest then
                  Hashtbl.replace t.holders c.Mir.dest.Mir.base
                    (Hashtbl.find t.borrow_at_term bi)
            | None -> ())
        | _ -> ())
      body.Mir.blocks
  done;
  t

let check_body (aliases : Analysis.Alias.resolution) (body : Mir.body) :
    Report.finding list =
  let cells = collect aliases body in
  if Hashtbl.length cells.borrows = 0 then []
  else begin
    let transfer_stmt state (s : Mir.stmt) =
      match s.Mir.kind with
      | Mir.Drop p when Mir.place_is_local p -> (
          match Hashtbl.find_opt cells.holders p.Mir.base with
          | Some a -> IntSet.remove a state
          | None -> state)
      | _ -> state
    in
    let term_block = Hashtbl.create 4 in
    Array.iteri
      (fun bi (blk : Mir.block) ->
        match blk.Mir.term with
        | Mir.Call (c, _) -> Hashtbl.replace term_block c.Mir.call_span bi
        | _ -> ())
      body.Mir.blocks;
    let held =
      Flow.run body ~init:IntSet.empty ~transfer_stmt
        ~transfer_term:(fun state term ->
          match term with
          | Mir.Call (c, _) -> (
              match Hashtbl.find_opt term_block c.Mir.call_span with
              | Some bi -> (
                  match Hashtbl.find_opt cells.borrow_at_term bi with
                  | Some a -> IntSet.add a state
                  | None -> state)
              | None -> state)
          | _ -> state)
    in
    let findings = ref [] in
    Array.iteri
      (fun bi (blk : Mir.block) ->
        match Hashtbl.find_opt cells.borrow_at_term bi with
        | Some id ->
            let root, kind, span = Hashtbl.find cells.borrows id in
            if root.Analysis.Alias.root <> Analysis.Alias.Unknown_base then begin
              let state =
                List.fold_left transfer_stmt held.Flow.entry.(bi) blk.Mir.stmts
              in
              IntSet.iter
                (fun other ->
                  if other <> id then
                    match Hashtbl.find_opt cells.borrows other with
                    | Some (oroot, okind, ospan)
                      when Analysis.Alias.equal oroot root
                           && conflict okind kind ->
                        findings :=
                          Report.make ~kind:Report.Borrow_conflict
                            ~fn_id:body.Mir.fn_id ~span ~related_span:ospan
                            "RefCell `%s` is %s while a %s guard of the same cell is still alive: this panics at runtime"
                            (Analysis.Alias.to_string root)
                            (match kind with
                            | BMut -> "borrowed mutably"
                            | BShared -> "borrowed")
                            (match okind with
                            | BMut -> "borrow_mut"
                            | BShared -> "borrow")
                          :: !findings
                    | _ -> ())
                state
            end
        | None -> ())
      body.Mir.blocks;
    !findings
  end

let run_body (body : Mir.body) : Report.finding list =
  check_body (Analysis.Alias.resolve body) body

let run_ctx (ctx : Analysis.Cache.t) : Report.finding list =
  List.concat_map
    (fun b -> check_body (Analysis.Cache.aliases ctx b) b)
    (Mir.body_list (Analysis.Cache.program ctx))

let run (program : Mir.program) : Report.finding list =
  run_ctx (Analysis.Cache.create program)
