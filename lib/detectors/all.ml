(** Convenience entry points running groups of detectors, matching the
    paper's taxonomy: memory-safety detectors (§5/§7.1), blocking-bug
    detectors (§6.1/§7.2), non-blocking-bug detectors (§6.2), and the
    compiler-model checks.

    The [_ctx] variants share one {!Analysis.Cache.t}, so the alias,
    points-to, liveness and call-graph analyses each run at most once
    per body no matter how many detectors consume them. The legacy
    [program]-taking entry points build a single cache internally and
    delegate, so they get the same sharing within one call. *)

let memory_ctx ctx =
  Uaf.run_ctx ctx @ Double_free.run_ctx ctx @ Invalid_free.run_ctx ctx
  @ Uninit.run_ctx ctx @ Null_deref.run_ctx ctx @ Buffer.run_ctx ctx

let blocking_ctx ctx =
  Double_lock.run_ctx ctx @ Lock_order.run_ctx ctx @ Condvar.run_ctx ctx
  @ Channel.run_ctx ctx @ Once.run_ctx ctx

let non_blocking_ctx ctx =
  Sync_misuse.run_ctx ctx @ Atomicity.run_ctx ctx
  @ Atomicity.run_with_sessions_ctx ctx @ Refcell.run_ctx ctx

let compiler_checks_ctx ctx = Borrowck.run_ctx ctx

let all_ctx ctx =
  memory_ctx ctx @ blocking_ctx ctx @ non_blocking_ctx ctx
  @ compiler_checks_ctx ctx

(** Everything except the compiler-model checks: the runtime-bug
    detectors proper. *)
let bugs_ctx ctx = memory_ctx ctx @ blocking_ctx ctx @ non_blocking_ctx ctx

let memory program = memory_ctx (Analysis.Cache.create program)
let blocking program = blocking_ctx (Analysis.Cache.create program)
let non_blocking program = non_blocking_ctx (Analysis.Cache.create program)

let compiler_checks program =
  compiler_checks_ctx (Analysis.Cache.create program)

let all program = all_ctx (Analysis.Cache.create program)
let bugs program = bugs_ctx (Analysis.Cache.create program)
