(** Convenience entry points running groups of detectors, matching the
    paper's taxonomy: memory-safety detectors (§5/§7.1), blocking-bug
    detectors (§6.1/§7.2), non-blocking-bug detectors (§6.2), and the
    compiler-model checks.

    The [_ctx] variants share one {!Analysis.Cache.t}, so the alias,
    points-to, liveness and call-graph analyses each run at most once
    per body no matter how many detectors consume them. The legacy
    [program]-taking entry points build a single cache internally and
    delegate, so they get the same sharing within one call.

    Every detector invocation is observable: a [detector.<name>] trace
    span wraps it and [rustudy_detector_runs_total] /
    [rustudy_detector_findings_total] (labelled by detector) count it —
    both no-ops unless tracing/metrics are enabled. *)

let m_runs =
  Support.Metrics.counter ~labels:[ "detector" ]
    ~help:"Detector invocations." "rustudy_detector_runs_total"

let m_findings =
  Support.Metrics.counter ~labels:[ "detector" ]
    ~help:"Findings reported, by detector." "rustudy_detector_findings_total"

(* Wrap one detector: span + run/finding counters. The detector name is
   a static string, so the disabled path costs two [Atomic.get]s and no
   allocation. *)
let det name run_ctx ctx =
  let findings =
    Support.Trace.with_span ~cat:"detector" ("detector." ^ name) (fun () ->
        run_ctx ctx)
  in
  if Support.Metrics.enabled () then begin
    Support.Metrics.incr m_runs ~labels:[ name ];
    Support.Metrics.incr m_findings ~labels:[ name ]
      ~by:(float_of_int (List.length findings))
  end;
  findings

let memory_ctx ctx =
  det "uaf" Uaf.run_ctx ctx
  @ det "double_free" Double_free.run_ctx ctx
  @ det "invalid_free" Invalid_free.run_ctx ctx
  @ det "uninit" Uninit.run_ctx ctx
  @ det "null_deref" Null_deref.run_ctx ctx
  @ det "buffer" Buffer.run_ctx ctx

let blocking_ctx ctx =
  det "double_lock" Double_lock.run_ctx ctx
  @ det "lock_order" Lock_order.run_ctx ctx
  @ det "condvar" Condvar.run_ctx ctx
  @ det "channel" Channel.run_ctx ctx
  @ det "once" Once.run_ctx ctx

let non_blocking_ctx ctx =
  det "sync_misuse" Sync_misuse.run_ctx ctx
  @ det "atomicity" Atomicity.run_ctx ctx
  @ det "atomicity_sessions" Atomicity.run_with_sessions_ctx ctx
  @ det "refcell" Refcell.run_ctx ctx

let compiler_checks_ctx ctx = det "borrowck" Borrowck.run_ctx ctx

let all_ctx ctx =
  memory_ctx ctx @ blocking_ctx ctx @ non_blocking_ctx ctx
  @ compiler_checks_ctx ctx

(** Everything except the compiler-model checks: the runtime-bug
    detectors proper. *)
let bugs_ctx ctx = memory_ctx ctx @ blocking_ctx ctx @ non_blocking_ctx ctx

let memory program = memory_ctx (Analysis.Cache.create program)
let blocking program = blocking_ctx (Analysis.Cache.create program)
let non_blocking program = non_blocking_ctx (Analysis.Cache.create program)

let compiler_checks program =
  compiler_checks_ctx (Analysis.Cache.create program)

let all program = all_ctx (Analysis.Cache.create program)
let bugs program = bugs_ctx (Analysis.Cache.create program)
