(** Lifetime/ownership visualizer (the paper's §7.1 IDE suggestion):
    "Being able to visualize objects' lifetime and owner(s) during
    programming time could largely help Rust programmers avoid memory
    bugs ... highlighting a variable's lifetime scope when the cursor
    hops over it."

    For every user variable this module reports where its storage
    begins, where its value is dropped (or moved away), and the
    pointers/references that alias it — flagging aliases that are still
    usable after the value's end (the use-after-free shape). *)

open Ir
module Loc = Analysis.Pointsto.Loc
module LocSet = Analysis.Pointsto.LocSet

type var_report = {
  lr_fn : string;
  lr_name : string;
  lr_local : Mir.local;
  lr_ty : string;
  lr_born : Support.Span.t;  (** StorageLive site *)
  lr_end : [ `Dropped of Support.Span.t | `Moved | `Escapes ];
  lr_aliases : (Mir.local * string) list;
      (** locals whose points-to set includes this variable, with their
          user names where available *)
}

let local_name (body : Mir.body) l =
  match body.Mir.locals.(l).Mir.l_name with
  | Some n -> n
  | None -> Printf.sprintf "_%d" l

let report_body_with (pts : Analysis.Pointsto.t) (body : Mir.body) :
    var_report list =
  let n = Array.length body.Mir.locals in
  let born = Array.make n Support.Span.dummy in
  let dropped = Array.make n None in
  let moved = Array.make n false in
  Array.iter
    (fun (blk : Mir.block) ->
      List.iter
        (fun (s : Mir.stmt) ->
          match s.Mir.kind with
          | Mir.StorageLive l ->
              if Support.Span.is_dummy born.(l) then born.(l) <- s.Mir.s_span
          | Mir.Drop p when Mir.place_is_local p ->
              if dropped.(p.Mir.base) = None then
                dropped.(p.Mir.base) <- Some s.Mir.s_span
          | Mir.Assign (_, rv) -> (
              match rv with
              | Mir.Use (Mir.Move p) when Mir.place_is_local p ->
                  moved.(p.Mir.base) <- true
              | _ -> ())
          | _ -> ())
        blk.Mir.stmts;
      match blk.Mir.term with
      | Mir.Call (c, _) ->
          List.iter
            (function
              | Mir.Move p when Mir.place_is_local p -> moved.(p.Mir.base) <- true
              | _ -> ())
            c.Mir.args
      | _ -> ())
    body.Mir.blocks;
  (* aliases: which locals may point at each variable *)
  let aliases = Array.make n [] in
  for l = 0 to n - 1 do
    LocSet.iter
      (function
        | Loc.LLocal tgt when tgt < n && tgt <> l ->
            aliases.(tgt) <- (l, local_name body l) :: aliases.(tgt)
        | _ -> ())
      (Analysis.Pointsto.of_local pts l)
  done;
  let reports = ref [] in
  Array.iteri
    (fun l (info : Mir.local_info) ->
      if info.Mir.l_user && info.Mir.l_name <> None then
        reports :=
          {
            lr_fn = body.Mir.fn_id;
            lr_name = local_name body l;
            lr_local = l;
            lr_ty = Sema.Ty.to_string info.Mir.l_ty;
            lr_born =
              (if Support.Span.is_dummy born.(l) then info.Mir.l_span
               else born.(l));
            lr_end =
              (match dropped.(l) with
              | Some sp -> `Dropped sp
              | None -> if moved.(l) then `Moved else `Escapes);
            lr_aliases = aliases.(l);
          }
          :: !reports)
    body.Mir.locals;
  List.rev !reports

let report_body (body : Mir.body) : var_report list =
  report_body_with (Analysis.Pointsto.analyze body) body

let report_ctx (ctx : Analysis.Cache.t) : var_report list =
  List.concat_map
    (fun b -> report_body_with (Analysis.Cache.pointsto ctx b) b)
    (Mir.body_list (Analysis.Cache.program ctx))

(** Lifetime reports for every user variable of every function. *)
let report (program : Mir.program) : var_report list =
  List.concat_map report_body (Mir.body_list program)

let render (rs : var_report list) : string =
  if rs = [] then "no user variables\n"
  else
    String.concat ""
      (List.map
         (fun r ->
           let end_ =
             match r.lr_end with
             | `Dropped sp -> Fmt.str "dropped at %a" Support.Span.pp sp
             | `Moved -> "ownership moved away"
             | `Escapes -> "lives to function exit"
           in
           let aliases =
             match r.lr_aliases with
             | [] -> ""
             | al ->
                 Fmt.str "    aliased by: %s\n"
                   (String.concat ", "
                      (List.sort_uniq compare (List.map snd al)))
           in
           Fmt.str "%s: `%s`: %s — born at %a; %s\n%s" r.lr_fn r.lr_name
             r.lr_ty Support.Span.pp r.lr_born end_ aliases)
         rs)
