(** The allocation table: every heap cell the interpreted program ever
    owns, tracked live/freed/uninit with a generation counter.

    Slots are recycled through a free list on purpose: reuse is what
    makes stale pointers *numerically valid* again, and the generation
    tag is what still catches them — a read through an old-generation
    pointer is a use-after-free even though the slot is live for its
    new owner. *)

type 'v state =
  | Uninit  (** allocated, never written (e.g. [alloc] without init) *)
  | Init of 'v
  | Freed

type 'v cell = { mutable st : 'v state; mutable gen : int }

type 'v t = {
  mutable cells : 'v cell array;
  mutable n : int;  (** slots ever used *)
  mutable free_list : int list;  (** freed slots awaiting reuse *)
  mutable live : int;
  mutable total_allocs : int;
}

let create () =
  { cells = [||]; n = 0; free_list = []; live = 0; total_allocs = 0 }

let ensure t cap =
  if cap > Array.length t.cells then begin
    let bigger =
      Array.init
        (max 16 (2 * cap))
        (fun i ->
          if i < t.n then t.cells.(i) else { st = Freed; gen = 0 })
    in
    t.cells <- bigger
  end

(** Allocate a cell, preferring a recycled slot (bumping its
    generation). Returns [(slot, gen)] — the provenance tag. *)
let alloc t st =
  t.total_allocs <- t.total_allocs + 1;
  t.live <- t.live + 1;
  match t.free_list with
  | slot :: rest ->
      t.free_list <- rest;
      let c = t.cells.(slot) in
      c.gen <- c.gen + 1;
      c.st <- st;
      (slot, c.gen)
  | [] ->
      let slot = t.n in
      ensure t (slot + 1);
      t.cells.(slot) <- { st; gen = 0 };
      t.n <- slot + 1;
      (slot, 0)

type 'v read = Rok of 'v | Runinit | Rfreed | Rstale

let read t ~slot ~gen =
  if slot < 0 || slot >= t.n then Rfreed
  else
    let c = t.cells.(slot) in
    if c.gen <> gen then Rstale
    else match c.st with Uninit -> Runinit | Freed -> Rfreed | Init v -> Rok v

let write t ~slot ~gen v =
  if slot < 0 || slot >= t.n then `Freed
  else
    let c = t.cells.(slot) in
    if c.gen <> gen then `Stale
    else
      match c.st with
      | Freed -> `Freed
      | Uninit | Init _ ->
          c.st <- Init v;
          `Ok

let free t ~slot ~gen =
  if slot < 0 || slot >= t.n then `Double
  else
    let c = t.cells.(slot) in
    if c.gen <> gen then `Stale
    else
      match c.st with
      | Freed -> `Double
      | Uninit | Init _ ->
          c.st <- Freed;
          t.free_list <- slot :: t.free_list;
          t.live <- t.live - 1;
          `Ok

let live t = t.live
let total_allocs t = t.total_allocs
