(** Tagged pointer provenance.

    Every pointer value the interpreter manufactures remembers *where*
    it points — which allocation, which stack slot — and *which
    generation* of that storage it was minted against. Storage
    generations bump on every reuse (a heap slot recycled off the free
    list, a stack local re-entering scope via [StorageLive]), so a
    pointer that is numerically plausible but refers to freed or
    recycled storage still identifies itself as stale and traps,
    exactly the Miri discipline the ROADMAP asks for. *)

type target =
  | Null  (** the literal null pointer ([0 as *const T], [ptr::null]) *)
  | Opaque of string
      (** a pointer the machine cannot model (FFI result, exotic
          aliasing); dereferencing degrades to an inconclusive verdict
          rather than guessing *)
  | Heap of int * int  (** heap allocation: table slot, generation *)
  | Stack of int * int * int
      (** stack storage: frame uid, local index, storage generation *)
  | Lockcell of int  (** the interior cell guarded by lock [id] *)

type ptr = {
  target : target;
  path : Ir.Mir.proj list;
      (** projection path from the storage root (field/index steps
          accumulated by [&x.f]-style borrows) *)
  off : int;  (** displacement accumulated by [ptr::offset] *)
}

let make target = { target; path = []; off = 0 }
let null = make Null
let opaque why = make (Opaque why)
let heap slot gen = make (Heap (slot, gen))
let stack uid local gen = make (Stack (uid, local, gen))
let lockcell id = make (Lockcell id)

let describe p =
  let base =
    match p.target with
    | Null -> "null"
    | Opaque why -> "opaque pointer (" ^ why ^ ")"
    | Heap (slot, gen) -> Printf.sprintf "heap allocation #%d (gen %d)" slot gen
    | Stack (uid, local, gen) ->
        Printf.sprintf "stack slot _%d of frame #%d (gen %d)" local uid gen
    | Lockcell id -> Printf.sprintf "lock #%d interior" id
  in
  if p.off <> 0 then Printf.sprintf "%s%+d" base p.off else base
