(** The MIR-lite abstract machine: executes lowered bodies directly,
    with tagged pointer provenance ({!Provenance}), an allocation table
    ({!Heap}), per-thread locksets ({!Lockset}) and a bounded seeded
    scheduler ({!Sched}).

    Memory and thread-safety violations manifest as structured *traps*
    ([E0601]) instead of crashes; constructs the machine cannot model
    (FFI, exotic pointer arithmetic) taint the run with an explicit
    *unsupported* marker so the verdict degrades to inconclusive
    ([W0604]) rather than claiming a clean execution. Every step polls
    the fuel and deadline budgets ([W0602]/[W0603]). *)

open Support
module Mir = Ir.Mir
module P = Provenance

(* ---------------- trap taxonomy ------------------------------------ *)

type trap_class =
  | Uaf
  | Double_free
  | Invalid_free
  | Uninit_read
  | Null_deref
  | Double_lock

let all_classes =
  [ Uaf; Double_free; Invalid_free; Uninit_read; Null_deref; Double_lock ]

let class_name = function
  | Uaf -> "uaf"
  | Double_free -> "double_free"
  | Invalid_free -> "invalid_free"
  | Uninit_read -> "uninit_read"
  | Null_deref -> "null_deref"
  | Double_lock -> "double_lock"

type trap = {
  tr_class : trap_class;
  tr_fn : string;  (** function executing when the trap fired *)
  tr_span : Span.t;  (** source span of the trapping statement *)
  tr_msg : string;
}

exception Trap_exn of trap
exception Panic_exn of string

(* ---------------- values ------------------------------------------- *)

type value =
  | Vunit
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstr of string
  | Vfn of string
  | Vclosure of string * value array  (** body id, captures *)
  | Vstruct of string * (string * value) array
  | Vtuple of value array
  | Vvariant of string * string * value array  (** enum, variant, fields *)
  | Vvec of value array
  | Vptr of P.ptr  (** references and raw pointers *)
  | Vbox of P.ptr  (** owning heap pointer: drop frees *)
  | Vshared of P.ptr
      (** non-owning interior cell ([RefCell]/[Cell]/atomics/[Vec]
          storage); drop is a no-op (shared, possibly [Rc]'d) *)
  | Vmutex of int
  | Vguard of int * Lockset.mode  (** lock guard: drop releases *)
  | Vcond of int
  | Vsender of int
  | Vreceiver of int
  | Vthread of int
  | Vuninit  (** never-written storage: reading it is a trap *)
  | Vmoved  (** moved-from storage: reads havoc, drops are skipped *)
  | Vdropped  (** dropped storage: reading it is a use-after-free *)
  | Vhavoc  (** unknown value (unsupported construct) *)

type slot = { mutable v : value }

(* ---------------- frames and threads ------------------------------- *)

type frame = {
  f_uid : int;
  body : Mir.body;
  stmts : Mir.stmt array array;  (** per-block statement arrays *)
  slots : slot array;
  gens : int array;  (** per-local storage generation *)
  mutable bb : int;
  mutable ip : int;  (** next statement index; past the end = terminator *)
  ret : ret_info option;  (** [None] for a thread's bottom frame *)
}

and ret_info = { r_caller : frame; r_dest : Mir.place; r_succ : int }

type pending =
  | Plock of int * Lockset.mode * Mir.call * int
  | Pjoin of int * Mir.call * int
  | Precv of int * Mir.call * int
  | Pwait of int * int * value * Mir.call * int
      (** condvar id, lock id, guard value to return, call, succ *)

type status = Runnable | Blocked | Finished

type thread = {
  tid : int;
  mutable stack : frame list;  (** top frame first *)
  mutable status : status;
  mutable pending : pending option;
  mutable panicked : bool;
  mutable result : value;
}

(* ---------------- machine ------------------------------------------ *)

type t = {
  prog : Mir.program;
  heap : value Heap.t;
  locks : value Lockset.t;
  mutable threads : thread list;  (** in tid order *)
  frames : (int, frame) Hashtbl.t;  (** live frames by uid *)
  statics : (string, slot) Hashtbl.t;  (** shared storage for statics *)
  chans : (int, value Queue.t) Hashtbl.t;
  stmt_memo : (string, Mir.stmt array array) Hashtbl.t;
  mutable next_uid : int;
  mutable next_tid : int;
  mutable next_chan : int;
  mutable gen_counter : int;
  mutable steps : int;
  mutable spawned : int;
  mutable unsupported : string list;  (** newest first, deduped *)
  mutable cur_fn : string;
  mutable cur_span : Span.t;
}

type outcome =
  | Done of bool  (** completed; [true] = a thread panicked on the way *)
  | Trapped of trap
  | Fuel_out
  | Deadline_out
  | Deadlocked of bool  (** [true] = some thread was parked on a lock *)

type run_result = {
  outcome : outcome;
  steps : int;
  spawned : int;
  unsupported : string list;  (** sorted, deduped *)
}

let trap (m : t) cls fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Trap_exn
           { tr_class = cls; tr_fn = m.cur_fn; tr_span = m.cur_span; tr_msg = msg }))
    fmt

let flag (m : t) why = if not (List.mem why m.unsupported) then m.unsupported <- why :: m.unsupported

let fresh_gen (m : t) =
  m.gen_counter <- m.gen_counter + 1;
  m.gen_counter

(* ---------------- statics ------------------------------------------ *)

let rec default_of_ty ?(depth = 0) (m : t) (ty : Sema.Ty.t) : value =
  let recur t = default_of_ty ~depth:(depth + 1) m t in
  if depth > 6 then Vhavoc
  else
    match ty with
    | Sema.Ty.Prim Sema.Ty.Unit -> Vunit
    | Sema.Ty.Prim Sema.Ty.Bool -> Vbool false
    | Sema.Ty.Prim Sema.Ty.F64 -> Vfloat 0.
    | Sema.Ty.Prim Sema.Ty.Str -> Vstr ""
    | Sema.Ty.Prim _ -> Vint 0
    | Sema.Ty.Ref (_, inner) | Sema.Ty.Ptr (_, inner) ->
        (* angelic synthesis: point at a fresh live cell holding a
           synthesized inner value, so reads through it are observed
           rather than degrading *)
        let slot, gen = Heap.alloc m.heap (Heap.Init (recur inner)) in
        Vptr (P.heap slot gen)
    | Sema.Ty.Tuple ts -> Vtuple (Array.of_list (List.map recur ts))
    | Sema.Ty.Named (("Mutex" | "RwLock"), args) ->
        let inner = match args with a :: _ -> recur a | [] -> Vint 0 in
        Vmutex (Lockset.new_lock m.locks inner)
    | Sema.Ty.Named ("Condvar", _) -> Vcond (Lockset.new_cond m.locks)
    | Sema.Ty.Named (n, args)
      when String.length n >= 6 && String.sub n 0 6 = "Atomic" ->
        let inner = match args with a :: _ -> recur a | [] -> Vint 0 in
        let slot, gen = Heap.alloc m.heap (Heap.Init inner) in
        Vshared (P.heap slot gen)
    | Sema.Ty.Named (("Arc" | "Rc"), [ a ]) -> recur a
    | Sema.Ty.Named ("Box", [ a ]) ->
        let slot, gen = Heap.alloc m.heap (Heap.Init (recur a)) in
        Vbox (P.heap slot gen)
    | Sema.Ty.Named (("Vec" | "VecDeque"), args) ->
        (* one synthesized element, so indexing in library code under
           test is observable instead of degrading on emptiness *)
        let elem = match args with a :: _ -> recur a | [] -> Vint 0 in
        let slot, gen = Heap.alloc m.heap (Heap.Init (Vvec [| elem |])) in
        Vshared (P.heap slot gen)
    | Sema.Ty.Named (("RefCell" | "Cell" | "UnsafeCell"), [ a ]) ->
        let slot, gen = Heap.alloc m.heap (Heap.Init (recur a)) in
        Vshared (P.heap slot gen)
    | Sema.Ty.Named ("String", _) -> Vstr ""
    | Sema.Ty.Named ("Option", args) ->
        Vvariant
          ( "Option",
            "Some",
            [| (match args with a :: _ -> recur a | [] -> Vint 0) |] )
    | Sema.Ty.Named ("Result", args) ->
        Vvariant
          ( "Result",
            "Ok",
            [| (match args with a :: _ -> recur a | [] -> Vint 0) |] )
    | Sema.Ty.Named (n, _) -> (
        match Sema.Env.find_struct m.prog.Mir.prog_env n with
        | Some sd ->
            Vstruct
              ( n,
                Array.of_list
                  (List.map
                     (fun (f : Syntax.Ast.field_def) ->
                       ( f.Syntax.Ast.field_name,
                         recur
                           (Sema.Env.ty_of_ast m.prog.Mir.prog_env
                              f.Syntax.Ast.field_ty) ))
                     sd.Syntax.Ast.s_fields) )
        | None -> (
            match Sema.Env.find_enum m.prog.Mir.prog_env n with
            | Some ed -> (
                match ed.Syntax.Ast.e_variants with
                | v :: _ ->
                    Vvariant
                      ( n,
                        v.Syntax.Ast.v_name,
                        Array.of_list
                          (List.map
                             (fun t ->
                               recur (Sema.Env.ty_of_ast m.prog.Mir.prog_env t))
                             v.Syntax.Ast.v_args) )
                | [] -> Vhavoc)
            | None -> Vhavoc))
    | _ -> Vhavoc

(* ---------------- frame construction ------------------------------- *)

let stmt_arrays (m : t) (body : Mir.body) =
  match Hashtbl.find_opt m.stmt_memo body.Mir.fn_id with
  | Some a -> a
  | None ->
      let a =
        Array.map (fun (b : Mir.block) -> Array.of_list b.Mir.stmts) body.Mir.blocks
      in
      Hashtbl.replace m.stmt_memo body.Mir.fn_id a;
      a

let push_frame (m : t) th (body : Mir.body) (args : value list) ~(ret : ret_info option) =
  let uid = m.next_uid in
  m.next_uid <- uid + 1;
  let nlocals = Array.length body.Mir.locals in
  let slots = Array.init nlocals (fun _ -> { v = Vuninit }) in
  let gens = Array.init nlocals (fun _ -> fresh_gen m) in
  (* statics share one slot record machine-wide *)
  Array.iteri
    (fun i (info : Mir.local_info) ->
      match info.Mir.l_name with
      | Some n when String.length n > 7 && String.sub n 0 7 = "static:" -> (
          match Hashtbl.find_opt m.statics n with
          | Some s -> slots.(i) <- s
          | None ->
              let s = { v = default_of_ty m info.Mir.l_ty } in
              Hashtbl.replace m.statics n s;
              slots.(i) <- s)
      | _ -> ())
    body.Mir.locals;
  List.iteri (fun i v -> if i < nlocals then slots.(i).v <- v) args;
  let fr =
    { f_uid = uid; body; stmts = stmt_arrays m body; slots; gens; bb = 0; ip = 0; ret }
  in
  Hashtbl.replace m.frames uid fr;
  th.stack <- fr :: th.stack;
  fr

let spawn_thread (m : t) (body : Mir.body) (args : value list) =
  let tid = m.next_tid in
  m.next_tid <- tid + 1;
  let th =
    {
      tid;
      stack = [];
      status = Runnable;
      pending = None;
      panicked = false;
      result = Vunit;
    }
  in
  ignore (push_frame m th body args ~ret:None);
  m.threads <- m.threads @ [ th ];
  th

(* ---------------- locations ---------------------------------------- *)

type loc = { l_target : P.target; l_path : Mir.proj list; l_off : int }

let loc_of_ptr (p : P.ptr) rest =
  { l_target = p.P.target; l_path = p.P.path @ rest; l_off = p.P.off }

let ptr_of_loc (l : loc) : P.ptr =
  { P.target = l.l_target; P.path = l.l_path; P.off = l.l_off }

(* Walk a value along a projection path (reads). Unknown shapes havoc
   rather than trap: shape mismatches are type-system territory, the
   machine only traps on memory-state violations. *)
let rec get_path (m : t) (v : value) (path : Mir.proj list) : value =
  match path with
  | [] -> v
  | pr :: rest -> (
      match v with
      | Vuninit -> trap m Uninit_read "read of uninitialized storage"
      | Vdropped -> trap m Uaf "projection into dropped storage"
      | Vmoved | Vhavoc -> Vhavoc
      | _ -> (
          match (pr, v) with
          | Mir.Field f, Vstruct (_, fields) -> (
              match Array.find_opt (fun (n, _) -> String.equal n f) fields with
              | Some (_, fv) -> get_path m fv rest
              | None -> Vhavoc)
          | Mir.Field f, (Vtuple vs | Vvariant (_, _, vs) | Vclosure (_, vs)) -> (
              match int_of_string_opt f with
              | Some i when i >= 0 && i < Array.length vs ->
                  get_path m vs.(i) rest
              | _ -> Vhavoc)
          | Mir.Index, Vvec vs ->
              if Array.length vs = 0 then begin
                flag m "index into empty vec";
                Vhavoc
              end
              else get_path m vs.(0) rest
          | Mir.Downcast vn, Vvariant (_, vn', fields) ->
              if String.equal vn vn' then get_path m (Vtuple fields) rest
              else Vhavoc
          | _, (Vptr p | Vbox p | Vshared p) ->
              (* auto-deref: [v[i]]/[v.f] on a pointer-shaped value
                 projects into its target *)
              get_path m (read_loc m (loc_of_ptr p [])) path
          | _ ->
              flag m "projection through unmodeled value";
              Vhavoc))

(* Rebuild [v] with the sub-value at [path] replaced by [nv]. *)
and set_path (m : t) (v : value) (path : Mir.proj list) (nv : value) : value =
  match path with
  | [] -> nv
  | pr :: rest -> (
      match (pr, v) with
      | Mir.Field f, Vstruct (s, fields) ->
          let fields = Array.copy fields in
          Array.iteri
            (fun i (n, fv) ->
              if String.equal n f then fields.(i) <- (n, set_path m fv rest nv))
            fields;
          Vstruct (s, fields)
      | Mir.Field f, Vtuple vs -> (
          match int_of_string_opt f with
          | Some i when i >= 0 && i < Array.length vs ->
              let vs = Array.copy vs in
              vs.(i) <- set_path m vs.(i) rest nv;
              Vtuple vs
          | _ -> v)
      | Mir.Field f, Vvariant (e, vn, vs) -> (
          match int_of_string_opt f with
          | Some i when i >= 0 && i < Array.length vs ->
              let vs = Array.copy vs in
              vs.(i) <- set_path m vs.(i) rest nv;
              Vvariant (e, vn, vs)
          | _ -> v)
      | Mir.Index, Vvec vs ->
          if Array.length vs = 0 then v
          else begin
            let vs = Array.copy vs in
            vs.(0) <- set_path m vs.(0) rest nv;
            Vvec vs
          end
      | Mir.Downcast vn, Vvariant (e, vn', fields) when String.equal vn vn' ->
          (match set_path m (Vtuple fields) rest nv with
          | Vtuple fields' -> Vvariant (e, vn', fields')
          | _ -> v)
      | _, (Vptr p | Vbox p | Vshared p) ->
          write_loc m (loc_of_ptr p (pr :: rest)) nv;
          v
      | _, (Vuninit | Vmoved | Vdropped) ->
          trap m Uninit_read "write through projection into uninitialized storage"
      | _ ->
          flag m "write through unmodeled projection";
          v)

(* Read the raw root value behind a location's target (no path yet). *)
and read_root (m : t) (l : loc) : value =
  match l.l_target with
  | P.Null -> trap m Null_deref "dereference of null pointer"
  | P.Opaque why ->
      flag m ("deref of opaque pointer: " ^ why);
      Vhavoc
  | P.Heap (slot, gen) -> (
      match Heap.read m.heap ~slot ~gen with
      | Heap.Rok v -> v
      | Heap.Runinit -> trap m Uninit_read "read of uninitialized heap allocation"
      | Heap.Rfreed -> trap m Uaf "use of freed heap allocation #%d" slot
      | Heap.Rstale ->
          trap m Uaf "use of stale pointer into recycled heap slot #%d" slot)
  | P.Stack (uid, local, gen) -> (
      match Hashtbl.find_opt m.frames uid with
      | None -> trap m Uaf "use of pointer into a dead stack frame"
      | Some fr ->
          if local < 0 || local >= Array.length fr.slots then Vhavoc
          else if fr.gens.(local) <> gen then
            trap m Uaf "use of pointer into out-of-scope stack storage _%d" local
          else (
            match fr.slots.(local).v with
            | Vuninit -> trap m Uninit_read "read of uninitialized local _%d" local
            | Vdropped -> trap m Uaf "use of dropped local _%d" local
            | Vmoved -> Vhavoc
            | v -> v))
  | P.Lockcell id -> (
      match Lockset.inner m.locks id with
      | Some v -> v
      | None ->
          flag m "deref of unknown lock interior";
          Vhavoc)

and read_loc (m : t) (l : loc) : value =
  if l.l_off <> 0 then begin
    flag m "read through offset pointer";
    Vhavoc
  end
  else get_path m (read_root m l) l.l_path

and write_loc (m : t) (l : loc) (nv : value) : unit =
  if l.l_off <> 0 then flag m "write through offset pointer"
  else
    match l.l_target with
    | P.Null -> trap m Null_deref "write through null pointer"
    | P.Opaque why -> flag m ("write through opaque pointer: " ^ why)
    | P.Heap (slot, gen) ->
        let root =
          if l.l_path = [] then nv
          else
            match Heap.read m.heap ~slot ~gen with
            | Heap.Rok v -> set_path m v l.l_path nv
            | Heap.Runinit ->
                trap m Uninit_read "write into field of uninitialized allocation"
            | Heap.Rfreed -> trap m Uaf "write into freed heap allocation #%d" slot
            | Heap.Rstale ->
                trap m Uaf "write through stale pointer into recycled slot #%d" slot
        in
        (match Heap.write m.heap ~slot ~gen root with
        | `Ok -> ()
        | `Freed -> trap m Uaf "write into freed heap allocation #%d" slot
        | `Stale ->
            trap m Uaf "write through stale pointer into recycled slot #%d" slot)
    | P.Stack (uid, local, gen) -> (
        match Hashtbl.find_opt m.frames uid with
        | None -> trap m Uaf "write through pointer into a dead stack frame"
        | Some fr ->
            if local < 0 || local >= Array.length fr.slots then ()
            else if fr.gens.(local) <> gen then
              trap m Uaf "write through pointer into out-of-scope storage _%d" local
            else
              let s = fr.slots.(local) in
              if l.l_path = [] then s.v <- nv
              else
                (match s.v with
                | Vuninit | Vmoved | Vdropped ->
                    trap m Uninit_read
                      "write into projection of uninitialized local _%d" local
                | v -> s.v <- set_path m v l.l_path nv))
    | P.Lockcell id ->
        let root =
          if l.l_path = [] then nv
          else
            match Lockset.inner m.locks id with
            | Some v -> set_path m v l.l_path nv
            | None -> nv
        in
        Lockset.set_inner m.locks id root

(* Resolve a place in [fr] to a location, reading through derefs. *)
let resolve_place (m : t) (fr : frame) (pl : Mir.place) : loc =
  let start =
    {
      l_target = P.Stack (fr.f_uid, pl.Mir.base, fr.gens.(pl.Mir.base));
      l_path = [];
      l_off = 0;
    }
  in
  List.fold_left
    (fun l (pr : Mir.proj) ->
      match pr with
      | Mir.Deref -> (
          match read_loc m l with
          | Vptr p | Vbox p | Vshared p -> loc_of_ptr p []
          | Vguard (id, _) -> { l_target = P.Lockcell id; l_path = []; l_off = 0 }
          | Vmutex id -> { l_target = P.Lockcell id; l_path = []; l_off = 0 }
          | Vuninit -> trap m Uninit_read "deref of uninitialized pointer"
          | Vdropped -> trap m Uaf "deref through dropped storage"
          | _ ->
              flag m "deref of non-pointer value";
              { l_target = P.Opaque "non-pointer deref"; l_path = []; l_off = 0 })
      | pr -> { l with l_path = l.l_path @ [ pr ] })
    start pl.Mir.proj

let read_place (m : t) fr (pl : Mir.place) : value =
  if pl.Mir.proj = [] then (
    match fr.slots.(pl.Mir.base).v with
    | Vuninit -> trap m Uninit_read "read of uninitialized local _%d" pl.Mir.base
    | Vdropped -> trap m Uaf "use of dropped value _%d" pl.Mir.base
    | Vmoved -> Vhavoc
    | v -> v)
  else read_loc m (resolve_place m fr pl)

let write_place (m : t) fr (pl : Mir.place) (v : value) : unit =
  if pl.Mir.proj = [] then fr.slots.(pl.Mir.base).v <- v
  else write_loc m (resolve_place m fr pl) v

(* ---------------- operands and rvalues ----------------------------- *)

let const_value = function
  | Mir.Cint n -> Vint n
  | Mir.Cbool b -> Vbool b
  | Mir.Cstr s -> Vstr s
  | Mir.Cfloat f -> Vfloat f
  | Mir.Cunit -> Vunit
  | Mir.Cfn f -> Vfn f

let eval_operand (m : t) fr (op : Mir.operand) : value =
  match op with
  | Mir.Const c -> const_value c
  | Mir.Copy pl -> read_place m fr pl
  | Mir.Move pl ->
      let v = read_place m fr pl in
      if pl.Mir.proj = [] then fr.slots.(pl.Mir.base).v <- Vmoved;
      v

let as_int = function
  | Vint n -> Some n
  | Vbool b -> Some (if b then 1 else 0)
  | _ -> None

let variant_index env enum variant =
  match (enum, variant) with
  | "Option", "None" -> 0
  | "Option", "Some" -> 1
  | "Result", "Ok" -> 0
  | "Result", "Err" -> 1
  | _ -> (
      match Sema.Env.find_enum env enum with
      | Some ed ->
          let rec idx i = function
            | [] -> -1
            | (v : Syntax.Ast.variant_def) :: rest ->
                if String.equal v.Syntax.Ast.v_name variant then i
                else idx (i + 1) rest
          in
          idx 0 ed.Syntax.Ast.e_variants
      | None -> -1)

let eval_binop (m : t) (op : Mir.binop) (a : value) (b : value) : value =
  let open Syntax.Ast in
  match (a, b) with
  | Vint x, Vint y -> (
      match op with
      | Add -> Vint (x + y)
      | Sub -> Vint (x - y)
      | Mul -> Vint (x * y)
      | Div -> if y = 0 then raise (Panic_exn "divide by zero") else Vint (x / y)
      | Rem -> if y = 0 then raise (Panic_exn "divide by zero") else Vint (x mod y)
      | BitXor -> Vint (x lxor y)
      | BitAnd -> Vint (x land y)
      | BitOr -> Vint (x lor y)
      | Shl -> Vint (x lsl (y land 62))
      | Eq -> Vbool (x = y)
      | Ne -> Vbool (x <> y)
      | Lt -> Vbool (x < y)
      | Le -> Vbool (x <= y)
      | Gt -> Vbool (x > y)
      | Ge -> Vbool (x >= y)
      | And -> Vbool (x <> 0 && y <> 0)
      | Or -> Vbool (x <> 0 || y <> 0))
  | Vbool x, Vbool y -> (
      match op with
      | And -> Vbool (x && y)
      | Or -> Vbool (x || y)
      | Eq -> Vbool (x = y)
      | Ne -> Vbool (x <> y)
      | BitAnd -> Vbool (x && y)
      | BitOr -> Vbool (x || y)
      | BitXor -> Vbool (x <> y)
      | _ -> Vhavoc)
  | Vfloat x, Vfloat y -> (
      match op with
      | Add -> Vfloat (x +. y)
      | Sub -> Vfloat (x -. y)
      | Mul -> Vfloat (x *. y)
      | Div -> Vfloat (x /. y)
      | Eq -> Vbool (x = y)
      | Ne -> Vbool (x <> y)
      | Lt -> Vbool (x < y)
      | Le -> Vbool (x <= y)
      | Gt -> Vbool (x > y)
      | Ge -> Vbool (x >= y)
      | _ -> Vhavoc)
  | Vstr x, Vstr y -> (
      match op with
      | Add -> Vstr (x ^ y)
      | Eq -> Vbool (String.equal x y)
      | Ne -> Vbool (not (String.equal x y))
      | _ -> Vhavoc)
  | Vptr p, Vptr q -> (
      match op with
      | Eq -> Vbool (p = q)
      | Ne -> Vbool (p <> q)
      | _ -> Vhavoc)
  | _ ->
      ignore m;
      Vhavoc

let eval_unop (op : Mir.unop) (v : value) : value =
  match (op, v) with
  | Syntax.Ast.Neg, Vint n -> Vint (-n)
  | Syntax.Ast.Neg, Vfloat f -> Vfloat (-.f)
  | Syntax.Ast.Not, Vbool b -> Vbool (not b)
  | Syntax.Ast.Not, Vint n -> Vint (lnot n)
  | _ -> Vhavoc

let eval_rvalue (m : t) fr (rv : Mir.rvalue) : value =
  match rv with
  | Mir.Use op -> eval_operand m fr op
  | Mir.Ref (_, pl) | Mir.AddrOf (_, pl) ->
      if pl.Mir.proj = [] then
        Vptr (P.stack fr.f_uid pl.Mir.base fr.gens.(pl.Mir.base))
      else Vptr (ptr_of_loc (resolve_place m fr pl))
  | Mir.BinaryOp (op, a, b) ->
      eval_binop m op (eval_operand m fr a) (eval_operand m fr b)
  | Mir.UnaryOp (op, a) -> eval_unop op (eval_operand m fr a)
  | Mir.Aggregate (kind, ops) -> (
      let vals = List.map (eval_operand m fr) ops in
      match kind with
      | Mir.Agg_tuple -> Vtuple (Array.of_list vals)
      | Mir.Agg_struct s ->
          let names =
            match Sema.Env.find_struct (m.prog).Mir.prog_env s with
            | Some sd ->
                List.map (fun (f : Syntax.Ast.field_def) -> f.Syntax.Ast.field_name)
                  sd.Syntax.Ast.s_fields
            | None -> []
          in
          let arr =
            List.mapi
              (fun i v ->
                let n =
                  match List.nth_opt names i with
                  | Some n -> n
                  | None -> string_of_int i
                in
                (n, v))
              vals
          in
          Vstruct (s, Array.of_list arr)
      | Mir.Agg_variant (e, vn) -> Vvariant (e, vn, Array.of_list vals)
      | Mir.Agg_closure id -> Vclosure (id, Array.of_list vals)
      | Mir.Agg_vec ->
          let slot, gen = Heap.alloc m.heap (Heap.Init (Vvec (Array.of_list vals))) in
          Vshared (P.heap slot gen))
  | Mir.Cast (op, ty) -> (
      let v = eval_operand m fr op in
      match (v, ty) with
      | Vint 0, Sema.Ty.Ptr _ -> Vptr P.null
      | Vint _, Sema.Ty.Ptr _ -> Vptr (P.opaque "int-to-pointer cast")
      | v, _ -> v)
  | Mir.Discriminant pl -> (
      match read_place m fr pl with
      | Vvariant (e, vn, _) ->
          let i = variant_index (m.prog).Mir.prog_env e vn in
          if i < 0 then Vhavoc else Vint i
      | Vbool b -> Vint (if b then 1 else 0)
      | Vint n -> Vint n
      | _ -> Vhavoc)
  | Mir.Alloc _ ->
      let slot, gen = Heap.alloc m.heap Heap.Uninit in
      Vptr (P.heap slot gen)

(* ---------------- drop semantics ----------------------------------- *)

let rec drop_value (m : t) ~tid ~depth (v : value) : unit =
  if depth > 64 then ()
  else
    match v with
    | Vbox p -> (
        (* free the owned allocation (contents dropped first) *)
        match p.P.target with
        | P.Heap (slot, gen) ->
            (match Heap.read m.heap ~slot ~gen with
            | Heap.Rok inner -> drop_value m ~tid ~depth:(depth + 1) inner
            | _ -> ());
            (match Heap.free m.heap ~slot ~gen with
            | `Ok -> ()
            | `Double -> trap m Double_free "double free of heap allocation #%d" slot
            | `Stale ->
                trap m Double_free
                  "free through stale pointer into recycled slot #%d" slot)
        | P.Null -> trap m Invalid_free "drop of box holding a null pointer"
        | P.Stack _ ->
            trap m Invalid_free "drop of box pointing into stack storage"
        | P.Opaque _ | P.Lockcell _ -> flag m "drop of unmodeled box")
    | Vguard (id, mode) -> Lockset.release m.locks id ~tid mode
    | Vmutex id -> (
        match Lockset.inner m.locks id with
        | Some inner -> drop_value m ~tid ~depth:(depth + 1) inner
        | None -> ())
    | Vstruct (_, fields) ->
        Array.iter (fun (_, fv) -> drop_value m ~tid ~depth:(depth + 1) fv) fields
    | Vtuple vs | Vvariant (_, _, vs) | Vclosure (_, vs) ->
        Array.iter (drop_value m ~tid ~depth:(depth + 1)) vs
    | Vvec vs -> Array.iter (drop_value m ~tid ~depth:(depth + 1)) vs
    | _ -> ()

(* ---------------- helpers for builtins ----------------------------- *)

let rec chase (m : t) ~depth (v : value) : value =
  if depth > 4 then v
  else
    match v with
    | Vptr p -> chase m ~depth:(depth + 1) (read_loc m (loc_of_ptr p []))
    | v -> v

let lock_id_of (m : t) v =
  match chase m ~depth:0 v with Vmutex id -> Some id | _ -> None

let cell_ptr_of (m : t) v =
  match v with
  | Vshared p -> Some p
  | Vptr p -> (
      match read_loc m (loc_of_ptr p []) with
      | Vshared q -> Some q
      | _ -> Some p)
  | Vbox p -> Some p
  | _ -> None

let ok v = Vvariant ("Result", "Ok", [| v |])
let err v = Vvariant ("Result", "Err", [| v |])
let some v = Vvariant ("Option", "Some", [| v |])
let none = Vvariant ("Option", "None", [||])

let is_macro name =
  let n = String.length name in
  n > 0 && name.[n - 1] = '!'

(* ---------------- stepping ----------------------------------------- *)

(* Write the call's destination in the caller and advance past it. *)
let complete_call (m : t) fr (c : Mir.call) succ (v : value) =
  write_place m fr c.Mir.dest v;
  fr.bb <- succ;
  fr.ip <- 0

let pop_frame (m : t) th =
  match th.stack with
  | [] -> ()
  | fr :: rest ->
      Hashtbl.remove m.frames fr.f_uid;
      th.stack <- rest

let finish_thread (m : t) th ~panicked (v : value) =
  List.iter (fun (fr : frame) -> Hashtbl.remove m.frames fr.f_uid) th.stack;
  th.stack <- [];
  th.status <- Finished;
  th.panicked <- panicked;
  th.result <- v

let do_return (m : t) th (v : value) =
  match th.stack with
  | [] -> ()
  | fr :: _ -> (
      pop_frame m th;
      match fr.ret with
      | None -> finish_thread m th ~panicked:false v
      | Some { r_caller; r_dest; r_succ } ->
          write_place m r_caller r_dest v;
          r_caller.bb <- r_succ;
          r_caller.ip <- 0)

(* Dispatch a call to a user body: closure captures come first. *)
let enter_body (m : t) th (body : Mir.body) (args : value list) (c : Mir.call) succ =
  match th.stack with
  | [] -> ()
  | caller :: _ ->
      let ret = Some { r_caller = caller; r_dest = c.Mir.dest; r_succ = succ } in
      ignore (push_frame m th body args ~ret)

let find_method_body (m : t) head name =
  match Mir.find_body m.prog (head ^ "::" ^ name) with
  | Some b -> Some b
  | None -> Mir.find_body m.prog name

(* Big builtin dispatch. [args] are already evaluated. *)
let rec exec_builtin (m : t) th fr (b : Mir.builtin) (args : value list) (c : Mir.call) succ =
  let tid = th.tid in
  let arg i = match List.nth_opt args i with Some v -> v | None -> Vhavoc in
  let ret v = complete_call m fr c succ v in
  let havoc why =
    flag m why;
    ret Vhavoc
  in
  let acquire_or_block mode id =
    match Lockset.acquire m.locks id ~tid mode with
    | `Ok -> ret (ok (Vguard (id, mode)))
    | `Self ->
        trap m Double_lock
          "thread %d acquired lock #%d it already holds (self-deadlock)" tid id
    | `Busy ->
        th.pending <- Some (Plock (id, mode, c, succ));
        th.status <- Blocked
  in
  let try_acquire mode id =
    match Lockset.acquire m.locks id ~tid mode with
    | `Ok -> ret (ok (Vguard (id, mode)))
    | `Self ->
        trap m Double_lock
          "thread %d try-locked lock #%d it already holds" tid id
    | `Busy -> ret (err Vunit)
  in
  match b with
  | Mir.MutexLock -> (
      match lock_id_of m (arg 0) with
      | Some id -> acquire_or_block Lockset.Excl id
      | None -> havoc "lock of unmodeled mutex")
  | Mir.RwWrite -> (
      match lock_id_of m (arg 0) with
      | Some id -> acquire_or_block Lockset.Excl id
      | None -> havoc "write-lock of unmodeled rwlock")
  | Mir.RwRead -> (
      match lock_id_of m (arg 0) with
      | Some id -> acquire_or_block Lockset.Shared id
      | None -> havoc "read-lock of unmodeled rwlock")
  | Mir.MutexTryLock | Mir.RwTryWrite -> (
      match lock_id_of m (arg 0) with
      | Some id -> try_acquire Lockset.Excl id
      | None -> havoc "try-lock of unmodeled mutex")
  | Mir.RwTryRead -> (
      match lock_id_of m (arg 0) with
      | Some id -> try_acquire Lockset.Shared id
      | None -> havoc "try-read of unmodeled rwlock")
  | Mir.ResultUnwrap | Mir.OptionUnwrap -> (
      match arg 0 with
      | Vvariant (_, ("Ok" | "Some"), fields) ->
          ret (if Array.length fields > 0 then fields.(0) else Vunit)
      | Vvariant (_, "Err", _) -> raise (Panic_exn "unwrap of Err")
      | Vvariant (_, "None", _) -> raise (Panic_exn "unwrap of None")
      | v -> ret v (* already unwrapped / unknown: lenient *))
  | Mir.PtrRead -> (
      match arg 0 with
      | Vptr p | Vbox p | Vshared p -> ret (read_loc m (loc_of_ptr p []))
      | Vuninit -> trap m Uninit_read "ptr::read of uninitialized pointer"
      | _ -> havoc "ptr::read of unmodeled pointer")
  | Mir.PtrWrite -> (
      match arg 0 with
      | Vptr p | Vbox p | Vshared p ->
          write_loc m (loc_of_ptr p []) (arg 1);
          ret Vunit
      | Vuninit -> trap m Uninit_read "ptr::write through uninitialized pointer"
      | _ -> havoc "ptr::write through unmodeled pointer")
  | Mir.PtrCopy -> (
      match (arg 0, arg 1) with
      | (Vptr src | Vbox src | Vshared src), (Vptr dst | Vbox dst | Vshared dst)
        ->
          let v = read_loc m (loc_of_ptr src []) in
          write_loc m (loc_of_ptr dst []) v;
          ret Vunit
      | _ -> havoc "ptr::copy of unmodeled pointers")
  | Mir.PtrOffset -> (
      match arg 0 with
      | Vptr p ->
          let d = match as_int (arg 1) with Some n -> n | None -> 1 in
          ret (Vptr { p with P.off = p.P.off + d })
      | _ -> havoc "offset of unmodeled pointer")
  | Mir.PtrNull -> ret (Vptr P.null)
  | Mir.MemDrop ->
      (* mark whole-local operands dropped so later uses trap *)
      (match c.Mir.args with
      | (Mir.Copy pl | Mir.Move pl) :: _ when pl.Mir.proj = [] ->
          fr.slots.(pl.Mir.base).v <- Vdropped
      | _ -> ());
      drop_value m ~tid ~depth:0 (arg 0);
      ret Vunit
  | Mir.MemForget -> ret Vunit
  | Mir.MemReplace -> (
      match arg 0 with
      | Vptr p | Vbox p | Vshared p ->
          let l = loc_of_ptr p [] in
          let old = read_loc m l in
          write_loc m l (arg 1);
          ret old
      | _ -> havoc "mem::replace through unmodeled pointer")
  | Mir.MemSwap -> (
      match (arg 0, arg 1) with
      | (Vptr pa | Vbox pa | Vshared pa), (Vptr pb | Vbox pb | Vshared pb) ->
          let la = loc_of_ptr pa [] and lb = loc_of_ptr pb [] in
          let va = read_loc m la and vb = read_loc m lb in
          write_loc m la vb;
          write_loc m lb va;
          ret Vunit
      | _ -> havoc "mem::swap of unmodeled pointers")
  | Mir.MemTransmute -> ret (arg 0)
  | Mir.MemUninit -> ret Vuninit
  | Mir.SizeOf -> ret (Vint 8)
  | Mir.HeapAlloc ->
      let slot, gen = Heap.alloc m.heap Heap.Uninit in
      ret (Vptr (P.heap slot gen))
  | Mir.HeapDealloc -> (
      match arg 0 with
      | Vptr p | Vbox p | Vshared p -> (
          match p.P.target with
          | P.Heap (slot, gen) when p.P.path = [] && p.P.off = 0 -> (
              match Heap.free m.heap ~slot ~gen with
              | `Ok -> ret Vunit
              | `Double ->
                  trap m Double_free "double free of heap allocation #%d" slot
              | `Stale ->
                  trap m Double_free
                    "free through stale pointer into recycled slot #%d" slot)
          | P.Heap _ ->
              trap m Invalid_free
                "free of interior pointer (not the allocation start)"
          | P.Null -> trap m Invalid_free "free of null pointer"
          | P.Stack _ -> trap m Invalid_free "free of pointer into stack storage"
          | P.Lockcell _ -> trap m Invalid_free "free of lock interior"
          | P.Opaque _ -> havoc "free of opaque pointer")
      | Vuninit -> trap m Uninit_read "free of uninitialized pointer"
      | _ -> trap m Invalid_free "free of a non-pointer value")
  | Mir.ThreadSpawn -> (
      match arg 0 with
      | Vclosure (id, caps) -> (
          match Mir.find_body m.prog id with
          | Some body ->
              m.spawned <- m.spawned + 1;
              let th' = spawn_thread m body (Array.to_list caps) in
              ret (Vthread th'.tid)
          | None -> havoc "spawn of unknown closure body")
      | Vfn name -> (
          match Mir.find_body m.prog name with
          | Some body ->
              m.spawned <- m.spawned + 1;
              let th' = spawn_thread m body [] in
              ret (Vthread th'.tid)
          | None -> havoc "spawn of unknown function")
      | _ -> havoc "spawn of unmodeled callable")
  | Mir.ThreadJoin -> (
      match chase m ~depth:0 (arg 0) with
      | Vthread t -> (
          match List.find_opt (fun th' -> th'.tid = t) m.threads with
          | Some th' when th'.status = Finished -> ret (ok th'.result)
          | Some _ ->
              th.pending <- Some (Pjoin (t, c, succ));
              th.status <- Blocked
          | None -> havoc "join of unknown thread")
      | _ -> havoc "join of unmodeled handle")
  | Mir.ThreadSleep -> ret Vunit
  | Mir.CondvarWait -> (
      let cv = match chase m ~depth:0 (arg 0) with Vcond id -> Some id | _ -> None in
      match (cv, arg 1) with
      | Some cv, Vguard (lk, mode) ->
          Lockset.release m.locks lk ~tid mode;
          Lockset.cond_wait m.locks cv ~tid;
          th.pending <- Some (Pwait (cv, lk, Vguard (lk, mode), c, succ));
          th.status <- Blocked
      | _ -> havoc "condvar wait without modeled guard")
  | Mir.CondvarNotifyOne -> (
      match chase m ~depth:0 (arg 0) with
      | Vcond id ->
          Lockset.cond_notify_one m.locks id;
          ret Vunit
      | _ -> havoc "notify of unmodeled condvar")
  | Mir.CondvarNotifyAll -> (
      match chase m ~depth:0 (arg 0) with
      | Vcond id ->
          Lockset.cond_notify_all m.locks id;
          ret Vunit
      | _ -> havoc "notify of unmodeled condvar")
  | Mir.ChannelNew | Mir.SyncChannelNew ->
      let id = m.next_chan in
      m.next_chan <- id + 1;
      Hashtbl.replace m.chans id (Queue.create ());
      ret (Vtuple [| Vsender id; Vreceiver id |])
  | Mir.ChannelSend -> (
      match chase m ~depth:0 (arg 0) with
      | Vsender id ->
          (match Hashtbl.find_opt m.chans id with
          | Some q -> Queue.push (arg 1) q
          | None -> ());
          ret (ok Vunit)
      | _ -> havoc "send on unmodeled channel")
  | Mir.ChannelRecv -> (
      match chase m ~depth:0 (arg 0) with
      | Vreceiver id -> (
          match Hashtbl.find_opt m.chans id with
          | Some q when not (Queue.is_empty q) -> ret (ok (Queue.pop q))
          | Some _ ->
              th.pending <- Some (Precv (id, c, succ));
              th.status <- Blocked
          | None -> havoc "recv on unknown channel")
      | _ -> havoc "recv on unmodeled channel")
  | Mir.ChannelTryRecv -> (
      match chase m ~depth:0 (arg 0) with
      | Vreceiver id -> (
          match Hashtbl.find_opt m.chans id with
          | Some q when not (Queue.is_empty q) -> ret (ok (Queue.pop q))
          | _ -> ret (err Vunit))
      | _ -> havoc "try_recv on unmodeled channel")
  | Mir.AtomicLoad -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> ret (read_loc m (loc_of_ptr p []))
      | None -> havoc "load of unmodeled atomic")
  | Mir.AtomicStore -> (
      match cell_ptr_of m (arg 0) with
      | Some p ->
          write_loc m (loc_of_ptr p []) (arg 1);
          ret Vunit
      | None -> havoc "store of unmodeled atomic")
  | Mir.AtomicSwap -> (
      match cell_ptr_of m (arg 0) with
      | Some p ->
          let l = loc_of_ptr p [] in
          let old = read_loc m l in
          write_loc m l (arg 1);
          ret old
      | None -> havoc "swap of unmodeled atomic")
  | Mir.AtomicCas -> (
      match cell_ptr_of m (arg 0) with
      | Some p ->
          let l = loc_of_ptr p [] in
          let old = read_loc m l in
          (if old = arg 1 then write_loc m l (arg 2));
          ret (ok old)
      | None -> havoc "cas of unmodeled atomic")
  | Mir.AtomicFetch -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> (
          let l = loc_of_ptr p [] in
          let old = read_loc m l in
          match (as_int old, as_int (arg 1)) with
          | Some x, Some d ->
              write_loc m l (Vint (x + d));
              ret (Vint x)
          | _ ->
              flag m "fetch-op on non-integer atomic";
              ret old)
      | None -> havoc "fetch-op of unmodeled atomic")
  | Mir.CtorNew head -> (
      match head with
      | "Box" ->
          let slot, gen = Heap.alloc m.heap (Heap.Init (arg 0)) in
          ret (Vbox (P.heap slot gen))
      | "Arc" | "Rc" -> ret (arg 0)
      | "Mutex" | "RwLock" -> ret (Vmutex (Lockset.new_lock m.locks (arg 0)))
      | "Condvar" -> ret (Vcond (Lockset.new_cond m.locks))
      | "RefCell" | "Cell" | "UnsafeCell" ->
          let slot, gen = Heap.alloc m.heap (Heap.Init (arg 0)) in
          ret (Vshared (P.heap slot gen))
      | _ when String.length head >= 6 && String.sub head 0 6 = "Atomic" ->
          let init = match args with [] -> Vint 0 | a :: _ -> a in
          let slot, gen = Heap.alloc m.heap (Heap.Init init) in
          ret (Vshared (P.heap slot gen))
      | "Once" ->
          let slot, gen = Heap.alloc m.heap (Heap.Init (Vbool false)) in
          ret (Vshared (P.heap slot gen))
      | "Vec" | "VecDeque" ->
          let slot, gen = Heap.alloc m.heap (Heap.Init (Vvec [||])) in
          ret (Vshared (P.heap slot gen))
      | "String" -> ret (match args with Vstr s :: _ -> Vstr s | _ -> Vstr "")
      | _ -> havoc ("construction of unmodeled type " ^ head))
  | Mir.IntoRaw -> (
      match arg 0 with
      | Vbox p | Vshared p | Vptr p -> ret (Vptr p)
      | _ -> havoc "into_raw of unmodeled value")
  | Mir.FromRaw -> (
      match arg 0 with
      | Vptr p | Vbox p -> ret (Vbox p)
      | Vuninit -> trap m Uninit_read "from_raw of uninitialized pointer"
      | _ -> havoc "from_raw of unmodeled value")
  | Mir.VecFromRawParts -> havoc "Vec::from_raw_parts is not modeled"
  | Mir.RefCellBorrow | Mir.RefCellBorrowMut -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> ret (Vptr p)
      | None -> havoc "borrow of unmodeled cell")
  | Mir.CellGet -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> ret (read_loc m (loc_of_ptr p []))
      | None -> havoc "get of unmodeled cell")
  | Mir.CellSet -> (
      match cell_ptr_of m (arg 0) with
      | Some p ->
          write_loc m (loc_of_ptr p []) (arg 1);
          ret Vunit
      | None -> havoc "set of unmodeled cell")
  | Mir.UnsafeCellGet -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> ret (Vptr p)
      | None -> havoc "get of unmodeled UnsafeCell")
  | Mir.OnceCallOnce -> (
      match (cell_ptr_of m (arg 0), arg 1) with
      | Some p, Vclosure (id, caps) -> (
          let l = loc_of_ptr p [] in
          match read_loc m l with
          | Vbool true -> ret Vunit
          | _ -> (
              write_loc m l (Vbool true);
              match Mir.find_body m.prog id with
              | Some body -> enter_body m th body (Array.to_list caps) c succ
              | None -> havoc "call_once of unknown closure"))
      | _ -> havoc "call_once on unmodeled Once")
  | Mir.VecPush -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> (
          let l = loc_of_ptr p [] in
          match read_loc m l with
          | Vvec vs ->
              write_loc m l (Vvec (Array.append vs [| arg 1 |]));
              ret Vunit
          | _ -> havoc "push on unmodeled vec")
      | None -> havoc "push on unmodeled vec")
  | Mir.VecPop -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> (
          let l = loc_of_ptr p [] in
          match read_loc m l with
          | Vvec vs when Array.length vs > 0 ->
              let n = Array.length vs in
              write_loc m l (Vvec (Array.sub vs 0 (n - 1)));
              ret (some vs.(n - 1))
          | Vvec _ -> ret none
          | _ -> havoc "pop on unmodeled vec")
      | None -> havoc "pop on unmodeled vec")
  | Mir.VecGet -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> (
          match read_loc m (loc_of_ptr p []) with
          | Vvec vs -> (
              match as_int (arg 1) with
              | Some i when i >= 0 && i < Array.length vs -> ret (some vs.(i))
              | Some _ -> ret none
              | None -> if Array.length vs > 0 then ret (some vs.(0)) else ret none)
          | _ -> havoc "get on unmodeled vec")
      | None -> havoc "get on unmodeled vec")
  | Mir.VecGetUnchecked -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> (
          match read_loc m (loc_of_ptr p []) with
          | Vvec vs -> (
              match as_int (arg 1) with
              | Some i when i >= 0 && i < Array.length vs ->
                  (match vs.(i) with
                  | Vuninit ->
                      trap m Uninit_read
                        "get_unchecked read of uninitialized element %d" i
                  | v -> ret v)
              | _ -> havoc "get_unchecked out of bounds")
          | _ -> havoc "get_unchecked on unmodeled vec")
      | None -> havoc "get_unchecked on unmodeled vec")
  | Mir.VecSetLen -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> (
          let l = loc_of_ptr p [] in
          match (read_loc m l, as_int (arg 1)) with
          | Vvec vs, Some n when n >= 0 ->
              let cur = Array.length vs in
              if n <= cur then write_loc m l (Vvec (Array.sub vs 0 n))
              else
                (* exposing uninitialized capacity: the classic
                   set_len footgun — reads of the tail now trap *)
                write_loc m l
                  (Vvec (Array.append vs (Array.make (n - cur) Vuninit)));
              ret Vunit
          | _ -> havoc "set_len on unmodeled vec")
      | None -> havoc "set_len on unmodeled vec")
  | Mir.VecAsPtr -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> ret (Vptr { p with P.path = p.P.path @ [ Mir.Index ] })
      | None -> havoc "as_ptr on unmodeled vec")
  | Mir.VecLen -> (
      match cell_ptr_of m (arg 0) with
      | Some p -> (
          match read_loc m (loc_of_ptr p []) with
          | Vvec vs -> ret (Vint (Array.length vs))
          | Vstr s -> ret (Vint (String.length s))
          | _ -> havoc "len of unmodeled vec")
      | None -> (
          match arg 0 with
          | Vstr s -> ret (Vint (String.length s))
          | _ -> havoc "len of unmodeled value"))
  | Mir.CloneFn -> (
      match arg 0 with
      | Vbox p ->
          (* Box clone duplicates the allocation *)
          let v = read_loc m (loc_of_ptr p []) in
          let slot, gen = Heap.alloc m.heap (Heap.Init v) in
          ret (Vbox (P.heap slot gen))
      | v -> ret v (* Arc/Rc/plain clones share or copy structurally *))
  | Mir.StrFromUtf8Unchecked -> ret (arg 0)
  | Mir.OptionCtor "Some" -> ret (some (arg 0))
  | Mir.OptionCtor "None" -> ret none
  | Mir.OptionCtor "Ok" -> ret (ok (arg 0))
  | Mir.OptionCtor "Err" -> ret (err (arg 0))
  | Mir.OptionCtor other -> ret (Vvariant ("Option", other, [| arg 0 |]))
  | Mir.VariantCtor (e, vn) -> ret (Vvariant (e, vn, Array.of_list args))
  | Mir.Extern ("Arc::clone" | "Rc::clone") -> (
      (* sharing handle: the clone *is* the same inner value here *)
      match args with
      | Vptr p :: _ -> ret (read_loc m (loc_of_ptr p []))
      | v :: _ -> ret v
      | [] -> ret Vhavoc)
  | Mir.Extern name -> (
      (* dynamic re-dispatch: when lowering lost the receiver type
         (e.g. through [Arc::clone]'s unknown return), the machine
         still knows the runtime value shape *)
      let shape = match args with a :: _ -> chase m ~depth:0 a | [] -> Vunit in
      let redispatch b = exec_builtin m th fr b args c succ in
      match (name, shape) with
      | "lock", Vmutex _ -> redispatch Mir.MutexLock
      | "try_lock", Vmutex _ -> redispatch Mir.MutexTryLock
      | "read", Vmutex _ -> redispatch Mir.RwRead
      | "write", Vmutex _ -> redispatch Mir.RwWrite
      | ("unwrap" | "expect"), Vvariant ("Result", _, _) ->
          redispatch Mir.ResultUnwrap
      | ("unwrap" | "expect"), Vvariant ("Option", _, _) ->
          redispatch Mir.OptionUnwrap
      | "join", Vthread _ -> redispatch Mir.ThreadJoin
      | "send", Vsender _ -> redispatch Mir.ChannelSend
      | "recv", Vreceiver _ -> redispatch Mir.ChannelRecv
      | "wait", Vcond _ -> redispatch Mir.CondvarWait
      | "notify_one", Vcond _ -> redispatch Mir.CondvarNotifyOne
      | "notify_all", Vcond _ -> redispatch Mir.CondvarNotifyAll
      | "clone", _ -> redispatch Mir.CloneFn
      | "push", Vshared _ -> redispatch Mir.VecPush
      | "pop", Vshared _ -> redispatch Mir.VecPop
      | ("borrow" | "borrow_mut"), Vshared _ -> redispatch Mir.RefCellBorrow
      | _ ->
          if is_macro name then ret Vunit (* println!/assert!: benign *)
          else havoc ("extern call " ^ name))
  | Mir.Pure name -> (
      match (name, args) with
      | ("is_null" | "Ptr::is_null"), Vptr p :: _ ->
          ret (Vbool (p.P.target = P.Null))
      | "len", Vstr s :: _ -> ret (Vint (String.length s))
      | "is_empty", Vstr s :: _ -> ret (Vbool (String.length s = 0))
      | _, _ -> (
          match cell_ptr_of m (arg 0) with
          | Some p -> (
              match read_loc m (loc_of_ptr p []) with
              | Vvec vs when String.equal name "len" -> ret (Vint (Array.length vs))
              | Vvec vs when String.equal name "is_empty" ->
                  ret (Vbool (Array.length vs = 0))
              | _ -> ret Vhavoc)
          | None -> ret Vhavoc))

let exec_call (m : t) th fr (c : Mir.call) succ =
  let args = List.map (eval_operand m fr) c.Mir.args in
  match c.Mir.callee with
  | Mir.Builtin b -> exec_builtin m th fr b args c succ
  | Mir.Fn name -> (
      match Mir.find_body m.prog name with
      | Some body -> enter_body m th body args c succ
      | None ->
          flag m ("call of undefined function " ^ name);
          complete_call m fr c succ Vhavoc)
  | Mir.Method (head, name) -> (
      match find_method_body m head name with
      | Some body -> enter_body m th body args c succ
      | None ->
          flag m ("call of unresolved method " ^ head ^ "::" ^ name);
          complete_call m fr c succ Vhavoc)
  | Mir.ClosureCall id -> (
      match Mir.find_body m.prog id with
      | Some body -> (
          (* the closure value is the first argument; its captures are
             the body's leading locals, the call args follow *)
          match args with
          | Vclosure (_, caps) :: rest ->
              enter_body m th body (Array.to_list caps @ rest) c succ
          | _ :: rest -> enter_body m th body rest c succ
          | [] -> enter_body m th body [] c succ)
      | None ->
          flag m ("call of unknown closure " ^ id);
          complete_call m fr c succ Vhavoc)

(* Lowering elides scope-end [drop]s for locals whose type it never
   learned (e.g. inside closures), so [StorageDead] is the last chance
   to release lock guards parked in the slot. Copies of a guard may
   release more than once; {!Lockset.release} ignores non-holders, so
   only boxes (which would double-free) must not be touched here. *)
let rec release_guards (m : t) ~tid ~depth (v : value) =
  if depth <= 4 then
    match v with
    | Vguard (id, mode) -> Lockset.release m.locks id ~tid mode
    | Vtuple vs | Vclosure (_, vs) | Vvariant (_, _, vs) ->
        Array.iter (release_guards m ~tid ~depth:(depth + 1)) vs
    | Vstruct (_, fields) ->
        Array.iter (fun (_, fv) -> release_guards m ~tid ~depth:(depth + 1) fv) fields
    | _ -> ()

let exec_stmt (m : t) th fr (st : Mir.stmt) =
  m.cur_span <- st.Mir.s_span;
  match st.Mir.kind with
  | Mir.Nop -> ()
  | Mir.Assign (pl, rv) ->
      let v = eval_rvalue m fr rv in
      write_place m fr pl v
  | Mir.StorageLive l ->
      fr.gens.(l) <- fresh_gen m;
      if not (Hashtbl.mem m.statics (match fr.body.Mir.locals.(l).Mir.l_name with Some n -> n | None -> "")) then
        fr.slots.(l).v <- Vuninit
  | Mir.StorageDead l ->
      fr.gens.(l) <- fresh_gen m;
      (match fr.body.Mir.locals.(l).Mir.l_name with
      | Some n when Hashtbl.mem m.statics n -> ()
      | _ ->
          release_guards m ~tid:th.tid ~depth:0 fr.slots.(l).v;
          fr.slots.(l).v <- Vdropped)
  | Mir.Drop pl ->
      let v =
        if pl.Mir.proj = [] then fr.slots.(pl.Mir.base).v
        else
          try read_loc m (resolve_place m fr pl) with Trap_exn _ -> Vhavoc
      in
      (match v with
      | Vdropped ->
          (* scope-end drops are elided for explicitly-dropped locals,
             so a Drop reaching dropped storage is a second drop(x) *)
          trap m Double_free "double drop of local _%d" pl.Mir.base
      | Vmoved | Vuninit -> () (* nothing to drop *)
      | v ->
          drop_value m ~tid:th.tid ~depth:0 v;
          if pl.Mir.proj = [] then fr.slots.(pl.Mir.base).v <- Vdropped)

let exec_terminator (m : t) th fr (blk : Mir.block) =
  m.cur_span <- blk.Mir.t_span;
  match blk.Mir.term with
  | Mir.Goto b ->
      fr.bb <- b;
      fr.ip <- 0
  | Mir.SwitchInt (op, cases, default) -> (
      let v = eval_operand m fr op in
      let target =
        match as_int v with
        | Some n -> (
            match List.assoc_opt n cases with Some t -> t | None -> default)
        | None ->
            flag m "branch on unknown condition";
            default
      in
      fr.bb <- target;
      fr.ip <- 0)
  | Mir.Call (c, succ) -> exec_call m th fr c succ
  | Mir.Return op ->
      let v =
        match op with Some op -> eval_operand m fr op | None -> Vunit
      in
      do_return m th v
  | Mir.Unreachable -> raise (Panic_exn "entered unreachable code")
  | Mir.Abort msg -> raise (Panic_exn msg)

(* Execute one step (statement or terminator) of [th]'s top frame. *)
let step (m : t) th =
  m.steps <- m.steps + 1;
  match th.stack with
  | [] -> finish_thread m th ~panicked:false Vunit
  | fr :: _ ->
      m.cur_fn <- fr.body.Mir.fn_id;
      if fr.bb < 0 || fr.bb >= Array.length fr.body.Mir.blocks then
        finish_thread m th ~panicked:true Vunit
      else begin
        let stmts = fr.stmts.(fr.bb) in
        if fr.ip < Array.length stmts then begin
          let st = stmts.(fr.ip) in
          fr.ip <- fr.ip + 1;
          exec_stmt m th fr st
        end
        else exec_terminator m th fr fr.body.Mir.blocks.(fr.bb)
      end

(* ---------------- unblocking --------------------------------------- *)

let try_unblock (m : t) th =
  match th.pending with
  | None -> ()
  | Some p -> (
      let complete v c succ =
        th.pending <- None;
        th.status <- Runnable;
        match th.stack with
        | fr :: _ -> complete_call m fr c succ v
        | [] -> ()
      in
      match p with
      | Plock (id, mode, c, succ) -> (
          match Lockset.acquire m.locks id ~tid:th.tid mode with
          | `Ok -> complete (ok (Vguard (id, mode))) c succ
          | `Self | `Busy -> ())
      | Pjoin (t, c, succ) -> (
          match List.find_opt (fun th' -> th'.tid = t) m.threads with
          | Some th' when th'.status = Finished -> complete (ok th'.result) c succ
          | _ -> ())
      | Precv (id, c, succ) -> (
          match Hashtbl.find_opt m.chans id with
          | Some q when not (Queue.is_empty q) -> complete (ok (Queue.pop q)) c succ
          | _ -> ())
      | Pwait (cv, lk, guard, c, succ) ->
          if Lockset.cond_notified m.locks cv ~tid:th.tid then (
            match Lockset.acquire m.locks lk ~tid:th.tid Lockset.Excl with
            | `Ok ->
                Lockset.cond_consume m.locks cv ~tid:th.tid;
                complete guard c succ
            | `Self | `Busy -> ()))

(* ---------------- the run loop ------------------------------------- *)

let create (prog : Mir.program) : t =
  {
    prog;
    heap = Heap.create ();
    locks = Lockset.create ();
    threads = [];
    frames = Hashtbl.create 32;
    statics = Hashtbl.create 7;
    chans = Hashtbl.create 7;
    stmt_memo = Hashtbl.create 16;
    next_uid = 0;
    next_tid = 0;
    next_chan = 0;
    gen_counter = 0;
    steps = 0;
    spawned = 0;
    unsupported = [];
    cur_fn = "";
    cur_span = Span.dummy;
  }

let result_of (m : t) outcome =
  {
    outcome;
    steps = m.steps;
    spawned = m.spawned;
    unsupported = List.sort_uniq String.compare m.unsupported;
  }

(** Run [prog] from [entry] under one schedule. [max_steps] is the
    step/fuel budget ([Fuel_out] past it); the ambient
    [Support.Deadline] is polled every step ([Deadline_out]). *)
let run ?(entry = "main") ~max_steps ~(sched : Sched.t) (prog : Mir.program) :
    run_result =
  let m = create prog in
  match Mir.find_body prog entry with
  | None ->
      flag m ("no entry function " ^ entry);
      result_of m (Done false)
  | Some body ->
      let argv =
        List.init body.Mir.arg_count (fun i ->
            default_of_ty m body.Mir.locals.(i).Mir.l_ty)
      in
      let main = spawn_thread m body argv in
      let tok = Deadline.token () in
      let any_panic () = List.exists (fun th -> th.panicked) m.threads in
      let rec loop cur quantum =
        if m.steps >= max_steps then result_of m Fuel_out
        else if Deadline.expired tok then result_of m Deadline_out
        else begin
          List.iter
            (fun th -> if th.status = Blocked then try_unblock m th)
            m.threads;
          if main.status = Finished then result_of m (Done (any_panic ()))
          else
            let runnable =
              List.filter (fun th -> th.status = Runnable) m.threads
            in
            match runnable with
            | [] ->
                let on_lock =
                  List.exists
                    (fun th ->
                      match th.pending with
                      | Some (Plock _) -> true
                      | _ -> false)
                    m.threads
                in
                if List.exists (fun th -> th.status = Blocked) m.threads then
                  result_of m (Deadlocked on_lock)
                else result_of m (Done (any_panic ()))
            | _ ->
                let th, quantum =
                  match cur with
                  | Some t
                    when quantum > 0
                         && List.exists (fun th -> th.tid = t) runnable ->
                      (List.find (fun th -> th.tid = t) runnable, quantum)
                  | _ ->
                      let i = Sched.pick sched (List.length runnable) in
                      (List.nth runnable i, Sched.quantum sched)
                in
                (try step m th with
                | Panic_exn msg ->
                    ignore msg;
                    finish_thread m th ~panicked:true Vunit);
                loop (Some th.tid) (quantum - 1)
        end
      in
      (try loop None 0 with
      | Trap_exn t -> result_of m (Trapped t)
      | Stack_overflow ->
          flag m "interpreter stack overflow (deep recursion)";
          result_of m (Done true))
