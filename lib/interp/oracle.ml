(** The dynamic oracle: per-bug-class verdicts over bounded schedule
    exploration.

    {!Machine.run} gives one execution under one schedule; the oracle
    runs up to [K] seeded schedules (skipping the extras when schedule
    0 never spawned a thread — single-threaded programs are
    deterministic) and folds the outcomes into one verdict per
    {!Machine.trap_class}:

    - [Trap] — some schedule manifested a violation of that class
      ([E0601]);
    - [Clean] — no schedule trapped it and at least one schedule ran
      to completion fully modelled (no unsupported constructs);
    - [Inconclusive] — neither: the run degraded ([W0602] fuel,
      [W0603] deadline, [W0604] unsupported constructs or deadlock),
      or a trap of a *different* class aborted execution first.

    Inconclusive is a first-class verdict, never silently collapsed
    into clean: the differential harness counts it separately so
    static/dynamic disagreement numbers are honest. *)

open Support
module Mir = Ir.Mir

type reason =
  | Unsupported of string list
      (** constructs the machine cannot model tainted every run *)
  | Fuel_exhausted  (** every un-trapped schedule ran out of steps *)
  | Deadline_hit  (** the wall-clock budget expired mid-run *)
  | Deadlock  (** threads wedged; execution never completed *)
  | Aborted of Machine.trap_class
      (** a trap of another class ended execution before this class
          could be observed to completion *)

type verdict = Trap of Machine.trap | Clean | Inconclusive of reason

type t = {
  verdicts : (Machine.trap_class * verdict) list;
      (** one row per class, in {!Machine.all_classes} order *)
  diags : Diag.t list;  (** E0601/W0602/W0603/W0604, deterministic order *)
  schedules : int;  (** schedules actually executed *)
  steps : int;  (** total interpreter steps across all schedules *)
}

let default_fuel = 200_000
let default_deadline_ms = 1_000
let default_schedules = 3
let default_seed = 0x5EED

let verdict_name = function
  | Trap _ -> "trap"
  | Clean -> "clean"
  | Inconclusive _ -> "inconclusive"

let reason_name = function
  | Unsupported _ -> "unsupported"
  | Fuel_exhausted -> "fuel"
  | Deadline_hit -> "deadline"
  | Deadlock -> "deadlock"
  | Aborted c -> "aborted:" ^ Machine.class_name c

(* ---------------- observability ------------------------------------ *)

let runs_total =
  Metrics.counter ~help:"Oracle program executions" "rustudy_oracle_runs_total"

let traps_total =
  Metrics.counter ~labels:[ "class" ]
    ~help:"Oracle trap verdicts by bug class" "rustudy_oracle_traps_total"

let inconclusive_total =
  Metrics.counter ~labels:[ "class" ]
    ~help:"Oracle inconclusive verdicts by bug class"
    "rustudy_oracle_inconclusive_total"

(* ---------------- the oracle ---------------------------------------- *)

let trapped (r : Machine.run_result) =
  match r.Machine.outcome with Machine.Trapped _ -> true | _ -> false

(** Entry points to drive: [main] when present, otherwise every
    non-closure function (with arguments synthesized from parameter
    types) — corpus entries are mostly library snippets. *)
let entries (prog : Mir.program) : string list =
  match Mir.find_body prog "main" with
  | Some _ -> [ "main" ]
  | None ->
      List.filter_map
        (fun (b : Mir.body) ->
          let id = b.Mir.fn_id in
          let is_closure =
            let n = String.length id in
            let pat = "{closure" in
            let pn = String.length pat in
            let rec go i =
              i + pn <= n && (String.sub id i pn = pat || go (i + 1))
            in
            go 0
          in
          if is_closure then None else Some id)
        (Mir.body_list prog)

(** Run the oracle over a lowered program. [fuel] is the per-schedule
    step budget, [deadline_ms] the per-schedule wall-clock budget;
    both degrade to inconclusive rather than raising. Same
    [seed]/budgets in, byte-identical verdicts out. *)
let run ?entry ?(fuel = default_fuel) ?(deadline_ms = default_deadline_ms)
    ?(schedules = default_schedules) ?(seed = default_seed)
    (prog : Mir.program) : t =
  Trace.with_span ~cat:"oracle" "oracle.exec" @@ fun () ->
  Metrics.incr runs_total;
  let run_one entry index =
    Trace.with_span ~cat:"oracle"
      ~args:[ ("entry", entry); ("schedule", string_of_int index) ]
      "oracle.schedule"
    @@ fun () ->
    Deadline.with_deadline_ms deadline_ms (fun () ->
        Machine.run ~entry ~max_steps:fuel
          ~sched:(Sched.make ~seed ~index)
          prog)
  in
  let entry_list =
    match entry with Some e -> [ e ] | None -> entries prog
  in
  (* one schedule group per entry point *)
  let groups =
    List.map
      (fun e ->
        let r0 = run_one e 0 in
        let rest =
          (* extra schedules only pay off when threads actually
             interleave, and a manifested trap is already definitive *)
          if r0.Machine.spawned = 0 || trapped r0 then []
          else
            let rec go index acc =
              if index >= max 1 schedules then List.rev acc
              else
                let r = run_one e index in
                if trapped r then List.rev (r :: acc)
                else go (index + 1) (r :: acc)
            in
            go 1 []
        in
        r0 :: rest)
      entry_list
  in
  let results = List.concat groups in
  (* an entry is fully observed when some schedule ran to completion
     with nothing unmodeled *)
  let observed (group : Machine.run_result list) =
    List.exists
      (fun (r : Machine.run_result) ->
        match r.Machine.outcome with
        | Machine.Done _ -> r.Machine.unsupported = []
        | _ -> false)
      group
  in
  let clean_run = groups <> [] && List.for_all observed groups in
  let unobserved = List.filter (fun g -> not (observed g)) groups in
  let traps =
    List.filter_map
      (fun (r : Machine.run_result) ->
        match r.Machine.outcome with
        | Machine.Trapped tr -> Some tr
        | _ -> None)
      results
  in
  let traps =
    (* an all-threads-parked-on-locks deadlock is the cross-thread
       flavour of the double-lock class: manifest it as a trap too *)
    if
      List.exists
        (fun (r : Machine.run_result) ->
          r.Machine.outcome = Machine.Deadlocked true)
        results
      && not
           (List.exists
              (fun (tr : Machine.trap) ->
                tr.Machine.tr_class = Machine.Double_lock)
              traps)
    then
      traps
      @ [
          {
            Machine.tr_class = Machine.Double_lock;
            tr_fn = "<scheduler>";
            tr_span = Span.dummy;
            tr_msg = "all threads deadlocked waiting on locks";
          };
        ]
    else traps
  in
  let unobs_results = List.concat unobserved in
  let unsupported =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (r : Machine.run_result) -> r.Machine.unsupported)
         unobs_results)
  in
  let all_unsupported =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (r : Machine.run_result) -> r.Machine.unsupported)
         results)
  in
  let fuel_out =
    List.exists
      (fun (r : Machine.run_result) -> r.Machine.outcome = Machine.Fuel_out)
      unobs_results
  in
  let deadline_out =
    List.exists
      (fun (r : Machine.run_result) -> r.Machine.outcome = Machine.Deadline_out)
      unobs_results
  in
  let deadlocked =
    List.exists
      (fun (r : Machine.run_result) ->
        match r.Machine.outcome with Machine.Deadlocked _ -> true | _ -> false)
      results
  in
  let reason =
    if unsupported <> [] then Unsupported unsupported
    else if fuel_out then Fuel_exhausted
    else if deadline_out then Deadline_hit
    else
      match traps with
      | tr :: _ -> Aborted tr.Machine.tr_class
      | [] -> Deadlock
  in
  let verdicts =
    List.map
      (fun c ->
        match
          List.find_opt (fun (tr : Machine.trap) -> tr.Machine.tr_class = c) traps
        with
        | Some tr -> (c, Trap tr)
        | None -> if clean_run then (c, Clean) else (c, Inconclusive reason))
      Machine.all_classes
  in
  List.iter
    (fun (c, v) ->
      match v with
      | Trap _ -> Metrics.incr ~labels:[ Machine.class_name c ] traps_total
      | Inconclusive _ ->
          Metrics.incr ~labels:[ Machine.class_name c ] inconclusive_total
      | Clean -> ())
    verdicts;
  let dedup_traps =
    List.sort_uniq
      (fun (a : Machine.trap) b ->
        compare (a.Machine.tr_class, a.Machine.tr_msg) (b.Machine.tr_class, b.Machine.tr_msg))
      traps
  in
  let diags =
    List.map
      (fun (tr : Machine.trap) ->
        Diag.error ~code:Diag.Oracle_trap ~span:tr.Machine.tr_span
          "oracle trap [%s] in %s: %s"
          (Machine.class_name tr.Machine.tr_class)
          tr.Machine.tr_fn tr.Machine.tr_msg)
      dedup_traps
    @ (if fuel_out then
         [
           Diag.warning ~code:Diag.Oracle_fuel
             "oracle fuel exhausted (%d steps); verdict degraded" fuel;
         ]
       else [])
    @ (if deadline_out then
         [
           Diag.warning ~code:Diag.Oracle_deadline
             "oracle deadline hit (%d ms); verdict degraded" deadline_ms;
         ]
       else [])
    @ (if all_unsupported <> [] then
         [
           Diag.warning ~code:Diag.Oracle_unsupported
             "oracle could not model: %s"
             (String.concat "; " all_unsupported);
         ]
       else [])
    @
    if deadlocked && traps = [] then
      [
        Diag.warning ~code:Diag.Oracle_unsupported
          "execution deadlocked; completion never observed";
      ]
    else []
  in
  let steps =
    List.fold_left (fun acc (r : Machine.run_result) -> acc + r.Machine.steps) 0 results
  in
  { verdicts; diags; schedules = List.length results; steps }

(* ---------------- rendering ----------------------------------------- *)

let verdict_detail = function
  | Trap tr -> Printf.sprintf "trap (%s)" tr.Machine.tr_msg
  | Clean -> "clean"
  | Inconclusive r -> Printf.sprintf "inconclusive (%s)" (reason_name r)

(** One line per class, stable order — the unit the determinism tests
    compare byte-for-byte. *)
let render (t : t) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "oracle: %d schedule(s), %d step(s)\n" t.schedules t.steps);
  List.iter
    (fun (c, v) ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %s\n" (Machine.class_name c) (verdict_detail v)))
    t.verdicts;
  Buffer.contents b
