(** Runtime lock state: one table entry per [Mutex]/[RwLock] the
    interpreted program creates, plus the per-thread lockset the
    double-lock trap is defined over.

    A thread acquiring a lock it already holds is a *self-deadlock* in
    Rust ([std::sync::Mutex] is not reentrant) — the [`Self] result is
    what the machine turns into an [E0601] double-lock trap. Contended
    acquisitions ([`Busy]) park the thread instead; the scheduler
    retries them and reports a cross-thread deadlock if nothing can
    ever run again. *)

type mode = Excl | Shared

type 'v lock = {
  mutable excl : int option;  (** tid of the exclusive holder *)
  mutable readers : int list;  (** tids of shared holders (multiset) *)
  mutable inner : 'v;  (** the guarded value *)
}

type cond = { mutable waiting : int list; mutable notified : int list }

type 'v t = {
  mutable locks : 'v lock option array;
  mutable n : int;
  conds : (int, cond) Hashtbl.t;
  mutable next_cond : int;
}

let create () =
  { locks = [||]; n = 0; conds = Hashtbl.create 7; next_cond = 0 }

let get t id =
  if id < 0 || id >= t.n then None
  else t.locks.(id)

let new_lock t inner =
  if t.n >= Array.length t.locks then begin
    let bigger = Array.make (max 8 (2 * (t.n + 1))) None in
    Array.blit t.locks 0 bigger 0 t.n;
    t.locks <- bigger
  end;
  let id = t.n in
  t.locks.(id) <- Some { excl = None; readers = []; inner };
  t.n <- id + 1;
  id

(** Attempt to acquire lock [id] for thread [tid]. [`Self] means the
    calling thread already holds it (the double-lock trap); [`Busy]
    means another thread does (park and retry). *)
let acquire t id ~tid mode =
  match get t id with
  | None -> `Busy
  | Some l -> (
      match (l.excl, mode) with
      | Some holder, _ when holder = tid -> `Self
      | Some _, _ -> `Busy
      | None, Excl ->
          if List.mem tid l.readers then `Self
          else if l.readers <> [] then `Busy
          else begin
            l.excl <- Some tid;
            `Ok
          end
      | None, Shared ->
          (* shared readers stack freely, including re-entrant reads
             by the same thread: read-read is not a deadlock *)
          l.readers <- tid :: l.readers;
          `Ok)

let release t id ~tid mode =
  match get t id with
  | None -> ()
  | Some l -> (
      match mode with
      | Excl -> if l.excl = Some tid then l.excl <- None
      | Shared ->
          let rec drop_one = function
            | [] -> []
            | x :: rest -> if x = tid then rest else x :: drop_one rest
          in
          l.readers <- drop_one l.readers)

let inner t id = Option.map (fun l -> l.inner) (get t id)

let set_inner t id v =
  match get t id with None -> () | Some l -> l.inner <- v

(* ---------------- condvars ---------------------------------------- *)

let new_cond t =
  let id = t.next_cond in
  t.next_cond <- id + 1;
  Hashtbl.replace t.conds id { waiting = []; notified = [] };
  id

let cond t id =
  match Hashtbl.find_opt t.conds id with
  | Some c -> c
  | None ->
      let c = { waiting = []; notified = [] } in
      Hashtbl.replace t.conds id c;
      c

let cond_wait t id ~tid =
  let c = cond t id in
  c.waiting <- c.waiting @ [ tid ]

let cond_notify_one t id =
  let c = cond t id in
  match c.waiting with
  | [] -> ()
  | w :: rest ->
      c.waiting <- rest;
      c.notified <- c.notified @ [ w ]

let cond_notify_all t id =
  let c = cond t id in
  c.notified <- c.notified @ c.waiting;
  c.waiting <- []

let cond_notified t id ~tid = List.mem tid (cond t id).notified

let cond_consume t id ~tid =
  let c = cond t id in
  c.notified <- List.filter (fun x -> x <> tid) c.notified
