(** Bounded seeded schedule exploration.

    Schedule 0 is the canonical cooperative round-robin: the current
    thread runs until it blocks or finishes, then the lowest-tid
    runnable thread takes over — fully deterministic and closest to a
    lightly loaded OS scheduler. Schedules 1..K-1 draw preemption
    points and thread choices from a splitmix64 stream keyed on
    [(seed, index)], so the same seed always replays the same
    interleavings — the property the determinism tests pin. *)

type t = { r : Support.Fault.rng option }

let make ~seed ~index =
  if index = 0 then { r = None }
  else { r = Some (Support.Fault.rng ((seed * 1_000_003) + index)) }

(** Choose among [n] runnable threads (by position in tid order). *)
let pick t n =
  match t.r with
  | None -> 0
  | Some r -> if n <= 1 then 0 else Support.Fault.next_int r n

(** Steps the chosen thread may run before the next preemption. *)
let quantum t =
  match t.r with
  | None -> max_int
  | Some r -> 1 + Support.Fault.next_int r 11
