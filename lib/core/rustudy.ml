(** Rustudy: reproduction of "Understanding Memory and Thread Safety
    Practices and Issues in Real-World Rust Programs" (PLDI 2020).

    This facade is the library's public API. The typical flow:

    {[
      let program = Rustudy.load ~file:"queue.rs" source in
      let findings = Rustudy.detect program in
      List.iter (fun f -> print_endline (Rustudy.Finding.to_string f)) findings
    ]}

    or, for the full empirical study over the bundled corpus:

    {[
      print_endline (Rustudy.study_report ())
    ]} *)

module Span = Support.Span
module Diag = Support.Diag
module Ast = Syntax.Ast
module Parser = Syntax.Parser
module Lexer = Syntax.Lexer
module Token = Syntax.Token
module Ty = Sema.Ty
module Env = Sema.Env
module Typeck = Sema.Typeck
module Mir = Ir.Mir
module Lower = Ir.Lower
module Cache = Analysis.Cache
module Summary = Analysis.Summary
module Domain_pool = Support.Domain_pool
module Fuel = Support.Fuel
module Fault = Support.Fault
module Deadline = Support.Deadline
module Retry = Support.Retry
module Supervisor = Support.Supervisor
module Journal = Support.Journal
module Metrics = Support.Metrics
module Trace = Support.Trace
module Flight = Support.Flight
module Finding = Detectors.Report
module Detect = Detectors.All
module Unsafe_scan = Detectors.Unsafe_scan
module Lock_scope = Detectors.Lock_scope
module Encapsulation = Detectors.Encapsulation
module Lifetimes = Detectors.Lifetimes
module Corpus = Corpus
module Classify = Study.Classify
module Tables = Study.Tables
module Figures = Study.Figures
module Detector_eval = Study.Detector_eval
module Machine = Interp.Machine
module Oracle = Interp.Oracle
module Oracle_eval = Study.Oracle_eval

exception Parse_error = Support.Diag.Parse_error

(** Parse RustLite source text into an AST. *)
let parse ~file source : Ast.crate = Parser.parse_crate ~file source

(** Parse with error recovery: malformed regions become diagnostics
    plus error nodes in the (partial) AST. Never raises. *)
let parse_recovering ~file source : Ast.crate * Diag.t list =
  Parser.parse_crate_recovering ~file source

(** Parse and lower source text to a MIR program, ready for analysis.
    [tmp_lifetime] selects Rust's extended temporary-lifetime rule
    (default) or the statement-local ablation. *)
let load ?config ~file source : Mir.program =
  Ir.Lower.program_of_source ?config ~file source

(** Like {!load}, but through the process-wide program cache: the same
    [(file, config)] key is parsed and lowered at most once, and the
    returned context shares every per-body analysis across detectors. *)
let load_ctx ?config ~file source : Cache.t =
  Cache.load_ctx ?config ~file source

(** Run every bug detector (memory, blocking, non-blocking). *)
let detect (program : Mir.program) : Finding.finding list =
  Detectors.All.bugs program

(** [detect] against a shared analysis context. *)
let detect_ctx (ctx : Cache.t) : Finding.finding list =
  Detectors.All.bugs_ctx ctx

(** Run only the paper's two headline detectors. *)
let detect_use_after_free = Detectors.Uaf.run
let detect_double_lock = Detectors.Double_lock.run

(** Model of what the Rust compiler statically rejects
    (use-after-move, conflicting borrows). *)
let compiler_checks = Detectors.All.compiler_checks

(** Scan a crate for unsafe usages (section 4 of the paper). *)
let scan_unsafe (crate : Ast.crate) : Unsafe_scan.stats =
  Unsafe_scan.scan crate

(** One-call pipeline: parse, lower, detect. *)
let check ?config ~file source : Finding.finding list =
  detect (load ?config ~file source)

(** Fault-tolerant {!check}: the frontend recovers from malformed
    regions (the findings then cover only the healthy parts) and any
    other pipeline failure is captured as [Error]. Never raises. The
    diagnostics list is empty iff the source was fully healthy. *)
let check_result ?cache ?config ~file source :
    (Finding.finding list * Diag.t list, string) result =
  match Cache.load_ctx_recovering ?cache ?config ~file source with
  | Error e -> Error (Printexc.to_string e)
  | Ok ctx -> (
      match detect_ctx ctx with
      | exception e -> Error (Printexc.to_string e)
      | findings -> Ok (findings, Cache.diags ctx))

(** Analyze the bundled corpus once. [domains] sizes the worker pool
    ([1] forces the sequential path); results are in corpus order
    either way. *)
let analyze_corpus ?domains () : Classify.analysis list =
  Study.Classify.analyze_all ?domains ()

(** Fault-tolerant corpus sweep: one {!Classify.outcome} per entry, in
    corpus order; a crashing entry is confined to its own slot. Never
    raises. *)
let analyze_corpus_results ?domains () :
    (Corpus.entry * Classify.outcome) list =
  Study.Classify.analyze_all_results ?domains ()

let assemble_report ?domains analyses =
  String.concat "\n"
    [
      Study.Tables.table1 analyses;
      Study.Tables.table2 analyses;
      Study.Tables.table3 analyses;
      Study.Tables.table4 analyses;
      Study.Tables.fix_strategies analyses;
      Study.Tables.unsafe_stats ();
      Study.Figures.figure1 ();
      Study.Figures.figure2 ();
      Study.Detector_eval.render (Study.Detector_eval.run ?domains ());
      Study.Oracle_eval.render (Study.Oracle_eval.run ?domains ());
    ]

(** The full study report: every table and figure of the paper. *)
let study_report ?domains () : string =
  assemble_report ?domains (analyze_corpus ?domains ())

(** Fault-tolerant {!study_report}: the tables cover every entry that
    produced an analysis (clean or degraded) and the per-entry outcomes
    come back alongside the report so callers can summarize degraded
    entries ({!Classify.degraded_summary}) and pick an exit code. Never
    raises. *)
let study_report_results ?domains () :
    string * (Corpus.entry * Classify.outcome) list =
  let results = analyze_corpus_results ?domains () in
  let analyses =
    List.filter_map (fun (_, o) -> Classify.outcome_analysis o) results
  in
  (assemble_report ?domains analyses, results)

(** Supervised corpus sweep: deadline-governed, retrying, quarantining,
    optionally checkpointed/resumed ({!Classify.analyze_entries_supervised}
    over the whole bundled corpus). *)
let analyze_corpus_supervised ?config ?checkpoint ?resume () :
    (Corpus.entry * Classify.outcome) list * Supervisor.stats * int =
  Study.Classify.analyze_entries_supervised ?config ?checkpoint ?resume
    Corpus.all_bugs

(** {!study_report_results} under supervision: the report covers every
    entry that produced an analysis; quarantined/skipped entries are
    surfaced through the outcomes and the supervisor stats. *)
let study_report_supervised ?domains ?config ?checkpoint ?resume () :
    string * (Corpus.entry * Classify.outcome) list * Supervisor.stats * int =
  let results, stats, replayed =
    analyze_corpus_supervised ?config ?checkpoint ?resume ()
  in
  let analyses =
    List.filter_map (fun (_, o) -> Classify.outcome_analysis o) results
  in
  (assemble_report ?domains analyses, results, stats, replayed)
