(** Rustudy: reproduction of "Understanding Memory and Thread Safety
    Practices and Issues in Real-World Rust Programs" (PLDI 2020).

    This facade is the library's public API. The typical flow:

    {[
      let program = Rustudy.load ~file:"queue.rs" source in
      let findings = Rustudy.detect program in
      List.iter (fun f -> print_endline (Rustudy.Finding.to_string f)) findings
    ]}

    or, for the full empirical study over the bundled corpus:

    {[
      print_endline (Rustudy.study_report ())
    ]} *)

module Span = Support.Span
module Diag = Support.Diag
module Ast = Syntax.Ast
module Parser = Syntax.Parser
module Lexer = Syntax.Lexer
module Token = Syntax.Token
module Ty = Sema.Ty
module Env = Sema.Env
module Typeck = Sema.Typeck
module Mir = Ir.Mir
module Lower = Ir.Lower
module Cache = Analysis.Cache
module Domain_pool = Support.Domain_pool
module Finding = Detectors.Report
module Detect = Detectors.All
module Unsafe_scan = Detectors.Unsafe_scan
module Lock_scope = Detectors.Lock_scope
module Encapsulation = Detectors.Encapsulation
module Lifetimes = Detectors.Lifetimes
module Corpus = Corpus
module Classify = Study.Classify
module Tables = Study.Tables
module Figures = Study.Figures
module Detector_eval = Study.Detector_eval

exception Parse_error = Support.Diag.Parse_error

(** Parse RustLite source text into an AST. *)
let parse ~file source : Ast.crate = Parser.parse_crate ~file source

(** Parse and lower source text to a MIR program, ready for analysis.
    [tmp_lifetime] selects Rust's extended temporary-lifetime rule
    (default) or the statement-local ablation. *)
let load ?config ~file source : Mir.program =
  Ir.Lower.program_of_source ?config ~file source

(** Like {!load}, but through the process-wide program cache: the same
    [(file, config)] key is parsed and lowered at most once, and the
    returned context shares every per-body analysis across detectors. *)
let load_ctx ?config ~file source : Cache.t =
  Cache.load_ctx ?config ~file source

(** Run every bug detector (memory, blocking, non-blocking). *)
let detect (program : Mir.program) : Finding.finding list =
  Detectors.All.bugs program

(** [detect] against a shared analysis context. *)
let detect_ctx (ctx : Cache.t) : Finding.finding list =
  Detectors.All.bugs_ctx ctx

(** Run only the paper's two headline detectors. *)
let detect_use_after_free = Detectors.Uaf.run
let detect_double_lock = Detectors.Double_lock.run

(** Model of what the Rust compiler statically rejects
    (use-after-move, conflicting borrows). *)
let compiler_checks = Detectors.All.compiler_checks

(** Scan a crate for unsafe usages (section 4 of the paper). *)
let scan_unsafe (crate : Ast.crate) : Unsafe_scan.stats =
  Unsafe_scan.scan crate

(** One-call pipeline: parse, lower, detect. *)
let check ?config ~file source : Finding.finding list =
  detect (load ?config ~file source)

(** Analyze the bundled corpus once. [domains] sizes the worker pool
    ([1] forces the sequential path); results are in corpus order
    either way. *)
let analyze_corpus ?domains () : Classify.analysis list =
  Study.Classify.analyze_all ?domains ()

(** The full study report: every table and figure of the paper. *)
let study_report ?domains () : string =
  let analyses = analyze_corpus ?domains () in
  String.concat "\n"
    [
      Study.Tables.table1 analyses;
      Study.Tables.table2 analyses;
      Study.Tables.table3 analyses;
      Study.Tables.table4 analyses;
      Study.Tables.fix_strategies analyses;
      Study.Tables.unsafe_stats ();
      Study.Figures.figure1 ();
      Study.Figures.figure2 ();
      Study.Detector_eval.render (Study.Detector_eval.run ?domains ());
    ]
