(** Length-prefixed wire framing.

    Every message on the socket is a 4-byte big-endian payload length
    followed by that many bytes of UTF-8 JSON. The reader distinguishes
    a clean close (EOF exactly at a frame boundary) from a torn frame
    (EOF mid-header or mid-payload) and from an oversized frame (length
    prefix above the reader's cap). Oversized frames can be skimmed —
    read and discarded — so the stream stays framed and the connection
    survives the bad message. *)

(* 64 MiB: far above any real request, far below an allocation bomb.
   Callers pass tighter caps; this is the outermost sanity bound. *)
let hard_max_len = 64 * 1024 * 1024

type read_error =
  | Closed  (** EOF at a frame boundary: the peer hung up cleanly. *)
  | Torn of string
      (** EOF mid-header or mid-payload: a partial write or a cut
          connection. The stream is no longer framed. *)
  | Oversized of int
      (** Length prefix above the cap (payload NOT consumed). *)

let read_error_to_string = function
  | Closed -> "connection closed"
  | Torn what -> Printf.sprintf "torn frame (%s)" what
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n

(* ---------------- byte sources -------------------------------------- *)

(* A pull-based byte source so the same framing logic serves both live
   sockets and in-memory fuzz buffers. [read_into buf off len] returns
   the number of bytes read, 0 on EOF. *)
type src = { read_into : bytes -> int -> int -> int }

let of_fd fd =
  {
    read_into =
      (fun buf off len ->
        try Unix.read fd buf off len with
        | Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0);
  }

let of_string s =
  let pos = ref 0 in
  {
    read_into =
      (fun buf off len ->
        let avail = String.length s - !pos in
        if avail <= 0 then 0
        else begin
          let n = min len avail in
          Bytes.blit_string s !pos buf off n;
          pos := !pos + n;
          n
        end);
  }

(* Fill exactly [len] bytes; [`Eof consumed] on short read. *)
let really_read src buf len =
  let rec go off =
    if off >= len then `Ok
    else
      let n = src.read_into buf off (len - off) in
      if n = 0 then `Eof off else go (off + n)
  in
  go 0

(* ---------------- encode / write ------------------------------------ *)

let encode (payload : string) : string =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

exception Peer_gone
(** The peer closed its end mid-write (EPIPE / ECONNRESET). *)

let write_fd fd (payload : string) : unit =
  let frame = Bytes.unsafe_of_string (encode payload) in
  let len = Bytes.length frame in
  let rec go off =
    if off < len then begin
      let n =
        try Unix.write fd frame off (len - off) with
        | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            raise Peer_gone
      in
      go (off + n)
    end
  in
  go 0

(* ---------------- read ---------------------------------------------- *)

let read ?(max_len = hard_max_len) (src : src) : (string, read_error) result =
  let hdr = Bytes.create 4 in
  match really_read src hdr 4 with
  | `Eof 0 -> Error Closed
  | `Eof _ -> Error (Torn "header")
  | `Ok ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_len then Error (Oversized (len land max_int))
      else begin
        let buf = Bytes.create len in
        match really_read src buf len with
        | `Eof _ -> Error (Torn "payload")
        | `Ok -> Ok (Bytes.to_string buf)
      end

(* Discard the payload of an oversized frame so the stream stays
   framed. Refuses to skim absurd lengths (the connection should be
   dropped instead); returns [false] if the stream tore mid-skim. *)
let skim_max = 4 * 1024 * 1024

let skim (src : src) (len : int) : bool =
  if len < 0 || len > skim_max then false
  else begin
    let chunk = Bytes.create (min len 65536) in
    let rec go remaining =
      if remaining <= 0 then true
      else
        let n = src.read_into chunk 0 (min remaining (Bytes.length chunk)) in
        if n = 0 then false else go (remaining - n)
    in
    go len
  end
