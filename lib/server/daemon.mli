(** The analysis daemon behind [rustudy serve]: a crash-safe,
    load-shedding server for check/detect/study requests over a
    Unix-domain socket (wire protocol in docs/SERVER.md).

    Contract: {e no request outcome is ever silent, and no input kills
    the process}. Every accepted request gets exactly one response —
    outcome-shaped on success, or a structured error/rejection
    ([W0501] shed, [W0504] draining, [E0502] bad frame, [W0503] worker
    lost, [E0501] retries exhausted). Malformed frames are answered
    (or the connection dropped) without disturbing other requests;
    worker domains that die are respawned; per-request deadline/fuel
    budgets are scoped to the worker domain and reset between
    requests; completed responses are journalled so a restarted server
    replays them byte-identically. *)

exception Kill_worker
(** Fault injection: raised from a {!config.before_handle} hook to
    simulate a worker domain dying mid-request. Escapes the
    per-request catch by design — the caller gets [W0503] and the
    monitor respawns the worker. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains (>= 1) *)
  queue_cap : int;  (** admission-queue bound; beyond it requests shed *)
  max_frame : int;  (** largest accepted frame payload, bytes *)
  default_deadline_ms : int;
      (** wall-clock budget for requests that carry none; 0 = none *)
  retries : int;  (** attempts per request (1 = no retry) *)
  retry_base_ms : float;  (** backoff before attempt 2 *)
  drain_ms : int;  (** drain grace for in-flight work, milliseconds *)
  journal : string option;  (** crash-safe request log *)
  access_log_cap : int;
      (** bounded in-memory access log (one structured line per
          request); beyond it the oldest lines are dropped, counted.
          Clamped to a minimum of 16 lines *)
  handler_domains : int;
      (** parallelism handed to corpus handlers (keep 1: workers never
          nest pools; results are domain-count-invariant anyway) *)
  before_handle : (Proto.request -> attempt:int -> unit) option;
      (** test/fault hook, run on the worker before every attempt *)
}

val default_config : socket_path:string -> config
(** 2 workers, queue 64, 8 MiB frames, 3 attempts, 5 s drain, no
    journal, no default deadline, 1024 access-log lines. *)

type stats = {
  requests : int;  (** well-formed requests received *)
  ok : int;  (** outcome-shaped responses (any exit code) *)
  errors : int;  (** error responses (E0501 exhaustion, W0503 lost) *)
  shed : int;  (** W0501 admission rejections *)
  rejected_draining : int;  (** W0504 rejections *)
  bad_frames : int;  (** torn / oversized / unparseable frames *)
  retried : int;  (** handler retries (extra attempts) *)
  worker_deaths : int;  (** worker domains lost and respawned *)
  replayed : int;  (** responses replayed from the journal *)
  timeouts : int;  (** requests that ran past their deadline *)
}

type t

val start : config -> t
(** Bind the socket, load the journal's replay table, spawn workers
    and the accept thread. Raises [Failure] if another server is live
    on the socket, [Unix.Unix_error] if the path is unbindable. *)

val stop : t -> unit
(** Graceful drain: stop accepting, give queued and in-flight work
    [drain_ms] to finish, reject what never started ([W0504]), answer
    what overstayed ([W0503]), sever connections, flush the journal.
    Idempotent; concurrent callers block until the drain completes. *)

val serve : t -> unit
(** Block until {!request_shutdown} (a SIGTERM handler or a [shutdown]
    frame sets it), then {!stop}. *)

val request_shutdown : t -> unit
(** Ask for a graceful drain. Only sets a flag — safe from a signal
    handler. *)

val shutdown_requested : t -> bool
val stopped : t -> bool

val wait : t -> unit
(** Block until the drain has fully completed. *)

val stats : t -> stats
val socket_path : t -> string

val uptime_ms : t -> int
(** Milliseconds since {!start}, on the monotonic clock. *)

val access_log : t -> Sjson.t list
(** The bounded access log, oldest first: one object per answered
    request — [req] (server request id), [id] (client id, echoed),
    [op], [queue_ns], [attempts], [status], [code], [wall_ns],
    [bytes]. At most [access_log_cap] lines are retained. *)

val access_dropped : t -> int
(** Access-log lines lost to the ring bound since startup. *)
