(** Shared command bodies: the single source of truth for what
    [rustudy check] / [rustudy detect --eval] / [rustudy study] print
    and which exit code they pick.

    Both the offline CLI and the analysis server call these, so a
    healthy server response is byte-identical to the offline run {e by
    construction} — the CLI prints [outcome.out]/[outcome.err] and
    exits with [outcome.exit_code]; the server ships the same record
    over the wire. The byte-identity test in [test/t_server.ml] and
    the serve smoke tool hold this invariant down. *)

let exit_clean = 0
let exit_degraded = 2
let exit_fatal = 3

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in_noerr ic)

(* print_endline analogue into a buffer. *)
let line b s =
  Buffer.add_string b s;
  Buffer.add_char b '\n'

let outcome out err exit_code =
  { Proto.out = Buffer.contents out; err = Buffer.contents err; exit_code }

(* ---------------- check --------------------------------------------- *)

let check ?(config = Ir.Lower.default_config) ~file ?source
    ?(keep_going = false) () : Proto.outcome =
  let out = Buffer.create 256 in
  let err = Buffer.create 64 in
  match (match source with Some s -> s | None -> read_file file) with
  | exception Sys_error msg ->
      line err ("fatal: " ^ msg);
      outcome out err exit_fatal
  | source ->
      (* A request running under an ambient budget (the server installs
         the request's deadline/fuel around this call) may compute
         degraded analysis results; those must stay private to this
         request, not enter the process-wide program cache where a
         later unbudgeted request for the same source would replay the
         stale W0401/W0402 degradation — or, symmetrically, where a
         budgeted request would be handed a healthy cached context and
         never degrade at all. An offline CLI run is a fresh process,
         so bypassing the cache also preserves byte-identity. *)
      let budgeted =
        Support.Deadline.current () <> None
        || Support.Fuel.domain_budget () <> None
      in
      let exit_code =
        if keep_going then
          match Rustudy.check_result ~cache:(not budgeted) ~config ~file source with
          | Error msg ->
              line err ("fatal: " ^ msg);
              exit_fatal
          | Ok (findings, diags) ->
              List.iter
                (fun f -> line out (Rustudy.Finding.to_string f))
                findings;
              List.iter (fun d -> line err (Rustudy.Diag.to_string d)) diags;
              if findings = [] && diags = [] then begin
                line out "no issues found";
                exit_clean
              end
              else if diags <> [] then exit_degraded
              else 1
        else
          match Rustudy.check ~config ~file source with
          | [] ->
              line out "no issues found";
              exit_clean
          | findings ->
              List.iter
                (fun f -> line out (Rustudy.Finding.to_string f))
                findings;
              1
          | exception Rustudy.Parse_error d ->
              line err (Rustudy.Diag.to_string d);
              exit_fatal
      in
      outcome out err exit_code

(* ---------------- detect --eval -------------------------------------- *)

let detect_eval ?domains () : Proto.outcome =
  let out = Buffer.create 4096 in
  let r = Rustudy.Detector_eval.run ?domains () in
  line out (Rustudy.Detector_eval.render r);
  let exit_code =
    if r.Rustudy.Detector_eval.degraded <> [] then exit_degraded else exit_clean
  in
  outcome out (Buffer.create 0) exit_code

(* ---------------- study ---------------------------------------------- *)

(* The CLI's default invocation (`rustudy study`, keep-going, not
   supervised): full report on stdout, degraded summary (if any) on
   stderr, exit 0/2. *)
let study ?domains () : Proto.outcome =
  let out = Buffer.create 8192 in
  let err = Buffer.create 64 in
  let report, results = Rustudy.study_report_results ?domains () in
  line out report;
  let prov = Rustudy.Classify.provenance_block () in
  if prov <> "" then Buffer.add_string out prov;
  let summary = Rustudy.Classify.degraded_summary results in
  let exit_code =
    if summary = "" then exit_clean
    else begin
      Buffer.add_string err summary;
      exit_degraded
    end
  in
  outcome out err exit_code
