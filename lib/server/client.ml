(** Minimal blocking client for the analysis daemon: the test suite,
    the bench harness and the serve smoke tool all speak the protocol
    through this (one in-flight request per connection, which is also
    the server's pacing unit). *)

type t = { fd : Unix.file_descr; src : Frame.src }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX path);
    { fd; src = Frame.of_fd fd }
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

(* The serve smoke tool starts the daemon as a subprocess and must
   wait out its startup; retry with a small linear backoff. *)
let connect_retry ?(attempts = 100) ?(delay = 0.05) path =
  let rec go n =
    match connect path with
    | c -> c
    | exception e -> if n <= 1 then raise e else (Thread.delay delay; go (n - 1))
  in
  go (max 1 attempts)

let close c = try Unix.close c.fd with _ -> ()

(* ---------------- request builders ----------------------------------- *)

let opt_field name f = function None -> [] | Some v -> [ (name, f v) ]

let num n = Sjson.Num (float_of_int n)

let base ~id ~cmd ?deadline_ms ?fuel fields =
  Sjson.Obj
    ((("id", num id) :: ("cmd", Sjson.Str cmd) :: fields)
    @ opt_field "deadline_ms" num deadline_ms
    @ opt_field "fuel" num fuel)

let ping ~id = base ~id ~cmd:"ping" []
let shutdown ~id = base ~id ~cmd:"shutdown" []

(* Admin ops: answered by the accept path, safe against a saturated
   worker pool. *)
let stats ~id = base ~id ~cmd:"stats" []
let health ~id = base ~id ~cmd:"health" []

let metrics ~id ?(format = "json") () =
  base ~id ~cmd:"metrics" [ ("format", Sjson.Str format) ]

let flight ~id = base ~id ~cmd:"flight" []

let check ~id ?deadline_ms ?fuel ?source ?(keep_going = false) ~file () =
  base ~id ~cmd:"check" ?deadline_ms ?fuel
    ([ ("file", Sjson.Str file) ]
    @ opt_field "source" (fun s -> Sjson.Str s) source
    @ if keep_going then [ ("keep_going", Sjson.Bool true) ] else [])

let detect ~id ?deadline_ms ?fuel () = base ~id ~cmd:"detect" ?deadline_ms ?fuel []
let study ~id ?deadline_ms ?fuel () = base ~id ~cmd:"study" ?deadline_ms ?fuel []

(* ---------------- round trips ---------------------------------------- *)

exception Server_gone of string
(** The connection died mid-round-trip (torn response, severed
    socket). *)

(* Ship raw bytes, read one frame back. The fuzz harness uses this to
   fire mutated frames at a live server. *)
let roundtrip_raw ?(half_close = false) (c : t) (frame_bytes : string) :
    (string, Frame.read_error) result =
  let len = String.length frame_bytes in
  let buf = Bytes.unsafe_of_string frame_bytes in
  let rec write off =
    if off < len then write (off + Unix.write c.fd buf off (len - off))
  in
  write 0;
  (* [half_close] makes the exchange one-shot: the server sees EOF
     after this frame, so a truncated mutation is detected as [Torn]
     instead of leaving both ends blocked on a read (server waiting
     for the rest of the frame, client waiting for a response) *)
  if half_close then
    (try Unix.shutdown c.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  Frame.read c.src

let rpc (c : t) (req : Sjson.t) : Sjson.t =
  Frame.write_fd c.fd (Sjson.to_string req);
  match Frame.read c.src with
  | Ok payload -> (
      match Sjson.parse_result payload with
      | Ok v -> v
      | Error m -> raise (Server_gone ("unparseable response: " ^ m)))
  | Error e -> raise (Server_gone (Frame.read_error_to_string e))
