(** Shared command bodies: the single source of truth for what
    [rustudy check] / [rustudy detect --eval] / [rustudy study] print
    and which exit code they pick. The offline CLI prints the returned
    {!Proto.outcome}; the analysis server ships the same record over
    the wire — so healthy server responses are byte-identical to the
    offline run by construction. *)

val check :
  ?config:Ir.Lower.config ->
  file:string ->
  ?source:string ->
  ?keep_going:bool ->
  unit ->
  Proto.outcome
(** [rustudy check FILE] (with [--keep-going] when set). When [source]
    is absent the file is read from disk; an unreadable file yields a
    fatal outcome rather than an exception. *)

val detect_eval : ?domains:int -> unit -> Proto.outcome
(** [rustudy detect --eval]. *)

val study : ?domains:int -> unit -> Proto.outcome
(** [rustudy study] (the default keep-going invocation: full report,
    degraded summary on stderr, exit 0/2). *)
