(** Strict wire JSON for the analysis server.

    Unlike the trace-checker's parser ([Tracecat_lib]), this codec is
    exposed to adversarial network input, so it is strict where the
    wire protocol needs it to be: payloads are validated as UTF-8
    before parsing, nesting depth is bounded (a frame of [[[[...] must
    not overflow the stack), and the printer is deterministic — the
    same value always renders to the same bytes, which is what makes
    journalled responses replay byte-identically across restarts. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* ---------------- UTF-8 validation ---------------------------------- *)

(* Standard table-free validator: accepts exactly well-formed UTF-8
   (RFC 3629): no overlong encodings, no surrogates, no > U+10FFFF. *)
let utf8_valid (s : string) : bool =
  let n = String.length s in
  let rec go i =
    if i >= n then true
    else
      let c = Char.code s.[i] in
      if c < 0x80 then go (i + 1)
      else if c < 0xC2 then false (* continuation or overlong 2-byte *)
      else
        let cont k = i + k < n && Char.code s.[i + k] land 0xC0 = 0x80 in
        let byte k = Char.code s.[i + k] in
        if c < 0xE0 then cont 1 && go (i + 2)
        else if c < 0xF0 then
          cont 1 && cont 2
          && (c <> 0xE0 || byte 1 >= 0xA0) (* overlong 3-byte *)
          && (c <> 0xED || byte 1 < 0xA0) (* surrogates *)
          && go (i + 3)
        else if c < 0xF5 then
          cont 1 && cont 2 && cont 3
          && (c <> 0xF0 || byte 1 >= 0x90) (* overlong 4-byte *)
          && (c <> 0xF4 || byte 1 < 0x90) (* > U+10FFFF *)
          && go (i + 4)
        else false
  in
  go 0

(* ---------------- parser -------------------------------------------- *)

let max_depth = 128

let parse (s : string) : t =
  if not (utf8_valid s) then fail "payload is not valid UTF-8";
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail "expected %C at byte %d" c !pos
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail "expected %s at byte %d" lit !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code =
                match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail "bad escape \\%C" c);
          incr pos;
          go ()
      | c when Char.code c < 0x20 -> fail "raw control byte in string"
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected a value at byte %d" start;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number at byte %d" start
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting deeper than %d" max_depth;
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}' at byte %d" !pos
          in
          Obj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' at byte %d" !pos
          in
          List (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing bytes after the JSON value";
  v

let parse_result s = try Ok (parse s) with Error m -> Result.Error m

(* ---------------- printer ------------------------------------------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Integral floats print as integers (request ids, exit codes, counts
   — everything the protocol actually carries); everything else gets a
   fixed shortest-ish form. Deterministic either way. *)
let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string (v : t) : string =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        escape_into b s;
        Buffer.add_char b '"'
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          l;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape_into b k;
            Buffer.add_string b "\":";
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---------------- accessors ----------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_member k v =
  match member k v with Some (Str s) -> Some s | _ -> None

let int_member k v =
  match member k v with Some (Num f) -> Some (int_of_float f) | _ -> None

let bool_member k v =
  match member k v with Some (Bool b) -> Some b | _ -> None

(** Functional update: replace (or add) key [k] of an object. *)
let set_member k v = function
  | Obj kvs ->
      let replaced = ref false in
      let kvs =
        List.map
          (fun (k', v') ->
            if String.equal k k' then begin
              replaced := true;
              (k', v)
            end
            else (k', v'))
          kvs
      in
      Obj (if !replaced then kvs else kvs @ [ (k, v) ])
  | other -> other
