(** [rustudy top]: live daemon introspection over the admin ops
    ([stats] + [metrics]), rendered as a refreshing terminal screen or
    one JSON object per poll. *)

val run :
  socket:string -> interval_ms:int -> once:bool -> json:bool -> unit -> int
(** Poll the daemon at [socket] every [interval_ms] (min 50) until it
    goes away, deriving qps, shed/retry/timeout rates and p50/p99
    request latency from consecutive polls (window rates; since-start
    on the first poll). With [~once:true] a single poll is emitted and
    the exit code is 0. With [~json:true] each poll prints one JSON
    object instead of the screen. Exit codes: 0 normally (including a
    watched daemon draining away), 1 when a [--once] poll loses the
    server mid-conversation, 3 when nothing is listening. *)

(**/**)

(* Exposed for the unit tests: the percentile estimator over decoded
   histogram buckets. *)

type hist = { h_count : int; h_sum : float; h_buckets : (float * int) list }

val percentile : hist -> float -> float option
