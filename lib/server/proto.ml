(** The request/response protocol spoken over {!Frame}s.

    One frame = one JSON object. Requests carry an [id] the server
    echoes verbatim, a command, and optional per-request budgets
    ([deadline_ms], [fuel]). Responses are either outcome-shaped
    (the offline CLI's stdout/stderr/exit ladder, verbatim) or
    error-shaped (a stable diagnostic code from [Support.Diag] plus a
    message). See docs/SERVER.md for the wire grammar. *)

(* Bumped when the wire protocol grows ops or response fields; echoed
   by [ping] / [health] so probes can detect daemon/client skew. *)
let version = 2

type cmd =
  | Ping
  | Check of { file : string; source : string option; keep_going : bool }
  | Detect
  | Study
  | Shutdown
  | Stats
  | Health
  | Metrics_snapshot of { format : string }
  | Flight_dump

type request = {
  id : Sjson.t;  (** echoed verbatim in the response; any JSON value *)
  cmd : cmd;
  deadline_ms : int option;  (** per-request wall-clock budget *)
  fuel : int option;  (** per-request fixpoint iteration budget *)
}

let cmd_name = function
  | Ping -> "ping"
  | Check _ -> "check"
  | Detect -> "detect"
  | Study -> "study"
  | Shutdown -> "shutdown"
  | Stats -> "stats"
  | Health -> "health"
  | Metrics_snapshot _ -> "metrics"
  | Flight_dump -> "flight"

(* ---------------- request parsing ----------------------------------- *)

let parse_request (v : Sjson.t) : (request, string) result =
  match v with
  | Sjson.Obj _ -> (
      let id = Option.value ~default:Sjson.Null (Sjson.member "id" v) in
      let deadline_ms = Sjson.int_member "deadline_ms" v in
      let fuel = Sjson.int_member "fuel" v in
      let finish cmd = Ok { id; cmd; deadline_ms; fuel } in
      match Sjson.str_member "cmd" v with
      | None -> Error "request has no \"cmd\" string"
      | Some "ping" -> finish Ping
      | Some "check" -> (
          let source = Sjson.str_member "source" v in
          let keep_going =
            Option.value ~default:false (Sjson.bool_member "keep_going" v)
          in
          match (Sjson.str_member "file" v, source) with
          | None, None -> Error "check needs a \"file\" or a \"source\""
          | file, source ->
              let file = Option.value ~default:"<request>" file in
              finish (Check { file; source; keep_going }))
      | Some "detect" -> finish Detect
      | Some "study" -> finish Study
      | Some "shutdown" -> finish Shutdown
      | Some "stats" -> finish Stats
      | Some "health" -> finish Health
      | Some "metrics" -> (
          match
            Option.value ~default:"json" (Sjson.str_member "format" v)
          with
          | ("json" | "prometheus") as format ->
              finish (Metrics_snapshot { format })
          | other -> Error (Printf.sprintf "unknown metrics format %S" other))
      | Some "flight" -> finish Flight_dump
      | Some other -> Error (Printf.sprintf "unknown cmd %S" other))
  | _ -> Error "request frame is not a JSON object"

(* ---------------- responses ----------------------------------------- *)

(** What a handler produced: the offline CLI's observable behaviour,
    reified. [out]/[err] are the exact bytes the CLI would write. *)
type outcome = { out : string; err : string; exit_code : int }

(* The exit-code ladder, named (docs/ROBUSTNESS.md). *)
let status_of_exit = function
  | 0 -> "ok"
  | 1 -> "findings"
  | 2 -> "degraded"
  | _ -> "fatal"

(* The server request id: generated at admission, echoed in every
   response right after the client's [id], stamped on spans, the
   access log, and the journal record — the one key that joins a
   response to every piece of telemetry it produced. *)
let req_field req = ("req", Sjson.Num (float_of_int req))

let ok_response ?req ~(id : Sjson.t) (o : outcome) : Sjson.t =
  Sjson.Obj
    ((("id", id) :: (match req with None -> [] | Some r -> [ req_field r ]))
    @ [
        ("status", Sjson.Str (status_of_exit o.exit_code));
        ("exit", Sjson.Num (float_of_int o.exit_code));
        ("out", Sjson.Str o.out);
        ("err", Sjson.Str o.err);
      ])

(* W-codes (shed, draining) are rejections — the request was never
   attempted and is safe to resend elsewhere/later. E-codes are
   errors: the request was attempted (or unparseable) and retrying
   verbatim is unlikely to help. *)
let error_status (code : Support.Diag.code) =
  match code with
  | Support.Diag.Server_overload | Support.Diag.Server_draining -> "rejected"
  | _ -> "error"

let error_response ?req ~(id : Sjson.t) ~(code : Support.Diag.code)
    (msg : string) : Sjson.t =
  Sjson.Obj
    ((("id", id) :: (match req with None -> [] | Some r -> [ req_field r ]))
    @ [
        ("status", Sjson.Str (error_status code));
        ("code", Sjson.Str (Support.Diag.code_name code));
        ("msg", Sjson.Str msg);
      ])

(* ---------------- journal keys --------------------------------------- *)

(** A stable digest of everything that determines a request's response
    bytes — command, payload, budgets, and the handler parallelism
    (which analyses results are invariant to, but belt-and-braces).
    The crash-safe request journal is keyed by this, so a restarted
    server replays a completed response byte-identically iff the
    request is identical. The volatile [id] is deliberately excluded:
    it is patched back in at replay time. *)
let journal_key (r : request) ~(handler_domains : int) : string =
  let b = Buffer.create 128 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b '\000'
  in
  add (cmd_name r.cmd);
  (match r.cmd with
  | Check { file; source; keep_going } ->
      add file;
      add (match source with None -> "<file>" | Some s -> s);
      add (string_of_bool keep_going)
  | Metrics_snapshot { format } -> add format
  | Ping | Detect | Study | Shutdown | Stats | Health | Flight_dump -> ());
  add (match r.deadline_ms with None -> "-" | Some n -> string_of_int n);
  add (match r.fuel with None -> "-" | Some n -> string_of_int n);
  add (string_of_int handler_domains);
  Digest.to_hex (Digest.string (Buffer.contents b))
