(** The analysis daemon behind [rustudy serve].

    A Unix-domain-socket server accepting concurrent check/detect/study
    requests as length-prefixed JSON {!Frame}s. The design goal is the
    supervisor's (docs/ROBUSTNESS.md) transplanted to a long-lived
    process: {e no request outcome is ever silent, and no input kills
    the process}.

    Shape:
    - an {b accept thread} takes connections and hands each to a
      {b connection thread} (threads share domain 0 — they only do
      blocking socket I/O and framing, never analysis);
    - analysis runs on {b worker domains} popping a {b bounded
      admission queue}: when the queue is full the request is shed
      immediately with a structured [W0501] rejection instead of
      queueing unboundedly;
    - every worker is watched by a {b monitor thread} that joins it
      and respawns it if it died mid-request ([W0503] to the caller);
    - per-request budgets ([deadline_ms], [fuel]) are installed
      scoped-per-domain, and {b reset between requests}
      ({!Support.Deadline.reset} / {!Support.Fuel.reset_domain}) so a
      leaked budget can never bleed across requests;
    - a graceful {b drain} (SIGTERM or a [shutdown] request) stops
      accepting, lets in-flight work finish inside [drain_ms], rejects
      what never started ([W0504]), severs what overstayed ([W0503]),
      flushes the journal and returns — exit 0 is the caller's;
    - completed responses are appended to a crash-safe
      {!Support.Journal} so a restarted server replays them
      byte-identically without recomputing. *)

exception Kill_worker
(** Fault injection: a {!config.before_handle} hook raises this to
    simulate a worker domain dying mid-request. It deliberately
    escapes the per-request catch — the caller still gets a structured
    [W0503] response and the monitor respawns the worker. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains (>= 1) *)
  queue_cap : int;  (** admission-queue bound; beyond it requests shed *)
  max_frame : int;  (** largest accepted frame payload, bytes *)
  default_deadline_ms : int;
      (** wall-clock budget for requests that carry none; 0 = none *)
  retries : int;  (** attempts per request (1 = no retry) *)
  retry_base_ms : float;  (** backoff before attempt 2 *)
  drain_ms : int;  (** drain grace for in-flight work, milliseconds *)
  journal : string option;  (** crash-safe request log *)
  access_log_cap : int;
      (** bounded in-memory access log, one structured line per
          request; beyond it the oldest lines are dropped (counted) *)
  handler_domains : int;
      (** parallelism handed to corpus handlers. Kept at 1 so worker
          domains never nest pools; analysis results are
          domain-count-invariant either way. *)
  before_handle : (Proto.request -> attempt:int -> unit) option;
      (** test/fault hook, run on the worker before every attempt *)
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 2;
    queue_cap = 64;
    max_frame = 8 * 1024 * 1024;
    default_deadline_ms = 0;
    retries = 3;
    retry_base_ms = 5.0;
    drain_ms = 5_000;
    journal = None;
    access_log_cap = 1024;
    handler_domains = 1;
    before_handle = None;
  }

type stats = {
  requests : int;  (** well-formed requests received *)
  ok : int;  (** outcome-shaped responses (any exit code) *)
  errors : int;  (** error responses (E0501 exhaustion, W0503 lost) *)
  shed : int;  (** W0501 admission rejections *)
  rejected_draining : int;  (** W0504 rejections *)
  bad_frames : int;  (** torn / oversized / unparseable frames *)
  retried : int;  (** handler retries (extra attempts) *)
  worker_deaths : int;  (** worker domains lost and respawned *)
  replayed : int;  (** responses replayed from the journal *)
  timeouts : int;  (** requests that ran past their deadline *)
}

(* ---------------- metrics ------------------------------------------- *)

let m_requests =
  Support.Metrics.counter ~labels:[ "cmd"; "status" ]
    ~help:"Requests answered by the analysis server"
    "rustudy_server_requests_total"

let m_shed =
  Support.Metrics.counter
    ~help:"Requests shed at admission because the bounded queue was full"
    "rustudy_server_shed_total"

let m_bad_frames =
  Support.Metrics.counter
    ~help:"Torn, oversized or unparseable wire frames rejected"
    "rustudy_server_bad_frames_total"

let m_retries =
  Support.Metrics.counter ~help:"Per-request handler retries"
    "rustudy_server_retries_total"

let m_worker_deaths =
  Support.Metrics.counter
    ~help:"Worker domains lost mid-request and respawned"
    "rustudy_server_worker_deaths_total"

let m_replayed =
  Support.Metrics.counter
    ~help:"Responses replayed byte-identically from the request journal"
    "rustudy_server_replayed_total"

let m_request_ms =
  Support.Metrics.histogram ~labels:[ "cmd" ]
    ~help:"Wall time per handled request (ms)" "rustudy_server_request_ms"

(* ---------------- one-shot response cells ---------------------------- *)

(* The connection thread blocks on [take]; whoever decides the
   request's fate ([fill]s first) wins — worker success, worker-death
   backstop, or the drain sweep. Later fills are no-ops, which is what
   makes "exactly one response per request" easy to audit. *)
type cell = {
  cm : Mutex.t;
  cc : Condition.t;
  mutable value : Sjson.t option;
}

let new_cell () = { cm = Mutex.create (); cc = Condition.create (); value = None }

(* [before] runs only for the winning fill, before the waiter can
   wake: accounting done there (stats, access log, flight events) is
   visible by the time the client sees the response. *)
let fill ?(before = fun () -> ()) (c : cell) (v : Sjson.t) : bool =
  Mutex.lock c.cm;
  let filled =
    match c.value with
    | None ->
        before ();
        c.value <- Some v;
        Condition.broadcast c.cc;
        true
    | Some _ -> false
  in
  Mutex.unlock c.cm;
  filled

let take (c : cell) : Sjson.t =
  Mutex.lock c.cm;
  let rec go () =
    match c.value with
    | Some v -> v
    | None ->
        Condition.wait c.cc c.cm;
        go ()
  in
  let v = go () in
  Mutex.unlock c.cm;
  v

(* ---------------- daemon state --------------------------------------- *)

type state = Running | Draining | Stopped

type job = {
  job_id : int;
  req_id : int;  (** the server request id, threaded end-to-end *)
  admitted_ns : int64;  (** queue-wait accounting *)
  req : Proto.request;
  cell : cell;
}

type t = {
  cfg : config;
  started_ns : int64;
  listen_fd : Unix.file_descr;
  req_ids : int Atomic.t;  (** server request ids, minted at admission *)
  (* bounded access log: a ring of structured per-request lines, under
     its own lock so connection threads never contend with admission *)
  access_m : Mutex.t;
  access_buf : Sjson.t option array;
  mutable access_start : int;
  mutable access_len : int;
  mutable access_dropped : int;
  (* admission queue + lifecycle, all under [qm] *)
  qm : Mutex.t;
  q_nonempty : Condition.t;
  queue : job Queue.t;
  mutable q_len : int;
  mutable inflight : int;
  inflight_jobs : (int, job) Hashtbl.t;  (** under [qm] too *)
  mutable state : state;
  (* connections *)
  conns_m : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  conn_ids : int Atomic.t;
  job_ids : int Atomic.t;
  (* lifecycle *)
  stop_requested : bool Atomic.t;
  stopped_flag : bool Atomic.t;
  live_workers : int Atomic.t;
  mutable accept_thread : Thread.t option;
  (* journal + replay *)
  jr : Support.Journal.t option;
  replay_m : Mutex.t;
  replay : (string, string) Hashtbl.t;
  (* plain-atomic stats, so tests and the bench see counters even with
     the metrics registry disabled *)
  s_requests : int Atomic.t;
  s_ok : int Atomic.t;
  s_errors : int Atomic.t;
  s_shed : int Atomic.t;
  s_rejected_draining : int Atomic.t;
  s_bad_frames : int Atomic.t;
  s_retried : int Atomic.t;
  s_worker_deaths : int Atomic.t;
  s_replayed : int Atomic.t;
  s_timeouts : int Atomic.t;
}

let socket_path t = t.cfg.socket_path

let stats t =
  {
    requests = Atomic.get t.s_requests;
    ok = Atomic.get t.s_ok;
    errors = Atomic.get t.s_errors;
    shed = Atomic.get t.s_shed;
    rejected_draining = Atomic.get t.s_rejected_draining;
    bad_frames = Atomic.get t.s_bad_frames;
    retried = Atomic.get t.s_retried;
    worker_deaths = Atomic.get t.s_worker_deaths;
    replayed = Atomic.get t.s_replayed;
    timeouts = Atomic.get t.s_timeouts;
  }

let now_ns = Support.Deadline.now_ns

let uptime_ms t =
  Int64.to_int (Int64.div (Int64.sub (now_ns ()) t.started_ns) 1_000_000L)

(* ---------------- access log ----------------------------------------- *)

(* One structured line per answered request. [queue_ns] is the time
   spent waiting for a worker (0 for inline ops), [attempts] the
   handler attempts consumed (0 when no handler ran), [wall_ns] the
   admission-to-response wall time, [bytes] the rendered response
   size. *)
let access_line ~req_id ~(id : Sjson.t) ~op ~queue_ns ~attempts
    ~(resp : Sjson.t) ~wall_ns : Sjson.t =
  let num n = Sjson.Num (float_of_int n) in
  let num64 n = Sjson.Num (Int64.to_float n) in
  Sjson.Obj
    [
      ("req", num req_id);
      ("id", id);
      ("op", Sjson.Str op);
      ("queue_ns", num64 queue_ns);
      ("attempts", num attempts);
      ( "status",
        Sjson.Str (Option.value ~default:"?" (Sjson.str_member "status" resp))
      );
      ("code", Sjson.Str (Option.value ~default:"" (Sjson.str_member "code" resp)));
      ("wall_ns", num64 wall_ns);
      ("bytes", num (String.length (Sjson.to_string resp)));
    ]

let log_access t ~req_id ~id ~op ~queue_ns ~attempts ~resp ~wall_ns : unit =
  let line = access_line ~req_id ~id ~op ~queue_ns ~attempts ~resp ~wall_ns in
  Mutex.lock t.access_m;
  let cap = Array.length t.access_buf in
  if t.access_len < cap then begin
    t.access_buf.((t.access_start + t.access_len) mod cap) <- Some line;
    t.access_len <- t.access_len + 1
  end
  else begin
    t.access_buf.(t.access_start) <- Some line;
    t.access_start <- (t.access_start + 1) mod cap;
    t.access_dropped <- t.access_dropped + 1
  end;
  Mutex.unlock t.access_m

let access_log t : Sjson.t list =
  Mutex.lock t.access_m;
  let cap = Array.length t.access_buf in
  let out = ref [] in
  for i = t.access_len - 1 downto 0 do
    match t.access_buf.((t.access_start + i) mod cap) with
    | Some l -> out := l :: !out
    | None -> ()
  done;
  Mutex.unlock t.access_m;
  !out

let access_dropped t : int =
  Mutex.lock t.access_m;
  let d = t.access_dropped in
  Mutex.unlock t.access_m;
  d

(* ---------------- journal keys & replay ------------------------------ *)

(* File-path checks without an inline source are keyed by the file's
   content digest, so an edited file can never replay a stale
   response. Unreadable files fall back to path keying (the handler
   will produce the fatal outcome anyway). *)
let journal_key_of t (req : Proto.request) : string =
  let req =
    match req.cmd with
    | Proto.Check { file; source = None; keep_going } -> (
        match Digest.file file with
        | d ->
            {
              req with
              Proto.cmd =
                Proto.Check
                  { file; source = Some ("digest:" ^ Digest.to_hex d); keep_going };
            }
        | exception _ -> req)
    | _ -> req
  in
  Proto.journal_key req ~handler_domains:t.cfg.handler_domains

(* Replay serves only responses loaded from the journal at startup:
   same-run duplicates recompute (so latency numbers measure analysis,
   not a memo table) and re-journal under the same key, which is a
   last-wins no-op. *)
let replay_lookup t key : Sjson.t option =
  Mutex.lock t.replay_m;
  let payload = Hashtbl.find_opt t.replay key in
  Mutex.unlock t.replay_m;
  match payload with
  | None -> None
  | Some p -> (
      match Sjson.parse_result p with Ok v -> Some v | Error _ -> None)

let journal_store t ~req_id (req : Proto.request) (o : Proto.outcome) : unit =
  match t.jr with
  | None -> ()
  | Some j -> (
      let key = journal_key_of t req in
      (* the record is stamped with the request id that computed it;
         like [id], it is volatile and patched at replay time, so the
         journal key stays purely semantic *)
      let payload =
        Sjson.to_string (Proto.ok_response ~req:req_id ~id:Sjson.Null o)
      in
      (* the journal's own lock makes this domain-safe; the only racy
         window is an append straddling a timed-out drain's close, and
         that must degrade to "not journalled", not to a crash *)
      try Support.Journal.append j ~key payload with _ -> ())

(* ---------------- handlers on worker domains ------------------------- *)

let run_handler t (req : Proto.request) : Proto.outcome =
  match req.cmd with
  | Proto.Ping | Proto.Shutdown | Proto.Stats | Proto.Health
  | Proto.Metrics_snapshot _ | Proto.Flight_dump ->
      (* answered inline by the connection thread; never queued *)
      { Proto.out = ""; err = ""; exit_code = 0 }
  | Proto.Check { file; source; keep_going } ->
      Handlers.check ~file ?source ~keep_going ()
  | Proto.Detect -> Handlers.detect_eval ~domains:t.cfg.handler_domains ()
  | Proto.Study -> Handlers.study ~domains:t.cfg.handler_domains ()

let run_attempt t (req : Proto.request) ~req_id ~attempt
    ~(timed_out : bool ref) : Proto.outcome =
  (match t.cfg.before_handle with Some h -> h req ~attempt | None -> ());
  Support.Flight.record "req.attempt"
    ~fields:
      [
        ("req", string_of_int req_id);
        ("cmd", Proto.cmd_name req.Proto.cmd);
        ("attempt", string_of_int attempt);
      ];
  let with_dl f =
    (* an explicit per-request deadline always installs (0 forces an
       already-expired one — deterministic timeouts for tests and the
       bench); the config default applies only when positive *)
    match req.Proto.deadline_ms with
    | Some ms -> Support.Deadline.with_deadline_ms ms f
    | None ->
        if t.cfg.default_deadline_ms > 0 then
          Support.Deadline.with_deadline_ms t.cfg.default_deadline_ms f
        else f ()
  in
  let with_fuel f =
    match req.Proto.fuel with
    | Some n -> Support.Fuel.with_domain_budget n f
    | None -> f ()
  in
  (* spans are recorded here on the worker domain, never on the shared
     connection threads: every worker owns its trace track, so spans
     nest properly per track and `tracecat validate` stays green *)
  Support.Trace.with_span "server.request"
    ~args:
      [
        ("req", string_of_int req_id);
        ("cmd", Proto.cmd_name req.Proto.cmd);
        ("attempt", string_of_int attempt);
      ]
    (fun () ->
      with_dl (fun () ->
          with_fuel (fun () ->
              let o = run_handler t req in
              (* the token is minted inside the deadline scope: expired
                 here means the handler ran past its budget (and its
                 fixpoints degraded en route) *)
              let tok = Support.Deadline.token () in
              if Support.Deadline.expired tok then timed_out := true;
              o)))

let handle_job t (job : job) : unit =
  let req = job.req in
  let req_id = job.req_id in
  (* cross-request hygiene: whatever the previous request on this
     domain leaked — a deadline that escaped its scope via a killed
     worker, a fuel override — dies here, not in this request *)
  Support.Deadline.reset ();
  Support.Fuel.reset_domain ();
  let timed_out = ref false in
  let attempts = ref 0 in
  let t0 = now_ns () in
  let queue_ns = Int64.max 0L (Int64.sub t0 job.admitted_ns) in
  let policy =
    {
      Support.Retry.default with
      Support.Retry.max_attempts = max 1 t.cfg.retries;
      base_delay_ms = t.cfg.retry_base_ms;
    }
  in
  let result =
    Support.Retry.run policy ~key:(Proto.cmd_name req.Proto.cmd)
      (fun ~attempt ->
        attempts := attempt;
        match run_attempt t req ~req_id ~attempt ~timed_out with
        | o -> Ok o
        | exception Kill_worker -> raise Kill_worker
        | exception e -> Error (Printexc.to_string e))
  in
  if !attempts > 1 then begin
    ignore (Atomic.fetch_and_add t.s_retried (!attempts - 1));
    Support.Metrics.incr m_retries ~by:(float_of_int (!attempts - 1))
  end;
  if !timed_out then begin
    ignore (Atomic.fetch_and_add t.s_timeouts 1);
    Support.Flight.record "req.deadline_hit"
      ~fields:[ ("req", string_of_int req_id) ]
  end;
  let ms = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6 in
  Support.Metrics.observe m_request_ms ~labels:[ Proto.cmd_name req.Proto.cmd ] ms;
  let finish resp ~stat =
    let before () =
      ignore (Atomic.fetch_and_add stat 1);
      let wall_ns = Int64.max 0L (Int64.sub (now_ns ()) job.admitted_ns) in
      log_access t ~req_id ~id:req.Proto.id ~op:(Proto.cmd_name req.Proto.cmd)
        ~queue_ns ~attempts:!attempts ~resp ~wall_ns;
      Support.Flight.record "req.finish"
        ~fields:
          [
            ("req", string_of_int req_id);
            ( "status",
              Option.value ~default:"?" (Sjson.str_member "status" resp) );
            ("attempts", string_of_int !attempts);
          ]
    in
    ignore (fill ~before job.cell resp)
  in
  match result with
  | Ok outcome ->
      journal_store t ~req_id req outcome;
      finish (Proto.ok_response ~req:req_id ~id:req.Proto.id outcome)
        ~stat:t.s_ok
  | Error msgs ->
      let last = match List.rev msgs with m :: _ -> m | [] -> "failed" in
      finish
        (Proto.error_response ~req:req_id ~id:req.Proto.id
           ~code:Support.Diag.Entry_failed
           (Printf.sprintf "handler failed after %d attempts: %s" !attempts
              last))
        ~stat:t.s_errors

(* ---------------- workers -------------------------------------------- *)

let pop t : job option =
  Mutex.lock t.qm;
  let rec go () =
    if not (Queue.is_empty t.queue) then begin
      let job = Queue.pop t.queue in
      t.q_len <- t.q_len - 1;
      t.inflight <- t.inflight + 1;
      Hashtbl.replace t.inflight_jobs job.job_id job;
      Some job
    end
    else if t.state = Stopped then None
    else begin
      Condition.wait t.q_nonempty t.qm;
      go ()
    end
  in
  let r = go () in
  Mutex.unlock t.qm;
  r

let finish_inflight t (job : job) =
  Mutex.lock t.qm;
  t.inflight <- t.inflight - 1;
  Hashtbl.remove t.inflight_jobs job.job_id;
  Mutex.unlock t.qm

let lost_response (job : job) =
  Proto.error_response ~req:job.req_id ~id:job.req.Proto.id
    ~code:Support.Diag.Server_worker_lost "worker lost mid-request (respawned)"

let fill_lost t (job : job) =
  let resp = lost_response job in
  let before () =
    ignore (Atomic.fetch_and_add t.s_errors 1);
    let wall_ns = Int64.max 0L (Int64.sub (now_ns ()) job.admitted_ns) in
    log_access t ~req_id:job.req_id ~id:job.req.Proto.id
      ~op:(Proto.cmd_name job.req.Proto.cmd) ~queue_ns:0L ~attempts:0 ~resp
      ~wall_ns
  in
  ignore (fill ~before job.cell resp)

let rec worker_loop t =
  match pop t with
  | None -> ()
  | Some job ->
      Fun.protect
        (fun () -> handle_job t job)
        ~finally:(fun () ->
          (* backstop: if [handle_job] escaped (Kill_worker, or any
             bug), the caller still gets a structured W0503 instead of
             a hung connection. No-op when the cell is already filled. *)
          fill_lost t job;
          finish_inflight t job);
      worker_loop t

let rec spawn_worker t =
  let d = Domain.spawn (fun () -> worker_loop t) in
  Atomic.incr t.live_workers;
  let monitor () =
    let died = match Domain.join d with () -> false | exception _ -> true in
    Atomic.decr t.live_workers;
    if died then begin
      ignore (Atomic.fetch_and_add t.s_worker_deaths 1);
      Support.Metrics.incr m_worker_deaths;
      Support.Flight.record "worker.death";
      Mutex.lock t.qm;
      let respawn = t.state <> Stopped in
      Mutex.unlock t.qm;
      (* a worker spawned by a lost race with [stop] pops None and
         exits immediately, so over-respawning is harmless *)
      if respawn then spawn_worker t
    end
  in
  ignore (Thread.create monitor ())

(* ---------------- connection threads --------------------------------- *)

let incr_bad t =
  ignore (Atomic.fetch_and_add t.s_bad_frames 1);
  Support.Metrics.incr m_bad_frames;
  Support.Flight.record "frame.bad"

let send _t fd ~cmd (resp : Sjson.t) : unit =
  let status =
    Option.value ~default:"?" (Sjson.str_member "status" resp)
  in
  Support.Metrics.incr m_requests ~labels:[ cmd; status ];
  Frame.write_fd fd (Sjson.to_string resp)

(* ---------------- admin ops ------------------------------------------ *)

(* Stats / Health / Metrics_snapshot / Flight_dump are answered right
   here on the connection thread, like Ping: introspecting a saturated
   server must not queue behind the saturation it is trying to
   observe. *)

let num n = Sjson.Num (float_of_int n)

let state_name = function
  | Running -> "running"
  | Draining -> "draining"
  | Stopped -> "stopped"

let queue_snapshot t =
  Mutex.lock t.qm;
  let q_len = t.q_len and inflight = t.inflight and state = t.state in
  Mutex.unlock t.qm;
  (q_len, inflight, state)

let admin_head ~req ~(id : Sjson.t) rest : Sjson.t =
  Sjson.Obj
    ((("id", id) :: ("req", num req) :: ("status", Sjson.Str "ok") :: rest))

let stats_response t ~req ~id : Sjson.t =
  let s = stats t in
  let q_len, inflight, state = queue_snapshot t in
  admin_head ~req ~id
    [
      ( "stats",
        Sjson.Obj
          [
            ("state", Sjson.Str (state_name state));
            ("uptime_ms", num (uptime_ms t));
            ("requests", num s.requests);
            ("ok", num s.ok);
            ("errors", num s.errors);
            ("shed", num s.shed);
            ("rejected_draining", num s.rejected_draining);
            ("bad_frames", num s.bad_frames);
            ("retried", num s.retried);
            ("worker_deaths", num s.worker_deaths);
            ("replayed", num s.replayed);
            ("timeouts", num s.timeouts);
            ("queue_len", num q_len);
            ("queue_cap", num t.cfg.queue_cap);
            ("inflight", num inflight);
            ("workers", num t.cfg.workers);
            ("workers_live", num (Atomic.get t.live_workers));
            ("access_dropped", num (access_dropped t));
            ("flight_events", num (Support.Flight.events_total ()));
            ("flight_dropped", num (Support.Flight.dropped_total ()));
          ] );
    ]

let health_response t ~req ~id : Sjson.t =
  let q_len, inflight, state = queue_snapshot t in
  admin_head ~req ~id
    [
      ( "health",
        Sjson.Obj
          [
            ("state", Sjson.Str (state_name state));
            ("pid", num (Unix.getpid ()));
            ("proto", num Proto.version);
            ("uptime_ms", num (uptime_ms t));
            ("workers", num t.cfg.workers);
            ("workers_live", num (Atomic.get t.live_workers));
            ("queue_len", num q_len);
            ("queue_cap", num t.cfg.queue_cap);
            ("inflight", num inflight);
          ] );
    ]

let metrics_response ~req ~id ~format : Sjson.t =
  let enabled = ("metrics_enabled", Sjson.Bool (Support.Metrics.enabled ())) in
  match format with
  | "prometheus" ->
      admin_head ~req ~id
        [
          ("format", Sjson.Str "prometheus");
          enabled;
          ("text", Sjson.Str (Support.Metrics.export_prometheus ()));
        ]
  | _ ->
      let families =
        match Sjson.parse_result (Support.Metrics.export_json ()) with
        | Ok v -> Option.value ~default:(Sjson.List []) (Sjson.member "metrics" v)
        | Error _ -> Sjson.List []
      in
      admin_head ~req ~id
        [ ("format", Sjson.Str "json"); enabled; ("metrics", families) ]

let flight_response t ~req ~id : Sjson.t =
  admin_head ~req ~id
    [
      ("flight", Sjson.Str (Support.Flight.dump_jsonl ()));
      ("flight_events", num (Support.Flight.events_total ()));
      ("flight_dropped", num (Support.Flight.dropped_total ()));
      ("access_log", Sjson.List (access_log t));
      ("access_dropped", num (access_dropped t));
    ]

(* The enriched liveness probe: still outcome-shaped (status/exit/
   out/err, so pre-v2 clients keep working) plus the identity fields a
   health prober needs to spot a stale or restarted daemon. *)
let ping_response t ~req ~(id : Sjson.t) : Sjson.t =
  Sjson.Obj
    [
      ("id", id);
      ("req", num req);
      ("status", Sjson.Str "ok");
      ("exit", num 0);
      ("out", Sjson.Str "");
      ("err", Sjson.Str "");
      ("pid", num (Unix.getpid ()));
      ("uptime_ms", num (uptime_ms t));
      ("proto", num Proto.version);
      ("workers", num t.cfg.workers);
      ("workers_live", num (Atomic.get t.live_workers));
    ]

(* Admission: replay, reject (draining), shed (queue full), or queue
   and block on the cell. Exactly one response in every path. *)
let dispatch t fd (req : Proto.request) : unit =
  let cmd = Proto.cmd_name req.Proto.cmd in
  let req_id = Atomic.fetch_and_add t.req_ids 1 in
  let admitted = now_ns () in
  Support.Flight.record "req.admit"
    ~fields:[ ("req", string_of_int req_id); ("cmd", cmd) ];
  (* answer on this connection thread, count, and access-log; every
     path that never reaches a worker funnels through here *)
  let inline ?(stat = t.s_ok) resp =
    ignore (Atomic.fetch_and_add stat 1);
    (* log before sending: by the time the client holds the response,
       its access-log line is already queryable *)
    let wall_ns = Int64.max 0L (Int64.sub (now_ns ()) admitted) in
    log_access t ~req_id ~id:req.Proto.id ~op:cmd ~queue_ns:0L ~attempts:0
      ~resp ~wall_ns;
    send t fd ~cmd resp
  in
  match req.Proto.cmd with
  | Proto.Ping -> inline (ping_response t ~req:req_id ~id:req.Proto.id)
  | Proto.Stats -> inline (stats_response t ~req:req_id ~id:req.Proto.id)
  | Proto.Health -> inline (health_response t ~req:req_id ~id:req.Proto.id)
  | Proto.Metrics_snapshot { format } ->
      inline (metrics_response ~req:req_id ~id:req.Proto.id ~format)
  | Proto.Flight_dump -> inline (flight_response t ~req:req_id ~id:req.Proto.id)
  | Proto.Shutdown ->
      (* answer first: once the flag is set the drain may sever this
         very connection *)
      inline
        (Proto.ok_response ~req:req_id ~id:req.Proto.id
           { Proto.out = ""; err = ""; exit_code = 0 });
      Atomic.set t.stop_requested true
  | Proto.Check _ | Proto.Detect | Proto.Study -> (
      let key = journal_key_of t req in
      match replay_lookup t key with
      | Some resp ->
          ignore (Atomic.fetch_and_add t.s_replayed 1);
          Support.Metrics.incr m_replayed;
          Support.Flight.record "req.replay"
            ~fields:[ ("req", string_of_int req_id) ];
          (* patch the two volatile fields back in: the journalled
             bytes are id- and req-independent by construction *)
          inline
            (Sjson.set_member "req" (num req_id)
               (Sjson.set_member "id" req.Proto.id resp))
      | None ->
          Mutex.lock t.qm;
          if t.state <> Running then begin
            Mutex.unlock t.qm;
            Support.Flight.record "req.reject_draining"
              ~fields:[ ("req", string_of_int req_id) ];
            inline ~stat:t.s_rejected_draining
              (Proto.error_response ~req:req_id ~id:req.Proto.id
                 ~code:Support.Diag.Server_draining "server is draining")
          end
          else if t.q_len >= t.cfg.queue_cap then begin
            Mutex.unlock t.qm;
            Support.Metrics.incr m_shed;
            Support.Flight.record "req.shed"
              ~fields:[ ("req", string_of_int req_id); ("cmd", cmd) ];
            inline ~stat:t.s_shed
              (Proto.error_response ~req:req_id ~id:req.Proto.id
                 ~code:Support.Diag.Server_overload "rejected: overloaded")
          end
          else begin
            let job =
              {
                job_id = Atomic.fetch_and_add t.job_ids 1;
                req_id;
                admitted_ns = admitted;
                req;
                cell = new_cell ();
              }
            in
            Queue.push job t.queue;
            t.q_len <- t.q_len + 1;
            Condition.signal t.q_nonempty;
            Mutex.unlock t.qm;
            send t fd ~cmd (take job.cell)
          end)

(* Unparseable traffic still gets a request id: the E0502 response,
   its access-log line and the flight event all share it, so even
   garbage is traceable. *)
let answer_bad t fd ~(id : Sjson.t) msg : unit =
  let req_id = Atomic.fetch_and_add t.req_ids 1 in
  let t0 = now_ns () in
  let resp =
    Proto.error_response ~req:req_id ~id ~code:Support.Diag.Server_bad_frame msg
  in
  log_access t ~req_id ~id ~op:"?" ~queue_ns:0L ~attempts:0 ~resp
    ~wall_ns:(Int64.max 0L (Int64.sub (now_ns ()) t0));
  send t fd ~cmd:"?" resp

let conn_loop t fd =
  let src = Frame.of_fd fd in
  let rec loop () =
    match Frame.read ~max_len:t.cfg.max_frame src with
    | Error Frame.Closed -> ()
    | Error (Frame.Torn _) ->
        (* the stream is no longer framed: drop the connection (an
           error frame could land mid-frame on the peer) *)
        incr_bad t
    | Error (Frame.Oversized n) ->
        incr_bad t;
        let msg =
          Printf.sprintf "oversized frame: %d bytes (max %d)" n t.cfg.max_frame
        in
        if Frame.skim src n then begin
          (* payload discarded: the stream is framed again, so answer
             and keep the connection *)
          answer_bad t fd ~id:Sjson.Null msg;
          loop ()
        end
        else
          (* unskimmable length: answer, then drop the connection *)
          answer_bad t fd ~id:Sjson.Null msg
    | Ok payload -> (
        match Sjson.parse_result payload with
        | Error msg ->
            incr_bad t;
            answer_bad t fd ~id:Sjson.Null ("malformed request: " ^ msg);
            loop ()
        | Ok json -> (
            match Proto.parse_request json with
            | Error msg ->
                incr_bad t;
                let id =
                  Option.value ~default:Sjson.Null (Sjson.member "id" json)
                in
                answer_bad t fd ~id msg;
                loop ()
            | Ok req ->
                ignore (Atomic.fetch_and_add t.s_requests 1);
                dispatch t fd req;
                loop ()))
  in
  loop ()

let conn_main t conn_id fd =
  Fun.protect
    (fun () ->
      (* the robustness contract: nothing a peer does — including
         vanishing mid-write — escapes the connection thread *)
      try conn_loop t fd with
      | Frame.Peer_gone | Unix.Unix_error _ | Sys_error _ -> ()
      | _ -> ())
    ~finally:(fun () ->
      Mutex.lock t.conns_m;
      Hashtbl.remove t.conns conn_id;
      Mutex.unlock t.conns_m;
      try Unix.close fd with _ -> ())

let accept_loop t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        Mutex.lock t.qm;
        let running = t.state = Running in
        Mutex.unlock t.qm;
        if not running then
          (* the drain's wake-up connect, or a late client: refuse and
             stop accepting *)
          try Unix.close fd with _ -> ()
        else begin
          let conn_id = Atomic.fetch_and_add t.conn_ids 1 in
          Mutex.lock t.conns_m;
          Hashtbl.replace t.conns conn_id fd;
          Mutex.unlock t.conns_m;
          ignore (Thread.create (fun () -> conn_main t conn_id fd) ());
          go ()
        end
  in
  go ()

(* ---------------- lifecycle ------------------------------------------ *)

let request_shutdown t = Atomic.set t.stop_requested true
let shutdown_requested t = Atomic.get t.stop_requested
let stopped t = Atomic.get t.stopped_flag

let start (cfg : config) : t =
  (* a peer vanishing mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  if Sys.file_exists cfg.socket_path then begin
    (* stale-socket handling: refuse to hijack a live server, silently
       replace a dead one's leftover *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX cfg.socket_path);
        true
      with _ -> false
    in
    (try Unix.close probe with _ -> ());
    if live then
      failwith (cfg.socket_path ^ ": another server is already listening");
    try Unix.unlink cfg.socket_path with _ -> ()
  end;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let replay = Hashtbl.create 64 in
  Option.iter
    (fun path ->
      List.iter
        (fun (k, v) -> Hashtbl.replace replay k v)
        (Support.Journal.load path))
    cfg.journal;
  let jr = Option.map Support.Journal.open_append cfg.journal in
  let t =
    {
      cfg;
      started_ns = now_ns ();
      listen_fd;
      req_ids = Atomic.make 1;
      access_m = Mutex.create ();
      access_buf = Array.make (max 16 cfg.access_log_cap) None;
      access_start = 0;
      access_len = 0;
      access_dropped = 0;
      qm = Mutex.create ();
      q_nonempty = Condition.create ();
      queue = Queue.create ();
      q_len = 0;
      inflight = 0;
      inflight_jobs = Hashtbl.create 16;
      state = Running;
      conns_m = Mutex.create ();
      conns = Hashtbl.create 16;
      conn_ids = Atomic.make 0;
      job_ids = Atomic.make 0;
      stop_requested = Atomic.make false;
      stopped_flag = Atomic.make false;
      live_workers = Atomic.make 0;
      accept_thread = None;
      jr;
      replay_m = Mutex.create ();
      replay;
      s_requests = Atomic.make 0;
      s_ok = Atomic.make 0;
      s_errors = Atomic.make 0;
      s_shed = Atomic.make 0;
      s_rejected_draining = Atomic.make 0;
      s_bad_frames = Atomic.make 0;
      s_retried = Atomic.make 0;
      s_worker_deaths = Atomic.make 0;
      s_replayed = Atomic.make 0;
      s_timeouts = Atomic.make 0;
    }
  in
  Support.Flight.record "server.start"
    ~fields:
      [
        ("socket", cfg.socket_path);
        ("workers", string_of_int (max 1 cfg.workers));
      ];
  for _ = 1 to max 1 cfg.workers do
    spawn_worker t
  done;
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop (t : t) : unit =
  Mutex.lock t.qm;
  let proceed =
    match t.state with
    | Running ->
        t.state <- Draining;
        true
    | Draining | Stopped -> false
  in
  Mutex.unlock t.qm;
  if not proceed then
    (* someone else is already draining: wait for them to finish *)
    while not (stopped t) do
      Thread.delay 0.005
    done
  else begin
    Support.Flight.record "server.drain";
    (* 1. stop accepting. A blocked accept(2) is not reliably woken by
       closing the fd from another thread, so poke it with a dummy
       connection that the Draining check immediately refuses. *)
    (let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     (try Unix.connect s (Unix.ADDR_UNIX t.cfg.socket_path) with _ -> ());
     try Unix.close s with _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (try Unix.unlink t.cfg.socket_path with _ -> ());
    (* 2. give queued + in-flight work [drain_ms] to finish *)
    let deadline =
      Int64.add (now_ns ()) (Int64.of_int (t.cfg.drain_ms * 1_000_000))
    in
    let drained () =
      Mutex.lock t.qm;
      let r = t.q_len = 0 && t.inflight = 0 in
      Mutex.unlock t.qm;
      r
    in
    while (not (drained ())) && now_ns () < deadline do
      Thread.delay 0.005
    done;
    (* 3. stop the workers; sweep up what never started (W0504) *)
    Mutex.lock t.qm;
    t.state <- Stopped;
    let leftovers = List.of_seq (Queue.to_seq t.queue) in
    Queue.clear t.queue;
    t.q_len <- 0;
    Condition.broadcast t.q_nonempty;
    Mutex.unlock t.qm;
    List.iter
      (fun (job : job) ->
        let resp =
          Proto.error_response ~req:job.req_id ~id:job.req.Proto.id
            ~code:Support.Diag.Server_draining
            "server shut down before this request started"
        in
        let before () =
          ignore (Atomic.fetch_and_add t.s_rejected_draining 1);
          let wall_ns =
            Int64.max 0L (Int64.sub (now_ns ()) job.admitted_ns)
          in
          log_access t ~req_id:job.req_id ~id:job.req.Proto.id
            ~op:(Proto.cmd_name job.req.Proto.cmd) ~queue_ns:wall_ns
            ~attempts:0 ~resp ~wall_ns
        in
        ignore (fill ~before job.cell resp))
      leftovers;
    (* 4. bounded wait for worker domains to exit, then deadline-kill
       whatever overstayed: fill its cell (W0503) so the client is
       answered even though the worker is still grinding *)
    let wdeadline =
      Int64.add (now_ns ()) (Int64.of_int (t.cfg.drain_ms * 1_000_000))
    in
    while Atomic.get t.live_workers > 0 && now_ns () < wdeadline do
      Thread.delay 0.005
    done;
    let overstayed =
      Mutex.lock t.qm;
      let l = List.of_seq (Hashtbl.to_seq_values t.inflight_jobs) in
      Mutex.unlock t.qm;
      l
    in
    List.iter (fun (job : job) -> fill_lost t job) overstayed;
    (* 5. let connection threads flush their final responses, then
       sever the sockets (shutdown(2) wakes a blocked reader where a
       bare close would not) *)
    Thread.delay 0.02;
    Mutex.lock t.conns_m;
    Hashtbl.iter
      (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      t.conns;
    Mutex.unlock t.conns_m;
    (* 6. flush the journal *)
    (match t.jr with
    | Some j -> ( try Support.Journal.close j with _ -> ())
    | None -> ());
    Support.Flight.record "server.stop";
    Atomic.set t.stopped_flag true
  end

(* Block until a shutdown is requested (SIGTERM handler or a
   [shutdown] frame), then drain. Polling instead of a condition
   because a signal handler can only set a flag. *)
let serve (t : t) : unit =
  while not (shutdown_requested t) do
    Thread.delay 0.05
  done;
  stop t

let wait (t : t) : unit =
  while not (stopped t) do
    Thread.delay 0.01
  done
