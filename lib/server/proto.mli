(** The request/response protocol spoken over {!Frame}s: one frame =
    one JSON object (see docs/SERVER.md for the wire grammar). *)

val version : int
(** Wire protocol version, bumped when ops or response fields grow;
    echoed by [ping] / [health] so probes detect daemon/client skew. *)

type cmd =
  | Ping  (** liveness probe; answered without touching a worker *)
  | Check of { file : string; source : string option; keep_going : bool }
      (** run all detectors on one file. [source] inline, or read from
          [file] when absent. *)
  | Detect  (** the §7 detector evaluation over the target corpus *)
  | Study  (** the full study report *)
  | Shutdown  (** begin a graceful drain, then exit *)
  | Stats  (** admin: live daemon counters; answered inline *)
  | Health  (** admin: liveness + identity; answered inline *)
  | Metrics_snapshot of { format : string }
      (** admin: a {!Support.Metrics} snapshot, [format] ["json"] or
          ["prometheus"]; answered inline *)
  | Flight_dump
      (** admin: the {!Support.Flight} black box + access log;
          answered inline *)

type request = {
  id : Sjson.t;  (** echoed verbatim in the response; any JSON value *)
  cmd : cmd;
  deadline_ms : int option;  (** per-request wall-clock budget *)
  fuel : int option;  (** per-request fixpoint iteration budget *)
}

val cmd_name : cmd -> string

val parse_request : Sjson.t -> (request, string) result

(** What a handler produced: the offline CLI's observable behaviour,
    reified. [out]/[err] are the exact bytes the CLI would write, and
    [exit_code] follows the 0/1/2/3 ladder. *)
type outcome = { out : string; err : string; exit_code : int }

val status_of_exit : int -> string
(** ["ok"], ["findings"], ["degraded"], or ["fatal"]. *)

val ok_response : ?req:int -> id:Sjson.t -> outcome -> Sjson.t
(** [?req] is the server-side request id, rendered as a ["req"] field
    right after ["id"]; the daemon stamps it on every response so a
    reply can be joined to its access-log line, spans, and journal
    record. Absent when the producer has no server context (offline
    tests). *)

val error_status : Support.Diag.code -> string
(** ["rejected"] for the shed/drain W-codes (the request was never
    attempted — safe to resend later), ["error"] otherwise. *)

val error_response :
  ?req:int -> id:Sjson.t -> code:Support.Diag.code -> string -> Sjson.t

val journal_key : request -> handler_domains:int -> string
(** Stable digest of everything that determines a request's response
    bytes, excluding the volatile [id] (patched back in at replay). *)
