(** The request/response protocol spoken over {!Frame}s: one frame =
    one JSON object (see docs/SERVER.md for the wire grammar). *)

type cmd =
  | Ping  (** liveness probe; answered without touching a worker *)
  | Check of { file : string; source : string option; keep_going : bool }
      (** run all detectors on one file. [source] inline, or read from
          [file] when absent. *)
  | Detect  (** the §7 detector evaluation over the target corpus *)
  | Study  (** the full study report *)
  | Shutdown  (** begin a graceful drain, then exit *)

type request = {
  id : Sjson.t;  (** echoed verbatim in the response; any JSON value *)
  cmd : cmd;
  deadline_ms : int option;  (** per-request wall-clock budget *)
  fuel : int option;  (** per-request fixpoint iteration budget *)
}

val cmd_name : cmd -> string

val parse_request : Sjson.t -> (request, string) result

(** What a handler produced: the offline CLI's observable behaviour,
    reified. [out]/[err] are the exact bytes the CLI would write, and
    [exit_code] follows the 0/1/2/3 ladder. *)
type outcome = { out : string; err : string; exit_code : int }

val status_of_exit : int -> string
(** ["ok"], ["findings"], ["degraded"], or ["fatal"]. *)

val ok_response : id:Sjson.t -> outcome -> Sjson.t

val error_status : Support.Diag.code -> string
(** ["rejected"] for the shed/drain W-codes (the request was never
    attempted — safe to resend later), ["error"] otherwise. *)

val error_response : id:Sjson.t -> code:Support.Diag.code -> string -> Sjson.t

val journal_key : request -> handler_domains:int -> string
(** Stable digest of everything that determines a request's response
    bytes, excluding the volatile [id] (patched back in at replay). *)
