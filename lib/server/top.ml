(** [rustudy top]: live daemon introspection over the admin ops.

    Polls [stats] + [metrics] (both answered from the accept path, so
    they work even when every worker is busy), derives window rates
    and latency percentiles, and renders either a refreshing terminal
    screen or one JSON object per poll ([--json]). *)

let num n = Sjson.Num n

(* ---------------- histogram decoding --------------------------------- *)

(* One decoded histogram: total count, total sum (ms), and cumulative
   bucket counts keyed by upper bound ([infinity] for "+Inf"). *)
type hist = { h_count : int; h_sum : float; h_buckets : (float * int) list }

let empty_hist = { h_count = 0; h_sum = 0.0; h_buckets = [] }

let decode_bucket (b : Sjson.t) : (float * int) option =
  let le =
    match Sjson.member "le" b with
    | Some (Sjson.Num f) -> Some f
    | Some (Sjson.Str "+Inf") -> Some infinity
    | _ -> None
  in
  match (le, Sjson.int_member "count" b) with
  | Some le, Some c -> Some (le, c)
  | _ -> None

let decode_hist (sample : Sjson.t) : hist =
  let buckets =
    match Sjson.member "buckets" sample with
    | Some (Sjson.List l) -> List.filter_map decode_bucket l
    | _ -> []
  in
  {
    h_count = Option.value ~default:0 (Sjson.int_member "count" sample);
    h_sum =
      (match Sjson.member "sum" sample with
      | Some (Sjson.Num f) -> f
      | _ -> 0.0);
    h_buckets = buckets;
  }

(* Histograms of one family share bucket bounds, so merging and
   differencing are positional on the bound. *)
let merge_hists (a : hist) (b : hist) : hist =
  let buckets =
    if a.h_buckets = [] then b.h_buckets
    else if b.h_buckets = [] then a.h_buckets
    else
      List.map
        (fun (le, c) ->
          match List.assoc_opt le b.h_buckets with
          | Some c' -> (le, c + c')
          | None -> (le, c))
        a.h_buckets
  in
  {
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_buckets = buckets;
  }

let sub_hist (now : hist) (prev : hist) : hist =
  let buckets =
    List.map
      (fun (le, c) ->
        match List.assoc_opt le prev.h_buckets with
        | Some c' -> (le, max 0 (c - c'))
        | None -> (le, c))
      now.h_buckets
  in
  {
    h_count = max 0 (now.h_count - prev.h_count);
    h_sum = Float.max 0.0 (now.h_sum -. prev.h_sum);
    h_buckets = buckets;
  }

(* Percentile by linear interpolation inside the owning bucket; the
   open "+Inf" bucket degrades to the last finite bound (there is
   nothing better to interpolate against). *)
let percentile (h : hist) (q : float) : float option =
  if h.h_count <= 0 || h.h_buckets = [] then None
  else begin
    let target = q *. float_of_int h.h_count in
    let rec go lo_bound lo_cum = function
      | [] -> None
      | (le, cum) :: rest ->
          if float_of_int cum >= target then
            if le = infinity then Some lo_bound
            else begin
              let span = float_of_int (cum - lo_cum) in
              let frac =
                if span <= 0.0 then 1.0
                else (target -. float_of_int lo_cum) /. span
              in
              Some (lo_bound +. (frac *. (le -. lo_bound)))
            end
          else go le cum rest
    in
    go 0.0 0 h.h_buckets
  end

(* ---------------- metrics-family access ------------------------------ *)

let find_family (fams : Sjson.t list) (name : string) : Sjson.t option =
  List.find_opt (fun f -> Sjson.str_member "name" f = Some name) fams

let family_samples (f : Sjson.t) : Sjson.t list =
  match Sjson.member "samples" f with Some (Sjson.List l) -> l | _ -> []

let sample_label (s : Sjson.t) (key : string) : string =
  match Sjson.member "labels" s with
  | Some labels -> Option.value ~default:"" (Sjson.str_member key labels)
  | None -> ""

(* The request-latency histogram merged across cmd labels. *)
let request_hist (fams : Sjson.t list) : hist =
  match find_family fams "rustudy_server_request_ms" with
  | None -> empty_hist
  | Some f ->
      List.fold_left
        (fun acc s -> merge_hists acc (decode_hist s))
        empty_hist (family_samples f)

(* Per-span (name, count, total ms), heaviest first. *)
let span_aggs (fams : Sjson.t list) : (string * int * float) list =
  match find_family fams "rustudy_span_duration_ms" with
  | None -> []
  | Some f ->
      List.sort
        (fun (_, _, a) (_, _, b) -> compare b a)
        (List.map
           (fun s ->
             let h = decode_hist s in
             (sample_label s "span", h.h_count, h.h_sum))
           (family_samples f))

(* ---------------- polling -------------------------------------------- *)

type poll = {
  p_stats : Sjson.t;  (** the "stats" object of the stats response *)
  p_fams : Sjson.t list;  (** metrics families ([] when disabled) *)
  p_metrics_enabled : bool;
  p_at : float;  (** client wall clock, seconds *)
}

let stat (p : poll) name = Option.value ~default:0 (Sjson.int_member name p.p_stats)
let stat_str (p : poll) name = Option.value ~default:"?" (Sjson.str_member name p.p_stats)

let do_poll (c : Client.t) ~seq : poll =
  let sresp = Client.rpc c (Client.stats ~id:seq) in
  let mresp = Client.rpc c (Client.metrics ~id:(seq + 1) ()) in
  let p_stats =
    Option.value ~default:(Sjson.Obj []) (Sjson.member "stats" sresp)
  in
  let p_fams =
    match Sjson.member "metrics" mresp with Some (Sjson.List l) -> l | _ -> []
  in
  let p_metrics_enabled =
    Option.value ~default:false (Sjson.bool_member "metrics_enabled" mresp)
  in
  { p_stats; p_fams; p_metrics_enabled; p_at = Unix.gettimeofday () }

(* ---------------- one rendered sample -------------------------------- *)

(* Everything a poll (optionally against the previous one) yields:
   window rates when there is a previous poll, since-start rates
   otherwise. *)
type sample = {
  qps : float;
  shed_rate : float;
  retry_rate : float;
  timeout_rate : float;
  p50_ms : float option;
  p99_ms : float option;
  spans : (string * int * float) list;
}

let rates ~(prev : poll option) (now : poll) : sample =
  let window_s, d =
    match prev with
    | Some p when now.p_at > p.p_at ->
        (now.p_at -. p.p_at, fun name -> stat now name - stat p name)
    | _ ->
        let up = float_of_int (stat now "uptime_ms") /. 1000.0 in
        (Float.max up 1e-3, fun name -> stat now name)
  in
  let per_s name = float_of_int (d name) /. window_s in
  let lat_hist =
    let h = request_hist now.p_fams in
    match prev with
    | Some p -> sub_hist h (request_hist p.p_fams)
    | None -> h
  in
  (* the window can be empty (idle server): fall back to the
     since-start distribution so p50/p99 stay meaningful *)
  let lat_hist =
    if lat_hist.h_count > 0 then lat_hist else request_hist now.p_fams
  in
  {
    qps = per_s "requests";
    shed_rate = per_s "shed";
    retry_rate = per_s "retried";
    timeout_rate = per_s "timeouts";
    p50_ms = percentile lat_hist 0.50;
    p99_ms = percentile lat_hist 0.99;
    spans = span_aggs now.p_fams;
  }

(* ---------------- output --------------------------------------------- *)

let json_of_sample (now : poll) (s : sample) : Sjson.t =
  let opt_ms = function None -> Sjson.Null | Some v -> num v in
  let spans =
    Sjson.List
      (List.map
         (fun (name, count, total_ms) ->
           Sjson.Obj
             [
               ("span", Sjson.Str name);
               ("count", num (float_of_int count));
               ("total_ms", num total_ms);
             ])
         s.spans)
  in
  Sjson.Obj
    [
      ("state", Sjson.Str (stat_str now "state"));
      ("uptime_ms", num (float_of_int (stat now "uptime_ms")));
      ("qps", num s.qps);
      ("p50_ms", opt_ms s.p50_ms);
      ("p99_ms", opt_ms s.p99_ms);
      ("shed_per_s", num s.shed_rate);
      ("retried_per_s", num s.retry_rate);
      ("timeouts_per_s", num s.timeout_rate);
      ("metrics_enabled", Sjson.Bool now.p_metrics_enabled);
      ("stats", now.p_stats);
      ("spans", spans);
    ]

let render_screen ~socket (now : poll) (s : sample) : string =
  let b = Buffer.create 1024 in
  let ms_str = function
    | None -> "-"
    | Some v -> Printf.sprintf "%.2f ms" v
  in
  Printf.bprintf b "rustudy top — %s — %s — up %.1fs\n" socket
    (stat_str now "state")
    (float_of_int (stat now "uptime_ms") /. 1000.0);
  Printf.bprintf b
    "requests %d (%.1f/s)   ok %d   errors %d   replayed %d   bad frames %d\n"
    (stat now "requests") s.qps (stat now "ok") (stat now "errors")
    (stat now "replayed") (stat now "bad_frames");
  Printf.bprintf b
    "shed %d (%.2f/s)   retried %d (%.2f/s)   timeouts %d (%.2f/s)\n"
    (stat now "shed") s.shed_rate (stat now "retried") s.retry_rate
    (stat now "timeouts") s.timeout_rate;
  Printf.bprintf b "queue %d/%d   inflight %d   workers %d/%d live\n"
    (stat now "queue_len") (stat now "queue_cap") (stat now "inflight")
    (stat now "workers_live") (stat now "workers");
  Printf.bprintf b "latency p50 %s   p99 %s\n" (ms_str s.p50_ms)
    (ms_str s.p99_ms);
  Printf.bprintf b "flight %d events (%d dropped)   access log dropped %d\n"
    (stat now "flight_events") (stat now "flight_dropped")
    (stat now "access_dropped");
  if not now.p_metrics_enabled then
    Buffer.add_string b
      "(metrics disabled: latency/spans need serve --metrics-out or --profile)\n"
  else begin
    match s.spans with
    | [] -> ()
    | spans ->
        Printf.bprintf b "top spans:\n";
        Printf.bprintf b "  %-34s %8s %12s %12s\n" "span" "count" "total ms"
          "mean ms";
        List.iteri
          (fun i (name, count, total_ms) ->
            if i < 8 then
              Printf.bprintf b "  %-34s %8d %12.3f %12.3f\n" name count
                total_ms
                (total_ms /. float_of_int (max 1 count)))
          spans
  end;
  Buffer.contents b

(* ---------------- driver --------------------------------------------- *)

let run ~socket ~interval_ms ~once ~json () : int =
  match Client.connect_retry ~attempts:20 ~delay:0.05 socket with
  | exception _ ->
      Printf.eprintf "rustudy top: cannot connect to %s\n%!" socket;
      3
  | c ->
      let interval_s = float_of_int (max 50 interval_ms) /. 1000.0 in
      let rec loop (prev : poll option) seq =
        match do_poll c ~seq with
        | exception (Client.Server_gone _ | Unix.Unix_error _ | Sys_error _)
          ->
            if once then begin
              Printf.eprintf "rustudy top: server went away\n%!";
              1
            end
            else begin
              (* a drained daemon is a normal way for a watch to end *)
              print_string "\nserver went away\n";
              0
            end
        | now ->
            let s = rates ~prev now in
            if json then print_string (Sjson.to_string (json_of_sample now s) ^ "\n")
            else begin
              if not once then print_string "\027[2J\027[H";
              print_string (render_screen ~socket now s)
            end;
            flush stdout;
            if once then 0
            else begin
              Thread.delay interval_s;
              loop (Some now) (seq + 2)
            end
      in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () -> loop None 1)
