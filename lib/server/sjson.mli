(** Strict wire JSON for the analysis server.

    A self-contained JSON codec hardened for adversarial network
    input: payloads are rejected unless they are well-formed UTF-8,
    nesting depth is bounded, trailing garbage after the value is an
    error, and printing is deterministic — the same value always
    renders to the same bytes, which is what lets journalled responses
    replay byte-identically across server restarts. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of string
(** Raised by {!parse} on malformed input. Never escapes
    {!parse_result}. *)

val utf8_valid : string -> bool
(** Exactly RFC 3629 well-formedness: no overlong encodings, no
    surrogate code points, nothing above U+10FFFF. *)

val parse : string -> t
(** Parse one complete JSON value. Raises {!Error} on invalid UTF-8,
    malformed syntax, nesting deeper than 128, or trailing bytes. *)

val parse_result : string -> (t, string) result
(** {!parse} with the exception reified. *)

val to_string : t -> string
(** Deterministic printer: no whitespace, object keys in insertion
    order, integral numbers printed without a fractional part. *)

val member : string -> t -> t option
(** First binding of a key in an object; [None] for non-objects. *)

val str_member : string -> t -> string option
val int_member : string -> t -> int option
val bool_member : string -> t -> bool option

val set_member : string -> t -> t -> t
(** [set_member k v obj] replaces the binding of [k] (or appends one).
    Non-objects are returned unchanged. *)
