(** Minimal blocking client for the analysis daemon (one in-flight
    request per connection). *)

type t

val connect : string -> t
(** Connect to a daemon's Unix-domain socket.
    @raise Unix.Unix_error when nothing is listening. *)

val connect_retry : ?attempts:int -> ?delay:float -> string -> t
(** {!connect} with linear retry — for clients racing a daemon's
    startup (default 100 attempts, 50 ms apart). *)

val close : t -> unit

(** {1 Request builders} *)

val ping : id:int -> Sjson.t
val shutdown : id:int -> Sjson.t

val stats : id:int -> Sjson.t
(** Live daemon counters + queue/worker gauges; answered inline. *)

val health : id:int -> Sjson.t
(** State, pid, protocol version, uptime, workers; answered inline. *)

val metrics : id:int -> ?format:string -> unit -> Sjson.t
(** A {!Support.Metrics} snapshot; [format] is ["json"] (default) or
    ["prometheus"]. *)

val flight : id:int -> Sjson.t
(** The {!Support.Flight} black box + the bounded access log. *)

val check :
  id:int ->
  ?deadline_ms:int ->
  ?fuel:int ->
  ?source:string ->
  ?keep_going:bool ->
  file:string ->
  unit ->
  Sjson.t

val detect : id:int -> ?deadline_ms:int -> ?fuel:int -> unit -> Sjson.t
val study : id:int -> ?deadline_ms:int -> ?fuel:int -> unit -> Sjson.t

(** {1 Round trips} *)

exception Server_gone of string
(** The connection died mid-round-trip (torn response, severed
    socket). *)

val roundtrip_raw :
  ?half_close:bool -> t -> string -> (string, Frame.read_error) result
(** Ship raw bytes (a possibly-mutated frame) and read one response
    frame back — the fuzz harness's primitive. With [~half_close:true]
    (default [false]) the sending side is shut down after the write:
    the server then classifies a truncated frame as torn instead of
    waiting forever for the rest, so the call always terminates, at
    the cost of making the connection one-shot. *)

val rpc : t -> Sjson.t -> Sjson.t
(** Send one request frame, wait for its response frame.
    @raise Server_gone if the connection dies mid-round-trip. *)
