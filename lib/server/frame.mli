(** Length-prefixed wire framing: 4-byte big-endian payload length,
    then that many bytes of UTF-8 JSON.

    The reader distinguishes a clean close (EOF at a frame boundary)
    from a torn frame (EOF mid-header/mid-payload) and an oversized
    frame (length prefix above the cap). Oversized frames can be
    {!skim}med — read and discarded — so the stream stays framed and
    the connection survives the bad message. *)

val hard_max_len : int
(** Outermost sanity bound on a frame length (64 MiB). Servers pass
    tighter caps via [?max_len]. *)

type read_error =
  | Closed  (** EOF at a frame boundary: the peer hung up cleanly. *)
  | Torn of string
      (** EOF mid-header or mid-payload ([what] says which). The
          stream is no longer framed. *)
  | Oversized of int
      (** Length prefix above the cap; the payload has NOT been
          consumed — {!skim} it or close the connection. *)

val read_error_to_string : read_error -> string

(** {1 Byte sources} *)

type src
(** A pull-based byte source, so the same framing logic serves live
    sockets and in-memory fuzz buffers. *)

val of_fd : Unix.file_descr -> src
(** ECONNRESET reads as EOF (a torn frame), not an exception. *)

val of_string : string -> src
(** A cursor over an in-memory byte string (fuzzing). *)

(** {1 Encoding} *)

val encode : string -> string
(** [encode payload] is the full frame: header + payload bytes. *)

exception Peer_gone
(** Raised by {!write_fd} when the peer closed its end mid-write
    (EPIPE / ECONNRESET). The process must have [SIGPIPE] ignored. *)

val write_fd : Unix.file_descr -> string -> unit
(** Write one complete frame, retrying short writes. *)

(** {1 Decoding} *)

val read : ?max_len:int -> src -> (string, read_error) result
(** Read one frame's payload. [max_len] (default {!hard_max_len})
    bounds the accepted payload size. *)

val skim_max : int
(** Largest oversized payload {!skim} will discard (4 MiB); beyond
    this the connection should be dropped instead. *)

val skim : src -> int -> bool
(** [skim src len] reads and discards [len] payload bytes so the
    stream stays framed after an [Oversized] result. [false] if the
    length is unskimmable or the stream tore mid-skim. *)
