(** Lightweight type inference for RustLite expressions.

    Bottom-up typing with a local environment; no unification. Where
    Rust would need inference variables (e.g. [Vec::new()] with the
    element type fixed by later pushes), RustLite programs annotate the
    binding, and anything genuinely undetermined becomes [Ty.Unknown] —
    analyses treat [Unknown] conservatively. *)

open Syntax

type gamma = (string * Ty.t) list
(** Local typing environment, innermost binding first. *)

let lookup gamma name = List.assoc_opt name gamma

let lit_ty = function
  | Ast.Lit_int (_, suffix) -> (
      match Ty.prim_of_name suffix with
      | Some p -> Ty.Prim p
      | None -> Ty.i32)
  | Ast.Lit_bool _ -> Ty.bool_
  | Ast.Lit_str _ -> Ty.Ref (Imm, Ty.str_)
  | Ast.Lit_char _ -> Ty.Prim Ty.Char
  | Ast.Lit_float _ -> Ty.Prim Ty.F64
  | Ast.Lit_unit -> Ty.unit_

(* ------------------------------------------------------------------ *)
(* Builtin free functions and associated constructors                  *)
(* ------------------------------------------------------------------ *)

(* Matched against the last one or two path segments, so both
   [ptr::read] and [std::ptr::read] resolve. [targs] are explicit
   turbofish arguments; [argts] the argument types. *)
let builtin_path_fn segments (targs : Ty.t list) (argts : Ty.t list) :
    Ty.t option =
  let arg0 () = match argts with a :: _ -> a | [] -> Ty.Unknown in
  let targ0 () = match targs with a :: _ -> a | [] -> Ty.Unknown in
  let tail2 =
    match List.rev segments with
    | last :: prev :: _ -> [ prev; last ]
    | rest -> List.rev rest
  in
  let pointee t = match t with Ty.Ptr (_, p) | Ty.Ref (_, p) -> p | _ -> Ty.Unknown in
  match tail2 with
  | [ "ptr"; "read" ] | [ "read_volatile" ] -> Some (pointee (arg0 ()))
  | [ "ptr"; "write" ] | [ "ptr"; "write_volatile" ] -> Some Ty.unit_
  | [ "ptr"; "copy_nonoverlapping" ] | [ "ptr"; "copy" ] -> Some Ty.unit_
  | [ "ptr"; "null" ] -> Some (Ty.Ptr (Imm, targ0 ()))
  | [ "ptr"; "null_mut" ] -> Some (Ty.Ptr (Mut, targ0 ()))
  | [ "ptr"; "drop_in_place" ] -> Some Ty.unit_
  | [ "mem"; "drop" ] | [ "drop" ] -> Some Ty.unit_
  | [ "mem"; "forget" ] -> Some Ty.unit_
  | [ "mem"; "swap" ] -> Some Ty.unit_
  | [ "mem"; "replace" ] -> Some (pointee (arg0 ()))
  | [ "mem"; "transmute" ] -> Some (targ0 ())
  | [ "mem"; "size_of" ] | [ "size_of" ] -> Some Ty.usize
  | [ "mem"; "uninitialized" ] -> Some (targ0 ())
  | [ "mem"; "zeroed" ] -> Some (targ0 ())
  | [ "alloc"; "alloc" ] | [ "alloc" ] | [ "malloc" ] -> Some (Ty.Ptr (Mut, Ty.Prim Ty.U8))
  | [ "alloc"; "dealloc" ] | [ "dealloc" ] | [ "free" ] -> Some Ty.unit_
  | [ "thread"; "spawn" ] | [ "spawn" ] -> Some (Ty.Named ("JoinHandle", [ Ty.Unknown ]))
  | [ "thread"; "sleep" ] | [ "sleep" ] -> Some Ty.unit_
  | [ "mpsc"; "channel" ] | [ "channel" ] ->
      let t = targ0 () in
      Some (Ty.Tuple [ Ty.Named ("Sender", [ t ]); Ty.Named ("Receiver", [ t ]) ])
  | [ "mpsc"; "sync_channel" ] | [ "sync_channel" ] ->
      let t = targ0 () in
      Some (Ty.Tuple [ Ty.Named ("SyncSender", [ t ]); Ty.Named ("Receiver", [ t ]) ])
  | _ -> None

(* Constructor-style associated functions on std types: [Type::fn]. *)
let builtin_assoc_fn type_head fn_name (targs : Ty.t list) (argts : Ty.t list)
    : Ty.t option =
  let arg0 () = match argts with a :: _ -> a | [] -> Ty.Unknown in
  let targ0 () = match targs with a :: _ -> a | [] -> Ty.Unknown in
  match (type_head, fn_name) with
  | ("Arc" | "Rc" | "Box" | "Mutex" | "RwLock" | "RefCell" | "Cell"
    | "ManuallyDrop" | "UnsafeCell"), "new" ->
      Some (Ty.Named (type_head, [ arg0 () ]))
  | "Condvar", "new" -> Some (Ty.Named ("Condvar", []))
  | "Once", "new" -> Some (Ty.Named ("Once", []))
  | "Vec", "new" -> Some (Ty.Named ("Vec", [ targ0 () ]))
  | "Vec", "with_capacity" -> Some (Ty.Named ("Vec", [ targ0 () ]))
  | "Vec", "from_raw_parts" ->
      let elem = match arg0 () with Ty.Ptr (_, t) -> t | _ -> targ0 () in
      Some (Ty.Named ("Vec", [ elem ]))
  | "String", ("new" | "from" | "from_utf8_unchecked" | "with_capacity") ->
      Some Ty.string_
  | ( ("AtomicBool" | "AtomicUsize" | "AtomicIsize" | "AtomicI32" | "AtomicU32"
      | "AtomicI64" | "AtomicU64"), "new" ) ->
      Some (Ty.Named (type_head, []))
  | ("Arc" | "Rc"), "into_raw" -> Some (Ty.Ptr (Imm, Ty.first_arg (arg0 ())))
  | ("Arc" | "Rc"), "from_raw" ->
      let inner = match arg0 () with Ty.Ptr (_, t) -> t | _ -> targ0 () in
      Some (Ty.Named (type_head, [ inner ]))
  | ("Arc" | "Rc"), "strong_count" -> Some Ty.usize
  | "Box", "into_raw" -> Some (Ty.Ptr (Mut, Ty.first_arg (arg0 ())))
  | "Box", "from_raw" ->
      let inner = match arg0 () with Ty.Ptr (_, t) -> t | _ -> targ0 () in
      Some (Ty.Named ("Box", [ inner ]))
  | "Instant", "now" -> Some (Ty.Named ("Instant", []))
  | "Duration", ("from_secs" | "from_millis") -> Some (Ty.Named ("Duration", []))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Builtin methods                                                     *)
(* ------------------------------------------------------------------ *)

(* [recv] is already peeled of references (but not of the lock/cell
   wrapper itself). Returns the method's result type. *)
let builtin_method (recv : Ty.t) name (targs : Ty.t list)
    (argts : Ty.t list) : Ty.t option =
  let a () = Ty.first_arg recv in
  let arg0 () = match argts with x :: _ -> x | [] -> Ty.Unknown in
  let err = Ty.Named ("PoisonError", []) in
  match (Ty.head_name recv, name) with
  | Some "Mutex", ("lock" | "try_lock") ->
      Some (Ty.Named ("Result", [ Ty.Named ("MutexGuard", [ a () ]); err ]))
  | Some "RwLock", ("read" | "try_read") ->
      Some (Ty.Named ("Result", [ Ty.Named ("RwLockReadGuard", [ a () ]); err ]))
  | Some "RwLock", ("write" | "try_write") ->
      Some (Ty.Named ("Result", [ Ty.Named ("RwLockWriteGuard", [ a () ]); err ]))
  | Some "Result", ("unwrap" | "expect" | "unwrap_or" | "unwrap_or_else"
                   | "unwrap_or_propagate") ->
      Some (a ())
  | Some "Result", ("is_ok" | "is_err") -> Some Ty.bool_
  | Some "Result", "ok" -> Some (Ty.Named ("Option", [ a () ]))
  | Some "Option", ("unwrap" | "expect" | "unwrap_or" | "unwrap_or_else"
                   | "take_unchecked" | "unwrap_or_propagate") ->
      Some (a ())
  | Some "Option", ("is_some" | "is_none") -> Some Ty.bool_
  | Some "Option", "take" -> Some (Ty.Named ("Option", [ a () ]))
  | Some "Option", "as_ref" ->
      Some (Ty.Named ("Option", [ Ty.Ref (Imm, a ()) ]))
  | Some "Option", "as_mut" ->
      Some (Ty.Named ("Option", [ Ty.Ref (Mut, a ()) ]))
  | Some "Option", ("map" | "and_then") -> Some (Ty.Named ("Option", [ Ty.Unknown ]))
  | Some "Option", "map_or" -> Some (arg0 ())
  | Some "Vec", "push" -> Some Ty.unit_
  | Some "Vec", "pop" -> Some (Ty.Named ("Option", [ a () ]))
  | Some "Vec", ("len" | "capacity") -> Some Ty.usize
  | Some "Vec", "is_empty" -> Some Ty.bool_
  | Some "Vec", "get" -> Some (Ty.Named ("Option", [ Ty.Ref (Imm, a ()) ]))
  | Some "Vec", "get_mut" -> Some (Ty.Named ("Option", [ Ty.Ref (Mut, a ()) ]))
  | Some "Vec", "get_unchecked" -> Some (Ty.Ref (Imm, a ()))
  | Some "Vec", "get_unchecked_mut" -> Some (Ty.Ref (Mut, a ()))
  | Some "Vec", "as_ptr" -> Some (Ty.Ptr (Imm, a ()))
  | Some "Vec", "as_mut_ptr" -> Some (Ty.Ptr (Mut, a ()))
  | Some "Vec", ("set_len" | "clear" | "truncate" | "reserve"
                | "copy_from_slice" | "extend_from_slice" | "insert") ->
      Some Ty.unit_
  | Some "Vec", "remove" -> Some (a ())
  | Some "Vec", ("iter" | "iter_mut" | "into_iter" | "drain") ->
      Some (Ty.Named ("Iter", [ a () ]))
  | Some "Vec", "clone" -> Some recv
  | Some "Iter", "next" -> Some (Ty.Named ("Option", [ a () ]))
  | Some ("Arc" | "Rc"), "clone" -> Some recv
  | Some "RefCell", "borrow" -> Some (Ty.Named ("CellRef", [ a () ]))
  | Some "RefCell", "borrow_mut" -> Some (Ty.Named ("CellRefMut", [ a () ]))
  | Some "Cell", "get" -> Some (a ())
  | Some "Cell", "set" -> Some Ty.unit_
  | Some "Cell", "replace" -> Some (a ())
  | Some "UnsafeCell", "get" -> Some (Ty.Ptr (Mut, a ()))
  | Some ("AtomicBool"), ("load" | "swap" | "compare_and_swap") -> Some Ty.bool_
  | Some ("AtomicBool"), "store" -> Some Ty.unit_
  | Some ("AtomicBool"), "compare_exchange" ->
      Some (Ty.Named ("Result", [ Ty.bool_; Ty.bool_ ]))
  | Some ("AtomicUsize" | "AtomicIsize" | "AtomicI32" | "AtomicU32"
         | "AtomicI64" | "AtomicU64"), ("load" | "swap" | "compare_and_swap"
                                       | "fetch_add" | "fetch_sub") ->
      Some Ty.usize
  | Some ("AtomicUsize" | "AtomicIsize" | "AtomicI32" | "AtomicU32"
         | "AtomicI64" | "AtomicU64"), "store" ->
      Some Ty.unit_
  | ( Some ("AtomicUsize" | "AtomicIsize" | "AtomicI32" | "AtomicU32"
           | "AtomicI64" | "AtomicU64"), "compare_exchange" ) ->
      Some (Ty.Named ("Result", [ Ty.usize; Ty.usize ]))
  | Some "Condvar", "wait" -> (
      (* wait(guard) returns the guard back *)
      match argts with
      | g :: _ -> Some (Ty.Named ("Result", [ g; err ]))
      | [] -> Some Ty.Unknown)
  | Some "Condvar", "wait_timeout" -> (
      match argts with
      | g :: _ -> Some (Ty.Named ("Result", [ Ty.Tuple [ g; Ty.bool_ ]; err ]))
      | [] -> Some Ty.Unknown)
  | Some "Condvar", ("notify_one" | "notify_all") -> Some Ty.unit_
  | Some ("Sender" | "SyncSender"), "send" ->
      Some (Ty.Named ("Result", [ Ty.unit_; Ty.Named ("SendError", []) ]))
  | Some ("Sender" | "SyncSender"), "clone" -> Some recv
  | Some "Receiver", ("recv" | "try_recv") ->
      Some (Ty.Named ("Result", [ a (); Ty.Named ("RecvError", []) ]))
  | Some "JoinHandle", "join" ->
      Some (Ty.Named ("Result", [ a (); Ty.Unknown ]))
  | Some "Once", "call_once" -> Some Ty.unit_
  | Some "String", ("len" | "capacity") -> Some Ty.usize
  | Some "String", ("push_str" | "push" | "clear") -> Some Ty.unit_
  | Some "String", "as_ptr" -> Some (Ty.Ptr (Imm, Ty.Prim Ty.U8))
  | Some "String", "as_bytes" ->
      Some (Ty.Ref (Imm, Ty.Named ("Vec", [ Ty.Prim Ty.U8 ])))
  | Some "String", "clone" -> Some recv
  | Some "str", ("len") -> Some Ty.usize
  | Some "str", "to_string" -> Some Ty.string_
  | Some "Instant", "elapsed" -> Some (Ty.Named ("Duration", []))
  | Some "Duration", "as_millis" -> Some Ty.usize
  | _, "offset" | _, "add" when Ty.is_raw_ptr recv -> Some recv
  | _, "is_null" when Ty.is_raw_ptr recv -> Some Ty.bool_
  | _, ("read" | "read_volatile") when Ty.is_raw_ptr recv ->
      (match recv with Ty.Ptr (_, t) -> Some t | _ -> None)
  | _, ("write" | "write_volatile") when Ty.is_raw_ptr recv -> Some Ty.unit_
  | _, "clone" -> Some recv
  | _, "to_string" -> Some Ty.string_
  | _, "as_ptr" -> Some (Ty.Ptr (Imm, recv))
  | _, "as_mut_ptr" -> Some (Ty.Ptr (Mut, recv))
  | _ ->
      ignore targs;
      None

(* ------------------------------------------------------------------ *)
(* Signatures                                                          *)
(* ------------------------------------------------------------------ *)

(** Parameter and return types of a function. [self_ty] instantiates
    the receiver for methods. *)
let fn_sig env ?self_ty (fd : Syntax.Ast.fn_def) : Ty.t list * Ty.t =
  let param_ty = function
    | Ast.Param_self None -> Option.value self_ty ~default:Ty.Unknown
    | Ast.Param_self (Some m) ->
        Ty.Ref (m, Option.value self_ty ~default:Ty.Unknown)
    | Ast.Param (_, _, ty) -> Env.ty_of_ast env ty
  in
  let params = List.map param_ty fd.Ast.fn_params in
  let ret =
    match fd.Ast.fn_ret with
    | Some t -> Env.ty_of_ast env t
    | None -> Ty.unit_
  in
  (params, ret)

(* ------------------------------------------------------------------ *)
(* Expression typing                                                   *)
(* ------------------------------------------------------------------ *)

let rec type_of_expr (env : Env.t) (gamma : gamma) (e : Ast.expr) : Ty.t =
  match e.Ast.e with
  | Ast.E_lit l -> lit_ty l
  | Ast.E_path (p, targs) -> type_of_path env gamma p targs ~args:None
  | Ast.E_call (callee, args) -> (
      let argts = List.map (type_of_expr env gamma) args in
      match callee.Ast.e with
      | Ast.E_path (p, targs) ->
          let targs = List.map (Env.ty_of_ast env) targs in
          type_of_path_call env gamma p targs argts
      | _ -> (
          match type_of_expr env gamma callee with
          | Ty.Fn (_, ret) -> ret
          | _ -> Ty.Unknown))
  | Ast.E_method (recv, name, targs, args) ->
      let recv_ty = type_of_expr env gamma recv in
      let argts = List.map (type_of_expr env gamma) args in
      let targs = List.map (Env.ty_of_ast env) targs in
      type_of_method env recv_ty name targs argts
  | Ast.E_field (recv, fname) -> (
      let recv_ty = Ty.peel (type_of_expr env gamma recv) in
      match recv_ty with
      | Ty.Named (head, targs) -> (
          match Env.find_struct env head with
          | Some sd -> (
              match Env.field_ty env sd targs fname with
              | Some t -> t
              | None -> Ty.Unknown)
          | None -> Ty.Unknown)
      | _ -> Ty.Unknown)
  | Ast.E_tuple_field (recv, i) -> (
      match Ty.peel (type_of_expr env gamma recv) with
      | Ty.Tuple ts when i < List.length ts -> List.nth ts i
      | _ -> Ty.Unknown)
  | Ast.E_index (recv, _) -> (
      match Ty.peel (type_of_expr env gamma recv) with
      | Ty.Named ("Vec", [ t ]) -> t
      | Ty.Named ("String", _) -> Ty.Prim Ty.U8
      | _ -> Ty.Unknown)
  | Ast.E_unary (Ast.Deref, inner) -> (
      match type_of_expr env gamma inner with
      | Ty.Ref (_, t) | Ty.Ptr (_, t) -> t
      | t -> (
          match Ty.autoderef_target t with Some t' -> t' | None -> Ty.Unknown))
  | Ast.E_unary (Ast.Neg, inner) -> type_of_expr env gamma inner
  | Ast.E_unary (Ast.Not, inner) -> type_of_expr env gamma inner
  | Ast.E_binary (op, l, _) -> (
      match op with
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or
        ->
          Ty.bool_
      | _ -> type_of_expr env gamma l)
  | Ast.E_ref (m, inner) -> Ty.Ref (m, type_of_expr env gamma inner)
  | Ast.E_assign _ | Ast.E_assign_op _ -> Ty.unit_
  | Ast.E_cast (_, ty) -> Env.ty_of_ast env ty
  | Ast.E_if (_, blk, els) -> (
      match block_ty env gamma blk with
      | Ty.Unknown -> (
          match els with
          | Some e -> type_of_expr env gamma e
          | None -> Ty.unit_)
      | t -> t)
  | Ast.E_if_let (_, _, blk, els) -> (
      match block_ty env gamma blk with
      | Ty.Unknown -> (
          match els with
          | Some e -> type_of_expr env gamma e
          | None -> Ty.unit_)
      | t -> t)
  | Ast.E_match (scrut, arms) -> (
      let scrut_ty = type_of_expr env gamma scrut in
      match arms with
      | [] -> Ty.unit_
      | arm :: _ ->
          let gamma' = bind_pattern env gamma arm.Ast.arm_pat scrut_ty in
          type_of_expr env gamma' arm.Ast.arm_body)
  | Ast.E_while _ | Ast.E_while_let _ | Ast.E_for _ -> Ty.unit_
  | Ast.E_loop _ -> Ty.unit_
  | Ast.E_block blk | Ast.E_unsafe blk -> block_ty env gamma blk
  | Ast.E_return _ | Ast.E_break | Ast.E_continue -> Ty.unit_
  | Ast.E_struct_lit (p, _, _) -> (
      let name =
        match List.rev p.Ast.segments with last :: _ -> last | [] -> "?"
      in
      match Env.find_struct env name with
      | Some sd ->
          Ty.Named (name, List.map (fun _ -> Ty.Unknown) sd.Ast.s_generics)
      | None -> Ty.Named (name, []))
  | Ast.E_tuple es -> Ty.Tuple (List.map (type_of_expr env gamma) es)
  | Ast.E_closure cl ->
      let params =
        List.map
          (fun (_, ty) ->
            match ty with Some t -> Env.ty_of_ast env t | None -> Ty.Unknown)
          cl.Ast.cl_params
      in
      Ty.Fn (params, Ty.Unknown)
  | Ast.E_range _ -> Ty.Named ("Range", [ Ty.usize ])
  | Ast.E_vec es -> (
      match es with
      | e1 :: _ -> Ty.Named ("Vec", [ type_of_expr env gamma e1 ])
      | [] -> Ty.Named ("Vec", [ Ty.Unknown ]))
  | Ast.E_macro (("format" | "format_args"), _) -> Ty.string_
  | Ast.E_macro _ -> Ty.unit_
  | Ast.E_error -> Ty.Unknown

and type_of_method env recv_ty name targs argts : Ty.t =
  (* Auto-deref chain: try each peeling level for a builtin or user
     method, mirroring Rust's method resolution order. *)
  let rec resolve t =
    let direct =
      match builtin_method t name targs argts with
      | Some r -> Some r
      | None -> (
          match Ty.head_name t with
          | Some head -> (
              match Env.find_method env head name with
              | Some fd ->
                  let _, ret = fn_sig env ~self_ty:t fd in
                  Some
                    (match ret with
                    | Ty.Named ("Self", _) -> t
                    | r -> r)
              | None -> None)
          | None -> None)
    in
    match direct with
    | Some r -> Some r
    | None -> (
        match Ty.autoderef_target t with
        | Some inner -> resolve inner
        | None -> None)
  in
  match resolve recv_ty with Some r -> r | None -> Ty.Unknown

and type_of_path env gamma (p : Ast.path) _targs ~args : Ty.t =
  ignore args;
  match p.Ast.segments with
  | [ name ] -> (
      match lookup gamma name with
      | Some t -> t
      | None -> (
          match Env.find_static env name with
          | Some sd -> Env.ty_of_ast env sd.Ast.st_ty
          | None -> (
              match Env.find_fn env name with
              | Some fd ->
                  let params, ret = fn_sig env fd in
                  Ty.Fn (params, ret)
              | None -> (
                  (* bare enum variants None / unit variants *)
                  match name with
                  | "None" -> Ty.Named ("Option", [ Ty.Unknown ])
                  | _ -> (
                      match Env.enum_of_variant env name with
                      | Some en -> Ty.Named (en, [])
                      | None -> Ty.Unknown)))))
  | segments -> (
      match List.rev segments with
      | variant :: enum_name :: _ when Hashtbl.mem env.Env.enums enum_name ->
          ignore variant;
          Ty.Named (enum_name, [])
      | [ "None"; "Option" ] -> Ty.Named ("Option", [ Ty.Unknown ])
      | _ -> Ty.Unknown)

and type_of_path_call env gamma (p : Ast.path) targs argts : Ty.t =
  let arg0 () = match argts with a :: _ -> a | [] -> Ty.Unknown in
  match p.Ast.segments with
  | [ "Some" ] -> Ty.Named ("Option", [ arg0 () ])
  | [ "Ok" ] -> Ty.Named ("Result", [ arg0 (); Ty.Unknown ])
  | [ "Err" ] -> Ty.Named ("Result", [ Ty.Unknown; arg0 () ])
  | [ name ] -> (
      match Env.find_fn env name with
      | Some fd ->
          let _, ret = fn_sig env fd in
          ret
      | None -> (
          match Env.enum_of_variant env name with
          | Some en -> Ty.Named (en, [])
          | None -> (
              match builtin_path_fn [ name ] targs argts with
              | Some t -> t
              | None -> (
                  match lookup gamma name with
                  | Some (Ty.Fn (_, ret)) -> ret
                  | _ -> Ty.Unknown))))
  | segments -> (
      match List.rev segments with
      | fn_name :: ty_head :: _ -> (
          match builtin_assoc_fn ty_head fn_name targs argts with
          | Some t -> t
          | None -> (
              (* enum variant: Enum::Variant(args) *)
              match Env.find_enum env ty_head with
              | Some ed -> Ty.Named (ed.Ast.e_name, [])
              | None -> (
                  match Env.find_assoc_fn env ty_head fn_name with
                  | Some fd ->
                      let self_ty = Ty.Named (ty_head, []) in
                      let _, ret = fn_sig env ~self_ty fd in
                      ret
                  | None -> (
                      match builtin_path_fn segments targs argts with
                      | Some t -> t
                      | None -> Ty.Unknown))))
      | [] | [ _ ] -> Ty.Unknown)

and block_ty env gamma (b : Ast.block) : Ty.t =
  (* Approximate: type the tail expression under bindings introduced by
     the block's lets. *)
  let gamma' =
    List.fold_left
      (fun g s ->
        match s with
        | Ast.S_let lb ->
            let ty =
              match lb.Ast.let_ty with
              | Some t -> Env.ty_of_ast env t
              | None -> (
                  match lb.Ast.let_init with
                  | Some init -> type_of_expr env g init
                  | None -> Ty.Unknown)
            in
            bind_pattern env g lb.Ast.let_pat ty
        | _ -> g)
      gamma b.Ast.stmts
  in
  match b.Ast.tail with
  | Some e -> type_of_expr env gamma' e
  | None -> Ty.unit_

(** Extend [gamma] with the bindings a pattern introduces when matched
    against a value of type [ty]. *)
and bind_pattern env gamma (pat : Ast.pat) (ty : Ty.t) : gamma =
  match pat.Ast.p with
  | Ast.P_wild | Ast.P_lit _ -> gamma
  | Ast.P_ident (_, name, sub) -> (
      let gamma = (name, ty) :: gamma in
      match sub with
      | Some p -> bind_pattern env gamma p ty
      | None -> gamma)
  | Ast.P_ref (_, sub) -> (
      match ty with
      | Ty.Ref (_, inner) -> bind_pattern env gamma sub inner
      | _ -> bind_pattern env gamma sub ty)
  | Ast.P_tuple pats -> (
      match ty with
      | Ty.Tuple ts when List.length ts = List.length pats ->
          List.fold_left2 (bind_pattern env) gamma pats ts
      | _ ->
          List.fold_left (fun g p -> bind_pattern env g p Ty.Unknown) gamma pats)
  | Ast.P_ctor (p, pats) -> (
      let inner =
        match (Ast.path_name p, ty) with
        | ("Some" | "Option::Some"), Ty.Named ("Option", [ t ]) -> [ t ]
        | ("Ok" | "Result::Ok"), Ty.Named ("Result", [ t; _ ]) -> [ t ]
        | ("Err" | "Result::Err"), Ty.Named ("Result", [ _; e ]) -> [ e ]
        | _ -> List.map (fun _ -> Ty.Unknown) pats
      in
      let inner =
        if List.length inner = List.length pats then inner
        else List.map (fun _ -> Ty.Unknown) pats
      in
      List.fold_left2 (bind_pattern env) gamma pats inner)
  | Ast.P_struct (p, fields) -> (
      let head =
        match List.rev p.Ast.segments with last :: _ -> last | [] -> "?"
      in
      match Env.find_struct env head with
      | Some sd ->
          List.fold_left
            (fun g (fname, fpat) ->
              let fty =
                match Env.field_ty env sd (Ty.args (Ty.peel ty)) fname with
                | Some t -> t
                | None -> Ty.Unknown
              in
              bind_pattern env g fpat fty)
            gamma fields
      | None ->
          List.fold_left
            (fun g (_, fpat) -> bind_pattern env g fpat Ty.Unknown)
            gamma fields)
