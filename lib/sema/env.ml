(** Crate-level environment: item tables collected in one pass, used by
    type checking, lowering and the unsafe-usage scanner. *)

open Syntax

type t = {
  structs : (string, Ast.struct_def) Hashtbl.t;
  enums : (string, Ast.enum_def) Hashtbl.t;
  variants : (string, string) Hashtbl.t;  (** variant name -> enum name *)
  fns : (string, Ast.fn_def) Hashtbl.t;  (** free functions *)
  impls : (string, Ast.impl_block) Hashtbl.t;  (** self type head -> impls *)
  traits : (string, Ast.trait_def) Hashtbl.t;
  statics : (string, Ast.static_def) Hashtbl.t;
  mutable sync_impls : (string * bool) list;
      (** (type, unsafe?) for [impl Sync/Send for T] *)
  crate : Ast.crate;
}

let rec collect_items env items =
  List.iter
    (fun item ->
      match item with
      | Ast.I_struct s -> Hashtbl.replace env.structs s.Ast.s_name s
      | Ast.I_enum e ->
          Hashtbl.replace env.enums e.Ast.e_name e;
          List.iter
            (fun v -> Hashtbl.replace env.variants v.Ast.v_name e.Ast.e_name)
            e.Ast.e_variants
      | Ast.I_fn f -> Hashtbl.replace env.fns f.Ast.fn_name f
      | Ast.I_impl ib ->
          let head =
            match ib.Ast.impl_self_ty.Ast.t with
            | Ast.Ty_path (p, _) -> (
                match List.rev p.Ast.segments with
                | last :: _ -> last
                | [] -> "<anon>")
            | _ -> "<anon>"
          in
          Hashtbl.add env.impls head ib;
          (match ib.Ast.impl_trait with
          | Some tr
            when List.mem (Ast.path_name tr) [ "Sync"; "Send" ] ->
              env.sync_impls <- (head, ib.Ast.impl_unsafe) :: env.sync_impls
          | _ -> ())
      | Ast.I_trait t -> Hashtbl.replace env.traits t.Ast.tr_name t
      | Ast.I_static s -> Hashtbl.replace env.statics s.Ast.st_name s
      | Ast.I_use _ -> ()
      | Ast.I_error _ -> ()
      | Ast.I_mod (_, sub) -> collect_items env sub)
    items

let of_crate (crate : Ast.crate) : t =
  let env =
    {
      structs = Hashtbl.create 16;
      enums = Hashtbl.create 16;
      variants = Hashtbl.create 16;
      fns = Hashtbl.create 16;
      impls = Hashtbl.create 16;
      traits = Hashtbl.create 16;
      statics = Hashtbl.create 16;
      sync_impls = [];
      crate;
    }
  in
  collect_items env crate.Ast.items;
  env

let find_struct env name = Hashtbl.find_opt env.structs name
let find_enum env name = Hashtbl.find_opt env.enums name
let find_fn env name = Hashtbl.find_opt env.fns name
let find_static env name = Hashtbl.find_opt env.statics name
let enum_of_variant env v = Hashtbl.find_opt env.variants v

let impls_of env type_head = Hashtbl.find_all env.impls type_head

(** Look up an inherent or trait-impl method [name] on type [head]. *)
let find_method env type_head name : Ast.fn_def option =
  let rec search = function
    | [] -> None
    | ib :: rest -> (
        match
          List.find_opt (fun f -> String.equal f.Ast.fn_name name) ib.Ast.impl_items
        with
        | Some f -> Some f
        | None -> search rest)
  in
  search (impls_of env type_head)

(** Look up an associated function via [Type::name] call syntax. *)
let find_assoc_fn env type_head name = find_method env type_head name

(** Does [type_head] implement Sync or Send (via an explicit impl)? *)
let implements_sync env type_head =
  List.exists (fun (t, _) -> String.equal t type_head) env.sync_impls

(* ------------------------------------------------------------------ *)
(* AST type -> semantic type                                           *)
(* ------------------------------------------------------------------ *)

let rec ty_of_ast env (t : Ast.ty) : Ty.t =
  match t.Ast.t with
  | Ast.Ty_ref (m, inner) -> Ty.Ref (m, ty_of_ast env inner)
  | Ast.Ty_ptr (m, inner) -> Ty.Ptr (m, ty_of_ast env inner)
  | Ast.Ty_tuple ts -> (
      match ts with
      | [] -> Ty.unit_
      | _ -> Ty.Tuple (List.map (ty_of_ast env) ts))
  | Ast.Ty_fn (args, ret) ->
      Ty.Fn (List.map (ty_of_ast env) args, ty_of_ast env ret)
  | Ast.Ty_infer -> Ty.Unknown
  | Ast.Ty_path (p, args) -> (
      let name =
        match List.rev p.Ast.segments with last :: _ -> last | [] -> "?"
      in
      match (Ty.prim_of_name name, args) with
      | Some prim, [] -> Ty.Prim prim
      | _ -> Ty.Named (name, List.map (ty_of_ast env) args))

(** Type of a struct field, with the struct's generic parameters
    substituted by the instantiation [targs]. *)
let field_ty env (sd : Ast.struct_def) targs field_name : Ty.t option =
  match
    List.find_opt
      (fun f -> String.equal f.Ast.field_name field_name)
      sd.Ast.s_fields
  with
  | None -> None
  | Some f ->
      let subst = List.combine sd.Ast.s_generics
          (if List.length targs = List.length sd.Ast.s_generics then targs
           else List.map (fun _ -> Ty.Unknown) sd.Ast.s_generics)
      in
      let rec inst (t : Ty.t) =
        match t with
        | Ty.Named (n, []) -> (
            match List.assoc_opt n subst with Some t' -> t' | None -> t)
        | Ty.Named (n, args) -> Ty.Named (n, List.map inst args)
        | Ty.Ref (m, t') -> Ty.Ref (m, inst t')
        | Ty.Ptr (m, t') -> Ty.Ptr (m, inst t')
        | Ty.Tuple ts -> Ty.Tuple (List.map inst ts)
        | Ty.Fn (args, ret) -> Ty.Fn (List.map inst args, inst ret)
        | Ty.Prim _ | Ty.Unknown -> t
      in
      Some (inst (ty_of_ast env f.Ast.field_ty))
