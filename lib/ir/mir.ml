(** RustLite's MIR: a control-flow graph of basic blocks with explicit
    [StorageLive]/[StorageDead] markers and [Drop] statements, mirroring
    the constructs of rustc's MIR that the PLDI'20 detectors consume. *)

open Support

type local = int

type local_info = {
  l_name : string option;  (** user variable name, [None] for temps *)
  l_ty : Sema.Ty.t;
  l_mut : bool;
  l_user : bool;  (** declared by the user (vs compiler temp) *)
  l_span : Span.t;
}

type proj =
  | Deref
  | Field of string
  | Index  (** dynamic index; the index operand is not tracked *)
  | Downcast of string  (** enum variant projection *)

type place = { base : local; proj : proj list }

let local_place base = { base; proj = [] }
let place_is_local p = p.proj = []

type constant =
  | Cint of int
  | Cbool of bool
  | Cstr of string
  | Cfloat of float
  | Cunit
  | Cfn of string  (** reference to a function or closure body *)

type operand = Copy of place | Move of place | Const of constant

type agg_kind =
  | Agg_struct of string
  | Agg_tuple
  | Agg_variant of string * string  (** enum, variant *)
  | Agg_closure of string  (** closure body id; operands are captures *)
  | Agg_vec

type binop = Syntax.Ast.binop
type unop = Syntax.Ast.unop

type rvalue =
  | Use of operand
  | Ref of Sema.Ty.mutability * place
  | AddrOf of Sema.Ty.mutability * place  (** [&raw] / [as *const] of place *)
  | BinaryOp of binop * operand * operand
  | UnaryOp of unop * operand
  | Aggregate of agg_kind * operand list
  | Cast of operand * Sema.Ty.t
  | Discriminant of place
  | Alloc of Sema.Ty.t  (** heap allocation yielding raw memory *)

(** Semantic classification of call targets. The detectors key on these
    rather than re-deriving semantics from names. *)
type builtin =
  | MutexLock
  | MutexTryLock
  | RwRead
  | RwTryRead
  | RwWrite
  | RwTryWrite
  | ResultUnwrap  (** also [expect], [?] *)
  | OptionUnwrap
  | PtrRead
  | PtrWrite
  | PtrCopy
  | PtrOffset
  | PtrNull
  | MemDrop
  | MemForget
  | MemReplace
  | MemSwap
  | MemTransmute
  | MemUninit
  | SizeOf
  | HeapAlloc
  | HeapDealloc
  | ThreadSpawn
  | ThreadJoin
  | ThreadSleep
  | CondvarWait
  | CondvarNotifyOne
  | CondvarNotifyAll
  | ChannelNew
  | SyncChannelNew
  | ChannelSend
  | ChannelRecv
  | ChannelTryRecv
  | AtomicLoad
  | AtomicStore
  | AtomicSwap
  | AtomicCas
  | AtomicFetch
  | CtorNew of string  (** [Arc::new], [Mutex::new], ... (type head) *)
  | IntoRaw
  | FromRaw
  | VecFromRawParts
  | RefCellBorrow
  | RefCellBorrowMut
  | CellGet
  | CellSet
  | UnsafeCellGet
  | OnceCallOnce
  | VecPush
  | VecPop
  | VecGet
  | VecGetUnchecked
  | VecSetLen
  | VecAsPtr
  | VecLen
  | CloneFn
  | StrFromUtf8Unchecked
  | OptionCtor of string  (** Some / None / Ok / Err *)
  | VariantCtor of string * string  (** user enum, variant *)
  | Extern of string  (** FFI or unresolved function *)
  | Pure of string  (** misc known-pure method (len, is_empty, ...) *)

type callee =
  | Fn of string  (** user free function *)
  | Method of string * string  (** type head, method name *)
  | ClosureCall of string  (** direct call of a closure body *)
  | Builtin of builtin

type call = {
  callee : callee;
  args : operand list;
  dest : place;
  dest_ty : Sema.Ty.t;
  call_unsafe : bool;  (** call site lexically inside an unsafe region *)
  call_span : Span.t;
}

type stmt_kind =
  | Assign of place * rvalue
  | StorageLive of local
  | StorageDead of local
  | Drop of place
  | Nop

type stmt = { kind : stmt_kind; s_span : Span.t; s_unsafe : bool }

type terminator =
  | Goto of int
  | SwitchInt of operand * (int * int) list * int  (** (value, target), default *)
  | Call of call * int  (** call, successor block *)
  | Return of operand option
  | Unreachable
  | Abort of string  (** panic *)

type block = { stmts : stmt list; term : terminator; t_span : Span.t }

type cfg = {
  cfg_succs : int array array;  (** in-range successor ids per block *)
  cfg_preds : int array array;
  cfg_rpo : int array;  (** reverse-postorder sequence of reachable blocks *)
  cfg_prio : int array;  (** block id -> RPO index; -1 when unreachable *)
  cfg_reachable : bool array;
}
(** Derived control-flow structure, computed once per body by
    [Analysis.Dataflow.cfg_of] and memoized below: every fixpoint over
    the same body shares one successor/predecessor/RPO computation. *)

type body = {
  fn_id : string;
  arg_count : int;
  locals : local_info array;
  blocks : block array;
  fn_unsafe : bool;
  body_span : Span.t;
  captures : (int * string) list;
      (** for closure bodies: param index -> captured variable name in
          the enclosing function *)
  mutable body_cfg : cfg option;
      (** CFG memo; filled on first analysis. Concurrent fills from
          several domains are benign: both compute equal values and the
          write is a single word. *)
  mutable body_ix : int;
      (** dense program-wide index ([body_list] position), assigned on
          first [body_list] call; -1 until then. Lets analysis caches
          use array slots instead of hashing [fn_id] strings. *)
}

type program = {
  bodies : (string, body) Hashtbl.t;
  prog_env : Sema.Env.t;
  unsafe_spans : Span.t list;
      (** spans of unsafe blocks and unsafe fn bodies, for
          cause/effect-in-unsafe classification *)
  mutable prog_body_list : body list option;
      (** memo of [body_list] (the sorted order is stable; detectors
          ask for it on every pass). Benign race, same as [body_cfg]. *)
}

let body_list p =
  match p.prog_body_list with
  | Some bs -> bs
  | None ->
      let bs =
        Hashtbl.fold (fun _ b acc -> b :: acc) p.bodies []
        |> List.sort (fun a b -> String.compare a.fn_id b.fn_id)
      in
      List.iteri (fun i b -> b.body_ix <- i) bs;
      p.prog_body_list <- Some bs;
      bs

let body_count p = Hashtbl.length p.bodies

let find_body p id = Hashtbl.find_opt p.bodies id

let local_ty (b : body) (l : local) = b.locals.(l).l_ty

let in_unsafe_region (p : program) (span : Span.t) =
  List.exists (fun u -> Span.contains u span) p.unsafe_spans

(** Successor block ids of a terminator. *)
let successors = function
  | Goto t -> [ t ]
  | SwitchInt (_, cases, default) -> default :: List.map snd cases
  | Call (_, t) -> [ t ]
  | Return _ | Unreachable | Abort _ -> []

(* ------------------------------------------------------------------ *)
(* Classification helpers shared by detectors                          *)
(* ------------------------------------------------------------------ *)

let is_lock_acquire = function
  | MutexLock | RwRead | RwWrite -> true
  | _ -> false

let is_try_lock = function
  | MutexTryLock | RwTryRead | RwTryWrite -> true
  | _ -> false

let builtin_name = function
  | MutexLock -> "Mutex::lock"
  | MutexTryLock -> "Mutex::try_lock"
  | RwRead -> "RwLock::read"
  | RwTryRead -> "RwLock::try_read"
  | RwWrite -> "RwLock::write"
  | RwTryWrite -> "RwLock::try_write"
  | ResultUnwrap -> "Result::unwrap"
  | OptionUnwrap -> "Option::unwrap"
  | PtrRead -> "ptr::read"
  | PtrWrite -> "ptr::write"
  | PtrCopy -> "ptr::copy_nonoverlapping"
  | PtrOffset -> "ptr::offset"
  | PtrNull -> "ptr::null"
  | MemDrop -> "mem::drop"
  | MemForget -> "mem::forget"
  | MemReplace -> "mem::replace"
  | MemSwap -> "mem::swap"
  | MemTransmute -> "mem::transmute"
  | MemUninit -> "mem::uninitialized"
  | SizeOf -> "mem::size_of"
  | HeapAlloc -> "alloc"
  | HeapDealloc -> "dealloc"
  | ThreadSpawn -> "thread::spawn"
  | ThreadJoin -> "JoinHandle::join"
  | ThreadSleep -> "thread::sleep"
  | CondvarWait -> "Condvar::wait"
  | CondvarNotifyOne -> "Condvar::notify_one"
  | CondvarNotifyAll -> "Condvar::notify_all"
  | ChannelNew -> "mpsc::channel"
  | SyncChannelNew -> "mpsc::sync_channel"
  | ChannelSend -> "Sender::send"
  | ChannelRecv -> "Receiver::recv"
  | ChannelTryRecv -> "Receiver::try_recv"
  | AtomicLoad -> "Atomic::load"
  | AtomicStore -> "Atomic::store"
  | AtomicSwap -> "Atomic::swap"
  | AtomicCas -> "Atomic::compare_and_swap"
  | AtomicFetch -> "Atomic::fetch_op"
  | CtorNew head -> head ^ "::new"
  | IntoRaw -> "into_raw"
  | FromRaw -> "from_raw"
  | VecFromRawParts -> "Vec::from_raw_parts"
  | RefCellBorrow -> "RefCell::borrow"
  | RefCellBorrowMut -> "RefCell::borrow_mut"
  | CellGet -> "Cell::get"
  | CellSet -> "Cell::set"
  | UnsafeCellGet -> "UnsafeCell::get"
  | OnceCallOnce -> "Once::call_once"
  | VecPush -> "Vec::push"
  | VecPop -> "Vec::pop"
  | VecGet -> "Vec::get"
  | VecGetUnchecked -> "Vec::get_unchecked"
  | VecSetLen -> "Vec::set_len"
  | VecAsPtr -> "Vec::as_ptr"
  | VecLen -> "Vec::len"
  | CloneFn -> "clone"
  | StrFromUtf8Unchecked -> "String::from_utf8_unchecked"
  | OptionCtor v -> v
  | VariantCtor (e, v) -> e ^ "::" ^ v
  | Extern f -> "extern:" ^ f
  | Pure f -> f

let callee_name = function
  | Fn f -> f
  | Method (t, m) -> t ^ "::" ^ m
  | ClosureCall c -> c
  | Builtin b -> builtin_name b

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_local ppf l = Fmt.pf ppf "_%d" l

let pp_proj ppf = function
  | Deref -> Fmt.string ppf ".*"
  | Field f -> Fmt.pf ppf ".%s" f
  | Index -> Fmt.string ppf "[_]"
  | Downcast v -> Fmt.pf ppf " as %s" v

let pp_place ppf p =
  Fmt.pf ppf "%a%a" pp_local p.base (Fmt.list ~sep:Fmt.nop pp_proj) p.proj

let pp_constant ppf = function
  | Cint i -> Fmt.int ppf i
  | Cbool b -> Fmt.bool ppf b
  | Cstr s -> Fmt.pf ppf "%S" s
  | Cfloat f -> Fmt.float ppf f
  | Cunit -> Fmt.string ppf "()"
  | Cfn f -> Fmt.pf ppf "fn %s" f

let pp_operand ppf = function
  | Copy p -> Fmt.pf ppf "copy %a" pp_place p
  | Move p -> Fmt.pf ppf "move %a" pp_place p
  | Const c -> Fmt.pf ppf "const %a" pp_constant c

let pp_rvalue ppf = function
  | Use op -> pp_operand ppf op
  | Ref (Imm, p) -> Fmt.pf ppf "&%a" pp_place p
  | Ref (Mut, p) -> Fmt.pf ppf "&mut %a" pp_place p
  | AddrOf (Imm, p) -> Fmt.pf ppf "&raw const %a" pp_place p
  | AddrOf (Mut, p) -> Fmt.pf ppf "&raw mut %a" pp_place p
  | BinaryOp (op, a, b) ->
      Fmt.pf ppf "%s(%a, %a)" (Syntax.Ast.show_binop op) pp_operand a
        pp_operand b
  | UnaryOp (op, a) ->
      Fmt.pf ppf "%s(%a)" (Syntax.Ast.show_unop op) pp_operand a
  | Aggregate (Agg_struct s, ops) ->
      Fmt.pf ppf "%s { %a }" s (Fmt.list ~sep:Fmt.comma pp_operand) ops
  | Aggregate (Agg_tuple, ops) ->
      Fmt.pf ppf "(%a)" (Fmt.list ~sep:Fmt.comma pp_operand) ops
  | Aggregate (Agg_variant (e, v), ops) ->
      Fmt.pf ppf "%s::%s(%a)" e v (Fmt.list ~sep:Fmt.comma pp_operand) ops
  | Aggregate (Agg_closure c, ops) ->
      Fmt.pf ppf "closure %s [%a]" c (Fmt.list ~sep:Fmt.comma pp_operand) ops
  | Aggregate (Agg_vec, ops) ->
      Fmt.pf ppf "vec![%a]" (Fmt.list ~sep:Fmt.comma pp_operand) ops
  | Cast (op, ty) -> Fmt.pf ppf "%a as %a" pp_operand op Sema.Ty.pp ty
  | Discriminant p -> Fmt.pf ppf "discriminant(%a)" pp_place p
  | Alloc ty -> Fmt.pf ppf "alloc(%a)" Sema.Ty.pp ty

let pp_stmt ppf (s : stmt) =
  match s.kind with
  | Assign (p, rv) -> Fmt.pf ppf "%a = %a" pp_place p pp_rvalue rv
  | StorageLive l -> Fmt.pf ppf "StorageLive(%a)" pp_local l
  | StorageDead l -> Fmt.pf ppf "StorageDead(%a)" pp_local l
  | Drop p -> Fmt.pf ppf "drop(%a)" pp_place p
  | Nop -> Fmt.string ppf "nop"

let pp_terminator ppf = function
  | Goto t -> Fmt.pf ppf "goto -> bb%d" t
  | SwitchInt (op, cases, default) ->
      Fmt.pf ppf "switchInt(%a) -> [%a, otherwise: bb%d]" pp_operand op
        (Fmt.list ~sep:Fmt.comma (fun ppf (v, t) -> Fmt.pf ppf "%d: bb%d" v t))
        cases default
  | Call (c, t) ->
      Fmt.pf ppf "%a = %s(%a) -> bb%d" pp_place c.dest (callee_name c.callee)
        (Fmt.list ~sep:Fmt.comma pp_operand)
        c.args t
  | Return None -> Fmt.string ppf "return"
  | Return (Some op) -> Fmt.pf ppf "return %a" pp_operand op
  | Unreachable -> Fmt.string ppf "unreachable"
  | Abort msg -> Fmt.pf ppf "abort(%S)" msg

let pp_body ppf (b : body) =
  Fmt.pf ppf "fn %s(%d args) {@\n" b.fn_id b.arg_count;
  Array.iteri
    (fun i (info : local_info) ->
      Fmt.pf ppf "  let %s_%d: %a;%s@\n"
        (if info.l_mut then "mut " else "")
        i Sema.Ty.pp info.l_ty
        (match info.l_name with Some n -> " // " ^ n | None -> ""))
    b.locals;
  Array.iteri
    (fun i (blk : block) ->
      Fmt.pf ppf "  bb%d: {@\n" i;
      List.iter (fun s -> Fmt.pf ppf "    %a;@\n" pp_stmt s) blk.stmts;
      Fmt.pf ppf "    %a;@\n  }@\n" pp_terminator blk.term)
    b.blocks;
  Fmt.pf ppf "}@\n"

let body_to_string b = Fmt.str "%a" pp_body b
