(** Lowering RustLite ASTs to MIR.

    The lowering reproduces the rustc behaviours the PLDI'20 study
    hinges on:

    - scope-based [StorageLive]/[StorageDead] insertion and drop
      elaboration at scope exits (lock guards release on drop);
    - Rust's temporary-lifetime rule: temporaries created while
      evaluating a [match]/[if let] scrutinee or an [if] condition live
      until the end of the whole construct (the Fig. 8 double-lock
      pattern); the [Statement_local] configuration ablates this;
    - assignments drop the previous value of the destination (the
      Fig. 6 invalid-free pattern);
    - moves deinitialize their source, so moved-from locals are not
      dropped again;
    - closures become separate MIR bodies with explicit captures. *)

open Support
open Syntax
module Ty = Sema.Ty

type tmp_lifetime = Extended | Statement_local

type config = { tmp_lifetime : tmp_lifetime }

let default_config = { tmp_lifetime = Extended }

(* ------------------------------------------------------------------ *)
(* Function builder                                                    *)
(* ------------------------------------------------------------------ *)

type blockbuf = {
  mutable bstmts : Mir.stmt list;  (** reversed *)
  mutable bterm : Mir.terminator option;
  mutable bspan : Span.t;
}

type scope = {
  mutable slocals : Mir.local list;  (** reversed declaration order *)
}

type frame = { mutable ftemps : Mir.local list }

type fb = {
  env : Sema.Env.t;
  config : config;
  fn_id : string;
  mutable locals : Mir.local_info list;  (** reversed *)
  mutable n_locals : int;
  mutable blocks : blockbuf array;  (** arena; indices < [n_blocks] live *)
  mutable n_blocks : int;
  mutable cur : int;
  mutable curbuf : blockbuf;  (** [blocks.(cur)], cached for [emit] *)
  mutable gamma : (string * Mir.local) list;
  mutable scopes : scope list;
  mutable frames : frame list;
  mutable loops : (int * int * int) list;
      (** (continue target, break target, scope depth at loop entry) *)
  mutable moved : (Mir.local, unit) Hashtbl.t;
  mutable uninit : (Mir.local, unit) Hashtbl.t;
      (** let-bound without initializer; first assignment does not drop *)
  mutable in_unsafe : bool;
  mutable closure_count : int;
  mutable closure_of_local : (Mir.local * string) list;
  out_bodies : (string, Mir.body) Hashtbl.t;
  unsafe_spans : Span.t list ref;
  mutable terminated : bool;  (** current block already ended (return etc.) *)
  ret_ty : Sema.Ty.t;
  mutable ret_l : Mir.local option;
      (** rustc's [_0]: holds the return value across the exit drops *)
}

(* Shared filler for unused arena slots; [new_block] always installs a
   fresh record before a slot becomes reachable. *)
let no_block : blockbuf = { bstmts = []; bterm = None; bspan = Span.dummy }

let new_block fb =
  let id = fb.n_blocks in
  if id = Array.length fb.blocks then begin
    let a = Array.make (2 * id) no_block in
    Array.blit fb.blocks 0 a 0 id;
    fb.blocks <- a
  end;
  Array.unsafe_set fb.blocks id { bstmts = []; bterm = None; bspan = Span.dummy };
  fb.n_blocks <- id + 1;
  id

let block fb id = fb.blocks.(id)

let switch_to fb id =
  fb.cur <- id;
  fb.curbuf <- fb.blocks.(id);
  fb.terminated <- false

let emit fb ?(span = Span.dummy) kind =
  if not fb.terminated then
    let b = fb.curbuf in
    b.bstmts <- { Mir.kind; s_span = span; s_unsafe = fb.in_unsafe } :: b.bstmts

let set_term fb ?(span = Span.dummy) term =
  if not fb.terminated then begin
    let b = fb.curbuf in
    b.bterm <- Some term;
    b.bspan <- span;
    fb.terminated <- true
  end

let new_local fb ?name ?(mut = false) ?(user = false) ?(span = Span.dummy) ty =
  let id = fb.n_locals in
  fb.n_locals <- id + 1;
  fb.locals <-
    { Mir.l_name = name; l_ty = ty; l_mut = mut; l_user = user; l_span = span }
    :: fb.locals;
  id

let local_info fb l = List.nth fb.locals (fb.n_locals - 1 - l)
let local_ty fb l = (local_info fb l).Mir.l_ty

let lookup_var fb name = List.assoc_opt name fb.gamma

let gamma_types fb : Sema.Typeck.gamma =
  List.map (fun (n, l) -> (n, local_ty fb l)) fb.gamma

let type_of fb (e : Ast.expr) : Ty.t =
  Sema.Typeck.type_of_expr fb.env (gamma_types fb) e

let mark_moved fb (p : Mir.place) =
  if Mir.place_is_local p then Hashtbl.replace fb.moved p.Mir.base ()

(* Operand for reading a place: move if the type is not Copy. The
   move is recorded only when the operand is actually consumed by
   value (see [sink]), so results later used as places keep their
   scope-end drop. *)
let consume fb (p : Mir.place) ty : Mir.operand =
  ignore fb;
  if Ty.is_copy ty || not (Ty.needs_drop ty) then Mir.Copy p else Mir.Move p

(* Record that an operand's value has been consumed by value: its
   source local no longer owns the value and must not be dropped at
   scope end. *)
let sink fb (op : Mir.operand) =
  match op with
  | Mir.Move pl -> mark_moved fb { pl with Mir.proj = [] }
  | Mir.Copy _ | Mir.Const _ -> ()

let sink_rvalue fb (rv : Mir.rvalue) =
  match rv with
  | Mir.Use op | Mir.Cast (op, _) | Mir.UnaryOp (_, op) -> sink fb op
  | Mir.BinaryOp (_, a, b) ->
      sink fb a;
      sink fb b
  | Mir.Aggregate (_, ops) -> List.iter (sink fb) ops
  | Mir.Ref _ | Mir.AddrOf _ | Mir.Discriminant _ | Mir.Alloc _ -> ()

(* ------------------------------------------------------------------ *)
(* Scopes, frames, drops                                               *)
(* ------------------------------------------------------------------ *)

let push_scope fb = fb.scopes <- { slocals = [] } :: fb.scopes

let register_local fb l =
  match fb.scopes with
  | s :: _ -> s.slocals <- l :: s.slocals
  | [] -> ()

let push_frame fb = fb.frames <- { ftemps = [] } :: fb.frames

let register_temp fb l =
  match fb.frames with
  | f :: _ -> f.ftemps <- l :: f.ftemps
  | [] -> register_local fb l

let drop_and_kill fb ?(span = Span.dummy) l =
  let ty = local_ty fb l in
  if Ty.needs_drop ty && not (Hashtbl.mem fb.moved l)
     && not (Hashtbl.mem fb.uninit l)
  then emit fb ~span (Mir.Drop (Mir.local_place l));
  emit fb ~span (Mir.StorageDead l)

let pop_frame fb ?(span = Span.dummy) () =
  match fb.frames with
  | f :: rest ->
      fb.frames <- rest;
      List.iter (fun l -> drop_and_kill fb ~span l) f.ftemps
  | [] -> ()

let pop_scope fb ?(span = Span.dummy) () =
  match fb.scopes with
  | s :: rest ->
      fb.scopes <- rest;
      List.iter (fun l -> drop_and_kill fb ~span l) s.slocals
  | [] -> ()

(* Emit drops for scopes/frames without popping them (early exits). *)
let emit_exit_drops fb ~down_to_depth ~span =
  let depth = List.length fb.scopes in
  let n = depth - down_to_depth in
  List.iteri
    (fun i s ->
      if i < n then List.iter (fun l -> drop_and_kill fb ~span l) s.slocals)
    fb.scopes;
  List.iter
    (fun f -> List.iter (fun l -> drop_and_kill fb ~span l) f.ftemps)
    fb.frames

(* ------------------------------------------------------------------ *)
(* Place typing                                                        *)
(* ------------------------------------------------------------------ *)

let rec place_ty_proj fb (ty : Ty.t) (projs : Mir.proj list) : Ty.t =
  match projs with
  | [] -> ty
  | Mir.Deref :: rest -> (
      match ty with
      | Ty.Ref (_, t) | Ty.Ptr (_, t) -> place_ty_proj fb t rest
      | t -> (
          match Ty.autoderef_target t with
          | Some t' -> place_ty_proj fb t' rest
          | None -> Ty.Unknown))
  | Mir.Field f :: rest -> (
      let peeled = Ty.peel ty in
      match peeled with
      | Ty.Named (head, targs) -> (
          match Sema.Env.find_struct fb.env head with
          | Some sd -> (
              match Sema.Env.field_ty fb.env sd targs f with
              | Some t -> place_ty_proj fb t rest
              | None -> Ty.Unknown)
          | None -> Ty.Unknown)
      | Ty.Tuple ts -> (
          match int_of_string_opt f with
          | Some i when i < List.length ts ->
              place_ty_proj fb (List.nth ts i) rest
          | _ -> Ty.Unknown)
      | _ -> Ty.Unknown)
  | Mir.Index :: rest -> (
      match Ty.peel ty with
      | Ty.Named ("Vec", [ t ]) -> place_ty_proj fb t rest
      | Ty.Named ("String", _) -> place_ty_proj fb (Ty.Prim Ty.U8) rest
      | _ -> Ty.Unknown)
  | Mir.Downcast _ :: rest -> place_ty_proj fb ty rest

let place_ty fb (p : Mir.place) : Ty.t =
  place_ty_proj fb (local_ty fb p.Mir.base) p.Mir.proj

(* ------------------------------------------------------------------ *)
(* Callee classification                                               *)
(* ------------------------------------------------------------------ *)

let atomic_head = function
  | Some
      ( "AtomicBool" | "AtomicUsize" | "AtomicIsize" | "AtomicI32" | "AtomicU32"
      | "AtomicI64" | "AtomicU64" | "AtomicPtr" ) ->
      true
  | _ -> false

(* Classify a method on a receiver type; the receiver is auto-dereffed
   by the caller until this returns [Some]. *)
let classify_method_at fb (recv : Ty.t) name : Mir.callee option =
  let head = Ty.head_name recv in
  match (head, name) with
  | Some "Mutex", "lock" -> Some (Mir.Builtin Mir.MutexLock)
  | Some "Mutex", "try_lock" -> Some (Mir.Builtin Mir.MutexTryLock)
  | Some "RwLock", "read" -> Some (Mir.Builtin Mir.RwRead)
  | Some "RwLock", "try_read" -> Some (Mir.Builtin Mir.RwTryRead)
  | Some "RwLock", "write" -> Some (Mir.Builtin Mir.RwWrite)
  | Some "RwLock", "try_write" -> Some (Mir.Builtin Mir.RwTryWrite)
  | Some "Result", ("unwrap" | "expect" | "unwrap_or_propagate") ->
      Some (Mir.Builtin Mir.ResultUnwrap)
  | Some "Option", ("unwrap" | "expect" | "unwrap_or_propagate") ->
      Some (Mir.Builtin Mir.OptionUnwrap)
  | Some ("Result" | "Option"), _ -> Some (Mir.Builtin (Mir.Pure name))
  | Some "Vec", "push" -> Some (Mir.Builtin Mir.VecPush)
  | Some "Vec", "pop" -> Some (Mir.Builtin Mir.VecPop)
  | Some "Vec", ("get" | "get_mut") -> Some (Mir.Builtin Mir.VecGet)
  | Some "Vec", ("get_unchecked" | "get_unchecked_mut") ->
      Some (Mir.Builtin Mir.VecGetUnchecked)
  | Some "Vec", "set_len" -> Some (Mir.Builtin Mir.VecSetLen)
  | Some "Vec", ("len" | "capacity") -> Some (Mir.Builtin Mir.VecLen)
  | Some "Vec", _ -> Some (Mir.Builtin (Mir.Pure ("Vec::" ^ name)))
  | Some "RefCell", "borrow" -> Some (Mir.Builtin Mir.RefCellBorrow)
  | Some "RefCell", "borrow_mut" -> Some (Mir.Builtin Mir.RefCellBorrowMut)
  | Some "Cell", "get" -> Some (Mir.Builtin Mir.CellGet)
  | Some "Cell", ("set" | "replace") -> Some (Mir.Builtin Mir.CellSet)
  | Some "UnsafeCell", "get" -> Some (Mir.Builtin Mir.UnsafeCellGet)
  | h, "load" when atomic_head h -> Some (Mir.Builtin Mir.AtomicLoad)
  | h, "store" when atomic_head h -> Some (Mir.Builtin Mir.AtomicStore)
  | h, "swap" when atomic_head h -> Some (Mir.Builtin Mir.AtomicSwap)
  | h, ("compare_and_swap" | "compare_exchange" | "compare_exchange_weak")
    when atomic_head h ->
      Some (Mir.Builtin Mir.AtomicCas)
  | h, ("fetch_add" | "fetch_sub" | "fetch_or" | "fetch_and") when atomic_head h
    ->
      Some (Mir.Builtin Mir.AtomicFetch)
  | Some "Condvar", ("wait" | "wait_timeout") ->
      Some (Mir.Builtin Mir.CondvarWait)
  | Some "Condvar", "notify_one" -> Some (Mir.Builtin Mir.CondvarNotifyOne)
  | Some "Condvar", "notify_all" -> Some (Mir.Builtin Mir.CondvarNotifyAll)
  | Some ("Sender" | "SyncSender"), "send" -> Some (Mir.Builtin Mir.ChannelSend)
  | Some "Receiver", "recv" -> Some (Mir.Builtin Mir.ChannelRecv)
  | Some "Receiver", "try_recv" -> Some (Mir.Builtin Mir.ChannelTryRecv)
  | Some "JoinHandle", "join" -> Some (Mir.Builtin Mir.ThreadJoin)
  | Some "Once", "call_once" -> Some (Mir.Builtin Mir.OnceCallOnce)
  | _, ("offset" | "add" | "sub") when Ty.is_raw_ptr recv ->
      Some (Mir.Builtin Mir.PtrOffset)
  | _, ("read" | "read_volatile") when Ty.is_raw_ptr recv ->
      Some (Mir.Builtin Mir.PtrRead)
  | _, ("write" | "write_volatile") when Ty.is_raw_ptr recv ->
      Some (Mir.Builtin Mir.PtrWrite)
  | _, "is_null" when Ty.is_raw_ptr recv -> Some (Mir.Builtin (Mir.Pure "is_null"))
  | Some hd, _ -> (
      match Sema.Env.find_method fb.env hd name with
      | Some _ -> Some (Mir.Method (hd, name))
      | None -> (
          match name with
          | "clone" -> Some (Mir.Builtin Mir.CloneFn)
          | _ -> None))
  | None, _ -> None

let classify_method fb (recv : Ty.t) name : Mir.callee =
  let rec go t =
    match classify_method_at fb t name with
    | Some c -> c
    | None -> (
        match Ty.autoderef_target t with
        | Some inner -> go inner
        | None -> (
            match name with
            | "clone" -> Mir.Builtin Mir.CloneFn
            | _ -> Mir.Builtin (Mir.Extern name)))
  in
  go recv

let classify_path_call fb (segments : string list) : Mir.callee =
  let tail2 =
    match List.rev segments with
    | last :: prev :: _ -> [ prev; last ]
    | rest -> List.rev rest
  in
  match segments with
  | [ "Some" ] -> Mir.Builtin (Mir.OptionCtor "Some")
  | [ "None" ] -> Mir.Builtin (Mir.OptionCtor "None")
  | [ "Ok" ] -> Mir.Builtin (Mir.OptionCtor "Ok")
  | [ "Err" ] -> Mir.Builtin (Mir.OptionCtor "Err")
  | [ name ] when Hashtbl.mem fb.env.Sema.Env.fns name -> Mir.Fn name
  | [ name ] -> (
      match Sema.Env.enum_of_variant fb.env name with
      | Some en -> Mir.Builtin (Mir.VariantCtor (en, name))
      | None -> (
          match tail2 with
          | [ "drop" ] -> Mir.Builtin Mir.MemDrop
          | [ "alloc" ] | [ "malloc" ] -> Mir.Builtin Mir.HeapAlloc
          | [ "dealloc" ] | [ "free" ] -> Mir.Builtin Mir.HeapDealloc
          | [ "size_of" ] -> Mir.Builtin Mir.SizeOf
          | [ "spawn" ] -> Mir.Builtin Mir.ThreadSpawn
          | [ "channel" ] -> Mir.Builtin Mir.ChannelNew
          | [ "sync_channel" ] -> Mir.Builtin Mir.SyncChannelNew
          | [ "sleep" ] -> Mir.Builtin Mir.ThreadSleep
          | _ -> Mir.Builtin (Mir.Extern name)))
  | _ -> (
      match tail2 with
      | [ "ptr"; "read" ] -> Mir.Builtin Mir.PtrRead
      | [ "ptr"; ("write" | "write_volatile") ] -> Mir.Builtin Mir.PtrWrite
      | [ "ptr"; ("copy_nonoverlapping" | "copy") ] -> Mir.Builtin Mir.PtrCopy
      | [ "ptr"; ("null" | "null_mut") ] -> Mir.Builtin Mir.PtrNull
      | [ "ptr"; "drop_in_place" ] -> Mir.Builtin Mir.MemDrop
      | [ "mem"; "drop" ] -> Mir.Builtin Mir.MemDrop
      | [ "mem"; "forget" ] -> Mir.Builtin Mir.MemForget
      | [ "mem"; "replace" ] -> Mir.Builtin Mir.MemReplace
      | [ "mem"; "swap" ] -> Mir.Builtin Mir.MemSwap
      | [ "mem"; "transmute" ] -> Mir.Builtin Mir.MemTransmute
      | [ "mem"; ("uninitialized" | "zeroed") ] -> Mir.Builtin Mir.MemUninit
      | [ "mem"; "size_of" ] -> Mir.Builtin Mir.SizeOf
      | [ "alloc"; "alloc" ] -> Mir.Builtin Mir.HeapAlloc
      | [ "alloc"; "dealloc" ] -> Mir.Builtin Mir.HeapDealloc
      | [ "thread"; "spawn" ] -> Mir.Builtin Mir.ThreadSpawn
      | [ "thread"; "sleep" ] -> Mir.Builtin Mir.ThreadSleep
      | [ "mpsc"; "channel" ] -> Mir.Builtin Mir.ChannelNew
      | [ "mpsc"; "sync_channel" ] -> Mir.Builtin Mir.SyncChannelNew
      | [ ty_head; "new" ] -> Mir.Builtin (Mir.CtorNew ty_head)
      | [ ("Arc" | "Rc" | "Box"); "into_raw" ] -> Mir.Builtin Mir.IntoRaw
      | [ ("Arc" | "Rc" | "Box"); "from_raw" ] -> Mir.Builtin Mir.FromRaw
      | [ "Vec"; "from_raw_parts" ] -> Mir.Builtin Mir.VecFromRawParts
      | [ "Vec"; "with_capacity" ] -> Mir.Builtin (Mir.CtorNew "Vec")
      | [ "String"; "from_utf8_unchecked" ] ->
          Mir.Builtin Mir.StrFromUtf8Unchecked
      | [ "String"; _ ] -> Mir.Builtin (Mir.CtorNew "String")
      | [ ty_head; fn_name ] -> (
          match Sema.Env.find_enum fb.env ty_head with
          | Some _ -> Mir.Builtin (Mir.VariantCtor (ty_head, fn_name))
          | None -> (
              match Sema.Env.find_assoc_fn fb.env ty_head fn_name with
              | Some _ -> Mir.Method (ty_head, fn_name)
              | None -> Mir.Builtin (Mir.Extern (ty_head ^ "::" ^ fn_name))))
      | _ -> Mir.Builtin (Mir.Extern (String.concat "::" segments)))

(* Discriminant values used by match lowering. *)
let variant_index fb enum_head variant =
  match (enum_head, variant) with
  | "Option", "None" -> 0
  | "Option", "Some" -> 1
  | "Result", "Ok" -> 0
  | "Result", "Err" -> 1
  | _ -> (
      match Sema.Env.find_enum fb.env enum_head with
      | Some ed ->
          let rec idx i = function
            | [] -> -1
            | v :: rest ->
                if String.equal v.Ast.v_name variant then i else idx (i + 1) rest
          in
          idx 0 ed.Ast.e_variants
      | None -> -1)

let get_ret_local fb ~span =
  match fb.ret_l with
  | Some l -> l
  | None ->
      let l = new_local fb ~name:"<ret>" ~span fb.ret_ty in
      emit fb ~span (Mir.StorageLive l);
      fb.ret_l <- Some l;
      l

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

let rec as_temp fb ?(span = Span.dummy) (rv : Mir.rvalue) (ty : Ty.t) :
    Mir.local =
  let l = new_local fb ~span ty in
  emit fb ~span (Mir.StorageLive l);
  register_temp fb l;
  sink_rvalue fb rv;
  emit fb ~span (Mir.Assign (Mir.local_place l, rv));
  l

and operand_to_place fb ?(span = Span.dummy) (op : Mir.operand) (ty : Ty.t) :
    Mir.place =
  match op with
  | Mir.Copy p | Mir.Move p -> p
  | Mir.Const _ -> Mir.local_place (as_temp fb ~span (Mir.Use op) ty)

(* Lower an expression to a place (for assignment, borrow, projection).
   Non-place expressions are evaluated into a fresh temporary. *)
and lower_place fb (e : Ast.expr) : Mir.place =
  let span = e.Ast.espan in
  match e.Ast.e with
  | Ast.E_path (p, _) -> (
      match p.Ast.segments with
      | [ name ] -> (
          match lookup_var fb name with
          | Some l -> Mir.local_place l
          | None -> (
              match Sema.Env.find_static fb.env name with
              | Some sd ->
                  (* statics surface as dedicated pseudo-locals *)
                  let key = "static:" ^ name in
                  let l =
                    match lookup_var fb key with
                    | Some l -> l
                    | None ->
                        let ty = Sema.Env.ty_of_ast fb.env sd.Ast.st_ty in
                        let l =
                          new_local fb ~name:key ~mut:sd.Ast.st_mut ~span ty
                        in
                        fb.gamma <- (key, l) :: fb.gamma;
                        l
                  in
                  Mir.local_place l
              | None ->
                  let op = lower_expr fb e in
                  operand_to_place fb ~span op (type_of fb e)))
      | _ ->
          let op = lower_expr fb e in
          operand_to_place fb ~span op (type_of fb e))
  | Ast.E_field (recv, fname) ->
      let base = lower_place fb recv in
      (* auto-deref through references and smart pointers down to the
         struct that owns the field *)
      let derefs =
        let rec go t acc =
          match t with
          | Ty.Named (head, _) when Sema.Env.find_struct fb.env head <> None ->
              List.rev acc
          | _ -> (
              match Ty.autoderef_target t with
              | Some t' -> go t' (Mir.Deref :: acc)
              | None -> List.rev acc)
        in
        go (place_ty fb base) []
      in
      { base with Mir.proj = base.Mir.proj @ derefs @ [ Mir.Field fname ] }
  | Ast.E_tuple_field (recv, i) ->
      let base = lower_place fb recv in
      { base with Mir.proj = base.Mir.proj @ [ Mir.Field (string_of_int i) ] }
  | Ast.E_unary (Ast.Deref, inner) ->
      let base = lower_place fb inner in
      { base with Mir.proj = base.Mir.proj @ [ Mir.Deref ] }
  | Ast.E_index (recv, idx) ->
      let base = lower_place fb recv in
      let _ = lower_expr fb idx in
      { base with Mir.proj = base.Mir.proj @ [ Mir.Index ] }
  | _ ->
      let ty = type_of fb e in
      let op = lower_expr fb e in
      operand_to_place fb ~span op ty

(* Lower a call and return the destination operand. *)
and lower_call fb ~span (callee : Mir.callee) (args : Mir.operand list)
    (dest_ty : Ty.t) : Mir.operand =
  List.iter (sink fb) args;
  let dest = new_local fb ~span dest_ty in
  emit fb ~span (Mir.StorageLive dest);
  register_temp fb dest;
  let next = new_block fb in
  set_term fb ~span
    (Mir.Call
       ( {
           Mir.callee;
           args;
           dest = Mir.local_place dest;
           dest_ty;
           call_unsafe = fb.in_unsafe;
           call_span = span;
         },
         next ));
  switch_to fb next;
  (* Move ownership of the result to the consumer; a bare expression
     statement drops the discarded value explicitly (see lower_stmt). *)
  consume fb (Mir.local_place dest) dest_ty

and lower_expr fb (e : Ast.expr) : Mir.operand =
  let span = e.Ast.espan in
  match e.Ast.e with
  | Ast.E_lit l ->
      Mir.Const
        (match l with
        | Ast.Lit_int (v, _) -> Mir.Cint v
        | Ast.Lit_bool b -> Mir.Cbool b
        | Ast.Lit_str s -> Mir.Cstr s
        | Ast.Lit_char c -> Mir.Cint (Char.code c)
        | Ast.Lit_float f -> Mir.Cfloat f
        | Ast.Lit_unit -> Mir.Cunit)
  | Ast.E_path (p, _) -> (
      match p.Ast.segments with
      | [ name ] when lookup_var fb name <> None ->
          let l = Option.get (lookup_var fb name) in
          let ty = local_ty fb l in
          consume fb (Mir.local_place l) ty
      | [ name ] when Hashtbl.mem fb.env.Sema.Env.fns name ->
          Mir.Const (Mir.Cfn name)
      | [ "None" ] ->
          let ty = Ty.Named ("Option", [ Ty.Unknown ]) in
          let l = as_temp fb ~span (Mir.Aggregate (Mir.Agg_variant ("Option", "None"), [])) ty in
          consume fb (Mir.local_place l) ty
      | segments -> (
          match Sema.Env.find_static fb.env (List.nth segments 0) with
          | Some _ ->
              let place = lower_place fb e in
              consume fb place (place_ty fb place)
          | None -> (
              (* enum unit variant or associated constant *)
              match List.rev segments with
              | variant :: enum_head :: _
                when Sema.Env.find_enum fb.env enum_head <> None ->
                  let ty = Ty.Named (enum_head, []) in
                  let l =
                    as_temp fb ~span
                      (Mir.Aggregate (Mir.Agg_variant (enum_head, variant), []))
                      ty
                  in
                  consume fb (Mir.local_place l) ty
              | [ "None"; "Option" ] ->
                  let ty = Ty.Named ("Option", [ Ty.Unknown ]) in
                  let l =
                    as_temp fb ~span
                      (Mir.Aggregate (Mir.Agg_variant ("Option", "None"), []))
                      ty
                  in
                  Mir.Copy (Mir.local_place l)
              | _ -> Mir.Const (Mir.Cfn (Ast.path_name p)))))
  | Ast.E_call (callee, args) -> lower_call_expr fb ~span callee args (type_of fb e)
  | Ast.E_method (recv, name, _, args) ->
      lower_method fb ~span recv name args (type_of fb e)
  | Ast.E_field _ | Ast.E_tuple_field _ | Ast.E_index _ ->
      let place = lower_place fb e in
      consume fb place (place_ty fb place)
  | Ast.E_unary (Ast.Deref, _) ->
      let place = lower_place fb e in
      let ty = place_ty fb place in
      (* reading through a pointer copies (detectors treat Copy-through-
         Deref as the use site) *)
      if Ty.needs_drop ty then Mir.Move place else Mir.Copy place
  | Ast.E_unary (op, inner) ->
      let ty = type_of fb e in
      let op1 = lower_expr fb inner in
      Mir.Copy (Mir.local_place (as_temp fb ~span (Mir.UnaryOp (op, op1)) ty))
  | Ast.E_binary (op, l, r) ->
      let ty = type_of fb e in
      let op1 = lower_expr fb l in
      let op2 = lower_expr fb r in
      Mir.Copy
        (Mir.local_place (as_temp fb ~span (Mir.BinaryOp (op, op1, op2)) ty))
  | Ast.E_ref (m, inner) ->
      let place = lower_place fb inner in
      let ty = Ty.Ref (m, place_ty fb place) in
      Mir.Copy (Mir.local_place (as_temp fb ~span (Mir.Ref (m, place)) ty))
  | Ast.E_assign (lhs, rhs) ->
      lower_assign fb ~span lhs rhs;
      Mir.Const Mir.Cunit
  | Ast.E_assign_op (op, lhs, rhs) ->
      let lhs_place = lower_place fb lhs in
      let lhs_ty = place_ty fb lhs_place in
      let rhs_op = lower_expr fb rhs in
      emit fb ~span
        (Mir.Assign
           (lhs_place, Mir.BinaryOp (op, Mir.Copy lhs_place, rhs_op)));
      ignore lhs_ty;
      Mir.Const Mir.Cunit
  | Ast.E_cast (inner, ast_ty) ->
      let ty = Sema.Env.ty_of_ast fb.env ast_ty in
      let inner_ty = type_of fb inner in
      (* `&x as *const T`: casting a borrow to a raw pointer keeps the
         place identity so points-to can see through it. *)
      (match (inner.Ast.e, ty) with
      | Ast.E_ref (_, pe), Ty.Ptr (m, _) ->
          let place = lower_place fb pe in
          Mir.Copy
            (Mir.local_place (as_temp fb ~span (Mir.AddrOf (m, place)) ty))
      | _ ->
          let op = lower_expr fb inner in
          ignore inner_ty;
          Mir.Copy (Mir.local_place (as_temp fb ~span (Mir.Cast (op, ty)) ty)))
  | Ast.E_if (cond, then_blk, else_e) ->
      lower_if fb ~span cond then_blk else_e (type_of fb e)
  | Ast.E_if_let (pat, scrut, then_blk, else_e) ->
      lower_if_let fb ~span pat scrut then_blk else_e (type_of fb e)
  | Ast.E_match (scrut, arms) -> lower_match fb ~span scrut arms (type_of fb e)
  | Ast.E_while (cond, body) ->
      lower_while fb ~span cond body;
      Mir.Const Mir.Cunit
  | Ast.E_while_let (pat, scrut, body) ->
      lower_while_let fb ~span pat scrut body;
      Mir.Const Mir.Cunit
  | Ast.E_loop body ->
      lower_loop fb ~span body;
      Mir.Const Mir.Cunit
  | Ast.E_for (pat, iter, body) ->
      lower_for fb ~span pat iter body;
      Mir.Const Mir.Cunit
  | Ast.E_block blk ->
      (* The block's value must escape the block's scope: store it into
         a temporary that belongs to the enclosing frame. *)
      let dest = join_temp fb ~span (type_of fb e) in
      push_scope fb;
      let v = lower_block_value fb blk in
      store_result fb ~span dest v;
      pop_scope fb ~span ();
      result_operand fb dest
  | Ast.E_unsafe blk ->
      let was = fb.in_unsafe in
      fb.in_unsafe <- true;
      (* the region includes the `unsafe` keyword so that spans of
         statements materializing the block's value classify correctly *)
      fb.unsafe_spans := Span.union span blk.Ast.bspan :: !(fb.unsafe_spans);
      let dest = join_temp fb ~span (type_of fb e) in
      push_scope fb;
      let v = lower_block_value fb blk in
      store_result fb ~span dest v;
      pop_scope fb ~span ();
      fb.in_unsafe <- was;
      result_operand fb dest
  | Ast.E_return arg ->
      let op =
        match arg with
        | Some a -> lower_expr fb a
        | None -> Mir.Const Mir.Cunit
      in
      let rl = get_ret_local fb ~span in
      sink fb op;
      emit fb ~span (Mir.Assign (Mir.local_place rl, Mir.Use op));
      emit_exit_drops fb ~down_to_depth:0 ~span;
      set_term fb ~span (Mir.Return (Some (Mir.Move (Mir.local_place rl))));
      let dead = new_block fb in
      switch_to fb dead;
      Mir.Const Mir.Cunit
  | Ast.E_break -> (
      match fb.loops with
      | (_, brk, depth) :: _ ->
          emit_exit_drops fb ~down_to_depth:depth ~span;
          set_term fb ~span (Mir.Goto brk);
          let dead = new_block fb in
          switch_to fb dead;
          Mir.Const Mir.Cunit
      | [] -> Mir.Const Mir.Cunit)
  | Ast.E_continue -> (
      match fb.loops with
      | (cont, _, depth) :: _ ->
          emit_exit_drops fb ~down_to_depth:depth ~span;
          set_term fb ~span (Mir.Goto cont);
          let dead = new_block fb in
          switch_to fb dead;
          Mir.Const Mir.Cunit
      | [] -> Mir.Const Mir.Cunit)
  | Ast.E_struct_lit (p, fields, base) ->
      let name =
        match List.rev p.Ast.segments with last :: _ -> last | [] -> "?"
      in
      let ops = List.map (fun (_, fe) -> lower_expr fb fe) fields in
      let ops =
        match base with
        | Some be -> ops @ [ lower_expr fb be ]
        | None -> ops
      in
      let ty = type_of fb e in
      consume fb
        (Mir.local_place
           (as_temp fb ~span (Mir.Aggregate (Mir.Agg_struct name, ops)) ty))
        ty
  | Ast.E_tuple es ->
      let ops = List.map (lower_expr fb) es in
      let ty = type_of fb e in
      consume fb
        (Mir.local_place
           (as_temp fb ~span (Mir.Aggregate (Mir.Agg_tuple, ops)) ty))
        ty
  | Ast.E_closure cl -> lower_closure fb ~span cl
  | Ast.E_range (lo, hi, _) ->
      let ops =
        List.filter_map (Option.map (lower_expr fb)) [ lo; hi ]
      in
      let ty = type_of fb e in
      Mir.Copy
        (Mir.local_place
           (as_temp fb ~span (Mir.Aggregate (Mir.Agg_tuple, ops)) ty))
  | Ast.E_vec es ->
      let ops = List.map (lower_expr fb) es in
      let ty = type_of fb e in
      consume fb
        (Mir.local_place
           (as_temp fb ~span (Mir.Aggregate (Mir.Agg_vec, ops)) ty))
        ty
  | Ast.E_macro (name, args) ->
      (* println! etc.: arguments are evaluated (so borrows show up),
         result is opaque *)
      let ops = List.map (lower_expr fb) args in
      lower_call fb ~span (Mir.Builtin (Mir.Extern (name ^ "!"))) ops
        (type_of fb e)
  | Ast.E_error ->
      (* recovered parse error: contributes nothing to the MIR *)
      Mir.Const Mir.Cunit

and lower_assign fb ~span lhs rhs =
  let rhs_ty = type_of fb rhs in
  let rhs_op = lower_expr fb rhs in
  let lhs_place = lower_place fb lhs in
  let lhs_ty = place_ty fb lhs_place in
  let drop_ty = if Ty.equal lhs_ty Ty.Unknown then rhs_ty else lhs_ty in
  (* Rust drops the destination's previous value. First assignment to a
     let-without-initializer does not. *)
  let first_init =
    Mir.place_is_local lhs_place && Hashtbl.mem fb.uninit lhs_place.Mir.base
  in
  if first_init then Hashtbl.remove fb.uninit lhs_place.Mir.base
  else if Ty.needs_drop drop_ty then emit fb ~span (Mir.Drop lhs_place);
  if Mir.place_is_local lhs_place then
    Hashtbl.remove fb.moved lhs_place.Mir.base;
  sink fb rhs_op;
  emit fb ~span (Mir.Assign (lhs_place, Mir.Use rhs_op))

and lower_call_expr fb ~span (callee : Ast.expr) (args : Ast.expr list)
    (dest_ty : Ty.t) : Mir.operand =
  match callee.Ast.e with
  | Ast.E_path (p, _) -> (
      let kind = classify_path_call fb p.Ast.segments in
      match kind with
      | Mir.Builtin Mir.HeapAlloc ->
          let _ = List.map (lower_expr fb) args in
          let ty =
            match dest_ty with
            | Ty.Ptr _ -> dest_ty
            | _ -> Ty.Ptr (Mut, Ty.Prim Ty.U8)
          in
          Mir.Copy (Mir.local_place (as_temp fb ~span (Mir.Alloc ty) ty))
      | Mir.Builtin Mir.MemDrop ->
          (* drop(x): ends x's value now; the guard-release point *)
          (match args with
          | [ arg ] -> (
              match arg.Ast.e with
              | Ast.E_path ({ Ast.segments = [ name ]; _ }, _)
                when lookup_var fb name <> None ->
                  let l = Option.get (lookup_var fb name) in
                  emit fb ~span (Mir.Drop (Mir.local_place l));
                  Hashtbl.replace fb.moved l ()
              | _ ->
                  let op = lower_expr fb arg in
                  (match op with
                  | Mir.Move pl | Mir.Copy pl -> emit fb ~span (Mir.Drop pl)
                  | Mir.Const _ -> ()))
          | _ -> ());
          Mir.Const Mir.Cunit
      | Mir.Builtin Mir.ThreadSpawn ->
          let ops = List.map (lower_expr fb) args in
          lower_call fb ~span (Mir.Builtin Mir.ThreadSpawn) ops dest_ty
      | Mir.Fn name ->
          let ops = lower_args fb args in
          let dest_ty =
            match Sema.Env.find_fn fb.env name with
            | Some fd -> snd (Sema.Typeck.fn_sig fb.env fd)
            | None -> dest_ty
          in
          lower_call fb ~span (Mir.Fn name) ops dest_ty
      | Mir.Method (head, m) ->
          let ops = lower_args fb args in
          lower_call fb ~span (Mir.Method (head, m)) ops dest_ty
      | k ->
          let ops = lower_args fb args in
          lower_call fb ~span k ops dest_ty)
  | Ast.E_closure cl ->
      let clop = lower_expr fb { Ast.e = Ast.E_closure cl; espan = span } in
      let ops = lower_args fb args in
      let cid =
        match clop with
        | Mir.Copy pl | Mir.Move pl when Mir.place_is_local pl -> (
            match List.assoc_opt pl.Mir.base fb.closure_of_local with
            | Some id -> Some id
            | None -> None)
        | _ -> None
      in
      let callee_kind =
        match cid with
        | Some id -> Mir.ClosureCall id
        | None -> Mir.Builtin (Mir.Extern "<indirect>")
      in
      lower_call fb ~span callee_kind (clop :: ops) dest_ty
  | _ -> (
      let cop = lower_expr fb callee in
      let ops = lower_args fb args in
      (* direct call of a closure-typed variable *)
      let callee_kind =
        match cop with
        | Mir.Copy pl | Mir.Move pl when Mir.place_is_local pl -> (
            match List.assoc_opt pl.Mir.base fb.closure_of_local with
            | Some id -> Mir.ClosureCall id
            | None -> Mir.Builtin (Mir.Extern "<indirect>"))
        | Mir.Const (Mir.Cfn f) -> Mir.Fn f
        | _ -> Mir.Builtin (Mir.Extern "<indirect>")
      in
      lower_call fb ~span callee_kind (cop :: ops) dest_ty)

and lower_args fb args = List.map (lower_expr fb) args

and lower_method fb ~span recv name args dest_ty : Mir.operand =
  let recv_ty = type_of fb recv in
  (* `as_ptr`/`as_mut_ptr` keep place identity: lower to AddrOf so the
     points-to analysis can track the pointee. *)
  match name with
  | "as_ptr" | "as_mut_ptr" ->
      let place = lower_place fb recv in
      (* peel reference/smart-pointer layers so the pointer identifies
         the underlying object, not the reference local *)
      let place =
        let rec peel pl =
          match place_ty fb pl with
          | Ty.Ref _ | Ty.Named (("Box" | "Arc" | "Rc"), _) ->
              peel { pl with Mir.proj = pl.Mir.proj @ [ Mir.Deref ] }
          | _ -> pl
        in
        peel place
      in
      let m = if String.equal name "as_mut_ptr" then Ty.Mut else Ty.Imm in
      let ty =
        match dest_ty with
        | Ty.Ptr _ -> dest_ty
        | _ -> Ty.Ptr (m, place_ty fb place)
      in
      Mir.Copy (Mir.local_place (as_temp fb ~span (Mir.AddrOf (m, place)) ty))
  | _ -> (
      let callee = classify_method fb recv_ty name in
      (* Receivers of user methods and builtin lock/cell operations are
         passed by reference (auto-ref), keeping the lock place visible
         in the call's first argument. *)
      let recv_op =
        match callee with
        | Mir.Builtin
            ( Mir.MutexLock | Mir.MutexTryLock | Mir.RwRead | Mir.RwTryRead
            | Mir.RwWrite | Mir.RwTryWrite | Mir.CondvarWait
            | Mir.CondvarNotifyOne | Mir.CondvarNotifyAll | Mir.RefCellBorrow
            | Mir.RefCellBorrowMut | Mir.CellGet | Mir.CellSet
            | Mir.UnsafeCellGet | Mir.AtomicLoad | Mir.AtomicStore
            | Mir.AtomicSwap | Mir.AtomicCas | Mir.AtomicFetch | Mir.VecPush
            | Mir.VecPop | Mir.VecGet | Mir.VecGetUnchecked | Mir.VecSetLen
            | Mir.VecLen | Mir.OnceCallOnce | Mir.ChannelSend | Mir.ChannelRecv
            | Mir.ChannelTryRecv ) ->
            Mir.Copy (lower_place fb recv)
        | Mir.Method (head, m) -> (
            match Sema.Env.find_method fb.env head m with
            | Some fd -> (
                match fd.Ast.fn_params with
                | Ast.Param_self None :: _ ->
                    (* by-value self: moves the receiver *)
                    let pl = lower_place fb recv in
                    consume fb pl (place_ty fb pl)
                | _ -> Mir.Copy (lower_place fb recv))
            | None -> Mir.Copy (lower_place fb recv))
        | Mir.Builtin (Mir.ResultUnwrap | Mir.OptionUnwrap) ->
            (* unwrap consumes the Result/Option *)
            let pl = lower_place fb recv in
            consume fb pl recv_ty
        | Mir.Builtin Mir.ThreadJoin ->
            let pl = lower_place fb recv in
            consume fb pl recv_ty
        | _ -> lower_expr fb recv
      in
      let ops = lower_args fb args in
      lower_call fb ~span callee (recv_op :: ops) dest_ty)

(* ---------------- control flow ------------------------------------ *)

and join_temp fb ~span (ty : Ty.t) : Mir.local option =
  match ty with
  | Ty.Prim Ty.Unit -> None
  | _ ->
      let l = new_local fb ~span ty in
      emit fb ~span (Mir.StorageLive l);
      register_temp fb l;
      Some l

and store_result fb ~span dest op =
  match dest with
  | Some l ->
      sink fb op;
      emit fb ~span (Mir.Assign (Mir.local_place l, Mir.Use op))
  | None -> ignore op

and result_operand fb dest =
  match dest with
  | Some l -> consume fb (Mir.local_place l) (local_ty fb l)
  | None -> Mir.Const Mir.Cunit

and lower_if fb ~span cond then_blk else_e ty : Mir.operand =
  (* Under Statement_local, condition temporaries die right after the
     condition is evaluated; under Extended they live until the end of
     the enclosing statement (Rust's pre-2024 behaviour). *)
  let cond_framed = fb.config.tmp_lifetime = Statement_local in
  if cond_framed then push_frame fb;
  let cond_op = lower_expr fb cond in
  if cond_framed then pop_frame fb ~span ();
  let dest = join_temp fb ~span ty in
  let then_bb = new_block fb in
  let else_bb = new_block fb in
  let join_bb = new_block fb in
  set_term fb ~span (Mir.SwitchInt (cond_op, [ (0, else_bb) ], then_bb));
  switch_to fb then_bb;
  push_scope fb;
  push_frame fb;
  let v = lower_block_value fb then_blk in
  store_result fb ~span dest v;
  pop_frame fb ~span ();
  pop_scope fb ~span ();
  set_term fb ~span (Mir.Goto join_bb);
  switch_to fb else_bb;
  (match else_e with
  | Some ee ->
      push_frame fb;
      let v = lower_expr fb ee in
      store_result fb ~span dest v;
      pop_frame fb ~span ()
  | None -> ());
  set_term fb ~span (Mir.Goto join_bb);
  switch_to fb join_bb;
  result_operand fb dest

and lower_if_let fb ~span pat scrut then_blk else_e ty : Mir.operand =
  let scrut_framed = fb.config.tmp_lifetime = Statement_local in
  if scrut_framed then push_frame fb;
  let scrut_ty = type_of fb scrut in
  let scrut_place = lower_place fb scrut in
  if scrut_framed then pop_frame fb ~span ();
  let dest = join_temp fb ~span ty in
  let disc =
    as_temp fb ~span (Mir.Discriminant scrut_place) (Ty.Prim Ty.I32)
  in
  let then_bb = new_block fb in
  let else_bb = new_block fb in
  let join_bb = new_block fb in
  let idx = pat_variant_index fb pat in
  set_term fb ~span
    (Mir.SwitchInt
       (Mir.Copy (Mir.local_place disc), [ (idx, then_bb) ], else_bb));
  switch_to fb then_bb;
  push_scope fb;
  push_frame fb;
  bind_arm_pattern fb ~span pat scrut_place scrut_ty;
  let v = lower_block_value fb then_blk in
  store_result fb ~span dest v;
  pop_frame fb ~span ();
  pop_scope fb ~span ();
  set_term fb ~span (Mir.Goto join_bb);
  switch_to fb else_bb;
  (match else_e with
  | Some ee ->
      push_frame fb;
      let v = lower_expr fb ee in
      store_result fb ~span dest v;
      pop_frame fb ~span ()
  | None -> ());
  set_term fb ~span (Mir.Goto join_bb);
  switch_to fb join_bb;
  result_operand fb dest

and pat_variant_index fb (pat : Ast.pat) : int =
  match pat.Ast.p with
  | Ast.P_ctor (p, _) -> (
      let variant =
        match List.rev p.Ast.segments with v :: _ -> v | [] -> "?"
      in
      let enum_head =
        match List.rev p.Ast.segments with
        | _ :: e :: _ -> e
        | _ -> (
            match variant with
            | "Some" | "None" -> "Option"
            | "Ok" | "Err" -> "Result"
            | _ -> (
                match Sema.Env.enum_of_variant fb.env variant with
                | Some e -> e
                | None -> "?"))
      in
      let i = variant_index fb enum_head variant in
      if i >= 0 then i else 0)
  | _ -> 0

(* Bind the variables of an arm pattern against the matched place. *)
and bind_arm_pattern fb ~span (pat : Ast.pat) (scrut : Mir.place)
    (scrut_ty : Ty.t) =
  match pat.Ast.p with
  | Ast.P_wild | Ast.P_lit _ -> ()
  | Ast.P_ident (m, name, sub) ->
      let l =
        new_local fb ~name ~mut:(m = Ast.Mut) ~user:true ~span scrut_ty
      in
      emit fb ~span (Mir.StorageLive l);
      register_local fb l;
      fb.gamma <- (name, l) :: fb.gamma;
      let op = consume fb scrut scrut_ty in
      sink fb op;
      emit fb ~span (Mir.Assign (Mir.local_place l, Mir.Use op));
      (match sub with
      | Some p -> bind_arm_pattern fb ~span p scrut scrut_ty
      | None -> ())
  | Ast.P_ref (m, sub) -> (
      match scrut_ty with
      | Ty.Ref (_, inner_ty) ->
          (* destructuring an actual reference: &p *)
          bind_arm_pattern fb ~span sub
            { scrut with Mir.proj = scrut.Mir.proj @ [ Mir.Deref ] }
            inner_ty
      | _ -> (
          (* `ref b`: bind by reference to the matched place *)
          match sub.Ast.p with
          | Ast.P_ident (_, name, None) ->
              let ty = Ty.Ref (m, scrut_ty) in
              let l = new_local fb ~name ~user:true ~span ty in
              emit fb ~span (Mir.StorageLive l);
              register_local fb l;
              fb.gamma <- (name, l) :: fb.gamma;
              emit fb ~span (Mir.Assign (Mir.local_place l, Mir.Ref (m, scrut)))
          | _ -> bind_arm_pattern fb ~span sub scrut scrut_ty))
  | Ast.P_tuple pats ->
      List.iteri
        (fun i sub ->
          let fty =
            match Ty.peel scrut_ty with
            | Ty.Tuple ts when i < List.length ts -> List.nth ts i
            | _ -> Ty.Unknown
          in
          bind_arm_pattern fb ~span sub
            { scrut with Mir.proj = scrut.Mir.proj @ [ Mir.Field (string_of_int i) ] }
            fty)
        pats
  | Ast.P_ctor (p, pats) ->
      let variant =
        match List.rev p.Ast.segments with v :: _ -> v | [] -> "?"
      in
      let inner_tys =
        match (variant, Ty.peel scrut_ty) with
        | "Some", Ty.Named ("Option", [ t ]) -> [ t ]
        | "Ok", Ty.Named ("Result", [ t; _ ]) -> [ t ]
        | "Err", Ty.Named ("Result", [ _; e ]) -> [ e ]
        | _ -> List.map (fun _ -> Ty.Unknown) pats
      in
      let inner_tys =
        if List.length inner_tys = List.length pats then inner_tys
        else List.map (fun _ -> Ty.Unknown) pats
      in
      List.iteri
        (fun i sub ->
          bind_arm_pattern fb ~span sub
            {
              scrut with
              Mir.proj =
                scrut.Mir.proj
                @ [ Mir.Downcast variant; Mir.Field (string_of_int i) ];
            }
            (List.nth inner_tys i))
        pats
  | Ast.P_struct (_, fields) ->
      List.iter
        (fun (fname, sub) ->
          let fty =
            place_ty_proj fb scrut_ty [ Mir.Field fname ]
          in
          bind_arm_pattern fb ~span sub
            { scrut with Mir.proj = scrut.Mir.proj @ [ Mir.Field fname ] }
            fty)
        fields

and lower_match fb ~span scrut arms ty : Mir.operand =
  let scrut_framed = fb.config.tmp_lifetime = Statement_local in
  if scrut_framed then push_frame fb;
  let scrut_ty = type_of fb scrut in
  let scrut_place = lower_place fb scrut in
  if scrut_framed then pop_frame fb ~span ();
  let dest = join_temp fb ~span ty in
  let disc =
    as_temp fb ~span (Mir.Discriminant scrut_place) (Ty.Prim Ty.I32)
  in
  let join_bb = new_block fb in
  (* One block per arm; SwitchInt dispatches on the discriminant, the
     last (or wildcard) arm is the default. *)
  let arm_blocks = List.map (fun _ -> new_block fb) arms in
  let is_default (arm : Ast.arm) =
    match arm.Ast.arm_pat.Ast.p with
    | Ast.P_wild | Ast.P_ident _ -> true
    | _ -> false
  in
  let cases =
    List.filteri (fun i _ -> i < List.length arms) arms
    |> List.mapi (fun i arm -> (i, arm))
    |> List.filter (fun (_, arm) -> not (is_default arm))
    |> List.map (fun (i, arm) ->
           (pat_variant_index fb arm.Ast.arm_pat, List.nth arm_blocks i))
  in
  let default_bb =
    let rec find i = function
      | [] -> join_bb
      | arm :: rest -> if is_default arm then List.nth arm_blocks i else find (i + 1) rest
    in
    find 0 arms
  in
  set_term fb ~span
    (Mir.SwitchInt (Mir.Copy (Mir.local_place disc), cases, default_bb));
  List.iteri
    (fun i (arm : Ast.arm) ->
      switch_to fb (List.nth arm_blocks i);
      let saved_gamma = fb.gamma in
      push_scope fb;
      push_frame fb;
      bind_arm_pattern fb ~span arm.Ast.arm_pat scrut_place scrut_ty;
      (match arm.Ast.arm_guard with
      | Some g ->
          let gop = lower_expr fb g in
          let body_bb = new_block fb in
          set_term fb ~span (Mir.SwitchInt (gop, [ (0, join_bb) ], body_bb));
          switch_to fb body_bb
      | None -> ());
      let v = lower_expr fb arm.Ast.arm_body in
      store_result fb ~span dest v;
      pop_frame fb ~span ();
      pop_scope fb ~span ();
      set_term fb ~span (Mir.Goto join_bb);
      fb.gamma <- saved_gamma)
    arms;
  switch_to fb join_bb;
  result_operand fb dest

and lower_while fb ~span cond body =
  let header = new_block fb in
  let body_bb = new_block fb in
  let exit_bb = new_block fb in
  set_term fb ~span (Mir.Goto header);
  switch_to fb header;
  (* while-condition temporaries die each iteration before the body *)
  push_frame fb;
  let cond_op = lower_expr fb cond in
  pop_frame fb ~span ();
  set_term fb ~span (Mir.SwitchInt (cond_op, [ (0, exit_bb) ], body_bb));
  switch_to fb body_bb;
  fb.loops <- (header, exit_bb, List.length fb.scopes) :: fb.loops;
  push_scope fb;
  push_frame fb;
  ignore (lower_block_value fb body);
  pop_frame fb ~span ();
  pop_scope fb ~span ();
  fb.loops <- List.tl fb.loops;
  set_term fb ~span (Mir.Goto header);
  switch_to fb exit_bb

and lower_while_let fb ~span pat scrut body =
  let header = new_block fb in
  let body_bb = new_block fb in
  let exit_bb = new_block fb in
  set_term fb ~span (Mir.Goto header);
  switch_to fb header;
  push_frame fb;
  let scrut_ty = type_of fb scrut in
  let scrut_place = lower_place fb scrut in
  let disc =
    as_temp fb ~span (Mir.Discriminant scrut_place) (Ty.Prim Ty.I32)
  in
  let idx = pat_variant_index fb pat in
  set_term fb ~span
    (Mir.SwitchInt (Mir.Copy (Mir.local_place disc), [ (idx, body_bb) ], exit_bb));
  switch_to fb body_bb;
  fb.loops <- (header, exit_bb, List.length fb.scopes) :: fb.loops;
  let saved_gamma = fb.gamma in
  push_scope fb;
  bind_arm_pattern fb ~span pat scrut_place scrut_ty;
  ignore (lower_block_value fb body);
  pop_scope fb ~span ();
  pop_frame fb ~span ();
  fb.gamma <- saved_gamma;
  fb.loops <- List.tl fb.loops;
  set_term fb ~span (Mir.Goto header);
  switch_to fb exit_bb;
  (* the frame pushed at header is popped on the body path above; the
     exit path discards it too *)
  ()

and lower_loop fb ~span body =
  let header = new_block fb in
  let exit_bb = new_block fb in
  set_term fb ~span (Mir.Goto header);
  switch_to fb header;
  fb.loops <- (header, exit_bb, List.length fb.scopes) :: fb.loops;
  push_scope fb;
  push_frame fb;
  ignore (lower_block_value fb body);
  pop_frame fb ~span ();
  pop_scope fb ~span ();
  fb.loops <- List.tl fb.loops;
  set_term fb ~span (Mir.Goto header);
  switch_to fb exit_bb

and lower_for fb ~span pat iter body =
  match iter.Ast.e with
  | Ast.E_range (Some lo, Some hi, inclusive) ->
      (* counting loop: desugar to index + while *)
      let lo_op = lower_expr fb lo in
      let hi_op = lower_expr fb hi in
      let hi_l = as_temp fb ~span (Mir.Use hi_op) Ty.usize in
      let idx = new_local fb ~name:"<for-idx>" ~mut:true ~span Ty.usize in
      emit fb ~span (Mir.StorageLive idx);
      register_temp fb idx;
      emit fb ~span (Mir.Assign (Mir.local_place idx, Mir.Use lo_op));
      let header = new_block fb in
      let body_bb = new_block fb in
      let exit_bb = new_block fb in
      set_term fb ~span (Mir.Goto header);
      switch_to fb header;
      let cmp =
        as_temp fb ~span
          (Mir.BinaryOp
             ( (if inclusive then Ast.Le else Ast.Lt),
               Mir.Copy (Mir.local_place idx),
               Mir.Copy (Mir.local_place hi_l) ))
          Ty.bool_
      in
      set_term fb ~span
        (Mir.SwitchInt (Mir.Copy (Mir.local_place cmp), [ (0, exit_bb) ], body_bb));
      switch_to fb body_bb;
      fb.loops <- (header, exit_bb, List.length fb.scopes) :: fb.loops;
      let saved_gamma = fb.gamma in
      push_scope fb;
      bind_arm_pattern fb ~span pat (Mir.local_place idx) Ty.usize;
      push_frame fb;
      ignore (lower_block_value fb body);
      pop_frame fb ~span ();
      emit fb ~span
        (Mir.Assign
           ( Mir.local_place idx,
             Mir.BinaryOp
               (Ast.Add, Mir.Copy (Mir.local_place idx), Mir.Const (Mir.Cint 1))
           ));
      pop_scope fb ~span ();
      fb.gamma <- saved_gamma;
      fb.loops <- List.tl fb.loops;
      set_term fb ~span (Mir.Goto header);
      switch_to fb exit_bb
  | _ ->
      (* iterator loop: model as while-let over `.next()` *)
      let iter_ty = type_of fb iter in
      let iter_place = lower_place fb iter in
      let elem_ty =
        match Ty.peel iter_ty with
        | Ty.Named (("Vec" | "Iter"), [ t ]) -> t
        | _ -> Ty.Unknown
      in
      let header = new_block fb in
      let body_bb = new_block fb in
      let exit_bb = new_block fb in
      set_term fb ~span (Mir.Goto header);
      switch_to fb header;
      push_frame fb;
      let next =
        lower_call fb ~span
          (Mir.Builtin (Mir.Pure "Iter::next"))
          [ Mir.Copy iter_place ]
          (Ty.Named ("Option", [ elem_ty ]))
      in
      let next_place = operand_to_place fb ~span next (Ty.Named ("Option", [ elem_ty ])) in
      let disc = as_temp fb ~span (Mir.Discriminant next_place) (Ty.Prim Ty.I32) in
      set_term fb ~span
        (Mir.SwitchInt (Mir.Copy (Mir.local_place disc), [ (1, body_bb) ], exit_bb));
      switch_to fb body_bb;
      fb.loops <- (header, exit_bb, List.length fb.scopes) :: fb.loops;
      let saved_gamma = fb.gamma in
      push_scope fb;
      bind_arm_pattern fb ~span pat
        { next_place with Mir.proj = next_place.Mir.proj @ [ Mir.Downcast "Some"; Mir.Field "0" ] }
        elem_ty;
      ignore (lower_block_value fb body);
      pop_scope fb ~span ();
      pop_frame fb ~span ();
      fb.gamma <- saved_gamma;
      fb.loops <- List.tl fb.loops;
      set_term fb ~span (Mir.Goto header);
      switch_to fb exit_bb

(* ---------------- closures ---------------------------------------- *)

and free_vars_of_closure fb (cl : Ast.closure) : (string * Mir.local) list =
  let bound = Hashtbl.create 8 in
  List.iter
    (fun (p, _) ->
      let rec names (p : Ast.pat) =
        match p.Ast.p with
        | Ast.P_ident (_, n, sub) ->
            Hashtbl.replace bound n ();
            Option.iter names sub
        | Ast.P_ref (_, s) -> names s
        | Ast.P_tuple ps | Ast.P_ctor (_, ps) -> List.iter names ps
        | Ast.P_struct (_, fs) -> List.iter (fun (_, s) -> names s) fs
        | Ast.P_wild | Ast.P_lit _ -> ()
      in
      names p)
    cl.Ast.cl_params;
  let used =
    Ast.fold_expr
      (fun acc (e : Ast.expr) ->
        match e.Ast.e with
        | Ast.E_path ({ Ast.segments = [ n ]; _ }, _) -> n :: acc
        | _ -> acc)
      [] cl.Ast.cl_body
  in
  List.filter_map
    (fun n ->
      if Hashtbl.mem bound n then None
      else match lookup_var fb n with Some l -> Some (n, l) | None -> None)
    (List.sort_uniq String.compare used)

and lower_closure fb ~span (cl : Ast.closure) : Mir.operand =
  let id = Printf.sprintf "%s::{closure#%d}" fb.fn_id fb.closure_count in
  fb.closure_count <- fb.closure_count + 1;
  let captures = free_vars_of_closure fb cl in
  (* Build the closure body as a separate function; captures become the
     leading parameters. *)
  let cap_params =
    List.map
      (fun (n, l) ->
        let ty = local_ty fb l in
        let cap_ty = if cl.Ast.cl_move then ty else Ty.Ref (Imm, ty) in
        (n, cap_ty))
      captures
  in
  let params =
    List.map
      (fun (p, topt) ->
        let name =
          match p.Ast.p with Ast.P_ident (_, n, _) -> n | _ -> "_"
        in
        let ty =
          match topt with
          | Some t -> Sema.Env.ty_of_ast fb.env t
          | None -> Ty.Unknown
        in
        (name, ty))
      cl.Ast.cl_params
  in
  lower_fn_raw fb.env fb.config fb.out_bodies fb.unsafe_spans ~fn_id:id
    ~params:(cap_params @ params)
    ~captures:(List.mapi (fun i (n, _) -> (i, n)) captures)
    ~unsafe_fn:false ~span
    ~body_expr:cl.Ast.cl_body ();
  (* Closure value at the creation site *)
  let cap_ops =
    List.map
      (fun (n, l) ->
        let ty = local_ty fb l in
        if cl.Ast.cl_move then consume fb (Mir.local_place l) ty
        else begin
          ignore n;
          Mir.Copy (Mir.local_place l)
        end)
      captures
  in
  let ty = Ty.Fn ([], Ty.Unknown) in
  let l = as_temp fb ~span (Mir.Aggregate (Mir.Agg_closure id, cap_ops)) ty in
  fb.closure_of_local <- (l, id) :: fb.closure_of_local;
  Mir.Copy (Mir.local_place l)

(* ---------------- blocks and statements --------------------------- *)

and lower_let fb (lb : Ast.let_binding) =
  let span = lb.Ast.let_span in
  push_frame fb;
  let decl_ty =
    match lb.Ast.let_ty with
    | Some t -> Sema.Env.ty_of_ast fb.env t
    | None -> (
        match lb.Ast.let_init with
        | Some init -> type_of fb init
        | None -> Ty.Unknown)
  in
  (match lb.Ast.let_pat.Ast.p with
  | Ast.P_ident (m, name, None) -> (
      let l =
        new_local fb ~name ~mut:(m = Ast.Mut) ~user:true ~span decl_ty
      in
      emit fb ~span (Mir.StorageLive l);
      match lb.Ast.let_init with
      | Some init ->
          let op = lower_expr fb init in
          sink fb op;
          emit fb ~span (Mir.Assign (Mir.local_place l, Mir.Use op));
          register_local fb l;
          fb.gamma <- (name, l) :: fb.gamma
      | None ->
          Hashtbl.replace fb.uninit l ();
          register_local fb l;
          fb.gamma <- (name, l) :: fb.gamma)
  | _ -> (
      (* destructuring let *)
      match lb.Ast.let_init with
      | Some init ->
          let init_ty = type_of fb init in
          let place = lower_place fb init in
          bind_arm_pattern fb ~span lb.Ast.let_pat place
            (if Ty.equal decl_ty Ty.Unknown then init_ty else decl_ty)
      | None -> ()));
  pop_frame fb ~span ()

and lower_stmt fb (s : Ast.stmt) =
  match s with
  | Ast.S_let lb -> lower_let fb lb
  | Ast.S_expr e ->
      push_frame fb;
      let v = lower_expr fb e in
      (* a discarded owned value is dropped at the end of the statement *)
      (match v with
      | Mir.Move pl ->
          sink fb v;
          emit fb ~span:e.Ast.espan (Mir.Drop pl)
      | Mir.Copy _ | Mir.Const _ -> ());
      pop_frame fb ~span:e.Ast.espan ()
  | Ast.S_item _ -> ()  (* nested items are collected separately *)

and lower_block_value fb (b : Ast.block) : Mir.operand =
  let saved_gamma = fb.gamma in
  List.iter (lower_stmt fb) b.Ast.stmts;
  let v =
    match b.Ast.tail with
    | Some e ->
        (* The tail value must survive the enclosing frame pops: copy
           it into a temp registered one frame up if needed. *)
        lower_expr fb e
    | None -> Mir.Const Mir.Cunit
  in
  fb.gamma <- saved_gamma;
  v

(* ---------------- functions --------------------------------------- *)

and lower_fn_raw env config out_bodies unsafe_spans ~fn_id
    ~(params : (string * Ty.t) list) ~captures ~unsafe_fn ~span
    ?(ret_ty = Ty.Unknown) ~(body_expr : Ast.expr) () =
  let fb =
    {
      env;
      config;
      fn_id;
      locals = [];
      n_locals = 0;
      blocks = Array.make 16 no_block;
      n_blocks = 0;
      cur = 0;
      curbuf = no_block;
      gamma = [];
      scopes = [];
      frames = [];
      loops = [];
      moved = Hashtbl.create 16;
      uninit = Hashtbl.create 16;
      in_unsafe = unsafe_fn;
      closure_count = 0;
      closure_of_local = [];
      out_bodies;
      unsafe_spans;
      terminated = false;
      ret_ty;
      ret_l = None;
    }
  in
  let entry = new_block fb in
  switch_to fb entry;
  if unsafe_fn then unsafe_spans := span :: !unsafe_spans;
  (* parameters: locals 0..n-1, alive on entry *)
  List.iter
    (fun (name, ty) ->
      let l = new_local fb ~name ~user:true ~span ty in
      fb.gamma <- (name, l) :: fb.gamma)
    params;
  push_scope fb;
  push_frame fb;
  let ret_op = lower_expr fb body_expr in
  (* move the result into the return place before the exit drops *)
  let rl = get_ret_local fb ~span in
  sink fb ret_op;
  emit fb ~span (Mir.Assign (Mir.local_place rl, Mir.Use ret_op));
  pop_frame fb ~span ();
  pop_scope fb ~span ();
  if not fb.terminated then
    set_term fb ~span (Mir.Return (Some (Mir.Move (Mir.local_place rl))));
  (* finalize: materialize growable blocks *)
  let blocks =
    Array.init fb.n_blocks (fun i ->
        let bb = block fb i in
        {
          Mir.stmts = List.rev bb.bstmts;
          term = Option.value bb.bterm ~default:(Mir.Return None);
          t_span = bb.bspan;
        })
  in
  let locals = Array.of_list (List.rev fb.locals) in
  Hashtbl.replace out_bodies fn_id
    {
      Mir.fn_id;
      arg_count = List.length params;
      locals;
      blocks;
      fn_unsafe = unsafe_fn;
      body_span = span;
      captures;
      body_cfg = None;
      body_ix = -1;
    }

let lower_fn env config out_bodies unsafe_spans ~fn_id ?self_ty
    (fd : Ast.fn_def) =
  match fd.Ast.fn_body with
  | None -> ()
  | Some body ->
      let params =
        List.map
          (fun p ->
            match p with
            | Ast.Param_self None ->
                ("self", Option.value self_ty ~default:Ty.Unknown)
            | Ast.Param_self (Some m) ->
                ("self", Ty.Ref (m, Option.value self_ty ~default:Ty.Unknown))
            | Ast.Param (_, name, ty) -> (name, Sema.Env.ty_of_ast env ty))
          fd.Ast.fn_params
      in
      let ret_ty =
        match fd.Ast.fn_ret with
        | Some t -> Sema.Env.ty_of_ast env t
        | None -> Ty.unit_
      in
      lower_fn_raw env config out_bodies unsafe_spans ~fn_id ~params
        ~captures:[] ~unsafe_fn:fd.Ast.fn_unsafe ~span:fd.Ast.fn_span ~ret_ty
        ~body_expr:{ Ast.e = Ast.E_block body; espan = body.Ast.bspan } ()

(* ------------------------------------------------------------------ *)
(* Crate lowering                                                      *)
(* ------------------------------------------------------------------ *)

let lower_crate ?(config = default_config) (env : Sema.Env.t) : Mir.program =
  let out_bodies = Hashtbl.create 32 in
  let unsafe_spans = ref [] in
  let rec do_items items =
    List.iter
      (fun item ->
        match item with
        | Ast.I_fn fd ->
            lower_fn env config out_bodies unsafe_spans ~fn_id:fd.Ast.fn_name fd
        | Ast.I_impl ib ->
            let head =
              match ib.Ast.impl_self_ty.Ast.t with
              | Ast.Ty_path (p, _) -> (
                  match List.rev p.Ast.segments with
                  | last :: _ -> last
                  | [] -> "<anon>")
              | _ -> "<anon>"
            in
            let self_ty = Sema.Env.ty_of_ast env ib.Ast.impl_self_ty in
            List.iter
              (fun fd ->
                lower_fn env config out_bodies unsafe_spans
                  ~fn_id:(head ^ "::" ^ fd.Ast.fn_name)
                  ~self_ty fd)
              ib.Ast.impl_items
        | Ast.I_mod (_, sub) -> do_items sub
        | Ast.I_struct _ | Ast.I_enum _ | Ast.I_trait _ | Ast.I_static _
        | Ast.I_use _ | Ast.I_error _ ->
            ())
      items
  in
  do_items env.Sema.Env.crate.Ast.items;
  {
    Mir.bodies = out_bodies;
    prog_env = env;
    unsafe_spans = !unsafe_spans;
    prog_body_list = None;
  }

(** Parse, resolve and lower a source string in one step. *)
let program_of_source ?(config = default_config) ~file src : Mir.program =
  let crate = Parser.parse_crate ~file src in
  let env =
    Support.Trace.with_span ~cat:"frontend" ~args:[ ("file", file) ]
      "frontend.typeck" (fun () -> Sema.Env.of_crate crate)
  in
  Support.Trace.with_span ~cat:"frontend" ~args:[ ("file", file) ]
    "frontend.lower" (fun () -> lower_crate ~config env)

(** Like [program_of_source] but with frontend error recovery: lexical
    and syntax errors become diagnostics plus [E_error]/[I_error] AST
    nodes (typed [Unknown], lowered to nothing), so the healthy parts
    of a malformed file still produce MIR bodies. Lowering errors past
    the frontend (rare) still raise; callers wanting total isolation
    wrap this in [Diag.protect] or a catch-all. *)
let program_of_source_recovering ?(config = default_config) ~file src :
    Mir.program * Support.Diag.t list =
  let crate, diags = Parser.parse_crate_recovering ~file src in
  let env =
    Support.Trace.with_span ~cat:"frontend" ~args:[ ("file", file) ]
      "frontend.typeck" (fun () -> Sema.Env.of_crate crate)
  in
  ( Support.Trace.with_span ~cat:"frontend" ~args:[ ("file", file) ]
      "frontend.lower" (fun () -> lower_crate ~config env),
    diags )
