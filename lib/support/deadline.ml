(** Wall-clock deadlines: cooperative cancellation for the fixpoint
    analyses and the corpus drivers.

    Mirrors the [Fuel] design: the budget is ambient process/domain
    state rather than a parameter threaded through every signature. A
    driver wraps per-entry work in {!with_deadline_ms} (or
    {!with_default_budget}, honouring the CLI [--deadline-ms]
    override); each fixpoint then mints a {!token} and polls
    {!expired} once per iteration, stopping early and reporting an
    incomplete result when the wall clock runs past the deadline —
    the time-domain analogue of an exhausted fuel budget.

    Time comes from the monotonic clock ([Monotonic_clock.now],
    nanoseconds), so deadlines are immune to wall-clock adjustments.
    The ambient deadline is per-domain ([Domain.DLS]): workers on
    different domains carry independent budgets, and nesting keeps
    the tighter of the two deadlines. *)

let now_ns () : int64 = Monotonic_clock.now ()

(* ---------------- process-wide default budget ----------------------- *)

(* default per-entry budget in milliseconds; 0 = disabled. An [Atomic]
   so corpus workers on other domains observe a CLI override without
   synchronisation (same rationale as [Fuel.budget]). *)
let default_ms = Atomic.make 0

let get_default_ms () = Atomic.get default_ms
let set_default_ms n = Atomic.set default_ms (max n 0)

(* ---------------- ambient per-domain deadline ----------------------- *)

(* absolute deadline (monotonic ns) of the current domain, if any *)
let key : int64 option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get key

(* Long-lived processes (the analysis server) call this between
   requests: whatever ambient deadline a previous request installed —
   even through a code path that bypassed the [Fun.protect] restore in
   [with_deadline_ms], e.g. a worker killed mid-request — is cleared,
   so one request's expiry can never bleed into the next. *)
let reset () = Domain.DLS.set key None

let with_deadline_ms ms f =
  let abs =
    Int64.add (now_ns ()) (Int64.mul (Int64.of_int (max ms 0)) 1_000_000L)
  in
  let outer = Domain.DLS.get key in
  let eff =
    (* nesting keeps the tighter deadline: an inner, later deadline
       cannot extend an outer budget *)
    match outer with
    | Some o when Int64.compare o abs <= 0 -> outer
    | _ -> Some abs
  in
  Domain.DLS.set key eff;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key outer) f

let with_default_budget f =
  match Atomic.get default_ms with 0 -> f () | ms -> with_deadline_ms ms f

(* ---------------- per-run tokens ------------------------------------ *)

type token = { limit : int64 option; mutable ticks : int; mutable hit : bool }

let token () = { limit = Domain.DLS.get key; ticks = 0; hit = false }

(* sample the clock once per 64 polls: a fixpoint iteration is tens of
   nanoseconds, a clock read is comparable — amortize it away *)
let check_mask = 63

let expired t =
  match t.limit with
  | None -> false
  | Some l ->
      t.hit
      ||
      let k = t.ticks in
      t.ticks <- k + 1;
      (* k = 0 checks immediately, so a 0 ms budget expires on the
         very first poll *)
      if k land check_mask = 0 && Int64.compare (now_ns ()) l >= 0 then
        t.hit <- true;
      t.hit

let hit t = t.hit
let active t = t.limit <> None
