(** Always-on flight recorder into per-domain ring buffers; see
    flight.mli. *)

let enabled_flag = Atomic.make true
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* The flight clock is Trace's clock: the monotonic deadline clock by
   default, the injected clock when a test installs one — so flight
   dumps are as deterministic as trace exports under injection. *)
let now_ns () = Trace.now_ns ()

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

type event = {
  f_ts : int64;  (** ns *)
  f_kind : string;
  f_fields : (string * string) list;
}

type shard = {
  dom : int;
  mutable buf : event option array;  (** ring *)
  mutable start : int;
  mutable len : int;
  mutable dropped : int;
}

let default_capacity = 8192
let ring_capacity = Atomic.make default_capacity

let registry_lock = Mutex.create ()
let shards : shard list ref = ref [] (* newest first *)
let next_dom = Atomic.make 0

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          dom = Atomic.fetch_and_add next_dom 1;
          buf = Array.make (Atomic.get ring_capacity) None;
          start = 0;
          len = 0;
          dropped = 0;
        }
      in
      Mutex.lock registry_lock;
      shards := s :: !shards;
      Mutex.unlock registry_lock;
      s)

let my_shard () = Domain.DLS.get shard_key

let set_ring_capacity n =
  let n = max 16 n in
  Atomic.set ring_capacity n;
  (* the calling domain owns its shard, so resizing it in place is
     race-free; other domains' rings keep their capacity *)
  let s = my_shard () in
  s.buf <- Array.make n None;
  s.start <- 0;
  s.len <- 0;
  s.dropped <- 0

let push (s : shard) (ev : event) =
  let cap = Array.length s.buf in
  if s.len < cap then begin
    s.buf.((s.start + s.len) mod cap) <- Some ev;
    s.len <- s.len + 1
  end
  else begin
    s.buf.(s.start) <- Some ev;
    s.start <- (s.start + 1) mod cap;
    s.dropped <- s.dropped + 1
  end

let record ?(fields = []) kind =
  if Atomic.get enabled_flag then
    push (my_shard ()) { f_ts = now_ns (); f_kind = kind; f_fields = fields }

let snapshot_shards () =
  Mutex.lock registry_lock;
  let shs = !shards in
  Mutex.unlock registry_lock;
  List.sort (fun (a : shard) b -> compare a.dom b.dom) shs

let events_total () =
  List.fold_left (fun acc (s : shard) -> acc + s.len) 0 (snapshot_shards ())

let dropped_total () =
  List.fold_left (fun acc (s : shard) -> acc + s.dropped) 0 (snapshot_shards ())

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun (s : shard) ->
      Array.fill s.buf 0 (Array.length s.buf) None;
      s.start <- 0;
      s.len <- 0;
      s.dropped <- 0)
    !shards;
  Mutex.unlock registry_lock

(* ------------------------------------------------------------------ *)
(* Dump                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let shard_events (s : shard) : event list =
  let cap = Array.length s.buf in
  let out = ref [] in
  for i = s.len - 1 downto 0 do
    match s.buf.((s.start + i) mod cap) with
    | Some ev -> out := ev :: !out
    | None -> ()
  done;
  !out

let event_line (dom : int) (ev : event) : string =
  let b = Buffer.create 96 in
  Printf.bprintf b "{\"ts\":%Ld,\"dom\":%d,\"kind\":\"%s\"" ev.f_ts dom
    (json_escape ev.f_kind);
  List.iter
    (fun (k, v) ->
      Printf.bprintf b ",\"%s\":\"%s\"" (json_escape k) (json_escape v))
    ev.f_fields;
  Buffer.add_string b "}";
  Buffer.contents b

let dump_jsonl () : string =
  let shs = snapshot_shards () in
  let events =
    List.concat_map
      (fun (s : shard) ->
        List.map (fun ev -> (s.dom, ev)) (shard_events s))
      shs
  in
  (* stable sort: ties on ts keep per-shard recording order *)
  let events =
    List.stable_sort
      (fun (da, (a : event)) (db, b) ->
        match Int64.compare a.f_ts b.f_ts with
        | 0 -> compare da db
        | c -> c)
      events
  in
  let n = List.length events in
  let dropped =
    List.fold_left (fun acc (s : shard) -> acc + s.dropped) 0 shs
  in
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\"kind\":\"flight.meta\",\"version\":1,\"pid\":%d,\"events\":%d,\"dropped\":%d}\n"
    (Unix.getpid ()) n dropped;
  List.iter
    (fun (dom, ev) ->
      Buffer.add_string b (event_line dom ev);
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Black box                                                           *)
(* ------------------------------------------------------------------ *)

let blackbox : string option Atomic.t = Atomic.make None
let set_blackbox p = Atomic.set blackbox p
let blackbox_path () = Atomic.get blackbox

(* write-then-rename so a reader never sees a torn dump, even when the
   writer is a signal handler racing the main program *)
let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let write_blackbox () =
  match Atomic.get blackbox with
  | None -> None
  | Some path -> (
      match write_file path (dump_jsonl ()) with
      | () -> Some path
      | exception _ -> None)

let crash ?(reason = "") () =
  if Atomic.get enabled_flag then
    record ~fields:(if reason = "" then [] else [ ("reason", reason) ]) "crash";
  ignore (write_blackbox ())

let install_sigquit () =
  match
    Sys.set_signal Sys.sigquit
      (Sys.Signal_handle
         (fun _ ->
           record "sigquit";
           ignore (write_blackbox ())))
  with
  | () -> ()
  | exception _ -> ()
