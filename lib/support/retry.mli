(** Seeded exponential backoff (deterministic via splitmix64, like
    {!Fault}): the supervisor's retry schedule is reproducible from
    the policy seed and the entry key alone. *)

type policy = {
  max_attempts : int;  (** total attempts including the first *)
  base_delay_ms : float;  (** delay before attempt 2 *)
  multiplier : float;  (** exponential growth per further attempt *)
  jitter : float;  (** +/- fraction of the nominal delay, in [0, 1] *)
  seed : int;  (** splitmix64 seed for the jitter *)
}

val default : policy
(** 3 attempts, 50 ms base, x2 growth, 25% jitter, seed [0x5EED]. *)

val no_retry : policy
(** [default] with a single attempt (retries disabled). *)

val delay_ms : policy -> key:string -> attempt:int -> float
(** Backoff in milliseconds before [attempt] (numbered from 1; the
    first retry is attempt 2, so [attempt <= 1] is [0.]).
    Deterministic in [(policy seed, key, attempt)]. *)

val run :
  ?sleep:(float -> unit) ->
  policy ->
  key:string ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e list) result
(** Call [f ~attempt] until [Ok] or the attempt budget is spent,
    sleeping {!delay_ms} (milliseconds) between attempts. All
    attempts' errors come back oldest-first on exhaustion. [sleep]
    is injectable for tests (default: [Unix.sleepf]). *)
