(** Dense bitsets over non-negative ints, backed by an [int array] with
    [Sys.int_size] bits per word (63 on 64-bit).

    This is the set representation behind the dataflow and points-to
    kernels: the analysis domains are sets of small dense ids (locals,
    acquisition ids, interned memory locations), so word-wise
    union/equal/subset replace the pointer-chasing and polymorphic
    compares of [Set.Make (Int)] on the hottest paths.

    Values are immutable and *normalized* — no trailing zero words —
    so structural equality is word-wise array equality. Operations
    preserve physical identity where possible ([add x t] returns [t]
    itself when [x] is already a member, [union a b] returns [a] when
    [b] is a subset), which makes fixpoint change-detection cheap. *)

type t = int array
(** invariant: last word (if any) is non-zero *)

let word_bits = Sys.int_size

let empty : t = [||]
let is_empty (t : t) = Array.length t = 0

(* number of trailing zeros of [x land (-x)]; [x] must be non-zero *)
let ntz x =
  let x = x land -x in
  let n = ref 0 and x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin n := !n + 32; x := !x lsr 32 end;
  if !x land 0xFFFF = 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x land 0xFF = 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x land 0xF = 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x land 0x3 = 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x land 0x1 = 0 then incr n;
  !n

let popcount x =
  let c = ref 0 and x = ref x in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let mem i (t : t) =
  let w = i / word_bits in
  w < Array.length t && t.(w) land (1 lsl (i mod word_bits)) <> 0

let add i (t : t) : t =
  let w = i / word_bits and b = i mod word_bits in
  let len = Array.length t in
  if w < len then
    if t.(w) land (1 lsl b) <> 0 then t
    else begin
      let r = Array.copy t in
      r.(w) <- r.(w) lor (1 lsl b);
      r
    end
  else begin
    let r = Array.make (w + 1) 0 in
    Array.blit t 0 r 0 len;
    r.(w) <- 1 lsl b;
    r
  end

(* drop trailing zero words; reuses [r] when already normalized *)
let normalize (r : int array) : t =
  let n = ref (Array.length r) in
  while !n > 0 && r.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length r then r else Array.sub r 0 !n

let remove i (t : t) : t =
  let w = i / word_bits and b = i mod word_bits in
  if w >= Array.length t || t.(w) land (1 lsl b) = 0 then t
  else begin
    let r = Array.copy t in
    r.(w) <- r.(w) land lnot (1 lsl b);
    normalize r
  end

let singleton i : t = add i empty

let equal (a : t) (b : t) =
  a == b
  ||
  let la = Array.length a in
  la = Array.length b
  &&
  let rec eq i = i >= la || (a.(i) = b.(i) && eq (i + 1)) in
  eq 0

let subset (a : t) (b : t) =
  a == b
  ||
  let la = Array.length a in
  la <= Array.length b
  &&
  let rec sub i = i >= la || (a.(i) land lnot b.(i) = 0 && sub (i + 1)) in
  sub 0

let union (a : t) (b : t) : t =
  if a == b || subset b a then a
  else if subset a b then b
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (max la lb) 0 in
    for i = 0 to min la lb - 1 do
      r.(i) <- a.(i) lor b.(i)
    done;
    let long = if la > lb then a else b in
    for i = min la lb to max la lb - 1 do
      r.(i) <- long.(i)
    done;
    r (* union of normalized inputs is normalized *)
  end

let inter (a : t) (b : t) : t =
  if a == b then a
  else begin
    let l = min (Array.length a) (Array.length b) in
    let r = Array.make l 0 in
    for i = 0 to l - 1 do
      r.(i) <- a.(i) land b.(i)
    done;
    normalize r
  end

(** [diff a b] = elements of [a] not in [b]. Returns [a] itself when
    disjoint from [b]. *)
let diff (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let rec disjoint i =
    i >= min la lb || (a.(i) land b.(i) = 0 && disjoint (i + 1))
  in
  if disjoint 0 then a
  else begin
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      r.(i) <- a.(i) land lnot (if i < lb then b.(i) else 0)
    done;
    normalize r
  end

(* elements visited in increasing order, like [Set.Make (Int)] *)
let fold f (t : t) acc =
  let acc = ref acc in
  for w = 0 to Array.length t - 1 do
    let bits = ref t.(w) in
    let base = w * word_bits in
    while !bits <> 0 do
      let b = ntz !bits in
      acc := f (base + b) !acc;
      bits := !bits land (!bits - 1)
    done
  done;
  !acc

let iter f (t : t) = fold (fun i () -> f i) t ()

let cardinal (t : t) =
  let c = ref 0 in
  Array.iter (fun w -> c := !c + popcount w) t;
  !c

let elements (t : t) = List.rev (fold (fun i acc -> i :: acc) t [])
let of_list l = List.fold_left (fun acc i -> add i acc) empty l

let exists p (t : t) = fold (fun i acc -> acc || p i) t false

(* one-word constructor/destructor: the bridge to the specialized
   word-level dataflow kernel *)
let of_word w : t = if w = 0 then empty else [| w |]

let word0 (t : t) = if Array.length t = 0 then 0 else t.(0)

(* index of the highest set bit; [x] must be non-zero. The unsigned
   shifts make bit 62 (a negative int) behave like any other bit. *)
let msb x =
  let n = ref 0 and x = ref x in
  if !x lsr 32 <> 0 then begin n := !n + 32; x := !x lsr 32 end;
  if !x lsr 16 <> 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x lsr 8 <> 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x lsr 4 <> 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x lsr 2 <> 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x lsr 1 <> 0 then incr n;
  !n

let max_elt_opt (t : t) =
  let len = Array.length t in
  if len = 0 then None
  else begin
    (* normalized: the last word is non-zero *)
    let bits = t.(len - 1) in
    let b = ref (word_bits - 1) in
    while bits land (1 lsl !b) = 0 do
      decr b
    done;
    Some (((len - 1) * word_bits) + !b)
  end

let choose_opt (t : t) =
  if is_empty t then None
  else begin
    let w = ref 0 in
    while t.(!w) = 0 do
      incr w
    done;
    Some ((!w * word_bits) + ntz t.(!w))
  end
