(** Append-only checkpoint journal: crash-safe, checksummed,
    line-delimited records keyed by opaque strings.

    The corpus driver appends one record per completed entry (keyed by
    entry id + source digest + config, mirroring the program cache's
    [(file, config)] keying) and a resumed run replays them instead of
    re-analyzing. Appends are fsync'd; a torn tail left by a hard kill
    is detected by checksum and skipped on load. *)

type t

val open_append : string -> t
(** Open (creating if absent) a journal for appending. A fresh file
    gets a magic header line, fsync'd before the call returns.
    @raise Unix.Unix_error when the path is not writable. *)

val append : t -> key:string -> string -> unit
(** [append t ~key payload] durably appends one record (mutex-guarded
    and fsync'd: safe from several domains, crash-safe once it
    returns). A later record with the same key supersedes this one. *)

val close : t -> unit

val load : string -> (string * string) list
(** All valid [(key, payload)] records of a journal file, last-wins
    per key, in chronological order of the surviving records. A
    missing file is an empty journal; malformed, torn or
    checksum-failing lines are skipped. Never raises. *)

(** {1 Escaping (exposed for the payload codecs and tests)} *)

val escape : string -> string
(** Make a string safe to embed in one tab-separated field: escapes
    backslash, tab, newline and carriage return. *)

exception Bad_escape

val unescape : string -> string
(** Inverse of {!escape}.
    @raise Bad_escape on a malformed escape sequence. *)
