(** Corpus supervisor: deadline-governed, self-healing driver over a
    worker fleet — per-entry wall-clock budgets ({!Deadline}), seeded
    exponential-backoff retries ({!Retry}), quarantine after the
    attempt budget (circuit breaker), a whole-run deadline that skips
    the remainder instead of over-running, and a watchdog domain
    sampling per-worker heartbeats.

    Retries are round-based (round [k] runs attempt [k] of everything
    still pending), so verdicts are deterministic whenever the
    underlying failures are. Results are positional, in input order. *)

type config = {
  domains : int option;
      (** worker-pool size (default {!Domain_pool.default_domains}) *)
  per_entry_deadline_ms : int option;
      (** wall-clock budget installed around each attempt
          ({!Deadline.with_deadline_ms}); [None] falls back to
          {!Deadline.with_default_budget} *)
  run_deadline_ms : int option;
      (** whole-run budget: items not started before it expires get a
          [Skipped] verdict, never silently dropped *)
  retry : Retry.policy;
  watchdog_interval_ms : int;
      (** heartbeat sampling period; [<= 0] disables the watchdog *)
  sleep : float -> unit;
      (** milliseconds; injectable so tests run without real delays *)
}

val default_config : config
(** Pool-sized domains, no deadlines, {!Retry.default} (3 attempts),
    50 ms watchdog sampling, [Unix.sleepf]. *)

type failure = {
  f_msg : string;  (** printable cause *)
  f_timeout : bool;  (** the attempt exceeded its wall-clock deadline *)
}

type 'b verdict =
  | Done of 'b * int  (** value and the attempt (from 1) that produced it *)
  | Quarantined of { attempts : int; errors : string list }
      (** every attempt failed; errors oldest-first *)
  | Skipped of string  (** never attempted (run deadline) *)

type stats = {
  total : int;
  completed : int;  (** [Done] verdicts *)
  retried : int;  (** retry attempts performed (2nd and later) *)
  timeouts : int;  (** timed-out attempts observed *)
  quarantined : int;
  skipped : int;
  stuck_marks : int;
      (** watchdog sightings of a worker busy past the grace window
          (timing-dependent; diagnostics only) *)
}

val run :
  ?config:config ->
  ?on_done:(key:string -> 'b verdict -> unit) ->
  f:(attempt:int -> key:string -> 'a -> ('b, failure) result) ->
  (string * 'a) list ->
  (string * 'b verdict) list * stats
(** [run ~f items] drives every [(key, item)] pair to a final verdict.
    [f] runs under the configured per-entry deadline; an exception
    escaping [f] is captured as a non-timeout {!failure}. [on_done]
    fires exactly once per item, from the completing worker's domain,
    the moment its verdict is final (the checkpoint journal hooks in
    here) — it must be domain-safe. Never raises (short of [f] or
    [on_done] breaking the domain runtime). *)
