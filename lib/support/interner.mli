(** Append-only string interner: hashed symbol table mapping strings
    to dense integer symbols.

    Each distinct string is stored once; symbols are assigned in first
    insertion order starting at [0], so a table pre-seeded with a fixed
    vocabulary (e.g. the keyword list) gives those entries known,
    contiguous symbols. [intern_sub] hashes a substring of a source
    buffer directly and only copies it out ([String.sub]) on first
    insertion, so re-lexing the same identifier allocates nothing.

    Not thread-safe: intended to be owned by one lexer/parser pass
    (one per file keeps parallel corpus sweeps synchronization-free). *)

type t

type symbol = int
(** Dense handle: [0 <= symbol < count t]. *)

val create : ?capacity:int -> unit -> t
(** Fresh empty table. [capacity] is a hint for the expected number of
    distinct strings. *)

val intern : t -> string -> symbol
(** Symbol for [s], inserting it on first sight. *)

val intern_sub : t -> string -> int -> int -> symbol
(** [intern_sub t s pos len] interns the substring [s.[pos..pos+len-1]]
    without allocating unless the substring is new to the table. *)

val intern_buf : t -> Buffer.t -> symbol
(** Interns the current contents of a scratch buffer. *)

val to_string : t -> symbol -> string
(** The interned string, O(1). The result is shared: callers must not
    mutate it. @raise Invalid_argument on an out-of-range symbol. *)

val find : t -> string -> symbol option
(** Lookup without insertion. *)

val count : t -> int
(** Number of distinct strings interned so far. *)
