(** Process-wide metrics registry: labeled counter, gauge and
    histogram families, recorded into per-domain shards so
    [Domain_pool]/[Supervisor] workers never contend, merged on read.

    Recording is disabled by default and compiled down to one atomic
    flag load per call when off, so instrumented hot paths cost
    (almost) nothing in uninstrumented runs. Enable it (the CLI's
    [--metrics-out]/[--profile] do) and every instrumented subsystem —
    frontend, fixpoints, analysis cache, detectors, supervisor,
    journal — feeds the registry; {!export_prometheus} and
    {!export_json} render deterministic (sorted) snapshots.

    Family creation is cheap and always allowed (modules register
    their families at init time); creating the same name twice returns
    the existing family. Shards belong to the domain that recorded
    into them and are kept alive after the domain dies, so counts from
    pool workers survive the join and show up in the merged read. *)

(** {1 Global switch} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop every recorded sample (registrations survive). Tests and
    long-lived processes use this between observation windows. *)

(** {1 Families}

    [labels] names the label dimensions; every record/read call must
    then pass exactly that many label {e values}. *)

type counter
type gauge
type histogram

val counter : ?labels:string list -> help:string -> string -> counter
val gauge : ?labels:string list -> help:string -> string -> gauge

val histogram :
  ?buckets:float list -> ?labels:string list -> help:string -> string ->
  histogram
(** [buckets] are the inclusive upper bounds (a [+Inf] bucket is
    implicit); the default is a duration ladder in milliseconds from
    0.05 to 1000. *)

(** {1 Recording (no-ops while disabled)} *)

val incr : ?by:float -> ?labels:string list -> counter -> unit
val set : ?labels:string list -> gauge -> float -> unit
val observe : ?labels:string list -> histogram -> float -> unit

(** {1 Reading (merged across all shards)} *)

val counter_value : ?labels:string list -> counter -> float
val read_counter : ?labels:string list -> string -> float
(** By family name; [0.] when the family or label row is absent. *)

val domain_counter_value : ?labels:string list -> counter -> float
(** The calling domain's own shard only — the per-entry provenance
    deltas use this, so concurrent entries on other domains do not
    bleed into each other's attribution. *)

(** {1 Export} *)

val export_prometheus : unit -> string
(** Prometheus text exposition format. Families sorted by name, label
    rows sorted by label values; numbers print without an exponent so
    identical runs export byte-identical files. *)

val export_json : unit -> string
(** The same snapshot as a JSON document:
    [{"metrics":[{"name","type","help","samples":[{"labels",...}]}]}]. *)
