(** Diagnostics: errors and warnings emitted by the front end and the
    analyses, carrying a stable code, a severity, a source span and a
    message. See the interface for the raising vs collecting styles. *)

type severity = Error | Warning | Note

type code =
  | Lex_invalid_char
  | Lex_unterminated_string
  | Lex_unterminated_char
  | Lex_unterminated_comment
  | Lex_unterminated_attribute
  | Lex_bad_escape
  | Lex_bad_literal
  | Parse_error_code
  | Parse_recovered
  | Sema_error
  | Analysis_incomplete
  | Analysis_deadline
  | Entry_retried
  | Entry_quarantined
  | Run_deadline_skip
  | Entry_failed
  | Server_overload
  | Server_bad_frame
  | Server_worker_lost
  | Server_draining
  | Oracle_trap
  | Oracle_fuel
  | Oracle_deadline
  | Oracle_unsupported
  | General

let code_name = function
  | Lex_invalid_char -> "E0101"
  | Lex_unterminated_string -> "E0102"
  | Lex_unterminated_char -> "E0103"
  | Lex_unterminated_comment -> "E0104"
  | Lex_unterminated_attribute -> "E0105"
  | Lex_bad_escape -> "E0106"
  | Lex_bad_literal -> "E0107"
  | Parse_error_code -> "E0201"
  | Parse_recovered -> "E0202"
  | Sema_error -> "E0301"
  | Analysis_incomplete -> "W0401"
  | Analysis_deadline -> "W0402"
  | Entry_retried -> "W0403"
  | Entry_quarantined -> "W0404"
  | Run_deadline_skip -> "W0405"
  | Entry_failed -> "E0501"
  | Server_overload -> "W0501"
  | Server_bad_frame -> "E0502"
  | Server_worker_lost -> "W0503"
  | Server_draining -> "W0504"
  | Oracle_trap -> "E0601"
  | Oracle_fuel -> "W0602"
  | Oracle_deadline -> "W0603"
  | Oracle_unsupported -> "W0604"
  | General -> "E0000"

(** Every stable code, in declaration order — the golden tests pin the
    printed set so codes cannot silently renumber. *)
let all_codes =
  [
    Lex_invalid_char;
    Lex_unterminated_string;
    Lex_unterminated_char;
    Lex_unterminated_comment;
    Lex_unterminated_attribute;
    Lex_bad_escape;
    Lex_bad_literal;
    Parse_error_code;
    Parse_recovered;
    Sema_error;
    Analysis_incomplete;
    Analysis_deadline;
    Entry_retried;
    Entry_quarantined;
    Run_deadline_skip;
    Entry_failed;
    Server_overload;
    Server_bad_frame;
    Server_worker_lost;
    Server_draining;
    Oracle_trap;
    Oracle_fuel;
    Oracle_deadline;
    Oracle_unsupported;
    General;
  ]

let code_of_name s =
  List.find_opt (fun c -> String.equal (code_name c) s) all_codes

type t = { code : code; severity : severity; span : Span.t; message : string }

exception Parse_error of t

let error ?(code = General) ?(span = Span.dummy) fmt =
  Fmt.kstr (fun message -> { code; severity = Error; span; message }) fmt

let warning ?(code = General) ?(span = Span.dummy) fmt =
  Fmt.kstr (fun message -> { code; severity = Warning; span; message }) fmt

let note ?(code = General) ?(span = Span.dummy) fmt =
  Fmt.kstr (fun message -> { code; severity = Note; span; message }) fmt

let fail ?(code = Parse_error_code) ?(span = Span.dummy) fmt =
  Fmt.kstr
    (fun message -> raise (Parse_error { code; severity = Error; span; message }))
    fmt

(* ---------------- collector ---------------------------------------- *)

type collector = {
  mutable rev_diags : t list;  (** newest first *)
  mutable n_errors : int;
  mutable n_total : int;
}

let collector () = { rev_diags = []; n_errors = 0; n_total = 0 }

let emit c d =
  c.rev_diags <- d :: c.rev_diags;
  c.n_total <- c.n_total + 1;
  if d.severity = Error then c.n_errors <- c.n_errors + 1

let diags c = List.rev c.rev_diags
let has_errors c = c.n_errors > 0
let error_count c = c.n_errors
let count c = c.n_total
let errors_of ds = List.filter (fun d -> d.severity = Error) ds
let errors c = List.rev (errors_of c.rev_diags)

(* ---------------- result-style API --------------------------------- *)

let protect f =
  match f () with
  | v -> Stdlib.Ok v
  | exception Parse_error d -> Stdlib.Error d

let to_result c v =
  if has_errors c then Stdlib.Error (errors c) else Stdlib.Ok v

(* ---------------- printing ----------------------------------------- *)

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Note -> Fmt.string ppf "note"

let pp ppf d =
  Fmt.pf ppf "%a: %a[%s]: %s" Span.pp d.span pp_severity d.severity
    (code_name d.code) d.message

let to_string d = Fmt.str "%a" pp d

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare a.span.Span.file b.span.Span.file in
      if c <> 0 then c
      else
        let c =
          compare a.span.Span.start_pos.Span.offset
            b.span.Span.start_pos.Span.offset
        in
        if c <> 0 then c
        else
          let c = compare (code_name a.code) (code_name b.code) in
          if c <> 0 then c else compare a.message b.message)
    ds
