(** Fault injection: deterministic seeded source mutators.

    The robustness test suite and the degraded-corpus bench apply these
    mutators to every corpus program and assert the full pipeline
    (lex, parse, typecheck, lower, detect, report) still returns a
    result. All randomness comes from an explicit seed through a
    splitmix64 generator, so every failure is reproducible from the
    [(mutator, seed)] pair alone. *)

(* ---------------- deterministic PRNG (splitmix64) ------------------- *)

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int seed }

let next_int64 r =
  let open Int64 in
  r.state <- add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform int in [0, bound). [bound] must be positive. *)
let next_int r bound =
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 r) 2) in
  v mod bound

(* ---------------- mutators ----------------------------------------- *)

type mutator =
  | Truncate  (** cut the source at a random byte offset *)
  | Delete_span  (** remove a random run of bytes (token deletion) *)
  | Flip_bytes  (** overwrite a few bytes with arbitrary characters *)
  | Nest_deep  (** insert a deep unbalanced nesting of delimiters *)
  | Amplify_loops
      (** append a synthetic function whose CFG is a tower of nested
          loops — a divergence stressor for the fixpoint engines and
          the wall-clock deadline machinery *)
  | Amplify_body
      (** duplicate a random source chunk many times, inflating body
          and constraint-graph sizes (fuel/deadline pressure) *)
  | Len_huge
      (** overwrite the 4-byte length prefix of an encoded wire frame
          with a huge value (oversized-frame attack on the server) *)
  | Len_zero
      (** zero the length prefix, desynchronizing the frame stream:
          the payload bytes are then re-read as the next header *)
  | Bad_utf8
      (** splice invalid UTF-8 continuation bytes into the payload *)
  | Inject_free
      (** drop a let-bound value early, before a later live use — mints
          a known-positive use-after-free input for the dynamic oracle *)
  | Inject_lock
      (** duplicate a lock acquisition on the same receiver in the same
          scope — mints a known-positive double-lock input for the
          dynamic oracle *)

(* The source-level mutators (the fault suite and the degraded-corpus
   bench pin this set at six). *)
let all_mutators =
  [ Truncate; Delete_span; Flip_bytes; Nest_deep; Amplify_loops; Amplify_body ]

(* The wire-frame mutators: byte-level attacks on encoded
   length-prefixed frames (torn, garbage, oversized, desynchronized,
   non-UTF-8). [Nest_deep]/[Amplify_*] are source-shaped and excluded. *)
let frame_mutators =
  [ Truncate; Delete_span; Flip_bytes; Len_huge; Len_zero; Bad_utf8 ]

(* The trap-aiming mutators: semantics-level edits that keep the source
   parseable but plant a latent fault the dynamic oracle should
   manifest. Kept out of [all_mutators] so the recovery sweeps (pinned
   at six source mutators) are unchanged. *)
let trap_mutators = [ Inject_free; Inject_lock ]

let mutator_name = function
  | Truncate -> "truncate"
  | Delete_span -> "delete_span"
  | Flip_bytes -> "flip_bytes"
  | Nest_deep -> "nest_deep"
  | Amplify_loops -> "amplify_loops"
  | Amplify_body -> "amplify_body"
  | Len_huge -> "len_huge"
  | Len_zero -> "len_zero"
  | Bad_utf8 -> "bad_utf8"
  | Inject_free -> "inject_free"
  | Inject_lock -> "inject_lock"

let truncate r src =
  let n = String.length src in
  if n = 0 then src else String.sub src 0 (next_int r n)

let delete_span r src =
  let n = String.length src in
  if n < 2 then src
  else begin
    let start = next_int r n in
    let len = 1 + next_int r (min 40 (n - start)) in
    String.sub src 0 start ^ String.sub src (start + len) (n - start - len)
  end

(* Bytes drawn from a set chosen to hit distinct lexer paths: invalid
   characters, quote/comment openers, stray delimiters. *)
let noise = [| '$'; '`'; '"'; '\''; '{'; '}'; '('; ')'; '\\'; '\001'; '*'; '/' |]

let flip_bytes r src =
  let n = String.length src in
  if n = 0 then src
  else begin
    let b = Bytes.of_string src in
    let flips = 1 + next_int r 8 in
    for _ = 1 to flips do
      Bytes.set b (next_int r n) noise.(next_int r (Array.length noise))
    done;
    Bytes.to_string b
  end

(* Depth kept modest: the point is an unbalanced, deeply nested region
   the parser must recover from, not a stack-exhaustion stress test. *)
let nest_deep r src =
  let n = String.length src in
  let pos = if n = 0 then 0 else next_int r n in
  let depth = 16 + next_int r 48 in
  let opener = if next_int r 2 = 0 then '(' else '{' in
  let nest = String.make depth opener in
  String.sub src 0 pos ^ nest ^ String.sub src pos (n - pos)

(* A tower of nested while-loops appended as a fresh function: every
   level is a back edge, so the storage/held-lock fixpoints iterate
   far more than on any real body. Depth is kept small enough that a
   healthy fuel budget still converges — the point is schedule
   pressure, not a guaranteed timeout. *)
let amplify_loops r src =
  let depth = 12 + next_int r 20 in
  let buf = Buffer.create (256 + (depth * 48)) in
  Buffer.add_string buf src;
  Buffer.add_string buf "\nfn __fault_spin() {\n    let mut i = 0;\n";
  for d = 1 to depth do
    Buffer.add_string buf
      (Printf.sprintf "    while i < %d {\n        i = i + 1;\n" (1000 + d))
  done;
  for _ = 1 to depth do
    Buffer.add_string buf "    }\n"
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Duplicate a random chunk of the source many times at the end:
   inflates body counts / statement lists (and usually leaves the
   parser plenty to recover from mid-chunk). *)
let amplify_body r src =
  let n = String.length src in
  if n = 0 then src
  else begin
    let start = next_int r n in
    let len = 1 + next_int r (min 160 (n - start)) in
    let chunk = String.sub src start len in
    let reps = 8 + next_int r 24 in
    let buf = Buffer.create (n + (len * reps) + reps) in
    Buffer.add_string buf src;
    for _ = 1 to reps do
      Buffer.add_char buf '\n';
      Buffer.add_string buf chunk
    done;
    Buffer.contents buf
  end

(* Overwrite the 4 leading bytes (a frame's big-endian length prefix)
   with a huge length, so the receiver sees an oversized frame whose
   advertised payload never arrives in full. *)
let len_huge r src =
  if String.length src < 4 then src
  else begin
    let b = Bytes.of_string src in
    Bytes.set b 0 (Char.chr (0x40 lor next_int r 0xC0));
    Bytes.set b 1 (Char.chr (next_int r 256));
    Bytes.to_string b
  end

let len_zero _r src =
  if String.length src < 4 then src
  else begin
    let b = Bytes.of_string src in
    for i = 0 to 3 do
      Bytes.set b i '\000'
    done;
    Bytes.to_string b
  end

(* Lone continuation bytes and overlong-encoding starters: every
   splice is invalid UTF-8 wherever it lands in the payload. *)
let bad_utf8 r src =
  let n = String.length src in
  if n <= 4 then src
  else begin
    let b = Bytes.of_string src in
    let splices = 1 + next_int r 4 in
    for _ = 1 to splices do
      let bad = [| '\x80'; '\xBF'; '\xC0'; '\xF8'; '\xFF' |] in
      Bytes.set b
        (4 + next_int r (n - 4))
        bad.(next_int r (Array.length bad))
    done;
    Bytes.to_string b
  end

(* ---------------- trap-aiming mutators ----------------------------- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

(* Whole-word occurrence of [name] at or after [from]. *)
let rec find_use src name from =
  let n = String.length src in
  let ln = String.length name in
  if ln = 0 || from >= n then None
  else
    match String.index_from_opt src from name.[0] with
    | None -> None
    | Some i when i + ln > n -> None
    | Some i ->
        let before_ok = i = 0 || not (is_ident_char src.[i - 1]) in
        let after_ok = i + ln >= n || not (is_ident_char src.[i + ln]) in
        if before_ok && after_ok && String.sub src i ln = name then Some i
        else find_use src name (i + 1)

(* Scan a [let] / [let mut] binder name starting right after the
   keyword; returns [(name, pos_after_name)] or [None]. *)
let binder_name src pos =
  let n = String.length src in
  let pos = if pos + 4 <= n && String.sub src pos 4 = "mut " then pos + 4 else pos in
  let stop = ref pos in
  while !stop < n && is_ident_char src.[!stop] do incr stop done;
  if !stop = pos then None else Some (String.sub src pos (!stop - pos), !stop)

(* [Inject_free]: pick a [let NAME = ...;] binding whose NAME is used
   again later, and insert [drop(NAME);] immediately after the binding
   statement. The program still parses; the later use is now a
   use-after-drop the oracle manifests as a UAF trap (and the static
   UAF detector sees the same early drop). *)
let inject_free r src =
  let n = String.length src in
  let candidates = ref [] in
  let i = ref 0 in
  while !i + 4 < n do
    let at_kw =
      String.sub src !i 4 = "let "
      && (!i = 0 || not (is_ident_char src.[!i - 1]))
    in
    (if at_kw then
       match binder_name src (!i + 4) with
       | Some (name, after) -> (
           match String.index_from_opt src after ';' with
           | Some semi when semi + 1 < n -> (
               match find_use src name (semi + 1) with
               | Some _ -> candidates := (name, semi) :: !candidates
               | None -> ())
           | _ -> ())
       | None -> ());
    incr i
  done;
  match List.rev !candidates with
  | [] -> src
  | cs ->
      let name, semi = List.nth cs (next_int r (List.length cs)) in
      String.sub src 0 (semi + 1)
      ^ Printf.sprintf " drop(%s);" name
      ^ String.sub src (semi + 1) (n - semi - 1)

(* [Inject_lock]: find a [.lock()] call, recover the receiver
   identifier, and prepend a duplicate guard-holding acquisition
   [let __fault_g = RECV.lock().unwrap();] at the start of the
   enclosing statement — a self-deadlock the oracle's per-thread
   lockset reports as a double-lock trap. *)
let inject_lock r src =
  let n = String.length src in
  let pat = ".lock()" in
  let pn = String.length pat in
  let candidates = ref [] in
  let i = ref 0 in
  while !i + pn <= n do
    (if String.sub src !i pn = pat && !i > 0 && is_ident_char src.[!i - 1] then begin
       let start = ref (!i - 1) in
       while !start > 0 && is_ident_char src.[!start - 1] do decr start done;
       let recv = String.sub src !start (!i - !start) in
       (* insertion point: just after the previous ';', '{' or '}' *)
       let ins = ref !start in
       while
         !ins > 0 && src.[!ins - 1] <> ';' && src.[!ins - 1] <> '{'
         && src.[!ins - 1] <> '}'
       do
         decr ins
       done;
       if not (String.equal recv "__fault_g") then
         candidates := (recv, !ins) :: !candidates
     end);
    incr i
  done;
  match List.rev !candidates with
  | [] -> src
  | cs ->
      let recv, ins = List.nth cs (next_int r (List.length cs)) in
      String.sub src 0 ins
      ^ Printf.sprintf "\n    let __fault_g = %s.lock().unwrap();\n" recv
      ^ String.sub src ins (n - ins)

(** Apply [mutator] to [src] deterministically: the same
    [(seed, mutator, src)] triple always yields the same output. *)
let mutate ~seed mutator src =
  let r = rng (seed lxor Hashtbl.hash src) in
  match mutator with
  | Truncate -> truncate r src
  | Delete_span -> delete_span r src
  | Flip_bytes -> flip_bytes r src
  | Nest_deep -> nest_deep r src
  | Amplify_loops -> amplify_loops r src
  | Amplify_body -> amplify_body r src
  | Len_huge -> len_huge r src
  | Len_zero -> len_zero r src
  | Bad_utf8 -> bad_utf8 r src
  | Inject_free -> inject_free r src
  | Inject_lock -> inject_lock r src

(** All mutations of [src] under [seed], with their names. *)
let mutations ~seed src =
  List.map (fun m -> (mutator_name m, mutate ~seed m src)) all_mutators

(** All wire-frame mutations of an encoded frame under [seed]. The
    server fault-injection suite feeds these to a live connection and
    asserts the framing layer answers each with a structured error
    frame or a clean close — never an escaping exception. *)
let frame_mutations ~seed frame =
  List.map (fun m -> (mutator_name m, mutate ~seed m frame)) frame_mutators

(** All trap-aiming mutations of [src] under [seed]. A mutator that
    finds no applicable site is dropped (it would have returned the
    source unchanged): every returned mutant is a real injection. *)
let trap_mutations ~seed src =
  List.filter_map
    (fun m ->
      let mutated = mutate ~seed m src in
      if mutated = src then None else Some (mutator_name m, mutated))
    trap_mutators
