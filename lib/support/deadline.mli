(** Wall-clock deadlines: cooperative cancellation for the fixpoint
    analyses and the corpus drivers (the time-domain analogue of
    {!Fuel}).

    A driver wraps per-entry work in {!with_deadline_ms}; each
    fixpoint mints a {!token} and polls {!expired} once per iteration,
    stopping early with an incomplete result when the monotonic clock
    runs past the deadline. With no ambient deadline installed every
    poll is a cheap [false]. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds. Immune to wall-clock adjustments. *)

(** {1 Process-wide default budget} *)

val get_default_ms : unit -> int
(** The default per-entry budget in milliseconds; [0] = disabled. *)

val set_default_ms : int -> unit
(** Set the process-wide default (the CLI [--deadline-ms] override).
    Values [<= 0] disable it. Atomic: visible to all domains. *)

val with_default_budget : (unit -> 'a) -> 'a
(** Run [f] under {!with_deadline_ms}[ (get_default_ms ())], or plain
    [f ()] when no default budget is set. *)

(** {1 Ambient per-domain deadline} *)

val current : unit -> int64 option
(** The current domain's absolute deadline (monotonic ns), if any. *)

val reset : unit -> unit
(** Clear the current domain's ambient deadline unconditionally.
    Long-lived processes (the analysis server) call this at the top of
    every request so a deadline leaked by a previous request — e.g.
    through a worker killed mid-request, bypassing the scoped restore
    of {!with_deadline_ms} — can never bleed into the next one.
    Tokens already minted keep their captured deadline; only future
    {!token} calls see the cleared state. *)

val with_deadline_ms : int -> (unit -> 'a) -> 'a
(** [with_deadline_ms ms f] runs [f] with the current domain's
    deadline set to [now + ms] milliseconds, restoring the previous
    deadline afterwards. Nesting keeps the {e tighter} deadline: an
    inner call can shorten the budget but never extend an outer one.
    [ms <= 0] installs an already-expired deadline (tests use this to
    force deterministic timeouts). *)

(** {1 Per-run tokens} *)

type token
(** One fixpoint run's view of the ambient deadline, captured at
    {!token}-creation time. Polling amortizes clock reads (one sample
    per 64 {!expired} calls), and expiry is sticky. *)

val token : unit -> token
(** Capture the current domain's ambient deadline (set by
    {!with_deadline_ms}); the token never expires if none is set. *)

val expired : token -> bool
(** Poll the deadline. [true] once the monotonic clock has passed it;
    sticky thereafter. The first poll always samples the clock, so an
    already-expired deadline is seen immediately. *)

val hit : token -> bool
(** Whether {!expired} ever returned [true], without sampling the
    clock — for result plumbing after a loop exits. *)

val active : token -> bool
(** Whether the token carries a deadline at all. *)
