(** Span tracing into per-domain ring buffers; see trace.mli. *)

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let clock : (unit -> int64) option Atomic.t = Atomic.make None
let set_clock c = Atomic.set clock c

let now_ns () =
  match Atomic.get clock with Some f -> f () | None -> Deadline.now_ns ()

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;  (** 'X' complete, 'i' instant *)
  ev_ts : int64;  (** ns *)
  ev_dur : int64;  (** ns; 0 for instants *)
  ev_args : (string * string) list;
}

type agg_cell = { mutable a_count : int; mutable a_total : int64 }

type shard = {
  tid : int;
  buf : event option array;  (** ring *)
  mutable start : int;
  mutable len : int;
  mutable dropped : int;
  aggs : (string, agg_cell) Hashtbl.t;
}

let ring_capacity = Atomic.make 32768
let set_ring_capacity n = Atomic.set ring_capacity (max 16 n)

let registry_lock = Mutex.create ()
let shards : shard list ref = ref [] (* newest first *)
let next_tid = Atomic.make 0

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          tid = Atomic.fetch_and_add next_tid 1;
          buf = Array.make (Atomic.get ring_capacity) None;
          start = 0;
          len = 0;
          dropped = 0;
          aggs = Hashtbl.create 32;
        }
      in
      Mutex.lock registry_lock;
      shards := s :: !shards;
      Mutex.unlock registry_lock;
      s)

let my_shard () = Domain.DLS.get shard_key

let record (s : shard) (ev : event) =
  let cap = Array.length s.buf in
  if s.len < cap then begin
    s.buf.((s.start + s.len) mod cap) <- Some ev;
    s.len <- s.len + 1
  end
  else begin
    (* full: overwrite the oldest *)
    s.buf.(s.start) <- Some ev;
    s.start <- (s.start + 1) mod cap;
    s.dropped <- s.dropped + 1
  end

let bump_agg (s : shard) name dur =
  match Hashtbl.find_opt s.aggs name with
  | Some c ->
      c.a_count <- c.a_count + 1;
      c.a_total <- Int64.add c.a_total dur
  | None -> Hashtbl.replace s.aggs name { a_count = 1; a_total = dur }

(* span durations also land in a metrics histogram when both layers
   are on: --profile style cost attribution from the metrics file *)
let span_hist =
  Metrics.histogram ~labels:[ "span" ]
    ~help:"Span wall time in milliseconds, by span name."
    "rustudy_span_duration_ms"

let close_span (s : shard) ~cat ~args name t0 =
  let t1 = now_ns () in
  let dur = Int64.max 0L (Int64.sub t1 t0) in
  record s
    { ev_name = name; ev_cat = cat; ev_ph = 'X'; ev_ts = t0; ev_dur = dur;
      ev_args = args };
  bump_agg s name dur;
  Metrics.observe span_hist ~labels:[ name ] (Int64.to_float dur /. 1e6)

let with_span ?(cat = "app") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let s = my_shard () in
    let t0 = now_ns () in
    match f () with
    | v ->
        close_span s ~cat ~args name t0;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        close_span s ~cat
          ~args:(args @ [ ("error", Printexc.to_string e) ])
          name t0;
        Printexc.raise_with_backtrace e bt
  end

let instant ?(cat = "app") ?(args = []) name =
  if Atomic.get enabled_flag then
    let s = my_shard () in
    record s
      { ev_name = name; ev_cat = cat; ev_ph = 'i'; ev_ts = now_ns ();
        ev_dur = 0L; ev_args = args }

let dropped_total () =
  Mutex.lock registry_lock;
  let shs = !shards in
  Mutex.unlock registry_lock;
  List.fold_left (fun acc (s : shard) -> acc + s.dropped) 0 shs

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun (s : shard) ->
      Array.fill s.buf 0 (Array.length s.buf) None;
      s.start <- 0;
      s.len <- 0;
      s.dropped <- 0;
      Hashtbl.reset s.aggs)
    !shards;
  Mutex.unlock registry_lock

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* chrome trace timestamps are microseconds; keep nanosecond precision
   as three decimals so the injected-clock exports stay exact *)
let ts_us ns = Printf.sprintf "%Ld.%03Ld" (Int64.div ns 1000L) (Int64.rem ns 1000L)

let event_line (tid : int) (ev : event) : string =
  let args =
    match ev.ev_args with
    | [] -> ""
    | l ->
        ",\"args\":{"
        ^ String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
               l)
        ^ "}"
  in
  let dur =
    if ev.ev_ph = 'X' then Printf.sprintf ",\"dur\":%s" (ts_us ev.ev_dur)
    else ""
  in
  let scope = if ev.ev_ph = 'i' then ",\"s\":\"t\"" else "" in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%s%s%s%s}"
    (json_escape ev.ev_name) (json_escape ev.ev_cat) ev.ev_ph tid
    (ts_us ev.ev_ts) dur scope args

let shard_events (s : shard) : event list =
  let cap = Array.length s.buf in
  let out = ref [] in
  for i = s.len - 1 downto 0 do
    match s.buf.((s.start + i) mod cap) with
    | Some ev -> out := ev :: !out
    | None -> ()
  done;
  !out

let export_chrome () : string =
  Mutex.lock registry_lock;
  let shs = List.rev !shards in
  Mutex.unlock registry_lock;
  let shs =
    List.sort (fun (a : shard) b -> compare a.tid b.tid)
      (List.filter (fun (s : shard) -> s.len > 0 || s.dropped > 0) shs)
  in
  let b = Buffer.create 8192 in
  Buffer.add_string b "[";
  let first = ref true in
  let emit line =
    if !first then Buffer.add_string b "\n" else Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b line
  in
  List.iter
    (fun (s : shard) ->
      let events = shard_events s in
      (if s.dropped > 0 then
         let ts =
           match events with ev :: _ -> ev.ev_ts | [] -> 0L
         in
         emit
           (event_line s.tid
              {
                ev_name = "trace_dropped";
                ev_cat = "trace";
                ev_ph = 'i';
                ev_ts = ts;
                ev_dur = 0L;
                ev_args = [ ("dropped", string_of_int s.dropped) ];
              }));
      List.iter (fun ev -> emit (event_line s.tid ev)) events)
    shs;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Profile aggregates                                                  *)
(* ------------------------------------------------------------------ *)

type agg = { agg_name : string; agg_count : int; agg_total_ns : int64 }

let aggregates () : agg list =
  Mutex.lock registry_lock;
  let shs = !shards in
  Mutex.unlock registry_lock;
  let acc : (string, agg_cell) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (s : shard) ->
      Hashtbl.iter
        (fun name (c : agg_cell) ->
          match Hashtbl.find_opt acc name with
          | Some m ->
              m.a_count <- m.a_count + c.a_count;
              m.a_total <- Int64.add m.a_total c.a_total
          | None ->
              Hashtbl.replace acc name
                { a_count = c.a_count; a_total = c.a_total })
        s.aggs)
    shs;
  List.sort
    (fun a b ->
      match Int64.compare b.agg_total_ns a.agg_total_ns with
      | 0 -> String.compare a.agg_name b.agg_name
      | c -> c)
    (Hashtbl.fold
       (fun name (c : agg_cell) l ->
         { agg_name = name; agg_count = c.a_count; agg_total_ns = c.a_total }
         :: l)
       acc [])

let profile_table () : string =
  match aggregates () with
  | [] -> "profile: no spans recorded (tracing disabled?)\n"
  | aggs ->
      let b = Buffer.create 1024 in
      Printf.bprintf b "== profile (wall time by span) ==\n";
      Printf.bprintf b "  %-34s %8s %12s %12s\n" "span" "count" "total ms"
        "mean ms";
      List.iter
        (fun a ->
          let total_ms = Int64.to_float a.agg_total_ns /. 1e6 in
          Printf.bprintf b "  %-34s %8d %12.3f %12.3f\n" a.agg_name
            a.agg_count total_ms
            (total_ms /. float_of_int (max 1 a.agg_count)))
        aggs;
      Buffer.contents b
