(** Corpus supervisor: deadline-governed, self-healing driver over a
    [Domain_pool]-style worker fleet.

    Sits between the corpus sweep and raw [Domain_pool.try_map]:
    per-item work runs under the per-entry wall-clock budget
    ([Deadline]), failed and timed-out items are retried with seeded
    exponential backoff ([Retry]), items that exhaust their attempt
    budget are quarantined (circuit breaker) instead of poisoning the
    run, a whole-run deadline skips the remainder rather than
    over-running, and a watchdog domain samples per-worker heartbeats
    to spot workers stuck past any cooperative deadline.

    Retries are round-based: round [k] runs attempt [k] of every item
    still pending, so the result list and the set of quarantined items
    are deterministic whenever the underlying failures are (the only
    timing-dependent outputs are timeout-driven verdicts and the
    watchdog's stuck marks). Results come back positionally, in input
    order. *)

type config = {
  domains : int option;
      (** worker-pool size (default [Domain_pool.default_domains]) *)
  per_entry_deadline_ms : int option;
      (** wall-clock budget installed around each attempt; [None]
          falls back to [Deadline.with_default_budget] *)
  run_deadline_ms : int option;
      (** whole-run budget: items not started before it expires are
          [Skipped], never silently dropped *)
  retry : Retry.policy;
  watchdog_interval_ms : int;
      (** heartbeat sampling period; [<= 0] disables the watchdog *)
  sleep : float -> unit;
      (** milliseconds; injectable so tests run without real delays *)
}

let default_sleep ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

let default_config =
  {
    domains = None;
    per_entry_deadline_ms = None;
    run_deadline_ms = None;
    retry = Retry.default;
    watchdog_interval_ms = 50;
    sleep = default_sleep;
  }

(** One attempt's failure: printable cause plus whether it was a
    deadline timeout (timeouts purge cached partial results before the
    retry; see [Classify]). *)
type failure = { f_msg : string; f_timeout : bool }

type 'b verdict =
  | Done of 'b * int  (** value and the attempt (from 1) that produced it *)
  | Quarantined of { attempts : int; errors : string list }
      (** every attempt failed; errors oldest-first *)
  | Skipped of string  (** never attempted (run deadline) *)

(* Per-run stats are also published to the process-wide metrics
   registry (bulk, once per [run]) so `--metrics-out` captures them
   without the caller re-plumbing the stats record. *)
let m_entries =
  Metrics.counter ~labels:[ "verdict" ]
    ~help:"Supervised entries by final verdict (done|quarantined|skipped)."
    "rustudy_supervisor_entries_total"

let m_retries =
  Metrics.counter ~help:"Retry attempts performed (2nd and later)."
    "rustudy_supervisor_retries_total"

let m_timeouts =
  Metrics.counter ~help:"Timed-out attempts observed."
    "rustudy_supervisor_timeouts_total"

let m_stuck =
  Metrics.counter
    ~help:"Watchdog sightings of a worker busy past the grace window."
    "rustudy_supervisor_stuck_marks_total"

type stats = {
  total : int;
  completed : int;  (** [Done] verdicts *)
  retried : int;  (** retry attempts performed (2nd and later) *)
  timeouts : int;  (** timed-out attempts observed *)
  quarantined : int;
  skipped : int;
  stuck_marks : int;
      (** watchdog sightings of a worker busy past the grace window
          (timing-dependent; diagnostics only) *)
}

let run (type a b) ?(config = default_config)
    ?(on_done : (key:string -> b verdict -> unit) option)
    ~(f : attempt:int -> key:string -> a -> (b, failure) result)
    (items : (string * a) list) : (string * b verdict) list * stats =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let final : b verdict option array = Array.make n None in
  let errors : string list array = Array.make n [] (* newest first *) in
  let retried = Atomic.make 0
  and timeouts = Atomic.make 0
  and quarantined = Atomic.make 0
  and skipped = Atomic.make 0
  and stuck_marks = Atomic.make 0 in
  let max_attempts = max 1 config.retry.Retry.max_attempts in
  let run_limit =
    Option.map
      (fun ms ->
        Int64.add (Deadline.now_ns ())
          (Int64.mul (Int64.of_int (max ms 0)) 1_000_000L))
      config.run_deadline_ms
  in
  let run_expired () =
    match run_limit with
    | None -> false
    | Some l -> Int64.compare (Deadline.now_ns ()) l >= 0
  in
  let with_entry_deadline g =
    match config.per_entry_deadline_ms with
    | Some ms -> Deadline.with_deadline_ms ms g
    | None -> Deadline.with_default_budget g
  in
  let finalize i v =
    final.(i) <- Some v;
    match on_done with None -> () | Some cb -> cb ~key:(fst arr.(i)) v
  in
  let workers =
    let d =
      match config.domains with
      | Some d -> d
      | None -> Domain_pool.default_domains ()
    in
    max 1 (min d n)
  in
  (* per-worker heartbeat: (item index, attempt start ns), (-1, _) when
     idle. The watchdog only reads; each worker only writes its own. *)
  let idle = (-1, 0L) in
  let hb = Array.init workers (fun _ -> Atomic.make idle) in
  let stop_watchdog = Atomic.make false in
  let watchdog =
    if config.watchdog_interval_ms <= 0 then None
    else begin
      (* a worker is "stuck" once busy on one attempt for well past the
         cooperative per-entry budget (double it, plus a second of
         grace), or 30 s when no budget is installed at all *)
      let budget_ms =
        match config.per_entry_deadline_ms with
        | Some ms -> Some ms
        | None -> (
            match Deadline.get_default_ms () with 0 -> None | ms -> Some ms)
      in
      let threshold_ns =
        let ms =
          match budget_ms with Some b -> (2 * b) + 1_000 | None -> 30_000
        in
        Int64.mul (Int64.of_int ms) 1_000_000L
      in
      let marked = Array.make n false in
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get stop_watchdog) do
               config.sleep (float_of_int config.watchdog_interval_ms);
               let now = Deadline.now_ns () in
               Array.iter
                 (fun h ->
                   let i, t0 = Atomic.get h in
                   if
                     i >= 0
                     && (not marked.(i))
                     && Int64.compare (Int64.sub now t0) threshold_ns > 0
                   then begin
                     marked.(i) <- true;
                     Atomic.incr stuck_marks
                   end)
                 hb
             done))
    end
  in
  let run_round attempt idxs =
    let m = Array.length idxs in
    let next = Atomic.make 0 in
    let worker slot () =
      let rec loop () =
        let j = Atomic.fetch_and_add next 1 in
        if j < m then begin
          let i = idxs.(j) in
          let key, item = arr.(i) in
          if run_expired () then begin
            Atomic.incr skipped;
            finalize i (Skipped "run deadline exceeded before this entry ran")
          end
          else begin
            if attempt > 1 then begin
              Atomic.incr retried;
              config.sleep (Retry.delay_ms config.retry ~key ~attempt)
            end;
            Atomic.set hb.(slot) (i, Deadline.now_ns ());
            let res =
              match
                Trace.with_span ~cat:"supervisor"
                  ~args:[ ("key", key); ("attempt", string_of_int attempt) ]
                  "supervisor.attempt"
                  (fun () ->
                    with_entry_deadline (fun () -> f ~attempt ~key item))
              with
              | r -> r
              | exception e ->
                  { f_msg = Printexc.to_string e; f_timeout = false }
                  |> Result.error
            in
            Atomic.set hb.(slot) idle;
            match res with
            | Ok v -> finalize i (Done (v, attempt))
            | Error fl ->
                if fl.f_timeout then Atomic.incr timeouts;
                errors.(i) <- fl.f_msg :: errors.(i);
                if attempt >= max_attempts then begin
                  Atomic.incr quarantined;
                  finalize i
                    (Quarantined
                       { attempts = attempt; errors = List.rev errors.(i) })
                end
                (* otherwise: left pending for the next round *)
          end;
          loop ()
        end
      in
      loop ()
    in
    let w = max 1 (min workers m) in
    let spawned = Array.init (w - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned
  in
  let pending () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if final.(i) = None then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  let attempt = ref 1 in
  let rec rounds () =
    let idxs = pending () in
    if Array.length idxs > 0 then begin
      (* [max_attempts] bounds the rounds: every still-pending item
         either finalizes this round or has attempts left *)
      assert (!attempt <= max_attempts);
      run_round !attempt idxs;
      incr attempt;
      rounds ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop_watchdog true;
      Option.iter Domain.join watchdog)
    rounds;
  let results =
    Array.to_list
      (Array.mapi
         (fun i (key, _) ->
           match final.(i) with
           | Some v -> (key, v)
           | None -> assert false (* every index finalizes *))
         arr)
  in
  let completed =
    Array.fold_left
      (fun acc -> function Some (Done _) -> acc + 1 | _ -> acc)
      0 final
  in
  let stats =
    {
      total = n;
      completed;
      retried = Atomic.get retried;
      timeouts = Atomic.get timeouts;
      quarantined = Atomic.get quarantined;
      skipped = Atomic.get skipped;
      stuck_marks = Atomic.get stuck_marks;
    }
  in
  if Metrics.enabled () then begin
    let c lbl v =
      if v > 0 then Metrics.incr m_entries ~labels:[ lbl ] ~by:(float_of_int v)
    in
    c "done" stats.completed;
    c "quarantined" stats.quarantined;
    c "skipped" stats.skipped;
    Metrics.incr m_retries ~by:(float_of_int stats.retried);
    Metrics.incr m_timeouts ~by:(float_of_int stats.timeouts);
    Metrics.incr m_stuck ~by:(float_of_int stats.stuck_marks)
  end;
  (results, stats)
