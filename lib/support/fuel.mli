(** Analysis fuel: a process-wide iteration budget for the fixpoint
    analyses (points-to, dataflow, call-graph reachability).

    Every fixpoint loop consumes one unit of fuel per iteration and
    stops when the budget is exhausted, returning whatever it has with
    an [incomplete] marker instead of diverging on adversarial inputs.
    The budget is generous: no well-formed corpus program comes within
    two orders of magnitude of it, so exhaustion is itself a
    diagnostic signal. *)

val default_budget : int

val get : unit -> int
(** The current process-wide budget. *)

val set : int -> unit
(** Set the process-wide budget (atomic: visible to all domains).
    Values [<= 0] restore the default. *)

val with_budget : int -> (unit -> 'a) -> 'a
(** Run [f] with the budget temporarily set to [n], then restore the
    previous value. The restore is a compare-and-set, so a concurrent
    {!set} from another domain during [f] is left in place rather than
    clobbered. Remaining caveat (inherent ABA): if another domain sets
    the budget to exactly the value this call installed, the restore
    cannot tell the two writes apart and still puts the old value
    back. Intended for test code; concurrent production overrides
    should use {!set} directly. *)

(** {1 Per-run counters} *)

type counter
(** A mutable fuel counter for one analysis run, initialized from the
    process-wide budget (or an explicit [n]). *)

val counter : ?n:int -> unit -> counter

val burn : counter -> bool
(** Consume one unit; [false] when the budget is exhausted. *)

val exhausted : counter -> bool
