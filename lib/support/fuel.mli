(** Analysis fuel: a process-wide iteration budget for the fixpoint
    analyses (points-to, dataflow, call-graph reachability).

    Every fixpoint loop consumes one unit of fuel per iteration and
    stops when the budget is exhausted, returning whatever it has with
    an [incomplete] marker instead of diverging on adversarial inputs.
    The budget is generous: no well-formed corpus program comes within
    two orders of magnitude of it, so exhaustion is itself a
    diagnostic signal. *)

val default_budget : int

val get : unit -> int
(** The current process-wide budget. *)

val set : int -> unit
(** Set the process-wide budget (atomic: visible to all domains).
    Values [<= 0] restore the default. *)

val with_budget : int -> (unit -> 'a) -> 'a
(** Run [f] with the budget temporarily set to [n], then restore the
    previous value. The restore is a compare-and-set, so a concurrent
    {!set} from another domain during [f] is left in place rather than
    clobbered. Remaining caveat (inherent ABA): if another domain sets
    the budget to exactly the value this call installed, the restore
    cannot tell the two writes apart and still puts the old value
    back. Intended for test code; concurrent production overrides
    should use {!set} directly. *)

(** {1 Per-domain override}

    {!with_budget} mutates the process-wide atomic, so two concurrent
    requests on different domains would clobber each other. The
    analysis server scopes a request's budget to its worker domain
    instead: the override shadows the global budget on the calling
    domain only. *)

val with_domain_budget : int -> (unit -> 'a) -> 'a
(** Run [f] with this domain's fuel budget set to [n] ([<= 0] means
    {!default_budget}), restoring the previous override afterwards.
    Other domains are unaffected. *)

val domain_budget : unit -> int option
(** The calling domain's override, if one is installed. *)

val reset_domain : unit -> unit
(** Clear the calling domain's override unconditionally — the
    {!Deadline.reset} analogue, called by the server between requests
    so a leaked override can never bleed into the next request. *)

val effective : unit -> int
(** The budget a fresh {!counter} on this domain starts from: the
    domain override when present, the process-wide budget otherwise. *)

(** {1 Per-run counters} *)

type counter
(** A mutable fuel counter for one analysis run, initialized from the
    effective budget (or an explicit [n]). *)

val counter : ?n:int -> unit -> counter

val burn : counter -> bool
(** Consume one unit; [false] when the budget is exhausted. *)

val exhausted : counter -> bool
