(** Always-on flight recorder: wide structured events in per-domain
    ring buffers, dumped as JSONL for postmortems.

    Where {!Trace} answers "where did the time go" and {!Metrics}
    answers "how much of everything happened", the flight recorder
    answers "what was the process doing right before it died". It is
    **enabled by default** (the inverse of the other two layers) and
    kept cheap enough to leave on in production: {!record} is one
    atomic flag load, a domain-local ring write, and no locks.

    Events are wide: one [kind] string plus free-form [(key, value)]
    string fields, all flattened into one JSON object per line on
    dump. Each domain records into its own fixed-capacity ring
    (default 8192 events); a full ring overwrites the oldest event and
    counts the drop, exactly like {!Trace}'s rings, so the dump always
    holds the *most recent* window with exact loss accounting.

    The "black box": point {!set_blackbox} at a path and the dump is
    written there on demand ({!write_blackbox}), on SIGQUIT
    ({!install_sigquit}), and on fatal exits via {!crash} — the CLI
    installs that hook so even a run dying on an uncaught exception
    leaves its last moments on disk. *)

(** {1 Global switch} *)

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool
(** [true] by default — the recorder is always-on unless a bench or
    test turns it off. *)

(** {1 Recording} *)

val record : ?fields:(string * string) list -> string -> unit
(** [record ~fields kind] appends one event stamped with the flight
    clock ({!Trace.now_ns}, so injected clocks make dumps
    deterministic) to the calling domain's ring. No-op while
    disabled. *)

val set_ring_capacity : int -> unit
(** Ring capacity (events, min 16) for shards created after the call
    {e and} for the calling domain's own shard, which is cleared and
    resized in place (the caller owns it, so this is race-free).
    Other live domains keep their current rings. Default 8192. *)

val reset : unit -> unit
(** Drop every buffered event and zero all drop counters (rings
    survive). *)

(** {1 Accounting} *)

val events_total : unit -> int
(** Events currently buffered across all domains. *)

val dropped_total : unit -> int
(** Events overwritten (lost to ring wrap) across all domains since
    the last {!reset}. *)

(** {1 Dump} *)

val dump_jsonl : unit -> string
(** The black-box payload: one [flight.meta] header line carrying
    [version] / [pid] / [events] / [dropped], then every buffered
    event as one flat JSON object per line —
    [{"ts":<ns>,"dom":<shard>,"kind":"...",<field>:"...",...}] —
    merged across domains and sorted by timestamp (ties keep
    per-domain recording order). *)

(** {1 Black box} *)

val set_blackbox : string option -> unit
(** Install (or clear) the dump destination. *)

val blackbox_path : unit -> string option

val write_blackbox : unit -> string option
(** Write {!dump_jsonl} to the installed path via write-then-rename
    (a reader never sees a torn file). Returns the path written, or
    [None] when no path is installed or the write failed — it never
    raises, because it runs on crash paths. *)

val crash : ?reason:string -> unit -> unit
(** The fatal-exit hook: record a ["crash"] event (with a ["reason"]
    field when given) and write the black box. Never raises. *)

val install_sigquit : unit -> unit
(** Route SIGQUIT to "record a ["sigquit"] event and write the black
    box"; the process keeps running, so a live daemon can be asked for
    its black box with [kill -QUIT]. No-op on platforms without the
    signal. *)
