(** Dense bitsets over non-negative ints: an [int array] with
    [Sys.int_size] bits per word, word-wise union/inter/equal/subset.

    The set representation behind the dataflow and points-to kernels.
    Values are immutable and normalized (no trailing zero words);
    operations preserve physical identity where they can ([add] of a
    member, [union] with a subset), so [==] is a sound fast-path for
    "nothing changed" in fixpoint loops. Elements must be [>= 0]. *)

type t

val word_bits : int
(** Bits per array word ([Sys.int_size]); exposed for kernels that
    maintain their own word-level bit matrices. *)

val ntz : int -> int
(** Index of the lowest set bit of a non-zero word (number of trailing
    zeros). *)

val empty : t
val is_empty : t -> bool
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val singleton : int -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is [a - b]; returns [a] physically when the sets are
    disjoint (the difference-propagation fast path). *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Elements in increasing order, like [Set.Make(Int).fold]. *)

val iter : (int -> unit) -> t -> unit
(** Elements in increasing order. *)

val of_word : int -> t
(** The set whose members are the set bits of one machine word
    (element [i] iff bit [i]); the bridge from word-level dataflow
    kernels back to set values. *)

val word0 : t -> int
(** The first word: members [< word_bits] as a machine word (members
    beyond it are not represented). The bridge *into* word-level
    kernels; exact whenever every element is [< word_bits]. *)

val msb : int -> int
(** Index of the highest set bit of a non-zero word (counterpart of
    [ntz]). *)

val max_elt_opt : t -> int option
val exists : (int -> bool) -> t -> bool
val cardinal : t -> int
val elements : t -> int list
val of_list : int list -> t
val choose_opt : t -> int option
