(** Seeded exponential backoff for the corpus supervisor.

    Delays are deterministic in [(policy seed, key, attempt)]: the
    jitter comes from the same splitmix64 generator as the fault
    harness ([Fault.rng]), keyed by the entry id, so two runs of the
    same corpus schedule identical backoff — reproducibility first,
    thundering-herd avoidance second. *)

type policy = {
  max_attempts : int;  (** total attempts including the first *)
  base_delay_ms : float;  (** delay before attempt 2 *)
  multiplier : float;  (** exponential growth per further attempt *)
  jitter : float;  (** +/- fraction of the nominal delay, in [0, 1] *)
  seed : int;  (** splitmix64 seed for the jitter *)
}

let default =
  {
    max_attempts = 3;
    base_delay_ms = 50.;
    multiplier = 2.;
    jitter = 0.25;
    seed = 0x5EED;
  }

let no_retry = { default with max_attempts = 1 }

(** Backoff before [attempt] (numbered from 1; the first retry is
    attempt 2). Deterministic in [(p.seed, key, attempt)]. *)
let delay_ms (p : policy) ~key ~attempt : float =
  if attempt <= 1 then 0.
  else begin
    let nominal =
      p.base_delay_ms *. (p.multiplier ** float_of_int (attempt - 2))
    in
    let r = Fault.rng (p.seed lxor Hashtbl.hash key lxor (attempt * 0x9E37)) in
    (* uniform in [-1, 1), quantized: plenty for backoff spreading *)
    let u = (2. *. (float_of_int (Fault.next_int r 10_000) /. 10_000.)) -. 1. in
    Float.max 0. (nominal *. (1. +. (p.jitter *. u)))
  end

(** [run p ~key f] calls [f ~attempt] (attempts numbered from 1) until
    it returns [Ok] or the policy's attempt budget is spent, sleeping
    the deterministic backoff between attempts. Returns the errors of
    every attempt, oldest first, when all fail. [sleep] (seconds) is
    injectable so tests run without wall-clock delays. *)
let run ?(sleep = fun ms -> if ms > 0. then Unix.sleepf (ms /. 1000.))
    (p : policy) ~key (f : attempt:int -> ('a, 'e) result) :
    ('a, 'e list) result =
  let max_attempts = max 1 p.max_attempts in
  let rec go attempt rev_errors =
    match f ~attempt with
    | Ok v -> Ok v
    | Error e ->
        let rev_errors = e :: rev_errors in
        if attempt >= max_attempts then Error (List.rev rev_errors)
        else begin
          sleep (delay_ms p ~key ~attempt:(attempt + 1));
          go (attempt + 1) rev_errors
        end
  in
  go 1 []
