(** Analysis fuel: a process-wide iteration budget for the fixpoint
    analyses (points-to, dataflow, call-graph reachability).

    Every fixpoint loop consumes one unit of fuel per iteration and
    stops when the budget is exhausted, returning whatever it has with
    an [incomplete] marker instead of diverging on adversarial inputs
    (deep nesting, enormous mutated bodies). The budget is generous:
    no well-formed corpus program comes within two orders of magnitude
    of it, so exhaustion is itself a diagnostic signal.

    The default lives in an [Atomic] so corpus workers on other domains
    observe a CLI [--fuel] override without synchronisation. *)

let default_budget = 100_000

let budget = Atomic.make default_budget

let get () = Atomic.get budget

(** Set the process-wide budget. Values [<= 0] restore the default. *)
let set n = Atomic.set budget (if n <= 0 then default_budget else n)

(** Run [f] with the budget temporarily set to [n] (tests). The
    restore is a compare-and-set: a concurrent [set] from another
    domain during [f] wins and is left in place instead of being
    silently clobbered (see the interface for the remaining caveat). *)
let with_budget n f =
  let old = get () in
  let applied = if n <= 0 then default_budget else n in
  Atomic.set budget applied;
  Fun.protect f ~finally:(fun () ->
      ignore (Atomic.compare_and_set budget applied old))

(* ---------------- per-domain override ------------------------------- *)

(* [with_budget] mutates the process-wide atomic, so two concurrent
   requests on different domains clobber each other's budgets (the CAS
   restore only protects against lost [set]s, not against the other
   request reading the wrong value mid-scope). Long-lived multi-domain
   processes — the analysis server — scope a request's budget to its
   worker domain instead: the override shadows the global budget on
   this domain only and other domains never see it. *)
let domain_key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let domain_budget () = Domain.DLS.get domain_key

let with_domain_budget n f =
  let outer = Domain.DLS.get domain_key in
  Domain.DLS.set domain_key (Some (if n <= 0 then default_budget else n));
  Fun.protect f ~finally:(fun () -> Domain.DLS.set domain_key outer)

(* Belt-and-braces analogue of [Deadline.reset]: clear any override a
   previous request leaked past the scoped restore. *)
let reset_domain () = Domain.DLS.set domain_key None

(** The budget a fresh counter on this domain starts from. *)
let effective () =
  match Domain.DLS.get domain_key with Some n -> n | None -> get ()

(** A mutable fuel counter for one analysis run. *)
type counter = { mutable remaining : int; mutable reported : bool }

let counter ?n () =
  {
    remaining = (match n with Some n -> n | None -> effective ());
    reported = false;
  }

(** Consume one unit; [false] when the budget is exhausted. *)
let burn c =
  if c.remaining <= 0 then begin
    (* one flight event per counter, at the moment the loop first hits
       the wall — not per denied burn, which would flood the ring *)
    if not c.reported then begin
      c.reported <- true;
      Flight.record "fuel.exhausted"
    end;
    false
  end
  else begin
    c.remaining <- c.remaining - 1;
    true
  end

let exhausted c = c.remaining <= 0
