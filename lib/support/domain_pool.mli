(** Fixed-size domain pool: parallel [map] over a list with
    deterministic, input-ordered results, per-task fault isolation and
    a sequential fallback. *)

val default_domains : unit -> int
(** The pool size used when [?domains] is omitted
    ([Domain.recommended_domain_count ()], at least 1). *)

val try_map :
  ?domains:int -> ?chunk:int -> f:('a -> 'b) -> 'a list ->
  ('b, exn) result list
(** [try_map ?domains ?chunk ~f items] runs [f] over [items] on up to
    [domains] domains, capturing each task's exception (if any) as
    [Error] in that task's input-ordered slot. A failing task never
    tears down the pool: the other items still run and the domains are
    always joined. [f] must be domain-safe. [domains <= 1] (or fewer
    than two items) runs sequentially in the calling domain with the
    same per-item isolation. Workers claim [chunk] consecutive items per
    scheduling step (default: enough for ~4 chunks per worker), so
    per-item contention on the shared index amortizes away for large
    inputs. *)

val map : ?domains:int -> ?chunk:int -> f:('a -> 'b) -> 'a list -> 'b list
(** [map ?domains ~f items] is [List.map f items] computed by up to
    [domains] domains. Results come back in input order; if [f] raised,
    the first failing item's exception (in input order) is re-raised
    with its original backtrace ([Printexc.raise_with_backtrace]) after
    all domains have joined (the remaining items still ran). *)

val sequential_map : f:('a -> 'b) -> 'a list -> 'b list
(** Plain [List.map], exposed so callers can time the two paths side by
    side. *)
