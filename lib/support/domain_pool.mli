(** Fixed-size domain pool: parallel [map] over a list with
    deterministic, input-ordered results and a sequential fallback. *)

val default_domains : unit -> int
(** The pool size used when [?domains] is omitted
    ([Domain.recommended_domain_count ()], at least 1). *)

val map : ?domains:int -> f:('a -> 'b) -> 'a list -> 'b list
(** [map ?domains ~f items] is [List.map f items] computed by up to
    [domains] domains. [f] must be domain-safe. Results come back in
    input order; if [f] raises, the first failing item's exception (in
    input order) is re-raised after all domains join. [domains <= 1]
    (or fewer than two items) runs sequentially in the calling
    domain. *)

val sequential_map : f:('a -> 'b) -> 'a list -> 'b list
(** Plain [List.map], exposed so callers can time the two paths side by
    side. *)
