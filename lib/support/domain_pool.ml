(** Fixed-size domain pool for fanning pure per-item work across cores
    (OCaml 5 [Domain.spawn]; no external dependency). Results are
    collected positionally, so the output order always matches the
    input order regardless of which domain finished first. *)

let default_domains () =
  (* recommended_domain_count counts the running domain; never spawn
     more workers than items or cores *)
  max 1 (Domain.recommended_domain_count ())

(** [map ?domains ~f items] applies [f] to every element of [items],
    using up to [domains] domains (default:
    [Domain.recommended_domain_count ()]). [f] must be safe to run
    concurrently with itself from multiple domains. Falls back to plain
    sequential [List.map] when [domains <= 1] or the input has fewer
    than two elements. The result list is in input order; the first
    exception raised by [f] (in input order) is re-raised. *)
let map ?domains ~(f : 'a -> 'b) (items : 'a list) : 'b list =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let workers =
    let d = match domains with Some d -> d | None -> default_domains () in
    min d n
  in
  if workers <= 1 || n <= 1 then List.map f items
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f arr.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false (* every index was claimed *))
  end

(** Sequential reference implementation, for comparisons and tests. *)
let sequential_map ~f items = List.map f items
