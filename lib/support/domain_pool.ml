(** Fixed-size domain pool for fanning pure per-item work across cores
    (OCaml 5 [Domain.spawn]; no external dependency). Results are
    collected positionally, so the output order always matches the
    input order regardless of which domain finished first.

    Worker exceptions never tear down the pool: each task's outcome is
    captured as a [result] in its own slot, every domain drains the
    whole queue regardless of other tasks failing, and the domains are
    always joined. [try_map] surfaces the captured outcomes to the
    caller; [map] re-raises the first failure (in input order) only
    after the pool has fully wound down. *)

let default_domains () =
  (* recommended_domain_count counts the running domain, so reserve one
     slot for it: spawning a worker per core leaves the coordinator
     competing for a core and used to report parallel sweeps running
     with a single effective domain. Never below 1. *)
  max 1 (Domain.recommended_domain_count () - 1)

(** Shared engine behind [try_map]/[map]: applies [f] to every element
    of [items], using up to [domains] domains (default:
    [Domain.recommended_domain_count ()]). Every call of [f] is
    isolated: an exception becomes [Error (exn, backtrace)] in that
    item's slot and the remaining items still run. The result list is
    in input order. [f] must be safe to run concurrently with itself
    from multiple domains. Falls back to a sequential loop (same
    isolation) when [domains <= 1] or the input has fewer than two
    elements. *)
let run_raw ?domains ?chunk ~(f : 'a -> 'b) (items : 'a list) :
    ('b, exn * Printexc.raw_backtrace) result list =
  let one x =
    match f x with
    | v -> Ok v
    | exception e ->
        (* capture the backtrace before any other code runs: [map]
           re-raises the failure with it intact *)
        let bt = Printexc.get_raw_backtrace () in
        Error (e, bt)
  in
  let arr = Array.of_list items in
  let n = Array.length arr in
  let workers =
    let d = match domains with Some d -> d | None -> default_domains () in
    min d n
  in
  if workers <= 1 || n <= 1 then List.map one items
  else begin
    let results : ('b, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let next = Atomic.make 0 in
    (* claim runs of [chunk] indices per fetch_and_add so per-item
       contention on [next] amortizes; ~4 chunks per worker keeps the
       tail balanced when item costs are uneven *)
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (workers * 4))
    in
    let worker () =
      let rec loop () =
        let i0 = Atomic.fetch_and_add next chunk in
        if i0 < n then begin
          for i = i0 to min (i0 + chunk - 1) (n - 1) do
            results.(i) <- Some (one arr.(i))
          done;
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> assert false (* every index was claimed *))
  end

let try_map ?domains ?chunk ~(f : 'a -> 'b) (items : 'a list) :
    ('b, exn) result list =
  run_raw ?domains ?chunk ~f items
  |> List.map (function Ok v -> Ok v | Error (e, _) -> Error e)

(** [map ?domains ~f items] is [List.map f items] computed by the pool.
    The first exception raised by [f] (in input order) is re-raised —
    with its original backtrace — after all domains have joined; the
    other items still ran. *)
let map ?domains ?chunk ~(f : 'a -> 'b) (items : 'a list) : 'b list =
  run_raw ?domains ?chunk ~f items
  |> List.map (function
       | Ok v -> v
       | Error (e, bt) -> Printexc.raise_with_backtrace e bt)

(** Sequential reference implementation, for comparisons and tests. *)
let sequential_map ~f items = List.map f items
