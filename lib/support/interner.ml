(* Open-addressing hash index over an append-only symbol store.

   The index maps hash -> symbol; strings live once in [strings].
   Probing is linear with a power-of-two table kept at most half full,
   so lookups touch one or two cache lines in the common case. Hashing
   is FNV-1a over the bytes, computed directly on the source buffer in
   [intern_sub] so the hot lexer path allocates nothing for
   already-seen identifiers. *)

type symbol = int

type t = {
  mutable index : int array;  (* symbol + 1; 0 means empty *)
  mutable mask : int;  (* Array.length index - 1 *)
  mutable strings : string array;
  mutable hashes : int array;
  mutable n : int;
}

let create ?(capacity = 64) () =
  let cap =
    let c = ref 16 in
    while !c < capacity * 2 do
      c := !c * 2
    done;
    !c
  in
  {
    index = Array.make cap 0;
    mask = cap - 1;
    strings = Array.make (max 16 capacity) "";
    hashes = Array.make (max 16 capacity) 0;
    n = 0;
  }

let count t = t.n

let to_string t sym =
  if sym < 0 || sym >= t.n then invalid_arg "Interner.to_string";
  Array.unsafe_get t.strings sym

(* FNV-1a, folded into OCaml's 63-bit int range; [land max_int] keeps
   the hash non-negative so [h land mask] is a valid slot. *)
let fnv_offset = 0x1cf035ce5e1f611
let fnv_prime = 0x100000001b3

let hash_sub (s : string) pos len =
  let h = ref fnv_offset in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  !h land max_int

let hash_string s = hash_sub s 0 (String.length s)

let rehash t =
  let cap = (t.mask + 1) * 2 in
  let index = Array.make cap 0 in
  let mask = cap - 1 in
  for sym = 0 to t.n - 1 do
    let h = t.hashes.(sym) in
    let i = ref (h land mask) in
    while index.(!i) <> 0 do
      i := (!i + 1) land mask
    done;
    index.(!i) <- sym + 1
  done;
  t.index <- index;
  t.mask <- mask

let grow_store t =
  let cap = Array.length t.strings * 2 in
  let strings = Array.make cap "" in
  let hashes = Array.make cap 0 in
  Array.blit t.strings 0 strings 0 t.n;
  Array.blit t.hashes 0 hashes 0 t.n;
  t.strings <- strings;
  t.hashes <- hashes

let add t h (s : string) =
  if t.n = Array.length t.strings then grow_store t;
  let sym = t.n in
  t.strings.(sym) <- s;
  t.hashes.(sym) <- h;
  t.n <- sym + 1;
  if 2 * t.n > t.mask then rehash t;
  sym

(* Compare an interned string against a source substring without
   copying either side. *)
let eq_sub (interned : string) (s : string) pos len =
  String.length interned = len
  &&
  let i = ref 0 in
  while
    !i < len
    && Char.equal
         (String.unsafe_get interned !i)
         (String.unsafe_get s (pos + !i))
  do
    incr i
  done;
  !i = len

let intern_sub t s pos len =
  let h = hash_sub s pos len in
  let mask = t.mask in
  let i = ref (h land mask) in
  let result = ref (-1) in
  while !result < 0 do
    let slot = Array.unsafe_get t.index !i in
    if slot = 0 then begin
      let sym = add t h (String.sub s pos len) in
      (* [add] may have rehashed into a fresh index; re-probe there
         rather than writing into the stale slot *)
      if t.mask = mask then t.index.(!i) <- sym + 1
      else begin
        let m = t.mask in
        let j = ref (h land m) in
        while t.index.(!j) <> 0 do
          j := (!j + 1) land m
        done;
        t.index.(!j) <- sym + 1
      end;
      result := sym
    end
    else begin
      let sym = slot - 1 in
      if t.hashes.(sym) = h && eq_sub t.strings.(sym) s pos len then
        result := sym
      else i := (!i + 1) land mask
    end
  done;
  !result

let intern t s = intern_sub t s 0 (String.length s)

let intern_buf t b =
  (* scratch buffers are small and escape-decoded contents usually
     novel; one [Buffer.contents] copy here is the cold path *)
  intern t (Buffer.contents b)

let find t s =
  let len = String.length s in
  let h = hash_string s in
  let mask = t.mask in
  let i = ref (h land mask) in
  let result = ref None in
  let stop = ref false in
  while not !stop do
    let slot = Array.unsafe_get t.index !i in
    if slot = 0 then stop := true
    else begin
      let sym = slot - 1 in
      if t.hashes.(sym) = h && eq_sub t.strings.(sym) s 0 len then begin
        result := Some sym;
        stop := true
      end
      else i := (!i + 1) land mask
    end
  done;
  !result
