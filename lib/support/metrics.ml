(** Process-wide metrics registry with per-domain shards.

    Shape: a global (mutex-guarded) list of families and a global list
    of shards, one shard per domain that ever recorded. A shard is
    only ever written by its owning domain, so recording takes no
    lock; reads merge every shard under the registry mutex. Reads that
    race a recording domain may see a value one update stale — the
    deterministic paths (tests, post-join exports) read after the
    workers joined, which [Domain.join] orders properly. *)

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* Families                                                            *)
(* ------------------------------------------------------------------ *)

type kind =
  | Counter
  | Gauge
  | Histogram of float array  (** upper bounds; +Inf implicit *)

type family = {
  id : int;
  name : string;
  help : string;
  kind : kind;
  label_names : string list;
}

type counter = family
type gauge = family
type histogram = family

(* default duration ladder, milliseconds *)
let default_buckets =
  [| 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. |]

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

type hist_cell = {
  hc_counts : int array;  (** one slot per bound, plus +Inf last *)
  mutable hc_sum : float;
  mutable hc_count : int;
}

type cell = Scalar of float ref | Hist of hist_cell

type shard = { tbl : ((int * string list), cell) Hashtbl.t }

let registry_lock = Mutex.create ()
let families : family list ref = ref [] (* newest first *)
let next_family_id = ref 0
let shards : shard list ref = ref [] (* newest first *)

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { tbl = Hashtbl.create 64 } in
      Mutex.lock registry_lock;
      shards := s :: !shards;
      Mutex.unlock registry_lock;
      s)

let my_shard () = Domain.DLS.get shard_key

let register kind ?(labels = []) ~help name : family =
  Mutex.lock registry_lock;
  let f =
    match List.find_opt (fun f -> String.equal f.name name) !families with
    | Some f -> f (* same name: reuse (modules may share a family) *)
    | None ->
        let f =
          { id = !next_family_id; name; help; kind; label_names = labels }
        in
        incr next_family_id;
        families := f :: !families;
        f
  in
  Mutex.unlock registry_lock;
  f

let counter ?labels ~help name = register Counter ?labels ~help name
let gauge ?labels ~help name = register Gauge ?labels ~help name

let histogram ?buckets ?labels ~help name =
  let bounds =
    match buckets with
    | None -> default_buckets
    | Some l -> Array.of_list (List.sort_uniq compare l)
  in
  register (Histogram bounds) ?labels ~help name

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let scalar_cell (s : shard) key =
  match Hashtbl.find_opt s.tbl key with
  | Some (Scalar r) -> r
  | Some (Hist _) -> invalid_arg "Metrics: kind mismatch"
  | None ->
      let r = ref 0. in
      Hashtbl.replace s.tbl key (Scalar r);
      r

let incr ?(by = 1.) ?(labels = []) (c : counter) =
  if Atomic.get enabled_flag then begin
    let r = scalar_cell (my_shard ()) (c.id, labels) in
    r := !r +. by
  end

let set ?(labels = []) (g : gauge) v =
  if Atomic.get enabled_flag then
    let r = scalar_cell (my_shard ()) (g.id, labels) in
    r := v

let observe ?(labels = []) (h : histogram) v =
  if Atomic.get enabled_flag then begin
    let bounds =
      match h.kind with Histogram b -> b | _ -> invalid_arg "Metrics.observe"
    in
    let s = my_shard () in
    let key = (h.id, labels) in
    let hc =
      match Hashtbl.find_opt s.tbl key with
      | Some (Hist hc) -> hc
      | Some (Scalar _) -> invalid_arg "Metrics: kind mismatch"
      | None ->
          let hc =
            {
              hc_counts = Array.make (Array.length bounds + 1) 0;
              hc_sum = 0.;
              hc_count = 0;
            }
          in
          Hashtbl.replace s.tbl key (Hist hc);
          hc
    in
    let n = Array.length bounds in
    let i = ref 0 in
    while !i < n && v > bounds.(!i) do
      i := !i + 1
    done;
    hc.hc_counts.(!i) <- hc.hc_counts.(!i) + 1;
    hc.hc_sum <- hc.hc_sum +. v;
    hc.hc_count <- hc.hc_count + 1
  end

(* ------------------------------------------------------------------ *)
(* Merged reads                                                        *)
(* ------------------------------------------------------------------ *)

let snapshot () : family list * shard list =
  Mutex.lock registry_lock;
  let fams = List.rev !families and shs = !shards in
  Mutex.unlock registry_lock;
  (List.sort (fun a b -> String.compare a.name b.name) fams, shs)

type merged = MScalar of float | MHist of hist_cell

(* all label rows of one family, merged across [shs], sorted by label
   values *)
let merged_rows (f : family) (shs : shard list) :
    (string list * merged) list =
  let acc : (string list, merged) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : shard) ->
      Hashtbl.iter
        (fun (id, labels) cell ->
          if id = f.id then
            match (cell, Hashtbl.find_opt acc labels) with
            | Scalar r, None -> Hashtbl.replace acc labels (MScalar !r)
            | Scalar r, Some (MScalar v) ->
                Hashtbl.replace acc labels (MScalar (v +. !r))
            | Hist hc, None ->
                Hashtbl.replace acc labels
                  (MHist
                     {
                       hc_counts = Array.copy hc.hc_counts;
                       hc_sum = hc.hc_sum;
                       hc_count = hc.hc_count;
                     })
            | Hist hc, Some (MHist m) ->
                Array.iteri
                  (fun i c -> m.hc_counts.(i) <- m.hc_counts.(i) + c)
                  hc.hc_counts;
                Hashtbl.replace acc labels
                  (MHist
                     {
                       m with
                       hc_sum = m.hc_sum +. hc.hc_sum;
                       hc_count = m.hc_count + hc.hc_count;
                     })
            | _ -> () (* kind mismatch: impossible per family *))
        s.tbl)
    shs;
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun k v l -> (k, v) :: l) acc [])

let counter_value ?(labels = []) (c : counter) : float =
  let _, shs = snapshot () in
  List.fold_left
    (fun acc (s : shard) ->
      match Hashtbl.find_opt s.tbl (c.id, labels) with
      | Some (Scalar r) -> acc +. !r
      | _ -> acc)
    0. shs

let read_counter ?(labels = []) name : float =
  Mutex.lock registry_lock;
  let f = List.find_opt (fun f -> String.equal f.name name) !families in
  Mutex.unlock registry_lock;
  match f with Some f -> counter_value ~labels f | None -> 0.

let domain_counter_value ?(labels = []) (c : counter) : float =
  match Hashtbl.find_opt (my_shard ()).tbl (c.id, labels) with
  | Some (Scalar r) -> !r
  | _ -> 0.

let reset () =
  Mutex.lock registry_lock;
  List.iter (fun (s : shard) -> Hashtbl.reset s.tbl) !shards;
  Mutex.unlock registry_lock

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* no exponents, no trailing zeros: byte-identical across runs that
   recorded the same values *)
let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let label_block names values =
  if names = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map2
           (fun n v -> Printf.sprintf "%s=\"%s\"" n (escape_label v))
           names values)
    ^ "}"

(* label block with an extra le="..." dimension appended *)
let label_block_le names values le =
  "{"
  ^ String.concat ","
      (List.map2
         (fun n v -> Printf.sprintf "%s=\"%s\"" n (escape_label v))
         names values
      @ [ Printf.sprintf "le=\"%s\"" le ])
  ^ "}"

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram _ -> "histogram"

let export_prometheus () : string =
  let fams, shs = snapshot () in
  let b = Buffer.create 4096 in
  List.iter
    (fun (f : family) ->
      match merged_rows f shs with
      | [] -> ()
      | rows ->
          Printf.bprintf b "# HELP %s %s\n" f.name f.help;
          Printf.bprintf b "# TYPE %s %s\n" f.name (kind_name f.kind);
          List.iter
            (fun (values, m) ->
              match (m, f.kind) with
              | MScalar v, _ ->
                  Printf.bprintf b "%s%s %s\n" f.name
                    (label_block f.label_names values)
                    (fmt_num v)
              | MHist hc, Histogram bounds ->
                  let cum = ref 0 in
                  Array.iteri
                    (fun i bound ->
                      cum := !cum + hc.hc_counts.(i);
                      Printf.bprintf b "%s_bucket%s %d\n" f.name
                        (label_block_le f.label_names values (fmt_num bound))
                        !cum)
                    bounds;
                  Printf.bprintf b "%s_bucket%s %d\n" f.name
                    (label_block_le f.label_names values "+Inf")
                    hc.hc_count;
                  Printf.bprintf b "%s_sum%s %s\n" f.name
                    (label_block f.label_names values)
                    (fmt_num hc.hc_sum);
                  Printf.bprintf b "%s_count%s %d\n" f.name
                    (label_block f.label_names values)
                    hc.hc_count
              | MHist _, _ -> ())
            rows)
    fams;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let export_json () : string =
  let fams, shs = snapshot () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"metrics\":[";
  let first_f = ref true in
  List.iter
    (fun (f : family) ->
      match merged_rows f shs with
      | [] -> ()
      | rows ->
          if not !first_f then Buffer.add_string b ",";
          first_f := false;
          Printf.bprintf b
            "\n{\"name\":\"%s\",\"type\":\"%s\",\"help\":\"%s\",\"samples\":["
            (json_escape f.name) (kind_name f.kind) (json_escape f.help);
          List.iteri
            (fun i (values, m) ->
              if i > 0 then Buffer.add_string b ",";
              let labels =
                String.concat ","
                  (List.map2
                     (fun n v ->
                       Printf.sprintf "\"%s\":\"%s\"" (json_escape n)
                         (json_escape v))
                     f.label_names values)
              in
              match (m, f.kind) with
              | MScalar v, _ ->
                  Printf.bprintf b "{\"labels\":{%s},\"value\":%s}" labels
                    (fmt_num v)
              | MHist hc, Histogram bounds ->
                  let buckets =
                    let cum = ref 0 in
                    String.concat ","
                      (Array.to_list
                         (Array.mapi
                            (fun i bound ->
                              cum := !cum + hc.hc_counts.(i);
                              Printf.sprintf "{\"le\":%s,\"count\":%d}"
                                (fmt_num bound) !cum)
                            bounds)
                      @ [
                          Printf.sprintf "{\"le\":\"+Inf\",\"count\":%d}"
                            hc.hc_count;
                        ])
                  in
                  Printf.bprintf b
                    "{\"labels\":{%s},\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
                    labels hc.hc_count (fmt_num hc.hc_sum) buckets
              | MHist _, _ -> ())
            rows;
          Buffer.add_string b "]}")
    fams;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
