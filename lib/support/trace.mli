(** Span-based structured tracing over the same monotonic clock
    {!Deadline} uses, recorded into per-domain ring buffers and
    exported as Chrome trace-event JSON (loadable in
    [chrome://tracing] and Perfetto).

    Tracing is disabled by default; {!with_span} then costs one atomic
    flag load and runs the thunk directly. When enabled, each closing
    span appends one complete ("ph":"X") event to the calling domain's
    ring buffer and updates that domain's per-span aggregate (the
    [--profile] summary). If {!Metrics} is also enabled, every span
    duration additionally feeds the [rustudy_span_duration_ms]
    histogram.

    The clock is injectable ({!set_clock}) so tests and reproducible
    runs export byte-identical traces; sequential (single-domain) runs
    are byte-deterministic, parallel runs are deterministic up to
    thread ids and interleaving. *)

(** {1 Global switch} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop every buffered event and aggregate (ring buffers survive). *)

(** {1 Clock} *)

val set_clock : (unit -> int64) option -> unit
(** Install an injectable nanosecond clock ([None] restores the
    monotonic clock). The injected clock must be monotone
    non-decreasing per domain or the exported trace will fail
    [tracecat] validation. *)

val now_ns : unit -> int64
(** The injected clock if any, else {!Deadline.now_ns}. *)

(** {1 Recording} *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f] and records one complete event on the
    calling domain. An exception escaping [f] still closes the span
    (with an ["error"] arg) before re-raising with the original
    backtrace. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val set_ring_capacity : int -> unit
(** Per-domain ring capacity (events) for shards created after the
    call; when a ring is full the oldest event is overwritten and
    counted, and the export emits one [trace_dropped] instant per
    affected domain. Default 32768. *)

val dropped_total : unit -> int
(** Events lost to ring wrap across all domains since the last
    {!reset} — the sum of the per-shard counts behind the exported
    [trace_dropped] instants. *)

(** {1 Export} *)

val export_chrome : unit -> string
(** A Chrome trace-event JSON array, one event per line, timestamps in
    microseconds, shards ordered by thread id, events in completion
    order. *)

(** {1 Profile aggregates} *)

type agg = {
  agg_name : string;
  agg_count : int;
  agg_total_ns : int64;
}

val aggregates : unit -> agg list
(** Per-span totals merged across domains, sorted by total time
    (descending), then name. *)

val profile_table : unit -> string
(** The [--profile] rendering of {!aggregates}: one row per span name
    with call count, total and mean wall time. *)
