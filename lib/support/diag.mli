(** Structured diagnostics emitted by the front end and the analyses.

    Every diagnostic carries a stable error code, a severity, a source
    span and a message. Two consumption styles coexist:

    - the {e raising} style ({!fail} / {!Parse_error}), used by the
      strict entry points that abort on the first error; and
    - the {e collecting} style ({!collector} / {!emit}), used by the
      fault-tolerant pipeline: recovery-mode lexing/parsing and the
      fuel-bounded analyses append diagnostics and keep going, and the
      caller inspects the collector afterwards ({!has_errors},
      {!diags}) or converts to a [result] ({!protect}, {!to_result}). *)

type severity = Error | Warning | Note

(** Stable error codes, one per failure class. The printed form
    ([code_name], e.g. ["E0101"]) is part of the output contract:
    tests and downstream tooling may match on it. *)
type code =
  | Lex_invalid_char  (** E0101 *)
  | Lex_unterminated_string  (** E0102 *)
  | Lex_unterminated_char  (** E0103 *)
  | Lex_unterminated_comment  (** E0104 *)
  | Lex_unterminated_attribute  (** E0105 *)
  | Lex_bad_escape  (** E0106 *)
  | Lex_bad_literal  (** E0107 *)
  | Parse_error_code  (** E0201: syntax error (parser) *)
  | Parse_recovered  (** E0202: a region was replaced by an error node *)
  | Sema_error  (** E0301 *)
  | Analysis_incomplete  (** W0401: a fixpoint ran out of fuel *)
  | Analysis_deadline
      (** W0402: a fixpoint or detector replay exceeded its wall-clock
          deadline ([Support.Deadline]) *)
  | Entry_retried
      (** W0403: the supervisor retried a failed/timed-out entry *)
  | Entry_quarantined
      (** W0404: an entry failed its full retry budget and was
          quarantined (circuit breaker) *)
  | Run_deadline_skip
      (** W0405: the whole-run deadline expired before this entry was
          analyzed *)
  | Entry_failed  (** E0501: a corpus entry failed fatally *)
  | Server_overload
      (** W0501: the analysis server shed this request at admission
          (bounded queue full) instead of queueing it unboundedly *)
  | Server_bad_frame
      (** E0502: a wire frame was malformed — oversized, non-UTF-8, or
          not a valid request — and was rejected with a structured
          error frame *)
  | Server_worker_lost
      (** W0503: a server worker domain died mid-request; the request
          got a structured error response and the worker was
          respawned *)
  | Server_draining
      (** W0504: the server is draining (SIGTERM or a shutdown
          request) and rejected new work *)
  | Oracle_trap
      (** E0601: the dynamic oracle manifested a memory/thread-safety
          fault (UAF, double-free, invalid-free, uninit-read,
          null-deref, double-lock) as a structured trap *)
  | Oracle_fuel
      (** W0602: an oracle execution exhausted its step/fuel budget
          before completing — verdict degrades to inconclusive *)
  | Oracle_deadline
      (** W0603: an oracle execution hit its wall-clock deadline —
          verdict degrades to inconclusive *)
  | Oracle_unsupported
      (** W0604: the oracle met an unsupported or extern construct and
          degraded to an explicit inconclusive verdict instead of
          guessing *)
  | General  (** E0000 *)

val code_name : code -> string

val all_codes : code list
(** Every stable code, in declaration order. The golden tests pin
    [List.map code_name all_codes] so codes cannot silently renumber. *)

val code_of_name : string -> code option
(** Inverse of {!code_name} (used when journalled diagnostics are
    replayed on resume). *)

type t = { code : code; severity : severity; span : Span.t; message : string }

exception Parse_error of t
(** Raised by the strict lexer and parser entry points on syntax
    errors. *)

val error :
  ?code:code -> ?span:Span.t -> ('a, Format.formatter, unit, t) format4 -> 'a

val warning :
  ?code:code -> ?span:Span.t -> ('a, Format.formatter, unit, t) format4 -> 'a

val note :
  ?code:code -> ?span:Span.t -> ('a, Format.formatter, unit, t) format4 -> 'a

val fail :
  ?code:code -> ?span:Span.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format a message and raise {!Parse_error}. *)

(** {1 Collector: the mutable diagnostics sink} *)

type collector

val collector : unit -> collector

val emit : collector -> t -> unit
(** Append a diagnostic. Emission order is preserved by {!diags}. *)

val diags : collector -> t list
(** All collected diagnostics, in emission order. *)

val has_errors : collector -> bool
(** [true] iff at least one [Error]-severity diagnostic was emitted. *)

val error_count : collector -> int
val count : collector -> int

val errors : collector -> t list
(** Only the [Error]-severity diagnostics, in emission order. *)

val errors_of : t list -> t list
(** Only the [Error]-severity diagnostics of a plain list. *)

(** {1 Result-style API} *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a strict (raising) computation, capturing {!Parse_error} as
    [Error]. Other exceptions propagate. *)

val to_result : collector -> 'a -> ('a, t list) result
(** [Ok v] if the collector holds no error-severity diagnostics,
    [Error (errors c)] otherwise. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val sort : t list -> t list
(** Deterministic order: by file, then offset, then code, then
    message. Used when diagnostics from parallel workers are merged. *)
