(** Append-only checkpoint journal: crash-safe record of completed
    corpus entries.

    One record per line, keyed by an opaque string (the corpus driver
    keys by entry id + source digest + lowering config, mirroring the
    [(file, config)] keying of the program cache). Each line carries a
    truncated MD5 checksum of its payload, so a torn tail — the one
    partial line a [kill -9] can leave — is detected and skipped on
    load instead of corrupting the resume. Appends are mutex-guarded
    and fsync'd: once [append] returns, the record survives a crash.

    Records are last-wins per key, so re-checkpointing an entry (e.g.
    after a retry) simply supersedes the earlier line. *)

type t = { path : string; fd : Unix.file_descr; lock : Mutex.t }

let magic = "rustudy-journal v1"

(* \t and \n are the field/record separators; escape them plus the
   escape character itself *)
let escape (s : string) : string =
  let n = String.length s in
  let buf = Buffer.create (n + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

exception Bad_escape

let unescape (s : string) : string =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' ->
        if !i + 1 >= n then raise Bad_escape;
        incr i;
        Buffer.add_char buf
          (match s.[!i] with
          | '\\' -> '\\'
          | 't' -> '\t'
          | 'n' -> '\n'
          | 'r' -> '\r'
          | _ -> raise Bad_escape)
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let checksum key payload =
  String.sub (Digest.to_hex (Digest.string (key ^ "\x00" ^ payload))) 0 8

let write_all fd (s : string) =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(** Open [path] for appending, creating it (with a magic header line)
    if absent. The header is fsync'd before the call returns. *)
let open_append (path : string) : t =
  let fresh =
    (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size = 0
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = Unix.lseek fd 0 Unix.SEEK_END in
  if fresh then begin
    write_all fd (magic ^ "\n");
    Unix.fsync fd
  end
  else begin
    (* heal a torn tail: if a kill landed mid-write the file ends
       without a newline, and appending directly would glue the next
       record onto the partial line, losing both *)
    ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
    let last = Bytes.create 1 in
    if Unix.read fd last 0 1 = 1 && Bytes.get last 0 <> '\n' then
      write_all fd "\n"
  end;
  { path; fd; lock = Mutex.create () }

let m_appends =
  Metrics.counter ~help:"Journal records appended (each is fsynced)."
    "rustudy_journal_appends_total"

(** Append one record and fsync. Safe to call from several domains. *)
let append (t : t) ~key (payload : string) : unit =
  if Metrics.enabled () then Metrics.incr m_appends;
  Flight.record "journal.append"
    ~fields:[ ("key", key); ("bytes", string_of_int (String.length payload)) ];
  let k = escape key and p = escape payload in
  let line = Printf.sprintf "J1\t%s\t%s\t%s\n" (checksum k p) k p in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      write_all t.fd line;
      Unix.fsync t.fd)

let close (t : t) = Unix.close t.fd

let split_tabs (line : string) : string list = String.split_on_char '\t' line

(** Load every valid record of [path], last-wins per key, in the order
    of each key's surviving (latest) record. A missing file is an
    empty journal; malformed or torn lines — bad field count, bad
    checksum, bad escapes, a partial tail — are skipped silently.
    Never raises. *)
let load (path : string) : (string * string) list =
  if not (Sys.file_exists path) then []
  else begin
    let records = ref [] in
    (try
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           try
             while true do
               let line = input_line ic in
               match split_tabs line with
               | [ "J1"; sum; k; p ] when String.equal sum (checksum k p) -> (
                   match (unescape k, unescape p) with
                   | key, payload -> records := (key, payload) :: !records
                   | exception Bad_escape -> ())
               | _ -> ()
             done
           with End_of_file -> ())
     with Sys_error _ -> ());
    (* newest-first fold: the first occurrence of a key wins, then
       restore chronological order of the surviving records *)
    let seen = Hashtbl.create 64 in
    let surviving =
      List.filter
        (fun (k, _) ->
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.replace seen k ();
            true
          end)
        !records
    in
    List.rev surviving
  end
